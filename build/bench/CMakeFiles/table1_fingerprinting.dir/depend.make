# Empty dependencies file for table1_fingerprinting.
# This may be replaced when dependencies are built.
