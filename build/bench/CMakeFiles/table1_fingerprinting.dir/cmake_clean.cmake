file(REMOVE_RECURSE
  "CMakeFiles/table1_fingerprinting.dir/table1_fingerprinting.cpp.o"
  "CMakeFiles/table1_fingerprinting.dir/table1_fingerprinting.cpp.o.d"
  "table1_fingerprinting"
  "table1_fingerprinting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_fingerprinting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
