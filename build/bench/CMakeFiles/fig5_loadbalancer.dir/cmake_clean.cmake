file(REMOVE_RECURSE
  "CMakeFiles/fig5_loadbalancer.dir/fig5_loadbalancer.cpp.o"
  "CMakeFiles/fig5_loadbalancer.dir/fig5_loadbalancer.cpp.o.d"
  "fig5_loadbalancer"
  "fig5_loadbalancer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_loadbalancer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
