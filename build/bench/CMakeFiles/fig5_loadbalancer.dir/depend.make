# Empty dependencies file for fig5_loadbalancer.
# This may be replaced when dependencies are built.
