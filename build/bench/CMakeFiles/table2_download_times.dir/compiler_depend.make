# Empty compiler generated dependencies file for table2_download_times.
# This may be replaced when dependencies are built.
