file(REMOVE_RECURSE
  "CMakeFiles/micro_script.dir/micro_script.cpp.o"
  "CMakeFiles/micro_script.dir/micro_script.cpp.o.d"
  "micro_script"
  "micro_script.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_script.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
