# Empty dependencies file for micro_script.
# This may be replaced when dependencies are built.
