# Empty compiler generated dependencies file for micro_tee.
# This may be replaced when dependencies are built.
