file(REMOVE_RECURSE
  "CMakeFiles/micro_tee.dir/micro_tee.cpp.o"
  "CMakeFiles/micro_tee.dir/micro_tee.cpp.o.d"
  "micro_tee"
  "micro_tee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_tee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
