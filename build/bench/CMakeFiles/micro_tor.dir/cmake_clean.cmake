file(REMOVE_RECURSE
  "CMakeFiles/micro_tor.dir/micro_tor.cpp.o"
  "CMakeFiles/micro_tor.dir/micro_tor.cpp.o.d"
  "micro_tor"
  "micro_tor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_tor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
