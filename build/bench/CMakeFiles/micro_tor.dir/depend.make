# Empty dependencies file for micro_tor.
# This may be replaced when dependencies are built.
