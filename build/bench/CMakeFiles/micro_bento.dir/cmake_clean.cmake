file(REMOVE_RECURSE
  "CMakeFiles/micro_bento.dir/micro_bento.cpp.o"
  "CMakeFiles/micro_bento.dir/micro_bento.cpp.o.d"
  "micro_bento"
  "micro_bento.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_bento.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
