# Empty compiler generated dependencies file for micro_bento.
# This may be replaced when dependencies are built.
