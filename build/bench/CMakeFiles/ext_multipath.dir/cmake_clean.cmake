file(REMOVE_RECURSE
  "CMakeFiles/ext_multipath.dir/ext_multipath.cpp.o"
  "CMakeFiles/ext_multipath.dir/ext_multipath.cpp.o.d"
  "ext_multipath"
  "ext_multipath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multipath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
