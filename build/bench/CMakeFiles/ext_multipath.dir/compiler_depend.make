# Empty compiler generated dependencies file for ext_multipath.
# This may be replaced when dependencies are built.
