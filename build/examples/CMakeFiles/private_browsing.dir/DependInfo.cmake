
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/private_browsing.cpp" "examples/CMakeFiles/private_browsing.dir/private_browsing.cpp.o" "gcc" "examples/CMakeFiles/private_browsing.dir/private_browsing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bento_core.dir/DependInfo.cmake"
  "/root/repo/build/src/functions/CMakeFiles/bento_functions.dir/DependInfo.cmake"
  "/root/repo/build/src/tee/CMakeFiles/bento_tee.dir/DependInfo.cmake"
  "/root/repo/build/src/sandbox/CMakeFiles/bento_sandbox.dir/DependInfo.cmake"
  "/root/repo/build/src/tor/CMakeFiles/bento_tor.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/bento_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bento_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/script/CMakeFiles/bento_script.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bento_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
