file(REMOVE_RECURSE
  "CMakeFiles/hidden_service_lb.dir/hidden_service_lb.cpp.o"
  "CMakeFiles/hidden_service_lb.dir/hidden_service_lb.cpp.o.d"
  "hidden_service_lb"
  "hidden_service_lb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hidden_service_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
