# Empty compiler generated dependencies file for hidden_service_lb.
# This may be replaced when dependencies are built.
