file(REMOVE_RECURSE
  "CMakeFiles/sharded_dropbox.dir/sharded_dropbox.cpp.o"
  "CMakeFiles/sharded_dropbox.dir/sharded_dropbox.cpp.o.d"
  "sharded_dropbox"
  "sharded_dropbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharded_dropbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
