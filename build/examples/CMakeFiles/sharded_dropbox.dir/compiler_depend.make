# Empty compiler generated dependencies file for sharded_dropbox.
# This may be replaced when dependencies are built.
