
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tor/address.cpp" "src/tor/CMakeFiles/bento_tor.dir/address.cpp.o" "gcc" "src/tor/CMakeFiles/bento_tor.dir/address.cpp.o.d"
  "/root/repo/src/tor/cell.cpp" "src/tor/CMakeFiles/bento_tor.dir/cell.cpp.o" "gcc" "src/tor/CMakeFiles/bento_tor.dir/cell.cpp.o.d"
  "/root/repo/src/tor/circuit.cpp" "src/tor/CMakeFiles/bento_tor.dir/circuit.cpp.o" "gcc" "src/tor/CMakeFiles/bento_tor.dir/circuit.cpp.o.d"
  "/root/repo/src/tor/directory.cpp" "src/tor/CMakeFiles/bento_tor.dir/directory.cpp.o" "gcc" "src/tor/CMakeFiles/bento_tor.dir/directory.cpp.o.d"
  "/root/repo/src/tor/exitpolicy.cpp" "src/tor/CMakeFiles/bento_tor.dir/exitpolicy.cpp.o" "gcc" "src/tor/CMakeFiles/bento_tor.dir/exitpolicy.cpp.o.d"
  "/root/repo/src/tor/flow.cpp" "src/tor/CMakeFiles/bento_tor.dir/flow.cpp.o" "gcc" "src/tor/CMakeFiles/bento_tor.dir/flow.cpp.o.d"
  "/root/repo/src/tor/hs.cpp" "src/tor/CMakeFiles/bento_tor.dir/hs.cpp.o" "gcc" "src/tor/CMakeFiles/bento_tor.dir/hs.cpp.o.d"
  "/root/repo/src/tor/internet.cpp" "src/tor/CMakeFiles/bento_tor.dir/internet.cpp.o" "gcc" "src/tor/CMakeFiles/bento_tor.dir/internet.cpp.o.d"
  "/root/repo/src/tor/ntor.cpp" "src/tor/CMakeFiles/bento_tor.dir/ntor.cpp.o" "gcc" "src/tor/CMakeFiles/bento_tor.dir/ntor.cpp.o.d"
  "/root/repo/src/tor/pathselect.cpp" "src/tor/CMakeFiles/bento_tor.dir/pathselect.cpp.o" "gcc" "src/tor/CMakeFiles/bento_tor.dir/pathselect.cpp.o.d"
  "/root/repo/src/tor/proxy.cpp" "src/tor/CMakeFiles/bento_tor.dir/proxy.cpp.o" "gcc" "src/tor/CMakeFiles/bento_tor.dir/proxy.cpp.o.d"
  "/root/repo/src/tor/relaycrypto.cpp" "src/tor/CMakeFiles/bento_tor.dir/relaycrypto.cpp.o" "gcc" "src/tor/CMakeFiles/bento_tor.dir/relaycrypto.cpp.o.d"
  "/root/repo/src/tor/router.cpp" "src/tor/CMakeFiles/bento_tor.dir/router.cpp.o" "gcc" "src/tor/CMakeFiles/bento_tor.dir/router.cpp.o.d"
  "/root/repo/src/tor/testbed.cpp" "src/tor/CMakeFiles/bento_tor.dir/testbed.cpp.o" "gcc" "src/tor/CMakeFiles/bento_tor.dir/testbed.cpp.o.d"
  "/root/repo/src/tor/wire.cpp" "src/tor/CMakeFiles/bento_tor.dir/wire.cpp.o" "gcc" "src/tor/CMakeFiles/bento_tor.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bento_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/bento_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bento_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
