file(REMOVE_RECURSE
  "CMakeFiles/bento_tor.dir/address.cpp.o"
  "CMakeFiles/bento_tor.dir/address.cpp.o.d"
  "CMakeFiles/bento_tor.dir/cell.cpp.o"
  "CMakeFiles/bento_tor.dir/cell.cpp.o.d"
  "CMakeFiles/bento_tor.dir/circuit.cpp.o"
  "CMakeFiles/bento_tor.dir/circuit.cpp.o.d"
  "CMakeFiles/bento_tor.dir/directory.cpp.o"
  "CMakeFiles/bento_tor.dir/directory.cpp.o.d"
  "CMakeFiles/bento_tor.dir/exitpolicy.cpp.o"
  "CMakeFiles/bento_tor.dir/exitpolicy.cpp.o.d"
  "CMakeFiles/bento_tor.dir/flow.cpp.o"
  "CMakeFiles/bento_tor.dir/flow.cpp.o.d"
  "CMakeFiles/bento_tor.dir/hs.cpp.o"
  "CMakeFiles/bento_tor.dir/hs.cpp.o.d"
  "CMakeFiles/bento_tor.dir/internet.cpp.o"
  "CMakeFiles/bento_tor.dir/internet.cpp.o.d"
  "CMakeFiles/bento_tor.dir/ntor.cpp.o"
  "CMakeFiles/bento_tor.dir/ntor.cpp.o.d"
  "CMakeFiles/bento_tor.dir/pathselect.cpp.o"
  "CMakeFiles/bento_tor.dir/pathselect.cpp.o.d"
  "CMakeFiles/bento_tor.dir/proxy.cpp.o"
  "CMakeFiles/bento_tor.dir/proxy.cpp.o.d"
  "CMakeFiles/bento_tor.dir/relaycrypto.cpp.o"
  "CMakeFiles/bento_tor.dir/relaycrypto.cpp.o.d"
  "CMakeFiles/bento_tor.dir/router.cpp.o"
  "CMakeFiles/bento_tor.dir/router.cpp.o.d"
  "CMakeFiles/bento_tor.dir/testbed.cpp.o"
  "CMakeFiles/bento_tor.dir/testbed.cpp.o.d"
  "CMakeFiles/bento_tor.dir/wire.cpp.o"
  "CMakeFiles/bento_tor.dir/wire.cpp.o.d"
  "libbento_tor.a"
  "libbento_tor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bento_tor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
