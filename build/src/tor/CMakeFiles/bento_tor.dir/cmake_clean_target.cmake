file(REMOVE_RECURSE
  "libbento_tor.a"
)
