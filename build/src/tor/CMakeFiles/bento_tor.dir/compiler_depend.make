# Empty compiler generated dependencies file for bento_tor.
# This may be replaced when dependencies are built.
