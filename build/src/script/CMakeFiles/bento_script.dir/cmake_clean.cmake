file(REMOVE_RECURSE
  "CMakeFiles/bento_script.dir/interp.cpp.o"
  "CMakeFiles/bento_script.dir/interp.cpp.o.d"
  "CMakeFiles/bento_script.dir/lexer.cpp.o"
  "CMakeFiles/bento_script.dir/lexer.cpp.o.d"
  "CMakeFiles/bento_script.dir/parser.cpp.o"
  "CMakeFiles/bento_script.dir/parser.cpp.o.d"
  "CMakeFiles/bento_script.dir/stdlib.cpp.o"
  "CMakeFiles/bento_script.dir/stdlib.cpp.o.d"
  "CMakeFiles/bento_script.dir/value.cpp.o"
  "CMakeFiles/bento_script.dir/value.cpp.o.d"
  "libbento_script.a"
  "libbento_script.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bento_script.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
