file(REMOVE_RECURSE
  "libbento_script.a"
)
