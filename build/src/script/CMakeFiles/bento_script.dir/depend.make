# Empty dependencies file for bento_script.
# This may be replaced when dependencies are built.
