file(REMOVE_RECURSE
  "CMakeFiles/bento_sandbox.dir/netfilter.cpp.o"
  "CMakeFiles/bento_sandbox.dir/netfilter.cpp.o.d"
  "CMakeFiles/bento_sandbox.dir/resources.cpp.o"
  "CMakeFiles/bento_sandbox.dir/resources.cpp.o.d"
  "CMakeFiles/bento_sandbox.dir/syscalls.cpp.o"
  "CMakeFiles/bento_sandbox.dir/syscalls.cpp.o.d"
  "CMakeFiles/bento_sandbox.dir/vfs.cpp.o"
  "CMakeFiles/bento_sandbox.dir/vfs.cpp.o.d"
  "libbento_sandbox.a"
  "libbento_sandbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bento_sandbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
