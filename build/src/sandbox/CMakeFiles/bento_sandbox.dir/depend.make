# Empty dependencies file for bento_sandbox.
# This may be replaced when dependencies are built.
