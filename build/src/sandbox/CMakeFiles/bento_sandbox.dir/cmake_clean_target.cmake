file(REMOVE_RECURSE
  "libbento_sandbox.a"
)
