
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sandbox/netfilter.cpp" "src/sandbox/CMakeFiles/bento_sandbox.dir/netfilter.cpp.o" "gcc" "src/sandbox/CMakeFiles/bento_sandbox.dir/netfilter.cpp.o.d"
  "/root/repo/src/sandbox/resources.cpp" "src/sandbox/CMakeFiles/bento_sandbox.dir/resources.cpp.o" "gcc" "src/sandbox/CMakeFiles/bento_sandbox.dir/resources.cpp.o.d"
  "/root/repo/src/sandbox/syscalls.cpp" "src/sandbox/CMakeFiles/bento_sandbox.dir/syscalls.cpp.o" "gcc" "src/sandbox/CMakeFiles/bento_sandbox.dir/syscalls.cpp.o.d"
  "/root/repo/src/sandbox/vfs.cpp" "src/sandbox/CMakeFiles/bento_sandbox.dir/vfs.cpp.o" "gcc" "src/sandbox/CMakeFiles/bento_sandbox.dir/vfs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bento_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tor/CMakeFiles/bento_tor.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/bento_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bento_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
