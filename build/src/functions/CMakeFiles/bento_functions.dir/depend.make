# Empty dependencies file for bento_functions.
# This may be replaced when dependencies are built.
