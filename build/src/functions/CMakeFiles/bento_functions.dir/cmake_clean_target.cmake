file(REMOVE_RECURSE
  "libbento_functions.a"
)
