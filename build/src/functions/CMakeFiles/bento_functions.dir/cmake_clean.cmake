file(REMOVE_RECURSE
  "CMakeFiles/bento_functions.dir/library.cpp.o"
  "CMakeFiles/bento_functions.dir/library.cpp.o.d"
  "CMakeFiles/bento_functions.dir/loadbalancer.cpp.o"
  "CMakeFiles/bento_functions.dir/loadbalancer.cpp.o.d"
  "CMakeFiles/bento_functions.dir/multipath.cpp.o"
  "CMakeFiles/bento_functions.dir/multipath.cpp.o.d"
  "CMakeFiles/bento_functions.dir/pow.cpp.o"
  "CMakeFiles/bento_functions.dir/pow.cpp.o.d"
  "CMakeFiles/bento_functions.dir/shard.cpp.o"
  "CMakeFiles/bento_functions.dir/shard.cpp.o.d"
  "libbento_functions.a"
  "libbento_functions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bento_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
