# Empty compiler generated dependencies file for bento_util.
# This may be replaced when dependencies are built.
