file(REMOVE_RECURSE
  "CMakeFiles/bento_util.dir/bytes.cpp.o"
  "CMakeFiles/bento_util.dir/bytes.cpp.o.d"
  "CMakeFiles/bento_util.dir/log.cpp.o"
  "CMakeFiles/bento_util.dir/log.cpp.o.d"
  "CMakeFiles/bento_util.dir/rng.cpp.o"
  "CMakeFiles/bento_util.dir/rng.cpp.o.d"
  "CMakeFiles/bento_util.dir/serialize.cpp.o"
  "CMakeFiles/bento_util.dir/serialize.cpp.o.d"
  "CMakeFiles/bento_util.dir/zlite.cpp.o"
  "CMakeFiles/bento_util.dir/zlite.cpp.o.d"
  "libbento_util.a"
  "libbento_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bento_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
