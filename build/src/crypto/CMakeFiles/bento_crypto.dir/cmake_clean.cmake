file(REMOVE_RECURSE
  "CMakeFiles/bento_crypto.dir/aead.cpp.o"
  "CMakeFiles/bento_crypto.dir/aead.cpp.o.d"
  "CMakeFiles/bento_crypto.dir/chacha20.cpp.o"
  "CMakeFiles/bento_crypto.dir/chacha20.cpp.o.d"
  "CMakeFiles/bento_crypto.dir/dh.cpp.o"
  "CMakeFiles/bento_crypto.dir/dh.cpp.o.d"
  "CMakeFiles/bento_crypto.dir/hmac.cpp.o"
  "CMakeFiles/bento_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/bento_crypto.dir/poly1305.cpp.o"
  "CMakeFiles/bento_crypto.dir/poly1305.cpp.o.d"
  "CMakeFiles/bento_crypto.dir/sha256.cpp.o"
  "CMakeFiles/bento_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/bento_crypto.dir/sign.cpp.o"
  "CMakeFiles/bento_crypto.dir/sign.cpp.o.d"
  "libbento_crypto.a"
  "libbento_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bento_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
