file(REMOVE_RECURSE
  "libbento_crypto.a"
)
