# Empty dependencies file for bento_crypto.
# This may be replaced when dependencies are built.
