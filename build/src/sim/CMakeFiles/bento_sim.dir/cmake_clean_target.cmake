file(REMOVE_RECURSE
  "libbento_sim.a"
)
