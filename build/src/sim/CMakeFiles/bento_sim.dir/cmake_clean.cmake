file(REMOVE_RECURSE
  "CMakeFiles/bento_sim.dir/network.cpp.o"
  "CMakeFiles/bento_sim.dir/network.cpp.o.d"
  "CMakeFiles/bento_sim.dir/simulator.cpp.o"
  "CMakeFiles/bento_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/bento_sim.dir/transport.cpp.o"
  "CMakeFiles/bento_sim.dir/transport.cpp.o.d"
  "libbento_sim.a"
  "libbento_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bento_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
