file(REMOVE_RECURSE
  "CMakeFiles/bento_tee.dir/attestation.cpp.o"
  "CMakeFiles/bento_tee.dir/attestation.cpp.o.d"
  "CMakeFiles/bento_tee.dir/conclave.cpp.o"
  "CMakeFiles/bento_tee.dir/conclave.cpp.o.d"
  "CMakeFiles/bento_tee.dir/enclave.cpp.o"
  "CMakeFiles/bento_tee.dir/enclave.cpp.o.d"
  "CMakeFiles/bento_tee.dir/epc.cpp.o"
  "CMakeFiles/bento_tee.dir/epc.cpp.o.d"
  "libbento_tee.a"
  "libbento_tee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bento_tee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
