# Empty dependencies file for bento_tee.
# This may be replaced when dependencies are built.
