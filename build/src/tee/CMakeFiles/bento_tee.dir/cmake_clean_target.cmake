file(REMOVE_RECURSE
  "libbento_tee.a"
)
