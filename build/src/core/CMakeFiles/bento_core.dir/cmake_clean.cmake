file(REMOVE_RECURSE
  "CMakeFiles/bento_core.dir/api.cpp.o"
  "CMakeFiles/bento_core.dir/api.cpp.o.d"
  "CMakeFiles/bento_core.dir/client.cpp.o"
  "CMakeFiles/bento_core.dir/client.cpp.o.d"
  "CMakeFiles/bento_core.dir/container.cpp.o"
  "CMakeFiles/bento_core.dir/container.cpp.o.d"
  "CMakeFiles/bento_core.dir/message.cpp.o"
  "CMakeFiles/bento_core.dir/message.cpp.o.d"
  "CMakeFiles/bento_core.dir/policy.cpp.o"
  "CMakeFiles/bento_core.dir/policy.cpp.o.d"
  "CMakeFiles/bento_core.dir/server.cpp.o"
  "CMakeFiles/bento_core.dir/server.cpp.o.d"
  "CMakeFiles/bento_core.dir/stemfw.cpp.o"
  "CMakeFiles/bento_core.dir/stemfw.cpp.o.d"
  "CMakeFiles/bento_core.dir/tokens.cpp.o"
  "CMakeFiles/bento_core.dir/tokens.cpp.o.d"
  "CMakeFiles/bento_core.dir/world.cpp.o"
  "CMakeFiles/bento_core.dir/world.cpp.o.d"
  "libbento_core.a"
  "libbento_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bento_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
