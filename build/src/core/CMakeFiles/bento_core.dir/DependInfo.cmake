
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/api.cpp" "src/core/CMakeFiles/bento_core.dir/api.cpp.o" "gcc" "src/core/CMakeFiles/bento_core.dir/api.cpp.o.d"
  "/root/repo/src/core/client.cpp" "src/core/CMakeFiles/bento_core.dir/client.cpp.o" "gcc" "src/core/CMakeFiles/bento_core.dir/client.cpp.o.d"
  "/root/repo/src/core/container.cpp" "src/core/CMakeFiles/bento_core.dir/container.cpp.o" "gcc" "src/core/CMakeFiles/bento_core.dir/container.cpp.o.d"
  "/root/repo/src/core/message.cpp" "src/core/CMakeFiles/bento_core.dir/message.cpp.o" "gcc" "src/core/CMakeFiles/bento_core.dir/message.cpp.o.d"
  "/root/repo/src/core/policy.cpp" "src/core/CMakeFiles/bento_core.dir/policy.cpp.o" "gcc" "src/core/CMakeFiles/bento_core.dir/policy.cpp.o.d"
  "/root/repo/src/core/server.cpp" "src/core/CMakeFiles/bento_core.dir/server.cpp.o" "gcc" "src/core/CMakeFiles/bento_core.dir/server.cpp.o.d"
  "/root/repo/src/core/stemfw.cpp" "src/core/CMakeFiles/bento_core.dir/stemfw.cpp.o" "gcc" "src/core/CMakeFiles/bento_core.dir/stemfw.cpp.o.d"
  "/root/repo/src/core/tokens.cpp" "src/core/CMakeFiles/bento_core.dir/tokens.cpp.o" "gcc" "src/core/CMakeFiles/bento_core.dir/tokens.cpp.o.d"
  "/root/repo/src/core/world.cpp" "src/core/CMakeFiles/bento_core.dir/world.cpp.o" "gcc" "src/core/CMakeFiles/bento_core.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bento_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/bento_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bento_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tor/CMakeFiles/bento_tor.dir/DependInfo.cmake"
  "/root/repo/build/src/tee/CMakeFiles/bento_tee.dir/DependInfo.cmake"
  "/root/repo/build/src/sandbox/CMakeFiles/bento_sandbox.dir/DependInfo.cmake"
  "/root/repo/build/src/script/CMakeFiles/bento_script.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
