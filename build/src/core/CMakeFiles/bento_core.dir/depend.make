# Empty dependencies file for bento_core.
# This may be replaced when dependencies are built.
