file(REMOVE_RECURSE
  "libbento_core.a"
)
