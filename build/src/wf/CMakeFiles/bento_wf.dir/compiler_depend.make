# Empty compiler generated dependencies file for bento_wf.
# This may be replaced when dependencies are built.
