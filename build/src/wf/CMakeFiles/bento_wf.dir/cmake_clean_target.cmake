file(REMOVE_RECURSE
  "libbento_wf.a"
)
