file(REMOVE_RECURSE
  "CMakeFiles/bento_wf.dir/classifier.cpp.o"
  "CMakeFiles/bento_wf.dir/classifier.cpp.o.d"
  "CMakeFiles/bento_wf.dir/experiment.cpp.o"
  "CMakeFiles/bento_wf.dir/experiment.cpp.o.d"
  "CMakeFiles/bento_wf.dir/features.cpp.o"
  "CMakeFiles/bento_wf.dir/features.cpp.o.d"
  "CMakeFiles/bento_wf.dir/pageload.cpp.o"
  "CMakeFiles/bento_wf.dir/pageload.cpp.o.d"
  "CMakeFiles/bento_wf.dir/sites.cpp.o"
  "CMakeFiles/bento_wf.dir/sites.cpp.o.d"
  "CMakeFiles/bento_wf.dir/trace.cpp.o"
  "CMakeFiles/bento_wf.dir/trace.cpp.o.d"
  "libbento_wf.a"
  "libbento_wf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bento_wf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
