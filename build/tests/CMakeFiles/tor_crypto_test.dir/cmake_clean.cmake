file(REMOVE_RECURSE
  "CMakeFiles/tor_crypto_test.dir/tor_crypto_test.cpp.o"
  "CMakeFiles/tor_crypto_test.dir/tor_crypto_test.cpp.o.d"
  "tor_crypto_test"
  "tor_crypto_test.pdb"
  "tor_crypto_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tor_crypto_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
