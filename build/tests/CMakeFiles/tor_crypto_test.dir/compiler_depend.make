# Empty compiler generated dependencies file for tor_crypto_test.
# This may be replaced when dependencies are built.
