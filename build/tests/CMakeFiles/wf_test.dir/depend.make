# Empty dependencies file for wf_test.
# This may be replaced when dependencies are built.
