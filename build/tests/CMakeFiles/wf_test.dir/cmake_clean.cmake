file(REMOVE_RECURSE
  "CMakeFiles/wf_test.dir/wf_test.cpp.o"
  "CMakeFiles/wf_test.dir/wf_test.cpp.o.d"
  "wf_test"
  "wf_test.pdb"
  "wf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
