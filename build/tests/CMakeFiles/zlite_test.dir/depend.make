# Empty dependencies file for zlite_test.
# This may be replaced when dependencies are built.
