# Empty dependencies file for tor_hs_test.
# This may be replaced when dependencies are built.
