file(REMOVE_RECURSE
  "CMakeFiles/tor_hs_test.dir/tor_hs_test.cpp.o"
  "CMakeFiles/tor_hs_test.dir/tor_hs_test.cpp.o.d"
  "tor_hs_test"
  "tor_hs_test.pdb"
  "tor_hs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tor_hs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
