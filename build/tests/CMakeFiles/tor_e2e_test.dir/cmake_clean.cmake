file(REMOVE_RECURSE
  "CMakeFiles/tor_e2e_test.dir/tor_e2e_test.cpp.o"
  "CMakeFiles/tor_e2e_test.dir/tor_e2e_test.cpp.o.d"
  "tor_e2e_test"
  "tor_e2e_test.pdb"
  "tor_e2e_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tor_e2e_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
