file(REMOVE_RECURSE
  "CMakeFiles/functions_e2e_test.dir/functions_e2e_test.cpp.o"
  "CMakeFiles/functions_e2e_test.dir/functions_e2e_test.cpp.o.d"
  "functions_e2e_test"
  "functions_e2e_test.pdb"
  "functions_e2e_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/functions_e2e_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
