# Empty compiler generated dependencies file for tor_directory_test.
# This may be replaced when dependencies are built.
