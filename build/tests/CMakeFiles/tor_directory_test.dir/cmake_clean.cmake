file(REMOVE_RECURSE
  "CMakeFiles/tor_directory_test.dir/tor_directory_test.cpp.o"
  "CMakeFiles/tor_directory_test.dir/tor_directory_test.cpp.o.d"
  "tor_directory_test"
  "tor_directory_test.pdb"
  "tor_directory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tor_directory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
