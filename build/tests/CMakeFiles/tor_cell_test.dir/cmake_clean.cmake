file(REMOVE_RECURSE
  "CMakeFiles/tor_cell_test.dir/tor_cell_test.cpp.o"
  "CMakeFiles/tor_cell_test.dir/tor_cell_test.cpp.o.d"
  "tor_cell_test"
  "tor_cell_test.pdb"
  "tor_cell_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tor_cell_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
