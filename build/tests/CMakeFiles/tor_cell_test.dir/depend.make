# Empty dependencies file for tor_cell_test.
# This may be replaced when dependencies are built.
