# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/zlite_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/tor_cell_test[1]_include.cmake")
include("/root/repo/build/tests/tor_crypto_test[1]_include.cmake")
include("/root/repo/build/tests/tor_directory_test[1]_include.cmake")
include("/root/repo/build/tests/tor_e2e_test[1]_include.cmake")
include("/root/repo/build/tests/tor_hs_test[1]_include.cmake")
include("/root/repo/build/tests/tee_test[1]_include.cmake")
include("/root/repo/build/tests/sandbox_test[1]_include.cmake")
include("/root/repo/build/tests/script_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/core_e2e_test[1]_include.cmake")
include("/root/repo/build/tests/functions_test[1]_include.cmake")
include("/root/repo/build/tests/functions_e2e_test[1]_include.cmake")
include("/root/repo/build/tests/wf_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
