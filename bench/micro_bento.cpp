// Microbenchmarks: Bento end-to-end operations over the simulated network —
// the install-and-invoke costs a client pays per function (these dominate
// the "small upload" the Table-1 adversary sees).
#include <benchmark/benchmark.h>

#include "core/world.hpp"
#include "functions/shard.hpp"

namespace bc = bento::core;
namespace bf = bento::functions;
namespace bu = bento::util;

static void BM_FunctionInstallPlain(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    bc::BentoWorld world;
    world.start();
    auto client = world.make_client("bench");
    auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());
    std::shared_ptr<bc::BentoConnection> conn;
    client.bento->connect(boxes[0], [&](std::shared_ptr<bc::BentoConnection> c) {
      conn = std::move(c);
    });
    world.run();
    state.ResumeTiming();

    bool done = false;
    conn->spawn(bc::kImagePython, [&](bool ok, std::string) {
      if (!ok) return;
      bc::FunctionManifest manifest;
      manifest.name = "bench";
      manifest.resources.memory_bytes = 1 << 20;
      manifest.resources.cpu_instructions = 100'000;
      manifest.resources.disk_bytes = 1 << 20;
      manifest.resources.network_bytes = 1 << 20;
      conn->upload(manifest, "def on_message(msg):\n    api.send(msg)\n", "", {},
                   [&](std::optional<bc::TokenPair> t, std::string) {
                     done = t.has_value();
                   });
    });
    world.run();
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_FunctionInstallPlain)->Unit(benchmark::kMillisecond);

static void BM_FunctionInstallSgxAttested(benchmark::State& state) {
  // Includes the conclave spawn, attested channel, stapled IAS report, and
  // the sealed upload.
  for (auto _ : state) {
    state.PauseTiming();
    bc::BentoWorld world;
    world.start();
    auto client = world.make_client("bench");
    auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());
    std::shared_ptr<bc::BentoConnection> conn;
    client.bento->connect(boxes[0], [&](std::shared_ptr<bc::BentoConnection> c) {
      conn = std::move(c);
    });
    world.run();
    state.ResumeTiming();

    bool done = false;
    conn->spawn(bc::kImagePythonOpSgx, [&](bool ok, std::string) {
      if (!ok) return;
      bc::FunctionManifest manifest;
      manifest.name = "bench";
      manifest.image = bc::kImagePythonOpSgx;
      manifest.resources.memory_bytes = 1 << 20;
      manifest.resources.cpu_instructions = 100'000;
      manifest.resources.disk_bytes = 1 << 20;
      manifest.resources.network_bytes = 1 << 20;
      conn->upload(manifest, "def on_message(msg):\n    api.send(msg)\n", "", {},
                   [&](std::optional<bc::TokenPair> t, std::string) {
                     done = t.has_value();
                   });
    });
    world.run();
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_FunctionInstallSgxAttested)->Unit(benchmark::kMillisecond);

static void BM_ShardEncode(benchmark::State& state) {
  bu::Rng rng(1);
  const bu::Bytes data = rng.bytes(1'000'000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bf::shard_encode(data, 3, 5));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1'000'000);
}
BENCHMARK(BM_ShardEncode);

static void BM_ShardDecode(benchmark::State& state) {
  bu::Rng rng(2);
  const bu::Bytes data = rng.bytes(1'000'000);
  auto shards = bf::shard_encode(data, 3, 5);
  shards.erase(shards.begin(), shards.begin() + 2);  // decode from last 3
  for (auto _ : state) {
    benchmark::DoNotOptimize(bf::shard_decode(shards));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1'000'000);
}
BENCHMARK(BM_ShardDecode);

BENCHMARK_MAIN();
