// Microbenchmarks: the from-scratch crypto substrate.
#include <benchmark/benchmark.h>

#include "crypto/aead.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sign.hpp"
#include "tor/ntor.hpp"
#include "util/rng.hpp"

namespace bc = bento::crypto;
namespace bt = bento::tor;
namespace bu = bento::util;

static void BM_Sha256(benchmark::State& state) {
  bu::Rng rng(1);
  const bu::Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bc::sha256(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(512)->Arg(8192);

static void BM_ChaCha20(benchmark::State& state) {
  bu::Rng rng(2);
  bc::ChaChaKey key{};
  bu::Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  bc::ChaCha20 cipher(key, bc::ChaChaNonce{});
  for (auto _ : state) {
    cipher.process(data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ChaCha20)->Arg(509)->Arg(8192);

static void BM_AeadSeal(benchmark::State& state) {
  bu::Rng rng(3);
  auto key = bc::AeadKey::from_bytes(rng.bytes(bc::kAeadKeyLen));
  const bu::Bytes payload = rng.bytes(498);
  std::uint64_t counter = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bc::aead_seal(key, bc::nonce_from_counter(++counter), {}, payload));
  }
}
BENCHMARK(BM_AeadSeal);

static void BM_HmacSha256(benchmark::State& state) {
  bu::Rng rng(4);
  const bu::Bytes key = rng.bytes(32);
  const bu::Bytes message = rng.bytes(509);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bc::hmac_sha256(key, message));
  }
}
BENCHMARK(BM_HmacSha256);

static void BM_SchnorrSign(benchmark::State& state) {
  bu::Rng rng(5);
  auto key = bc::SigningKey::generate(rng);
  const bu::Bytes message = rng.bytes(128);
  for (auto _ : state) {
    benchmark::DoNotOptimize(key.sign(message));
  }
}
BENCHMARK(BM_SchnorrSign);

static void BM_SchnorrVerify(benchmark::State& state) {
  bu::Rng rng(6);
  auto key = bc::SigningKey::generate(rng);
  const bu::Bytes message = rng.bytes(128);
  const auto sig = key.sign(message);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bc::verify(key.public_key(), message, sig));
  }
}
BENCHMARK(BM_SchnorrVerify);

static void BM_NtorFullHandshake(benchmark::State& state) {
  bu::Rng rng(7);
  auto onion = bc::DhKeyPair::generate(rng);
  auto identity = bc::SigningKey::generate(rng);
  for (auto _ : state) {
    bt::NtorClientState client_state;
    const bu::Bytes skin =
        bt::ntor_client_create(client_state, onion.public_value,
                               identity.public_key(), rng);
    auto reply = bt::ntor_server_respond(onion, identity.public_key(), skin, rng);
    benchmark::DoNotOptimize(
        bt::ntor_client_finish(client_state, reply.created_payload));
  }
}
BENCHMARK(BM_NtorFullHandshake);

BENCHMARK_MAIN();
