#!/usr/bin/env bash
# Run the datapath microbenchmarks and distill BENCH_datapath.json plus
# BENCH_obs.json.
#
# Usage: bench/run_benchmarks.sh [build-dir] [out-json] [obs-out-json] [store-out-json]
#
# BENCH_datapath.json records keystream throughput (seed scalar baseline vs
# the current 8-block kernel), the 3-hop relay datapath (cells/s, MB/s,
# allocs/cell), and simulator event churn (events/s, allocs/event).
# BENCH_obs.json records the observability overhead story: the metrics-on vs
# metrics-off datapath delta, the traced and span-traced datapaths, and the
# raw per-op cost of counter/histogram/trace-record handles. CI runs this as
# a smoke check: it fails if any zero-allocation invariant breaks, the kernel
# regresses below 3x the scalar baseline, live metrics/span tracing cost
# the cell datapath more than 10%/15% throughput, or idle chaos hooks (no
# plan installed) add any allocation or more than 2% overhead to the network
# send path.
#
# Regression gate: after distilling, the run is compared against the
# *committed* BENCH_datapath.json / BENCH_obs.json baselines. Only
# host-independent metrics are gated (speedup ratios and alloc counts — raw
# cells/s vary with the runner): a >15% drop in either ChaCha20 speedup or
# any alloc metric moving off its baseline fails the script. Every gated run
# also appends one line to BENCH_trajectory.jsonl so the perf history of the
# repo is recorded PR over PR. Set BENCH_BASELINE_SKIP=1 to bypass the gate
# (e.g. when intentionally refreshing the committed baselines).
#
# Sealed-store gates (DESIGN.md §15): BENCH_store.json records the blob
# store's append/replay/compaction story. The run fails if a steady-state
# append performs any heap allocation, if replaying the same log twice does
# not reproduce a byte-identical namespace (SHA-256 snapshot digest), or if
# an idle persistent-store mount costs the invoke datapath more than 2%.
#
# Shard observatory gates (DESIGN.md §13): the profiler hot hooks must add
# <= 2% to the relay datapath and zero allocations per cell — at --shards 1
# and --shards 4 — and the windowed dispatch loop must stay allocation-free
# with the profiler live. The consensus-scale standing scenario (1,024
# relays, 100k client sessions) then runs with its declarative SLOs (p99
# TTFB ceiling among them); its byte-stable verdict lands in
# BENCH_scenarios.json and the run fails if the verdict is "fail" or the
# wall-time attribution drops below 95%.
#
# Tail-latency explainer gate (DESIGN.md §14): a fixed small spanned run of
# the consensus scenario feeds `bentotrace critpath`; its blame profile is
# diffed against the committed bench/consensus_critpath_golden.json and a
# per-segment mean/tail regression (>10% and >50 µs) fails the script. The
# top-blame segment and diff verdict are appended to BENCH_trajectory.jsonl.
# Regenerate the golden after an intentional change with:
#   ./build/bench/consensus_scale --shards 4 --clients 2000 --seed 42 \
#     --trace-spans --trace-out /tmp/t.jsonl --slo "ttlb_us:count>=2000"
#   ./build/tools/bentotrace critpath /tmp/t.jsonl --json \
#     > bench/consensus_critpath_golden.json

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
out_json="${2:-${repo_root}/BENCH_datapath.json}"
obs_out_json="${3:-${repo_root}/BENCH_obs.json}"
store_out_json="${4:-${repo_root}/BENCH_store.json}"
min_time="${BENCH_MIN_TIME:-0.2}"
baseline_json="${BENCH_BASELINE:-${repo_root}/BENCH_datapath.json}"
obs_baseline_json="${BENCH_OBS_BASELINE:-${repo_root}/BENCH_obs.json}"
store_baseline_json="${BENCH_STORE_BASELINE:-${repo_root}/BENCH_store.json}"
trajectory_jsonl="${BENCH_TRAJECTORY:-${repo_root}/BENCH_trajectory.jsonl}"
git_rev="$(git -C "${repo_root}" rev-parse --short HEAD 2>/dev/null || echo unknown)"

bin="${build_dir}/bench/datapath"
if [[ ! -x "${bin}" ]]; then
  echo "error: ${bin} not built (cmake --build ${build_dir} --target datapath)" >&2
  exit 1
fi
scaling_bin="${build_dir}/bench/scalability"
if [[ ! -x "${scaling_bin}" ]]; then
  echo "error: ${scaling_bin} not built (cmake --build ${build_dir} --target scalability)" >&2
  exit 1
fi
consensus_bin="${build_dir}/bench/consensus_scale"
if [[ ! -x "${consensus_bin}" ]]; then
  echo "error: ${consensus_bin} not built (cmake --build ${build_dir} --target consensus_scale)" >&2
  exit 1
fi
store_bin="${build_dir}/bench/store"
if [[ ! -x "${store_bin}" ]]; then
  echo "error: ${store_bin} not built (cmake --build ${build_dir} --target store)" >&2
  exit 1
fi
scenarios_json="${BENCH_SCENARIOS:-${repo_root}/BENCH_scenarios.json}"
bentotrace_bin="${build_dir}/tools/bentotrace"
if [[ ! -x "${bentotrace_bin}" ]]; then
  echo "error: ${bentotrace_bin} not built (cmake --build ${build_dir} --target bentotrace)" >&2
  exit 1
fi
critpath_golden="${BENCH_CRITPATH_GOLDEN:-${repo_root}/bench/consensus_critpath_golden.json}"

raw_json="$(mktemp)"
raw4_json="$(mktemp)"
raw_store_json="$(mktemp)"
scaling_json="$(mktemp)"
consensus_summary="$(mktemp)"
baseline_copy="$(mktemp)"
obs_baseline_copy="$(mktemp)"
store_baseline_copy="$(mktemp)"
critpath_trace="$(mktemp)"
critpath_json="$(mktemp)"
critpath_diff_json="$(mktemp)"
trap 'rm -f "${raw_json}" "${raw4_json}" "${raw_store_json}" "${scaling_json}" "${consensus_summary}" "${baseline_copy}" "${obs_baseline_copy}" "${store_baseline_copy}" "${critpath_trace}" "${critpath_json}" "${critpath_diff_json}"' EXIT

# Snapshot the committed baselines before anything overwrites them (the
# default out paths are the baseline files themselves).
if [[ -f "${baseline_json}" ]]; then cp "${baseline_json}" "${baseline_copy}"; else : >"${baseline_copy}"; fi
if [[ -f "${obs_baseline_json}" ]]; then cp "${obs_baseline_json}" "${obs_baseline_copy}"; else : >"${obs_baseline_copy}"; fi
if [[ -f "${store_baseline_json}" ]]; then cp "${store_baseline_json}" "${store_baseline_copy}"; else : >"${store_baseline_copy}"; fi

"${bin}" --benchmark_format=json --benchmark_min_time="${min_time}" \
  >"${raw_json}"

# Shard-profiler gates again with the pooled dispatch path live: the same
# three benchmarks at --shards 4 (DESIGN.md §13).
"${bin}" --shards 4 \
  --benchmark_filter='Profiled|ProfilerOverhead|WindowedDispatchChurn' \
  --benchmark_format=json --benchmark_min_time="${min_time}" >"${raw4_json}"

# Sealed blob-store benchmarks (DESIGN.md §15): append/replay/compaction,
# the zero-alloc steady-state append, the replay-determinism witness, and
# the idle-mount invoke-datapath tax.
"${store_bin}" --benchmark_format=json --benchmark_min_time="${min_time}" \
  >"${raw_store_json}"

# Shard-scaling sweep (DESIGN.md §12): region-sharded simulator throughput
# at shards 1/2/4/8 on the large multi-region topology.
"${scaling_bin}" >"${scaling_json}"

# Consensus-scale standing scenario (DESIGN.md §13): SLO verdict is the exit
# code; the verdict JSON is byte-stable and committed as BENCH_scenarios.json.
set +e
"${consensus_bin}" --shards 4 --out "${scenarios_json}" >"${consensus_summary}"
consensus_exit=$?
set -e

# Tail-latency explainer gate (DESIGN.md §14): a fixed small spanned run of
# the same scenario, its per-request critical-path blame profile, and a
# `bentotrace diff` against the committed golden. The profile is a pure
# function of (seed, clients, topology) — byte-stable across hosts and
# shard counts — so the golden can be a committed JSON. The run carries its
# own SLO (the default windows floor assumes the 100k-session scale);
# --trace-spans is what the golden's blame numbers are made of.
"${consensus_bin}" --shards 4 --clients 2000 --seed 42 --trace-spans \
  --trace-out "${critpath_trace}" --slo "ttlb_us:count>=2000" >/dev/null
"${bentotrace_bin}" critpath "${critpath_trace}" --json >"${critpath_json}"
critpath_diff_exit=2  # 2 = skipped (no golden committed yet)
if [[ -f "${critpath_golden}" ]]; then
  set +e
  "${bentotrace_bin}" diff "${critpath_golden}" "${critpath_json}" --json \
    >"${critpath_diff_json}"
  critpath_diff_exit=$?
  set -e
else
  : >"${critpath_diff_json}"
fi

python3 - "${raw_json}" "${out_json}" "${obs_out_json}" \
  "${baseline_copy}" "${obs_baseline_copy}" "${trajectory_jsonl}" \
  "${git_rev}" "${BENCH_BASELINE_SKIP:-0}" "${scaling_json}" \
  "${raw4_json}" "${consensus_summary}" "${consensus_exit}" \
  "${scenarios_json}" "${critpath_json}" "${critpath_diff_json}" \
  "${critpath_diff_exit}" "${raw_store_json}" "${store_baseline_copy}" \
  "${store_out_json}" <<'PY'
import json
import sys

(raw_path, out_path, obs_out_path, baseline_path, obs_baseline_path,
 trajectory_path, git_rev, baseline_skip, scaling_path,
 raw4_path, consensus_summary_path, consensus_exit, scenarios_path,
 critpath_path, critpath_diff_path, critpath_diff_exit,
 raw_store_path, store_baseline_path, store_out_path) = sys.argv[1:20]
with open(raw_path) as f:
    raw = json.load(f)
with open(scaling_path) as f:
    scaling = json.load(f)
with open(raw4_path) as f:
    raw4 = json.load(f)
with open(consensus_summary_path) as f:
    consensus = json.load(f)
with open(scenarios_path) as f:
    scenarios = json.load(f)

by_name = {b["name"]: b for b in raw["benchmarks"]}
by4_name = {b["name"]: b for b in raw4["benchmarks"]}

def mb_s(name):
    return round(by_name[name]["bytes_per_second"] / 1e6, 1)

def counter(name, key):
    return by_name[name][key]

seed_509 = mb_s("BM_ChaCha20Seed/509")
seed_8192 = mb_s("BM_ChaCha20Seed/8192")
new_509 = mb_s("BM_ChaCha20/509")
new_8192 = mb_s("BM_ChaCha20/8192")

relay = by_name["BM_RelayDatapath3Hop"]
churn = by_name["BM_SimulatorEventChurn"]
frame = by_name["BM_CellFrameUnframe"]
net_base = by_name["BM_NetworkSendDatapath"]
net_idle = by_name["BM_NetworkSendDatapathChaosIdle"]
net_base_cells = net_base["items_per_second"]
net_idle_cells = net_idle["items_per_second"]
# The gated overhead comes from the paired benchmark, which alternates the
# two variants inside one timed loop — host drift between two separately-
# timed runs would otherwise read as fake overhead. Alloc counts are exact
# (fixed-batch probe in the benchmark), so the delta gates at literal zero.
chaos_overhead_pct = round(
    by_name["BM_NetworkSendChaosIdleOverhead"]["overhead_pct"], 2)
chaos_extra_allocs = round(
    net_idle["allocs_per_cell"] - net_base["allocs_per_cell"], 6)

distilled = {
    "bench": "datapath",
    "context": {
        "host_cpus": raw["context"]["num_cpus"],
        "mhz_per_cpu": raw["context"]["mhz_per_cpu"],
        "build_type": raw["context"].get("library_build_type", "unknown"),
    },
    "chacha20": {
        "seed_scalar_mb_s_509": seed_509,
        "seed_scalar_mb_s_8192": seed_8192,
        "kernel_mb_s_509": new_509,
        "kernel_mb_s_8192": new_8192,
        "speedup_509": round(new_509 / seed_509, 2),
        "speedup_8192": round(new_8192 / seed_8192, 2),
    },
    "relay_datapath_3hop": {
        "cells_per_sec": round(relay["items_per_second"]),
        "mb_per_sec": round(relay["bytes_per_second"] / 1e6, 1),
        "allocs_per_cell": relay["allocs_per_cell"],
    },
    "cell_frame_unframe": {
        "cells_per_sec": round(frame["items_per_second"]),
        "allocs_per_cell": frame["allocs_per_cell"],
    },
    "simulator_event_churn": {
        "events_per_sec": round(churn["items_per_second"]),
        "allocs_per_event": churn["allocs_per_event"],
    },
    "network_send_chaos_idle": {
        "baseline_cells_per_sec": round(net_base_cells),
        "idle_hooks_cells_per_sec": round(net_idle_cells),
        "overhead_pct": chaos_overhead_pct,
        "baseline_allocs_per_cell": net_base["allocs_per_cell"],
        "idle_hooks_allocs_per_cell": net_idle["allocs_per_cell"],
        "extra_allocs_per_cell": chaos_extra_allocs,
    },
}

with open(out_path, "w") as f:
    json.dump(distilled, f, indent=2)
    f.write("\n")

print(json.dumps(distilled, indent=2))

# Observability overhead distillation (BENCH_obs.json).
metrics_on = by_name["BM_RelayDatapath3Hop"]
metrics_off = by_name["BM_RelayDatapath3HopMetricsOff"]
traced = by_name["BM_RelayDatapath3HopTraced"]
span_traced = by_name["BM_RelayDatapath3HopSpanTraced"]
on_cells = metrics_on["items_per_second"]
off_cells = metrics_off["items_per_second"]
span_cells = span_traced["items_per_second"]
overhead_pct = round((off_cells - on_cells) / off_cells * 100.0, 2)
# Span overhead is measured against the metrics-on path from the same run:
# both sides share the host, so the ratio is host-independent.
span_overhead_pct = round((on_cells - span_cells) / on_cells * 100.0, 2)

def ns_per_op(name):
    b = by_name[name]
    unit = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[b["time_unit"]]
    return round(b["cpu_time"] * unit, 3)

obs = {
    "bench": "obs",
    "relay_datapath_3hop": {
        "metrics_on_cells_per_sec": round(on_cells),
        "metrics_off_cells_per_sec": round(off_cells),
        "metrics_overhead_pct": overhead_pct,
        "metrics_on_allocs_per_cell": metrics_on["allocs_per_cell"],
        "traced_cells_per_sec": round(traced["items_per_second"]),
        "traced_allocs_per_cell": traced["allocs_per_cell"],
        "span_traced_cells_per_sec": round(span_cells),
        "span_traced_allocs_per_cell": span_traced["allocs_per_cell"],
        "span_overhead_pct": span_overhead_pct,
    },
    "handles": {
        "counter_inc_ns": ns_per_op("BM_CounterIncrement"),
        "histogram_record_ns": ns_per_op("BM_HistogramRecord"),
        "trace_record_ns": ns_per_op("BM_TraceRecord"),
        "trace_record_allocs_per_event": by_name["BM_TraceRecord"]["allocs_per_event"],
    },
    # Shard-observatory cost story (DESIGN.md §13): the profiler hot hooks
    # charged to every cell (worst case), the paired-median overhead ratio,
    # and the windowed dispatch loop's alloc count — serial and pooled.
    "shard_profiler": {
        "profiled_allocs_per_cell":
            by_name["BM_RelayDatapath3HopProfiled"]["allocs_per_cell"],
        "profiler_overhead_pct":
            round(by_name["BM_RelayDatapath3HopProfilerOverhead"]["overhead_pct"], 2),
        "windowed_churn_allocs_per_event":
            by_name["BM_WindowedDispatchChurn"]["allocs_per_event"],
        "profiled_allocs_per_cell_shards4":
            by4_name["BM_RelayDatapath3HopProfiled"]["allocs_per_cell"],
        "profiler_overhead_pct_shards4":
            round(by4_name["BM_RelayDatapath3HopProfilerOverhead"]["overhead_pct"], 2),
        "windowed_churn_allocs_per_event_shards4":
            by4_name["BM_WindowedDispatchChurn"]["allocs_per_event"],
    },
}

with open(obs_out_path, "w") as f:
    json.dump(obs, f, indent=2)
    f.write("\n")

print(json.dumps(obs, indent=2))

# Sealed blob-store distillation (BENCH_store.json, DESIGN.md §15).
with open(raw_store_path) as f:
    raw_store = json.load(f)
s_by = {b["name"]: b for b in raw_store["benchmarks"]}

def s_mb(name):
    return round(s_by[name]["bytes_per_second"] / 1e6, 1)

s_idle = s_by["BM_StoreIdleInvokeOverhead"]
s_replay = s_by["BM_StoreReplay"]
s_compact = s_by["BM_StoreCompact"]
store = {
    "bench": "store",
    "append": {
        "sealed_mb_s_512": s_mb("BM_StoreAppend/512"),
        "sealed_mb_s_4096": s_mb("BM_StoreAppend/4096"),
        "plain_mb_s_4096": s_mb("BM_StoreAppendPlain/4096"),
        "appends_per_sec_512": round(s_by["BM_StoreAppend/512"]["items_per_second"]),
        "allocs_per_append_512": s_by["BM_StoreAppend/512"]["allocs_per_append"],
        "allocs_per_append_4096": s_by["BM_StoreAppend/4096"]["allocs_per_append"],
    },
    "replay": {
        "mb_per_sec": round(s_replay["bytes_per_second"] / 1e6, 1),
        "frames_per_sec": round(s_replay["items_per_second"]),
        "deterministic": int(s_replay["deterministic"]),
        "torn": int(s_replay["torn"]),
        "live_files": int(s_replay["live_files"]),
    },
    "compaction": {
        "compactions_per_sec": round(s_compact["items_per_second"]),
        "sealed_kb_per_compaction": round(
            s_compact["sealed_bytes_per_compaction"] / 1e3, 1),
        "reclaimed_ratio": round(s_compact["reclaimed_ratio"], 3),
    },
    "idle_mount": {
        "invoke_overhead_pct": round(s_idle["overhead_pct"], 2),
        "extra_allocs_per_invoke": s_idle["extra_allocs_per_invoke"],
    },
}

with open(store_out_path, "w") as f:
    json.dump(store, f, indent=2)
    f.write("\n")

print(json.dumps(store, indent=2))

# Smoke assertions: the invariants these PRs establish must hold wherever
# the benchmark runs, independent of absolute host speed.
failures = []
if distilled["relay_datapath_3hop"]["allocs_per_cell"] != 0:
    failures.append("relay datapath allocates per cell")
if distilled["simulator_event_churn"]["allocs_per_event"] != 0:
    failures.append("simulator event churn allocates per event")
if distilled["chacha20"]["speedup_509"] < 3.0:
    failures.append("ChaCha20 509B speedup below 3x scalar baseline")
if distilled["chacha20"]["speedup_8192"] < 3.0:
    failures.append("ChaCha20 8KiB speedup below 3x scalar baseline")
if obs["relay_datapath_3hop"]["metrics_on_allocs_per_cell"] != 0:
    failures.append("metrics-on datapath allocates per cell")
if obs["relay_datapath_3hop"]["traced_allocs_per_cell"] != 0:
    failures.append("traced datapath allocates per cell")
if obs["relay_datapath_3hop"]["span_traced_allocs_per_cell"] != 0:
    failures.append("span-traced datapath allocates per cell")
if obs["handles"]["trace_record_allocs_per_event"] != 0:
    failures.append("trace record allocates per event")
# Noise-tolerant: live metrics must stay within 10% of the disabled path,
# and per-cell span scopes within 15% of the metrics-on path.
if obs["relay_datapath_3hop"]["metrics_overhead_pct"] > 10.0:
    failures.append("metrics overhead on the cell datapath above 10%")
if obs["relay_datapath_3hop"]["span_overhead_pct"] > 15.0:
    failures.append("span tracing overhead on the cell datapath above 15%")
# Chaos-idle guard (DESIGN.md §9): supporting fault injection must be free
# when no plan is installed — zero extra allocations, <= 2% send throughput.
chaos_gate = distilled["network_send_chaos_idle"]
if chaos_gate["extra_allocs_per_cell"] > 0:
    failures.append("idle chaos hooks allocate on the network send path")
if chaos_gate["overhead_pct"] > 2.0:
    failures.append("idle chaos hooks cost the network send path above 2%")
# Sealed-store gates (DESIGN.md §15): steady-state appends are heap-free,
# replay of one log is byte-deterministic (SHA-256 namespace digest), and
# an idle persistent mount taxes the invoke datapath at most 2%.
if store["append"]["allocs_per_append_512"] != 0:
    failures.append("store append (512B) allocates in steady state")
if store["append"]["allocs_per_append_4096"] != 0:
    failures.append("store append (4KiB) allocates in steady state")
if store["replay"]["deterministic"] != 1:
    failures.append("store replay is not deterministic (snapshot digest drifted)")
if store["replay"]["torn"] != 0:
    failures.append("store replay reported a torn tail on a fully synced log")
if store["idle_mount"]["invoke_overhead_pct"] > 2.0:
    failures.append("idle persistent-store mount costs the invoke datapath above 2%")
# Shard profiler gates (DESIGN.md §13): hooks free of heap and <= 2% on the
# cell datapath, serial and pooled alike.
prof_gate = obs["shard_profiler"]
for suffix, label in (("", "shards=1"), ("_shards4", "shards=4")):
    if prof_gate[f"profiled_allocs_per_cell{suffix}"] != 0:
        failures.append(f"profiled datapath allocates per cell at {label}")
    if prof_gate[f"windowed_churn_allocs_per_event{suffix}"] != 0:
        failures.append(f"windowed dispatch churn allocates per event at {label}")
    if prof_gate[f"profiler_overhead_pct{suffix}"] > 2.0:
        failures.append(f"profiler overhead on the cell datapath above 2% at {label}")

# Consensus-scale scenario gate (DESIGN.md §13): the SLO engine's verdict
# (p99 TTFB ceiling among the objectives) is the exit code, and the wall
# attribution buckets must cover >= 95% of the windowed run.
scenario_verdict = scenarios.get("verdict", "fail")
if consensus_exit != "0" or scenario_verdict != "pass":
    detail = "; ".join(
        f"{o['name']} actual {o['actual']}" for o in scenarios.get("objectives", [])
        if not o.get("pass"))
    failures.append(f"consensus scenario SLO verdict: {scenario_verdict}"
                    + (f" ({detail})" if detail else ""))
if consensus["wall_attributed_pct"] < 95.0:
    failures.append(
        f"consensus scenario wall attribution {consensus['wall_attributed_pct']}% "
        "below 95%")
scenario_ttfb_p99 = next(
    (o["actual"] for o in scenarios.get("objectives", [])
     if o["name"] == "ttfb_us:p99"), None)
print(f"consensus scenario: verdict={scenario_verdict}, "
      f"ttfb_p99_us={scenario_ttfb_p99}, "
      f"attributed={consensus['wall_attributed_pct']}%, "
      f"imbalance_x1000={consensus['region_imbalance_x1000']}")

# ---- Tail-latency explainer gate (DESIGN.md §14) ------------------------
# The spanned run's blame profile names the stage that owns the most
# critical-path time, and `bentotrace diff` against the committed golden
# flags any per-segment mean/tail regression (>10% and >50 µs). Both land
# in the trajectory so the blame history is recorded PR over PR.
with open(critpath_path) as f:
    critpath = json.load(f)["critpath"]
critpath_top_seg = critpath.get("top", "")
critpath_tail_mean_us = critpath.get("cohorts", {}).get("tail_mean_us")
if critpath_diff_exit == "2":
    critpath_diff_verdict = "skip"
    print("critpath gate: no committed golden "
          "(regenerate: bentotrace critpath <trace> --json "
          "> bench/consensus_critpath_golden.json)")
else:
    with open(critpath_diff_path) as f:
        critpath_diff_verdict = json.load(f)["critpath_diff"]["verdict"]
    if critpath_diff_verdict != "pass" and baseline_skip != "1":
        failures.append(
            "critical-path blame regressed vs bench/consensus_critpath_golden"
            ".json (bentotrace diff: per-segment mean or tail mean grew "
            ">10% and >50us)")
print(f"critpath: top_seg={critpath_top_seg}, "
      f"tail_mean_us={critpath_tail_mean_us}, "
      f"diff_verdict={critpath_diff_verdict}")

# ---- Shard-scaling gate (DESIGN.md §12) ---------------------------------
# shards=4 must deliver >= 2.0x the cells/sec of shards=1 on the large
# multi-region topology. Parallel speedup needs parallel hardware: on a
# host with fewer than 4 CPUs the ratio is physically unreachable, so the
# gate records a skip (with the reason) instead of a meaningless failure.
shard_cps = {str(p["shards"]): round(p["cells_per_sec"])
             for p in scaling["sweep"]}
shard_speedup = round(scaling["speedup_4v1"], 3)
scaling_cpus = scaling["host_cpus"]
# Status and reason are separate fields so the trajectory stays machine-
# readable: every entry — skips included — records why it got its status
# and how many CPUs the host had.
if scaling_cpus >= 4:
    if shard_speedup < 2.0:
        shard_gate = "fail"
        shard_gate_reason = f"speedup_4v1={shard_speedup} below 2.0x"
        failures.append(
            f"shards=4 speedup {shard_speedup} below 2.0x over shards=1")
    else:
        shard_gate = "pass"
        shard_gate_reason = f"speedup_4v1={shard_speedup} >= 2.0x"
else:
    shard_gate = "skip"
    shard_gate_reason = (
        f"host_cpus={scaling_cpus} < 4: parallel speedup is physically "
        "unreachable on this runner")
print(f"shard scaling: cells/sec {shard_cps}, "
      f"speedup_4v1={shard_speedup}, gate={shard_gate} ({shard_gate_reason})")

# ---- Regression gate against the committed baselines --------------------
# Only host-independent metrics are gated; raw cells/s and MB/s depend on
# the runner and would make CI flaky.
def load_baseline(path):
    try:
        with open(path) as f:
            text = f.read().strip()
        return json.loads(text) if text else None
    except (OSError, ValueError):
        return None

if baseline_skip == "1":
    print("bench gate: skipped (BENCH_BASELINE_SKIP=1)")
else:
    base = load_baseline(baseline_path)
    obs_base = load_baseline(obs_baseline_path)
    if base is None or obs_base is None:
        print("bench gate: no committed baseline found, skipping comparison")
    else:
        def gate_speedup(label, now, then):
            if now < then * 0.85:
                failures.append(
                    f"{label} regressed >15% vs baseline ({now} < {then} * 0.85)")

        def gate_allocs(label, now, then):
            if now > then:
                failures.append(
                    f"{label} allocations regressed vs baseline ({now} > {then})")

        gate_speedup("ChaCha20 509B speedup",
                     distilled["chacha20"]["speedup_509"],
                     base["chacha20"]["speedup_509"])
        gate_speedup("ChaCha20 8KiB speedup",
                     distilled["chacha20"]["speedup_8192"],
                     base["chacha20"]["speedup_8192"])
        gate_allocs("relay datapath",
                    distilled["relay_datapath_3hop"]["allocs_per_cell"],
                    base["relay_datapath_3hop"]["allocs_per_cell"])
        gate_allocs("cell frame/unframe",
                    distilled["cell_frame_unframe"]["allocs_per_cell"],
                    base["cell_frame_unframe"]["allocs_per_cell"])
        gate_allocs("simulator event churn",
                    distilled["simulator_event_churn"]["allocs_per_event"],
                    base["simulator_event_churn"]["allocs_per_event"])
        gate_allocs("traced datapath",
                    obs["relay_datapath_3hop"]["traced_allocs_per_cell"],
                    obs_base["relay_datapath_3hop"]["traced_allocs_per_cell"])
        base_span = obs_base["relay_datapath_3hop"].get("span_traced_allocs_per_cell")
        if base_span is not None:
            gate_allocs("span-traced datapath",
                        obs["relay_datapath_3hop"]["span_traced_allocs_per_cell"],
                        base_span)
        base_chaos = base.get("network_send_chaos_idle")
        if base_chaos is not None:
            gate_allocs("idle chaos hooks",
                        chaos_gate["extra_allocs_per_cell"],
                        base_chaos["extra_allocs_per_cell"])
        store_base = load_baseline(store_baseline_path)
        if store_base is not None:
            gate_allocs("store append (512B)",
                        store["append"]["allocs_per_append_512"],
                        store_base["append"]["allocs_per_append_512"])
            gate_allocs("store append (4KiB)",
                        store["append"]["allocs_per_append_4096"],
                        store_base["append"]["allocs_per_append_4096"])
            if (store["replay"]["deterministic"] <
                    store_base["replay"]["deterministic"]):
                failures.append("store replay determinism regressed vs baseline")
        print("bench gate: compared against committed baselines"
              + (" — FAILED" if failures else " — ok"))

# Append this run to the perf trajectory (one JSON object per line) so the
# repo accumulates a PR-over-PR history of the gated metrics.
trajectory_entry = {
    "rev": git_rev,
    "speedup_509": distilled["chacha20"]["speedup_509"],
    "speedup_8192": distilled["chacha20"]["speedup_8192"],
    "relay_cells_per_sec": distilled["relay_datapath_3hop"]["cells_per_sec"],
    "relay_allocs_per_cell": distilled["relay_datapath_3hop"]["allocs_per_cell"],
    "churn_allocs_per_event": distilled["simulator_event_churn"]["allocs_per_event"],
    "metrics_overhead_pct": obs["relay_datapath_3hop"]["metrics_overhead_pct"],
    "span_overhead_pct": obs["relay_datapath_3hop"]["span_overhead_pct"],
    "span_traced_allocs_per_cell":
        obs["relay_datapath_3hop"]["span_traced_allocs_per_cell"],
    "chaos_idle_overhead_pct": chaos_gate["overhead_pct"],
    "chaos_idle_extra_allocs_per_cell": chaos_gate["extra_allocs_per_cell"],
    "host_cpus": scaling_cpus,
    "shard_cells_per_sec": shard_cps,
    "shard_speedup_4v1": shard_speedup,
    "shard_gate": shard_gate,
    "shard_gate_reason": shard_gate_reason,
    "profiler_overhead_pct": prof_gate["profiler_overhead_pct"],
    "profiler_overhead_pct_shards4": prof_gate["profiler_overhead_pct_shards4"],
    "profiled_allocs_per_cell": prof_gate["profiled_allocs_per_cell"],
    "windowed_churn_allocs_per_event":
        prof_gate["windowed_churn_allocs_per_event"],
    "scenario_verdict": scenario_verdict,
    "scenario_ttfb_p99_us": scenario_ttfb_p99,
    "critpath_top_seg": critpath_top_seg,
    "critpath_tail_mean_us": critpath_tail_mean_us,
    "critpath_diff_verdict": critpath_diff_verdict,
    "scenario_wall_attributed_pct": consensus["wall_attributed_pct"],
    "scenario_imbalance_x1000": consensus["region_imbalance_x1000"],
    "store_allocs_per_append": store["append"]["allocs_per_append_512"],
    "store_replay_deterministic": store["replay"]["deterministic"],
    "store_idle_overhead_pct": store["idle_mount"]["invoke_overhead_pct"],
    "gate": "skip" if baseline_skip == "1" else ("fail" if failures else "pass"),
}
with open(trajectory_path, "a") as f:
    f.write(json.dumps(trajectory_entry, sort_keys=True) + "\n")

if failures:
    print("BENCH SMOKE FAILURES: " + "; ".join(failures), file=sys.stderr)
    sys.exit(1)
PY

echo "wrote ${out_json}, ${obs_out_json}, ${store_out_json}, ${scenarios_json}; appended ${trajectory_jsonl}"
