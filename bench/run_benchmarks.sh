#!/usr/bin/env bash
# Run the datapath microbenchmarks and distill BENCH_datapath.json.
#
# Usage: bench/run_benchmarks.sh [build-dir] [out-json]
#
# The JSON records keystream throughput (seed scalar baseline vs the current
# 8-block kernel), the 3-hop relay datapath (cells/s, MB/s, allocs/cell), and
# simulator event churn (events/s, allocs/event). CI runs this as a smoke
# check: it fails if the zero-allocation invariant of the cell datapath is
# broken or the kernel regresses below 3x the in-binary scalar baseline.

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
out_json="${2:-${repo_root}/BENCH_datapath.json}"
min_time="${BENCH_MIN_TIME:-0.2}"

bin="${build_dir}/bench/datapath"
if [[ ! -x "${bin}" ]]; then
  echo "error: ${bin} not built (cmake --build ${build_dir} --target datapath)" >&2
  exit 1
fi

raw_json="$(mktemp)"
trap 'rm -f "${raw_json}"' EXIT

"${bin}" --benchmark_format=json --benchmark_min_time="${min_time}" \
  >"${raw_json}"

python3 - "${raw_json}" "${out_json}" <<'PY'
import json
import sys

raw_path, out_path = sys.argv[1], sys.argv[2]
with open(raw_path) as f:
    raw = json.load(f)

by_name = {b["name"]: b for b in raw["benchmarks"]}

def mb_s(name):
    return round(by_name[name]["bytes_per_second"] / 1e6, 1)

def counter(name, key):
    return by_name[name][key]

seed_509 = mb_s("BM_ChaCha20Seed/509")
seed_8192 = mb_s("BM_ChaCha20Seed/8192")
new_509 = mb_s("BM_ChaCha20/509")
new_8192 = mb_s("BM_ChaCha20/8192")

relay = by_name["BM_RelayDatapath3Hop"]
churn = by_name["BM_SimulatorEventChurn"]
frame = by_name["BM_CellFrameUnframe"]

distilled = {
    "bench": "datapath",
    "context": {
        "host_cpus": raw["context"]["num_cpus"],
        "mhz_per_cpu": raw["context"]["mhz_per_cpu"],
        "build_type": raw["context"].get("library_build_type", "unknown"),
    },
    "chacha20": {
        "seed_scalar_mb_s_509": seed_509,
        "seed_scalar_mb_s_8192": seed_8192,
        "kernel_mb_s_509": new_509,
        "kernel_mb_s_8192": new_8192,
        "speedup_509": round(new_509 / seed_509, 2),
        "speedup_8192": round(new_8192 / seed_8192, 2),
    },
    "relay_datapath_3hop": {
        "cells_per_sec": round(relay["items_per_second"]),
        "mb_per_sec": round(relay["bytes_per_second"] / 1e6, 1),
        "allocs_per_cell": relay["allocs_per_cell"],
    },
    "cell_frame_unframe": {
        "cells_per_sec": round(frame["items_per_second"]),
        "allocs_per_cell": frame["allocs_per_cell"],
    },
    "simulator_event_churn": {
        "events_per_sec": round(churn["items_per_second"]),
        "allocs_per_event": churn["allocs_per_event"],
    },
}

with open(out_path, "w") as f:
    json.dump(distilled, f, indent=2)
    f.write("\n")

print(json.dumps(distilled, indent=2))

# Smoke assertions: the invariants this PR establishes must hold wherever
# the benchmark runs, independent of absolute host speed.
failures = []
if distilled["relay_datapath_3hop"]["allocs_per_cell"] != 0:
    failures.append("relay datapath allocates per cell")
if distilled["simulator_event_churn"]["allocs_per_event"] != 0:
    failures.append("simulator event churn allocates per event")
if distilled["chacha20"]["speedup_509"] < 3.0:
    failures.append("ChaCha20 509B speedup below 3x scalar baseline")
if distilled["chacha20"]["speedup_8192"] < 3.0:
    failures.append("ChaCha20 8KiB speedup below 3x scalar baseline")
if failures:
    print("BENCH SMOKE FAILURES: " + "; ".join(failures), file=sys.stderr)
    sys.exit(1)
PY

echo "wrote ${out_json}"
