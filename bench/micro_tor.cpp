// Microbenchmarks: Tor substrate hot paths — onion layering, cell codec,
// circuit construction over the simulated network, stream goodput.
#include <benchmark/benchmark.h>

#include "tor/cell.hpp"
#include "tor/relaycrypto.hpp"
#include "tor/testbed.hpp"
#include "util/rng.hpp"

namespace bt = bento::tor;
namespace bu = bento::util;

static void BM_CellPackUnpack(benchmark::State& state) {
  bt::Cell cell;
  cell.circ_id = 42;
  cell.command = bt::CellCommand::Relay;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bt::Cell::unpack(cell.pack()));
  }
}
BENCHMARK(BM_CellPackUnpack);

static void BM_OnionLayer3Hop(benchmark::State& state) {
  bu::Rng rng(1);
  std::vector<bt::LayerCrypto> origin_layers, relay_layers;
  for (int i = 0; i < 3; ++i) {
    auto keys = bt::LayerKeys::derive(rng.bytes(32), "bench");
    origin_layers.emplace_back(keys);
    relay_layers.emplace_back(keys);
  }
  bt::RelayCell rc;
  rc.relay_cmd = bt::RelayCommand::Data;
  rc.stream_id = 1;
  rc.data = rng.bytes(bt::kRelayDataMax);

  for (auto _ : state) {
    auto payload = rc.pack();
    origin_layers[2].seal_forward(payload);
    for (int i = 2; i >= 0; --i) origin_layers[static_cast<std::size_t>(i)].crypt_forward(payload);
    for (int i = 0; i < 3; ++i) {
      relay_layers[static_cast<std::size_t>(i)].crypt_forward(payload);
      benchmark::DoNotOptimize(
          relay_layers[static_cast<std::size_t>(i)].check_forward(payload));
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          bt::kCellPayloadLen);
}
BENCHMARK(BM_OnionLayer3Hop);

static void BM_CircuitBuild(benchmark::State& state) {
  // Full 3-hop circuit construction, including simulated network delivery.
  for (auto _ : state) {
    state.PauseTiming();
    bt::Testbed bed;
    bed.finalize();
    auto client = bed.make_client("bench");
    state.ResumeTiming();
    bt::CircuitOrigin* built = nullptr;
    client->build_circuit({}, [&](bt::CircuitOrigin* c) { built = c; });
    bed.run();
    benchmark::DoNotOptimize(built);
  }
}
BENCHMARK(BM_CircuitBuild)->Unit(benchmark::kMillisecond);

static void BM_StreamTransfer1MB(benchmark::State& state) {
  // Wall-clock cost of simulating a 1 MB transfer through a 3-hop circuit
  // (cells, flow control, fair queuing) — the simulator's core workload.
  for (auto _ : state) {
    state.PauseTiming();
    bt::Testbed bed;
    bed.finalize();
    bu::Rng rng(7);
    const bu::Bytes body = rng.bytes(1'000'000);
    bed.add_web_server(bt::parse_addr("93.184.216.34"),
                       [&body](const std::string&) { return body; });
    auto client = bed.make_client("bench");
    bt::PathConstraints constraints;
    constraints.exit_to = bt::Endpoint{bt::parse_addr("93.184.216.34"), 80};
    bt::CircuitOrigin* circ = nullptr;
    client->build_circuit(constraints, [&](bt::CircuitOrigin* c) { circ = c; });
    bed.run();
    state.ResumeTiming();

    std::size_t received = 0;
    bt::Stream::Callbacks cbs;
    cbs.on_data = [&](bu::ByteView d) { received += d.size(); };
    bt::Stream* stream = circ->open_stream(*constraints.exit_to, std::move(cbs));
    stream->set_on_connected([stream] { stream->send(bu::to_bytes("GET /\n")); });
    bed.run();
    benchmark::DoNotOptimize(received);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1'000'000);
}
BENCHMARK(BM_StreamTransfer1MB)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
