// Microbenchmarks: BentoScript interpreter — the per-invocation cost of
// the paper's "functions in a high-level language" substrate.
#include <benchmark/benchmark.h>

#include "script/analyzer.hpp"
#include "script/interp.hpp"
#include "util/zlite.hpp"

namespace sc = bento::script;
namespace bu = bento::util;

static void BM_ParseBrowserSizedFunction(benchmark::State& state) {
  const std::string source = R"(
state = {"padding": 0}
def fetched(body):
    compressed = zlib_stub(body)
    final = compressed
    padding = state["padding"]
    if padding - len(final) > 0:
        final = final + pad_stub(padding - len(final))
    api_stub(final)
def on_message(msg):
    req = str(msg).split(" ")
    state["padding"] = int(req[1])
)";
  for (auto _ : state) {
    benchmark::DoNotOptimize(sc::parse(source));
  }
}
BENCHMARK(BM_ParseBrowserSizedFunction);

static void BM_AnalyzeBrowserSizedFunction(benchmark::State& state) {
  // The static verifier runs once per upload, before Container::install;
  // this is the admission-control overhead added to every function upload.
  std::shared_ptr<const sc::Program> program = sc::parse(R"(
state = {"padding": 0}
def fetched(body):
    compressed = zlib.compress(body)
    final = compressed
    padding = state["padding"]
    if padding - len(final) > 0:
        final = final + os.urandom(padding - len(final))
    api.send(final)
def on_message(msg):
    req = str(msg).split(" ")
    state["padding"] = int(req[1])
    net.get(req[0], fetched)
)");
  for (auto _ : state) {
    benchmark::DoNotOptimize(sc::analyze(*program));
  }
}
BENCHMARK(BM_AnalyzeBrowserSizedFunction);

static void BM_InterpFib20(benchmark::State& state) {
  std::shared_ptr<const sc::Program> program = sc::parse(R"(
def fib(n):
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)
)");
  for (auto _ : state) {
    sc::Interpreter interp(program);
    sc::install_stdlib(interp);
    interp.run();
    benchmark::DoNotOptimize(interp.call("fib", {sc::Value::integer(20)}));
  }
}
BENCHMARK(BM_InterpFib20)->Unit(benchmark::kMillisecond);

static void BM_InterpTightLoop(benchmark::State& state) {
  std::shared_ptr<const sc::Program> program = sc::parse(R"(
def spin(n):
    total = 0
    i = 0
    while i < n:
        total += i
        i += 1
    return total
)");
  sc::Interpreter interp(program);
  sc::install_stdlib(interp);
  interp.run();
  for (auto _ : state) {
    benchmark::DoNotOptimize(interp.call("spin", {sc::Value::integer(10'000)}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 10'000);
}
BENCHMARK(BM_InterpTightLoop);

static void BM_ZliteCompressHtml(benchmark::State& state) {
  std::string page;
  for (int i = 0; i < 2000; ++i) {
    page += "<div class=\"item\"><a href=\"/p" + std::to_string(i % 37) +
            "\">link text here</a></div>\n";
  }
  const bu::Bytes input = bu::to_bytes(page);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bu::zlite::compress(input));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(input.size()));
}
BENCHMARK(BM_ZliteCompressHtml);

BENCHMARK_MAIN();
