// Shard-scaling sweep (ROADMAP item 1, DESIGN.md §12): cells/sec on a
// large multi-region topology as the simulator worker count grows. The
// paper's evaluation needs consensus-scale topologies with flash-crowd
// client populations; the single-threaded event loop plateaus far below
// that, and this harness is the committed evidence that region sharding
// buys real throughput without giving up determinism.
//
// Topology: 8 regions x 24 nodes. Intra-region links are 2 ms (explicit),
// cross-region links take the 50 ms default, so the conservative lookahead
// is 50 ms and each window holds ~25 intra-region hops per chain. Every
// delivery runs a ChaCha20-style mixing loop standing in for relay crypto —
// the real per-cell cost that makes parallel dispatch worthwhile.
//
// Output: one JSON object (host_cpus, per-shard cells/sec, speedup_4v1).
// run_benchmarks.sh parses it, appends the curve to BENCH_trajectory.jsonl
// and gates shards=4 >= 2.0x shards=1 — only on hosts with >= 4 CPUs; a
// 1-CPU runner cannot exhibit parallel speedup and records a skip instead.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace bs = bento::sim;
namespace bu = bento::util;

using bu::Duration;
using bu::Time;

namespace {

constexpr int kRegions = 8;
constexpr int kPerRegion = 24;
constexpr int kIntraChains = 2;    // echo chains each node starts inside its region
constexpr int kIntraBudget = 500;  // hops per intra-region chain
constexpr int kCrossBudget = 24;   // hops per cross-region chain

// Deliveries across all shards; relaxed is fine — the count is only read
// after run() returns, and the tally does not feed back into the simulation.
// bentolint: allow(BL105 bench-only delivery tally, read after the run joins)
std::atomic<std::uint64_t> g_cells{0};

/// Stand-in for the per-cell relay crypto: three hops' worth of ChaCha20
/// rounds (20 each) over a 64-byte state. The result feeds the reply
/// payload so the optimizer cannot drop it. Sized so the parallelizable
/// work dominates the serial event-heap overhead — the scaling curve then
/// reflects dispatch parallelism, not allocator contention.
std::uint32_t mix_cell(std::uint32_t x) {
  std::uint32_t s[16];
  for (int i = 0; i < 16; ++i) s[i] = x + static_cast<std::uint32_t>(i) * 0x9e3779b9u;
  for (int round = 0; round < 30; ++round) {
    for (int i = 0; i < 4; ++i) {
      std::uint32_t& a = s[i];
      std::uint32_t& b = s[4 + i];
      std::uint32_t& c = s[8 + i];
      std::uint32_t& d = s[12 + i];
      a += b; d ^= a; d = (d << 16) | (d >> 16);
      c += d; b ^= c; b = (b << 12) | (b >> 20);
      a += b; d ^= a; d = (d << 8) | (d >> 24);
      c += d; b ^= c; b = (b << 7) | (b >> 25);
    }
  }
  std::uint32_t out = 0;
  for (std::uint32_t v : s) out ^= v;
  return out;
}

/// Echoes until the 16-bit hop budget in bytes [0,1] runs out, doing the
/// mixing work on every delivery.
class RelayHandler : public bs::MessageHandler {
 public:
  bs::Network* net = nullptr;
  bs::NodeId self = bs::kInvalidNode;

  void on_message(bs::NodeId from, bu::Bytes data) override {
    g_cells.fetch_add(1, std::memory_order_relaxed);
    if (data.size() < 3) return;
    const unsigned budget = (static_cast<unsigned>(data[0]) << 8) | data[1];
    const std::uint32_t mixed = mix_cell(data[2] + budget);
    if (budget == 0) return;
    data[0] = static_cast<std::uint8_t>((budget - 1) >> 8);
    data[1] = static_cast<std::uint8_t>((budget - 1) & 0xff);
    data[2] = static_cast<std::uint8_t>(mixed);
    net->send(self, from, std::move(data));
  }
};

struct SweepPoint {
  unsigned shards;
  std::uint64_t cells;
  double seconds;
};

SweepPoint run_sweep(unsigned shards) {
  bs::Simulator sim(42, shards);
  for (int r = 1; r < kRegions; ++r) sim.add_region();
  bs::Network net(sim);
  std::vector<std::unique_ptr<RelayHandler>> handlers;
  std::vector<bs::NodeId> ids;
  // Regions are assigned before any latency entries exist, so each
  // set_region lookahead rescan is O(1).
  for (int r = 0; r < kRegions; ++r) {
    for (int i = 0; i < kPerRegion; ++i) {
      auto h = std::make_unique<RelayHandler>();
      const bs::NodeId id = net.add_node(bs::NodeSpec{.name = "relay"}, h.get());
      net.set_region(id, static_cast<std::uint32_t>(r));
      h->net = &net;
      h->self = id;
      ids.push_back(id);
      handlers.push_back(std::move(h));
    }
  }
  for (int r = 0; r < kRegions; ++r) {
    for (int i = 0; i < kPerRegion; ++i) {
      for (int j = i + 1; j < kPerRegion; ++j) {
        net.set_latency(ids[r * kPerRegion + i], ids[r * kPerRegion + j],
                        Duration::millis(2));
      }
    }
  }

  g_cells.store(0, std::memory_order_relaxed);
  const Time start = Time::from_micros(1000);
  auto seed_chain = [&net](bs::NodeId src, bs::NodeId dst, int budget) {
    bu::Bytes cell(64, 0);
    cell[0] = static_cast<std::uint8_t>(budget >> 8);
    cell[1] = static_cast<std::uint8_t>(budget & 0xff);
    net.send(src, dst, std::move(cell));
  };
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto region = static_cast<std::uint32_t>(i / kPerRegion);
    const bs::NodeId src = ids[i];
    sim.post(region, start, [&, i, src] {
      for (int c = 0; c < kIntraChains; ++c) {
        const std::size_t peer =
            (i % kPerRegion + 1 + c) % kPerRegion + (i / kPerRegion) * kPerRegion;
        seed_chain(src, ids[peer], kIntraBudget);
      }
      seed_chain(src, ids[(i + kPerRegion) % ids.size()], kCrossBudget);
    });
  }

  const auto t0 = std::chrono::steady_clock::now();
  sim.run();
  const auto t1 = std::chrono::steady_clock::now();
  return SweepPoint{shards, g_cells.load(std::memory_order_relaxed),
                    std::chrono::duration<double>(t1 - t0).count()};
}

}  // namespace

int main() {
  const unsigned host_cpus = std::thread::hardware_concurrency();
  const unsigned sweep[] = {1, 2, 4, 8};
  std::vector<SweepPoint> points;
  for (unsigned shards : sweep) points.push_back(run_sweep(shards));

  std::printf("{\n");
  std::printf("  \"bench\": \"shard_scaling\",\n");
  std::printf("  \"host_cpus\": %u,\n", host_cpus);
  std::printf("  \"regions\": %d,\n", kRegions);
  std::printf("  \"nodes\": %d,\n", kRegions * kPerRegion);
  std::printf("  \"sweep\": [\n");
  double cps1 = 0.0, cps4 = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    const double cps = p.seconds > 0.0 ? static_cast<double>(p.cells) / p.seconds : 0.0;
    if (p.shards == 1) cps1 = cps;
    if (p.shards == 4) cps4 = cps;
    std::printf("    {\"shards\": %u, \"cells\": %llu, \"seconds\": %.4f, "
                "\"cells_per_sec\": %.0f}%s\n",
                p.shards, static_cast<unsigned long long>(p.cells), p.seconds,
                cps, i + 1 < points.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"speedup_4v1\": %.3f\n", cps1 > 0.0 ? cps4 / cps1 : 0.0);
  std::printf("}\n");
  return 0;
}
