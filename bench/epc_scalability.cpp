// §7.3 "Scalability of Browser": how many concurrent functions fit on one
// Bento box given SGX's protected-memory budget.
//
// Paper numbers: Bento server + Browser use ~16-20 MB; conclaves add
// ~7.3 MB; usable EPC is 93 MiB [34]; paging exists beyond that. This
// harness deploys Browser-sized functions one by one onto a single box and
// reports committed EPC, the paging point, and the conclave-transition
// overhead per invocation.
#include <cstdio>

#include "core/world.hpp"
#include "functions/library.hpp"
#include "tee/epc.hpp"

namespace bc = bento::core;
namespace bf = bento::functions;
namespace bu = bento::util;

namespace {
// The paper's measured Browser working set (§7.3: "maximum memory usage of
// a Bento server and Browser is roughly 16-20 MB").
constexpr std::size_t kBrowserWorkingSet = 18u << 20;
}  // namespace

int main() {
  std::printf("Scalability (paper 7.3): concurrent Browser-sized functions vs "
              "the 93 MiB usable EPC\n\n");
  std::printf("conclave baseline overhead: %.1f MB (paper: 7.3 MB)\n",
              bento::tee::Conclave::kBaselineOverheadBytes / 1e6);
  std::printf("modelled Browser working set: %.1f MB (paper: 16-20 MB)\n",
              kBrowserWorkingSet / 1e6);
  std::printf("usable EPC: %.1f MiB\n\n", bento::tee::kEpcUsableBytes / 1048576.0);

  bc::BentoWorld world;
  world.start();
  auto client = world.make_client("alice");
  auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());
  const std::string box = boxes[0];
  bc::BentoServer* server = world.server_for(box);

  std::printf("%-10s %-14s %-12s %-12s\n", "functions", "EPC committed",
              "paging?", "page faults");
  for (int i = 1; i <= 8; ++i) {
    std::shared_ptr<bc::BentoConnection> conn;
    client.bento->connect(box, [&](std::shared_ptr<bc::BentoConnection> c) {
      conn = std::move(c);
    });
    world.run();
    if (conn == nullptr) break;
    bool ok = false;
    conn->spawn(bc::kImagePythonOpSgx, [&](bool s, std::string) { ok = s; });
    world.run();
    if (!ok) {
      std::printf("spawn %d refused (EPC exhausted)\n", i);
      break;
    }
    auto manifest = bf::browser_manifest();
    manifest.name = "browser-" + std::to_string(i);
    conn->upload(manifest, bf::browser_source(), "", {},
                 [&](std::optional<bc::TokenPair> t, std::string) {
                   ok = t.has_value();
                 });
    world.run();
    if (!ok) break;
    // Model the function's steady-state working set against the EPC, as the
    // paper does when estimating how many functions fit.
    // (The script interpreter's own heap is tiny; the paper's figure counts
    // the whole CPython + requests stack, which we account for explicitly.)
    server->epc().allocate(1000 + static_cast<std::uint64_t>(i), kBrowserWorkingSet);

    std::printf("%-10d %-14.1f %-12s %-12llu\n", i,
                server->epc().committed() / 1e6,
                server->epc().paging() ? "yes" : "no",
                static_cast<unsigned long long>(server->epc().page_faults()));
  }

  const std::size_t per_function_bytes =
      kBrowserWorkingSet + bento::tee::Conclave::kBaselineOverheadBytes;
  std::printf("\nfit without paging: %d functions of %.1f MB each "
              "(paper: \"multiple functions without straining the SGX memory "
              "limits\")\n",
              static_cast<int>(bento::tee::kEpcUsableBytes / per_function_bytes),
              per_function_bytes / 1e6);
  std::printf("conclave transition overhead per invocation: %lld us "
              "(paper: nominal vs Tor's circuit latency)\n",
              static_cast<long long>(bc::kEcallOverhead.count_micros()));
  return 0;
}
