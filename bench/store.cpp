// Sealed blob-store benchmarks (DESIGN.md §15): the durability layer's own
// perf story. Run via bench/run_benchmarks.sh, which distills the
// google-benchmark JSON into BENCH_store.json and gates the invariants:
//
//   * steady-state append — overwrite-in-place of a warm path set — performs
//     ZERO heap allocations per record (frame scratch, sealer scratch, LRU
//     node and cache buffer are all reused), measured with an exact
//     fixed-batch probe outside the timed loop;
//   * replay is deterministic: re-opening the same log reproduces a
//     byte-identical namespace (SHA-256 snapshot digest) every time;
//   * mounting the persistent store under a function that never touches the
//     filesystem costs the invoke datapath at most 2% (paired-median A/B,
//     persistent_store off vs on, same echo workload).
//
// Also measured, for the trajectory: sealed vs plaintext append throughput,
// replay MB/s over a mixed put/remove/overwrite log, and compaction MB/s
// with the fraction of the log it reclaims.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <optional>
#include <string>
#include <vector>

#include "core/world.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/sha256.hpp"
#include "store/sealer.hpp"
#include "store/store.hpp"
#include "store/volume.hpp"
#include "util/rng.hpp"

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

// The replaced operator new below is malloc-backed, so pairing its result
// with std::free in operator delete is correct; GCC's heuristic can't see
// through the replacement and warns spuriously.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(al),
                                   (n + static_cast<std::size_t>(al) - 1) &
                                       ~(static_cast<std::size_t>(al) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t al) { return ::operator new(n, al); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace bc = bento::core;
namespace bcr = bento::crypto;
namespace bst = bento::store;
namespace bu = bento::util;

namespace {

std::uint64_t allocs() { return g_allocs.load(std::memory_order_relaxed); }

bcr::ChaChaKey bench_key() {
  bcr::ChaChaKey key{};
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::uint8_t>(0x42 + i);
  }
  return key;
}

// ---- Append path ---------------------------------------------------------

/// A store over a fresh volume with a fixed path set; batch() overwrites the
/// paths round-robin — the steady state the zero-allocation invariant is
/// stated for.
struct StoreHarness {
  bst::Volume volume;
  std::unique_ptr<bst::BlobStore> store;
  std::vector<std::string> paths;
  bu::Bytes payload;
  std::size_t cursor = 0;

  StoreHarness(std::size_t payload_bytes, std::size_t n_paths, bool sealed,
               std::size_t segment_bytes) {
    bst::StoreOptions opts;
    opts.segment_bytes = segment_bytes;
    auto sealer =
        sealed ? bst::make_chapoly_sealer(bench_key()) : bst::make_null_sealer();
    store = std::make_unique<bst::BlobStore>(volume, std::move(sealer), opts);
    store->replay();
    bu::Rng rng(11);
    payload = rng.bytes(payload_bytes);
    paths.reserve(n_paths);
    for (std::size_t i = 0; i < n_paths; ++i) {
      paths.push_back("blob/" + std::to_string(i));
    }
  }

  void batch(int n) {
    for (int i = 0; i < n; ++i) {
      store->put(paths[cursor], payload);
      cursor = (cursor + 1) % paths.size();
    }
  }
};

constexpr int kAppendBatch = 64;
constexpr int kAppendProbeBatches = 16;
constexpr std::size_t kAppendPaths = 64;
// Large enough that the warm-up plus the alloc probe stay inside the first
// (pre-reserved) segment: a roll allocates by design and would smear the
// exact per-append figure.
constexpr std::size_t kAppendSegmentBytes = 16ull << 20;

// Alloc accounting runs over a fixed batch count *outside* the timed loop so
// the per-append figure is exact and iteration-count independent. During the
// timed loop, compaction (the store's own background duty) runs when the
// garbage ratio asks for it, but paused — it has its own benchmark below.
void run_append(benchmark::State& state, StoreHarness& h) {
  // Warm-up: two full rounds build the index entries, LRU nodes and cache
  // buffers; from then on every put is an overwrite-in-place.
  h.batch(static_cast<int>(2 * h.paths.size()));

  const std::uint64_t allocs_before = allocs();
  for (int i = 0; i < kAppendProbeBatches; ++i) h.batch(kAppendBatch);
  const std::uint64_t allocs_delta = allocs() - allocs_before;

  std::uint64_t appends = 0;
  for (auto _ : state) {
    h.batch(kAppendBatch);
    appends += kAppendBatch;
    if (h.store->wants_compaction()) {
      state.PauseTiming();
      h.store->compact();
      state.ResumeTiming();
    }
  }

  state.SetItemsProcessed(static_cast<std::int64_t>(appends));
  state.SetBytesProcessed(
      static_cast<std::int64_t>(appends * h.payload.size()));
  state.counters["allocs_per_append"] = benchmark::Counter(
      static_cast<double>(allocs_delta) /
      static_cast<double>(kAppendProbeBatches * kAppendBatch));
}

}  // namespace

static void BM_StoreAppend(benchmark::State& state) {
  StoreHarness h(static_cast<std::size_t>(state.range(0)), kAppendPaths,
                 /*sealed=*/true, kAppendSegmentBytes);
  run_append(state, h);
}
BENCHMARK(BM_StoreAppend)->Arg(512)->Arg(4096);

static void BM_StoreAppendPlain(benchmark::State& state) {
  StoreHarness h(static_cast<std::size_t>(state.range(0)), kAppendPaths,
                 /*sealed=*/false, kAppendSegmentBytes);
  run_append(state, h);
}
BENCHMARK(BM_StoreAppendPlain)->Arg(4096);

// ---- Replay --------------------------------------------------------------

namespace {

/// A synced log with history: overwrites, removes, re-adds — so replay
/// exercises index churn, not just inserts. The reference digest is what
/// every re-open must reproduce.
struct ReplayFixture {
  bst::Volume volume;
  bst::StoreOptions opts;
  bcr::Digest reference{};
  std::size_t live_files = 0;

  ReplayFixture() {
    opts.segment_bytes = 64 * 1024;
    bst::BlobStore store(volume, bst::make_chapoly_sealer(bench_key()), opts);
    store.replay();
    bu::Rng rng(13);
    for (int round = 0; round < 6; ++round) {
      for (int i = 0; i < 64; ++i) {
        store.put("blob/" + std::to_string(i),
                  rng.bytes(100 + (static_cast<std::size_t>(i) * 37 +
                                   static_cast<std::size_t>(round) * 211) % 1900));
      }
      for (int i = 0; i < 8; ++i) {
        store.remove("blob/" + std::to_string((round * 8 + i) % 64));
      }
    }
    reference = store.snapshot_digest();
    live_files = store.live_files();
  }
};

}  // namespace

static void BM_StoreReplay(benchmark::State& state) {
  ReplayFixture fx;
  std::uint64_t frames = 0;
  std::uint64_t bytes = 0;
  bool deterministic = true;
  bool torn = false;
  for (auto _ : state) {
    bst::BlobStore store(fx.volume, bst::make_chapoly_sealer(bench_key()),
                         fx.opts);
    const bst::ReplayReport report = store.replay();
    frames += report.frames;
    bytes += report.bytes;
    torn |= report.torn;
    deterministic &= (store.snapshot_digest() == fx.reference) &&
                     (store.live_files() == fx.live_files);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(frames));
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
  state.counters["deterministic"] = benchmark::Counter(deterministic ? 1.0 : 0.0);
  state.counters["torn"] = benchmark::Counter(torn ? 1.0 : 0.0);
  state.counters["live_files"] = benchmark::Counter(static_cast<double>(fx.live_files));
}
BENCHMARK(BM_StoreReplay);

// ---- Compaction ----------------------------------------------------------

// Each iteration compacts a freshly grown log (~12 overwrite rounds over 32
// paths in 32 KiB segments — garbage well past the threshold); the rebuild
// happens under PauseTiming so only compact() is on the clock. Throughput is
// stated over the *sealed* (non-active) bytes — the part of the log the
// compactor actually walks and rewrites.
static void BM_StoreCompact(benchmark::State& state) {
  std::optional<StoreHarness> h;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_reclaimed = 0;
  for (auto _ : state) {
    state.PauseTiming();
    h.emplace(/*payload_bytes=*/512, /*n_paths=*/32, /*sealed=*/true,
              /*segment_bytes=*/32 * 1024);
    h->batch(32 * 12);
    std::uint64_t sealed_before = 0;
    const auto& segments = h->volume.segments();
    for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
      sealed_before += segments[i].data.size();
    }
    const std::uint64_t log_before = h->store->log_bytes();
    state.ResumeTiming();
    h->store->compact();
    bytes_in += sealed_before;
    bytes_reclaimed += log_before - h->store->log_bytes();
  }
  // No bytes_per_second here: compaction copies *live* records and skips
  // dead ones without touching their bytes, so a log-sized denominator would
  // overstate it wildly. items == compactions; the counters say how much
  // sealed log each one disposed of and what fraction came back.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["sealed_bytes_per_compaction"] = benchmark::Counter(
      static_cast<double>(bytes_in) / static_cast<double>(state.iterations()));
  state.counters["reclaimed_ratio"] = benchmark::Counter(
      bytes_in > 0 ? static_cast<double>(bytes_reclaimed) /
                         static_cast<double>(bytes_in)
                   : 0.0);
}
BENCHMARK(BM_StoreCompact);

// ---- Idle-store datapath tax ---------------------------------------------

namespace {

/// A one-box world with an echo function deployed; batch() pushes invokes
/// through the full client->circuit->container datapath. The function never
/// touches fs.*, so with persistent_store on the mounted StoreBackend is
/// pure bystander — exactly the tax the 2% gate bounds.
struct WorldHarness {
  bc::BentoWorld world;
  bc::BentoWorld::Client client;
  std::shared_ptr<bc::BentoConnection> conn;
  std::optional<bc::TokenPair> tokens;
  std::uint64_t received = 0;
  bu::Bytes payload;

  static bc::BentoWorldOptions options(bool persistent) {
    bc::BentoWorldOptions o;
    o.testbed.guards = 2;
    o.testbed.middles = 2;
    o.testbed.exits = 2;
    o.persistent_store = persistent;
    return o;
  }

  explicit WorldHarness(bool persistent) : world(options(persistent)) {
    world.start();
    client = world.make_client("bench");
    const auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());
    client.bento->connect(boxes[0],
                          [this](std::shared_ptr<bc::BentoConnection> c) {
                            conn = std::move(c);
                          });
    world.run();
    conn->spawn(bc::kImagePython, [this](bool ok, std::string) {
      if (!ok) return;
      bc::FunctionManifest manifest;
      manifest.name = "bench";
      // The permissive policy's ceilings, verbatim: budgets are cumulative
      // over the function's lifetime and the bench invokes ~100k times.
      manifest.resources.memory_bytes = 64ull << 20;
      manifest.resources.cpu_instructions = 2'000'000'000ull;
      manifest.resources.disk_bytes = 1ull << 20;
      manifest.resources.network_bytes = 4ull << 30;
      conn->upload(manifest, "def on_message(msg):\n    api.send(msg)\n", "", {},
                   [this](std::optional<bc::TokenPair> t, std::string) {
                     tokens = t;
                   });
    });
    world.run();
    conn->set_output_handler([this](bu::Bytes) { ++received; });
    bu::Rng rng(3);
    payload = rng.bytes(256);
  }

  void batch(int n) {
    for (int i = 0; i < n; ++i) {
      conn->invoke(tokens->invocation.bytes(), payload);
    }
    world.run();
  }
};

constexpr int kInvokeBatch = 8;
constexpr int kInvokeProbeBatches = 16;

}  // namespace

// Paired A/B measurement for the 2% gate, same shape as the chaos-idle
// guard in datapath.cpp: the two worlds alternate batch by batch inside one
// timed loop (order flipping every iteration) and the statistic is the
// ratio of per-batch *medians*, so host drift and scheduler spikes cancel.
static void BM_StoreIdleInvokeOverhead(benchmark::State& state) {
  WorldHarness base(/*persistent=*/false);
  WorldHarness mounted(/*persistent=*/true);
  base.batch(kInvokeBatch);
  mounted.batch(kInvokeBatch);

  // Exact alloc delta per invoke over a fixed warm batch count: an idle
  // mount must not add heap traffic to the datapath either.
  const std::uint64_t base_allocs_before = allocs();
  for (int i = 0; i < kInvokeProbeBatches; ++i) base.batch(kInvokeBatch);
  const std::uint64_t base_allocs = allocs() - base_allocs_before;
  const std::uint64_t mounted_allocs_before = allocs();
  for (int i = 0; i < kInvokeProbeBatches; ++i) mounted.batch(kInvokeBatch);
  const std::uint64_t mounted_allocs = allocs() - mounted_allocs_before;

  using clock = std::chrono::steady_clock;
  std::vector<double> base_ns;
  std::vector<double> mounted_ns;
  base_ns.reserve(1 << 16);
  mounted_ns.reserve(1 << 16);
  bool base_first = true;
  std::uint64_t invokes = 0;
  for (auto _ : state) {
    WorldHarness& first = base_first ? base : mounted;
    WorldHarness& second = base_first ? mounted : base;
    std::vector<double>& t_first = base_first ? base_ns : mounted_ns;
    std::vector<double>& t_second = base_first ? mounted_ns : base_ns;
    const auto t0 = clock::now();
    first.batch(kInvokeBatch);
    const auto t1 = clock::now();
    second.batch(kInvokeBatch);
    const auto t2 = clock::now();
    t_first.push_back(std::chrono::duration<double, std::nano>(t1 - t0).count());
    t_second.push_back(std::chrono::duration<double, std::nano>(t2 - t1).count());
    base_first = !base_first;
    invokes += 2 * kInvokeBatch;
  }

  auto median = [](std::vector<double>& v) {
    if (v.empty()) return 0.0;
    std::nth_element(v.begin(),
                     v.begin() + static_cast<std::ptrdiff_t>(v.size() / 2),
                     v.end());
    return v[v.size() / 2];
  };
  const double m_base = median(base_ns);
  const double m_mounted = median(mounted_ns);

  state.SetItemsProcessed(static_cast<std::int64_t>(invokes));
  state.counters["overhead_pct"] = benchmark::Counter(
      m_base > 0 ? (m_mounted - m_base) / m_base * 100.0 : 0.0);
  state.counters["extra_allocs_per_invoke"] = benchmark::Counter(
      (static_cast<double>(mounted_allocs) - static_cast<double>(base_allocs)) /
      static_cast<double>(kInvokeProbeBatches * kInvokeBatch));
  state.counters["echo_outputs"] = benchmark::Counter(
      static_cast<double>(base.received + mounted.received));
}
BENCHMARK(BM_StoreIdleInvokeOverhead);

BENCHMARK_MAIN();
