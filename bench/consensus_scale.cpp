// Consensus-scale standing scenario (ISSUE 8, DESIGN.md §13): 1,024 relays
// across 8 regions serving >= 100k simulated client sessions through the
// sharded windowed loop, with the shard profiler live and a declarative SLO
// verdict at the end.
//
// Topology: 8 regions x 128 relays plus 32 client-edge nodes per region;
// each edge node fronts ~50 client sessions (distinct stream ids, staggered
// start times), so the 100k-client population rides 1,280 network nodes
// while every session still runs its own cell chain with its own timing.
// Intra-region links are explicit (relay mesh 2 ms, edge->relay 10 ms);
// cross-region links take the 40 ms default, which is therefore the
// conservative lookahead.
//
// Each session walks a Tor-shaped path: edge ->guard ->middle ->exit, then
// two reply cells back down (exit ->middle ->guard ->edge). Guard/middle/
// exit always sit in pairwise different regions, so every chain crosses
// region boundaries and exercises mailboxes and barriers. Every relay
// delivery runs a ChaCha-style mixing loop standing in for relay crypto.
// The client edge stamps stream.ttfb on the first reply cell and
// stream.ttlb on the second — those series feed the SLO engine.
//
// Outputs: a one-object summary JSON on stdout (run_benchmarks.sh appends
// it to BENCH_trajectory.jsonl), plus opt-in artifacts:
//   --out FILE               BENCH_scenarios.json SLO verdict (byte-stable)
//   --profile-out FILE       ShardProfile JSON, deterministic half
//   --profile-wall-out FILE  ShardProfile JSON + wall attribution (not stable)
//   --trace-out FILE         trace.jsonl (stream + shard.window/barrier events)
//   --trace-spans            add causal spans to the trace: one client.invoke
//                            root per session (its duration == the session
//                            TTLB), relay.forward + net.link spans along the
//                            whole chain, and chaos events — the input
//                            `bentotrace critpath` attributes. ~10x more ring
//                            events per session; meant for the smaller
//                            explainer run, not the 100k standing scenario
//   --slo SPEC               replace the default objectives (repeatable)
//   --top                    render a bentotop frame to stderr after the run
// Exit code is the SLO verdict: 0 pass, 1 fail.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/profile.hpp"
#include "obs/slo.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "util/simclock.hpp"

namespace bo = bento::obs;
namespace bs = bento::sim;
namespace bu = bento::util;

using bu::Duration;
using bu::Time;

namespace {

constexpr int kRegions = 8;
constexpr int kRelaysPerRegion = 128;  // 1,024 relays total
constexpr int kEdgesPerRegion = 32;    // client-edge (NIC aggregation) nodes

// Cell layout (64 bytes). Relays are stateless: the full path rides in the
// cell, so a relay only reads its stage and forwards.
//   [0]      stage: 0 edge->guard, 1 guard->middle, 2 middle->exit,
//            3 exit->middle, 4 middle->guard, 5 guard->edge
//   [1]      reply cell index (0 = first byte, 1 = last byte)
//   [2..5]   client session index, u32 LE
//   [6..9]   guard node id     [10..13] middle node id
//   [14..17] exit node id      [18..21] edge node id
//   [22]     mix byte (carries the crypto stand-in result hop to hop)
//   [23..26] root span id (u32 LE; 0 unless --trace-spans): the edge ends
//            the session's client.invoke span on the final reply cell, so
//            the root's recorded duration IS the measured TTLB
constexpr std::size_t kCellBytes = 64;

std::uint32_t get_u32(const bu::Bytes& d, std::size_t at) {
  return static_cast<std::uint32_t>(d[at]) |
         (static_cast<std::uint32_t>(d[at + 1]) << 8) |
         (static_cast<std::uint32_t>(d[at + 2]) << 16) |
         (static_cast<std::uint32_t>(d[at + 3]) << 24);
}

void put_u32(bu::Bytes& d, std::size_t at, std::uint32_t v) {
  d[at] = static_cast<std::uint8_t>(v & 0xff);
  d[at + 1] = static_cast<std::uint8_t>((v >> 8) & 0xff);
  d[at + 2] = static_cast<std::uint8_t>((v >> 16) & 0xff);
  d[at + 3] = static_cast<std::uint8_t>((v >> 24) & 0xff);
}

// Relay deliveries across all shards; relaxed is fine — read only after
// run() returns, and the tally never feeds back into the simulation.
// bentolint: allow(BL105 bench-only delivery tally, read after the run joins)
std::atomic<std::uint64_t> g_cells{0};

/// Per-cell relay crypto stand-in: ChaCha20-style quarter rounds over a
/// 64-byte state (see bench/scalability.cpp for the sizing rationale).
std::uint32_t mix_cell(std::uint32_t x) {
  std::uint32_t s[16];
  for (int i = 0; i < 16; ++i) s[i] = x + static_cast<std::uint32_t>(i) * 0x9e3779b9u;
  for (int round = 0; round < 30; ++round) {
    for (int i = 0; i < 4; ++i) {
      std::uint32_t& a = s[i];
      std::uint32_t& b = s[4 + i];
      std::uint32_t& c = s[8 + i];
      std::uint32_t& d = s[12 + i];
      a += b; d ^= a; d = (d << 16) | (d >> 16);
      c += d; b ^= c; b = (b << 12) | (b >> 20);
      a += b; d ^= a; d = (d << 8) | (d >> 24);
      c += d; b ^= c; b = (b << 7) | (b >> 25);
    }
  }
  std::uint32_t out = 0;
  for (std::uint32_t v : s) out ^= v;
  return out;
}

/// Stateless relay: mixes, bumps the stage, forwards along the embedded
/// path. The exit fans the request into the two reply cells.
class RelayHandler : public bs::MessageHandler {
 public:
  bs::Network* net = nullptr;
  bs::NodeId self = bs::kInvalidNode;

  void on_message(bs::NodeId /*from*/, bu::Bytes data) override {
    g_cells.fetch_add(1, std::memory_order_relaxed);
    if (data.size() < kCellBytes) return;
    // Inert (two loads) unless the cell carries a span context, i.e. the
    // run was started with --trace-spans.
    bo::SpanScope span(bo::Stage::RelayForward, self);
    const std::uint8_t stage = data[0];
    data[22] = static_cast<std::uint8_t>(mix_cell(data[22] + stage));
    // Destination is read into a local before std::move(data) — the by-value
    // send parameter may be constructed before the other argument is
    // evaluated, which would leave `data` empty under get_u32.
    switch (stage) {
      case 0: {  // guard, forward leg
        data[0] = 1;
        const bs::NodeId middle = get_u32(data, 10);
        net->send(self, middle, std::move(data));
        break;
      }
      case 1: {  // middle, forward leg
        data[0] = 2;
        const bs::NodeId exit_ = get_u32(data, 14);
        net->send(self, exit_, std::move(data));
        break;
      }
      case 2: {  // exit: answer with two reply cells
        data[0] = 3;
        data[1] = 0;
        bu::Bytes second = data;
        second[1] = 1;
        const bs::NodeId middle = get_u32(data, 10);
        net->send(self, middle, std::move(data));
        net->send(self, middle, std::move(second));
        break;
      }
      case 3: {  // middle, reply leg
        data[0] = 4;
        const bs::NodeId guard = get_u32(data, 6);
        net->send(self, guard, std::move(data));
        break;
      }
      case 4: {  // guard, reply leg
        data[0] = 5;
        const bs::NodeId edge = get_u32(data, 18);
        net->send(self, edge, std::move(data));
        break;
      }
      default:
        break;  // stage 5 belongs to the edge handler
    }
  }
};

/// Client edge: terminates reply cells for every session it fronts and
/// stamps the latency trace events the SLO engine consumes.
class EdgeHandler : public bs::MessageHandler {
 public:
  const std::vector<std::int64_t>* start_us = nullptr;
  std::uint64_t completed = 0;

  void on_message(bs::NodeId /*from*/, bu::Bytes data) override {
    if (data.size() < kCellBytes || data[0] != 5) return;
    const std::uint32_t idx = get_u32(data, 2);
    if (idx >= start_us->size()) return;
    const std::int64_t delta = bu::sim_now_micros() - (*start_us)[idx];
    if (data[1] == 0) {
      bo::trace(bo::Ev::StreamTtfb, idx, static_cast<std::uint64_t>(delta));
    } else {
      bo::trace(bo::Ev::StreamTtlb, idx, static_cast<std::uint64_t>(delta));
      // Close the session's root span (no-op when the cell carries no id):
      // same sim instant as the ttlb stamp, so blame sums match the series.
      bo::end_span(get_u32(data, 23), bo::Stage::ClientInvoke);
      ++completed;
    }
  }
};

struct Options {
  unsigned shards = 0;  // 0: BENTO_SIM_SHARDS or serial
  std::uint64_t clients = 100'000;
  std::uint64_t seed = 42;
  std::string out;               // BENCH_scenarios.json
  std::string profile_out;       // deterministic ShardProfile JSON
  std::string profile_wall_out;  // + wall attribution
  std::string trace_out;         // trace.jsonl
  std::vector<std::string> slo_specs;
  bool top = false;
  bool trace_spans = false;      // causal spans for bentotrace critpath
};

bool write_file(const std::string& path, const std::string& body) {
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    std::fprintf(stderr, "consensus_scale: cannot write %s\n", path.c_str());
    return false;
  }
  os << body;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "consensus_scale: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--shards") {
      opt.shards = static_cast<unsigned>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--clients") {
      opt.clients = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--seed") {
      opt.seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--out") {
      opt.out = value();
    } else if (arg == "--profile-out") {
      opt.profile_out = value();
    } else if (arg == "--profile-wall-out") {
      opt.profile_wall_out = value();
    } else if (arg == "--trace-out") {
      opt.trace_out = value();
    } else if (arg == "--trace-spans") {
      opt.trace_spans = true;
    } else if (arg == "--slo") {
      opt.slo_specs.push_back(value());
    } else if (arg == "--top") {
      opt.top = true;
    } else {
      std::fprintf(stderr,
                   "usage: consensus_scale [--shards N] [--clients N] [--seed N]\n"
                   "                       [--out FILE] [--profile-out FILE]\n"
                   "                       [--profile-wall-out FILE] [--trace-out FILE]\n"
                   "                       [--trace-spans] [--slo SPEC]... [--top]\n");
      return 2;
    }
  }
  if (opt.clients == 0) {
    std::fprintf(stderr, "consensus_scale: --clients must be >= 1\n");
    return 2;
  }

  bs::Simulator sim(opt.seed, opt.shards);
  for (int r = 1; r < kRegions; ++r) sim.add_region();
  bs::Network net(sim);

  // The trace ring needs ttfb+ttlb per client plus the per-barrier shard
  // events; cap the mask to exactly those kinds so the firehose kinds cost
  // one branch each and the ring never wraps. With --trace-spans, each
  // session adds a root span, 9 net.link spans (4 events each: begin, end,
  // wire + idle budget notes), 7 relay.forward spans and the ref notes —
  // ~75 events/session — so the ring is sized accordingly.
  bo::recorder().enable(std::max<std::size_t>(
      std::size_t{1} << 18,
      static_cast<std::size_t>((opt.trace_spans ? 96 : 3) * opt.clients)));
  std::uint64_t mask = bo::Recorder::mask_of(bo::Ev::StreamTtfb) |
                       bo::Recorder::mask_of(bo::Ev::StreamTtlb) |
                       bo::Recorder::mask_of(bo::Ev::ShardWindow) |
                       bo::Recorder::mask_of(bo::Ev::ShardBarrier);
  if (opt.trace_spans) {
    mask |= bo::Recorder::mask_of(bo::Ev::SpanBegin) |
            bo::Recorder::mask_of(bo::Ev::SpanEnd) |
            bo::Recorder::mask_of(bo::Ev::SpanNote) |
            bo::Recorder::mask_of(bo::Ev::ChaosFault);
  }
  bo::recorder().set_mask(mask);
  bo::shard_profiler().reset();

  // Build. All regions are assigned while the latency map is empty, so the
  // per-call lookahead rescans stay O(nodes).
  std::vector<std::unique_ptr<RelayHandler>> relays;
  std::vector<std::unique_ptr<EdgeHandler>> edges;
  std::vector<bs::NodeId> relay_ids;  // [region * kRelaysPerRegion + i]
  std::vector<bs::NodeId> edge_ids;   // [region * kEdgesPerRegion + i]
  for (int r = 0; r < kRegions; ++r) {
    for (int i = 0; i < kRelaysPerRegion; ++i) {
      auto h = std::make_unique<RelayHandler>();
      const bs::NodeId id = net.add_node(bs::NodeSpec{.name = "relay"}, h.get());
      net.set_region(id, static_cast<std::uint32_t>(r));
      h->net = &net;
      h->self = id;
      relay_ids.push_back(id);
      relays.push_back(std::move(h));
    }
  }
  std::vector<std::int64_t> start_us(opt.clients, 0);
  for (int r = 0; r < kRegions; ++r) {
    for (int i = 0; i < kEdgesPerRegion; ++i) {
      auto h = std::make_unique<EdgeHandler>();
      h->start_us = &start_us;
      const bs::NodeId id = net.add_node(bs::NodeSpec{.name = "edge"}, h.get());
      net.set_region(id, static_cast<std::uint32_t>(r));
      edge_ids.push_back(id);
      edges.push_back(std::move(h));
    }
  }
  for (int r = 0; r < kRegions; ++r) {
    for (int i = 0; i < kRelaysPerRegion; ++i) {
      for (int j = i + 1; j < kRelaysPerRegion; ++j) {
        net.set_latency(relay_ids[r * kRelaysPerRegion + i],
                        relay_ids[r * kRelaysPerRegion + j], Duration::millis(2));
      }
    }
    for (int e = 0; e < kEdgesPerRegion; ++e) {
      for (int i = 0; i < kRelaysPerRegion; ++i) {
        net.set_latency(edge_ids[r * kEdgesPerRegion + e],
                        relay_ids[r * kRelaysPerRegion + i], Duration::millis(10));
      }
    }
  }

  // Session schedule: client c starts at 1 s + c * 100 µs (a flash crowd
  // ramping over ~10 s at the default population), from an edge node in
  // region c % kRegions, through guard/middle/exit in pairwise different
  // regions so every chain is cross-region.
  const Time ramp0 = Time::from_micros(1'000'000);
  for (std::uint64_t c = 0; c < opt.clients; ++c) {
    const auto r = static_cast<std::uint32_t>(c % kRegions);
    const std::uint64_t per = c / kRegions;
    const bs::NodeId edge = edge_ids[r * kEdgesPerRegion + per % kEdgesPerRegion];
    const bs::NodeId guard = relay_ids[r * kRelaysPerRegion + (c * 7 + 3) % kRelaysPerRegion];
    const auto rm = static_cast<std::uint32_t>((r + 1 + c % 7) % kRegions);
    const bs::NodeId middle = relay_ids[rm * kRelaysPerRegion + (c * 13 + 5) % kRelaysPerRegion];
    const auto re = static_cast<std::uint32_t>((rm + 1 + c % 5) % kRegions);
    const bs::NodeId exit_ = relay_ids[re * kRelaysPerRegion + (c * 17 + 7) % kRelaysPerRegion];
    const Time start = ramp0 + Duration::micros(static_cast<std::int64_t>(c) * 100);
    start_us[c] = start.micros();
    const bool spans = opt.trace_spans;
    sim.post(r, start, [&net, edge, guard, middle, exit_, c, spans] {
      bu::Bytes cell(kCellBytes, 0);
      cell[0] = 0;
      put_u32(cell, 2, static_cast<std::uint32_t>(c));
      put_u32(cell, 6, guard);
      put_u32(cell, 10, middle);
      put_u32(cell, 14, exit_);
      put_u32(cell, 18, edge);
      cell[22] = static_cast<std::uint8_t>(c);
      if (spans) {
        // Root span for the whole session; detached, because the edge ends
        // it when the final reply cell lands (its id rides in the cell).
        // The first send happens inside the scope so the link inherits it.
        bo::SpanScope root(bo::SpanScope::kRoot, bo::Stage::ClientInvoke,
                           static_cast<std::uint32_t>(c));
        put_u32(cell, 23, root.detach());
        net.send(edge, guard, std::move(cell));
      } else {
        net.send(edge, guard, std::move(cell));
      }
    });
  }

  const auto t0 = std::chrono::steady_clock::now();
  sim.run();
  const auto t1 = std::chrono::steady_clock::now();
  const double wall_s = std::chrono::duration<double>(t1 - t0).count();

  const std::uint64_t cells = g_cells.load(std::memory_order_relaxed);
  std::uint64_t completed = 0;
  for (const auto& e : edges) completed += e->completed;
  const double sim_s = static_cast<double>(sim.now().micros()) / 1e6;
  const bo::ShardProfileSnapshot prof = bo::shard_profiler().snapshot();

  // SLO evaluation. Latency series come from the trace ring; scalars are
  // sim-domain quantities only, so the verdict is byte-stable.
  bo::SloInput input;
  input.collect_latencies(bo::recorder());
  input.set_scalar("cells_per_sim_sec",
                   sim_s > 0 ? static_cast<double>(cells) / sim_s : 0.0);
  input.set_scalar("region_imbalance",
                   static_cast<double>(prof.imbalance_x1000()) / 1000.0);
  input.set_scalar("windows", static_cast<double>(prof.windows));
  input.set_scalar("completed_sessions", static_cast<double>(completed));

  std::vector<std::string> spec_texts = opt.slo_specs;
  if (spec_texts.empty()) {
    // Default objectives for the standing scenario. The path floor is
    // 180 ms of propagation (10+40+40 out, 40+40+10 back); serialize and
    // queueing add microseconds, so the ceilings are ~15-30% headroom.
    spec_texts = {
        "ttfb_us:count>=" + std::to_string(opt.clients),
        "ttfb_us:p50<=210000",
        "ttfb_us:p99<=230000",
        "ttfb_us:p99.9<=260000",
        "ttlb_us:p99<=260000",
        "completed_sessions>=" + std::to_string(opt.clients),
        "cells_per_sim_sec>=5000",
        "region_imbalance<=1.5",
        "windows>=100",
    };
  }
  std::vector<bo::SloSpec> specs;
  for (const std::string& text : spec_texts) {
    bo::SloSpec spec;
    std::string err;
    if (!bo::parse_slo_spec(text, spec, &err)) {
      std::fprintf(stderr, "consensus_scale: bad --slo '%s': %s\n", text.c_str(),
                   err.c_str());
      return 2;
    }
    specs.push_back(spec);
  }
  const bo::SloReport report = bo::evaluate_slos("consensus_scale", specs, input);

  // Artifacts.
  bool io_ok = true;
  if (!opt.out.empty()) io_ok &= write_file(opt.out, report.to_json());
  if (!opt.profile_out.empty()) {
    io_ok &= write_file(opt.profile_out, prof.to_json(/*include_wall=*/false));
  }
  if (!opt.profile_wall_out.empty()) {
    io_ok &= write_file(opt.profile_wall_out, prof.to_json(/*include_wall=*/true));
  }
  if (!opt.trace_out.empty()) {
    std::ofstream os(opt.trace_out, std::ios::binary);
    if (os) {
      bo::recorder().export_jsonl(os);
    } else {
      std::fprintf(stderr, "consensus_scale: cannot write %s\n", opt.trace_out.c_str());
      io_ok = false;
    }
  }
  if (opt.top) {
    std::ostringstream frame;
    bo::render_top_frame(prof, frame);
    std::fputs(frame.str().c_str(), stderr);
  }
  std::fputs(report.to_string().c_str(), stderr);

  // Wall attribution coverage: the four coordinator buckets plus exclusive
  // execution, as a fraction of the windowed run loop's wall time.
  const std::uint64_t attributed = prof.dispatch_wall_ns + prof.barrier_wall_ns +
                                   prof.drain_wall_ns + prof.merge_wall_ns +
                                   prof.exclusive_wall_ns;
  const double attributed_pct =
      prof.run_wall_ns > 0
          ? 100.0 * static_cast<double>(attributed) / static_cast<double>(prof.run_wall_ns)
          : 0.0;

  std::printf("{");
  std::printf("\"bench\": \"consensus_scale\", ");
  std::printf("\"host_cpus\": %u, ", std::thread::hardware_concurrency());
  std::printf("\"shards\": %u, ", sim.shards());
  std::printf("\"regions\": %d, ", kRegions);
  std::printf("\"relays\": %d, ", kRegions * kRelaysPerRegion);
  std::printf("\"clients\": %llu, ", static_cast<unsigned long long>(opt.clients));
  std::printf("\"completed_sessions\": %llu, ", static_cast<unsigned long long>(completed));
  std::printf("\"cells\": %llu, ", static_cast<unsigned long long>(cells));
  std::printf("\"sim_seconds\": %.3f, ", sim_s);
  std::printf("\"wall_seconds\": %.3f, ", wall_s);
  std::printf("\"cells_per_wall_sec\": %.0f, ",
              wall_s > 0 ? static_cast<double>(cells) / wall_s : 0.0);
  std::printf("\"cells_per_sim_sec\": %.0f, ",
              sim_s > 0 ? static_cast<double>(cells) / sim_s : 0.0);
  std::printf("\"windows\": %llu, ", static_cast<unsigned long long>(prof.windows));
  std::printf("\"region_imbalance_x1000\": %llu, ",
              static_cast<unsigned long long>(prof.imbalance_x1000()));
  std::printf("\"wall_attributed_pct\": %.1f, ", attributed_pct);
  std::printf("\"verdict\": \"%s\"", report.pass() ? "pass" : "fail");
  std::printf("}\n");

  if (!io_ok) return 2;
  return report.pass() ? 0 : 1;
}
