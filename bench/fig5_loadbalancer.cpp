// Figure 5 (paper §8.3): per-client download speed over time with and
// without the LoadBalancer.
//
// Paper setup: 13 clients arriving at ~1 s intervals, each downloading a
// 10 MB file from the hidden service; 4 host machines total; LoadBalancer
// permits at most 2 clients per replica. Expected shape: without the
// LoadBalancer every client is pinned to a fraction of one server's
// bandwidth and downloads crawl; with it replicas spin up as clients
// arrive, per-client speed is several times higher and downloads finish
// sooner.
//
// Output: one CSV block per panel (time series of per-client KB/s in 2 s
// windows) plus a summary table.
#include <cstdio>
#include <memory>
#include <vector>

#include "core/world.hpp"
#include "functions/loadbalancer.hpp"
#include "tor/hs.hpp"

namespace bc = bento::core;
namespace bf = bento::functions;
namespace bt = bento::tor;
namespace bu = bento::util;

namespace {
constexpr int kClients = 13;
constexpr std::uint64_t kFileBytes = 10'000'000;
constexpr double kWindowSeconds = 2.0;
constexpr double kHorizonSeconds = 240.0;

struct ClientRun {
  std::unique_ptr<bt::OnionProxy> proxy;
  std::unique_ptr<bt::HsClient> hs;
  std::size_t received = 0;
  std::size_t last_sample = 0;
  double start = -1, finish = -1;
  std::vector<double> kbps;  // per window
};

struct PanelResult {
  std::vector<std::unique_ptr<ClientRun>> clients;
  std::string lb_status;
};

void start_clients(bc::BentoWorld& world, const std::string& onion,
                   PanelResult& panel) {
  for (int i = 0; i < kClients; ++i) {
    auto run = std::make_unique<ClientRun>();
    run->proxy = world.bed().make_client("client" + std::to_string(i), 1.0e6);
    run->hs = std::make_unique<bt::HsClient>(*run->proxy, world.bed().directory());
    ClientRun* raw = run.get();
    world.sim().after(bu::Duration::seconds(1.0 + i), [raw, onion, &world] {
      raw->start = world.sim().now().seconds();
      raw->hs->connect(onion, [raw, &world](bt::CircuitOrigin* circ) {
        if (circ == nullptr) return;
        bt::Stream::Callbacks cbs;
        cbs.on_data = [raw](bu::ByteView d) { raw->received += d.size(); };
        cbs.on_end = [raw, &world] { raw->finish = world.sim().now().seconds(); };
        bt::Stream* stream = circ->open_stream({0, 80}, std::move(cbs));
        stream->set_on_connected([stream] { stream->send(bu::to_bytes("GET\n")); });
      });
    });
    panel.clients.push_back(std::move(run));
  }
  // Sampler: per-window download rate for each client.
  auto sampler = std::make_shared<std::function<void()>>();
  *sampler = [&panel, &world, sampler] {
    for (auto& client : panel.clients) {
      const std::size_t delta = client->received - client->last_sample;
      client->last_sample = client->received;
      client->kbps.push_back(static_cast<double>(delta) / 1000.0 / kWindowSeconds);
    }
    if (world.sim().now().seconds() < kHorizonSeconds) {
      world.sim().after(bu::Duration::seconds(kWindowSeconds), *sampler);
    }
  };
  world.sim().after(bu::Duration::seconds(kWindowSeconds), *sampler);
}

void print_panel(const char* title, const PanelResult& panel) {
  std::printf("\n--- %s ---\n", title);
  std::printf("time_s");
  for (int i = 0; i < kClients; ++i) std::printf(",client%d_KBps", i + 1);
  std::printf("\n");
  std::size_t windows = 0;
  for (const auto& c : panel.clients) windows = std::max(windows, c->kbps.size());
  for (std::size_t w = 0; w < windows; ++w) {
    // Skip all-zero tail rows.
    bool any = false;
    for (const auto& c : panel.clients) {
      if (w < c->kbps.size() && c->kbps[w] > 0) any = true;
    }
    if (!any && w > 5) continue;
    std::printf("%.0f", (static_cast<double>(w) + 1) * kWindowSeconds);
    for (const auto& c : panel.clients) {
      std::printf(",%.0f", w < c->kbps.size() ? c->kbps[w] : 0.0);
    }
    std::printf("\n");
  }
  double total_time = 0, peak = 0;
  int finished = 0;
  for (const auto& c : panel.clients) {
    if (c->finish >= 0) {
      ++finished;
      total_time += c->finish - c->start;
    }
    for (double v : c->kbps) peak = std::max(peak, v);
  }
  std::printf("summary: %d/%d clients finished, mean download time %.1f s, "
              "peak per-client rate %.0f KB/s\n",
              finished, kClients,
              finished > 0 ? total_time / finished : -1.0, peak);
  if (!panel.lb_status.empty()) {
    std::printf("loadbalancer: %s\n", panel.lb_status.c_str());
  }
}

constexpr double kHostBandwidth = 450e3;  // EC2-T2-like serving hosts

bc::BentoWorldOptions world_options() {
  bc::BentoWorldOptions options;
  options.testbed.seed = 5;
  options.testbed.guards = 3;
  options.testbed.middles = 8;
  options.testbed.exits = 2;
  // The Tor network itself is not the bottleneck (live Tor in the paper);
  // only the serving hosts are EC2-T2-sized.
  options.testbed.relay_bandwidth = 5e6;
  options.testbed.min_latency = bu::Duration::millis(15);
  options.testbed.max_latency = bu::Duration::millis(50);
  return options;
}

/// Adds the four T2-sized Bento host relays (paper: "four Tor nodes that
/// host the hidden service"). Returns their fingerprints.
std::vector<std::string> add_host_relays(bc::BentoWorld& world,
                                         const bc::MiddleboxPolicy& policy) {
  std::vector<std::string> hosts;
  for (int i = 0; i < 4; ++i) {
    bento::tor::RelayConfig cfg;
    cfg.nickname = "host" + std::to_string(i);
    cfg.addr = bento::tor::parse_addr("10." + std::to_string(200 + i) + ".0.1");
    cfg.bandwidth = kHostBandwidth;
    cfg.up_bytes_per_sec = kHostBandwidth;
    cfg.down_bytes_per_sec = kHostBandwidth;
    cfg.flags.fast = true;
    cfg.flags.bento = true;
    cfg.bento_policy = policy.serialize();
    cfg.exit_policy = bento::tor::ExitPolicy::reject_all();
    const std::size_t index = world.bed().add_relay(cfg);
    hosts.push_back(world.bed().router(index).descriptor().fingerprint());
  }
  return hosts;
}
}  // namespace

int main() {
  std::printf("Figure 5: per-client bandwidth, hidden service with/without "
              "LoadBalancer\n(%d clients, 1 s arrivals, %.0f MB file, max 2 "
              "clients per replica, 4 hosts)\n",
              kClients, kFileBytes / 1e6);

  // ---- Panel 1: without LoadBalancer (single hidden service host). ----
  {
    bc::BentoWorld world(world_options());
    world.start();
    auto host_proxy = world.bed().make_client("hs-host", kHostBandwidth);
    bt::HiddenServiceHost host(*host_proxy, world.bed().directory(), 3);
    host.set_stream_acceptor([](bt::Stream& stream) {
      stream.set_on_data([&stream](bu::ByteView) {
        bu::Bytes chunk(64 * 1024, 0x42);
        std::uint64_t left = kFileBytes;
        while (left > 0) {
          const std::size_t n =
              static_cast<std::size_t>(std::min<std::uint64_t>(left, chunk.size()));
          stream.send(bu::ByteView(chunk.data(), n));
          left -= n;
        }
        stream.end();
      });
      return true;
    });
    bool ready = false;
    host.start([&](bool ok) { ready = ok; });
    world.run();
    if (!ready) {
      std::fprintf(stderr, "hidden service failed to start\n");
      return 1;
    }
    PanelResult panel;
    start_clients(world, host.onion_id(), panel);
    world.run();
    print_panel("without LoadBalancer (all clients share one server)", panel);
  }

  // ---- Panel 2: with LoadBalancer (local + 3 replicas, cap 2). ----
  {
    bc::BentoWorldOptions options = world_options();
    bc::BentoWorld world(options);
    bf::register_loadbalancer(world.natives());
    std::vector<std::string> hosts = add_host_relays(world, options.policy);
    world.start();
    auto operator_client = world.make_client("operator", 1e6);

    bf::LoadBalancerConfig config;
    config.intro_points = 3;
    config.max_clients_per_replica = 2;
    config.content_bytes = kFileBytes;
    config.replica_boxes = {hosts[1], hosts[2], hosts[3]};  // 4 hosts total
    config.idle_shutdown_seconds = 0;

    std::shared_ptr<bc::BentoConnection> conn;
    operator_client.bento->connect(hosts[0],
                                   [&](std::shared_ptr<bc::BentoConnection> c) {
                                     conn = std::move(c);
                                   });
    world.run();
    std::optional<bc::TokenPair> tokens;
    std::vector<std::string> replies;
    conn->set_output_handler(
        [&](bu::Bytes out) { replies.push_back(bu::to_string(out)); });
    conn->spawn(bc::kImagePythonOpSgx, [&](bool ok, std::string err) {
      if (!ok) {
        std::fprintf(stderr, "spawn: %s\n", err.c_str());
        std::exit(1);
      }
      conn->upload(bf::loadbalancer_manifest(), "", "loadbalancer",
                   config.serialize(),
                   [&](std::optional<bc::TokenPair> t, std::string err2) {
                     if (!t.has_value())
                       std::fprintf(stderr, "upload: %s\n", err2.c_str());
                     tokens = std::move(t);
                   });
    });
    world.run();
    if (!tokens.has_value()) return 1;
    conn->invoke(tokens->invocation.bytes(), bu::to_bytes("onion"));
    world.run();
    const std::string onion = replies.back();

    PanelResult panel;
    start_clients(world, onion, panel);
    world.run();
    conn->invoke(tokens->invocation.bytes(), bu::to_bytes("status"));
    world.run();
    panel.lb_status = replies.back();
    print_panel("with LoadBalancer (replicas spun up on demand)", panel);
  }

  std::printf(
      "\nShape to check (paper): without the LoadBalancer all clients converge\n"
      "to the same small share of one server and finish together (late);\n"
      "with it, additional replicas absorb arrivals, per-client rates are\n"
      "several times higher and downloads finish much sooner.\n");
  return 0;
}
