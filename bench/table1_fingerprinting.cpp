// Table 1 (paper §7.3): accuracy of a website-fingerprinting attack
// against unmodified Tor and against Browser with 0/1/7 MB padding.
//
// Paper setup: 100 popular sites, >= 10 visits each, attacker records the
// client<->guard link, Deep Fingerprinting CNN. Here: 100 structured site
// models, a k-NN and an MLP attacker over CUMUL/DF-style features, traces
// captured at the victim's access link of the simulated Tor network.
//
//   BENTO_T1_SITES / BENTO_T1_VISITS environment variables rescale the run
//   (defaults 100 x 6; the paper's 100 x 10 takes a few times longer).
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "wf/experiment.hpp"

namespace bw = bento::wf;

namespace {
int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}
}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const int sites_count = env_int("BENTO_T1_SITES", quick ? 25 : 100);
  const int visits = env_int("BENTO_T1_VISITS", quick ? 4 : 8);
  const int train = visits * 2 / 3 > 0 ? visits * 2 / 3 : 1;

  std::printf("Table 1: website-fingerprinting accuracy vs Browser padding\n");
  std::printf("(%d sites x %d visits per configuration; %d train / %d test)\n\n",
              sites_count, visits, train, visits - train);

  bento::util::Rng site_rng(20210823);
  auto sites = bw::make_popular_sites(sites_count, site_rng);

  struct Row {
    bw::Defense defense;
    double paper_accuracy;
  };
  const Row rows[] = {
      {bw::Defense::None, 0.939},
      {bw::Defense::Browser0, 0.696},
      {bw::Defense::Browser1MB, 0.0825},
      {bw::Defense::Browser7MB, 0.000},
  };

  std::printf("%-28s %10s %12s %12s\n", "Defense", "paper", "measured-MLP",
              "measured-kNN");
  for (const Row& row : rows) {
    bw::CollectOptions options;
    options.defense = row.defense;
    options.visits_per_site = visits;
    options.seed = 1729;
    auto data = bw::collect_dataset(sites, options, [&](int done, int total) {
      if (done % 100 == 0 || done == total) {
        std::fprintf(stderr, "  [%s] %d/%d visits\r", bw::to_string(row.defense),
                     done, total);
      }
    });
    std::fprintf(stderr, "\n");
    auto attack = bw::evaluate_attack(data, sites_count, train, 99);
    std::printf("%-28s %9.1f%% %11.1f%% %11.1f%%\n", bw::to_string(row.defense),
                row.paper_accuracy * 100, attack.mlp_accuracy * 100,
                attack.knn_accuracy * 100);
  }
  std::printf(
      "\nShape to check (paper): near-perfect on unmodified Tor; a clear drop\n"
      "with Browser alone; near-chance (1/%d = %.1f%%) at 1MB padding;\n"
      "chance at 7MB (every trace is the same size).\n",
      sites_count, 100.0 / sites_count);
  return 0;
}
