// Table 2 (paper §7.3): full-page download times for five domains under
// standard Tor vs Browser with 0/1/7 MB padding — plus the two ablations
// DESIGN.md §5 calls out:
//   * page-ready time (the paper's note: the viewable page arrives in
//     ~0MB time; the rest of the download is pure padding), and
//   * the TCP slow-start model switched off (--no-slow-start rows), which
//     erases the small-site crossover.
#include <cstdio>
#include <cstring>

#include "core/world.hpp"
#include "functions/library.hpp"
#include "util/zlite.hpp"
#include "wf/pageload.hpp"
#include "wf/sites.hpp"

namespace bc = bento::core;
namespace bf = bento::functions;
namespace bt = bento::tor;
namespace bu = bento::util;
namespace bw = bento::wf;

namespace {
struct WorldSetup {
  std::unique_ptr<bc::BentoWorld> world;
  std::unique_ptr<bc::BentoWorld::Client> client;
  std::string exit_box;
};

WorldSetup make_world(const std::vector<bw::SiteModel>& sites, bool slow_start) {
  bc::BentoWorldOptions options;
  options.testbed.seed = 77;
  // Live-Tor-like circuit throughput (~250 KB/s bottleneck) and wide-area
  // latencies; clearnet legs from the exit are fast by comparison.
  options.testbed.relay_bandwidth = 250e3;
  options.testbed.min_latency = bu::Duration::millis(15);
  options.testbed.max_latency = bu::Duration::millis(60);
  WorldSetup setup;
  setup.world = std::make_unique<bc::BentoWorld>(options);
  setup.world->start();
  for (const auto& site : sites) {
    const bw::SiteModel* model = &site;
    auto& server = setup.world->bed().add_web_server(
        site.addr,
        [model](const std::string& path) -> std::optional<bu::Bytes> {
          if (path == "/bundle") {
            bu::Bytes all = model->body_for("/", 1, 0.0);
            for (std::size_t r = 0; r < model->resource_bytes.size(); ++r) {
              bu::append(all, model->body_for("/r" + std::to_string(r), 1, 0.0));
            }
            return all;
          }
          return model->body_for(path, 1, 0.0);
        },
        4e6);
    server.tcp_params().model_slow_start = slow_start;
  }
  for (const auto& relay : setup.world->bed().consensus().relays) {
    if (relay.flags.exit) setup.exit_box = relay.fingerprint();
  }
  setup.client = std::make_unique<bc::BentoWorld::Client>(
      setup.world->make_client("alice", 4e6));
  return setup;
}

double standard_tor_time(WorldSetup& setup, const bw::SiteModel& site) {
  auto& world = *setup.world;
  bt::PathConstraints constraints;
  constraints.exit_to = bt::Endpoint{site.addr, 80};
  bt::CircuitOrigin* circuit = nullptr;
  setup.client->proxy->build_circuit(constraints,
                                     [&](bt::CircuitOrigin* c) { circuit = c; });
  world.run();
  if (circuit == nullptr) return -1;
  const double start = world.sim().now().seconds();
  double finished = -1;
  bw::browse_page(*circuit, site, start, [&](bw::PageLoadResult result) {
    finished = result.ok ? world.sim().now().seconds() : -1;
  });
  world.run();
  circuit->destroy();
  setup.client->proxy->forget(circuit);
  world.run();
  return finished < 0 ? -1 : finished - start;
}

struct BrowserTiming {
  double full = -1;        // last byte incl. padding
  double page_ready = -1;  // content bytes complete (enough to render)
};

BrowserTiming browser_time(WorldSetup& setup, const bw::SiteModel& site,
                           std::size_t padding) {
  auto& world = *setup.world;
  std::shared_ptr<bc::BentoConnection> conn;
  setup.client->bento->connect(setup.exit_box,
                               [&](std::shared_ptr<bc::BentoConnection> c) {
                                 conn = std::move(c);
                               });
  world.run();
  BrowserTiming timing;
  if (conn == nullptr) return timing;

  // Content size: what the compressed page occupies before padding.
  bu::Bytes full_page = site.body_for("/", 1, 0.0);
  for (std::size_t r = 0; r < site.resource_bytes.size(); ++r) {
    bu::append(full_page, site.body_for("/r" + std::to_string(r), 1, 0.0));
  }
  const std::size_t content_size = bu::zlite::compress(full_page).size();

  // Paper metric: "from the time the client issues the request to the
  // function until it is done downloading" — setup (spawn/attest/upload)
  // is excluded.
  double start = 0;
  auto received = std::make_shared<std::size_t>(0);
  conn->set_output_handler([&, received](bu::Bytes out) {
    *received += out.size();
    timing.full = world.sim().now().seconds() - start;
  });
  // Page-ready: observe the raw stream crossing content_size (the padding
  // bytes come after the compressed page). Sampled at 50 ms granularity.
  auto poll = std::make_shared<std::function<void()>>();
  std::size_t raw_at_invoke = 0;
  *poll = [&, poll] {
    const std::size_t raw = conn->raw_bytes_received() - raw_at_invoke;
    if (timing.page_ready < 0 && content_size > 0 && raw >= content_size) {
      timing.page_ready = world.sim().now().seconds() - start;
    }
    if (timing.full < 0) world.sim().after(bu::Duration::millis(50), *poll);
  };

  conn->spawn(bc::kImagePythonOpSgx, [&](bool ok, std::string) {
    if (!ok) return;
    conn->upload(bf::browser_manifest(), bf::browser_source(), "", {},
                 [&](std::optional<bc::TokenPair> tokens, std::string) {
                   if (!tokens.has_value()) return;
                   start = world.sim().now().seconds();
                   raw_at_invoke = conn->raw_bytes_received();
                   conn->invoke(tokens->invocation.bytes(),
                                bu::to_bytes("http://" + bt::format_addr(site.addr) +
                                             "/bundle " + std::to_string(padding)));
                   (*poll)();
                 });
  });
  world.run();
  if (timing.page_ready < 0) timing.page_ready = timing.full;
  conn->close();
  world.run();
  return timing;
}

struct PaperRow {
  const char* domain;
  double standard, p0, p1, p7;
};
}  // namespace

int main(int argc, char** argv) {
  const bool ablate = argc > 1 && std::strcmp(argv[1], "--no-slow-start") == 0;
  auto sites = bw::table2_sites();

  const PaperRow paper[] = {
      {"indiatoday.in", 5.0, 6.4, 34.9, 86.0}, {"yahoo.com", 6.7, 6.3, 21.2, 87.4},
      {"netflix.com", 8.5, 8.1, 28.4, 86.3},   {"ebay.com", 6.1, 7.0, 22.3, 81.8},
      {"aliexpress.com", 3.1, 5.9, 37.7, 91.9}};

  std::printf("Table 2: download times in seconds (paper values in parentheses)\n");
  std::printf("TCP slow-start model: %s\n\n", ablate ? "DISABLED (ablation)" : "on");
  std::printf("%-16s | %-16s | %-16s | %-16s | %-16s | page-ready@1MB\n", "Domain",
              "standard Tor", "Browser 0MB", "Browser 1MB", "Browser 7MB");

  for (std::size_t i = 0; i < sites.size(); ++i) {
    // A fresh world per site keeps the circuits comparable.
    WorldSetup setup = make_world(sites, !ablate);
    const double std_time = standard_tor_time(setup, sites[i]);
    const BrowserTiming b0 = browser_time(setup, sites[i], 0);
    const BrowserTiming b1 = browser_time(setup, sites[i], 1'000'000);
    const BrowserTiming b7 = browser_time(setup, sites[i], 7'000'000);
    std::printf("%-16s | %6.1f (%5.1f)  | %6.1f (%5.1f)  | %6.1f (%5.1f)  | "
                "%6.1f (%5.1f)  | %6.1f\n",
                paper[i].domain, std_time, paper[i].standard, b0.full, paper[i].p0,
                b1.full, paper[i].p1, b7.full, paper[i].p7, b1.page_ready);
  }

  std::printf(
      "\nShape to check (paper): padding dominates cost (7MB >> 1MB >> 0MB);\n"
      "Browser beats standard Tor on RTT-bound sites (bold cells in the paper);\n"
      "page-ready@1MB ~= the 0MB column (padding arrives after the content).\n");
  if (!ablate) {
    std::printf("Run with --no-slow-start for the transport-model ablation.\n");
  }
  return 0;
}
