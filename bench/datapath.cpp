// Cell-datapath benchmarks: the per-cell hot loop this repo's throughput
// story hangs on. Run via bench/run_benchmarks.sh, which distills the
// google-benchmark JSON into BENCH_datapath.json so every PR has a perf
// trajectory to compare against.
//
// Measured here:
//   * ChaCha20 keystream kernel, new (8-block SIMD) vs the seed scalar
//     byte-at-a-time kernel (inlined below as the fixed baseline);
//   * the full 3-hop relay-crypto datapath (origin onion-encrypt + three
//     relay peel/check stages) with heap allocations counted per cell —
//     the zero-allocation invariant of DESIGN.md §7;
//   * simulator event churn with typical captures, allocations per event;
//   * the network send path with idle chaos hooks vs none — the tax every
//     packet pays for fault-injection support when no plan is installed
//     (gated at zero extra allocations and <= 2% throughput).
//
// The global operator new/delete overrides below count every heap
// allocation in the binary; benchmarks report the per-iteration delta.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string_view>
#include <vector>

#include "chaos/chaos.hpp"
#include "crypto/chacha20.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "tor/cell.hpp"
#include "tor/relaycrypto.hpp"
#include "tor/wire.hpp"
#include "util/rng.hpp"

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

// The replaced operator new below is malloc-backed, so pairing its result
// with std::free in operator delete is correct; GCC's heuristic can't see
// through the replacement and warns spuriously.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(al),
                                   (n + static_cast<std::size_t>(al) - 1) &
                                       ~(static_cast<std::size_t>(al) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t al) { return ::operator new(n, al); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace bc = bento::crypto;
namespace bt = bento::tor;
namespace bs = bento::sim;
namespace bu = bento::util;

namespace {

// ---- Seed baseline: the original scalar byte-at-a-time ChaCha20 ---------
// Kept verbatim (modulo naming) so the speedup of the production kernel is
// measured against a fixed reference inside the same binary/flags.
class SeedChaCha20 {
 public:
  SeedChaCha20(const bc::ChaChaKey& key, const bc::ChaChaNonce& nonce,
               std::uint32_t counter = 0) {
    auto load32 = [](const std::uint8_t* p) {
      return static_cast<std::uint32_t>(p[0]) |
             static_cast<std::uint32_t>(p[1]) << 8 |
             static_cast<std::uint32_t>(p[2]) << 16 |
             static_cast<std::uint32_t>(p[3]) << 24;
    };
    state_[0] = 0x61707865;
    state_[1] = 0x3320646e;
    state_[2] = 0x79622d32;
    state_[3] = 0x6b206574;
    for (int i = 0; i < 8; ++i) state_[4 + i] = load32(key.data() + 4 * i);
    state_[12] = counter;
    for (int i = 0; i < 3; ++i) state_[13 + i] = load32(nonce.data() + 4 * i);
  }

  void process(std::vector<std::uint8_t>& data) {
    for (auto& byte : data) {
      if (used_ == 64) refill();
      byte ^= block_[used_++];
    }
  }

 private:
  static std::uint32_t rotl(std::uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }
  static void qr(std::array<std::uint32_t, 16>& s, int a, int b, int c, int d) {
    s[a] += s[b]; s[d] ^= s[a]; s[d] = rotl(s[d], 16);
    s[c] += s[d]; s[b] ^= s[c]; s[b] = rotl(s[b], 12);
    s[a] += s[b]; s[d] ^= s[a]; s[d] = rotl(s[d], 8);
    s[c] += s[d]; s[b] ^= s[c]; s[b] = rotl(s[b], 7);
  }
  void refill() {
    std::array<std::uint32_t, 16> x = state_;
    for (int round = 0; round < 10; ++round) {
      qr(x, 0, 4, 8, 12); qr(x, 1, 5, 9, 13); qr(x, 2, 6, 10, 14); qr(x, 3, 7, 11, 15);
      qr(x, 0, 5, 10, 15); qr(x, 1, 6, 11, 12); qr(x, 2, 7, 8, 13); qr(x, 3, 4, 9, 14);
    }
    for (int i = 0; i < 16; ++i) {
      const std::uint32_t v = x[i] + state_[i];
      block_[4 * i] = static_cast<std::uint8_t>(v);
      block_[4 * i + 1] = static_cast<std::uint8_t>(v >> 8);
      block_[4 * i + 2] = static_cast<std::uint8_t>(v >> 16);
      block_[4 * i + 3] = static_cast<std::uint8_t>(v >> 24);
    }
    state_[12] += 1;
    used_ = 0;
  }
  std::array<std::uint32_t, 16> state_;
  std::array<std::uint8_t, 64> block_;
  std::size_t used_ = 64;
};

std::uint64_t allocs() { return g_allocs.load(std::memory_order_relaxed); }

namespace bo = bento::obs;

// Shared 3-hop circuit setup: origin seals for the exit and onion-encrypts
// all three layers; each relay peels its layer and runs recognition. Every
// hop's cipher and digest state advances exactly as on a live circuit.
struct Datapath3Hop {
  std::vector<bento::tor::LayerCrypto> origin;
  std::vector<bento::tor::LayerCrypto> relays;
  std::array<std::uint8_t, bento::tor::kCellPayloadLen> cell_template;
  std::uint64_t recognized_at_exit = 0;

  Datapath3Hop() {
    namespace bt = bento::tor;
    bento::util::Rng rng(3);
    std::array<bt::LayerKeys, 3> keys = {
        bt::LayerKeys::derive(rng.bytes(32), "hop0"),
        bt::LayerKeys::derive(rng.bytes(32), "hop1"),
        bt::LayerKeys::derive(rng.bytes(32), "hop2"),
    };
    for (int i = 0; i < 3; ++i) {
      origin.emplace_back(keys[static_cast<std::size_t>(i)]);
      relays.emplace_back(keys[static_cast<std::size_t>(i)]);
    }
    bt::RelayCell rc;
    rc.relay_cmd = bt::RelayCommand::Data;
    rc.stream_id = 7;
    rc.data = rng.bytes(bt::kRelayDataMax);
    cell_template = rc.pack();
  }

  void traverse() {
    auto payload = cell_template;
    origin[2].seal_forward(payload);
    for (int i = 2; i >= 0; --i) origin[static_cast<std::size_t>(i)].crypt_forward(payload);
    for (int hop = 0; hop < 3; ++hop) {
      auto& relay = relays[static_cast<std::size_t>(hop)];
      relay.crypt_forward(payload);
      if (relay.check_forward(payload)) {
        ++recognized_at_exit;
        break;
      }
    }
    benchmark::DoNotOptimize(payload.data());
  }
};

}  // namespace

static void BM_ChaCha20Seed(benchmark::State& state) {
  bu::Rng rng(2);
  bu::Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  SeedChaCha20 cipher(bc::ChaChaKey{}, bc::ChaChaNonce{});
  for (auto _ : state) {
    cipher.process(data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ChaCha20Seed)->Arg(509)->Arg(8192);

static void BM_ChaCha20(benchmark::State& state) {
  bu::Rng rng(2);
  bu::Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  bc::ChaCha20 cipher(bc::ChaChaKey{}, bc::ChaChaNonce{});
  for (auto _ : state) {
    cipher.process(data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ChaCha20)->Arg(509)->Arg(8192);

// The whole 3-hop traversal must not touch the heap — with the metrics
// registry live (it is on by default; recognition counters fire per check).
static void BM_RelayDatapath3Hop(benchmark::State& state) {
  bo::set_metrics_enabled(true);
  Datapath3Hop path;
  path.traverse();  // warm-up: registers metric cells outside the counted region

  const std::uint64_t allocs_before = allocs();
  std::uint64_t cells = 0;
  for (auto _ : state) {
    path.traverse();
    ++cells;
  }
  const std::uint64_t allocs_delta = allocs() - allocs_before;

  state.SetItemsProcessed(static_cast<std::int64_t>(cells));
  state.SetBytesProcessed(static_cast<std::int64_t>(cells * bt::kCellPayloadLen));
  state.counters["allocs_per_cell"] = benchmark::Counter(
      static_cast<double>(allocs_delta) / static_cast<double>(cells ? cells : 1));
  state.counters["recognized"] =
      benchmark::Counter(static_cast<double>(path.recognized_at_exit));
}
BENCHMARK(BM_RelayDatapath3Hop);

// Same traversal with the registry globally disabled: the difference to
// BM_RelayDatapath3Hop is the whole cost of live metrics on the cell
// datapath (BENCH_obs.json asserts it stays in the noise).
static void BM_RelayDatapath3HopMetricsOff(benchmark::State& state) {
  Datapath3Hop path;
  path.traverse();
  bo::set_metrics_enabled(false);
  std::uint64_t cells = 0;
  for (auto _ : state) {
    path.traverse();
    ++cells;
  }
  bo::set_metrics_enabled(true);
  state.SetItemsProcessed(static_cast<std::int64_t>(cells));
  state.SetBytesProcessed(static_cast<std::int64_t>(cells * bt::kCellPayloadLen));
}
BENCHMARK(BM_RelayDatapath3HopMetricsOff);

// Traversal with the flight recorder armed and the per-cell trace points a
// relay emits (receive + recognition) recorded each cell. The ring is
// preallocated at enable(), so the traced datapath must stay allocation-free
// even while continuously wrapping.
static void BM_RelayDatapath3HopTraced(benchmark::State& state) {
  Datapath3Hop path;
  path.traverse();
  bo::recorder().enable(std::size_t{1} << 12);

  const std::uint64_t allocs_before = allocs();
  std::uint64_t cells = 0;
  for (auto _ : state) {
    bo::trace(bo::Ev::CellRecv, 42, 1);
    path.traverse();
    bo::trace(bo::Ev::CellRecognized, 42, 2);
    ++cells;
  }
  const std::uint64_t allocs_delta = allocs() - allocs_before;
  bo::recorder().disable();

  state.SetItemsProcessed(static_cast<std::int64_t>(cells));
  state.SetBytesProcessed(static_cast<std::int64_t>(cells * bt::kCellPayloadLen));
  state.counters["allocs_per_cell"] = benchmark::Counter(
      static_cast<double>(allocs_delta) / static_cast<double>(cells ? cells : 1));
}
BENCHMARK(BM_RelayDatapath3HopTraced);

// Traversal under an active causal span, exactly as the relay datapath runs
// when a traced request transits the hop: per cell, a SpanScope opens and
// closes a relay.forward span (SpanBegin + SpanEnd into the preallocated
// ring) nested under a live client.invoke root. Spans are POD events in the
// same ring, so this must hold the 0-allocs/cell line too — the span tracer
// is only shippable if tracing a request costs no heap on the cell path.
static void BM_RelayDatapath3HopSpanTraced(benchmark::State& state) {
  Datapath3Hop path;
  path.traverse();
  bo::recorder().enable(std::size_t{1} << 12);
  bo::reset_spans();
  // Root request context, as BentoConnection::invoke() establishes it.
  bo::SpanScope root(bo::SpanScope::kRoot, bo::Stage::ClientInvoke);

  const std::uint64_t allocs_before = allocs();
  std::uint64_t cells = 0;
  for (auto _ : state) {
    bo::SpanScope hop(bo::Stage::RelayForward, 42);
    path.traverse();
    ++cells;
  }
  const std::uint64_t allocs_delta = allocs() - allocs_before;
  bo::recorder().disable();

  state.SetItemsProcessed(static_cast<std::int64_t>(cells));
  state.SetBytesProcessed(static_cast<std::int64_t>(cells * bt::kCellPayloadLen));
  state.counters["allocs_per_cell"] = benchmark::Counter(
      static_cast<double>(allocs_delta) / static_cast<double>(cells ? cells : 1));
}
BENCHMARK(BM_RelayDatapath3HopSpanTraced);

// Raw registry handle costs: one pre-registered counter increment / histogram
// record per iteration. These are the budget every instrumentation point
// spends; BENCH_obs.json records the absolute ns.
static void BM_CounterIncrement(benchmark::State& state) {
  bo::Counter c = bo::registry().counter("bench.counter");
  for (auto _ : state) {
    c.inc();
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CounterIncrement);

static void BM_HistogramRecord(benchmark::State& state) {
  bo::Histogram h = bo::registry().histogram("bench.histogram");
  std::int64_t v = 0;
  for (auto _ : state) {
    h.record(v);
    v = (v + 977) % 1'200'000;  // sweep across all buckets
    benchmark::DoNotOptimize(h);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HistogramRecord);

static void BM_TraceRecord(benchmark::State& state) {
  bo::recorder().enable(std::size_t{1} << 12);
  std::uint32_t a = 0;
  const std::uint64_t allocs_before = allocs();
  for (auto _ : state) {
    bo::trace(bo::Ev::CellSend, a++, 7);
  }
  const std::uint64_t allocs_delta = allocs() - allocs_before;
  bo::recorder().disable();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["allocs_per_event"] = benchmark::Counter(
      static_cast<double>(allocs_delta) /
      static_cast<double>(state.iterations() ? state.iterations() : 1));
}
BENCHMARK(BM_TraceRecord);

// Cell framing/unframing for the wire: one allocation per framed cell (the
// owned wire buffer) is inherent; this tracks that it stays at exactly one.
static void BM_CellFrameUnframe(benchmark::State& state) {
  bt::Cell cell;
  cell.circ_id = 42;
  cell.command = bt::CellCommand::Relay;
  bu::Rng rng(4);
  const bu::Bytes fill = rng.bytes(bt::kCellPayloadLen);
  std::copy(fill.begin(), fill.end(), cell.payload.begin());

  const std::uint64_t allocs_before = allocs();
  std::uint64_t cells = 0;
  for (auto _ : state) {
    bu::Bytes wire = bt::frame_cell(cell);
    bt::Cell back = bt::unframe_cell(wire);
    benchmark::DoNotOptimize(back.payload.data());
    ++cells;
  }
  const std::uint64_t allocs_delta = allocs() - allocs_before;
  state.SetItemsProcessed(static_cast<std::int64_t>(cells));
  state.counters["allocs_per_cell"] = benchmark::Counter(
      static_cast<double>(allocs_delta) / static_cast<double>(cells ? cells : 1));
}
BENCHMARK(BM_CellFrameUnframe);

// Simulator event churn with a capture shaped like the network layer's
// delivery lambda (this + pointer + a few words): schedule a batch, run it.
// With the small-buffer event queue, steady state performs zero heap
// allocations per event.
static void BM_SimulatorEventChurn(benchmark::State& state) {
  bs::Simulator sim(1);
  constexpr int kBatch = 64;
  std::uint64_t sink = 0;

  // Warm the queue's vector capacity and the slab pool.
  for (int i = 0; i < kBatch; ++i) {
    sim.after(bu::Duration::micros(i), [&sink, i] { sink += static_cast<std::uint64_t>(i); });
  }
  sim.run();

  const std::uint64_t allocs_before = allocs();
  std::uint64_t events = 0;
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      std::array<std::uint64_t, 5> ctx{};  // ~40-byte capture: inline storage
      ctx[0] = static_cast<std::uint64_t>(i);
      sim.after(bu::Duration::micros(i), [&sink, ctx] { sink += ctx[0]; });
    }
    sim.run();
    events += kBatch;
  }
  const std::uint64_t allocs_delta = allocs() - allocs_before;
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["allocs_per_event"] = benchmark::Counter(
      static_cast<double>(allocs_delta) / static_cast<double>(events ? events : 1));
}
BENCHMARK(BM_SimulatorEventChurn);

// ---- Chaos-idle guard ----------------------------------------------------
// The chaos engine taxes every Network::send with two node_down() probes and
// one on_packet() verdict even when no fault ever fires. This benchmark pair
// bounds that tax: BM_NetworkSendDatapath is the no-injector baseline,
// BM_NetworkSendDatapathChaosIdle runs the identical loop with a ChaosEngine
// installed under an empty plan. run_benchmarks.sh gates the delta — the
// idle hooks must add zero allocations per cell and cost at most 2% of send
// throughput.
namespace {

struct CountingSink : bs::MessageHandler {
  std::uint64_t received = 0;
  void on_message(bs::NodeId, bu::Bytes) override { ++received; }
};

struct NetSendHarness {
  bs::Simulator sim{1};
  bs::Network net{sim};
  CountingSink sink;
  bs::NodeId a;
  bs::NodeId b;
  bu::Bytes cell;

  NetSendHarness() {
    a = net.add_node({"a", 1e9, 1e9});
    b = net.add_node({"b", 1e9, 1e9}, &sink);
    net.set_latency(a, b, bu::Duration::micros(50));
    bu::Rng rng(5);
    cell = rng.bytes(bt::kCellLen);
  }

  // One inherent allocation per message: the owned wire buffer handed to
  // send(). Everything downstream — event queue, link queues — is pooled or
  // amortized identically in both variants.
  void batch(int n) {
    for (int i = 0; i < n; ++i) net.send(a, b, bu::Bytes(cell));
    sim.run();
  }
};

constexpr int kSendBatch = 64;
constexpr int kAllocProbeBatches = 32;

// Alloc accounting runs over a fixed batch count *outside* the timed loop so
// the per-cell figure is exact and iteration-count independent: both
// variants replay the same sequence from the same warm state, so any
// difference is precisely what the idle hooks allocate.
void run_net_send(benchmark::State& state, NetSendHarness& h) {
  h.batch(kSendBatch);  // warm-up: queue capacities, slab pool, deque chunks

  const std::uint64_t allocs_before = allocs();
  for (int i = 0; i < kAllocProbeBatches; ++i) h.batch(kSendBatch);
  const std::uint64_t allocs_delta = allocs() - allocs_before;

  std::uint64_t cells = 0;
  for (auto _ : state) {
    h.batch(kSendBatch);
    cells += kSendBatch;
  }

  state.SetItemsProcessed(static_cast<std::int64_t>(cells));
  state.counters["allocs_per_cell"] = benchmark::Counter(
      static_cast<double>(allocs_delta) /
      static_cast<double>(kAllocProbeBatches * kSendBatch));
  benchmark::DoNotOptimize(h.sink.received);
}

}  // namespace

static void BM_NetworkSendDatapath(benchmark::State& state) {
  NetSendHarness h;
  run_net_send(state, h);
}
BENCHMARK(BM_NetworkSendDatapath);

static void BM_NetworkSendDatapathChaosIdle(benchmark::State& state) {
  NetSendHarness h;
  bento::chaos::ChaosEngine engine(h.sim, h.net);
  engine.install({});  // hooks live, zero rules: the no-fault fast path
  run_net_send(state, h);
}
BENCHMARK(BM_NetworkSendDatapathChaosIdle);

// Paired A/B measurement for the 2% gate. Comparing two separately-timed
// benchmarks turns host drift (frequency scaling, a noisy neighbour landing
// on one of the two runs) into fake overhead far above 2%, so the variants
// alternate batch by batch inside one timed loop, the order flipping every
// iteration. The statistic is the ratio of per-batch *medians*: a scheduler
// preemption spikes one batch by milliseconds, which would dominate a mean
// but leaves a median untouched. run_benchmarks.sh gates overhead_pct.
static void BM_NetworkSendChaosIdleOverhead(benchmark::State& state) {
  NetSendHarness base;
  NetSendHarness idle;
  bento::chaos::ChaosEngine engine(idle.sim, idle.net);
  engine.install({});
  base.batch(kSendBatch);
  idle.batch(kSendBatch);

  using clock = std::chrono::steady_clock;
  std::vector<double> base_ns;
  std::vector<double> idle_ns;
  base_ns.reserve(1 << 20);
  idle_ns.reserve(1 << 20);
  bool base_first = true;
  std::uint64_t cells = 0;
  for (auto _ : state) {
    NetSendHarness& first = base_first ? base : idle;
    NetSendHarness& second = base_first ? idle : base;
    std::vector<double>& t_first = base_first ? base_ns : idle_ns;
    std::vector<double>& t_second = base_first ? idle_ns : base_ns;
    const auto t0 = clock::now();
    first.batch(kSendBatch);
    const auto t1 = clock::now();
    second.batch(kSendBatch);
    const auto t2 = clock::now();
    t_first.push_back(std::chrono::duration<double, std::nano>(t1 - t0).count());
    t_second.push_back(std::chrono::duration<double, std::nano>(t2 - t1).count());
    base_first = !base_first;
    cells += 2 * kSendBatch;
  }

  auto median = [](std::vector<double>& v) {
    if (v.empty()) return 0.0;
    std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(v.size() / 2),
                     v.end());
    return v[v.size() / 2];
  };
  const double m_base = median(base_ns);
  const double m_idle = median(idle_ns);

  state.SetItemsProcessed(static_cast<std::int64_t>(cells));
  state.counters["overhead_pct"] = benchmark::Counter(
      m_base > 0 ? (m_idle - m_base) / m_base * 100.0 : 0.0);
}
BENCHMARK(BM_NetworkSendChaosIdleOverhead);

// ---- Shard profiler gates (DESIGN.md §13) --------------------------------
// The profiler's contract is "always cheap": its hot hooks fire once per
// *window* (thousands of cells), cost a handful of adds, and never allocate.
// These benchmarks pin that down from three sides: per-cell hook cost under
// a worst-case charging model, a paired-median overhead ratio, and an
// allocation probe over the real windowed dispatch loop. run_benchmarks.sh
// gates overhead_pct <= 2 and allocs at zero, at --shards 1 and 4.

// Traversal plus the full window-close hook sequence charged to *every*
// cell — orders of magnitude denser than a real run, so the measured
// per-cell cost is a hard upper bound. Must stay 0 allocs/cell.
static void BM_RelayDatapath3HopProfiled(benchmark::State& state) {
  Datapath3Hop path;
  path.traverse();
  bo::ShardProfiler& prof = bo::shard_profiler();
  prof.set_enabled(true);
  prof.reset();
  std::uint64_t region_events[8] = {3, 2, 1, 2, 3, 1, 2, 2};

  const std::uint64_t allocs_before = allocs();
  std::uint64_t cells = 0;
  for (auto _ : state) {
    path.traverse();
    prof.on_window_close(region_events, 8, 40'000);
    prof.on_mailbox_drain(8, 2);
    prof.add_worker_busy(0, 1'000, 16);
    prof.add_barrier_wait(200);
    prof.add_drain_wall(50);
    prof.add_merge_wall(50);
    ++cells;
  }
  const std::uint64_t allocs_delta = allocs() - allocs_before;
  prof.reset();

  state.SetItemsProcessed(static_cast<std::int64_t>(cells));
  state.SetBytesProcessed(static_cast<std::int64_t>(cells * bt::kCellPayloadLen));
  state.counters["allocs_per_cell"] = benchmark::Counter(
      static_cast<double>(allocs_delta) / static_cast<double>(cells ? cells : 1));
}
BENCHMARK(BM_RelayDatapath3HopProfiled);

// Paired A/B for the <= 2% gate, same discipline as the chaos-idle
// benchmark: plain and profiled traversal batches alternate inside one
// timed loop (order flipping every iteration) and the statistic is the
// ratio of per-batch medians, so host drift and scheduler spikes cancel.
static void BM_RelayDatapath3HopProfilerOverhead(benchmark::State& state) {
  constexpr int kCellBatch = 32;
  Datapath3Hop plain;
  Datapath3Hop profiled;
  plain.traverse();
  profiled.traverse();
  bo::ShardProfiler& prof = bo::shard_profiler();
  prof.set_enabled(true);
  prof.reset();
  std::uint64_t region_events[8] = {3, 2, 1, 2, 3, 1, 2, 2};
  auto profiled_batch = [&] {
    for (int i = 0; i < kCellBatch; ++i) {
      profiled.traverse();
      prof.on_window_close(region_events, 8, 40'000);
      prof.on_mailbox_drain(8, 2);
      prof.add_worker_busy(0, 1'000, 16);
      prof.add_barrier_wait(200);
      prof.add_drain_wall(50);
      prof.add_merge_wall(50);
    }
  };
  auto plain_batch = [&] {
    for (int i = 0; i < kCellBatch; ++i) plain.traverse();
  };

  using clock = std::chrono::steady_clock;
  std::vector<double> plain_ns;
  std::vector<double> prof_ns;
  plain_ns.reserve(1 << 20);
  prof_ns.reserve(1 << 20);
  bool plain_first = true;
  std::uint64_t cells = 0;
  for (auto _ : state) {
    const auto t0 = clock::now();
    if (plain_first) plain_batch(); else profiled_batch();
    const auto t1 = clock::now();
    if (plain_first) profiled_batch(); else plain_batch();
    const auto t2 = clock::now();
    (plain_first ? plain_ns : prof_ns)
        .push_back(std::chrono::duration<double, std::nano>(t1 - t0).count());
    (plain_first ? prof_ns : plain_ns)
        .push_back(std::chrono::duration<double, std::nano>(t2 - t1).count());
    plain_first = !plain_first;
    cells += 2 * kCellBatch;
  }
  prof.reset();

  auto median = [](std::vector<double>& v) {
    if (v.empty()) return 0.0;
    std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(v.size() / 2),
                     v.end());
    return v[v.size() / 2];
  };
  const double m_plain = median(plain_ns);
  const double m_prof = median(prof_ns);

  state.SetItemsProcessed(static_cast<std::int64_t>(cells));
  state.counters["overhead_pct"] = benchmark::Counter(
      m_plain > 0 ? (m_prof - m_plain) / m_plain * 100.0 : 0.0);
}
BENCHMARK(BM_RelayDatapath3HopProfilerOverhead);

// Windowed dispatch churn: a two-region simulator running the conservative-
// lookahead loop — the profiler's window-close path, mailbox drain timing
// and barrier accounting all live — while batches of inline-capture events
// churn through. Steady state must stay at zero heap allocations per event
// (the worker->region map, window scratch and mailboxes are all reused),
// under both the serial fallback (--shards 1 still runs windowed here:
// two regions) and the pooled path (--shards 4).
static void BM_WindowedDispatchChurn(benchmark::State& state) {
  bs::Simulator sim(1);
  const std::uint32_t r1 = sim.add_region();
  sim.set_lookahead(bu::Duration::micros(50));
  bo::ShardProfiler& prof = bo::shard_profiler();
  prof.set_enabled(true);
  prof.reset();
  constexpr int kBatch = 64;
  std::uint64_t sink = 0;

  auto batch = [&] {
    for (int i = 0; i < kBatch; ++i) {
      const bu::Duration d = bu::Duration::micros(i * 3);
      std::array<std::uint64_t, 4> ctx{};  // inline-storage capture
      ctx[0] = static_cast<std::uint64_t>(i);
      if ((i & 1) == 0) {
        sim.post(0, sim.now() + d, [&sink, ctx] { sink += ctx[0]; });
      } else {
        sim.post(r1, sim.now() + d, [&sink, ctx] { sink += ctx[0] * 3; });
      }
    }
    sim.run();
  };

  // Warm-up: window scratch, mailboxes, worker pool, slab capacity.
  batch();

  const std::uint64_t allocs_before = allocs();
  constexpr int kProbeBatches = 32;
  for (int i = 0; i < kProbeBatches; ++i) batch();
  const std::uint64_t allocs_delta = allocs() - allocs_before;

  std::uint64_t events = 0;
  for (auto _ : state) {
    batch();
    events += kBatch;
  }
  prof.reset();
  benchmark::DoNotOptimize(sink);

  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["allocs_per_event"] = benchmark::Counter(
      static_cast<double>(allocs_delta) /
      static_cast<double>(kProbeBatches * kBatch));
}
BENCHMARK(BM_WindowedDispatchChurn);

// Custom main instead of BENCHMARK_MAIN(): a --shards flag (default 1)
// selects the simulator worker count via the BENTO_SIM_SHARDS env override,
// so the 0-allocs/cell and span-overhead gates run against both the serial
// and the sharded dispatch paths (DESIGN.md §12).
int main(int argc, char** argv) {
  int out = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--shards" && i + 1 < argc) {
      ::setenv("BENTO_SIM_SHARDS", argv[i + 1], 1);
      ++i;
      continue;
    }
    argv[out + 1] = argv[i];  // compact: google-benchmark must not see --shards
    ++out;
  }
  argc = out + 1;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
