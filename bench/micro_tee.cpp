// Microbenchmarks: TEE operations on the Bento hot path — sealing, quote
// generation/verification, the attested channel handshake, FS-Protect I/O.
#include <benchmark/benchmark.h>

#include "tee/attestation.hpp"
#include "tee/conclave.hpp"
#include "util/rng.hpp"

namespace bt = bento::tee;
namespace bc = bento::crypto;
namespace bu = bento::util;

static void BM_SealUnseal(benchmark::State& state) {
  bu::Rng rng(1);
  bt::Platform platform(1, 2, rng);
  bt::Enclave enclave(platform, bu::to_bytes("image"), "e");
  const bu::Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto sealed = enclave.seal(data);
    benchmark::DoNotOptimize(enclave.unseal(sealed));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SealUnseal)->Arg(1024)->Arg(65536);

static void BM_QuoteGenerateVerify(benchmark::State& state) {
  bu::Rng rng(2);
  bt::IntelAttestationService ias(rng, 2);
  bt::Platform platform(7, 2, rng);
  ias.provision(platform);
  bt::Enclave enclave(platform, bu::to_bytes("runtime"), "e");
  const bu::Bytes binding = rng.bytes(32);
  for (auto _ : state) {
    auto quote = bt::generate_quote(enclave, binding);
    benchmark::DoNotOptimize(ias.verify_quote(quote, 0));
  }
}
BENCHMARK(BM_QuoteGenerateVerify);

static void BM_AttestedChannelHandshake(benchmark::State& state) {
  bu::Rng rng(3);
  bt::Platform platform(1, 2, rng);
  bt::Enclave enclave(platform, bu::to_bytes("loader"), "l");
  for (auto _ : state) {
    bc::DhKeyPair eph;
    auto hello = bt::SecureChannel::client_hello(eph, rng);
    bt::SecureChannel::Accept accept;
    auto server = bt::SecureChannel::server_accept(hello, enclave, rng, &accept);
    benchmark::DoNotOptimize(
        bt::SecureChannel::client_finish(eph, accept, enclave.measurement()));
    benchmark::DoNotOptimize(&server);
  }
}
BENCHMARK(BM_AttestedChannelHandshake);

static void BM_FsProtectWriteRead(benchmark::State& state) {
  bu::Rng rng(4);
  bt::FsProtect fs(rng);
  const bu::Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    fs.write("f", data);
    benchmark::DoNotOptimize(fs.read("f"));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 2);
}
BENCHMARK(BM_FsProtectWriteRead)->Arg(4096)->Arg(262144);

BENCHMARK_MAIN();
