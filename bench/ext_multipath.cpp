// Extension experiment (paper §9.4 "Multipath routing", implemented as a
// Bento function — see src/functions/multipath.hpp).
//
// Setup: per-circuit throughput is capped by slow middle relays; the exit
// Bento box has a fat uplink. A 2 MB fetch is striped over 1, 2, 3 and 4
// circuits sharing that exit. Expected shape (the mTor [87] / traffic-
// splitting [5] argument): download time drops roughly linearly with the
// number of circuits until the exit link (or the client's downlink)
// saturates.
#include <cstdio>

#include "core/world.hpp"
#include "functions/multipath.hpp"
#include "tor/testbed.hpp"

namespace bc = bento::core;
namespace bf = bento::functions;
namespace bt = bento::tor;
namespace bu = bento::util;

namespace {
constexpr std::size_t kBodyBytes = 2'000'000;

double run_one(int circuits) {
  bc::BentoWorldOptions options;
  options.testbed.seed = 11;
  options.testbed.guards = 6;
  options.testbed.middles = 14;  // enough diversity that stripes rarely collide
  options.testbed.exits = 0;           // the fat exit is added below
  options.testbed.relay_bandwidth = 300e3;  // slow circuits
  bc::BentoWorld world(options);
  bf::register_multipath(world.natives());

  // One fat exit Bento box shared by every circuit.
  bt::RelayConfig exit_cfg;
  exit_cfg.nickname = "fat-exit";
  exit_cfg.addr = bt::parse_addr("10.250.0.1");
  exit_cfg.bandwidth = 6e6;
  exit_cfg.up_bytes_per_sec = 6e6;
  exit_cfg.down_bytes_per_sec = 6e6;
  exit_cfg.flags.exit = true;
  exit_cfg.flags.fast = true;
  exit_cfg.flags.bento = true;
  exit_cfg.bento_policy = options.policy.serialize();
  exit_cfg.exit_policy = bt::ExitPolicy::accept_all();
  const std::size_t exit_index = world.bed().add_relay(exit_cfg);
  world.start();
  const std::string exit_box =
      world.bed().router(exit_index).descriptor().fingerprint();

  bu::Rng rng(3);
  const bu::Bytes body = rng.bytes(kBodyBytes);
  world.bed().add_web_server(bt::parse_addr("93.184.216.34"),
                             [&body](const std::string&) { return body; });

  auto client = world.make_client("alice", 6e6);
  bf::MultipathFetcher fetcher(*client.bento, circuits);
  double seconds = -1;
  bool ok = false;
  fetcher.fetch(exit_box, "http://93.184.216.34/big",
                [&] { return world.sim().now().seconds(); },
                [&](bf::MultipathFetcher::Result result) {
                  ok = result.ok && result.body.size() == kBodyBytes;
                  seconds = result.seconds;
                });
  world.run();
  return ok ? seconds : -1;
}
}  // namespace

int main() {
  std::printf("Extension: multipath routing as a Bento function (paper 9.4)\n");
  std::printf("2 MB fetch; per-circuit bottleneck ~300 KB/s; exit uplink 6 MB/s\n\n");
  std::printf("%-10s %-14s %-12s\n", "circuits", "download (s)", "speedup");
  double base = -1;
  for (int circuits : {1, 2, 3, 4}) {
    const double seconds = run_one(circuits);
    if (base < 0) base = seconds;
    std::printf("%-10d %-14.1f %-12.2f\n", circuits, seconds,
                seconds > 0 ? base / seconds : 0.0);
  }
  std::printf("\nShape to check: near-linear speedup while the slow middle\n"
              "relays are the bottleneck, flattening once the exit/client\n"
              "links saturate.\n");
  return 0;
}
