// Sharded anonymous storage (paper §9.3).
//
// A file is erasure-coded into 5 shards (any 3 reconstruct) and spread
// across 5 Bento boxes, each running a Dropbox function. Later the owner
// retrieves from a 3-subset — here deliberately excluding two boxes, as if
// they had crashed or fallen under suspicion.
//
// Build: cmake --build build --target sharded_dropbox
#include <iostream>

#include "core/world.hpp"
#include "functions/shard.hpp"

namespace bc = bento::core;
namespace bf = bento::functions;
namespace bu = bento::util;

int main() {
  std::cout << "=== Sharded dropbox (any 3 of 5 reconstruct) ===\n";

  bc::BentoWorldOptions options;
  options.testbed.guards = 3;
  options.testbed.middles = 5;
  options.testbed.exits = 3;
  bc::BentoWorld world(options);
  world.start();

  auto client = world.make_client("owner");
  auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());
  const std::vector<std::string> chosen(boxes.begin(), boxes.begin() + 5);

  bu::Rng rng(2024);
  const bu::Bytes document = rng.bytes(200'000);
  std::cout << "document: " << document.size() << " bytes, k=3, n=5\n";

  bf::ShardClient shard_client(*client.bento, 3, 5);
  std::vector<bf::ShardClient::Placement> placements;
  bool stored = false;
  shard_client.store(document, chosen,
                     [&](bool ok, std::vector<bf::ShardClient::Placement> p) {
                       stored = ok;
                       placements = std::move(p);
                     });
  world.run();
  if (!stored) {
    std::cerr << "store failed\n";
    return 1;
  }
  std::cout << "stored one shard on each of:\n";
  for (const auto& p : placements) std::cout << "  " << p.box << "\n";

  // Two boxes "disappear": fetch from the remaining three only.
  std::vector<bf::ShardClient::Placement> survivors(placements.begin() + 2,
                                                    placements.end());
  std::cout << "fetching with boxes " << placements[0].box << " and "
            << placements[1].box << " unavailable...\n";

  std::optional<bu::Bytes> recovered;
  shard_client.fetch(survivors,
                     [&](std::optional<bu::Bytes> out) { recovered = std::move(out); });
  world.run();

  if (!recovered.has_value()) {
    std::cerr << "reconstruction failed\n";
    return 1;
  }
  const bool match = *recovered == document;
  std::cout << "reconstructed " << recovered->size()
            << " bytes from 3 shards; matches original: " << (match ? "yes" : "NO")
            << "\n";
  return match ? 0 : 1;
}
