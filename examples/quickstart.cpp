// Quickstart: the complete Bento client workflow in one file.
//
//   1. bring up a simulated Tor network of Bento-capable relays,
//   2. discover Bento boxes and their middlebox node policies from the
//      consensus,
//   3. spawn a conclave container on one (attesting it), upload a tiny
//      BentoScript function over the sealed channel,
//   4. invoke it with the shareable invocation token,
//   5. terminate it with the private shutdown token.
//
// Build: cmake --build build --target quickstart && ./build/examples/quickstart
#include <iostream>

#include "core/world.hpp"

namespace bc = bento::core;
namespace bu = bento::util;

namespace {
constexpr char kGreeterSource[] = R"(
state = {"count": 0}

def on_message(msg):
    state["count"] += 1
    api.send("hello #" + str(state["count"]) + ", you said: " + str(msg))
)";
}

int main() {
  std::cout << "=== Bento quickstart ===\n";

  // A small Tor network where every relay opted into Bento.
  bc::BentoWorld world;
  world.start();
  std::cout << "started " << world.server_count()
            << " relays, each with a Bento server on port " << bc::kBentoPort
            << "\n";

  // Discovery: boxes + policies come from the (signed, verified) consensus.
  auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());
  const auto* descriptor = world.bed().consensus().find(boxes[0]);
  auto policy = bc::BentoClient::advertised_policy(*descriptor);
  std::cout << "chose box " << boxes[0] << "\nits advertised policy:\n"
            << policy->to_string() << "\n";

  auto client = world.make_client("alice");
  std::shared_ptr<bc::BentoConnection> conn;
  client.bento->connect(boxes[0], [&](std::shared_ptr<bc::BentoConnection> c) {
    conn = std::move(c);
  });
  world.run();
  if (conn == nullptr) {
    std::cerr << "connect failed\n";
    return 1;
  }
  std::cout << "connected over a 3-hop Tor circuit\n";

  conn->set_output_handler([](bu::Bytes out) {
    std::cout << "  function says: " << bu::to_string(out) << "\n";
  });

  // Spawn the SGX image; the client verifies the stapled IAS report and the
  // runtime measurement before anything sensitive leaves its machine.
  bool ready = false;
  conn->spawn(bc::kImagePythonOpSgx, [&](bool ok, std::string err) {
    if (!ok) std::cerr << "spawn failed: " << err << "\n";
    ready = ok;
  });
  world.run();
  if (!ready) return 1;
  std::cout << "container spawned inside a conclave; attestation "
            << (conn->attested() ? "verified" : "skipped") << "\n";

  bc::FunctionManifest manifest;
  manifest.name = "greeter";
  manifest.image = bc::kImagePythonOpSgx;
  manifest.resources.memory_bytes = 8 << 20;
  manifest.resources.cpu_instructions = 1'000'000;
  manifest.resources.disk_bytes = 1 << 20;
  manifest.resources.network_bytes = 1 << 20;

  std::optional<bc::TokenPair> tokens;
  conn->upload(manifest, kGreeterSource, "", {},
               [&](std::optional<bc::TokenPair> t, std::string err) {
                 if (!t.has_value()) std::cerr << "upload failed: " << err << "\n";
                 tokens = std::move(t);
               });
  world.run();
  if (!tokens.has_value()) return 1;
  std::cout << "function installed (sealed upload); invocation token "
            << tokens->invocation.hex() << "\n";

  for (const char* message : {"first call", "second call"}) {
    conn->invoke(tokens->invocation.bytes(), bu::to_bytes(message));
    world.run();
  }

  bool closed = false;
  conn->shutdown(tokens->shutdown.bytes(), [&](bool ok) { closed = ok; });
  world.run();
  std::cout << (closed ? "function shut down cleanly\n" : "shutdown failed\n");
  std::cout << "server counters: spawns=" << world.server(0).counters().spawns
            << " (this box may not be the one used)\n";
  return closed ? 0 : 1;
}
