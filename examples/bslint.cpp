// bslint — the BentoScript static verifier as a command-line tool.
//
// Usage:
//   bslint file.bs [file2.bs ...]   lint BentoScript source files
//   bslint                          lint the built-in function library
//
// For each program it prints the structured diagnostics, the inferred
// capability set (the minimal manifest `required` list a box would accept
// under VerifyMode::Enforce), and the static instruction lower bound.
// Exit status is the number of programs with errors (capped at 125).
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/api.hpp"
#include "functions/library.hpp"
#include "script/analyzer.hpp"
#include "script/parser.hpp"

namespace sc = bento::script;
namespace bc = bento::core;
namespace bf = bento::functions;

namespace {

/// Lints one source; returns false when the program has errors (syntax or
/// analysis) and prints everything the server would learn at upload time.
bool lint(const std::string& name, const std::string& source) {
  std::cout << "== " << name << " ==\n";
  std::unique_ptr<sc::Program> program;
  try {
    program = sc::parse(source);
  } catch (const sc::SyntaxError& e) {
    std::cout << "  syntax error: " << e.what() << "\n\n";
    return false;
  }

  const sc::AnalysisResult result = sc::analyze(*program);
  for (const auto& d : result.diagnostics) {
    std::cout << "  " << d.to_string() << "\n";
  }
  if (result.diagnostics.empty()) std::cout << "  no findings\n";

  std::cout << "  modules:";
  for (const auto& m : result.modules) std::cout << " " << m;
  if (result.modules.empty()) std::cout << " (none)";
  std::cout << "\n  required syscalls:";
  for (const auto& use : result.required) {
    std::cout << " " << bento::sandbox::to_string(use.syscall) << "(" << use.capability
              << "@" << use.line << ")";
  }
  if (result.required.empty()) std::cout << " (none)";
  std::cout << "\n  static step lower bound: " << result.min_steps << "\n\n";
  return !result.has_errors();
}

bool lint_with_manifest(const std::string& name, const std::string& source,
                        const bc::FunctionManifest& manifest) {
  const bool ok = lint(name, source);
  if (!ok) return false;
  // Re-run the full admission decision the server makes under Enforce.
  const bc::VerifyReport report = bc::verify_upload(*sc::parse(source), manifest);
  if (!report.decision.admitted) {
    std::cout << "  manifest check FAILED: " << report.decision.reason << "\n\n";
    return false;
  }
  std::cout << "  manifest '" << manifest.name << "' admits this program\n\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int failures = 0;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      std::ifstream in(argv[i]);
      if (!in) {
        std::cerr << "bslint: cannot open " << argv[i] << "\n";
        ++failures;
        continue;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      if (!lint(argv[i], buf.str())) ++failures;
    }
  } else {
    failures += !lint_with_manifest("browser", bf::browser_source(),
                                    bf::browser_manifest());
    failures += !lint_with_manifest("dropbox", bf::dropbox_source(),
                                    bf::dropbox_manifest());
    failures += !lint_with_manifest("cover", bf::cover_source(), bf::cover_manifest());
    failures += !lint_with_manifest("policy-query", bf::policy_query_source(),
                                    bf::policy_query_manifest());
  }
  return failures > 125 ? 125 : failures;
}
