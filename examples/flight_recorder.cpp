// Flight recorder walkthrough: run a Bento scenario with the trace ring and
// metrics registry on, then write the three observability artifacts:
//
//   trace.json  — Chrome trace_event JSON; open in chrome://tracing or
//                 https://ui.perfetto.dev to see the sim/tor/bento lanes,
//   trace.jsonl — one event per line, byte-stable across identical seeds
//                 (diff two runs to prove determinism),
//   stats.txt   — World::snapshot_stats() text dump: registry counters,
//                 gauges, latency histograms, per-server/per-function and
//                 per-node sections,
//   stats.json  — same snapshot as byte-stable JSON (Snapshot::to_json),
//                 for machine diffing and the CI artifact.
//
// The scenario is quickstart's workflow (spawn, sealed upload, invoke,
// shutdown) plus a clearnet fetch, so the trace shows both the function
// lifecycle events and a full circuit build with TTFB/TTLB marks.
//
// Build: cmake --build build --target flight_recorder
// Run:   ./build/examples/flight_recorder [output-dir] [--shards N]
//                                         [--profile-out <path>] [--top]
//
// --shards N (default 1) runs the scenario on the region-sharded simulator
// (DESIGN.md §12): trace.jsonl and stats.json must come out byte-identical
// at every shard count — diff the artifacts across runs to prove it.
//
// --profile-out <path> writes the shard profiler's deterministic half as
// ShardProfile JSON (DESIGN.md §13) — the same byte-stability contract as
// trace.jsonl, and the file `bentotop --once` renders. --top prints that
// frame to stderr at exit.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/world.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"

namespace bc = bento::core;
namespace bo = bento::obs;
namespace bt = bento::tor;
namespace bu = bento::util;

namespace {
constexpr char kEchoSource[] = R"(
state = {"count": 0}

def on_message(msg):
    state["count"] += 1
    api.send("echo #" + str(state["count"]) + ": " + str(msg))
)";
}

int main(int argc, char** argv) {
  std::string out_dir = ".";
  std::string profile_out;
  bool top = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--shards" && i + 1 < argc) {
      // The world builds its own Simulator; the env override (parallel to
      // BENTO_CHAOS_SEED) is how callers select the shard count without a
      // constructor to reach.
      ::setenv("BENTO_SIM_SHARDS", argv[++i], 1);
    } else if (arg == "--profile-out" && i + 1 < argc) {
      profile_out = argv[++i];
    } else if (arg == "--top") {
      top = true;
    } else {
      out_dir = arg;
    }
  }

  // Recorder on before the world exists so circuit builds are captured too.
  // The SimDispatch firehose stays enabled here on purpose — the Chrome
  // view puts it on its own lane; silence it with set_mask if unwanted.
  bo::recorder().enable(std::size_t{1} << 16);

  bc::BentoWorldOptions options;
  options.testbed.guards = 2;
  options.testbed.middles = 2;
  options.testbed.exits = 2;
  bc::BentoWorld world(options);
  bt::Addr web = bt::parse_addr("93.184.216.34");
  world.bed().add_web_server(web, [](const std::string&) -> std::optional<bu::Bytes> {
    return bu::Bytes(100'000, 'x');
  });
  world.start();

  auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());
  auto client = world.make_client("alice");
  std::shared_ptr<bc::BentoConnection> conn;
  client.bento->connect(boxes[0], [&](std::shared_ptr<bc::BentoConnection> c) {
    conn = std::move(c);
  });
  world.run();
  if (conn == nullptr) {
    std::cerr << "connect failed\n";
    return 1;
  }
  conn->set_output_handler([](bu::Bytes out) {
    std::cout << "  function says: " << bu::to_string(out) << "\n";
  });

  bool ready = false;
  conn->spawn(bc::kImagePythonOpSgx, [&](bool ok, std::string err) {
    if (!ok) std::cerr << "spawn failed: " << err << "\n";
    ready = ok;
  });
  world.run();
  if (!ready) return 1;

  bc::FunctionManifest manifest;
  manifest.name = "echo";
  manifest.image = bc::kImagePythonOpSgx;
  manifest.resources.memory_bytes = 8 << 20;
  manifest.resources.cpu_instructions = 1'000'000;
  manifest.resources.disk_bytes = 1 << 20;
  manifest.resources.network_bytes = 1 << 20;

  std::optional<bc::TokenPair> tokens;
  conn->upload(manifest, kEchoSource, "", {},
               [&](std::optional<bc::TokenPair> t, std::string err) {
                 if (!t.has_value()) std::cerr << "upload failed: " << err << "\n";
                 tokens = std::move(t);
               });
  world.run();
  if (!tokens.has_value()) return 1;

  for (const char* message : {"first call", "second call", "third call"}) {
    conn->invoke(tokens->invocation.bytes(), bu::to_bytes(message));
    world.run();
  }

  // A plain Tor fetch on the side so the trace holds stream TTFB/TTLB.
  bt::Endpoint site{web, 80};
  bt::PathConstraints constraints;
  constraints.exit_to = site;
  bool fetched = false;
  client.proxy->build_circuit(constraints, [&](bt::CircuitOrigin* circ) {
    if (circ == nullptr) return;
    bt::Stream::Callbacks cbs;
    cbs.on_end = [&fetched] { fetched = true; };
    bt::Stream* stream = circ->open_stream(site, std::move(cbs));
    stream->set_on_connected([stream] { stream->send(bu::to_bytes("GET /\n")); });
  });
  world.run();

  bool closed = false;
  conn->shutdown(tokens->shutdown.bytes(), [&](bool ok) { closed = ok; });
  world.run();

  const bo::Recorder& rec = bo::recorder();
  std::cout << "scenario done at t=" << world.sim().now().seconds()
            << "s; fetch " << (fetched ? "ok" : "FAILED") << ", shutdown "
            << (closed ? "ok" : "FAILED") << "\n"
            << "recorded " << rec.recorded() << " trace events ("
            << rec.overwritten() << " overwritten, ring holds " << rec.size()
            << ")\n";

  {
    std::ofstream f(out_dir + "/trace.json");
    bo::recorder().export_chrome_trace(f);
  }
  {
    std::ofstream f(out_dir + "/trace.jsonl");
    bo::recorder().export_jsonl(f);
  }
  const bo::Snapshot snap = world.snapshot_stats();
  {
    std::ofstream f(out_dir + "/stats.txt");
    f << snap.to_string();
  }
  {
    std::ofstream f(out_dir + "/stats.json");
    snap.to_json(f);
  }
  const bo::ShardProfileSnapshot prof = bo::shard_profiler().snapshot();
  if (!profile_out.empty()) {
    std::ofstream f(profile_out);
    prof.to_json(f);  // deterministic half only: byte-stable artifact
    std::cout << "wrote " << profile_out << " (ShardProfile JSON; render with "
                 "bentotop --once)\n";
  }
  if (top) {
    std::ostringstream frame;
    bo::render_top_frame(prof, frame);
    std::cerr << frame.str();
  }
  std::cout << "wrote " << out_dir << "/trace.json (chrome://tracing), "
            << out_dir << "/trace.jsonl, " << out_dir << "/stats.txt, "
            << out_dir << "/stats.json\n\n"
            << snap.to_string();
  return fetched && closed ? 0 : 1;
}
