// Private browsing with function composition — the paper's motivating
// example (Figures 1 and 2).
//
// Alice wants a page without exposing fingerprintable traffic dynamics, and
// wants to be *offline* while it downloads:
//   1. she installs Dropbox on box B (SGX image: encrypted at rest),
//   2. she installs a composing Browser on exit box A that fetches the URL,
//      compresses + pads it, and PUTs it into the Dropbox on B,
//   3. she disconnects; later she returns over a fresh circuit and GETs the
//      padded bundle from B.
//
// To an adversary on her link: a small upload, silence, and (much later)
// one bulk download — none of the per-resource dynamics fingerprinting
// attacks feed on.
//
// Build: cmake --build build --target private_browsing
#include <iostream>

#include "core/world.hpp"
#include "functions/library.hpp"
#include "util/zlite.hpp"

namespace bc = bento::core;
namespace bf = bento::functions;
namespace bt = bento::tor;
namespace bu = bento::util;

namespace {
// Browser variant that delivers into a remote Dropbox instead of replying.
// Install args: "<padding> " + raw dropbox invocation token.
// Invoke payload: "<url> <dropbox box fingerprint>".
constexpr char kOfflineBrowserSource[] = R"(
state = {"padding": 0, "box": "", "token": None}

def stored(reply):
    api.log("dropbox replied: " + str(reply))

def fetched(body):
    if body == None:
        api.log("fetch failed")
        return
    compressed = zlib.compress(body)
    final = compressed
    padding = state["padding"]
    if padding > 0:
        if padding - len(final) > 0:
            final = final + os.urandom(padding - len(final))
        else:
            final = final + os.urandom((len(final) + padding) % padding)
    bento.invoke(state["box"], state["token"], bytes("PUT:") + final, stored)

def on_install(args):
    parts = str(args).split(" ")
    state["padding"] = int(parts[0])
    state["token"] = sub(args, len(parts[0]) + 1)

def on_message(msg):
    req = str(msg).split(" ")
    state["box"] = req[1]
    net.get(req[0], fetched)
)";

struct Installed {
  std::shared_ptr<bc::BentoConnection> conn;
  std::optional<bc::TokenPair> tokens;
};

Installed install(bc::BentoWorld& world, bc::BentoWorld::Client& client,
                  const std::string& box, const bc::FunctionManifest& manifest,
                  const std::string& source, bu::Bytes args = {}) {
  Installed out;
  client.bento->connect(box, [&](std::shared_ptr<bc::BentoConnection> c) {
    out.conn = std::move(c);
  });
  world.run();
  if (out.conn == nullptr) return out;
  out.conn->spawn(manifest.image, [&](bool ok, std::string err) {
    if (!ok) {
      std::cerr << "spawn failed: " << err << "\n";
      return;
    }
    out.conn->upload(manifest, source, "", args,
                     [&](std::optional<bc::TokenPair> t, std::string err2) {
                       if (!t.has_value()) std::cerr << "upload failed: " << err2 << "\n";
                       out.tokens = std::move(t);
                     });
  });
  world.run();
  return out;
}
}  // namespace

int main() {
  std::cout << "=== Offline private browsing (Browser -> Dropbox composition) ===\n";

  bc::BentoWorld world;
  world.start();

  const std::string page = "<html>" + std::string(120'000, 'q') + "</html>";
  world.bed().add_web_server(bt::parse_addr("93.184.216.34"),
                             [&page](const std::string&) {
                               return bu::to_bytes(page);
                             });

  std::string exit_box, storage_box;
  for (const auto& relay : world.bed().consensus().relays) {
    if (relay.flags.exit && exit_box.empty()) exit_box = relay.fingerprint();
    if (!relay.flags.exit) storage_box = relay.fingerprint();
  }

  auto alice = world.make_client("alice");

  // 1. Dropbox on the storage box.
  auto dropbox = install(world, alice, storage_box, bf::dropbox_manifest(),
                         bf::dropbox_source());
  if (!dropbox.tokens.has_value()) return 1;
  std::cout << "1. Dropbox installed on " << storage_box << "\n";

  // 2. Composing Browser on the exit box; it learns the Dropbox capability
  //    through its (sealed) install args.
  auto manifest = bf::browser_manifest();
  manifest.name = "offline-browser";
  manifest.required.push_back(bento::sandbox::Syscall::SpawnFunction);
  bu::Bytes browser_args = bu::to_bytes("65536 ");
  bu::append(browser_args, dropbox.tokens->invocation.bytes());
  auto browser = install(world, alice, exit_box, manifest, kOfflineBrowserSource,
                         browser_args);
  if (!browser.tokens.has_value()) return 1;
  std::cout << "2. offline-Browser installed on exit " << exit_box << "\n";

  // 3. Kick off the fetch, then go offline immediately.
  browser.conn->invoke(browser.tokens->invocation.bytes(),
                       bu::to_bytes("http://93.184.216.34/page " + storage_box));
  browser.conn->close();
  std::cout << "3. fetch started; Alice goes offline while it runs\n";
  world.run();

  // 4. Later: pick the bundle up from the Dropbox over a fresh circuit.
  std::shared_ptr<bc::BentoConnection> pickup;
  alice.bento->connect(storage_box, [&](std::shared_ptr<bc::BentoConnection> c) {
    pickup = std::move(c);
  });
  world.run();
  if (pickup == nullptr) return 1;
  bu::Bytes bundle;
  pickup->set_output_handler([&](bu::Bytes out) { bundle = std::move(out); });
  pickup->invoke(dropbox.tokens->invocation.bytes(), bu::to_bytes("GET:"));
  world.run();

  if (bundle.empty() || bu::to_string(bundle) == "MISSING") {
    std::cerr << "pickup failed\n";
    return 1;
  }
  std::cout << "4. picked up " << bundle.size() << " padded bytes (multiple of 65536: "
            << (bundle.size() % 65536 == 0 ? "yes" : "no") << ")\n";
  const bu::Bytes page_bytes = bu::zlite::decompress(bundle);
  const bool match = bu::to_string(page_bytes) == page;
  std::cout << "   decompressed to " << page_bytes.size()
            << " bytes; matches original: " << (match ? "yes" : "NO") << "\n";
  return match ? 0 : 1;
}
