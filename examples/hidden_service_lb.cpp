// Autoscaling hidden service (paper §8, Figure 4).
//
// An operator uploads the LoadBalancer function; it establishes the hidden
// service, and as clients pile on it clones the service identity onto
// replica Bento boxes which answer rendezvous requests on its behalf —
// fully transparent to the clients, who only ever see one onion address.
//
// Build: cmake --build build --target hidden_service_lb
#include <iomanip>
#include <iostream>

#include "core/world.hpp"
#include "functions/loadbalancer.hpp"
#include "tor/hs.hpp"

namespace bc = bento::core;
namespace bf = bento::functions;
namespace bt = bento::tor;
namespace bu = bento::util;

int main() {
  std::cout << "=== Autoscaling hidden service (LoadBalancer) ===\n";

  bc::BentoWorldOptions options;
  options.testbed.guards = 3;
  options.testbed.middles = 6;
  options.testbed.exits = 2;
  options.testbed.relay_bandwidth = 4e6;
  bc::BentoWorld world(options);
  bf::register_loadbalancer(world.natives());
  world.start();

  auto operator_client = world.make_client("operator");
  auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());

  bf::LoadBalancerConfig config;
  config.intro_points = 3;
  config.max_clients_per_replica = 2;
  config.content_bytes = 1'000'000;
  config.replica_boxes = {boxes[2], boxes[3], boxes[4]};
  config.idle_shutdown_seconds = 0;

  std::shared_ptr<bc::BentoConnection> conn;
  operator_client.bento->connect(boxes[1], [&](std::shared_ptr<bc::BentoConnection> c) {
    conn = std::move(c);
  });
  world.run();
  std::optional<bc::TokenPair> tokens;
  std::vector<std::string> replies;
  conn->set_output_handler([&](bu::Bytes out) { replies.push_back(bu::to_string(out)); });
  conn->spawn(bc::kImagePythonOpSgx, [&](bool ok, std::string err) {
    if (!ok) { std::cerr << "spawn: " << err << "\n"; std::exit(1); }
    conn->upload(bf::loadbalancer_manifest(), "", "loadbalancer", config.serialize(),
                 [&](std::optional<bc::TokenPair> t, std::string err2) {
                   if (!t.has_value()) std::cerr << "upload: " << err2 << "\n";
                   tokens = std::move(t);
                 });
  });
  world.run();
  if (!tokens.has_value()) return 1;

  conn->invoke(tokens->invocation.bytes(), bu::to_bytes("onion"));
  world.run();
  const std::string onion = replies.back();
  std::cout << "hidden service up at onion id " << onion << "\n";

  // Seven clients arrive at ~2 s intervals and download 1 MB each.
  struct Download {
    std::unique_ptr<bt::OnionProxy> proxy;
    std::unique_ptr<bt::HsClient> hs;
    std::size_t received = 0;
    double finished = -1;
  };
  std::vector<std::unique_ptr<Download>> downloads;
  for (int i = 0; i < 7; ++i) {
    auto dl = std::make_unique<Download>();
    dl->proxy = world.bed().make_client("client" + std::to_string(i), 4e6);
    dl->hs = std::make_unique<bt::HsClient>(*dl->proxy, world.bed().directory());
    Download* raw = dl.get();
    world.sim().after(bu::Duration::seconds(2.0 * i), [raw, onion, &world] {
      raw->hs->connect(onion, [raw, &world](bt::CircuitOrigin* circ) {
        if (circ == nullptr) return;
        bt::Stream::Callbacks cbs;
        cbs.on_data = [raw](bu::ByteView d) { raw->received += d.size(); };
        cbs.on_end = [raw, &world] { raw->finished = world.sim().now().seconds(); };
        bt::Stream* stream = circ->open_stream({0, 80}, std::move(cbs));
        stream->set_on_connected([stream] { stream->send(bu::to_bytes("GET\n")); });
      });
    });
    downloads.push_back(std::move(dl));
  }
  world.run();

  std::cout << std::fixed << std::setprecision(1);
  for (std::size_t i = 0; i < downloads.size(); ++i) {
    std::cout << "client " << i << ": " << downloads[i]->received / 1000
              << " KB, finished at t=" << downloads[i]->finished << " s\n";
  }

  conn->invoke(tokens->invocation.bytes(), bu::to_bytes("status"));
  world.run();
  std::cout << "loadbalancer " << replies.back() << "\n";
  return 0;
}
