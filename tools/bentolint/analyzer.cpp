#include "bentolint/analyzer.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <map>
#include <ostream>
#include <sstream>

#include "bentolint/lexer.hpp"

namespace bento::lint {

namespace {

// ---------------------------------------------------------------------------
// Small utilities

std::uint64_t fnv1a(std::string_view s,
                    std::uint64_t h = 1469598103934665603ull) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

template <std::size_t N>
bool in_list(std::string_view s, const std::array<std::string_view, N>& list) {
  return std::find(list.begin(), list.end(), s) != list.end();
}

std::vector<std::string_view> split_lines(std::string_view src) {
  std::vector<std::string_view> lines;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= src.size(); ++i) {
    if (i == src.size() || src[i] == '\n') {
      lines.push_back(src.substr(start, i - start));
      start = i + 1;
    }
  }
  return lines;
}

// ---------------------------------------------------------------------------
// Rule vocabularies

constexpr std::array<std::string_view, 4> kWallClockTypes = {
    "system_clock", "steady_clock", "high_resolution_clock", "random_device"};

constexpr std::array<std::string_view, 10> kWallClockCalls = {
    "rand",      "srand",        "time",   "clock", "gettimeofday",
    "localtime", "timespec_get", "gmtime", "mktime", "ctime"};

constexpr std::array<std::string_view, 6> kAllocCalls = {
    "make_shared", "make_unique", "malloc", "calloc", "realloc", "strdup"};

constexpr std::array<std::string_view, 10> kAllocMethods = {
    "push_back", "emplace_back", "emplace", "push_front", "emplace_front",
    "resize",    "reserve",      "insert",  "append",     "assign"};

constexpr std::array<std::string_view, 15> kAllocTypes = {
    "vector",        "deque",         "list",
    "string",        "map",           "set",
    "multimap",      "multiset",      "unordered_map",
    "unordered_set", "unordered_multimap", "unordered_multiset",
    "function",      "ostringstream", "stringstream"};

constexpr std::array<std::string_view, 4> kUnorderedTypes = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

constexpr std::array<std::string_view, 17> kEmissionCalls = {
    "trace",     "record",   "end_span",  "begin_span", "note",
    "log",       "log_line", "log_info",  "log_warn",   "log_error",
    "log_debug", "emit",     "export_jsonl", "export_chrome_trace",
    "to_json",   "to_jsonl", "write"};

constexpr std::array<std::string_view, 13> kConcurrencyTypes = {
    "thread",          "jthread",
    "mutex",           "recursive_mutex",
    "shared_mutex",    "timed_mutex",
    "condition_variable", "condition_variable_any",
    "atomic",          "atomic_flag",
    "future",          "promise",
    "async"};

constexpr std::array<std::string_view, 6> kBannedFns = {
    "strcpy", "strcat", "sprintf", "vsprintf", "gets", "tmpnam"};

constexpr std::array<std::string_view, 9> kNotAFnName = {
    "if", "while", "for", "switch", "return", "sizeof",
    "alignof", "decltype", "catch"};

// ---------------------------------------------------------------------------
// Suppressions
//
//   // bentolint: allow(BL102 pool refill, amortized)
//   // bentolint: allow-file(BL101 bench timing loop)
//
// allow() covers the comment's own line and the next line; allow-file()
// covers the whole file. The reason text is mandatory: an unexplained
// suppression is the thing this tool exists to prevent.

struct Suppressions {
  std::map<int, std::set<std::string>> by_line;  // line -> rules allowed
  std::set<std::string> file_wide;
  std::vector<Diagnostic> malformed;  // BL100
};

Suppressions collect_suppressions(std::string_view rel_path,
                                  const std::vector<Token>& toks) {
  Suppressions sup;
  for (const Token& t : toks) {
    if (t.kind != Tok::Comment) continue;
    std::string_view text = t.text;
    const std::size_t tag = text.find("bentolint:");
    if (tag == std::string_view::npos) continue;
    text.remove_prefix(tag + std::string_view("bentolint:").size());
    std::size_t pos = 0;
    bool parsed_any = false;
    while (pos < text.size()) {
      const std::size_t open = text.find('(', pos);
      if (open == std::string_view::npos) break;
      std::size_t word_start = open;
      while (word_start > pos &&
             (std::isalnum(static_cast<unsigned char>(text[word_start - 1])) ||
              text[word_start - 1] == '-' || text[word_start - 1] == '_')) {
        --word_start;
      }
      const std::string_view verb = trim(text.substr(word_start, open - word_start));
      const std::size_t close = text.find(')', open);
      if (close == std::string_view::npos) break;
      const std::string_view body = trim(text.substr(open + 1, close - open - 1));
      pos = close + 1;
      if (verb != "allow" && verb != "allow-file") continue;
      parsed_any = true;
      // Leading BLxxx tokens (comma/space separated) are rules, the
      // remainder is the reason.
      std::vector<std::string> rules;
      std::string_view rest = body;
      while (true) {
        const std::string_view w = trim(rest.substr(0, rest.find_first_of(" ,\t")));
        if (w.size() >= 4 && starts_with(w, "BL") &&
            std::all_of(w.begin() + 2, w.end(), [](char c) {
              return std::isdigit(static_cast<unsigned char>(c));
            })) {
          rules.emplace_back(w);
          const std::size_t cut = rest.find_first_of(" ,\t");
          if (cut == std::string_view::npos) {
            rest = {};
            break;
          }
          rest = trim(rest.substr(cut + 1));
          if (!rest.empty() && rest.front() == ',') rest = trim(rest.substr(1));
        } else {
          break;
        }
      }
      const std::string_view reason = trim(rest);
      if (rules.empty() || reason.empty()) {
        Diagnostic d;
        d.rule = "BL100";
        d.file = std::string(rel_path);
        d.line = t.line;
        d.col = t.col;
        d.message = rules.empty()
                        ? "suppression names no BLxxx rule"
                        : "suppression for " + rules.front() +
                              " gives no reason (allow(BLxxx <why>))";
        sup.malformed.push_back(std::move(d));
        continue;
      }
      for (const std::string& r : rules) {
        if (verb == "allow-file") {
          sup.file_wide.insert(r);
        } else {
          sup.by_line[t.line].insert(r);
          sup.by_line[t.line + 1].insert(r);
        }
      }
    }
    (void)parsed_any;
  }
  return sup;
}

// ---------------------------------------------------------------------------
// The scope-tracking walker

enum class Brace : std::uint8_t {
  FnBody,  // a function definition's body
  Init,    // brace initializer inside a declaration / ctor init list
  Scope,   // namespace/class/enum/extern block, or a block we can't name
};

struct FnFrame {
  std::string name;
  bool hot = false;
  bool det = false;
  bool framed = false;  // BENTO_FRAMED (store frame-commit function)
  std::size_t brace_size = 0;  // brace-stack size right after body '{'
  std::vector<std::string> strong_self;  // vars assigned from shared_from_this
  // BL109 bookkeeping: did this frame call write_frame / touch a crc32
  // helper? Checked when the frame closes.
  bool wrote_frame = false;
  bool crc_update = false;
  Token write_site{};  // first write_frame call, for the diagnostic anchor
};

class FileAnalysis {
 public:
  FileAnalysis(std::string_view rel_path, std::string_view src,
               const FileScope& scope)
      : path_(rel_path), scope_(scope), lines_(split_lines(src)) {
    all_ = lex(src);
    sup_ = collect_suppressions(rel_path, all_);
    for (const Token& t : all_) {
      if (t.kind == Tok::Comment) continue;
      if (t.kind == Tok::Pp) {
        pp_.push_back(t);
        continue;
      }
      sig_.push_back(t);
    }
  }

  std::vector<Diagnostic> run() {
    collect_unordered_names();
    check_preprocessor();
    walk();
    for (Diagnostic& d : sup_.malformed) diags_.push_back(std::move(d));
    apply_suppressions();
    assign_fingerprints();
    return std::move(diags_);
  }

 private:
  // -- token helpers over sig_ ----------------------------------------------
  std::string_view text(std::size_t i) const {
    return i < sig_.size() ? sig_[i].text : std::string_view{};
  }
  bool is_punct(std::size_t i, std::string_view p) const {
    return i < sig_.size() && sig_[i].kind == Tok::Punct && sig_[i].text == p;
  }
  bool is_ident(std::size_t i) const {
    return i < sig_.size() && sig_[i].kind == Tok::Ident;
  }

  void report(std::string rule, const Token& at, std::string message) {
    Diagnostic d;
    d.rule = std::move(rule);
    d.file = std::string(path_);
    d.line = at.line;
    d.col = at.col;
    d.message = std::move(message);
    diags_.push_back(std::move(d));
  }

  // -- pre-passes -----------------------------------------------------------

  // Names declared with an unordered container type anywhere in the file
  // (members and locals alike): `std::unordered_map<K, V> name`.
  void collect_unordered_names() {
    for (std::size_t i = 0; i + 1 < sig_.size(); ++i) {
      if (!is_ident(i) || !in_list(sig_[i].text, kUnorderedTypes)) continue;
      std::size_t j = i + 1;
      if (is_punct(j, "<")) {
        int angle = 0;
        for (; j < sig_.size(); ++j) {
          if (is_punct(j, "<")) ++angle;
          if (is_punct(j, ">")) {
            if (--angle == 0) {
              ++j;
              break;
            }
          }
        }
      }
      while (is_punct(j, "&") || is_punct(j, "*")) ++j;
      if (is_ident(j)) unordered_names_.insert(std::string(sig_[j].text));
    }
  }

  void check_preprocessor() {
    bool pragma_once = false;
    for (const Token& t : pp_) {
      // Normalize "#  include" to "#include".
      std::string head;
      for (const char c : t.text) {
        if (!std::isspace(static_cast<unsigned char>(c))) head.push_back(c);
        if (head.size() > 14) break;
      }
      if (starts_with(head, "#pragmaonce")) pragma_once = true;
      if (starts_with(head, "#include")) {
        const std::string_view body = t.text;
        if (body.find("\"../") != std::string_view::npos ||
            body.find("/../") != std::string_view::npos) {
          report("BL108", t,
                 "relative include escapes the source root; include "
                 "repo-rooted paths (\"subsys/header.hpp\")");
        }
        if (body.find("<bits/") != std::string_view::npos) {
          report("BL108", t,
                 "<bits/...> is a libstdc++ internal; include the standard "
                 "header instead");
        }
      }
    }
    if (scope_.is_header && !pragma_once && !lines_.empty()) {
      Token at;
      at.line = 1;
      at.col = 1;
      report("BL107", at, "header has no #pragma once guard");
    }
  }

  // -- declaration classification -------------------------------------------

  struct DeclInfo {
    bool is_function = false;
    bool is_scope = false;   // namespace/class/struct/enum/union/extern block
    bool is_init = false;    // `= {...}` style initializer
    bool in_ctor_init = false;  // function pattern followed by `:`
    bool hot = false;
    bool det = false;
    bool framed = false;
    std::string name;
  };

  DeclInfo classify_decl() const {
    DeclInfo info;
    int paren = 0;
    std::size_t first_call_open = std::string_view::npos;
    bool seen_close_after_open = false;
    for (std::size_t k = 0; k < decl_.size(); ++k) {
      const Token& t = decl_[k];
      if (t.kind == Tok::Ident) {
        if (paren == 0) {
          if (t.text == "namespace" || t.text == "class" ||
              t.text == "struct" || t.text == "union" || t.text == "enum" ||
              t.text == "extern") {
            // `class Foo;` and `class Foo x;` never reach '{'; anything that
            // does open a brace after these keywords is a scope, except a
            // function returning a `struct X`-qualified type — rare enough
            // to leave to suppressions.
            info.is_scope = true;
          }
          if (t.text == "BENTO_HOT") info.hot = true;
          if (t.text == "BENTO_DETERMINISTIC") info.det = true;
          if (t.text == "BENTO_FRAMED") info.framed = true;
        }
        continue;
      }
      if (t.kind != Tok::Punct) continue;
      if (t.text == "(") {
        if (paren == 0 && first_call_open == std::string_view::npos &&
            k > 0) {
          const Token& prev = decl_[k - 1];
          const bool callable_name =
              (prev.kind == Tok::Ident && !in_list(prev.text, kNotAFnName)) ||
              // `operator()(...)`: the param list follows `operator ( )`.
              (prev.kind == Tok::Punct && prev.text == ")" && k >= 3 &&
               decl_[k - 3].kind == Tok::Ident &&
               decl_[k - 3].text == "operator");
          if (callable_name) {
            first_call_open = k;
            info.name = prev.kind == Tok::Ident ? std::string(prev.text)
                                                : "operator()";
          }
        }
        ++paren;
      } else if (t.text == ")") {
        if (paren > 0) --paren;
        if (paren == 0 && first_call_open != std::string_view::npos) {
          seen_close_after_open = true;
        }
      } else if (paren == 0) {
        if (t.text == "=" && !seen_close_after_open) {
          // `Type x = ...{...}` — an initializer, not a body. (A trailing
          // `= default`/`= delete` never opens a brace.)
          info.is_init = true;
        }
        if (t.text == ":" && seen_close_after_open) {
          info.in_ctor_init = true;
        }
      }
    }
    info.is_function = !info.is_scope && !info.is_init &&
                       first_call_open != std::string_view::npos &&
                       seen_close_after_open;
    return info;
  }

  bool inside_function() const { return !fns_.empty(); }
  bool inside_hot() const {
    return std::any_of(fns_.begin(), fns_.end(),
                       [](const FnFrame& f) { return f.hot; });
  }
  bool inside_det() const {
    return std::any_of(fns_.begin(), fns_.end(),
                       [](const FnFrame& f) { return f.det; });
  }

  // -- the main walk --------------------------------------------------------

  void walk() {
    for (std::size_t i = 0; i < sig_.size(); ++i) {
      const Token& t = sig_[i];
      if (t.kind == Tok::Punct) {
        if (t.text == "{") {
          on_open_brace(i);
          continue;
        }
        if (t.text == "}") {
          on_close_brace();
          continue;
        }
        if (t.text == ";") {
          if (!inside_function()) decl_.clear();
          stmt_.clear();
          continue;
        }
        if (t.text == "[" && inside_function()) {
          i = maybe_lambda_capture(i);
          continue;
        }
      }
      if (!inside_function()) {
        decl_.push_back(t);
        // Access specifiers would otherwise pollute the next declaration.
        if (t.kind == Tok::Punct && t.text == ":" && decl_.size() == 2 &&
            decl_[0].kind == Tok::Ident &&
            (decl_[0].text == "public" || decl_[0].text == "private" ||
             decl_[0].text == "protected")) {
          decl_.clear();
        }
      } else {
        stmt_.push_back(t);
      }
      if (t.kind == Tok::Ident) on_ident(i);
    }
  }

  void on_open_brace(std::size_t i) {
    if (inside_function()) {
      braces_.push_back(Brace::Scope);
      stmt_.clear();
      return;
    }
    const DeclInfo info = classify_decl();
    Brace kind = Brace::Scope;
    if (info.is_init) {
      kind = Brace::Init;
    } else if (info.is_function) {
      if (info.in_ctor_init) {
        // Inside `Ctor(...) : a_(x), b_{y} { body }` the body brace is the
        // one following a closed initializer (')' or '}'); a brace after an
        // identifier, comma or colon opens an initializer value.
        const bool in_init_value =
            !braces_.empty() && braces_.back() == Brace::Init;
        const Token* prev = i > 0 ? &sig_[i - 1] : nullptr;
        const bool after_closed_init =
            prev != nullptr && prev->kind == Tok::Punct &&
            (prev->text == ")" || prev->text == "}");
        kind = (!in_init_value && after_closed_init) ? Brace::FnBody
                                                     : Brace::Init;
      } else {
        kind = Brace::FnBody;
      }
    }
    braces_.push_back(kind);
    if (kind == Brace::FnBody) {
      FnFrame f;
      f.name = info.name;
      f.hot = info.hot;
      f.det = info.det;
      f.framed = info.framed;
      f.brace_size = braces_.size();
      fns_.push_back(std::move(f));
      decl_.clear();
      stmt_.clear();
    } else if (kind == Brace::Scope) {
      decl_.clear();
    }
  }

  void on_close_brace() {
    if (braces_.empty()) return;
    const Brace kind = braces_.back();
    braces_.pop_back();
    if (kind == Brace::FnBody && !fns_.empty() &&
        braces_.size() < fns_.back().brace_size) {
      // BL109, second clause: a BENTO_FRAMED function that committed a frame
      // must also have refreshed its CRC (any crc32* helper). Checked at the
      // closing brace so a crc32 call anywhere in the body satisfies it.
      const FnFrame& f = fns_.back();
      if (f.wrote_frame && !f.crc_update) {
        report("BL109", f.write_site,
               "'" + f.name + "' calls write_frame but never computes a "
               "crc32 over the frame; every committed frame must carry a "
               "fresh CRC (torn-write recovery depends on it, DESIGN.md §15)");
      }
      fns_.pop_back();
      decl_.clear();
    }
    if (kind == Brace::Scope && !inside_function()) decl_.clear();
    stmt_.clear();
  }

  // -- per-identifier rules -------------------------------------------------

  void on_ident(std::size_t i) {
    const Token& t = sig_[i];
    const std::string_view s = t.text;

    // BL101 — wall clock / entropy where determinism is the contract.
    if (scope_.deterministic_everywhere || inside_det()) {
      if (in_list(s, kWallClockTypes)) {
        report("BL101", t,
               "'" + std::string(s) +
                   "' in deterministic code; sim time comes from "
                   "util/simclock.hpp, randomness from the seeded Rng");
      } else if (in_list(s, kWallClockCalls) && is_punct(i + 1, "(") &&
                 is_free_or_std_call(i)) {
        report("BL101", t,
               "'" + std::string(s) +
                   "()' reads the wall clock / process entropy; "
                   "deterministic code must use util/simclock.hpp or the "
                   "seeded Rng");
      }
    }

    // BL102 — allocation inside a BENTO_HOT function.
    if (inside_hot()) {
      const bool operator_new_call = i > 0 && text(i - 1) == "operator";
      if (s == "new" && (operator_new_call || !is_punct(i + 1, "("))) {
        // `new (place) T` placement form is the pool fast path — allowed;
        // `::operator new(n)` is a plain heap allocation and is not.
        report("BL102", t, "operator new in BENTO_HOT function '" +
                               fns_.back().name + "'");
      } else if (in_list(s, kAllocCalls) &&
                 (is_punct(i + 1, "(") || is_punct(i + 1, "<"))) {
        report("BL102", t, "'" + std::string(s) + "' allocates in BENTO_HOT "
                               "function '" + fns_.back().name + "'");
      } else if (in_list(s, kAllocMethods) && is_punct(i + 1, "(") && i > 0 &&
                 (is_punct(i - 1, ".") || is_punct(i - 1, "->"))) {
        report("BL102", t,
               "'." + std::string(s) + "()' may grow the container in "
                                       "BENTO_HOT function '" +
                   fns_.back().name + "'");
      } else if (in_list(s, kAllocTypes) && i >= 2 && is_punct(i - 1, "::") &&
                 text(i - 2) == "std" &&
                 (is_punct(i + 1, "<") || is_punct(i + 1, "("))) {
        report("BL102", t, "allocating std::" + std::string(s) +
                               " constructed in BENTO_HOT function '" +
                               fns_.back().name + "'");
      }
    }

    // BL103 — strong self-capture bookkeeping: `x = shared_from_this()`
    // outside a weak_ptr declaration marks x as a strong self handle.
    if (inside_function() && s == "shared_from_this") {
      bool weak = false;
      std::string target;
      for (std::size_t k = 0; k + 1 < stmt_.size(); ++k) {
        if (stmt_[k].kind == Tok::Ident && stmt_[k].text == "weak_ptr") {
          weak = true;
        }
        if (stmt_[k + 1].kind == Tok::Punct && stmt_[k + 1].text == "=" &&
            stmt_[k].kind == Tok::Ident) {
          target = std::string(stmt_[k].text);
        }
      }
      if (!weak && !target.empty()) {
        fns_.back().strong_self.push_back(std::move(target));
      }
    }

    // BL104 — unordered iteration feeding emission.
    if (inside_function() && s == "for" && is_punct(i + 1, "(")) {
      check_range_for(i);
    }

    // BL105 — concurrency allowlist for src/sim + src/core. The only
    // sanctioned primitives are the sharded-simulator window pool's
    // (worker std::threads, the lookahead-barrier mutex/condvars, shard
    // mailboxes — DESIGN.md §12), each carrying a
    // `// bentolint: allow(BL105 <why>)` annotation at the declaration.
    // Anything unannotated still flags: new concurrency must join the
    // allowlist with a written rationale, not slip in piecemeal.
    if (scope_.concurrency_inventory) {
      if (in_list(s, kConcurrencyTypes) && i >= 2 && is_punct(i - 1, "::") &&
          text(i - 2) == "std") {
        report("BL105", t,
               "std::" + std::string(s) +
                   " outside the sharded-simulator allowlist; sanction it "
                   "with `// bentolint: allow(BL105 <why>)` and a DESIGN.md "
                   "§12 rationale, or keep this code single-threaded");
      } else if (starts_with(s, "pthread_")) {
        report("BL105", t,
               "'" + std::string(s) +
                   "' outside the sharded-simulator allowlist (raw pthreads "
                   "are never sanctioned; use the std primitives with an "
                   "allow annotation)");
      }
    }

    // BL109 — store framing invariant (src/store only): write_frame is the
    // single durable-commit primitive, and every caller must be annotated
    // BENTO_FRAMED *and* compute a CRC (a crc32*-named helper) in the same
    // function body, so no frame ever reaches the log without a checksum.
    if (scope_.store_framing && inside_function()) {
      if (s == "write_frame" && is_punct(i + 1, "(")) {
        FnFrame& f = fns_.back();
        if (!f.framed) {
          report("BL109", t,
                 "call to write_frame in '" + f.name + "', which is not "
                 "annotated BENTO_FRAMED; frame commits are restricted to "
                 "BENTO_FRAMED functions that pair the write with a crc32 "
                 "update (DESIGN.md §15)");
        } else if (!f.wrote_frame) {
          f.wrote_frame = true;
          f.write_site = t;
        }
      } else if (starts_with(s, "crc32")) {
        for (FnFrame& f : fns_) f.crc_update = true;
      }
    }

    // BL106 — banned unsafe C functions.
    if (in_list(s, kBannedFns) && is_punct(i + 1, "(") &&
        is_free_or_std_call(i)) {
      report("BL106", t,
             "'" + std::string(s) + "' is banned (unbounded write); use the "
                                    "bounded/std alternatives");
    }
  }

  // A call is "free or std::" when it is not a member access and any
  // qualifier is exactly `std` — `msg.time()` and `util::time()` are fine,
  // `time()` and `std::time()` are not.
  bool is_free_or_std_call(std::size_t i) const {
    if (i == 0) return true;
    if (is_punct(i - 1, ".") || is_punct(i - 1, "->")) return false;
    if (is_punct(i - 1, "::")) return i >= 2 && text(i - 2) == "std";
    return true;
  }

  // BL103, capture side: at a lambda introducer, each capture segment that
  // carries shared_from_this() or a tracked strong-self variable (without a
  // weak_ptr conversion in the same segment) is the leak class.
  std::size_t maybe_lambda_capture(std::size_t open) {
    // `[[` attribute, subscript `a[i]`, or array declarator `int a[3]`.
    if (is_punct(open + 1, "[")) return open;
    if (open > 0) {
      const Token& prev = sig_[open - 1];
      if (prev.kind == Tok::Ident || prev.kind == Tok::Number ||
          prev.kind == Tok::String ||
          (prev.kind == Tok::Punct &&
           (prev.text == ")" || prev.text == "]"))) {
        return open;
      }
    }
    std::size_t close = open + 1;
    int depth = 1;
    for (; close < sig_.size(); ++close) {
      if (is_punct(close, "[")) ++depth;
      if (is_punct(close, "]") && --depth == 0) break;
    }
    if (close >= sig_.size()) return open;
    // Split the capture list into top-level comma segments.
    std::size_t seg_start = open + 1;
    int nest = 0;
    for (std::size_t k = open + 1; k <= close; ++k) {
      const bool at_end = k == close;
      if (!at_end && sig_[k].kind == Tok::Punct) {
        const std::string_view p = sig_[k].text;
        if (p == "(" || p == "{" || p == "<" || p == "[") ++nest;
        if (p == ")" || p == "}" || p == ">" || p == "]") --nest;
      }
      if (at_end || (nest == 0 && is_punct(k, ","))) {
        check_capture_segment(seg_start, k);
        seg_start = k + 1;
      }
    }
    return close;
  }

  void check_capture_segment(std::size_t from, std::size_t to) {
    bool has_self_call = false;
    bool has_weak = false;
    const Token* strong_var = nullptr;
    for (std::size_t k = from; k < to; ++k) {
      if (!is_ident(k)) continue;
      const std::string_view s = sig_[k].text;
      if (s == "shared_from_this") has_self_call = true;
      if (s == "weak_ptr") has_weak = true;
      if (!fns_.empty() && strong_var == nullptr) {
        for (const FnFrame& f : fns_) {
          if (std::find(f.strong_self.begin(), f.strong_self.end(), s) !=
              f.strong_self.end()) {
            strong_var = &sig_[k];
            break;
          }
        }
      }
    }
    if (has_weak) return;  // `[w = std::weak_ptr<T>(shared_from_this())]`
    if (has_self_call) {
      report("BL103", sig_[from > 0 ? from - 1 : from],
             "lambda captures shared_from_this(); a handler queued on the "
             "object itself keeps it alive forever (reference cycle) — "
             "capture std::weak_ptr and lock() in the body");
    } else if (strong_var != nullptr) {
      report("BL103", *strong_var,
             "lambda captures '" + std::string(strong_var->text) +
                 "', a shared_ptr obtained from shared_from_this() — the "
                 "BentoConnection leak class; capture std::weak_ptr and "
                 "lock() in the body");
    }
  }

  // BL104: `for (auto& x : container)` where container's declared type is
  // unordered and the loop body emits trace/log events.
  void check_range_for(std::size_t for_idx) {
    std::size_t open = for_idx + 1;  // '('
    int depth = 0;
    std::size_t colon = 0;
    std::size_t close = open;
    for (std::size_t k = open; k < sig_.size(); ++k) {
      if (is_punct(k, "(")) ++depth;
      if (is_punct(k, ")") && --depth == 0) {
        close = k;
        break;
      }
      if (depth == 1 && is_punct(k, ":") && colon == 0) colon = k;
    }
    if (colon == 0 || close <= colon) return;
    std::string container;
    for (std::size_t k = colon + 1; k < close; ++k) {
      if (is_ident(k)) container = std::string(sig_[k].text);
    }
    if (unordered_names_.count(container) == 0) return;
    // Body: the following brace block, or a single statement up to ';'.
    std::size_t k = close + 1;
    std::size_t body_end;
    if (is_punct(k, "{")) {
      int b = 0;
      body_end = k;
      for (; body_end < sig_.size(); ++body_end) {
        if (is_punct(body_end, "{")) ++b;
        if (is_punct(body_end, "}") && --b == 0) break;
      }
    } else {
      body_end = k;
      while (body_end < sig_.size() && !is_punct(body_end, ";")) ++body_end;
    }
    for (; k < body_end; ++k) {
      if (is_ident(k) && in_list(sig_[k].text, kEmissionCalls) &&
          is_punct(k + 1, "(")) {
        report("BL104", sig_[for_idx],
               "iteration over unordered container '" + container +
                   "' feeds '" + std::string(sig_[k].text) +
                   "' — iteration order is nondeterministic and lands in "
                   "the trace; iterate a sorted view or use std::map");
        return;
      }
    }
  }

  // -- post-processing ------------------------------------------------------

  void apply_suppressions() {
    std::vector<Diagnostic> kept;
    kept.reserve(diags_.size());
    for (Diagnostic& d : diags_) {
      if (d.rule != "BL100") {
        if (sup_.file_wide.count(d.rule) != 0) continue;
        const auto it = sup_.by_line.find(d.line);
        if (it != sup_.by_line.end() && it->second.count(d.rule) != 0) {
          continue;
        }
      }
      kept.push_back(std::move(d));
    }
    diags_ = std::move(kept);
  }

  void assign_fingerprints() {
    std::sort(diags_.begin(), diags_.end(),
              [](const Diagnostic& a, const Diagnostic& b) {
                return std::tie(a.line, a.col, a.rule) <
                       std::tie(b.line, b.col, b.rule);
              });
    std::map<std::uint64_t, int> ordinals;
    for (Diagnostic& d : diags_) {
      const std::string_view line_text =
          d.line >= 1 && d.line <= static_cast<int>(lines_.size())
              ? trim(lines_[d.line - 1])
              : std::string_view{};
      std::uint64_t h = fnv1a(d.rule);
      h = fnv1a("|", h);
      h = fnv1a(d.file, h);
      h = fnv1a("|", h);
      h = fnv1a(line_text, h);
      const int ordinal = ordinals[h]++;
      h = fnv1a("|", h);
      h = fnv1a(std::to_string(ordinal), h);
      d.fingerprint = h;
    }
  }

  std::string_view path_;
  FileScope scope_;
  std::vector<std::string_view> lines_;
  std::vector<Token> all_;
  std::vector<Token> sig_;  // comments and preprocessor stripped
  std::vector<Token> pp_;
  Suppressions sup_;

  std::set<std::string> unordered_names_;
  std::vector<Token> decl_;   // tokens since the last boundary, outside fns
  std::vector<Token> stmt_;   // tokens since the last boundary, inside fns
  std::vector<Brace> braces_;
  std::vector<FnFrame> fns_;
  std::vector<Diagnostic> diags_;
};

std::string hex16(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

void json_escape(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += "\\u00";
          out += "0123456789abcdef"[(c >> 4) & 0xf];
          out += "0123456789abcdef"[c & 0xf];
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

FileScope scope_for_path(std::string_view rel_path) {
  FileScope scope;
  scope.deterministic_everywhere = starts_with(rel_path, "src/");
  scope.concurrency_inventory =
      starts_with(rel_path, "src/sim/") || starts_with(rel_path, "src/core/");
  scope.is_header = ends_with(rel_path, ".hpp") || ends_with(rel_path, ".h");
  scope.store_framing = starts_with(rel_path, "src/store/");
  return scope;
}

std::vector<Diagnostic> analyze_source(std::string_view rel_path,
                                       std::string_view src) {
  FileAnalysis fa(rel_path, src, scope_for_path(rel_path));
  return fa.run();
}

std::vector<Diagnostic> analyze_files(const std::vector<SourceFile>& files) {
  std::vector<Diagnostic> all;
  for (const SourceFile& f : files) {
    std::vector<Diagnostic> d = analyze_source(f.rel_path, f.contents);
    all.insert(all.end(), std::make_move_iterator(d.begin()),
               std::make_move_iterator(d.end()));
  }
  std::sort(all.begin(), all.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.col, a.rule) <
                     std::tie(b.file, b.line, b.col, b.rule);
            });
  return all;
}

std::string to_json(const std::vector<Diagnostic>& diags) {
  std::string out = "{\"diagnostics\":[";
  bool first = true;
  std::map<std::string, int> counts;
  for (const Diagnostic& d : diags) {
    if (!first) out += ",";
    first = false;
    out += "{\"rule\":\"";
    json_escape(out, d.rule);
    out += "\",\"file\":\"";
    json_escape(out, d.file);
    out += "\",\"line\":" + std::to_string(d.line);
    out += ",\"col\":" + std::to_string(d.col);
    out += ",\"fingerprint\":\"" + hex16(d.fingerprint) + "\"";
    out += ",\"message\":\"";
    json_escape(out, d.message);
    out += "\"}";
    counts[d.rule] += 1;
  }
  out += "],\"counts\":{";
  first = true;
  for (const auto& [rule, n] : counts) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    json_escape(out, rule);
    out += "\":" + std::to_string(n);
  }
  out += "},\"total\":" + std::to_string(diags.size()) + "}\n";
  return out;
}

void print_text(std::ostream& os, const std::vector<Diagnostic>& diags) {
  for (const Diagnostic& d : diags) {
    os << d.file << ":" << d.line << ":" << d.col << ": " << d.rule << ": "
       << d.message << " [" << hex16(d.fingerprint) << "]\n";
  }
}

std::set<std::uint64_t> load_baseline(std::istream& is) {
  std::set<std::uint64_t> out;
  std::string line;
  while (std::getline(is, line)) {
    const std::string_view t = trim(line);
    if (t.empty() || t.front() == '#') continue;
    const std::string_view field = t.substr(0, t.find_first_of(" \t"));
    if (field.size() != 16) continue;
    std::uint64_t v = 0;
    bool ok = true;
    for (const char c : field) {
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<std::uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<std::uint64_t>(c - 'a' + 10);
      } else {
        ok = false;
        break;
      }
    }
    if (ok) out.insert(v);
  }
  return out;
}

void write_baseline(std::ostream& os, const std::vector<Diagnostic>& diags) {
  os << "# bentolint baseline: accepted pre-existing diagnostics.\n"
     << "# Regenerate with: bentolint --fix-baseline (see DESIGN.md §10).\n"
     << "# Only the leading fingerprint is matched; the rest is context.\n";
  for (const Diagnostic& d : diags) {
    os << hex16(d.fingerprint) << " " << d.rule << " " << d.file << ":"
       << d.line << " " << d.message << "\n";
  }
}

std::vector<Diagnostic> subtract_baseline(
    const std::vector<Diagnostic>& diags,
    const std::set<std::uint64_t>& baseline) {
  std::vector<Diagnostic> out;
  for (const Diagnostic& d : diags) {
    if (baseline.count(d.fingerprint) == 0) out.push_back(d);
  }
  return out;
}

}  // namespace bento::lint
