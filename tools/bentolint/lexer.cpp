#include "bentolint/lexer.hpp"

#include <cctype>
#include <string>

namespace bento::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_cont(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

class Cursor {
 public:
  explicit Cursor(std::string_view src) : src_(src) {}

  bool done() const { return pos_ >= src_.size(); }
  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  void advance() {
    if (src_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  std::size_t pos() const { return pos_; }
  int line() const { return line_; }
  int col() const { return col_; }
  std::string_view slice(std::size_t from) const {
    return src_.substr(from, pos_ - from);
  }

 private:
  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

// Consumes a quoted literal starting at the opening quote. Handles escapes;
// stops at the closing quote or end of line (a lost quote must not eat the
// rest of the file).
void take_quoted(Cursor& c, char quote) {
  c.advance();  // opening quote
  while (!c.done()) {
    const char ch = c.peek();
    if (ch == '\\' && c.peek(1) != '\0') {
      c.advance();
      c.advance();
      continue;
    }
    if (ch == quote) {
      c.advance();
      return;
    }
    if (ch == '\n') return;  // unterminated: stop at the line break
    c.advance();
  }
}

// Raw string literal, cursor on the 'R'. R"delim( ... )delim"
void take_raw_string(Cursor& c) {
  c.advance();  // R
  c.advance();  // "
  std::string delim;
  while (!c.done() && c.peek() != '(') {
    delim.push_back(c.peek());
    c.advance();
  }
  if (c.done()) return;
  c.advance();  // (
  const std::string closer = ")" + delim + "\"";
  std::size_t matched = 0;
  while (!c.done()) {
    if (c.peek() == closer[matched]) {
      ++matched;
      c.advance();
      if (matched == closer.size()) return;
    } else {
      // Restart the match; the current char may itself begin the closer.
      matched = c.peek() == closer[0] ? 1 : 0;
      c.advance();
    }
  }
}

}  // namespace

std::vector<Token> lex(std::string_view src) {
  std::vector<Token> out;
  Cursor c(src);
  bool at_line_start = true;  // only whitespace seen on this line so far

  auto push = [&](Tok kind, std::size_t from, int line, int col) {
    out.push_back(Token{kind, c.slice(from), line, col});
  };

  while (!c.done()) {
    const char ch = c.peek();
    const std::size_t from = c.pos();
    const int line = c.line();
    const int col = c.col();

    if (ch == '\n') {
      c.advance();
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(ch))) {
      c.advance();
      continue;
    }

    // Preprocessor directive: '#' first on the line, through continuations.
    if (ch == '#' && at_line_start) {
      while (!c.done()) {
        if (c.peek() == '\\' && c.peek(1) == '\n') {
          c.advance();
          c.advance();
          continue;
        }
        if (c.peek() == '\n') break;
        // A // comment ends the directive logically; keep it out of the
        // Pp token so suppression comments on #include lines still parse.
        if (c.peek() == '/' && (c.peek(1) == '/' || c.peek(1) == '*')) break;
        c.advance();
      }
      push(Tok::Pp, from, line, col);
      at_line_start = false;
      continue;
    }
    at_line_start = false;

    if (ch == '/' && c.peek(1) == '/') {
      while (!c.done() && c.peek() != '\n') c.advance();
      push(Tok::Comment, from, line, col);
      continue;
    }
    if (ch == '/' && c.peek(1) == '*') {
      c.advance();
      c.advance();
      while (!c.done() && !(c.peek() == '*' && c.peek(1) == '/')) c.advance();
      if (!c.done()) {
        c.advance();
        c.advance();
      }
      push(Tok::Comment, from, line, col);
      continue;
    }
    if (ch == '"') {
      take_quoted(c, '"');
      push(Tok::String, from, line, col);
      continue;
    }
    if (ch == '\'') {
      take_quoted(c, '\'');
      push(Tok::CharLit, from, line, col);
      continue;
    }
    if (ch == 'R' && c.peek(1) == '"') {
      take_raw_string(c);
      push(Tok::String, from, line, col);
      continue;
    }
    if (ident_start(ch)) {
      while (!c.done() && ident_cont(c.peek())) c.advance();
      // String prefixes (u8"x", L"x"): the quote follows directly.
      if (c.peek() == '"') {
        take_quoted(c, '"');
        push(Tok::String, from, line, col);
      } else {
        push(Tok::Ident, from, line, col);
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(ch))) {
      // Good enough for rule matching: digits, dots, exponent signs, and
      // type suffixes glued together (0x1p-3f, 1'000'000ULL, 1.5e-3).
      while (!c.done()) {
        const char d = c.peek();
        if (ident_cont(d) || d == '.' || d == '\'') {
          c.advance();
          continue;
        }
        if ((d == '+' || d == '-') && !c.done()) {
          const char prev = c.slice(from).back();
          if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
            c.advance();
            continue;
          }
        }
        break;
      }
      push(Tok::Number, from, line, col);
      continue;
    }

    // Punctuation. Keep "::" and "->" whole — the rules key on them.
    if (ch == ':' && c.peek(1) == ':') {
      c.advance();
      c.advance();
      push(Tok::Punct, from, line, col);
      continue;
    }
    if (ch == '-' && c.peek(1) == '>') {
      c.advance();
      c.advance();
      push(Tok::Punct, from, line, col);
      continue;
    }
    c.advance();
    push(Tok::Punct, from, line, col);
  }
  return out;
}

}  // namespace bento::lint
