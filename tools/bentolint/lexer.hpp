// bentolint C++ lexer.
//
// A real tokenizer, not a regex pass: comments, string/char literals
// (including raw strings) and preprocessor directives become single opaque
// tokens, so rule matching over identifiers can never fire on the word
// "new" inside a doc comment or a log string. Tokens are views into the
// source buffer handed to run(); the buffer must outlive them.
//
// Dependency-free C++17 on purpose — this tool must build before anything
// else in the tree does, with nothing but a compiler.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace bento::lint {

enum class Tok : std::uint8_t {
  Ident,    // identifiers and keywords (the rule engine tells them apart)
  Number,   // integer/float literal, any base
  String,   // "..." or R"delim(...)delim", quotes included
  CharLit,  // '...'
  Punct,    // one operator/punctuator; "::", "->", "=>" kept whole
  Comment,  // // to end of line, or /* ... */, markers included
  Pp,       // one whole preprocessor directive (with continuations)
};

struct Token {
  Tok kind;
  std::string_view text;
  int line = 1;  // 1-based line of the first character
  int col = 1;   // 1-based column of the first character
};

/// Tokenizes `src`. Never throws: malformed input (unterminated string or
/// block comment) is absorbed into a final token rather than rejected,
/// because a linter must keep going on code the compiler would refuse.
std::vector<Token> lex(std::string_view src);

}  // namespace bento::lint
