// bentolint rule engine: Bento's build-time invariants as BL1xx diagnostics.
//
// The compiler cannot see that the simulator must stay seed-deterministic,
// that the cell datapath must stay allocation-free, or that an async reply
// handler must not keep its own connection alive. bentolint can, with the
// same shape as the PR 1 BentoScript analyzer: a real lexer, a brace/scope
// tracker that knows which function it is inside (and whether that function
// carries a BENTO_HOT / BENTO_DETERMINISTIC annotation), and a rule catalog
// evaluated over the token stream. See DESIGN.md §10 for the contract each
// rule enforces and EXPERIMENTS.md for the triage workflow.
//
// Rule catalog:
//   BL101  wall-clock / entropy in deterministic code (sim time must come
//          through util/simclock.hpp, randomness through the seeded Rng)
//   BL102  heap allocation inside a BENTO_HOT function (the 0-allocs/cell
//          datapath guarantee, enforced at the source instead of the bench)
//   BL103  shared_from_this() (or a shared self variable derived from it)
//          captured by a lambda — the BentoConnection/shard/multipath
//          reference-cycle leak class; capture a weak_ptr and lock()
//   BL104  iteration over an unordered container feeding trace/log/event
//          emission (iteration-order nondeterminism reaches the recorders)
//   BL105  raw std::thread/mutex/atomic in src/sim + src/core outside the
//          sharded-simulator allowlist (DESIGN.md §12); sanctioned
//          primitives carry `// bentolint: allow(BL105 <why>)` annotations
//   BL106  banned unsafe C functions (strcpy, sprintf, gets, ...)
//   BL107  header without #pragma once
//   BL108  include hygiene ("../" escapes, <bits/...> internals)
//   BL109  store framing invariant (src/store only): every call to the
//          write_frame primitive must sit inside a BENTO_FRAMED function
//          that also performs a crc32 update — the every-frame-carries-a-
//          CRC contract torn-write recovery depends on (DESIGN.md §15)
//
// Suppressions: `// bentolint: allow(BL102 reason...)` on the same or the
// previous line; `// bentolint: allow-file(BL101 reason...)` anywhere in
// the file. A reason is required — a bare allow() is itself reported.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace bento::lint {

struct Diagnostic {
  std::string rule;       // "BL101"
  std::string file;       // repo-relative path, '/' separators
  int line = 0;
  int col = 0;
  std::string message;
  // Stable identity for baselines: FNV-1a over rule|file|trimmed source
  // line|ordinal, so a diagnostic survives unrelated line-number churn but
  // a second identical violation on another copy of the line is distinct.
  std::uint64_t fingerprint = 0;
};

/// Where a file sits in the tree decides which rules apply to it.
struct FileScope {
  // BL101 applies to every function (true for src/ — the whole simulation
  // core is covered by the DESIGN.md §9 determinism contract). When false
  // (tools/, bench/ — wall-clock timing loops are their job), BL101 only
  // fires inside functions annotated BENTO_DETERMINISTIC.
  bool deterministic_everywhere = false;
  // BL105 concurrency allowlist (src/sim + src/core only).
  bool concurrency_inventory = false;
  // BL107 pragma-once check (headers only).
  bool is_header = false;
  // BL109 frame/CRC pairing (src/store only).
  bool store_framing = false;
};

/// Derives the scope from a repo-relative path (forward slashes).
FileScope scope_for_path(std::string_view rel_path);

/// Runs every applicable rule over one file. `rel_path` is used verbatim in
/// diagnostics; `src` is the file contents. Suppressed diagnostics are
/// dropped here; malformed suppression comments come back as BL100.
std::vector<Diagnostic> analyze_source(std::string_view rel_path,
                                       std::string_view src);

/// Convenience: analyze a set of in-memory files in the deterministic order
/// of the vector and sort the combined list (tests and main both use this).
/// Fingerprints are assigned inside analyze_source, where the line text is
/// at hand.
struct SourceFile {
  std::string rel_path;
  std::string contents;
};
std::vector<Diagnostic> analyze_files(const std::vector<SourceFile>& files);

/// Byte-stable machine output: one canonical JSON document, diagnostics
/// pre-sorted, integers only, no environment-dependent fields.
std::string to_json(const std::vector<Diagnostic>& diags);

/// Human output, one line per diagnostic: file:line:col: rule: message.
void print_text(std::ostream& os, const std::vector<Diagnostic>& diags);

/// Baseline = the set of accepted fingerprints. The file format is one
/// diagnostic per line, "<hex16-fingerprint> <rule> <file>:<line> <msg>";
/// only the first field is authoritative, the rest is for the reviewer.
std::set<std::uint64_t> load_baseline(std::istream& is);
void write_baseline(std::ostream& os, const std::vector<Diagnostic>& diags);

/// Diagnostics not covered by the baseline (what Enforce mode gates on).
std::vector<Diagnostic> subtract_baseline(const std::vector<Diagnostic>& diags,
                                          const std::set<std::uint64_t>& baseline);

}  // namespace bento::lint
