// bentolint CLI — run the BL1xx invariant catalog over the tree.
//
//   bentolint [options] <path>...            paths: files or directories
//     --mode=warn|enforce   warn: report, exit 0. enforce: exit 1 on any
//                           diagnostic not covered by the baseline.
//     --baseline FILE       accepted-fingerprint file (see DESIGN.md §10)
//     --fix-baseline        rewrite the baseline FILE from this run and exit
//     --json                byte-stable machine output instead of text
//     --root DIR            repo root; paths are reported relative to it
//
// CI runs `bentolint --mode=enforce --baseline tools/bentolint/baseline.txt
// src tools bench` from the repo root (the `lint` CMake target wraps the
// same invocation), so a new diagnostic anywhere fails the build unless it
// is fixed, suppressed with a reason, or deliberately baselined.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bentolint/analyzer.hpp"

namespace fs = std::filesystem;
using bento::lint::Diagnostic;

namespace {

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".h";
}

bool excluded(const std::string& rel) {
  // Build trees and the lint-rule fixtures (which violate on purpose).
  return rel.find("build/") != std::string::npos ||
         rel.find("lint_fixtures/") != std::string::npos ||
         rel.find("CMakeFiles/") != std::string::npos;
}

std::string rel_to_root(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  fs::path rel = fs::relative(p, root, ec);
  std::string s = (ec || rel.empty()) ? p.generic_string() : rel.generic_string();
  return s;
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--mode=warn|enforce] [--baseline FILE] [--fix-baseline]"
               " [--json] [--root DIR] <path>...\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode = "warn";
  std::string baseline_path;
  std::string root = ".";
  bool fix_baseline = false;
  bool json = false;
  std::vector<std::string> inputs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--mode=", 0) == 0) {
      mode = arg.substr(7);
      if (mode != "warn" && mode != "enforce") return usage(argv[0]);
    } else if (arg == "--baseline") {
      if (++i >= argc) return usage(argv[0]);
      baseline_path = argv[i];
    } else if (arg == "--fix-baseline") {
      fix_baseline = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--root") {
      if (++i >= argc) return usage(argv[0]);
      root = argv[i];
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) return usage(argv[0]);
  if (fix_baseline && baseline_path.empty()) {
    std::cerr << "bentolint: --fix-baseline needs --baseline FILE\n";
    return 2;
  }

  const fs::path root_path = fs::path(root);
  std::vector<std::string> files;
  for (const std::string& in : inputs) {
    const fs::path p = fs::path(in).is_absolute() ? fs::path(in)
                                                  : root_path / in;
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (fs::recursive_directory_iterator it(p, ec), end; it != end;
           it.increment(ec)) {
        if (ec) break;
        if (it->is_regular_file(ec) && lintable(it->path())) {
          files.push_back(it->path().string());
        }
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p.string());
    } else {
      std::cerr << "bentolint: no such path: " << in << "\n";
      return 2;
    }
  }

  // Sort by repo-relative path so output order never depends on directory
  // enumeration order (the --json determinism contract).
  std::vector<bento::lint::SourceFile> sources;
  for (const std::string& f : files) {
    std::string rel = rel_to_root(f, root_path);
    if (excluded(rel)) continue;
    std::ifstream ifs(f, std::ios::binary);
    if (!ifs) {
      std::cerr << "bentolint: cannot read " << f << "\n";
      return 2;
    }
    std::ostringstream ss;
    ss << ifs.rdbuf();
    sources.push_back({std::move(rel), ss.str()});
  }
  std::sort(sources.begin(), sources.end(),
            [](const auto& a, const auto& b) { return a.rel_path < b.rel_path; });
  sources.erase(std::unique(sources.begin(), sources.end(),
                            [](const auto& a, const auto& b) {
                              return a.rel_path == b.rel_path;
                            }),
                sources.end());

  const std::vector<Diagnostic> diags = bento::lint::analyze_files(sources);

  if (fix_baseline) {
    std::ofstream ofs(baseline_path, std::ios::binary | std::ios::trunc);
    if (!ofs) {
      std::cerr << "bentolint: cannot write baseline " << baseline_path << "\n";
      return 2;
    }
    bento::lint::write_baseline(ofs, diags);
    std::cerr << "bentolint: baseline rewritten with " << diags.size()
              << " diagnostic(s): " << baseline_path << "\n";
    return 0;
  }

  std::set<std::uint64_t> baseline;
  if (!baseline_path.empty()) {
    std::ifstream ifs(baseline_path, std::ios::binary);
    if (!ifs) {
      std::cerr << "bentolint: cannot read baseline " << baseline_path << "\n";
      return 2;
    }
    baseline = bento::lint::load_baseline(ifs);
  }
  const std::vector<Diagnostic> fresh =
      bento::lint::subtract_baseline(diags, baseline);

  if (json) {
    std::cout << bento::lint::to_json(fresh);
  } else {
    bento::lint::print_text(std::cout, fresh);
    std::cerr << "bentolint: " << sources.size() << " file(s), "
              << diags.size() << " diagnostic(s), " << fresh.size()
              << " not in baseline\n";
  }
  if (mode == "enforce" && !fresh.empty()) {
    std::cerr << "bentolint: FAIL (enforce): fix the diagnostic, suppress it "
                 "with `// bentolint: allow(BLxxx reason)`, or baseline it "
                 "with --fix-baseline\n";
    return 1;
  }
  return 0;
}
