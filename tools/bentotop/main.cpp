// bentotop — live terminal view of a sharded-simulator run.
//
// Usage:
//   bentotop --once <profile.json>                 render one frame and exit
//   bentotop <profile.json> [--interval-ms N] [--frames N]
//
// Reads a ShardProfile JSON (ShardProfileSnapshot::to_json — what a run
// writes via `--profile-out`/`--profile-wall-out`, or the flight recorder's
// profile dump) and renders obs::render_top_frame. In poll mode it re-reads
// the file every interval and repaints the terminal, so pointing it at the
// profile a long run rewrites gives a top(1)-style view; --frames bounds the
// loop for tests. A file that is momentarily missing or half-written (the
// writer is not atomic) keeps the previous frame instead of erroring out.

#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include "bentotrace/shards.hpp"
#include "obs/profile.hpp"

namespace {

int usage() {
  std::cerr << "usage: bentotop [--once] <profile.json> [--interval-ms N] "
               "[--frames N]\n";
  return 2;
}

bool load_frame(const std::string& path, bento::obs::ShardProfileSnapshot& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string text = std::move(ss).str();
  bento::obs::ShardProfileSnapshot snap;
  if (!bento::tools::parse_shard_profile(text, snap)) return false;
  out = std::move(snap);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool once = false;
  long interval_ms = 1000;
  long frames = -1;  // -1: until interrupted
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--once") {
      once = true;
    } else if (arg == "--interval-ms" && i + 1 < argc) {
      interval_ms = std::stol(argv[++i]);
      if (interval_ms < 1) interval_ms = 1;
    } else if (arg == "--frames" && i + 1 < argc) {
      frames = std::stol(argv[++i]);
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      return usage();
    } else if (path.empty()) {
      path = arg;
    } else {
      return usage();
    }
  }
  if (path.empty()) return usage();

  if (once) {
    bento::obs::ShardProfileSnapshot snap;
    if (!load_frame(path, snap)) {
      std::cerr << "bentotop: cannot read ShardProfile JSON from " << path
                << "\n";
      return 1;
    }
    bento::obs::render_top_frame(snap, std::cout);
    return 0;
  }

  bento::obs::ShardProfileSnapshot snap;
  bool have = false;
  for (long n = 0; frames < 0 || n < frames; ++n) {
    if (n > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
    have = load_frame(path, snap) || have;  // keep last good frame
    std::cout << "\x1b[2J\x1b[H";
    if (have) {
      bento::obs::render_top_frame(snap, std::cout);
    } else {
      std::cout << "bentotop: waiting for " << path << "\n";
    }
    std::cout.flush();
  }
  return have ? 0 : 1;
}
