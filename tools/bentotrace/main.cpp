// bentotrace — analysis CLI for Bento flight-recorder dumps.
//
// Usage:
//   bentotrace summary <trace.jsonl>   per-stage latency table + TTFB/TTLB
//   bentotrace tree    <trace.jsonl>   reconstructed span trees, one per request
//   bentotrace chrome  <trace.jsonl>   Chrome trace_event JSON (about:tracing)
//   bentotrace shards  <trace.jsonl> [--profile <profile_wall.json>]
//                                      per-region balance + barrier stats from
//                                      shard.window/shard.barrier events; with
//                                      --profile, wall-time attribution
//                                      {dispatch, barrier wait, drain, merge}
//   bentotrace slo     <trace.jsonl> SPEC [SPEC...]
//                                      evaluate SLO specs (see obs/slo.hpp,
//                                      e.g. ttfb_us:p99<=250000 or
//                                      critpath.net_link_queue_us:p99<=...)
//                                      against the trace; exit 0 pass / 1 fail
//   bentotrace critpath <trace.jsonl> [--json]
//                                      per-request critical-path blame,
//                                      aggregated with p50-body vs p99-tail
//                                      cohorts (DESIGN.md §14)
//   bentotrace diff A B [--threshold-pct N] [--floor-us N] [--json]
//                                      align two runs' blame profiles (each
//                                      side: trace.jsonl or a critpath JSON)
//                                      and flag per-segment regressions;
//                                      exit 0 ok / 1 regressed
//
// `-` reads the dump from stdin. Every subcommand starts with a self-check
// that obs::ev_name / obs::stage_name cover their whole enums — a new kind
// added without a name string fails loudly here (and in CI) instead of
// rendering as "unknown" in reports.

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bentotrace/critpath.hpp"
#include "bentotrace/reader.hpp"
#include "bentotrace/shards.hpp"
#include "obs/critpath.hpp"
#include "obs/slo.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace {

int usage() {
  std::cerr << "usage: bentotrace <summary|tree|chrome> <trace.jsonl|->\n"
               "       bentotrace shards <trace.jsonl|-> [--profile <profile_wall.json>]\n"
               "       bentotrace slo <trace.jsonl|-> SPEC [SPEC...]\n"
               "       bentotrace critpath <trace.jsonl|-> [--json]\n"
               "       bentotrace diff <A> <B> [--threshold-pct N] "
               "[--floor-us N] [--json]\n";
  return 2;
}

bool self_check() {
  if (!bento::obs::ev_names_complete()) {
    std::cerr << "bentotrace: self-check failed: obs::ev_name is missing a "
                 "name for at least one Ev kind\n";
    return false;
  }
  if (!bento::obs::stage_names_complete()) {
    std::cerr << "bentotrace: self-check failed: obs::stage_name is missing a "
                 "name for at least one Stage\n";
    return false;
  }
  return true;
}

bool read_events(const std::string& path, std::vector<bento::tools::RawEvent>& out) {
  if (path == "-") {
    out = bento::tools::read_jsonl(std::cin);
    return true;
  }
  std::ifstream in(path);
  if (!in) {
    std::cerr << "bentotrace: cannot open " << path << "\n";
    return false;
  }
  out = bento::tools::read_jsonl(in);
  return true;
}

bool read_whole(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "bentotrace: cannot open " << path << "\n";
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  out = std::move(ss).str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (!self_check()) return 3;
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  const std::string path = argv[2];

  if (cmd == "diff") {
    if (argc < 4) return usage();
    std::uint64_t threshold_pct = 10;
    std::int64_t floor_us = 50;
    bool json = false;
    for (int i = 4; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--threshold-pct" && i + 1 < argc) {
        threshold_pct = std::strtoull(argv[++i], nullptr, 10);
      } else if (arg == "--floor-us" && i + 1 < argc) {
        floor_us = std::strtoll(argv[++i], nullptr, 10);
      } else if (arg == "--json") {
        json = true;
      } else {
        return usage();
      }
    }
    bento::obs::BlameProfile a;
    bento::obs::BlameProfile b;
    std::string text;
    std::string err;
    if (!read_whole(path, text)) return 1;
    if (!bento::tools::load_blame_profile(text, a, &err)) {
      std::cerr << "bentotrace: " << path << ": " << err << "\n";
      return 1;
    }
    if (!read_whole(argv[3], text)) return 1;
    if (!bento::tools::load_blame_profile(text, b, &err)) {
      std::cerr << "bentotrace: " << argv[3] << ": " << err << "\n";
      return 1;
    }
    const bento::obs::BlameDiff diff =
        bento::obs::diff_blame(a, b, threshold_pct, floor_us);
    std::cout << (json ? diff.to_json() : diff.to_string());
    return diff.regressed() ? 1 : 0;
  }

  std::vector<bento::tools::RawEvent> events;
  if (!read_events(path, events)) return 1;

  if (cmd == "critpath") {
    bool json = false;
    for (int i = 3; i < argc; ++i) {
      if (std::string(argv[i]) == "--json") {
        json = true;
      } else {
        return usage();
      }
    }
    const bento::obs::BlameProfile profile = bento::obs::aggregate_blame(
        bento::obs::compute_critical_paths(
            bento::tools::crit_input_from_events(events)));
    std::cout << (json ? profile.to_json() : profile.to_string());
    return 0;
  }

  if (cmd == "shards") {
    bento::obs::ShardProfileSnapshot wall;
    bool have_wall = false;
    for (int i = 3; i < argc; ++i) {
      if (std::string(argv[i]) == "--profile" && i + 1 < argc) {
        std::string text;
        if (!read_whole(argv[++i], text)) return 1;
        if (!bento::tools::parse_shard_profile(text, wall)) {
          std::cerr << "bentotrace: not a ShardProfile JSON: " << argv[i] << "\n";
          return 1;
        }
        have_wall = true;
      } else {
        return usage();
      }
    }
    bento::tools::format_shard_report(events, have_wall ? &wall : nullptr,
                                      std::cout);
    return 0;
  }

  if (cmd == "slo") {
    if (argc < 4) return usage();
    std::vector<bento::obs::SloSpec> specs;
    for (int i = 3; i < argc; ++i) {
      bento::obs::SloSpec spec;
      std::string err;
      if (!bento::obs::parse_slo_spec(argv[i], spec, &err)) {
        std::cerr << "bentotrace: bad SLO spec '" << argv[i] << "': " << err
                  << "\n";
        return 2;
      }
      specs.push_back(spec);
    }
    const bento::obs::SloReport report =
        bento::tools::evaluate_trace_slos(events, specs);
    std::cout << report.to_string();
    return report.pass() ? 0 : 1;
  }

  if (argc != 3) return usage();
  const bento::tools::TraceForest forest = bento::tools::build_forest(events);

  if (cmd == "summary") {
    std::cout << "bentotrace summary: " << events.size() << " events, "
              << forest.spans.size() << " spans, " << forest.roots.size()
              << " traces\n\n";
    bento::tools::format_stage_summary(forest, std::cout);
    std::cout << "\n";
    bento::tools::format_ttfb_table(forest, std::cout);
    if (!forest.orphan_ends.empty() || !forest.unfinished.empty() ||
        forest.unparsed_lines > 0) {
      std::cout << "\nintegrity: " << forest.orphan_ends.size()
                << " orphan ends, " << forest.unfinished.size()
                << " unfinished spans, " << forest.unparsed_lines
                << " unparsed lines\n";
    }
  } else if (cmd == "tree") {
    bento::tools::format_tree(forest, std::cout);
  } else if (cmd == "chrome") {
    bento::tools::export_chrome(forest, std::cout);
  } else {
    return usage();
  }
  return 0;
}
