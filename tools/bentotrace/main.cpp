// bentotrace — analysis CLI for Bento flight-recorder dumps.
//
// Usage:
//   bentotrace summary <trace.jsonl>   per-stage latency table + TTFB/TTLB
//   bentotrace tree    <trace.jsonl>   reconstructed span trees, one per request
//   bentotrace chrome  <trace.jsonl>   Chrome trace_event JSON (about:tracing)
//
// `-` reads the dump from stdin. Every subcommand starts with a self-check
// that obs::ev_name / obs::stage_name cover their whole enums — a new kind
// added without a name string fails loudly here (and in CI) instead of
// rendering as "unknown" in reports.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "bentotrace/reader.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace {

int usage() {
  std::cerr << "usage: bentotrace <summary|tree|chrome> <trace.jsonl|->\n";
  return 2;
}

bool self_check() {
  if (!bento::obs::ev_names_complete()) {
    std::cerr << "bentotrace: self-check failed: obs::ev_name is missing a "
                 "name for at least one Ev kind\n";
    return false;
  }
  if (!bento::obs::stage_names_complete()) {
    std::cerr << "bentotrace: self-check failed: obs::stage_name is missing a "
                 "name for at least one Stage\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (!self_check()) return 3;
  if (argc != 3) return usage();
  const std::string cmd = argv[1];
  const std::string path = argv[2];

  std::vector<bento::tools::RawEvent> events;
  if (path == "-") {
    events = bento::tools::read_jsonl(std::cin);
  } else {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "bentotrace: cannot open " << path << "\n";
      return 1;
    }
    events = bento::tools::read_jsonl(in);
  }
  const bento::tools::TraceForest forest = bento::tools::build_forest(events);

  if (cmd == "summary") {
    std::cout << "bentotrace summary: " << events.size() << " events, "
              << forest.spans.size() << " spans, " << forest.roots.size()
              << " traces\n\n";
    bento::tools::format_stage_summary(forest, std::cout);
    std::cout << "\n";
    bento::tools::format_ttfb_table(forest, std::cout);
    if (!forest.orphan_ends.empty() || !forest.unfinished.empty() ||
        forest.unparsed_lines > 0) {
      std::cout << "\nintegrity: " << forest.orphan_ends.size()
                << " orphan ends, " << forest.unfinished.size()
                << " unfinished spans, " << forest.unparsed_lines
                << " unparsed lines\n";
    }
  } else if (cmd == "tree") {
    bento::tools::format_tree(forest, std::cout);
  } else if (cmd == "chrome") {
    bento::tools::export_chrome(forest, std::cout);
  } else {
    return usage();
  }
  return 0;
}
