// bentotrace critical-path glue: adapts parsed trace events to the offline
// analyzer in src/obs/critpath.hpp, and reads back the byte-stable blame
// profile JSON that `bentotrace critpath --json` emits — so `bentotrace
// diff A B` accepts either a raw trace.jsonl or a committed profile on
// each side (the golden-profile gate in CI diffs a fresh run against a
// checked-in JSON).
#pragma once

#include <string_view>
#include <vector>

#include "bentotrace/reader.hpp"
#include "obs/critpath.hpp"

namespace bento::tools {

/// Builds the analyzer input from parsed trace events: the span forest
/// (with the kNoteLinkIdle / kNoteChaosDwell budget notes) plus the
/// shard.barrier timestamps.
obs::CritInput crit_input_from_events(const std::vector<RawEvent>& events);

/// Parses a `{"critpath":{...}}` document (obs::BlameProfile::to_json) back
/// into a profile. Returns false on anything that does not match the
/// emitter's shape. Cohort counts are recovered; the per-request vectors
/// are not (a parsed profile aggregates, it does not re-analyze).
bool parse_blame_profile(std::string_view json, obs::BlameProfile& out);

/// True when `text` looks like a blame profile JSON rather than a trace.
bool looks_like_blame_profile(std::string_view text);

/// Loads one side of a diff: a blame-profile JSON is parsed directly; any
/// other content is treated as trace.jsonl and run through the analyzer.
/// Returns false (with *err set) when neither works.
bool load_blame_profile(std::string_view text, obs::BlameProfile& out,
                        std::string* err);

}  // namespace bento::tools
