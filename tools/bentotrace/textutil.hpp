// Shared text helpers for the bentotrace analysis library: fixed-width table
// columns, fixed-point percent rendering, and the key-directed scanner used
// to read back our own byte-stable JSON emitters (ShardProfile, critpath
// blame profiles). One copy, so summary, shards, slo and critpath can never
// disagree on formatting or parsing conventions.
#pragma once

#include <charconv>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace bento::tools {

/// Right-aligns `s` into a `width`-character column.
inline void rcol(std::ostream& os, const std::string& s, std::size_t width) {
  for (std::size_t pad = s.size(); pad < width; ++pad) os << ' ';
  os << s;
}

inline void rcol(std::ostream& os, std::int64_t v, std::size_t width) {
  rcol(os, std::to_string(v), width);
}

/// One-decimal fixed-point rendering (deterministic round-half-away).
inline void fixed1(std::ostream& os, double v) {
  const auto scaled = static_cast<std::int64_t>(v * 10 + (v < 0 ? -0.5 : 0.5));
  os << scaled / 10 << '.' << (scaled < 0 ? -(scaled % 10) : scaled % 10);
}

inline double pct_of(std::uint64_t part, std::uint64_t whole) {
  return whole == 0
             ? 0.0
             : 100.0 * static_cast<double>(part) / static_cast<double>(whole);
}

/// Key-directed scanner for our emitters' fixed shapes (no whitespace,
/// known key order). Like the jsonl reader, refusing anything else means a
/// foreign file is reported instead of half-read.
template <typename Int>
bool find_int(std::string_view text, std::string_view key, Int& out) {
  const std::size_t at = text.find(key);
  if (at == std::string_view::npos) return false;
  std::string_view rest = text.substr(at + key.size());
  const auto* begin = rest.data();
  const auto* end = rest.data() + rest.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr != begin;
}

/// Finds `"key":"value"` and extracts the (escape-free) string value.
inline bool find_str(std::string_view text, std::string_view key,
                     std::string& out) {
  const std::size_t at = text.find(key);
  if (at == std::string_view::npos) return false;
  std::string_view rest = text.substr(at + key.size());
  if (rest.empty() || rest.front() != '"') return false;
  rest.remove_prefix(1);
  const std::size_t close = rest.find('"');
  if (close == std::string_view::npos) return false;
  out.assign(rest.substr(0, close));
  return true;
}

/// Splits `text` into the `{...}` object bodies of the array at `key`.
inline std::vector<std::string_view> array_objects(std::string_view text,
                                                   std::string_view key) {
  std::vector<std::string_view> out;
  std::size_t at = text.find(key);
  if (at == std::string_view::npos) return out;
  at += key.size();
  while (at < text.size() && text[at] != ']') {
    if (text[at] != '{') {
      ++at;
      continue;
    }
    const std::size_t close = text.find('}', at);
    if (close == std::string_view::npos) break;
    out.push_back(text.substr(at + 1, close - at - 1));
    at = close + 1;
  }
  return out;
}

}  // namespace bento::tools
