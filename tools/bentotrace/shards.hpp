// bentotrace shard analysis: per-region balance and barrier-stall
// attribution for sharded-simulator runs (DESIGN.md §13).
//
// Two inputs, two trust levels. The deterministic story comes from the
// trace itself: shard.window events (a: region id, b: events the region ran
// in the closed window) and shard.barrier events (a: active regions,
// b: window span in sim µs) are byte-identical across shard counts, so the
// balance report is reproducible anywhere. The wall-clock story — where the
// run actually spent its time: dispatch vs barrier wait vs mailbox drain vs
// trace merge — comes from an optional ShardProfile JSON written with the
// wall section (`--profile-wall-out`); it describes one specific run on one
// specific host.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "bentotrace/reader.hpp"
#include "obs/profile.hpp"
#include "obs/slo.hpp"

namespace bento::tools {

/// Parses a `{"shard_profile":{...}}` document (obs::ShardProfileSnapshot::
/// to_json, with or without the "wall" object) back into a snapshot.
/// Returns false on anything that does not match the emitter's shape.
bool parse_shard_profile(std::string_view json, obs::ShardProfileSnapshot& out);

/// Shard balance + barrier report from trace events, with wall-time
/// attribution appended when `wall` is non-null (a snapshot whose wall half
/// is populated). Byte-stable for fixed inputs.
void format_shard_report(const std::vector<RawEvent>& events,
                         const obs::ShardProfileSnapshot* wall, std::ostream& os);

/// Builds the SLO input (ttfb_us / ttlb_us series) from trace events and
/// evaluates the given objectives. Scalar metrics available: "windows"
/// (shard.barrier count) and "region_imbalance" (from shard.window events).
/// Specs naming "critpath.*" metrics (e.g. critpath.net_link_queue_us) run
/// the critical-path analyzer over the same events to build those series.
obs::SloReport evaluate_trace_slos(const std::vector<RawEvent>& events,
                                   const std::vector<obs::SloSpec>& specs);

}  // namespace bento::tools
