#include "bentotrace/reader.hpp"

#include <algorithm>
#include <array>
#include <charconv>
#include <istream>
#include <ostream>

#include "bentotrace/textutil.hpp"
#include "obs/slo.hpp"

namespace bento::tools {

namespace {

// Minimal field scanner for the exporter's fixed shape. Not a general JSON
// parser on purpose: export_jsonl emits exactly one object per line with the
// keys ts/ev/a/b/ok in that order, and refusing anything else means a
// corrupted dump is reported instead of half-read.
bool skip_literal(std::string_view& s, std::string_view lit) {
  if (s.substr(0, lit.size()) != lit) return false;
  s.remove_prefix(lit.size());
  return true;
}

template <typename Int>
bool take_int(std::string_view& s, Int& out) {
  const auto* begin = s.data();
  const auto* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  if (ec != std::errc{} || ptr == begin) return false;
  s.remove_prefix(static_cast<std::size_t>(ptr - begin));
  return true;
}

bool take_string(std::string_view& s, std::string& out) {
  if (s.empty() || s.front() != '"') return false;
  s.remove_prefix(1);
  const std::size_t close = s.find('"');
  if (close == std::string_view::npos) return false;
  // Event names never contain escapes; a backslash means a foreign line.
  if (s.substr(0, close).find('\\') != std::string_view::npos) return false;
  out.assign(s.substr(0, close));
  s.remove_prefix(close + 1);
  return true;
}

}  // namespace

std::optional<RawEvent> parse_jsonl_line(std::string_view line) {
  while (!line.empty() && (line.back() == '\r' || line.back() == '\n')) {
    line.remove_suffix(1);
  }
  if (line.empty()) return std::nullopt;
  RawEvent ev;
  int ok_int = 0;
  if (!skip_literal(line, "{\"ts\":") || !take_int(line, ev.ts) ||
      !skip_literal(line, ",\"ev\":") || !take_string(line, ev.ev) ||
      !skip_literal(line, ",\"a\":") || !take_int(line, ev.a) ||
      !skip_literal(line, ",\"b\":") || !take_int(line, ev.b) ||
      !skip_literal(line, ",\"ok\":") || !take_int(line, ok_int) ||
      !skip_literal(line, "}") || !line.empty()) {
    return std::nullopt;
  }
  ev.ok = ok_int != 0;
  return ev;
}

std::vector<RawEvent> read_jsonl(std::istream& is) {
  std::vector<RawEvent> out;
  std::string line;
  while (std::getline(is, line)) {
    if (auto ev = parse_jsonl_line(line)) {
      out.push_back(std::move(*ev));
    } else if (!line.empty()) {
      // Keep a tombstone so build_forest can count unparsed lines.
      RawEvent bad;
      bad.ev = "!unparsed";
      out.push_back(std::move(bad));
    }
  }
  return out;
}

namespace {

obs::Stage stage_from_index(std::uint64_t idx) {
  if (idx >= static_cast<std::uint64_t>(obs::Stage::kCount)) {
    return obs::Stage::None;
  }
  return static_cast<obs::Stage>(idx);
}

}  // namespace

TraceForest build_forest(const std::vector<RawEvent>& events) {
  TraceForest forest;
  for (const RawEvent& ev : events) {
    if (ev.ev == "!unparsed") {
      ++forest.unparsed_lines;
      continue;
    }
    if (ev.ev == "span.begin") {
      SpanNode& node = forest.spans[ev.a];
      node.id = ev.a;
      node.parent = static_cast<std::uint32_t>(ev.b >> 32);
      node.stage = stage_from_index(ev.b & 0xffffffffu);
      node.begin_ts = ev.ts;
    } else if (ev.ev == "span.end") {
      auto it = forest.spans.find(ev.a);
      if (it == forest.spans.end()) {
        // Begin fell off the ring (wraparound) — synthesize a stub so the
        // end is still attributable: span.end carries the stage in b.
        SpanNode& node = forest.spans[ev.a];
        node.id = ev.a;
        node.stage = stage_from_index(ev.b & 0xffffffffu);
        node.end_ts = ev.ts;
        node.ok = ev.ok;
        forest.orphan_ends.push_back(ev.a);
      } else {
        it->second.end_ts = ev.ts;
        it->second.ok = ev.ok;
      }
    } else if (ev.ev == "span.note") {
      auto it = forest.spans.find(ev.a);
      if (it == forest.spans.end()) continue;
      const std::uint32_t note_kind = static_cast<std::uint32_t>(ev.b >> 32);
      const std::uint32_t value = static_cast<std::uint32_t>(ev.b & 0xffffffffu);
      if (note_kind == obs::kNoteRef) {
        it->second.ref = value;
      } else if (note_kind == obs::kNoteWireBytes) {
        it->second.wire_bytes = value;
      } else if (note_kind == obs::kNoteLinkIdle) {
        it->second.idle_us = value;
      } else if (note_kind == obs::kNoteChaosDwell) {
        it->second.chaos_us = value;
      }
    } else if (ev.ev == "stream.ttfb") {
      forest.ttfb.emplace_back(ev.a, static_cast<std::int64_t>(ev.b));
    } else if (ev.ev == "stream.ttlb") {
      forest.ttlb.emplace_back(ev.a, static_cast<std::int64_t>(ev.b));
    }
  }
  // Link children and collect roots. Span ids are allocated monotonically in
  // begin order, so iterating the id-sorted map yields begin order and the
  // children vectors come out chronologically sorted for free.
  for (auto& [id, node] : forest.spans) {
    if (node.parent != 0) {
      auto parent_it = forest.spans.find(node.parent);
      if (parent_it != forest.spans.end()) {
        parent_it->second.children.push_back(id);
        continue;
      }
      // Parent lost to wraparound: promote to root so the subtree survives.
    }
    forest.roots.push_back(id);
  }
  for (const auto& [id, node] : forest.spans) {
    if (node.begin_ts >= 0 && node.end_ts < 0) forest.unfinished.push_back(id);
  }
  return forest;
}

namespace {

void format_node(const TraceForest& forest, std::uint32_t id, int depth,
                 std::ostream& os) {
  const SpanNode& node = forest.spans.at(id);
  for (int i = 0; i < depth; ++i) os << "  ";
  os << obs::stage_name(node.stage) << " #" << node.id;
  if (node.begin_ts < 0) {
    os << " [begin lost";
    if (node.end_ts >= 0) os << ", end @" << node.end_ts << "us";
    os << "]";
  } else if (node.end_ts < 0) {
    os << " @" << node.begin_ts << "us [unfinished]";
  } else {
    os << " @" << node.begin_ts << "us +" << node.duration_us() << "us";
  }
  if (!node.ok) os << " FAILED";
  if (node.ref != 0) os << " ref=" << node.ref;
  if (node.wire_bytes != 0) os << " wire=" << node.wire_bytes << "B";
  if (node.chaos_us != 0) os << " chaos=+" << node.chaos_us << "us";
  os << "\n";
  for (const std::uint32_t child : node.children) {
    format_node(forest, child, depth + 1, os);
  }
}

// Percentiles everywhere in bentotrace are obs::slo_percentile — the same
// nearest-rank convention the SLO gates use, so a table can never disagree
// with the spec that gates it.
std::int64_t percentile(const std::vector<std::int64_t>& sorted, double p) {
  return obs::slo_percentile(sorted, p);
}

}  // namespace

void format_tree(const TraceForest& forest, std::ostream& os) {
  std::size_t trace_no = 0;
  for (const std::uint32_t root : forest.roots) {
    os << "trace " << ++trace_no << ":\n";
    format_node(forest, root, 1, os);
  }
  if (!forest.orphan_ends.empty()) {
    os << "orphan ends (begin lost to ring wraparound): "
       << forest.orphan_ends.size() << "\n";
  }
  if (!forest.unfinished.empty()) {
    os << "unfinished spans (no end recorded): " << forest.unfinished.size()
       << "\n";
  }
  if (forest.unparsed_lines > 0) {
    os << "unparsed input lines: " << forest.unparsed_lines << "\n";
  }
}

void format_stage_summary(const TraceForest& forest, std::ostream& os) {
  struct StageAgg {
    std::vector<std::int64_t> durations;
    std::size_t count = 0;
    std::size_t failed = 0;
    std::size_t incomplete = 0;
  };
  std::array<StageAgg, static_cast<std::size_t>(obs::Stage::kCount)> agg;
  for (const auto& [id, node] : forest.spans) {
    StageAgg& a = agg[static_cast<std::size_t>(node.stage)];
    ++a.count;
    if (!node.ok) ++a.failed;
    if (node.complete()) {
      a.durations.push_back(node.duration_us());
    } else {
      ++a.incomplete;
    }
  }
  os << "stage                count  fail  total_us    mean_us     p50_us    "
        " p95_us     max_us\n";
  for (std::size_t i = 0; i < agg.size(); ++i) {
    StageAgg& a = agg[i];
    if (a.count == 0) continue;
    std::sort(a.durations.begin(), a.durations.end());
    std::int64_t total = 0;
    for (const std::int64_t d : a.durations) total += d;
    const std::int64_t mean =
        a.durations.empty() ? 0
                            : total / static_cast<std::int64_t>(a.durations.size());
    const std::string name(obs::stage_name(static_cast<obs::Stage>(i)));
    os << name;
    for (std::size_t pad = name.size(); pad < 20; ++pad) os << ' ';
    rcol(os, static_cast<std::int64_t>(a.count), 6);
    rcol(os, static_cast<std::int64_t>(a.failed), 6);
    rcol(os, total, 10);
    rcol(os, mean, 11);
    rcol(os, percentile(a.durations, 50), 11);
    rcol(os, percentile(a.durations, 95), 11);
    rcol(os, a.durations.empty() ? 0 : a.durations.back(), 11);
    if (a.incomplete > 0) os << "  (" << a.incomplete << " incomplete)";
    os << "\n";
  }
}

void format_ttfb_table(const TraceForest& forest, std::ostream& os) {
  auto table = [&os](const char* label,
                     const std::vector<std::pair<std::uint32_t, std::int64_t>>&
                         samples) {
    if (samples.empty()) {
      os << label << ": no samples\n";
      return;
    }
    std::map<std::uint32_t, std::vector<std::int64_t>> per_circuit;
    std::vector<std::int64_t> all;
    for (const auto& [circ, us] : samples) {
      per_circuit[circ].push_back(us);
      all.push_back(us);
    }
    os << label << " (us):\n";
    os << "  circuit   count     p50     p95     p99   p99.9     max\n";
    auto row = [&os](const std::string& key, std::vector<std::int64_t>& v) {
      std::sort(v.begin(), v.end());
      os << "  " << key;
      for (std::size_t pad = key.size(); pad < 8; ++pad) os << ' ';
      rcol(os, static_cast<std::int64_t>(v.size()), 7);
      rcol(os, percentile(v, 50), 8);
      rcol(os, percentile(v, 95), 8);
      rcol(os, percentile(v, 99), 8);
      rcol(os, percentile(v, 99.9), 8);
      rcol(os, v.back(), 8);
      os << "\n";
    };
    for (auto& [circ, v] : per_circuit) row(std::to_string(circ), v);
    row("all", all);
  };
  table("ttfb", forest.ttfb);
  table("ttlb", forest.ttlb);
}

void export_chrome(const TraceForest& forest, std::ostream& os) {
  // One Chrome lane (tid) per trace, keyed by the root span's id. Async
  // b/e pairs draw the span bars; s/f flow events draw parent->child arrows
  // so cross-hop causality stays visible even when Chrome collapses lanes.
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto emit = [&os, &first](const std::string& json) {
    if (!first) os << ",";
    first = false;
    os << "\n" << json;
  };
  for (const std::uint32_t root : forest.roots) {
    const std::uint32_t lane = root;
    std::vector<std::uint32_t> stack{root};
    while (!stack.empty()) {
      const std::uint32_t id = stack.back();
      stack.pop_back();
      const SpanNode& node = forest.spans.at(id);
      if (node.begin_ts >= 0) {
        const std::string name(obs::stage_name(node.stage));
        const std::string common = ",\"pid\":1,\"tid\":" + std::to_string(lane);
        emit("{\"name\":\"" + name + "\",\"cat\":\"span\",\"ph\":\"b\",\"id\":" +
             std::to_string(node.id) + common +
             ",\"ts\":" + std::to_string(node.begin_ts) +
             ",\"args\":{\"span\":" + std::to_string(node.id) +
             ",\"parent\":" + std::to_string(node.parent) +
             ",\"ok\":" + (node.ok ? "true" : "false") + "}}");
        const std::int64_t end_ts = node.end_ts >= 0 ? node.end_ts : node.begin_ts;
        emit("{\"name\":\"" + name + "\",\"cat\":\"span\",\"ph\":\"e\",\"id\":" +
             std::to_string(node.id) + common +
             ",\"ts\":" + std::to_string(end_ts) + "}");
        if (node.parent != 0) {
          auto parent_it = forest.spans.find(node.parent);
          if (parent_it != forest.spans.end() &&
              parent_it->second.begin_ts >= 0) {
            // Flow arrow: parent begin -> child begin.
            emit("{\"name\":\"causal\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":" +
                 std::to_string(node.id) + common +
                 ",\"ts\":" + std::to_string(parent_it->second.begin_ts) + "}");
            emit("{\"name\":\"causal\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\"id\":" +
                 std::to_string(node.id) + common +
                 ",\"ts\":" + std::to_string(node.begin_ts) + "}");
          }
        }
      }
      for (auto it = node.children.rbegin(); it != node.children.rend(); ++it) {
        stack.push_back(*it);
      }
    }
  }
  os << "\n]}\n";
}

}  // namespace bento::tools
