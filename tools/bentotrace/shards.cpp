#include "bentotrace/shards.hpp"

#include <cstdint>
#include <ostream>

#include "bentotrace/critpath.hpp"
#include "bentotrace/textutil.hpp"
#include "obs/critpath.hpp"

namespace bento::tools {

namespace {

struct RegionAgg {
  std::uint32_t id = 0;
  std::uint64_t events = 0;
  std::uint64_t windows = 0;
};

}  // namespace

bool parse_shard_profile(std::string_view json, obs::ShardProfileSnapshot& out) {
  const std::size_t at = json.find("{\"shard_profile\":{");
  if (at == std::string_view::npos) return false;
  std::string_view body = json.substr(at);
  // The wall object (when present) repeats no deterministic keys, and the
  // regions/workers arrays carry their own, so whole-body key search is
  // unambiguous against the emitter's schema.
  if (!find_int(body, "\"windows\":", out.windows) ||
      !find_int(body, "\"window_events\":", out.window_events) ||
      !find_int(body, "\"max_window_events\":", out.max_window_events) ||
      !find_int(body, "\"span_us\":{\"sum\":", out.span_sum_us) ||
      !find_int(body, "\"min\":", out.span_min_us) ||
      !find_int(body, "\"max\":", out.span_max_us) ||
      !find_int(body, "\"mailbox\":{\"events\":", out.mailbox_events) ||
      !find_int(body, "\"depth_high_water\":", out.mailbox_depth_hw) ||
      !find_int(body, "\"exclusive_events\":", out.exclusive_events) ||
      !find_int(body, "\"lookahead_us\":", out.lookahead_us)) {
    return false;
  }
  out.regions.clear();
  for (std::string_view obj : array_objects(body, "\"regions\":[")) {
    obs::ShardProfileSnapshot::RegionRow row;
    if (!find_int(obj, "\"id\":", row.id) ||
        !find_int(obj, "\"events\":", row.events) ||
        !find_int(obj, "\"windows\":", row.windows)) {
      return false;
    }
    out.regions.push_back(row);
  }
  out.workers.clear();
  const std::size_t wall_at = body.find(",\"wall\":{");
  if (wall_at != std::string_view::npos) {
    std::string_view wall = body.substr(wall_at);
    if (!find_int(wall, "\"run_ns\":", out.run_wall_ns) ||
        !find_int(wall, "\"dispatch_ns\":", out.dispatch_wall_ns) ||
        !find_int(wall, "\"barrier_ns\":", out.barrier_wall_ns) ||
        !find_int(wall, "\"drain_ns\":", out.drain_wall_ns) ||
        !find_int(wall, "\"merge_ns\":", out.merge_wall_ns) ||
        !find_int(wall, "\"exclusive_ns\":", out.exclusive_wall_ns)) {
      return false;
    }
    for (std::string_view obj : array_objects(wall, "\"workers\":[")) {
      obs::ShardProfileSnapshot::WorkerRow row;
      if (!find_int(obj, "\"id\":", row.id) ||
          !find_int(obj, "\"busy_ns\":", row.busy_ns) ||
          !find_int(obj, "\"windows\":", row.windows) ||
          !find_int(obj, "\"events\":", row.events)) {
        return false;
      }
      out.workers.push_back(row);
    }
  }
  return true;
}

void format_shard_report(const std::vector<RawEvent>& events,
                         const obs::ShardProfileSnapshot* wall, std::ostream& os) {
  std::vector<RegionAgg> regions;  // sparse by id, compacted below
  std::uint64_t barriers = 0;
  std::uint64_t span_sum = 0;
  std::int64_t span_min = 0;
  std::int64_t span_max = 0;
  std::uint64_t active_sum = 0;
  std::uint32_t active_min = 0;
  std::uint32_t active_max = 0;
  for (const RawEvent& e : events) {
    if (e.ev == "shard.window") {
      if (e.a >= regions.size()) regions.resize(e.a + 1);
      regions[e.a].id = e.a;
      regions[e.a].events += e.b;
      regions[e.a].windows += 1;
    } else if (e.ev == "shard.barrier") {
      const auto span = static_cast<std::int64_t>(e.b);
      if (barriers == 0 || span < span_min) span_min = span;
      if (barriers == 0 || span > span_max) span_max = span;
      if (barriers == 0 || e.a < active_min) active_min = e.a;
      if (barriers == 0 || e.a > active_max) active_max = e.a;
      ++barriers;
      span_sum += e.b;
      active_sum += e.a;
    }
  }
  std::vector<RegionAgg> live;
  std::uint64_t total = 0;
  std::uint64_t max_ev = 0;
  for (const RegionAgg& r : regions) {
    if (r.events == 0) continue;
    live.push_back(r);
    total += r.events;
    if (r.events > max_ev) max_ev = r.events;
  }

  os << "bentotrace shards: " << barriers << " barriers, " << live.size()
     << " active regions, " << total << " events through windows\n";
  if (barriers == 0) {
    os << "no shard.window/shard.barrier events — serial or single-region "
          "run, or the trace mask filtered them\n";
    return;
  }
  os << "window span us: min=" << span_min << " mean=" << span_sum / barriers
     << " max=" << span_max << "\n";
  os << "active regions per window: min=" << active_min
     << " mean=" << active_sum / barriers << " max=" << active_max << "\n";
  const std::uint64_t imbalance =
      live.empty() || total == 0 ? 1000 : max_ev * 1000 * live.size() / total;
  os << "imbalance (max/mean x1000): " << imbalance << "\n";
  os << "region balance:\n";
  for (const RegionAgg& r : live) {
    os << "  r" << r.id << " " << r.events << " ev ";
    fixed1(os, pct_of(r.events, total));
    os << "% " << r.windows << " win\n";
  }

  if (wall == nullptr) {
    os << "wall attribution: no profile given (pass --profile "
          "<profile_wall.json>)\n";
    return;
  }
  const std::uint64_t attributed = wall->dispatch_wall_ns + wall->barrier_wall_ns +
                                   wall->drain_wall_ns + wall->merge_wall_ns +
                                   wall->exclusive_wall_ns;
  const std::uint64_t other =
      wall->run_wall_ns > attributed ? wall->run_wall_ns - attributed : 0;
  os << "wall attribution (run ";
  fixed1(os, static_cast<double>(wall->run_wall_ns) / 1e6);
  os << " ms, ";
  fixed1(os, pct_of(attributed, wall->run_wall_ns));
  os << "% attributed):\n";
  os << "  dispatch ";
  fixed1(os, pct_of(wall->dispatch_wall_ns + wall->exclusive_wall_ns, wall->run_wall_ns));
  os << "% | barrier wait ";
  fixed1(os, pct_of(wall->barrier_wall_ns, wall->run_wall_ns));
  os << "% | mailbox drain ";
  fixed1(os, pct_of(wall->drain_wall_ns, wall->run_wall_ns));
  os << "% | merge ";
  fixed1(os, pct_of(wall->merge_wall_ns, wall->run_wall_ns));
  os << "% | other ";
  fixed1(os, pct_of(other, wall->run_wall_ns));
  os << "%\n";
  for (const auto& w : wall->workers) {
    os << "  worker " << w.id << ": busy ";
    fixed1(os, pct_of(w.busy_ns, wall->run_wall_ns));
    os << "% (" << w.events << " ev, " << w.windows << " win, stall ";
    fixed1(os, pct_of(wall->run_wall_ns > w.busy_ns ? wall->run_wall_ns - w.busy_ns : 0,
                   wall->run_wall_ns));
    os << "%)\n";
  }
}

obs::SloReport evaluate_trace_slos(const std::vector<RawEvent>& events,
                                   const std::vector<obs::SloSpec>& specs) {
  obs::SloInput input;
  std::vector<RegionAgg> regions;
  std::uint64_t barriers = 0;
  for (const RawEvent& e : events) {
    if (e.ev == "stream.ttfb") {
      input.add_sample("ttfb_us", static_cast<std::int64_t>(e.b));
    } else if (e.ev == "stream.ttlb") {
      input.add_sample("ttlb_us", static_cast<std::int64_t>(e.b));
    } else if (e.ev == "shard.window") {
      if (e.a >= regions.size()) regions.resize(e.a + 1);
      regions[e.a].events += e.b;
    } else if (e.ev == "shard.barrier") {
      ++barriers;
    }
  }
  std::uint64_t total = 0;
  std::uint64_t max_ev = 0;
  std::uint64_t live = 0;
  for (const RegionAgg& r : regions) {
    if (r.events == 0) continue;
    total += r.events;
    ++live;
    if (r.events > max_ev) max_ev = r.events;
  }
  input.set_scalar("windows", static_cast<double>(barriers));
  if (live > 0 && total > 0) {
    input.set_scalar("region_imbalance",
                     static_cast<double>(max_ev * 1000 * live / total) / 1000.0);
  }
  // critpath.* metrics (e.g. "critpath.net_link_queue_us:p99<=...") run the
  // critical-path analyzer over the same events — lazily, only when a spec
  // actually asks, so plain latency gates stay O(events).
  bool want_critpath = false;
  for (const obs::SloSpec& spec : specs) {
    if (spec.metric.rfind("critpath.", 0) == 0) {
      want_critpath = true;
      break;
    }
  }
  if (want_critpath) {
    const obs::CritReport report =
        obs::compute_critical_paths(crit_input_from_events(events));
    obs::add_critpath_series(report, input);
  }
  return obs::evaluate_slos("trace", specs, input);
}

}  // namespace bento::tools
