#include "bentotrace/critpath.hpp"

#include <cstdlib>
#include <sstream>
#include <string>

#include "bentotrace/textutil.hpp"

namespace bento::tools {

obs::CritInput crit_input_from_events(const std::vector<RawEvent>& events) {
  obs::CritInput input;
  const TraceForest forest = build_forest(events);
  input.spans.reserve(forest.spans.size());
  for (const auto& [id, node] : forest.spans) {
    obs::CritSpan s;
    s.id = id;
    s.parent = node.parent;
    s.stage = node.stage;
    s.begin_us = node.begin_ts;
    s.end_us = node.end_ts;
    s.ok = node.ok;
    s.ref = node.ref;
    s.idle_us = node.idle_us;
    s.chaos_us = node.chaos_us;
    input.spans.push_back(s);
  }
  for (const RawEvent& e : events) {
    if (e.ev == "shard.barrier") input.barriers_us.push_back(e.ts);
  }
  return input;
}

bool looks_like_blame_profile(std::string_view text) {
  return text.find("{\"critpath\":{") != std::string_view::npos;
}

bool parse_blame_profile(std::string_view json, obs::BlameProfile& out) {
  const std::size_t at = json.find("{\"critpath\":{");
  if (at == std::string_view::npos) return false;
  std::string_view body = json.substr(at);
  if (!find_int(body, "\"requests\":", out.requests) ||
      !find_int(body, "\"incomplete\":", out.incomplete) ||
      !find_int(body, "\"total_us\":{\"sum\":", out.sum_us) ||
      !find_int(body, "\"p50\":", out.p50_us) ||
      !find_int(body, "\"p99\":", out.p99_us) ||
      !find_int(body, "\"p99_9\":", out.p999_us) ||
      !find_int(body, "\"body_n\":", out.body_n) ||
      !find_int(body, "\"body_mean_us\":", out.body_mean_us) ||
      !find_int(body, "\"tail_n\":", out.tail_n) ||
      !find_int(body, "\"tail_mean_us\":", out.tail_mean_us)) {
    return false;
  }
  out.rows.clear();
  for (std::string_view obj : array_objects(body, "\"segments\":[")) {
    obs::BlameProfile::Row row;
    std::string region;
    if (!find_str(obj, "\"seg\":", row.seg) ||
        !find_str(obj, "\"region\":", region) ||
        !find_int(obj, "\"requests\":", row.requests) ||
        !find_int(obj, "\"total_us\":", row.total_us) ||
        !find_int(obj, "\"mean_us\":", row.mean_us) ||
        !find_int(obj, "\"body_mean_us\":", row.body_mean_us) ||
        !find_int(obj, "\"tail_mean_us\":", row.tail_mean_us)) {
      return false;
    }
    if (region == "all") {
      row.region = -1;
    } else if (region.size() > 1 && region[0] == 'r') {
      row.region = std::atoi(region.c_str() + 1);
    } else {
      return false;
    }
    out.rows.push_back(std::move(row));
  }
  return true;
}

bool load_blame_profile(std::string_view text, obs::BlameProfile& out,
                        std::string* err) {
  if (looks_like_blame_profile(text)) {
    if (parse_blame_profile(text, out)) return true;
    if (err != nullptr) *err = "malformed critpath profile JSON";
    return false;
  }
  std::istringstream is{std::string(text)};
  const std::vector<RawEvent> events = read_jsonl(is);
  bool any = false;
  for (const RawEvent& e : events) {
    if (e.ev != "!unparsed") {
      any = true;
      break;
    }
  }
  if (!any) {
    if (err != nullptr) {
      *err = "neither a critpath profile JSON nor a trace.jsonl";
    }
    return false;
  }
  out = obs::aggregate_blame(
      obs::compute_critical_paths(crit_input_from_events(events)));
  return true;
}

}  // namespace bento::tools
