// bentotrace: offline span-tree reconstruction from the flight recorder's
// trace.jsonl dump (obs::Recorder::export_jsonl).
//
// The recorder stores spans as flat POD events (SpanBegin / SpanEnd /
// SpanNote, see src/obs/span.hpp); this library parses the JSONL stream,
// stitches the events back into per-request trees via the parent ids packed
// into SpanBegin.b, and computes the per-stage latency breakdowns and
// TTFB/TTLB percentile tables the paper-style overhead analysis needs.
//
// Everything is deterministic: the same trace.jsonl produces byte-identical
// format_tree()/stage table output, which is how the fixed-seed regression
// proves span trees are reproducible across runs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/span.hpp"

namespace bento::tools {

/// One parsed line of trace.jsonl.
struct RawEvent {
  std::int64_t ts = 0;
  std::string ev;
  std::uint32_t a = 0;
  std::uint64_t b = 0;
  bool ok = true;
};

/// Parses one `{"ts":..,"ev":"..","a":..,"b":..,"ok":..}` line. Returns
/// nullopt for blank lines or lines that do not match the exporter's shape.
std::optional<RawEvent> parse_jsonl_line(std::string_view line);

/// Reads a whole stream, skipping unparseable lines (counted in the forest).
std::vector<RawEvent> read_jsonl(std::istream& is);

/// One reconstructed span.
struct SpanNode {
  std::uint32_t id = 0;
  std::uint32_t parent = 0;  // 0 = root
  obs::Stage stage = obs::Stage::None;
  std::int64_t begin_ts = -1;  // -1: begin lost (ring wraparound)
  std::int64_t end_ts = -1;    // -1: end never seen (orphan)
  bool ok = true;
  std::uint32_t ref = 0;         // kNoteRef annotation, if any
  std::uint64_t wire_bytes = 0;  // kNoteWireBytes annotation, if any
  std::int64_t idle_us = 0;      // kNoteLinkIdle: uncontended transit budget
  std::int64_t chaos_us = 0;     // kNoteChaosDwell: fault-added dwell
  std::vector<std::uint32_t> children;  // ordered by begin time (= id order)

  bool complete() const { return begin_ts >= 0 && end_ts >= 0; }
  std::int64_t duration_us() const { return complete() ? end_ts - begin_ts : 0; }
};

/// The whole trace: spans keyed by id plus the stream-level point events
/// needed for the TTFB/TTLB tables.
struct TraceForest {
  std::map<std::uint32_t, SpanNode> spans;
  std::vector<std::uint32_t> roots;            // id order == begin order
  std::vector<std::uint32_t> orphan_ends;      // SpanEnd without a begin
  std::vector<std::uint32_t> unfinished;       // begin without an end
  std::size_t unparsed_lines = 0;
  // (circuit id, µs) pairs in stream order, from stream.ttfb / stream.ttlb.
  std::vector<std::pair<std::uint32_t, std::int64_t>> ttfb;
  std::vector<std::pair<std::uint32_t, std::int64_t>> ttlb;
};

TraceForest build_forest(const std::vector<RawEvent>& events);

/// Indented per-request tree dump; byte-stable for a given trace.
void format_tree(const TraceForest& forest, std::ostream& os);

/// Per-stage latency table: count, failures, total/mean/p50/p95/max sim-µs.
/// Zero-duration stages (synchronous hops) still show their counts — the
/// per-hop story is in the counts and ordering, the latency story in the
/// modeled-delay stages (net.link, fn.dispatch, client.*).
void format_stage_summary(const TraceForest& forest, std::ostream& os);

/// TTFB/TTLB percentiles grouped per circuit, plus an overall row.
void format_ttfb_table(const TraceForest& forest, std::ostream& os);

/// Chrome trace_event JSON with one async lane per trace and flow arrows
/// binding each parent span to its children across hops.
void export_chrome(const TraceForest& forest, std::ostream& os);

}  // namespace bento::tools
