// Shard (paper §9.3): spread a file across N Dropboxes so any K recover it.
//
// "Shard uses standard linear encoding techniques to ensure that retrieving
// any k of the N shards suffices to reconstruct the file" — implemented as
// an erasure code over GF(256) with a Cauchy generator matrix, whose every
// k×k submatrix is invertible, so *any* k distinct shards decode (a digital
// fountain in the Byers et al. sense for fixed n).
//
// ShardClient is the client-side driver: encode, deploy a Dropbox function
// per shard on distinct Bento boxes, PUT each shard, and later GET any k
// and decode.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/client.hpp"
#include "util/bytes.hpp"

namespace bento::functions {

// ---- GF(256) arithmetic (AES polynomial 0x11b, generator 3) ----
namespace gf256 {
std::uint8_t mul(std::uint8_t a, std::uint8_t b);
std::uint8_t inv(std::uint8_t a);  // a != 0
inline std::uint8_t add(std::uint8_t a, std::uint8_t b) { return a ^ b; }
}  // namespace gf256

struct Shard {
  std::uint8_t index = 0;  // row of the generator matrix
  std::uint16_t k = 0;
  std::uint16_t n = 0;
  std::uint64_t original_size = 0;
  util::Bytes data;

  util::Bytes serialize() const;
  static Shard deserialize(util::ByteView wire);
};

/// Splits `data` into k source blocks and emits n coded shards.
/// Requires 1 <= k <= n and k + n <= 255.
std::vector<Shard> shard_encode(util::ByteView data, int k, int n);

/// Reconstructs from >= k distinct shards of the same file; nullopt if
/// fewer than k distinct indices (or inconsistent parameters) are given.
std::optional<util::Bytes> shard_decode(const std::vector<Shard>& shards);

/// Client-side orchestration: one Dropbox per shard on distinct boxes.
class ShardClient {
 public:
  ShardClient(core::BentoClient& bento, int k, int n) : bento_(bento), k_(k), n_(n) {}

  struct Placement {
    std::string box;
    util::Bytes invocation_token;
    util::Bytes shutdown_token;
  };
  using StoreFn = std::function<void(bool ok, std::vector<Placement>)>;
  using FetchFn = std::function<void(std::optional<util::Bytes>)>;

  /// Encodes and stores shards on the given boxes (needs exactly n boxes).
  void store(util::ByteView data, const std::vector<std::string>& boxes,
             StoreFn done);

  /// Fetches shards from the given subset of placements (any >= k) and
  /// decodes.
  void fetch(const std::vector<Placement>& placements, FetchFn done);

  /// Recovery (DESIGN.md §9): probes every placement, reconstructs the file
  /// from any >= k surviving Dropboxes, re-encodes (shard_encode is
  /// deterministic, so surviving shards stay valid), and re-seeds each lost
  /// shard onto the next spare box. `done(ok, updated)` gets the placement
  /// list with dead slots replaced; ok means every lost shard was re-seeded.
  /// Placement order must match shard index (as store() produces).
  using RepairFn = std::function<void(bool ok, std::vector<Placement>)>;
  void repair(const std::vector<Placement>& placements,
              const std::vector<std::string>& spare_boxes, RepairFn done);

 private:
  /// Deploys a Dropbox on `box` and PUTs `shard` into it (the per-shard leg
  /// of store()/repair()).
  void put_shard(const std::string& box, Shard shard,
                 std::function<void(bool ok, Placement)> done);

  core::BentoClient& bento_;
  int k_;
  int n_;
};

}  // namespace bento::functions
