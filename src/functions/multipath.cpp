#include "functions/multipath.hpp"

#include <sstream>

#include "util/serialize.hpp"

namespace bento::functions {

namespace sb = sandbox;

void MultipathFetchFunction::on_install(core::HostApi& api, util::ByteView) {
  api.log("multipath: installed");
}

void MultipathFetchFunction::on_message(core::HostApi& api, util::ByteView payload) {
  std::istringstream in(util::to_string(payload));
  std::string verb, url;
  int index = 0, count = 0;
  if (!(in >> verb >> url >> index >> count) || verb != "FETCH" || count < 1 ||
      index < 0 || index >= count) {
    api.send(util::to_bytes("ERR bad request"));
    return;
  }
  if (stripe_count_ != 0 && (url != url_ || count != stripe_count_)) {
    api.send(util::to_bytes("ERR inconsistent stripes"));
    return;
  }
  url_ = url;
  stripe_count_ = count;
  stripes_.push_back({api.reply_handle(), index});

  if (fetched_) {
    serve(api);
    return;
  }
  if (!fetching_) {
    fetching_ = true;
    api.http_get(url_, [this, &api](bool ok, util::Bytes body) {
      fetching_ = false;
      if (!ok) {
        for (const Stripe& stripe : stripes_) {
          api.send_to(stripe.handle, util::to_bytes("ERR fetch failed"));
        }
        stripes_.clear();
        return;
      }
      fetched_ = true;
      body_ = std::move(body);
      serve(api);
    });
  }
}

void MultipathFetchFunction::serve(core::HostApi& api) {
  // Emit each registered stripe's chunks on its own channel. Chunk i goes
  // to stripe (i % stripe_count): round-robin striping, so every circuit
  // carries an equal share of the body concurrently.
  const std::size_t total_chunks =
      (body_.size() + kMultipathChunk - 1) / kMultipathChunk;
  for (const Stripe& stripe : stripes_) {
    for (std::size_t chunk = static_cast<std::size_t>(stripe.index);
         chunk < total_chunks || (total_chunks == 0 && stripe.index == 0);
         chunk += static_cast<std::size_t>(stripe_count_)) {
      const std::size_t begin = chunk * kMultipathChunk;
      const std::size_t len = std::min(kMultipathChunk, body_.size() - begin);
      util::Writer w;
      w.u32(static_cast<std::uint32_t>(chunk));
      w.u32(static_cast<std::uint32_t>(total_chunks));
      w.raw(util::ByteView(body_.data() + begin, len));
      api.send_to(stripe.handle, w.data());
      if (total_chunks == 0) break;
    }
  }
  stripes_.clear();
}

core::FunctionManifest multipath_manifest() {
  core::FunctionManifest m;
  m.name = "multipath-fetch";
  m.required = {sb::Syscall::NetConnect, sb::Syscall::Clock};
  m.resources.memory_bytes = 48 << 20;
  m.resources.cpu_instructions = 200'000'000;
  m.resources.disk_bytes = 1 << 20;
  m.resources.network_bytes = 1ull << 30;
  return m;
}

void register_multipath(core::NativeRegistry& registry) {
  registry.add("multipath-fetch",
               [] { return std::make_unique<MultipathFetchFunction>(); });
}

void MultipathFetcher::fetch(const std::string& exit_box, const std::string& url,
                             std::function<double()> now, DoneFn done) {
  // The stripes' output handlers (owned by the connections, which
  // BentoClient::live_ anchors) hold the only lasting references to this
  // state; it must never point back at a connection or nothing would die.
  struct State {
    std::map<std::uint32_t, util::Bytes> chunks;
    std::vector<std::size_t> per_path_bytes;
    std::uint32_t total_chunks = 0;
    bool total_known = false;
    double started = 0;
    bool finished = false;
    util::Bytes token;
    DoneFn done;
    std::function<double()> now;
    int circuits = 0;
    std::vector<std::string> used_relays;  // keep stripes path-disjoint
  };
  auto state = std::make_shared<State>();
  state->per_path_bytes.assign(static_cast<std::size_t>(circuits_), 0);
  state->done = std::move(done);
  state->now = std::move(now);
  state->circuits = circuits_;

  auto finish = [state](bool ok) {
    if (state->finished) return;
    state->finished = true;
    Result result;
    result.ok = ok;
    result.seconds = state->now() - state->started;
    result.per_path_bytes = state->per_path_bytes;
    if (ok) {
      for (std::uint32_t i = 0; i < state->total_chunks; ++i) {
        util::append(result.body, state->chunks[i]);
      }
    }
    state->done(std::move(result));
  };

  auto attach_output = [state, finish, url](int path_index,
                                            std::shared_ptr<core::BentoConnection> conn) {
    conn->set_output_handler([state, finish, path_index](util::Bytes out) {
      if (state->finished) return;
      if (out.size() >= 3 && out[0] == 'E' && out[1] == 'R' && out[2] == 'R') {
        finish(false);
        return;
      }
      try {
        util::Reader r(out);
        const std::uint32_t seq = r.u32();
        const std::uint32_t total = r.u32();
        util::Bytes data = r.raw(r.remaining());
        state->per_path_bytes[static_cast<std::size_t>(path_index)] += data.size();
        state->chunks[seq] = std::move(data);
        state->total_chunks = total;
        state->total_known = true;
        if (state->chunks.size() == total) finish(true);
        if (total == 0) finish(true);
      } catch (const util::ParseError&) {
        finish(false);
      }
    });
  };

  // Path 0 deploys; the rest share the invocation token over their own
  // circuits (the token is exactly the shareable capability of §5.3).
  bento_.connect(exit_box, [this, state, finish, attach_output, url,
                            exit_box](std::shared_ptr<core::BentoConnection> conn) {
    if (conn == nullptr) {
      finish(false);
      return;
    }
    conn->spawn(core::kImagePython, [this, state, finish, attach_output, url,
                                     exit_box, conn](bool ok, std::string) {
      if (!ok) {
        finish(false);
        return;
      }
      conn->upload(
          multipath_manifest(), "", "multipath-fetch", {},
          [this, state, finish, attach_output, url, exit_box, conn](
              std::optional<core::TokenPair> tokens, std::string) {
            if (!tokens.has_value()) {
              finish(false);
              return;
            }
            state->token = tokens->invocation.bytes();
            state->started = state->now();
            attach_output(0, conn);
            for (const auto& fp : conn->path_fingerprints()) {
              if (fp != exit_box) state->used_relays.push_back(fp);
            }
            conn->invoke(state->token,
                         util::to_bytes("FETCH " + url + " 0 " +
                                        std::to_string(state->circuits)));
            // Remaining stripes over their own, relay-disjoint circuits
            // (mTor-style: disjoint paths, common exit). Opened one after
            // another so each sees the relays its predecessors used.
            // The stored function captures itself weakly: the pending
            // connect callback (transient) carries the strong reference, so
            // the chain stays alive exactly until the last path opens.
            auto open_path = std::make_shared<std::function<void(int)>>();
            std::weak_ptr<std::function<void(int)>> weak_open = open_path;
            *open_path = [this, state, finish, attach_output, url, exit_box,
                          weak_open](int path) {
              if (path >= state->circuits) return;
              bento_.connect(
                  exit_box, state->used_relays,
                  [state, finish, attach_output, url, path, exit_box,
                   next = weak_open.lock()](std::shared_ptr<core::BentoConnection> c2) {
                    if (c2 == nullptr) {
                      finish(false);
                      return;
                    }
                    for (const auto& fp : c2->path_fingerprints()) {
                      if (fp != exit_box) state->used_relays.push_back(fp);
                    }
                    attach_output(path, c2);
                    c2->invoke(state->token,
                               util::to_bytes("FETCH " + url + " " +
                                              std::to_string(path) + " " +
                                              std::to_string(state->circuits)));
                    if (next != nullptr) (*next)(path + 1);
                  });
            };
            (*open_path)(1);
          });
    });
  });
}

}  // namespace bento::functions
