#include "functions/shard.hpp"

#include <stdexcept>

#include "functions/library.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"
#include "util/serialize.hpp"

namespace bento::functions {

namespace gf256 {
namespace {
struct Tables {
  std::array<std::uint8_t, 256> log{};
  std::array<std::uint8_t, 512> exp{};
  Tables() {
    std::uint8_t x = 1;
    for (int i = 0; i < 255; ++i) {
      exp[static_cast<std::size_t>(i)] = x;
      log[x] = static_cast<std::uint8_t>(i);
      // multiply by generator 3: x*2 ^ x
      std::uint8_t x2 = static_cast<std::uint8_t>(
          (x << 1) ^ ((x & 0x80) ? 0x1b : 0x00));
      x = static_cast<std::uint8_t>(x2 ^ x);
    }
    for (int i = 255; i < 512; ++i) exp[static_cast<std::size_t>(i)] = exp[static_cast<std::size_t>(i - 255)];
  }
};
const Tables& tables() {
  static const Tables t;
  return t;
}
}  // namespace

std::uint8_t mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  const Tables& t = tables();
  return t.exp[static_cast<std::size_t>(t.log[a]) + t.log[b]];
}

std::uint8_t inv(std::uint8_t a) {
  if (a == 0) throw std::invalid_argument("gf256::inv(0)");
  const Tables& t = tables();
  return t.exp[255 - t.log[a]];
}
}  // namespace gf256

namespace {
/// Cauchy coefficient row for shard `index` over k source blocks:
/// a_j = 1 / (x_i + y_j) with x_i = k + index, y_j = j (all distinct bytes).
std::vector<std::uint8_t> cauchy_row(int index, int k) {
  std::vector<std::uint8_t> row(static_cast<std::size_t>(k));
  const std::uint8_t x = static_cast<std::uint8_t>(k + index);
  for (int j = 0; j < k; ++j) {
    row[static_cast<std::size_t>(j)] =
        gf256::inv(static_cast<std::uint8_t>(x ^ static_cast<std::uint8_t>(j)));
  }
  return row;
}
}  // namespace

util::Bytes Shard::serialize() const {
  util::Writer w;
  w.u8(index);
  w.u16(k);
  w.u16(n);
  w.u64(original_size);
  w.blob(data);
  return std::move(w).take();
}

Shard Shard::deserialize(util::ByteView wire) {
  util::Reader r(wire);
  Shard s;
  s.index = r.u8();
  s.k = r.u16();
  s.n = r.u16();
  s.original_size = r.u64();
  s.data = r.blob();
  r.expect_done();
  return s;
}

std::vector<Shard> shard_encode(util::ByteView data, int k, int n) {
  if (k < 1 || k > n || k + n > 255) {
    throw std::invalid_argument("shard_encode: need 1 <= k <= n, k+n <= 255");
  }
  const std::size_t block = (data.size() + static_cast<std::size_t>(k) - 1) /
                            static_cast<std::size_t>(k);
  // Zero-padded source blocks.
  std::vector<util::Bytes> sources(static_cast<std::size_t>(k),
                                   util::Bytes(block, 0));
  for (std::size_t i = 0; i < data.size(); ++i) {
    sources[i / block][i % block] = data[i];
  }

  std::vector<Shard> shards;
  shards.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Shard s;
    s.index = static_cast<std::uint8_t>(i);
    s.k = static_cast<std::uint16_t>(k);
    s.n = static_cast<std::uint16_t>(n);
    s.original_size = data.size();
    s.data.assign(block, 0);
    const auto row = cauchy_row(i, k);
    for (int j = 0; j < k; ++j) {
      const std::uint8_t c = row[static_cast<std::size_t>(j)];
      if (c == 0) continue;
      const util::Bytes& src = sources[static_cast<std::size_t>(j)];
      for (std::size_t b = 0; b < block; ++b) {
        s.data[b] = static_cast<std::uint8_t>(s.data[b] ^ gf256::mul(c, src[b]));
      }
    }
    shards.push_back(std::move(s));
  }
  return shards;
}

std::optional<util::Bytes> shard_decode(const std::vector<Shard>& shards) {
  if (shards.empty()) return std::nullopt;
  const int k = shards[0].k;
  const std::uint64_t original_size = shards[0].original_size;
  const std::size_t block = shards[0].data.size();

  // Collect k distinct, consistent shards.
  std::vector<const Shard*> chosen;
  std::vector<bool> seen(256, false);
  for (const Shard& s : shards) {
    if (s.k != shards[0].k || s.n != shards[0].n ||
        s.original_size != original_size || s.data.size() != block) {
      return std::nullopt;
    }
    if (seen[s.index]) continue;
    seen[s.index] = true;
    chosen.push_back(&s);
    if (static_cast<int>(chosen.size()) == k) break;
  }
  if (static_cast<int>(chosen.size()) < k) return std::nullopt;

  // Gaussian elimination on [A | shards] over GF(256).
  const std::size_t kk = static_cast<std::size_t>(k);
  std::vector<std::vector<std::uint8_t>> a(kk);
  std::vector<util::Bytes> rhs(kk);
  for (std::size_t r = 0; r < kk; ++r) {
    a[r] = cauchy_row(chosen[r]->index, k);
    rhs[r] = chosen[r]->data;
  }
  for (std::size_t col = 0; col < kk; ++col) {
    // Pivot.
    std::size_t pivot = col;
    while (pivot < kk && a[pivot][col] == 0) ++pivot;
    if (pivot == kk) return std::nullopt;  // singular (cannot happen w/ Cauchy)
    std::swap(a[pivot], a[col]);
    std::swap(rhs[pivot], rhs[col]);
    // Normalize.
    const std::uint8_t piv_inv = gf256::inv(a[col][col]);
    for (std::size_t j = 0; j < kk; ++j) a[col][j] = gf256::mul(a[col][j], piv_inv);
    for (std::size_t b = 0; b < block; ++b) {
      rhs[col][b] = gf256::mul(rhs[col][b], piv_inv);
    }
    // Eliminate.
    for (std::size_t r = 0; r < kk; ++r) {
      if (r == col || a[r][col] == 0) continue;
      const std::uint8_t factor = a[r][col];
      for (std::size_t j = 0; j < kk; ++j) {
        a[r][j] = static_cast<std::uint8_t>(a[r][j] ^ gf256::mul(factor, a[col][j]));
      }
      for (std::size_t b = 0; b < block; ++b) {
        rhs[r][b] = static_cast<std::uint8_t>(rhs[r][b] ^ gf256::mul(factor, rhs[col][b]));
      }
    }
  }

  util::Bytes out;
  out.reserve(kk * block);
  for (std::size_t r = 0; r < kk; ++r) util::append(out, rhs[r]);
  out.resize(original_size);
  return out;
}

void ShardClient::put_shard(const std::string& box, Shard shard,
                            std::function<void(bool ok, Placement)> done) {
  auto shard_shared = std::make_shared<Shard>(std::move(shard));
  auto done_shared =
      std::make_shared<std::function<void(bool, Placement)>>(std::move(done));
  bento_.connect(box, [box, shard_shared, done_shared](
                          std::shared_ptr<core::BentoConnection> conn) {
    if (conn == nullptr) {
      (*done_shared)(false, {});
      return;
    }
    conn->spawn(core::kImagePythonOpSgx, [box, conn, shard_shared, done_shared](
                                             bool ok, std::string) {
      if (!ok) {
        (*done_shared)(false, {});
        return;
      }
      conn->upload(
          dropbox_manifest(), dropbox_source(), "", {},
          [box, conn, shard_shared, done_shared](
              std::optional<core::TokenPair> tokens, std::string) {
            if (!tokens.has_value()) {
              (*done_shared)(false, {});
              return;
            }
            auto placement = std::make_shared<Placement>();
            placement->box = box;
            placement->invocation_token = tokens->invocation.bytes();
            placement->shutdown_token = tokens->shutdown.bytes();
            // PUT the shard; Dropbox answers "OK". The handler must not
            // capture `conn` (a connection owning a closure that owns the
            // connection never dies); BentoClient::live_ keeps it alive.
            conn->set_output_handler([placement, done_shared](util::Bytes out) {
              (*done_shared)(util::to_string(out) == "OK", std::move(*placement));
            });
            util::Bytes payload = util::to_bytes("PUT:");
            util::append(payload, shard_shared->serialize());
            conn->invoke(placement->invocation_token, payload);
          });
    });
  });
}

void ShardClient::store(util::ByteView data, const std::vector<std::string>& boxes,
                        StoreFn done) {
  if (static_cast<int>(boxes.size()) != n_) {
    done(false, {});
    return;
  }
  std::vector<Shard> shards = shard_encode(data, k_, n_);
  auto placements = std::make_shared<std::vector<Placement>>(boxes.size());
  auto remaining = std::make_shared<int>(n_);
  auto failed = std::make_shared<bool>(false);
  auto done_shared = std::make_shared<StoreFn>(std::move(done));

  for (int i = 0; i < n_; ++i) {
    const std::string box = boxes[static_cast<std::size_t>(i)];
    (*placements)[static_cast<std::size_t>(i)].box = box;
    put_shard(box, std::move(shards[static_cast<std::size_t>(i)]),
              [i, placements, remaining, failed, done_shared](bool ok,
                                                              Placement placement) {
                if (!ok) {
                  *failed = true;
                } else {
                  (*placements)[static_cast<std::size_t>(i)] = std::move(placement);
                }
                if (--*remaining == 0) {
                  (*done_shared)(!*failed, std::move(*placements));
                }
              });
  }
}

void ShardClient::fetch(const std::vector<Placement>& placements, FetchFn done) {
  auto shards = std::make_shared<std::vector<Shard>>();
  auto remaining = std::make_shared<int>(static_cast<int>(placements.size()));
  auto done_shared = std::make_shared<FetchFn>(std::move(done));
  auto finished = std::make_shared<bool>(false);
  const int k = k_;

  auto collect = [shards, remaining, done_shared, finished, k](
                     std::optional<Shard> shard) {
    if (*finished) return;
    if (shard.has_value()) shards->push_back(std::move(*shard));
    --*remaining;
    if (static_cast<int>(shards->size()) >= k) {
      *finished = true;
      (*done_shared)(shard_decode(*shards));
      return;
    }
    if (*remaining == 0) {
      *finished = true;
      (*done_shared)(std::nullopt);
    }
  };

  for (const Placement& placement : placements) {
    bento_.connect(placement.box, [placement, collect](
                                      std::shared_ptr<core::BentoConnection> conn) {
      if (conn == nullptr) {
        collect(std::nullopt);
        return;
      }
      // The handler must not capture `conn` (a connection owning a closure
      // that owns the connection never dies); BentoClient::live_ keeps the
      // connection alive for as long as the reply can arrive.
      conn->set_output_handler([collect](util::Bytes out) {
        if (util::to_string(out) == "MISSING") {
          collect(std::nullopt);
          return;
        }
        try {
          collect(Shard::deserialize(out));
        } catch (const util::ParseError&) {
          collect(std::nullopt);
        }
      });
      conn->invoke(placement.invocation_token, util::to_bytes("GET:"));
    });
  }
}

void ShardClient::repair(const std::vector<Placement>& placements,
                         const std::vector<std::string>& spare_boxes,
                         RepairFn done) {
  struct State {
    ShardClient* self = nullptr;
    std::vector<Placement> updated;
    std::vector<std::string> spares;
    std::size_t next_spare = 0;
    std::vector<std::optional<Shard>> got;  // probe result per slot
    int probes_left = 0;
    int puts_left = 0;
    bool all_reseeded = true;
    RepairFn done;
  };
  auto st = std::make_shared<State>();
  st->self = this;
  st->updated = placements;
  st->spares = spare_boxes;
  st->got.resize(placements.size());
  st->probes_left = static_cast<int>(placements.size());
  st->done = std::move(done);

  auto reseed = [](std::shared_ptr<State> st) {
    // Every slot probed. Reconstruct, re-encode, and re-seed the dead slots.
    std::vector<Shard> survivors;
    for (const auto& s : st->got) {
      if (s.has_value()) survivors.push_back(*s);
    }
    auto data = shard_decode(survivors);
    if (!data.has_value()) {
      util::log_warn("shard", "repair: fewer than k surviving shards");
      auto cb = std::move(st->done);
      cb(false, std::move(st->updated));
      return;
    }
    // shard_encode is deterministic: slot i gets byte-identical data to what
    // the original store placed there.
    std::vector<Shard> full =
        shard_encode(*data, st->self->k_, st->self->n_);
    std::vector<std::size_t> dead;
    for (std::size_t i = 0; i < st->got.size(); ++i) {
      if (!st->got[i].has_value()) dead.push_back(i);
    }
    if (dead.empty()) {
      auto cb = std::move(st->done);
      cb(true, std::move(st->updated));
      return;
    }
    st->puts_left = static_cast<int>(dead.size());
    for (std::size_t slot : dead) {
      if (st->next_spare >= st->spares.size()) {
        util::log_warn("shard", "repair: out of spare boxes; shard ", slot,
                       " stays lost");
        obs::trace(obs::Ev::ShardRepair, static_cast<std::uint32_t>(slot), 0,
                   /*ok=*/false);
        st->all_reseeded = false;
        if (--st->puts_left == 0) {
          auto cb = std::move(st->done);
          cb(st->all_reseeded, std::move(st->updated));
        }
        continue;
      }
      const std::size_t spare_ref = st->next_spare;
      const std::string spare = st->spares[st->next_spare++];
      st->self->put_shard(spare, full[slot],
                          [st, slot, spare_ref](bool ok, Placement placement) {
        obs::trace(obs::Ev::ShardRepair, static_cast<std::uint32_t>(slot),
                   static_cast<std::uint64_t>(spare_ref), ok);
        if (ok) {
          st->updated[slot] = std::move(placement);
        } else {
          st->all_reseeded = false;
        }
        if (--st->puts_left == 0) {
          auto cb = std::move(st->done);
          cb(st->all_reseeded, std::move(st->updated));
        }
      });
    }
  };

  for (std::size_t i = 0; i < placements.size(); ++i) {
    const Placement& placement = placements[i];
    auto answered = std::make_shared<bool>(false);
    auto probe_done = [st, i, reseed, answered](std::optional<Shard> shard) {
      if (*answered) return;  // duplicate output / late timeout
      *answered = true;
      st->got[i] = std::move(shard);
      if (--st->probes_left == 0) reseed(st);
    };
    // A Dropbox that accepts the stream but never answers (box process
    // crashed, relay alive) must not hang the whole repair. The deadline
    // must outlast a worst-case connect — build_attempts timed-out circuit
    // builds — or a live box reached over a freshly-dead relay would be
    // misclassified as lost.
    bento_.proxy().simulator().after(util::Duration::seconds(90),
                                     [probe_done] { probe_done(std::nullopt); });
    bento_.connect(placement.box, [placement, probe_done](
                                      std::shared_ptr<core::BentoConnection> conn) {
      if (conn == nullptr) {
        probe_done(std::nullopt);
        return;
      }
      conn->set_output_handler([probe_done](util::Bytes out) {
        if (util::to_string(out) == "MISSING") {
          probe_done(std::nullopt);
          return;
        }
        try {
          probe_done(Shard::deserialize(out));
        } catch (const util::ParseError&) {
          probe_done(std::nullopt);
        }
      });
      conn->invoke(placement.invocation_token, util::to_bytes("GET:"));
    });
  }
}

}  // namespace bento::functions
