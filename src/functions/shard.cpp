#include "functions/shard.hpp"

#include <stdexcept>

#include "functions/library.hpp"
#include "util/serialize.hpp"

namespace bento::functions {

namespace gf256 {
namespace {
struct Tables {
  std::array<std::uint8_t, 256> log{};
  std::array<std::uint8_t, 512> exp{};
  Tables() {
    std::uint8_t x = 1;
    for (int i = 0; i < 255; ++i) {
      exp[static_cast<std::size_t>(i)] = x;
      log[x] = static_cast<std::uint8_t>(i);
      // multiply by generator 3: x*2 ^ x
      std::uint8_t x2 = static_cast<std::uint8_t>(
          (x << 1) ^ ((x & 0x80) ? 0x1b : 0x00));
      x = static_cast<std::uint8_t>(x2 ^ x);
    }
    for (int i = 255; i < 512; ++i) exp[static_cast<std::size_t>(i)] = exp[static_cast<std::size_t>(i - 255)];
  }
};
const Tables& tables() {
  static const Tables t;
  return t;
}
}  // namespace

std::uint8_t mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  const Tables& t = tables();
  return t.exp[static_cast<std::size_t>(t.log[a]) + t.log[b]];
}

std::uint8_t inv(std::uint8_t a) {
  if (a == 0) throw std::invalid_argument("gf256::inv(0)");
  const Tables& t = tables();
  return t.exp[255 - t.log[a]];
}
}  // namespace gf256

namespace {
/// Cauchy coefficient row for shard `index` over k source blocks:
/// a_j = 1 / (x_i + y_j) with x_i = k + index, y_j = j (all distinct bytes).
std::vector<std::uint8_t> cauchy_row(int index, int k) {
  std::vector<std::uint8_t> row(static_cast<std::size_t>(k));
  const std::uint8_t x = static_cast<std::uint8_t>(k + index);
  for (int j = 0; j < k; ++j) {
    row[static_cast<std::size_t>(j)] =
        gf256::inv(static_cast<std::uint8_t>(x ^ static_cast<std::uint8_t>(j)));
  }
  return row;
}
}  // namespace

util::Bytes Shard::serialize() const {
  util::Writer w;
  w.u8(index);
  w.u16(k);
  w.u16(n);
  w.u64(original_size);
  w.blob(data);
  return std::move(w).take();
}

Shard Shard::deserialize(util::ByteView wire) {
  util::Reader r(wire);
  Shard s;
  s.index = r.u8();
  s.k = r.u16();
  s.n = r.u16();
  s.original_size = r.u64();
  s.data = r.blob();
  r.expect_done();
  return s;
}

std::vector<Shard> shard_encode(util::ByteView data, int k, int n) {
  if (k < 1 || k > n || k + n > 255) {
    throw std::invalid_argument("shard_encode: need 1 <= k <= n, k+n <= 255");
  }
  const std::size_t block = (data.size() + static_cast<std::size_t>(k) - 1) /
                            static_cast<std::size_t>(k);
  // Zero-padded source blocks.
  std::vector<util::Bytes> sources(static_cast<std::size_t>(k),
                                   util::Bytes(block, 0));
  for (std::size_t i = 0; i < data.size(); ++i) {
    sources[i / block][i % block] = data[i];
  }

  std::vector<Shard> shards;
  shards.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Shard s;
    s.index = static_cast<std::uint8_t>(i);
    s.k = static_cast<std::uint16_t>(k);
    s.n = static_cast<std::uint16_t>(n);
    s.original_size = data.size();
    s.data.assign(block, 0);
    const auto row = cauchy_row(i, k);
    for (int j = 0; j < k; ++j) {
      const std::uint8_t c = row[static_cast<std::size_t>(j)];
      if (c == 0) continue;
      const util::Bytes& src = sources[static_cast<std::size_t>(j)];
      for (std::size_t b = 0; b < block; ++b) {
        s.data[b] = static_cast<std::uint8_t>(s.data[b] ^ gf256::mul(c, src[b]));
      }
    }
    shards.push_back(std::move(s));
  }
  return shards;
}

std::optional<util::Bytes> shard_decode(const std::vector<Shard>& shards) {
  if (shards.empty()) return std::nullopt;
  const int k = shards[0].k;
  const std::uint64_t original_size = shards[0].original_size;
  const std::size_t block = shards[0].data.size();

  // Collect k distinct, consistent shards.
  std::vector<const Shard*> chosen;
  std::vector<bool> seen(256, false);
  for (const Shard& s : shards) {
    if (s.k != shards[0].k || s.n != shards[0].n ||
        s.original_size != original_size || s.data.size() != block) {
      return std::nullopt;
    }
    if (seen[s.index]) continue;
    seen[s.index] = true;
    chosen.push_back(&s);
    if (static_cast<int>(chosen.size()) == k) break;
  }
  if (static_cast<int>(chosen.size()) < k) return std::nullopt;

  // Gaussian elimination on [A | shards] over GF(256).
  const std::size_t kk = static_cast<std::size_t>(k);
  std::vector<std::vector<std::uint8_t>> a(kk);
  std::vector<util::Bytes> rhs(kk);
  for (std::size_t r = 0; r < kk; ++r) {
    a[r] = cauchy_row(chosen[r]->index, k);
    rhs[r] = chosen[r]->data;
  }
  for (std::size_t col = 0; col < kk; ++col) {
    // Pivot.
    std::size_t pivot = col;
    while (pivot < kk && a[pivot][col] == 0) ++pivot;
    if (pivot == kk) return std::nullopt;  // singular (cannot happen w/ Cauchy)
    std::swap(a[pivot], a[col]);
    std::swap(rhs[pivot], rhs[col]);
    // Normalize.
    const std::uint8_t piv_inv = gf256::inv(a[col][col]);
    for (std::size_t j = 0; j < kk; ++j) a[col][j] = gf256::mul(a[col][j], piv_inv);
    for (std::size_t b = 0; b < block; ++b) {
      rhs[col][b] = gf256::mul(rhs[col][b], piv_inv);
    }
    // Eliminate.
    for (std::size_t r = 0; r < kk; ++r) {
      if (r == col || a[r][col] == 0) continue;
      const std::uint8_t factor = a[r][col];
      for (std::size_t j = 0; j < kk; ++j) {
        a[r][j] = static_cast<std::uint8_t>(a[r][j] ^ gf256::mul(factor, a[col][j]));
      }
      for (std::size_t b = 0; b < block; ++b) {
        rhs[r][b] = static_cast<std::uint8_t>(rhs[r][b] ^ gf256::mul(factor, rhs[col][b]));
      }
    }
  }

  util::Bytes out;
  out.reserve(kk * block);
  for (std::size_t r = 0; r < kk; ++r) util::append(out, rhs[r]);
  out.resize(original_size);
  return out;
}

void ShardClient::store(util::ByteView data, const std::vector<std::string>& boxes,
                        StoreFn done) {
  if (static_cast<int>(boxes.size()) != n_) {
    done(false, {});
    return;
  }
  auto shards = std::make_shared<std::vector<Shard>>(shard_encode(data, k_, n_));
  auto placements = std::make_shared<std::vector<Placement>>(boxes.size());
  auto remaining = std::make_shared<int>(n_);
  auto failed = std::make_shared<bool>(false);
  auto done_shared = std::make_shared<StoreFn>(std::move(done));

  for (int i = 0; i < n_; ++i) {
    const std::string box = boxes[static_cast<std::size_t>(i)];
    (*placements)[static_cast<std::size_t>(i)].box = box;
    auto finish_one = [remaining, failed, placements, done_shared](bool ok) {
      if (!ok) *failed = true;
      if (--*remaining == 0) (*done_shared)(!*failed, std::move(*placements));
    };
    bento_.connect(box, [this, i, shards, placements, finish_one](
                            std::shared_ptr<core::BentoConnection> conn) {
      if (conn == nullptr) {
        finish_one(false);
        return;
      }
      conn->spawn(core::kImagePythonOpSgx, [this, i, conn, shards, placements,
                                            finish_one](bool ok, std::string) {
        if (!ok) {
          finish_one(false);
          return;
        }
        conn->upload(
            dropbox_manifest(), dropbox_source(), "", {},
            [i, conn, shards, placements, finish_one](
                std::optional<core::TokenPair> tokens, std::string) {
              if (!tokens.has_value()) {
                finish_one(false);
                return;
              }
              auto& placement = (*placements)[static_cast<std::size_t>(i)];
              placement.invocation_token = tokens->invocation.bytes();
              placement.shutdown_token = tokens->shutdown.bytes();
              // PUT the shard; Dropbox answers "OK".
              conn->set_output_handler([finish_one](util::Bytes out) {
                finish_one(util::to_string(out) == "OK");
              });
              util::Bytes payload = util::to_bytes("PUT:");
              util::append(payload,
                           (*shards)[static_cast<std::size_t>(i)].serialize());
              conn->invoke(tokens->invocation.bytes(), payload);
            });
      });
    });
  }
}

void ShardClient::fetch(const std::vector<Placement>& placements, FetchFn done) {
  auto shards = std::make_shared<std::vector<Shard>>();
  auto remaining = std::make_shared<int>(static_cast<int>(placements.size()));
  auto done_shared = std::make_shared<FetchFn>(std::move(done));
  auto finished = std::make_shared<bool>(false);
  const int k = k_;

  auto collect = [shards, remaining, done_shared, finished, k](
                     std::optional<Shard> shard) {
    if (*finished) return;
    if (shard.has_value()) shards->push_back(std::move(*shard));
    --*remaining;
    if (static_cast<int>(shards->size()) >= k) {
      *finished = true;
      (*done_shared)(shard_decode(*shards));
      return;
    }
    if (*remaining == 0) {
      *finished = true;
      (*done_shared)(std::nullopt);
    }
  };

  for (const Placement& placement : placements) {
    bento_.connect(placement.box, [placement, collect](
                                      std::shared_ptr<core::BentoConnection> conn) {
      if (conn == nullptr) {
        collect(std::nullopt);
        return;
      }
      // The handler must not capture `conn` (a connection owning a closure
      // that owns the connection never dies); BentoClient::live_ keeps the
      // connection alive for as long as the reply can arrive.
      conn->set_output_handler([collect](util::Bytes out) {
        if (util::to_string(out) == "MISSING") {
          collect(std::nullopt);
          return;
        }
        try {
          collect(Shard::deserialize(out));
        } catch (const util::ParseError&) {
          collect(std::nullopt);
        }
      });
      conn->invoke(placement.invocation_token, util::to_bytes("GET:"));
    });
  }
}

}  // namespace bento::functions
