// Multipath routing (paper §9.4 "Future ideas"): "a multipath routing
// scheme that splits a stream across multiple circuits sharing a common
// exit relay ... Rather than modify the Tor code base, we are exploring
// whether multipath routing designs can be implemented as Bento functions."
//
// Implemented here as exactly that — a Bento function, no Tor changes:
//
//   * MultipathFetchFunction runs on an exit Bento box. A client opens N
//     independent circuits that all terminate at that box (the common
//     exit), shares one invocation token across them, and asks each
//     channel for one stripe of the response. The function fetches the URL
//     once and stripes sequence-numbered chunks round-robin across the
//     channels, so the N circuits carry the download concurrently.
//   * MultipathFetcher is the client-side driver: deploy, open the
//     parallel channels, reassemble by sequence number.
//
// When middle relays are the per-circuit bottleneck, throughput scales
// with the number of circuits until the exit's own link saturates — the
// effect mTor/conflux-style designs are after (see bench/ext_multipath).
#pragma once

#include <functional>
#include <map>

#include "core/api.hpp"
#include "core/client.hpp"
#include "util/bytes.hpp"

namespace bento::functions {

/// Chunk wire format: u32 stripe sequence number + data. Sequence numbers
/// are global chunk indices; chunk i goes to channel (i % stripe_count).
inline constexpr std::size_t kMultipathChunk = 16 * 1024;

class MultipathFetchFunction final : public core::Function {
 public:
  void on_install(core::HostApi& api, util::ByteView args) override;
  /// Message: "FETCH <url> <stripe_index> <stripe_count>".
  void on_message(core::HostApi& api, util::ByteView payload) override;

 private:
  struct Stripe {
    std::uint64_t handle = 0;
    int index = 0;
  };
  void serve(core::HostApi& api);

  std::string url_;
  int stripe_count_ = 0;
  std::vector<Stripe> stripes_;
  bool fetching_ = false;
  bool fetched_ = false;
  util::Bytes body_;
};

core::FunctionManifest multipath_manifest();
void register_multipath(core::NativeRegistry& registry);

/// Client-side driver.
class MultipathFetcher {
 public:
  MultipathFetcher(core::BentoClient& bento, int circuits)
      : bento_(bento), circuits_(circuits) {}

  struct Result {
    bool ok = false;
    util::Bytes body;
    double seconds = 0;
    std::vector<std::size_t> per_path_bytes;
  };
  using DoneFn = std::function<void(Result)>;

  /// Deploys the function on `exit_box` and fetches `url` over `circuits`
  /// parallel circuits. `now` supplies timestamps (simulation seconds).
  void fetch(const std::string& exit_box, const std::string& url,
             std::function<double()> now, DoneFn done);

 private:
  core::BentoClient& bento_;
  int circuits_;
};

}  // namespace bento::functions
