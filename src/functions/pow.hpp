// Hashcash-style proof-of-work (paper §9.4 / §11 "Lack of fairness").
//
// The paper repeatedly points at proofs of work [9, 25] as the natural
// client-puzzle mechanism for (a) rate-limiting function uploads and
// (b) hidden-service DDoS defense "as function-specific protocols, rather
// than modifying Tor's existing protocols". This module provides the
// primitive plus a native gatekeeper function that admits messages only
// when they carry a valid stamp.
//
// A stamp over (context, nonce) is valid at difficulty d iff
// SHA-256(context || nonce) has >= d leading zero bits.
#pragma once

#include <cstdint>
#include <optional>

#include "core/api.hpp"
#include "util/bytes.hpp"

namespace bento::functions {

/// Counts leading zero bits of a digest.
int leading_zero_bits(util::ByteView digest);

/// True if `nonce` is a valid stamp for `context` at `difficulty` bits.
bool pow_verify(util::ByteView context, std::uint64_t nonce, int difficulty);

/// Grinds a stamp (client side). Returns nullopt after max_attempts.
std::optional<std::uint64_t> pow_solve(util::ByteView context, int difficulty,
                                       std::uint64_t max_attempts = 1u << 26);

/// Native gatekeeper: install args = one byte of difficulty. Messages are
/// "<nonce-as-u64-hex>:<payload>"; valid stamps get "ADMIT:<payload>"
/// echoed back (a real deployment would forward to the protected service),
/// invalid ones get "DENY".
class PowGateFunction final : public core::Function {
 public:
  void on_install(core::HostApi& api, util::ByteView args) override;
  void on_message(core::HostApi& api, util::ByteView payload) override;

  static constexpr const char* kContext = "bento-pow-gate-v1";

 private:
  int difficulty_ = 16;
  std::uint64_t admitted_ = 0;
  std::uint64_t denied_ = 0;
};

void register_pow_gate(core::NativeRegistry& registry);
core::FunctionManifest pow_gate_manifest();

}  // namespace bento::functions
