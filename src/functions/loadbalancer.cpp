#include "functions/loadbalancer.hpp"

#include <sstream>

#include "core/stemfw.hpp"
#include "obs/trace.hpp"
#include "util/serialize.hpp"

namespace bento::functions {

namespace sb = sandbox;

util::Bytes LoadBalancerConfig::serialize() const {
  util::Writer w;
  w.u32(static_cast<std::uint32_t>(intro_points));
  w.u32(static_cast<std::uint32_t>(max_clients_per_replica));
  w.u64(content_bytes);
  w.u32(static_cast<std::uint32_t>(replica_boxes.size()));
  for (const auto& box : replica_boxes) w.str(box);
  w.u64(static_cast<std::uint64_t>(idle_shutdown_seconds * 1000));
  w.u64(static_cast<std::uint64_t>(health_check_seconds * 1000));
  w.u32(static_cast<std::uint32_t>(health_max_misses));
  return std::move(w).take();
}

LoadBalancerConfig LoadBalancerConfig::deserialize(util::ByteView data) {
  util::Reader r(data);
  LoadBalancerConfig c;
  c.intro_points = static_cast<int>(r.u32());
  c.max_clients_per_replica = static_cast<int>(r.u32());
  c.content_bytes = r.u64();
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) c.replica_boxes.push_back(r.str());
  c.idle_shutdown_seconds = static_cast<double>(r.u64()) / 1000.0;
  c.health_check_seconds = static_cast<double>(r.u64()) / 1000.0;
  c.health_max_misses = static_cast<int>(r.u32());
  r.expect_done();
  return c;
}

util::Bytes ReplicaConfig::serialize() const {
  util::Writer w;
  w.blob(signing_key);
  w.blob(ntor_key);
  w.u64(content_bytes);
  return std::move(w).take();
}

ReplicaConfig ReplicaConfig::deserialize(util::ByteView data) {
  util::Reader r(data);
  ReplicaConfig c;
  c.signing_key = r.blob();
  c.ntor_key = r.blob();
  c.content_bytes = r.u64();
  r.expect_done();
  return c;
}

namespace {
/// Serve `content_bytes` of deterministic data to any stream request.
void attach_content_acceptor(tor::HiddenServiceHost& host, std::uint64_t content_bytes) {
  host.set_stream_acceptor([content_bytes](tor::Stream& stream) {
    stream.set_on_data([&stream, content_bytes](util::ByteView) {
      constexpr std::size_t kChunk = 64 * 1024;
      util::Bytes chunk(kChunk);
      for (std::size_t i = 0; i < kChunk; ++i) {
        chunk[i] = static_cast<std::uint8_t>(i * 31 + 7);
      }
      std::uint64_t left = content_bytes;
      while (left > 0) {
        const std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(left, kChunk));
        stream.send(util::ByteView(chunk.data(), n));
        left -= n;
      }
      stream.end();
    });
    return true;
  });
}
}  // namespace

void LoadBalancerFunction::on_install(core::HostApi& api, util::ByteView args) {
  config_ = LoadBalancerConfig::deserialize(args);
  host_ = &api.stem().create_hidden_service(config_.intro_points);
  attach_content_acceptor(*host_, config_.content_bytes);

  // Local instance is replica[0].
  Replica local;
  local.box = api.box_fingerprint();
  local.remote = false;
  replicas_.push_back(local);
  host_->set_on_load_change([this](std::size_t load) {
    replicas_[0].load = static_cast<int>(load);
    replicas_[0].assigned = std::min(replicas_[0].assigned, replicas_[0].load);
  });

  // Intercept every introduction and route it (paper Figure 4).
  host_->set_intro_interceptor([this, &api](util::ByteView blob) {
    ++introductions_;
    route_introduction(api, blob);
    return false;  // we own the routing decision
  });

  host_->start([&api](bool ok) {
    if (!ok) api.log("loadbalancer: failed to establish introduction points");
  });

  if (config_.idle_shutdown_seconds > 0) {
    api.after(util::Duration::seconds(config_.idle_shutdown_seconds),
              [this, &api] { scale_down_idle(api); });
  }
  if (config_.health_check_seconds > 0) {
    api.after(util::Duration::seconds(config_.health_check_seconds),
              [this, &api] { health_tick(api); });
  }
}

LoadBalancerFunction::Replica* LoadBalancerFunction::least_loaded() {
  Replica* best = nullptr;
  for (auto& replica : replicas_) {
    if (replica.remote && replica.invocation_token.empty()) continue;  // pending
    if (best == nullptr || effective_load(replica) < effective_load(*best)) {
      best = &replica;
    }
  }
  return best;
}

void LoadBalancerFunction::assign_to(core::HostApi& api, Replica& target,
                                     util::ByteView blob) {
  target.assigned++;
  target.idle_since = -1.0;
  if (!target.remote) {
    host_->handle_introduction(blob);
    return;
  }
  util::Bytes payload = util::to_bytes("INTRO:");
  util::append(payload, blob);
  const std::string box = target.box;
  api.invoke_remote(box, target.invocation_token, payload,
                    [this, box](util::Bytes output) {
                      // Replicas report "load:N" on every change.
                      const std::string text = util::to_string(output);
                      if (text.rfind("load:", 0) != 0) return;
                      for (auto& replica : replicas_) {
                        if (replica.box == box) {
                          replica.load = std::stoi(text.substr(5));
                          replica.assigned =
                              std::min(replica.assigned, replica.load);
                        }
                      }
                    });
}

void LoadBalancerFunction::route_introduction(core::HostApi& api,
                                              util::ByteView blob) {
  Replica* target = least_loaded();
  if (target != nullptr &&
      effective_load(*target) < config_.max_clients_per_replica) {
    assign_to(api, *target, blob);
    return;
  }
  // High watermark: everyone is at capacity. Paper §8.2: "chooses from a
  // set of replicas (or spins up a new replica)". Queue the introduction
  // for a fresh replica when one can still be created; fall back to the
  // least-loaded instance otherwise.
  const std::size_t provisioned_slots =
      static_cast<std::size_t>(pending_deploys_) *
      static_cast<std::size_t>(config_.max_clients_per_replica);
  const bool can_scale = next_candidate_ < config_.replica_boxes.size();
  if (can_scale && pending_intros_.size() >= provisioned_slots) {
    scale_up(api);
  }
  if (pending_deploys_ > 0) {
    pending_intros_.emplace_back(blob.begin(), blob.end());
    return;
  }
  if (target != nullptr) assign_to(api, *target, blob);
}

void LoadBalancerFunction::drain_queue(core::HostApi& api, Replica* fresh) {
  int granted = 0;
  while (!pending_intros_.empty()) {
    if (fresh != nullptr && granted < config_.max_clients_per_replica) {
      util::Bytes blob = std::move(pending_intros_.front());
      pending_intros_.erase(pending_intros_.begin());
      assign_to(api, *fresh, blob);
      ++granted;
      continue;
    }
    if (pending_deploys_ > 0) return;  // another deploy will pick these up
    Replica* target = least_loaded();
    if (target == nullptr) return;
    util::Bytes blob = std::move(pending_intros_.front());
    pending_intros_.erase(pending_intros_.begin());
    assign_to(api, *target, blob);
  }
}

void LoadBalancerFunction::scale_up(core::HostApi& api, bool failover_respawn) {
  if (next_candidate_ >= config_.replica_boxes.size()) {
    if (failover_respawn) {
      api.log("loadbalancer: no spare box left to re-spawn a failed replica");
    }
    return;
  }
  const std::string box = config_.replica_boxes[next_candidate_++];
  ++pending_deploys_;

  ReplicaConfig replica_config;
  replica_config.signing_key = host_->identity().signing_key.to_bytes();
  replica_config.ntor_key = host_->identity().ntor_key.to_bytes();
  replica_config.content_bytes = config_.content_bytes;

  core::HostApi::DeploySpec spec;
  spec.box_fingerprint = box;
  spec.manifest = hs_replica_manifest();
  spec.native = "hs-replica";
  spec.args = replica_config.serialize();

  api.log("loadbalancer: scaling up onto " + box);
  api.deploy(spec, [this, box, &api, failover_respawn](bool ok, util::Bytes invocation,
                                                       util::Bytes shutdown) {
    --pending_deploys_;
    if (!ok) {
      api.log("loadbalancer: replica deploy failed on " + box);
      drain_queue(api, nullptr);
      return;
    }
    Replica replica;
    replica.box = box;
    replica.remote = true;
    replica.invocation_token = std::move(invocation);
    replica.shutdown_token = std::move(shutdown);
    replicas_.push_back(std::move(replica));
    peak_replicas_ = std::max(peak_replicas_, static_cast<int>(replicas_.size()));
    if (failover_respawn) {
      // Recovery complete: the clone (same identity keys, same image) is
      // serving where the dead replica was.
      obs::trace(obs::Ev::LbFailover,
                 static_cast<std::uint32_t>(replicas_.size() - 1), 0, /*ok=*/true);
      api.log("loadbalancer: failover replica live on " + box);
    }
    drain_queue(api, &replicas_.back());
  });
}

void LoadBalancerFunction::health_tick(core::HostApi& api) {
  for (std::size_t i = 0; i < replicas_.size();) {
    Replica& replica = replicas_[i];
    if (!replica.remote || replica.invocation_token.empty()) {
      ++i;
      continue;
    }
    if (replica.awaiting_pong) {
      ++replica.missed;
      if (replica.missed >= config_.health_max_misses) {
        ++failovers_;
        api.log("loadbalancer: replica on " + replica.box + " missed " +
                std::to_string(replica.missed) +
                " health checks; failing over");
        obs::trace(obs::Ev::LbFailover, static_cast<std::uint32_t>(i),
                   static_cast<std::uint64_t>(replica.missed), /*ok=*/false);
        replicas_.erase(replicas_.begin() + i);
        // Re-spawn a clone onto the next spare box from the stored identity
        // and image — clients keep resolving the same onion address.
        scale_up(api, /*failover_respawn=*/true);
        continue;
      }
    }
    replica.awaiting_pong = true;
    const std::string box = replica.box;
    api.invoke_remote(box, replica.invocation_token, util::to_bytes("PING"),
                      [this, box](util::Bytes output) {
                        const std::string text = util::to_string(output);
                        if (text.rfind("load:", 0) != 0) return;
                        for (auto& r : replicas_) {
                          if (r.box != box) continue;
                          r.awaiting_pong = false;
                          r.missed = 0;
                          r.load = std::stoi(text.substr(5));
                          r.assigned = std::min(r.assigned, r.load);
                        }
                      });
    ++i;
  }
  api.after(util::Duration::seconds(config_.health_check_seconds),
            [this, &api] { health_tick(api); });
}

void LoadBalancerFunction::scale_down_idle(core::HostApi& api) {
  const double now = api.now().seconds();
  for (auto it = replicas_.begin(); it != replicas_.end();) {
    Replica& replica = *it;
    if (!replica.remote || effective_load(replica) > 0) {
      replica.idle_since = -1.0;
      ++it;
      continue;
    }
    if (replica.idle_since < 0) {
      replica.idle_since = now;
      ++it;
      continue;
    }
    if (now - replica.idle_since >= config_.idle_shutdown_seconds) {
      api.log("loadbalancer: scaling down replica on " + replica.box);
      // Low watermark: idle too long — release the box. We drop our record;
      // the shutdown token terminates the remote function.
      // (Remote shutdown uses the composition channel's connection.)
      it = replicas_.erase(it);
      continue;
    }
    ++it;
  }
  api.after(util::Duration::seconds(config_.idle_shutdown_seconds),
            [this, &api] { scale_down_idle(api); });
}

std::string LoadBalancerFunction::status() const {
  std::ostringstream out;
  out << "replicas:" << replicas_.size() << " peak:" << peak_replicas_
      << " introductions:" << introductions_;
  if (failovers_ > 0) out << " failovers:" << failovers_;
  out << " loads:";
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (i > 0) out << ",";
    out << effective_load(replicas_[i]);
  }
  return out.str();
}

void LoadBalancerFunction::on_message(core::HostApi& api, util::ByteView payload) {
  const std::string text = util::to_string(payload);
  if (text == "status") {
    api.send(util::to_bytes(status()));
    return;
  }
  if (text == "onion") {
    api.send(util::to_bytes(host_ != nullptr ? host_->onion_id() : ""));
    return;
  }
  api.send(util::to_bytes("ERR bad command"));
}

void LoadBalancerFunction::on_shutdown(core::HostApi& api) {
  api.log("loadbalancer: shutting down (" + status() + ")");
}

void HsReplicaFunction::on_install(core::HostApi& api, util::ByteView args) {
  config_ = ReplicaConfig::deserialize(args);
  tor::HiddenServiceHost::Identity identity{
      crypto::SigningKey::from_bytes(config_.signing_key),
      crypto::DhKeyPair::from_bytes(config_.ntor_key)};
  // A replica never publishes or establishes introduction points — it only
  // answers forwarded introductions for the cloned identity.
  host_ = &api.stem().create_hidden_service(identity, 1);
  attach_content_acceptor(*host_, config_.content_bytes);
  host_->set_on_load_change([this, &api](std::size_t load) {
    load_ = load;
    api.send(util::to_bytes("load:" + std::to_string(load)));
  });
}

void HsReplicaFunction::on_message(core::HostApi& api, util::ByteView payload) {
  const std::string text = util::to_string(payload);
  if (text.rfind("INTRO:", 0) == 0) {
    host_->handle_introduction(
        util::ByteView(reinterpret_cast<const std::uint8_t*>(text.data()) + 6,
                       text.size() - 6));
    return;
  }
  if (text == "PING") {
    // Health-check probe: answer with the current load so the front end
    // both confirms liveness and refreshes its load table.
    api.send(util::to_bytes("load:" + std::to_string(load_)));
  }
}

void register_loadbalancer(core::NativeRegistry& registry) {
  registry.add("loadbalancer", [] { return std::make_unique<LoadBalancerFunction>(); });
  registry.add("hs-replica", [] { return std::make_unique<HsReplicaFunction>(); });
}

core::FunctionManifest loadbalancer_manifest() {
  core::FunctionManifest m;
  m.name = "loadbalancer";
  m.required = {sb::Syscall::TorCircuit, sb::Syscall::TorHs, sb::Syscall::TorDirectory,
                sb::Syscall::SpawnFunction, sb::Syscall::Clock, sb::Syscall::Random};
  m.image = core::kImagePythonOpSgx;  // holds the service's private keys (§8.2)
  m.resources.memory_bytes = 32 << 20;
  m.resources.cpu_instructions = 1'000'000'000;
  m.resources.disk_bytes = 4 << 20;
  m.resources.network_bytes = 2ull << 30;
  return m;
}

core::FunctionManifest hs_replica_manifest() {
  core::FunctionManifest m = loadbalancer_manifest();
  m.name = "hs-replica";
  m.required = {sb::Syscall::TorCircuit, sb::Syscall::TorHs, sb::Syscall::Clock,
                sb::Syscall::Random};
  return m;
}

}  // namespace bento::functions
