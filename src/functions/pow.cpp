#include "functions/pow.hpp"

#include "crypto/sha256.hpp"
#include "util/serialize.hpp"

namespace bento::functions {

int leading_zero_bits(util::ByteView digest) {
  int bits = 0;
  for (std::uint8_t byte : digest) {
    if (byte == 0) {
      bits += 8;
      continue;
    }
    for (int i = 7; i >= 0; --i) {
      if (byte & (1u << i)) return bits;
      ++bits;
    }
  }
  return bits;
}

namespace {
crypto::Digest stamp_digest(util::ByteView context, std::uint64_t nonce) {
  util::Writer w;
  w.blob(context);
  w.u64(nonce);
  return crypto::sha256(w.data());
}
}  // namespace

bool pow_verify(util::ByteView context, std::uint64_t nonce, int difficulty) {
  const crypto::Digest d = stamp_digest(context, nonce);
  return leading_zero_bits(util::ByteView(d.data(), d.size())) >= difficulty;
}

std::optional<std::uint64_t> pow_solve(util::ByteView context, int difficulty,
                                       std::uint64_t max_attempts) {
  for (std::uint64_t nonce = 0; nonce < max_attempts; ++nonce) {
    if (pow_verify(context, nonce, difficulty)) return nonce;
  }
  return std::nullopt;
}

void PowGateFunction::on_install(core::HostApi& api, util::ByteView args) {
  if (!args.empty()) difficulty_ = args[0];
  api.log("pow-gate: difficulty " + std::to_string(difficulty_));
}

void PowGateFunction::on_message(core::HostApi& api, util::ByteView payload) {
  const std::string text = util::to_string(payload);
  const auto colon = text.find(':');
  bool ok = false;
  std::string body;
  if (colon != std::string::npos) {
    try {
      const std::uint64_t nonce = std::stoull(text.substr(0, colon), nullptr, 16);
      body = text.substr(colon + 1);
      ok = pow_verify(util::to_bytes(kContext), nonce, difficulty_);
    } catch (const std::exception&) {
      ok = false;
    }
  }
  if (ok) {
    ++admitted_;
    api.send(util::to_bytes("ADMIT:" + body));
  } else {
    ++denied_;
    api.send(util::to_bytes("DENY"));
  }
}

void register_pow_gate(core::NativeRegistry& registry) {
  registry.add("pow-gate", [] { return std::make_unique<PowGateFunction>(); });
}

core::FunctionManifest pow_gate_manifest() {
  core::FunctionManifest m;
  m.name = "pow-gate";
  m.required = {};
  m.resources.memory_bytes = 4 << 20;
  m.resources.cpu_instructions = 100'000'000;
  m.resources.disk_bytes = 1 << 20;
  m.resources.network_bytes = 64 << 20;
  return m;
}

}  // namespace bento::functions
