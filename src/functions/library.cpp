#include "functions/library.hpp"

namespace bento::functions {

namespace sb = sandbox;

namespace {
core::FunctionManifest base_manifest(const std::string& name) {
  core::FunctionManifest m;
  m.name = name;
  m.resources.memory_bytes = 24 << 20;  // §7.3: Bento+Browser ~16-20 MB
  m.resources.cpu_instructions = 80'000'000;
  m.resources.disk_bytes = 16 << 20;
  m.resources.network_bytes = 256 << 20;
  return m;
}
}  // namespace

const std::string& browser_source() {
  // The insight (§7.2): the adversary cannot observe identifiable behaviors
  // if the user is not the one running the web client. Fetch at the box,
  // compress, pad to a multiple of `padding`, ship back — Appendix A.
  static const std::string source = R"(
state = {"padding": 0}

def deliver(final):
    api.send(final)

def fetched(body):
    if body == None:
        api.send("ERR fetch failed")
        return
    compressed = zlib.compress(body)
    final = compressed
    padding = state["padding"]
    if padding > 0:
        if padding - len(final) > 0:
            final = final + os.urandom(padding - len(final))
        else:
            final = final + os.urandom((len(final) + padding) % padding)
    deliver(final)

def on_message(msg):
    req = str(msg).split(" ")
    state["padding"] = int(req[1])
    net.get(req[0], fetched)
)";
  return source;
}

core::FunctionManifest browser_manifest() {
  auto m = base_manifest("browser");
  m.required = {sb::Syscall::NetConnect, sb::Syscall::Random, sb::Syscall::Clock};
  m.image = core::kImagePythonOpSgx;
  return m;
}

const std::string& dropbox_source() {
  // §9.2: ephemeral in-network storage. The invocation token is the
  // capability; data expires after max_gets reads or expiry seconds.
  static const std::string source = R"(
state = {"gets": 0, "max_gets": 100, "stored": False, "expiry": 0.0}

def expire():
    fs.delete("drop.bin")
    state["stored"] = False

def on_install(args):
    a = str(args)
    if len(a) > 0:
        state["expiry"] = float(a)

def on_message(msg):
    cmd = str(sub(msg, 0, 4))
    if cmd == "PUT:":
        fs.write("drop.bin", sub(msg, 4))
        state["stored"] = True
        state["gets"] = 0
        if state["expiry"] > 0:
            time.after(state["expiry"], expire)
        api.send("OK")
    elif cmd == "GET:":
        data = fs.read("drop.bin")
        if data == None:
            api.send("MISSING")
        else:
            state["gets"] += 1
            api.send(data)
            if state["gets"] >= state["max_gets"]:
                expire()
    elif cmd == "DEL:":
        expire()
        api.send("OK")
    else:
        api.send("ERR bad command")
)";
  return source;
}

core::FunctionManifest dropbox_manifest() {
  auto m = base_manifest("dropbox");
  m.required = {sb::Syscall::FsRead, sb::Syscall::FsWrite, sb::Syscall::FsDelete,
                sb::Syscall::Clock};
  m.image = core::kImagePythonOpSgx;  // encrypted at rest (§6.2)
  return m;
}

const std::string& cover_source() {
  // §9.1: keep the circuit transmitting at a fixed rate; junk when idle.
  static const std::string source = R"(
state = {"interval": 1.0, "on": False}

def tick():
    if state["on"]:
        api.send(os.urandom(490))
        time.after(state["interval"], tick)

def on_message(msg):
    m = str(msg)
    if m.startswith("start "):
        state["interval"] = float(sub(m, 6))
        state["on"] = True
        tick()
    elif m == "stop":
        state["on"] = False
        api.send("stopped")
    else:
        api.send("ERR bad command")
)";
  return source;
}

core::FunctionManifest cover_manifest() {
  auto m = base_manifest("cover");
  m.required = {sb::Syscall::Random, sb::Syscall::Clock};
  return m;
}

const std::string& policy_query_source() {
  static const std::string source = R"(
state = {"policy": ""}

def on_install(args):
    state["policy"] = str(args)

def on_message(msg):
    api.send(state["policy"])
)";
  return source;
}

core::FunctionManifest policy_query_manifest() {
  auto m = base_manifest("policy-query");
  m.required = {};
  m.resources.memory_bytes = 4 << 20;
  return m;
}

}  // namespace bento::functions
