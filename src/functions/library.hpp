// The Bento function library: BentoScript sources and manifests for the
// paper's functions (§7 Browser, §9.1 Cover, §9.2 Dropbox, plus the §5.5
// policy-query helper). Native functions (LoadBalancer §8, Shard §9.3) live
// in their own headers.
//
// Invocation protocols (payload of an Invoke message):
//   Browser : "<url> <padding_bytes>"      -> one Output: compressed page
//             padded to a multiple of padding_bytes (0 = no padding)
//   Dropbox : "PUT:<bytes>" -> "OK"        (stores in the chrooted FS —
//             encrypted at rest under python-op-sgx)
//             "GET:"        -> stored bytes | "MISSING"
//             "DEL:"        -> "OK"
//   Cover   : "start <seconds_between_cells>" -> junk cell stream
//             "stop"                          -> silence
//   Policy  : anything -> the node's middlebox policy text
#pragma once

#include <string>

#include "core/policy.hpp"

namespace bento::functions {

/// Appendix-A Browser, continuation-passing over the event-driven host.
const std::string& browser_source();
core::FunctionManifest browser_manifest();

const std::string& dropbox_source();
core::FunctionManifest dropbox_manifest();

const std::string& cover_source();
core::FunctionManifest cover_manifest();

/// Returns its install args (the operator passes the policy text) on any
/// invocation — the paper's "function that runs on a well-known port that
/// returns the node's middlebox node policy".
const std::string& policy_query_source();
core::FunctionManifest policy_query_manifest();

}  // namespace bento::functions
