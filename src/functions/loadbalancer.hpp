// LoadBalancer (paper §8): autoscaling hidden-service replicas.
//
// The front end runs a hidden service exactly like today's Tor — one set of
// introduction points, one published descriptor — but instead of answering
// rendezvous requests itself beyond a per-instance cap, it *forwards* the
// INTRODUCE2 blob to a replica, which connects to the client's rendezvous
// point on the front end's behalf. Replica creation copies the service's
// hostname and private keys to a fresh Bento box (which is why the paper
// deploys LoadBalancer inside conclaves), is fully transparent to clients,
// and is driven by load watermarks fed by periodic replica reports.
//
// Both halves are native functions:
//   "loadbalancer" — the front end (install args: LoadBalancerConfig)
//   "hs-replica"   — a replica  (install args: ReplicaConfig; deployed by
//                    the front end via the composition API)
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/api.hpp"
#include "tor/hs.hpp"
#include "util/bytes.hpp"

namespace bento::functions {

struct LoadBalancerConfig {
  int intro_points = 3;
  /// High watermark: assignments per replica before scaling out (paper §8.3
  /// runs with 2).
  int max_clients_per_replica = 2;
  /// Bytes each replica serves per client request (10 MB in Figure 5).
  std::uint64_t content_bytes = 10'000'000;
  /// Candidate Bento boxes for replicas, in deployment order.
  std::vector<std::string> replica_boxes;
  /// Replicas idle for this long are scaled back down (0 disables).
  double idle_shutdown_seconds = 20.0;
  /// Ping remote replicas this often (0 disables health checks).
  double health_check_seconds = 0.0;
  /// Consecutive unanswered pings before a replica is declared dead and a
  /// replacement is re-spawned from the stored function image.
  int health_max_misses = 2;

  util::Bytes serialize() const;
  static LoadBalancerConfig deserialize(util::ByteView data);
};

struct ReplicaConfig {
  util::Bytes signing_key;  // service identity (paper: "the private key")
  util::Bytes ntor_key;
  std::uint64_t content_bytes = 0;

  util::Bytes serialize() const;
  static ReplicaConfig deserialize(util::ByteView data);
};

class LoadBalancerFunction final : public core::Function {
 public:
  void on_install(core::HostApi& api, util::ByteView args) override;
  void on_message(core::HostApi& api, util::ByteView payload) override;
  void on_shutdown(core::HostApi& api) override;

 private:
  struct Replica {
    std::string box;
    util::Bytes invocation_token;
    util::Bytes shutdown_token;
    int load = 0;       // last reported / locally tracked
    int assigned = 0;   // optimistic in-flight assignments
    bool remote = false;
    double idle_since = -1.0;
    int missed = 0;            // unanswered health checks in a row
    bool awaiting_pong = false;
  };

  void route_introduction(core::HostApi& api, util::ByteView blob);
  void assign_to(core::HostApi& api, Replica& replica, util::ByteView blob);
  void scale_up(core::HostApi& api, bool failover_respawn = false);
  void health_tick(core::HostApi& api);
  void scale_down_idle(core::HostApi& api);
  void drain_queue(core::HostApi& api, Replica* fresh);
  Replica* least_loaded();
  int effective_load(const Replica& r) const { return std::max(r.load, r.assigned); }
  std::string status() const;

  LoadBalancerConfig config_;
  tor::HiddenServiceHost* host_ = nullptr;  // owned by the Stem session
  std::vector<Replica> replicas_;           // [0] is always the local instance
  std::size_t next_candidate_ = 0;
  int pending_deploys_ = 0;
  std::vector<util::Bytes> pending_intros_;  // waiting for a fresh replica
  int peak_replicas_ = 1;
  std::uint64_t introductions_ = 0;
  int failovers_ = 0;
};

class HsReplicaFunction final : public core::Function {
 public:
  void on_install(core::HostApi& api, util::ByteView args) override;
  void on_message(core::HostApi& api, util::ByteView payload) override;

 private:
  ReplicaConfig config_;
  tor::HiddenServiceHost* host_ = nullptr;
  std::size_t load_ = 0;  // last observed, answered to PINGs
};

/// Registers both natives ("loadbalancer", "hs-replica").
void register_loadbalancer(core::NativeRegistry& registry);

/// Manifests for deploying them.
core::FunctionManifest loadbalancer_manifest();
core::FunctionManifest hs_replica_manifest();

}  // namespace bento::functions
