#include "script/value.hpp"

#include <sstream>

namespace bento::script {

Value Value::list(List items) {
  Value v;
  v.data = std::make_shared<List>(std::move(items));
  return v;
}

Value Value::dict(Dict items) {
  Value v;
  v.data = std::make_shared<Dict>(std::move(items));
  return v;
}

Value Value::native(NativeFn fn) {
  Value v;
  v.data = std::make_shared<NativeFn>(std::move(fn));
  return v;
}

namespace {
[[noreturn]] void type_fail(const char* want, const Value& v) {
  throw TypeError(std::string("expected ") + want + ", got " + v.type_name());
}
}  // namespace

bool Value::as_bool() const {
  if (auto* b = std::get_if<bool>(&data)) return *b;
  type_fail("bool", *this);
}

std::int64_t Value::as_int() const {
  if (auto* i = std::get_if<std::int64_t>(&data)) return *i;
  if (auto* b = std::get_if<bool>(&data)) return *b ? 1 : 0;
  type_fail("int", *this);
}

double Value::as_float() const {
  if (auto* d = std::get_if<double>(&data)) return *d;
  if (auto* i = std::get_if<std::int64_t>(&data)) return static_cast<double>(*i);
  type_fail("float", *this);
}

const std::string& Value::as_str() const {
  if (auto* s = std::get_if<std::string>(&data)) return *s;
  type_fail("str", *this);
}

const util::Bytes& Value::as_bytes() const {
  if (auto* b = std::get_if<util::Bytes>(&data)) return *b;
  type_fail("bytes", *this);
}

List& Value::as_list() const {
  if (auto* l = std::get_if<std::shared_ptr<List>>(&data)) return **l;
  type_fail("list", *this);
}

Dict& Value::as_dict() const {
  if (auto* d = std::get_if<std::shared_ptr<Dict>>(&data)) return **d;
  type_fail("dict", *this);
}

bool Value::truthy() const {
  if (is_none()) return false;
  if (auto* b = std::get_if<bool>(&data)) return *b;
  if (auto* i = std::get_if<std::int64_t>(&data)) return *i != 0;
  if (auto* d = std::get_if<double>(&data)) return *d != 0.0;
  if (auto* s = std::get_if<std::string>(&data)) return !s->empty();
  if (auto* by = std::get_if<util::Bytes>(&data)) return !by->empty();
  if (is_list()) return !as_list().empty();
  if (is_dict()) return !as_dict().empty();
  return true;  // callables
}

bool Value::equals(const Value& other) const {
  if (is_none() || other.is_none()) return is_none() && other.is_none();
  // Numeric cross-type comparison.
  const bool self_num = is_int() || is_float() || is_bool();
  const bool other_num = other.is_int() || other.is_float() || other.is_bool();
  if (self_num && other_num) {
    if (is_float() || other.is_float()) return as_float() == other.as_float();
    return as_int() == other.as_int();
  }
  if (is_str() && other.is_str()) return as_str() == other.as_str();
  if (is_bytes() && other.is_bytes()) return as_bytes() == other.as_bytes();
  if (is_list() && other.is_list()) {
    const List& a = as_list();
    const List& b = other.as_list();
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (!a[i].equals(b[i])) return false;
    }
    return true;
  }
  if (is_dict() && other.is_dict()) {
    const Dict& a = as_dict();
    const Dict& b = other.as_dict();
    if (a.size() != b.size()) return false;
    for (const auto& [k, v] : a) {
      auto it = b.find(k);
      if (it == b.end() || !v.equals(it->second)) return false;
    }
    return true;
  }
  return false;
}

std::string Value::to_display() const {
  std::ostringstream out;
  if (is_none()) {
    out << "None";
  } else if (auto* b = std::get_if<bool>(&data)) {
    out << (*b ? "True" : "False");
  } else if (auto* i = std::get_if<std::int64_t>(&data)) {
    out << *i;
  } else if (auto* d = std::get_if<double>(&data)) {
    out << *d;
  } else if (auto* s = std::get_if<std::string>(&data)) {
    out << *s;
  } else if (auto* by = std::get_if<util::Bytes>(&data)) {
    out << "b'" << util::to_hex(*by) << "'";
  } else if (is_list()) {
    out << "[";
    const List& l = as_list();
    for (std::size_t i = 0; i < l.size(); ++i) {
      if (i > 0) out << ", ";
      out << l[i].to_display();
    }
    out << "]";
  } else if (is_dict()) {
    out << "{";
    bool first = true;
    for (const auto& [k, v] : as_dict()) {
      if (!first) out << ", ";
      first = false;
      out << k << ": " << v.to_display();
    }
    out << "}";
  } else {
    out << "<function>";
  }
  return out.str();
}

const char* Value::type_name() const {
  if (is_none()) return "None";
  if (is_bool()) return "bool";
  if (is_int()) return "int";
  if (is_float()) return "float";
  if (is_str()) return "str";
  if (is_bytes()) return "bytes";
  if (is_list()) return "list";
  if (is_dict()) return "dict";
  return "function";
}

std::size_t Value::memory_estimate() const {
  std::size_t base = sizeof(Value);
  if (auto* s = std::get_if<std::string>(&data)) return base + s->size();
  if (auto* b = std::get_if<util::Bytes>(&data)) return base + b->size();
  if (is_list()) {
    std::size_t total = base;
    for (const auto& v : as_list()) total += v.memory_estimate();
    return total;
  }
  if (is_dict()) {
    std::size_t total = base;
    for (const auto& [k, v] : as_dict()) total += k.size() + v.memory_estimate();
    return total;
  }
  return base;
}

}  // namespace bento::script
