// BentoScript tokens.
//
// BentoScript is the repository's stand-in for the Python the paper's
// functions are written in (Appendix A): dynamically typed, significant
// indentation, a deliberately small surface. The lexer emits Indent/Dedent
// tokens from leading whitespace, Python-style.
#pragma once

#include <cstdint>
#include <string>

namespace bento::script {

enum class TokenType : std::uint8_t {
  // Literals and names.
  Identifier, Int, Float, Str,
  // Keywords.
  KwDef, KwReturn, KwIf, KwElif, KwElse, KwWhile, KwFor, KwIn, KwBreak,
  KwContinue, KwPass, KwAnd, KwOr, KwNot, KwTrue, KwFalse, KwNone,
  // Punctuation / operators.
  LParen, RParen, LBracket, RBracket, LBrace, RBrace,
  Comma, Colon, Dot,
  Assign, PlusAssign, MinusAssign,
  Plus, Minus, Star, Slash, Percent,
  Eq, Ne, Lt, Le, Gt, Ge,
  // Layout.
  Newline, Indent, Dedent, EndOfFile,
};

const char* to_string(TokenType t);

struct Token {
  TokenType type = TokenType::EndOfFile;
  std::string text;       // identifier name / string value
  std::int64_t int_value = 0;
  double float_value = 0.0;
  int line = 0;
};

}  // namespace bento::script
