#include "script/lexer.hpp"

#include <cctype>
#include <map>

namespace bento::script {

const char* to_string(TokenType t) {
  switch (t) {
    case TokenType::Identifier: return "identifier";
    case TokenType::Int: return "int";
    case TokenType::Float: return "float";
    case TokenType::Str: return "string";
    case TokenType::KwDef: return "def";
    case TokenType::KwReturn: return "return";
    case TokenType::KwIf: return "if";
    case TokenType::KwElif: return "elif";
    case TokenType::KwElse: return "else";
    case TokenType::KwWhile: return "while";
    case TokenType::KwFor: return "for";
    case TokenType::KwIn: return "in";
    case TokenType::KwBreak: return "break";
    case TokenType::KwContinue: return "continue";
    case TokenType::KwPass: return "pass";
    case TokenType::KwAnd: return "and";
    case TokenType::KwOr: return "or";
    case TokenType::KwNot: return "not";
    case TokenType::KwTrue: return "True";
    case TokenType::KwFalse: return "False";
    case TokenType::KwNone: return "None";
    case TokenType::LParen: return "(";
    case TokenType::RParen: return ")";
    case TokenType::LBracket: return "[";
    case TokenType::RBracket: return "]";
    case TokenType::LBrace: return "{";
    case TokenType::RBrace: return "}";
    case TokenType::Comma: return ",";
    case TokenType::Colon: return ":";
    case TokenType::Dot: return ".";
    case TokenType::Assign: return "=";
    case TokenType::PlusAssign: return "+=";
    case TokenType::MinusAssign: return "-=";
    case TokenType::Plus: return "+";
    case TokenType::Minus: return "-";
    case TokenType::Star: return "*";
    case TokenType::Slash: return "/";
    case TokenType::Percent: return "%";
    case TokenType::Eq: return "==";
    case TokenType::Ne: return "!=";
    case TokenType::Lt: return "<";
    case TokenType::Le: return "<=";
    case TokenType::Gt: return ">";
    case TokenType::Ge: return ">=";
    case TokenType::Newline: return "newline";
    case TokenType::Indent: return "indent";
    case TokenType::Dedent: return "dedent";
    case TokenType::EndOfFile: return "eof";
  }
  return "?";
}

namespace {
const std::map<std::string, TokenType>& keywords() {
  static const std::map<std::string, TokenType> kw = {
      {"def", TokenType::KwDef},       {"return", TokenType::KwReturn},
      {"if", TokenType::KwIf},         {"elif", TokenType::KwElif},
      {"else", TokenType::KwElse},     {"while", TokenType::KwWhile},
      {"for", TokenType::KwFor},       {"in", TokenType::KwIn},
      {"break", TokenType::KwBreak},   {"continue", TokenType::KwContinue},
      {"pass", TokenType::KwPass},     {"and", TokenType::KwAnd},
      {"or", TokenType::KwOr},         {"not", TokenType::KwNot},
      {"True", TokenType::KwTrue},     {"true", TokenType::KwTrue},
      {"False", TokenType::KwFalse},   {"false", TokenType::KwFalse},
      {"None", TokenType::KwNone},     {"nil", TokenType::KwNone},
  };
  return kw;
}

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src) {}

  std::vector<Token> run() {
    indents_.push_back(0);
    while (pos_ < src_.size()) {
      lex_line();
    }
    // Close the final line and any open indents.
    if (!tokens_.empty() && tokens_.back().type != TokenType::Newline) {
      emit(TokenType::Newline);
    }
    while (indents_.back() > 0) {
      indents_.pop_back();
      emit(TokenType::Dedent);
    }
    emit(TokenType::EndOfFile);
    return std::move(tokens_);
  }

 private:
  void emit(TokenType type) {
    Token t;
    t.type = type;
    t.line = line_;
    tokens_.push_back(std::move(t));
  }

  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char advance() { return src_[pos_++]; }

  void lex_line() {
    // Measure indentation (spaces only; tabs count as 8).
    int indent = 0;
    while (pos_ < src_.size() && (peek() == ' ' || peek() == '\t')) {
      indent += peek() == '\t' ? 8 : 1;
      ++pos_;
    }
    // Blank line or comment-only line: swallow without layout changes.
    if (pos_ >= src_.size()) return;
    if (peek() == '\n') {
      ++pos_;
      ++line_;
      return;
    }
    if (peek() == '#') {
      skip_comment();
      return;
    }

    if (paren_depth_ == 0) handle_indent(indent);

    while (pos_ < src_.size() && peek() != '\n') {
      if (peek() == '#') {
        skip_comment_to_eol();
        break;
      }
      lex_token();
    }
    if (pos_ < src_.size() && peek() == '\n') {
      ++pos_;
      ++line_;
    }
    if (paren_depth_ == 0) {
      if (!tokens_.empty() && tokens_.back().type != TokenType::Newline &&
          tokens_.back().type != TokenType::Indent &&
          tokens_.back().type != TokenType::Dedent) {
        emit(TokenType::Newline);
      }
    }
  }

  void skip_comment() {
    while (pos_ < src_.size() && peek() != '\n') ++pos_;
    if (pos_ < src_.size()) {
      ++pos_;
      ++line_;
    }
  }
  void skip_comment_to_eol() {
    while (pos_ < src_.size() && peek() != '\n') ++pos_;
  }

  void handle_indent(int indent) {
    if (indent > indents_.back()) {
      indents_.push_back(indent);
      emit(TokenType::Indent);
      return;
    }
    while (indent < indents_.back()) {
      indents_.pop_back();
      emit(TokenType::Dedent);
    }
    if (indent != indents_.back()) {
      throw SyntaxError("inconsistent indentation", line_);
    }
  }

  void lex_token() {
    const char c = peek();
    if (c == ' ' || c == '\t' || c == '\r') {
      ++pos_;
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      lex_number();
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      lex_identifier();
      return;
    }
    if (c == '"' || c == '\'') {
      lex_string();
      return;
    }
    if (c == '\\' && peek(1) == '\n') {  // explicit line continuation
      pos_ += 2;
      ++line_;
      return;
    }
    lex_operator();
  }

  void lex_number() {
    Token t;
    t.line = line_;
    std::string digits;
    bool is_float = false;
    while (std::isdigit(static_cast<unsigned char>(peek())) || peek() == '_' ||
           peek() == '.') {
      const char c = advance();
      if (c == '.') {
        if (is_float || !std::isdigit(static_cast<unsigned char>(peek()))) {
          --pos_;  // a trailing '.' is attribute access, not a float
          break;
        }
        is_float = true;
      }
      if (c != '_') digits.push_back(c);
    }
    if (is_float) {
      t.type = TokenType::Float;
      t.float_value = std::stod(digits);
    } else {
      t.type = TokenType::Int;
      t.int_value = std::stoll(digits);
    }
    tokens_.push_back(std::move(t));
  }

  void lex_identifier() {
    Token t;
    t.line = line_;
    std::string name;
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_') {
      name.push_back(advance());
    }
    auto it = keywords().find(name);
    if (it != keywords().end()) {
      t.type = it->second;
    } else {
      t.type = TokenType::Identifier;
      t.text = name;
    }
    tokens_.push_back(std::move(t));
  }

  void lex_string() {
    const char quote = advance();
    Token t;
    t.line = line_;
    t.type = TokenType::Str;
    while (true) {
      if (pos_ >= src_.size() || peek() == '\n') {
        throw SyntaxError("unterminated string", line_);
      }
      char c = advance();
      if (c == quote) break;
      if (c == '\\') {
        const char esc = advance();
        switch (esc) {
          case 'n': t.text.push_back('\n'); break;
          case 't': t.text.push_back('\t'); break;
          case 'r': t.text.push_back('\r'); break;
          case '0': t.text.push_back('\0'); break;
          case '\\': t.text.push_back('\\'); break;
          case '\'': t.text.push_back('\''); break;
          case '"': t.text.push_back('"'); break;
          default: throw SyntaxError("bad escape", line_);
        }
        continue;
      }
      t.text.push_back(c);
    }
    tokens_.push_back(std::move(t));
  }

  void lex_operator() {
    Token t;
    t.line = line_;
    const char c = advance();
    const char next = peek();
    switch (c) {
      case '(': t.type = TokenType::LParen; ++paren_depth_; break;
      case ')': t.type = TokenType::RParen; --paren_depth_; break;
      case '[': t.type = TokenType::LBracket; ++paren_depth_; break;
      case ']': t.type = TokenType::RBracket; --paren_depth_; break;
      case '{': t.type = TokenType::LBrace; ++paren_depth_; break;
      case '}': t.type = TokenType::RBrace; --paren_depth_; break;
      case ',': t.type = TokenType::Comma; break;
      case ':': t.type = TokenType::Colon; break;
      case '.': t.type = TokenType::Dot; break;
      case '+':
        if (next == '=') { ++pos_; t.type = TokenType::PlusAssign; }
        else t.type = TokenType::Plus;
        break;
      case '-':
        if (next == '=') { ++pos_; t.type = TokenType::MinusAssign; }
        else t.type = TokenType::Minus;
        break;
      case '*': t.type = TokenType::Star; break;
      case '/': t.type = TokenType::Slash; break;
      case '%': t.type = TokenType::Percent; break;
      case '=':
        if (next == '=') { ++pos_; t.type = TokenType::Eq; }
        else t.type = TokenType::Assign;
        break;
      case '!':
        if (next == '=') { ++pos_; t.type = TokenType::Ne; }
        else throw SyntaxError("unexpected '!'", line_);
        break;
      case '<':
        if (next == '=') { ++pos_; t.type = TokenType::Le; }
        else t.type = TokenType::Lt;
        break;
      case '>':
        if (next == '=') { ++pos_; t.type = TokenType::Ge; }
        else t.type = TokenType::Gt;
        break;
      case '\n':
        // Inside parentheses a newline is whitespace; lex_line handles the
        // paren_depth_ == 0 case before we get here.
        ++line_;
        t.type = TokenType::Newline;
        if (paren_depth_ > 0) return;
        break;
      default:
        throw SyntaxError(std::string("unexpected character '") + c + "'", line_);
    }
    tokens_.push_back(std::move(t));
  }

  const std::string& src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int paren_depth_ = 0;
  std::vector<int> indents_;
  std::vector<Token> tokens_;
};
}  // namespace

std::vector<Token> tokenize(const std::string& source) { return Lexer(source).run(); }

}  // namespace bento::script
