// BentoScript static verifier (load-time admission control).
//
// A single pass over a parsed Program that runs *before* the container ever
// executes the function:
//
//   * capability inference — every `Attr`/`Call`/`Name` node is walked to
//     compute which host modules (api, fs, net, os, time, zlib, bento) the
//     program can ever reach, mapped to the sandbox::Syscall each binding
//     needs. A bare reference to a module (aliasing, passing it around)
//     conservatively claims the whole module's syscall set, so the inferred
//     set is a sound over-approximation: if the program can perform an
//     effect at runtime, the effect's syscall is in the inferred set.
//   * lint diagnostics — structured {severity, line, code, message} records
//     for unknown names, use-before-definition, unknown module attributes,
//     arity mismatches against the known stdlib/binding signatures,
//     unreachable statements, constant-condition `while` loops, and missing
//     entry points.
//   * static cost — a per-statement lower bound on interpreter steps for
//     the load + on_install path, so trivially over-budget functions can be
//     refused against ResourceLimits without running them.
//
// The analyzer never executes script code and never throws on well-formed
// ASTs; everything it finds is reported through AnalysisResult.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "sandbox/syscalls.hpp"
#include "script/ast.hpp"

namespace bento::script {

enum class Severity : std::uint8_t { Warning, Error };

const char* to_string(Severity s);

/// One lint finding. Codes are stable identifiers (see DESIGN.md):
///   BS101 unknown name                      (error)
///   BS102 use before definition             (error)
///   BS103 unknown module attribute          (error)
///   BS104 arity mismatch                    (error)
///   BS110 unreachable statement             (warning)
///   BS111 constant-condition while loop     (warning)
///   BS112 missing entry points              (warning)
struct Diagnostic {
  Severity severity = Severity::Warning;
  int line = 0;
  std::string code;
  std::string message;

  /// "line 7: error BS101: unknown name 'foo'"
  std::string to_string() const;
};

/// One inferred capability: the program can reach `module`.`attr` (attr
/// empty = the whole module escaped through an alias), which requires
/// `syscall`. `line` is the first reaching use.
struct CapabilityUse {
  sandbox::Syscall syscall = sandbox::Syscall::kCount;
  std::string capability;  // "fs.write", "net.get", "fs.*", ...
  int line = 0;
};

struct AnalysisResult {
  std::vector<Diagnostic> diagnostics;
  /// Host modules the program touches at all (including syscall-free ones
  /// like `api` and `zlib`).
  std::set<std::string> modules;
  /// Deduplicated by syscall; first use wins. Sorted by syscall.
  std::vector<CapabilityUse> required;
  /// Lower bound on interpreter steps for top-level load plus on_install.
  std::uint64_t min_steps = 0;

  bool has_errors() const;
  /// All inferred syscalls as a set (for manifest comparison).
  std::set<sandbox::Syscall> required_syscalls() const;
  /// First diagnostic at Error severity, or nullptr.
  const Diagnostic* first_error() const;
};

/// Analyzes a parsed program. Pure: no side effects, no exceptions for
/// any Program the parser can produce.
AnalysisResult analyze(const Program& program);

}  // namespace bento::script
