#include "script/analyzer.hpp"

#include <algorithm>
#include <limits>
#include <optional>

namespace bento::script {

namespace {

namespace sb = sandbox;

/// Signature of one host binding or stdlib function.
struct BindingSig {
  int min_args = 0;
  int max_args = -1;  // -1 = variadic
  std::optional<sb::Syscall> syscall;
  bool callable = true;  // false: plain attribute (bento.self)
};

using ModuleSig = std::map<std::string, BindingSig>;

/// Host modules installed by ScriptFunction::bind_modules, with the
/// sandbox syscall each binding exercises through HostApi.
const std::map<std::string, ModuleSig>& module_table() {
  static const std::map<std::string, ModuleSig> table = {
      {"api",
       {{"send", {1, 1, std::nullopt}},
        {"handle", {0, 0, std::nullopt}},
        {"send_to", {2, 2, std::nullopt}},
        {"log", {0, -1, std::nullopt}}}},
      {"fs",
       {{"write", {2, 2, sb::Syscall::FsWrite}},
        {"read", {1, 1, sb::Syscall::FsRead}},
        {"delete", {1, 1, sb::Syscall::FsDelete}},
        {"list", {0, 0, sb::Syscall::FsRead}}}},
      {"net", {{"get", {2, 2, sb::Syscall::NetConnect}}}},
      {"os", {{"urandom", {1, 1, sb::Syscall::Random}}}},
      {"time",
       {{"now", {0, 0, sb::Syscall::Clock}},
        {"after", {2, 2, sb::Syscall::Clock}}}},
      {"zlib",
       {{"compress", {1, 1, std::nullopt}},
        {"decompress", {1, 1, std::nullopt}}}},
      {"bento",
       {{"self", {0, 0, std::nullopt, /*callable=*/false}},
        {"deploy", {6, 6, sb::Syscall::SpawnFunction}},
        {"invoke", {4, 4, sb::Syscall::SpawnFunction}}}},
  };
  return table;
}

/// Pure stdlib installed by install_stdlib (arity only; no capabilities).
const std::map<std::string, BindingSig>& builtin_table() {
  auto pure = [](int min_args, int max_args) {
    return BindingSig{min_args, max_args, std::nullopt, true};
  };
  static const std::map<std::string, BindingSig> table = {
      {"len", pure(1, 1)},   {"str", pure(1, 1)},    {"int", pure(1, 1)},
      {"float", pure(1, 1)}, {"bytes", pure(1, 1)},  {"range", pure(1, 3)},
      {"print", pure(0, -1)}, {"min", pure(1, -1)},  {"max", pure(1, -1)},
      {"abs", pure(1, 1)},   {"sub", pure(2, 3)},    {"sorted", pure(1, 1)},
  };
  return table;
}

constexpr std::uint64_t kCostCap = std::numeric_limits<std::uint64_t>::max() / 4;

std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) {
  return a > kCostCap - std::min(b, kCostCap) ? kCostCap : a + b;
}

std::uint64_t sat_mul(std::uint64_t a, std::uint64_t b) {
  if (a == 0 || b == 0) return 0;
  return a > kCostCap / b ? kCostCap : a * b;
}

class Analyzer {
 public:
  explicit Analyzer(const Program& program) : program_(program) {}

  AnalysisResult run() {
    collect_globals(program_.statements, /*inside_def=*/false);
    TopLevel top;
    visit_block(program_.statements, nullptr, &top);
    for (const auto& def : pending_defs_) visit_function(*def);
    lint_entry_points();
    result_.min_steps = program_min_steps();
    finish_capabilities();
    return std::move(result_);
  }

 private:
  /// Ordered view of top-level execution, for use-before-definition.
  struct TopLevel {
    std::set<std::string> defined;
  };
  /// Names local to the function body being visited (params, assignments,
  /// loop variables). Null scope = top level.
  using Locals = std::set<std::string>;

  // ---- pass 1: global name collection ----

  /// Registers every name the program can ever bind at global scope:
  /// top-level assignments/loop vars (at any block nesting) and `def`s at
  /// any depth (the interpreter registers defs globally even when nested).
  void collect_globals(const std::vector<StmtPtr>& body, bool inside_def) {
    for (const auto& stmt : body) {
      const Stmt& s = *stmt;
      switch (s.kind) {
        case StmtKind::Assign:
          if (!inside_def && s.target->kind == ExprKind::Name) {
            global_vars_.insert(s.target->name);
          }
          break;
        case StmtKind::AugAssign:
          if (!inside_def && s.target->kind == ExprKind::Name) {
            global_vars_.insert(s.target->name);
          }
          break;
        case StmtKind::For:
          if (!inside_def) global_vars_.insert(s.name);
          collect_globals(s.body, inside_def);
          break;
        case StmtKind::If:
        case StmtKind::While:
          collect_globals(s.body, inside_def);
          collect_globals(s.orelse, inside_def);
          break;
        case StmtKind::Def:
          defs_[s.def->name].push_back(s.def.get());
          collect_globals(s.def->body, /*inside_def=*/true);
          break;
        default:
          break;
      }
    }
  }

  bool is_global(const std::string& name) const {
    return global_vars_.contains(name) || defs_.contains(name);
  }
  /// A module/builtin is only treated as such if the program never rebinds
  /// the name (shadowing turns it into an ordinary dynamic value).
  bool is_module(const std::string& name, const Locals* locals) const {
    if (locals != nullptr && locals->contains(name)) return false;
    return module_table().contains(name) && !is_global(name);
  }
  bool is_builtin(const std::string& name, const Locals* locals) const {
    if (locals != nullptr && locals->contains(name)) return false;
    return builtin_table().contains(name) && !is_global(name);
  }

  // ---- diagnostics / capabilities ----

  void diag(Severity severity, int line, std::string code, std::string message) {
    result_.diagnostics.push_back(
        {severity, line, std::move(code), std::move(message)});
  }

  void record_capability(const std::string& module, const std::string& attr,
                         std::optional<sb::Syscall> syscall, int line) {
    result_.modules.insert(module);
    if (!syscall.has_value()) return;
    auto [it, inserted] =
        caps_.try_emplace(*syscall, CapabilityUse{*syscall, module + "." + attr, line});
    (void)it;
    (void)inserted;
  }

  /// A module value escaped (aliased, passed as an argument, iterated...):
  /// the program could reach any of its bindings, so claim them all.
  void record_whole_module(const std::string& module, int line) {
    result_.modules.insert(module);
    for (const auto& [attr, sig] : module_table().at(module)) {
      if (sig.syscall.has_value()) record_capability(module, "*", sig.syscall, line);
    }
  }

  void finish_capabilities() {
    for (auto& [syscall, use] : caps_) result_.required.push_back(use);
  }

  // ---- pass 2: expression resolution ----

  void resolve_name(const Expr& e, const Locals* locals, TopLevel* top) {
    if (locals != nullptr && locals->contains(e.name)) return;
    if (is_module(e.name, locals)) {
      record_whole_module(e.name, e.line);
      return;
    }
    if (is_builtin(e.name, locals)) return;
    if (locals != nullptr) {
      // Function bodies run after load: any global binding satisfies.
      if (is_global(e.name)) return;
      diag(Severity::Error, e.line, "BS101", "unknown name '" + e.name + "'");
      return;
    }
    // Top level executes in order.
    if (top->defined.contains(e.name)) return;
    if (is_global(e.name)) {
      diag(Severity::Error, e.line, "BS102",
           "'" + e.name + "' used before its definition");
      return;
    }
    diag(Severity::Error, e.line, "BS101", "unknown name '" + e.name + "'");
  }

  void check_arity(const Expr& call, const std::string& what, int min_args,
                   int max_args) {
    const int got = static_cast<int>(call.args.size());
    if (got < min_args || (max_args >= 0 && got > max_args)) {
      std::string expected =
          max_args < 0 ? "at least " + std::to_string(min_args)
          : min_args == max_args
              ? std::to_string(min_args)
              : std::to_string(min_args) + "-" + std::to_string(max_args);
      diag(Severity::Error, call.line, "BS104",
           what + " takes " + expected + " argument(s), got " +
               std::to_string(got));
    }
  }

  /// Attr node whose base may be a host module. `call` is the enclosing
  /// Call when this attr is being invoked (for arity checking).
  void visit_attr(const Expr& attr, const Expr* call, const Locals* locals,
                  TopLevel* top) {
    if (attr.a->kind == ExprKind::Name && is_module(attr.a->name, locals)) {
      const std::string& module = attr.a->name;
      const ModuleSig& sig = module_table().at(module);
      auto it = sig.find(attr.name);
      if (it == sig.end()) {
        result_.modules.insert(module);
        diag(Severity::Error, attr.line, "BS103",
             "module '" + module + "' has no attribute '" + attr.name + "'");
        return;
      }
      record_capability(module, attr.name, it->second.syscall, attr.line);
      if (call != nullptr) {
        if (!it->second.callable) {
          diag(Severity::Error, call->line, "BS104",
               module + "." + attr.name + " is not callable");
        } else {
          check_arity(*call, module + "." + attr.name, it->second.min_args,
                      it->second.max_args);
        }
      }
      return;
    }
    // Attribute on an arbitrary value: dicts expose any key as an
    // attribute, so nothing can be concluded statically.
    visit_expr(*attr.a, locals, top);
  }

  void visit_call(const Expr& e, const Locals* locals, TopLevel* top) {
    const Expr& callee = *e.a;
    if (callee.kind == ExprKind::Attr) {
      visit_attr(callee, &e, locals, top);
    } else if (callee.kind == ExprKind::Name) {
      if (is_builtin(callee.name, locals)) {
        const BindingSig& sig = builtin_table().at(callee.name);
        check_arity(e, callee.name, sig.min_args, sig.max_args);
      } else {
        resolve_name(callee, locals, top);
        // Calling a user-defined function with a statically-known unique
        // signature: check the argument count.
        auto it = defs_.find(callee.name);
        if (it != defs_.end() && !global_vars_.contains(callee.name) &&
            (locals == nullptr || !locals->contains(callee.name))) {
          const std::size_t params = it->second.front()->params.size();
          const bool uniform = std::all_of(
              it->second.begin(), it->second.end(),
              [&](const FunctionDef* d) { return d->params.size() == params; });
          if (uniform) {
            check_arity(e, callee.name + "()", static_cast<int>(params),
                        static_cast<int>(params));
          }
        }
      }
    } else {
      visit_expr(callee, locals, top);
    }
    for (const auto& arg : e.args) visit_expr(*arg, locals, top);
  }

  void visit_expr(const Expr& e, const Locals* locals, TopLevel* top) {
    switch (e.kind) {
      case ExprKind::Literal:
        return;
      case ExprKind::Name:
        resolve_name(e, locals, top);
        return;
      case ExprKind::ListLit:
        for (const auto& item : e.args) visit_expr(*item, locals, top);
        return;
      case ExprKind::DictLit:
        for (const auto& [k, v] : e.pairs) {
          visit_expr(*k, locals, top);
          visit_expr(*v, locals, top);
        }
        return;
      case ExprKind::Unary:
        visit_expr(*e.a, locals, top);
        return;
      case ExprKind::Binary:
        visit_expr(*e.a, locals, top);
        visit_expr(*e.b, locals, top);
        return;
      case ExprKind::Call:
        visit_call(e, locals, top);
        return;
      case ExprKind::Index:
        visit_expr(*e.a, locals, top);
        visit_expr(*e.b, locals, top);
        return;
      case ExprKind::Attr:
        visit_attr(e, nullptr, locals, top);
        return;
    }
  }

  /// Assignment target: Name targets bind, Index/Attr targets evaluate
  /// their sub-expressions.
  void visit_target(const Expr& target, const Locals* locals, TopLevel* top) {
    switch (target.kind) {
      case ExprKind::Name:
        if (locals == nullptr) top->defined.insert(target.name);
        return;
      case ExprKind::Index:
        visit_expr(*target.a, locals, top);
        visit_expr(*target.b, locals, top);
        return;
      case ExprKind::Attr:
        visit_expr(*target.a, locals, top);
        return;
      default:
        visit_expr(target, locals, top);
        return;
    }
  }

  // ---- pass 2: statement walk ----

  /// True when the loop body is guaranteed to re-test the condition
  /// forever: no break at this loop's nesting level and no return.
  bool block_escapes_loop(const std::vector<StmtPtr>& body) const {
    for (const auto& stmt : body) {
      switch (stmt->kind) {
        case StmtKind::Break:
        case StmtKind::Return:
          return true;
        case StmtKind::If:
          if (block_escapes_loop(stmt->body) || block_escapes_loop(stmt->orelse)) {
            return true;
          }
          break;
        case StmtKind::While:
        case StmtKind::For: {
          // A nested loop consumes its own breaks, but a return escapes.
          if (block_returns(stmt->body)) return true;
          break;
        }
        default:
          break;
      }
    }
    return false;
  }

  bool block_returns(const std::vector<StmtPtr>& body) const {
    for (const auto& stmt : body) {
      if (stmt->kind == StmtKind::Return) return true;
      if (stmt->kind == StmtKind::Def) continue;  // nested def: separate body
      if (block_returns(stmt->body) || block_returns(stmt->orelse)) return true;
    }
    return false;
  }

  void visit_stmt(const Stmt& s, const Locals* locals, TopLevel* top) {
    switch (s.kind) {
      case StmtKind::ExprStmt:
        visit_expr(*s.expr, locals, top);
        return;
      case StmtKind::Assign:
        visit_expr(*s.expr, locals, top);
        visit_target(*s.target, locals, top);
        return;
      case StmtKind::AugAssign:
        // Reads the target, then writes it back.
        if (s.target->kind == ExprKind::Name) {
          resolve_name(*s.target, locals, top);
        } else {
          visit_target(*s.target, locals, top);
        }
        visit_expr(*s.expr, locals, top);
        if (s.target->kind == ExprKind::Name && locals == nullptr) {
          top->defined.insert(s.target->name);
        }
        return;
      case StmtKind::If:
        visit_expr(*s.expr, locals, top);
        visit_block(s.body, locals, top);
        visit_block(s.orelse, locals, top);
        return;
      case StmtKind::While:
        visit_expr(*s.expr, locals, top);
        if (s.expr->kind == ExprKind::Literal && s.expr->literal.truthy() &&
            !block_escapes_loop(s.body)) {
          diag(Severity::Warning, s.line, "BS111",
               "'while' condition is constantly true and the body never "
               "breaks or returns (unbounded loop)");
        }
        visit_block(s.body, locals, top);
        return;
      case StmtKind::For:
        visit_expr(*s.target, locals, top);  // iterable
        if (locals == nullptr) top->defined.insert(s.name);
        visit_block(s.body, locals, top);
        return;
      case StmtKind::Def:
        if (locals == nullptr) top->defined.insert(s.def->name);
        pending_defs_.push_back(s.def.get());
        return;
      case StmtKind::Return:
        if (s.expr != nullptr) visit_expr(*s.expr, locals, top);
        return;
      case StmtKind::Break:
      case StmtKind::Continue:
      case StmtKind::Pass:
        return;
    }
  }

  void visit_block(const std::vector<StmtPtr>& body, const Locals* locals,
                   TopLevel* top) {
    bool dead = false;
    for (const auto& stmt : body) {
      if (dead) {
        diag(Severity::Warning, stmt->line, "BS110",
             "statement is unreachable (follows return/break/continue)");
        dead = false;  // report once per dead region
      }
      visit_stmt(*stmt, locals, top);
      if (stmt->kind == StmtKind::Return || stmt->kind == StmtKind::Break ||
          stmt->kind == StmtKind::Continue) {
        dead = true;
      }
    }
  }

  /// Collects names the interpreter would bind in this function's frame.
  void collect_locals(const std::vector<StmtPtr>& body, Locals& locals) const {
    for (const auto& stmt : body) {
      const Stmt& s = *stmt;
      if (s.kind == StmtKind::Def) continue;  // nested def: own frame
      if ((s.kind == StmtKind::Assign || s.kind == StmtKind::AugAssign) &&
          s.target->kind == ExprKind::Name) {
        locals.insert(s.target->name);
      }
      if (s.kind == StmtKind::For) locals.insert(s.name);
      collect_locals(s.body, locals);
      collect_locals(s.orelse, locals);
    }
  }

  void visit_function(const FunctionDef& def) {
    Locals locals(def.params.begin(), def.params.end());
    collect_locals(def.body, locals);
    visit_block(def.body, &locals, nullptr);
  }

  void lint_entry_points() {
    static const char* kEntryPoints[] = {"on_install", "on_message", "on_shutdown"};
    for (const char* name : kEntryPoints) {
      if (is_global(name)) return;
    }
    diag(Severity::Warning, 0, "BS112",
         "no entry point defined (expected on_install, on_message or "
         "on_shutdown); the function can never react to its container");
  }

  // ---- pass 3: static cost (lower bound on interpreter steps) ----

  std::uint64_t expr_min_steps(const Expr& e) const {
    std::uint64_t cost = 1;  // every eval() charges one step
    if (e.a != nullptr) cost = sat_add(cost, expr_min_steps(*e.a));
    if (e.b != nullptr) cost = sat_add(cost, expr_min_steps(*e.b));
    for (const auto& arg : e.args) cost = sat_add(cost, expr_min_steps(*arg));
    for (const auto& [k, v] : e.pairs) {
      cost = sat_add(cost, sat_add(expr_min_steps(*k), expr_min_steps(*v)));
    }
    return cost;
  }

  /// Iteration count when the For iterable is `range(...)` over integer
  /// literals; nullopt otherwise.
  std::optional<std::uint64_t> literal_range_count(const Expr& iterable) const {
    if (iterable.kind != ExprKind::Call || iterable.a->kind != ExprKind::Name ||
        iterable.a->name != "range" || is_global("range")) {
      return std::nullopt;
    }
    std::vector<std::int64_t> vals;
    for (const auto& arg : iterable.args) {
      const Expr& a = *arg;
      if (a.kind == ExprKind::Literal && a.literal.is_int()) {
        vals.push_back(a.literal.as_int());
      } else {
        return std::nullopt;
      }
    }
    std::int64_t lo = 0, hi = 0, step = 1;
    if (vals.size() == 1) {
      hi = vals[0];
    } else if (vals.size() == 2) {
      lo = vals[0];
      hi = vals[1];
    } else if (vals.size() == 3) {
      lo = vals[0];
      hi = vals[1];
      step = vals[2];
      if (step == 0) return std::nullopt;
    } else {
      return std::nullopt;
    }
    if (step > 0 && hi > lo) {
      return static_cast<std::uint64_t>((hi - lo + step - 1) / step);
    }
    if (step < 0 && lo > hi) {
      return static_cast<std::uint64_t>((lo - hi - step - 1) / -step);
    }
    return 0;
  }

  std::uint64_t stmt_min_steps(const Stmt& s) const {
    std::uint64_t cost = 1;  // exec() charges one step per statement
    switch (s.kind) {
      case StmtKind::ExprStmt:
      case StmtKind::Return:
        if (s.expr != nullptr) cost = sat_add(cost, expr_min_steps(*s.expr));
        return cost;
      case StmtKind::Assign:
      case StmtKind::AugAssign:
        return sat_add(cost, expr_min_steps(*s.expr));
      case StmtKind::If: {
        cost = sat_add(cost, expr_min_steps(*s.expr));
        return sat_add(cost, std::min(block_min_steps(s.body),
                                      block_min_steps(s.orelse)));
      }
      case StmtKind::While:
        // May run zero iterations — unless the condition is constantly
        // true with no way out, in which case the statement never ends.
        cost = sat_add(cost, expr_min_steps(*s.expr));
        if (s.expr->kind == ExprKind::Literal && s.expr->literal.truthy() &&
            !block_escapes_loop(s.body)) {
          return kCostCap;
        }
        return cost;
      case StmtKind::For: {
        cost = sat_add(cost, expr_min_steps(*s.target));
        if (auto n = literal_range_count(*s.target)) {
          // Each iteration: one step in the loop driver plus the body.
          cost = sat_add(cost, sat_mul(*n, sat_add(1, block_min_steps(s.body))));
        }
        return cost;
      }
      default:
        return cost;
    }
  }

  std::uint64_t block_min_steps(const std::vector<StmtPtr>& body) const {
    std::uint64_t cost = 0;
    for (const auto& stmt : body) {
      cost = sat_add(cost, stmt_min_steps(*stmt));
      // A lower bound must stop at the first statement that unconditionally
      // leaves the block.
      if (stmt->kind == StmtKind::Return || stmt->kind == StmtKind::Break ||
          stmt->kind == StmtKind::Continue) {
        break;
      }
    }
    return cost;
  }

  std::uint64_t program_min_steps() const {
    std::uint64_t cost = block_min_steps(program_.statements);
    auto it = defs_.find("on_install");
    if (it != defs_.end()) {
      cost = sat_add(cost, block_min_steps(it->second.back()->body));
    }
    return cost;
  }

  const Program& program_;
  AnalysisResult result_;
  std::set<std::string> global_vars_;
  std::map<std::string, std::vector<const FunctionDef*>> defs_;
  std::vector<const FunctionDef*> pending_defs_;
  std::map<sb::Syscall, CapabilityUse> caps_;
};

}  // namespace

const char* to_string(Severity s) {
  return s == Severity::Error ? "error" : "warning";
}

std::string Diagnostic::to_string() const {
  return "line " + std::to_string(line) + ": " + script::to_string(severity) +
         " " + code + ": " + message;
}

bool AnalysisResult::has_errors() const {
  return first_error() != nullptr;
}

const Diagnostic* AnalysisResult::first_error() const {
  for (const auto& d : diagnostics) {
    if (d.severity == Severity::Error) return &d;
  }
  return nullptr;
}

std::set<sandbox::Syscall> AnalysisResult::required_syscalls() const {
  std::set<sandbox::Syscall> out;
  for (const auto& use : required) out.insert(use.syscall);
  return out;
}

AnalysisResult analyze(const Program& program) {
  return Analyzer(program).run();
}

}  // namespace bento::script
