#include "script/parser.hpp"

namespace bento::script {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  std::unique_ptr<Program> run() {
    auto program = std::make_unique<Program>();
    skip_newlines();
    while (!at(TokenType::EndOfFile)) {
      program->statements.push_back(statement());
      skip_newlines();
    }
    return program;
  }

 private:
  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool at(TokenType t) const { return peek().type == t; }
  const Token& advance() { return tokens_[pos_++]; }
  bool match(TokenType t) {
    if (!at(t)) return false;
    ++pos_;
    return true;
  }
  const Token& expect(TokenType t, const char* context) {
    if (!at(t)) {
      throw SyntaxError(std::string("expected ") + to_string(t) + " " + context +
                            ", found " + to_string(peek().type),
                        peek().line);
    }
    return advance();
  }
  void skip_newlines() {
    while (at(TokenType::Newline)) ++pos_;
  }

  // ---- statements ----

  StmtPtr statement() {
    switch (peek().type) {
      case TokenType::KwDef: return def_statement();
      case TokenType::KwIf: return if_statement();
      case TokenType::KwWhile: return while_statement();
      case TokenType::KwFor: return for_statement();
      case TokenType::KwReturn: return simple_tail(StmtKind::Return, true);
      case TokenType::KwBreak: return simple_tail(StmtKind::Break, false);
      case TokenType::KwContinue: return simple_tail(StmtKind::Continue, false);
      case TokenType::KwPass: return simple_tail(StmtKind::Pass, false);
      default: return expr_or_assign();
    }
  }

  StmtPtr simple_tail(StmtKind kind, bool takes_expr) {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = kind;
    stmt->line = advance().line;
    if (takes_expr && !at(TokenType::Newline) && !at(TokenType::EndOfFile)) {
      stmt->expr = expression();
    }
    end_of_statement();
    return stmt;
  }

  void end_of_statement() {
    if (at(TokenType::EndOfFile)) return;
    expect(TokenType::Newline, "at end of statement");
  }

  std::vector<StmtPtr> block() {
    expect(TokenType::Colon, "before block");
    expect(TokenType::Newline, "before block");
    skip_newlines();
    expect(TokenType::Indent, "to open block");
    std::vector<StmtPtr> body;
    skip_newlines();
    while (!at(TokenType::Dedent) && !at(TokenType::EndOfFile)) {
      body.push_back(statement());
      skip_newlines();
    }
    expect(TokenType::Dedent, "to close block");
    if (body.empty()) throw SyntaxError("empty block", peek().line);
    return body;
  }

  StmtPtr def_statement() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::Def;
    stmt->line = advance().line;
    auto def = std::make_shared<FunctionDef>();
    def->line = stmt->line;
    def->name = expect(TokenType::Identifier, "after def").text;
    expect(TokenType::LParen, "after function name");
    if (!at(TokenType::RParen)) {
      do {
        def->params.push_back(expect(TokenType::Identifier, "in parameter list").text);
      } while (match(TokenType::Comma));
    }
    expect(TokenType::RParen, "after parameters");
    def->body = block();
    stmt->def = std::move(def);
    return stmt;
  }

  StmtPtr if_statement() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::If;
    stmt->line = advance().line;
    stmt->expr = expression();
    stmt->body = block();
    skip_newlines();
    if (at(TokenType::KwElif)) {
      // Desugar elif into else { if ... }.
      stmt->orelse.push_back(if_statement_from_elif());
    } else if (match(TokenType::KwElse)) {
      stmt->orelse = block();
    }
    return stmt;
  }

  StmtPtr if_statement_from_elif() {
    // Current token is KwElif; treat it as a nested if.
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::If;
    stmt->line = advance().line;
    stmt->expr = expression();
    stmt->body = block();
    skip_newlines();
    if (at(TokenType::KwElif)) {
      stmt->orelse.push_back(if_statement_from_elif());
    } else if (match(TokenType::KwElse)) {
      stmt->orelse = block();
    }
    return stmt;
  }

  StmtPtr while_statement() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::While;
    stmt->line = advance().line;
    stmt->expr = expression();
    stmt->body = block();
    return stmt;
  }

  StmtPtr for_statement() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::For;
    stmt->line = advance().line;
    stmt->name = expect(TokenType::Identifier, "after for").text;
    expect(TokenType::KwIn, "in for statement");
    stmt->target = expression();
    stmt->body = block();
    return stmt;
  }

  StmtPtr expr_or_assign() {
    const int line = peek().line;
    ExprPtr first = expression();
    if (at(TokenType::Assign) || at(TokenType::PlusAssign) ||
        at(TokenType::MinusAssign)) {
      const TokenType op = advance().type;
      if (first->kind != ExprKind::Name && first->kind != ExprKind::Index &&
          first->kind != ExprKind::Attr) {
        throw SyntaxError("invalid assignment target", line);
      }
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = op == TokenType::Assign ? StmtKind::Assign : StmtKind::AugAssign;
      stmt->op = op;
      stmt->line = line;
      stmt->target = std::move(first);
      stmt->expr = expression();
      end_of_statement();
      return stmt;
    }
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::ExprStmt;
    stmt->line = line;
    stmt->expr = std::move(first);
    end_of_statement();
    return stmt;
  }

  // ---- expressions (precedence climbing) ----

  ExprPtr expression() { return or_expr(); }

  ExprPtr make_binary(TokenType op, int line, ExprPtr a, ExprPtr b) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::Binary;
    e->op = op;
    e->line = line;
    e->a = std::move(a);
    e->b = std::move(b);
    return e;
  }

  ExprPtr or_expr() {
    ExprPtr left = and_expr();
    while (at(TokenType::KwOr)) {
      const int line = advance().line;
      left = make_binary(TokenType::KwOr, line, std::move(left), and_expr());
    }
    return left;
  }

  ExprPtr and_expr() {
    ExprPtr left = not_expr();
    while (at(TokenType::KwAnd)) {
      const int line = advance().line;
      left = make_binary(TokenType::KwAnd, line, std::move(left), not_expr());
    }
    return left;
  }

  ExprPtr not_expr() {
    if (at(TokenType::KwNot)) {
      const int line = advance().line;
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::Unary;
      e->op = TokenType::KwNot;
      e->line = line;
      e->a = not_expr();
      return e;
    }
    return comparison();
  }

  ExprPtr comparison() {
    ExprPtr left = additive();
    while (at(TokenType::Eq) || at(TokenType::Ne) || at(TokenType::Lt) ||
           at(TokenType::Le) || at(TokenType::Gt) || at(TokenType::Ge) ||
           at(TokenType::KwIn)) {
      const Token& t = advance();
      left = make_binary(t.type, t.line, std::move(left), additive());
    }
    return left;
  }

  ExprPtr additive() {
    ExprPtr left = multiplicative();
    while (at(TokenType::Plus) || at(TokenType::Minus)) {
      const Token& t = advance();
      left = make_binary(t.type, t.line, std::move(left), multiplicative());
    }
    return left;
  }

  ExprPtr multiplicative() {
    ExprPtr left = unary();
    while (at(TokenType::Star) || at(TokenType::Slash) || at(TokenType::Percent)) {
      const Token& t = advance();
      left = make_binary(t.type, t.line, std::move(left), unary());
    }
    return left;
  }

  ExprPtr unary() {
    if (at(TokenType::Minus)) {
      const int line = advance().line;
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::Unary;
      e->op = TokenType::Minus;
      e->line = line;
      e->a = unary();
      return e;
    }
    return postfix();
  }

  ExprPtr postfix() {
    ExprPtr e = primary();
    while (true) {
      if (at(TokenType::LParen)) {
        const int line = advance().line;
        auto call = std::make_unique<Expr>();
        call->kind = ExprKind::Call;
        call->line = line;
        call->a = std::move(e);
        if (!at(TokenType::RParen)) {
          do {
            call->args.push_back(expression());
          } while (match(TokenType::Comma));
        }
        expect(TokenType::RParen, "after arguments");
        e = std::move(call);
      } else if (at(TokenType::LBracket)) {
        const int line = advance().line;
        auto idx = std::make_unique<Expr>();
        idx->kind = ExprKind::Index;
        idx->line = line;
        idx->a = std::move(e);
        idx->b = expression();
        expect(TokenType::RBracket, "after index");
        e = std::move(idx);
      } else if (at(TokenType::Dot)) {
        const int line = advance().line;
        auto attr = std::make_unique<Expr>();
        attr->kind = ExprKind::Attr;
        attr->line = line;
        attr->name = expect(TokenType::Identifier, "after '.'").text;
        attr->a = std::move(e);
        e = std::move(attr);
      } else {
        return e;
      }
    }
  }

  ExprPtr primary() {
    const Token& t = peek();
    auto e = std::make_unique<Expr>();
    e->line = t.line;
    switch (t.type) {
      case TokenType::Int:
        e->kind = ExprKind::Literal;
        e->literal = Value::integer(t.int_value);
        ++pos_;
        return e;
      case TokenType::Float:
        e->kind = ExprKind::Literal;
        e->literal = Value::real(t.float_value);
        ++pos_;
        return e;
      case TokenType::Str:
        e->kind = ExprKind::Literal;
        e->literal = Value::str(t.text);
        ++pos_;
        return e;
      case TokenType::KwTrue:
      case TokenType::KwFalse:
        e->kind = ExprKind::Literal;
        e->literal = Value::boolean(t.type == TokenType::KwTrue);
        ++pos_;
        return e;
      case TokenType::KwNone:
        e->kind = ExprKind::Literal;
        ++pos_;
        return e;
      case TokenType::Identifier:
        e->kind = ExprKind::Name;
        e->name = t.text;
        ++pos_;
        return e;
      case TokenType::LParen: {
        ++pos_;
        ExprPtr inner = expression();
        expect(TokenType::RParen, "after parenthesized expression");
        return inner;
      }
      case TokenType::LBracket: {
        ++pos_;
        e->kind = ExprKind::ListLit;
        if (!at(TokenType::RBracket)) {
          do {
            e->args.push_back(expression());
          } while (match(TokenType::Comma) && !at(TokenType::RBracket));
        }
        expect(TokenType::RBracket, "after list literal");
        return e;
      }
      case TokenType::LBrace: {
        ++pos_;
        e->kind = ExprKind::DictLit;
        if (!at(TokenType::RBrace)) {
          do {
            ExprPtr key = expression();
            expect(TokenType::Colon, "in dict literal");
            ExprPtr value = expression();
            e->pairs.emplace_back(std::move(key), std::move(value));
          } while (match(TokenType::Comma) && !at(TokenType::RBrace));
        }
        expect(TokenType::RBrace, "after dict literal");
        return e;
      }
      default:
        throw SyntaxError(std::string("unexpected token ") + to_string(t.type),
                          t.line);
    }
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

std::unique_ptr<Program> parse(const std::string& source) {
  return Parser(tokenize(source)).run();
}

}  // namespace bento::script
