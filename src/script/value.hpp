// BentoScript runtime values.
//
// A small dynamic type system: None, bool, int, float, str, bytes, list,
// dict, and callables (native or script-defined). Lists and dicts have
// reference semantics (shared_ptr), like Python.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "util/bytes.hpp"

namespace bento::script {

class Interpreter;
struct Value;

using List = std::vector<Value>;
using Dict = std::map<std::string, Value>;
using NativeFn = std::function<Value(Interpreter&, std::vector<Value>&)>;

struct FunctionDef;  // AST node, defined in ast.hpp

/// Script-level callable (a `def`), closed over the global scope only.
struct ScriptFn {
  const FunctionDef* def = nullptr;
};

class TypeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct Value {
  std::variant<std::monostate, bool, std::int64_t, double, std::string,
               util::Bytes, std::shared_ptr<List>, std::shared_ptr<Dict>,
               std::shared_ptr<NativeFn>, ScriptFn>
      data;

  // Aggregate (no user-declared constructors) so Value{{x}} works.
  static Value none() { return Value{}; }
  static Value boolean(bool b) { return Value{{b}}; }
  static Value integer(std::int64_t i) { return Value{{i}}; }
  static Value real(double d) { return Value{{d}}; }
  static Value str(std::string s) { return Value{{std::move(s)}}; }
  static Value bytes(util::Bytes b) { return Value{{std::move(b)}}; }
  static Value list(List items = {});
  static Value dict(Dict items = {});
  static Value native(NativeFn fn);

  bool is_none() const { return std::holds_alternative<std::monostate>(data); }
  bool is_bool() const { return std::holds_alternative<bool>(data); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(data); }
  bool is_float() const { return std::holds_alternative<double>(data); }
  bool is_str() const { return std::holds_alternative<std::string>(data); }
  bool is_bytes() const { return std::holds_alternative<util::Bytes>(data); }
  bool is_list() const { return std::holds_alternative<std::shared_ptr<List>>(data); }
  bool is_dict() const { return std::holds_alternative<std::shared_ptr<Dict>>(data); }
  bool is_callable() const {
    return std::holds_alternative<std::shared_ptr<NativeFn>>(data) ||
           std::holds_alternative<ScriptFn>(data);
  }

  /// Typed accessors; throw TypeError with a readable message on mismatch.
  bool as_bool() const;
  std::int64_t as_int() const;
  double as_float() const;       // accepts int too
  const std::string& as_str() const;
  const util::Bytes& as_bytes() const;
  List& as_list() const;
  Dict& as_dict() const;

  /// Python-style truthiness.
  bool truthy() const;

  /// Structural equality (None==None, numeric cross-type, deep containers).
  bool equals(const Value& other) const;

  /// repr-ish rendering for print()/errors.
  std::string to_display() const;
  /// Type name for diagnostics ("int", "list", ...).
  const char* type_name() const;

  /// Rough heap footprint, for sandbox memory accounting.
  std::size_t memory_estimate() const;
};

}  // namespace bento::script
