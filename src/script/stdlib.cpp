// Pure (capability-free) standard library for BentoScript.
#include <algorithm>

#include "script/interp.hpp"

namespace bento::script {

namespace {
void check_arity(const std::vector<Value>& args, std::size_t n, const char* name) {
  if (args.size() != n) {
    throw TypeError(std::string(name) + "() takes " + std::to_string(n) +
                    " argument(s), got " + std::to_string(args.size()));
  }
}
}  // namespace

void install_stdlib(Interpreter& interp) {
  interp.bind("len", Value::native([](Interpreter&, std::vector<Value>& args) {
    check_arity(args, 1, "len");
    const Value& v = args[0];
    if (v.is_str()) return Value::integer(static_cast<std::int64_t>(v.as_str().size()));
    if (v.is_bytes()) {
      return Value::integer(static_cast<std::int64_t>(v.as_bytes().size()));
    }
    if (v.is_list()) return Value::integer(static_cast<std::int64_t>(v.as_list().size()));
    if (v.is_dict()) return Value::integer(static_cast<std::int64_t>(v.as_dict().size()));
    throw TypeError(std::string("len() of ") + v.type_name());
  }));

  interp.bind("str", Value::native([](Interpreter&, std::vector<Value>& args) {
    check_arity(args, 1, "str");
    if (args[0].is_bytes()) {
      const util::Bytes& b = args[0].as_bytes();
      return Value::str(std::string(b.begin(), b.end()));
    }
    return Value::str(args[0].to_display());
  }));

  interp.bind("int", Value::native([](Interpreter&, std::vector<Value>& args) {
    check_arity(args, 1, "int");
    const Value& v = args[0];
    if (v.is_int() || v.is_bool()) return Value::integer(v.as_int());
    if (v.is_float()) return Value::integer(static_cast<std::int64_t>(v.as_float()));
    if (v.is_str()) {
      try {
        return Value::integer(std::stoll(v.as_str()));
      } catch (const std::exception&) {
        throw TypeError("int(): cannot parse '" + v.as_str() + "'");
      }
    }
    throw TypeError(std::string("int() of ") + v.type_name());
  }));

  interp.bind("float", Value::native([](Interpreter&, std::vector<Value>& args) {
    check_arity(args, 1, "float");
    const Value& v = args[0];
    if (v.is_str()) {
      try {
        return Value::real(std::stod(v.as_str()));
      } catch (const std::exception&) {
        throw TypeError("float(): cannot parse '" + v.as_str() + "'");
      }
    }
    return Value::real(v.as_float());
  }));

  interp.bind("bytes", Value::native([](Interpreter&, std::vector<Value>& args) {
    check_arity(args, 1, "bytes");
    const Value& v = args[0];
    if (v.is_bytes()) return v;
    if (v.is_str()) return Value::bytes(util::to_bytes(v.as_str()));
    if (v.is_int()) return Value::bytes(util::Bytes(static_cast<std::size_t>(v.as_int()), 0));
    if (v.is_list()) {
      util::Bytes out;
      for (const auto& item : v.as_list()) {
        const std::int64_t b = item.as_int();
        if (b < 0 || b > 255) throw TypeError("bytes(): value out of range");
        out.push_back(static_cast<std::uint8_t>(b));
      }
      return Value::bytes(std::move(out));
    }
    throw TypeError(std::string("bytes() of ") + v.type_name());
  }));

  interp.bind("range", Value::native([](Interpreter&, std::vector<Value>& args) {
    std::int64_t lo = 0, hi = 0, step = 1;
    if (args.size() == 1) {
      hi = args[0].as_int();
    } else if (args.size() == 2) {
      lo = args[0].as_int();
      hi = args[1].as_int();
    } else if (args.size() == 3) {
      lo = args[0].as_int();
      hi = args[1].as_int();
      step = args[2].as_int();
      if (step == 0) throw TypeError("range() step cannot be 0");
    } else {
      throw TypeError("range() takes 1-3 arguments");
    }
    if ((hi - lo) * (step > 0 ? 1 : -1) > 10'000'000) {
      throw TypeError("range() too large");
    }
    List out;
    if (step > 0) {
      for (std::int64_t i = lo; i < hi; i += step) out.push_back(Value::integer(i));
    } else {
      for (std::int64_t i = lo; i > hi; i += step) out.push_back(Value::integer(i));
    }
    return Value::list(std::move(out));
  }));

  interp.bind("print", Value::native([](Interpreter& in, std::vector<Value>& args) {
    std::string line;
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (i > 0) line += " ";
      line += args[i].to_display();
    }
    in.print(line);
    return Value::none();
  }));

  interp.bind("min", Value::native([](Interpreter&, std::vector<Value>& args) {
    if (args.empty()) throw TypeError("min() needs arguments");
    const std::vector<Value>* items = &args;
    if (args.size() == 1 && args[0].is_list()) items = &args[0].as_list();
    if (items->empty()) throw TypeError("min() of empty list");
    Value best = (*items)[0];
    for (const auto& v : *items) {
      if (v.as_float() < best.as_float()) best = v;
    }
    return best;
  }));

  interp.bind("max", Value::native([](Interpreter&, std::vector<Value>& args) {
    if (args.empty()) throw TypeError("max() needs arguments");
    const std::vector<Value>* items = &args;
    if (args.size() == 1 && args[0].is_list()) items = &args[0].as_list();
    if (items->empty()) throw TypeError("max() of empty list");
    Value best = (*items)[0];
    for (const auto& v : *items) {
      if (v.as_float() > best.as_float()) best = v;
    }
    return best;
  }));

  interp.bind("abs", Value::native([](Interpreter&, std::vector<Value>& args) {
    check_arity(args, 1, "abs");
    if (args[0].is_int()) {
      const std::int64_t v = args[0].as_int();
      return Value::integer(v < 0 ? -v : v);
    }
    const double v = args[0].as_float();
    return Value::real(v < 0 ? -v : v);
  }));

  // sub(x, start [, count]) — slice of a str/bytes/list (Python x[a:a+n]).
  interp.bind("sub", Value::native([](Interpreter&, std::vector<Value>& args) {
    if (args.size() < 2 || args.size() > 3) {
      throw TypeError("sub() takes 2-3 arguments");
    }
    const Value& v = args[0];
    auto bounds = [&](std::size_t size) {
      std::int64_t start = args[1].as_int();
      if (start < 0) start += static_cast<std::int64_t>(size);
      start = std::max<std::int64_t>(0, std::min<std::int64_t>(start,
                                          static_cast<std::int64_t>(size)));
      std::int64_t count = args.size() == 3
                               ? args[2].as_int()
                               : static_cast<std::int64_t>(size) - start;
      count = std::max<std::int64_t>(
          0, std::min<std::int64_t>(count, static_cast<std::int64_t>(size) - start));
      return std::pair<std::size_t, std::size_t>(static_cast<std::size_t>(start),
                                                 static_cast<std::size_t>(count));
    };
    if (v.is_str()) {
      auto [start, count] = bounds(v.as_str().size());
      return Value::str(v.as_str().substr(start, count));
    }
    if (v.is_bytes()) {
      auto [start, count] = bounds(v.as_bytes().size());
      const util::Bytes& b = v.as_bytes();
      return Value::bytes(util::Bytes(b.begin() + static_cast<std::ptrdiff_t>(start),
                                      b.begin() + static_cast<std::ptrdiff_t>(start + count)));
    }
    if (v.is_list()) {
      auto [start, count] = bounds(v.as_list().size());
      const List& l = v.as_list();
      return Value::list(List(l.begin() + static_cast<std::ptrdiff_t>(start),
                              l.begin() + static_cast<std::ptrdiff_t>(start + count)));
    }
    throw TypeError(std::string("sub() of ") + v.type_name());
  }));

  interp.bind("sorted", Value::native([](Interpreter&, std::vector<Value>& args) {
    check_arity(args, 1, "sorted");
    List out = args[0].as_list();
    std::sort(out.begin(), out.end(), [](const Value& a, const Value& b) {
      if (a.is_str() && b.is_str()) return a.as_str() < b.as_str();
      return a.as_float() < b.as_float();
    });
    return Value::list(std::move(out));
  }));
}

}  // namespace bento::script
