// BentoScript tree-walking interpreter.
//
// Deliberately capability-less: the language core can compute, but every
// effect (network, filesystem, Tor control, randomness, clock) enters only
// through host-provided bindings. The Bento container decides which
// bindings to install based on manifest ∩ node policy, which is how the
// sandbox's seccomp analogue reaches the language. Instruction and memory
// hooks let the container charge the function's ResourceAccountant.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "script/ast.hpp"
#include "script/parser.hpp"
#include "script/value.hpp"

namespace bento::script {

/// Raised for runtime errors in the script (wrong types, undefined names,
/// arity mismatches, explicit budget exhaustion...).
class ScriptError : public std::runtime_error {
 public:
  ScriptError(const std::string& message, int line)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line(line) {}
  int line;
};

struct InterpreterOptions {
  /// Hard internal cap; the step hook may impose a tighter budget.
  std::uint64_t max_steps = 100'000'000;
  int max_call_depth = 64;
  /// Called in batches with the number of steps executed since last call.
  std::function<void(std::uint64_t steps)> step_hook;
  /// Called periodically with the interpreter's estimated heap usage.
  std::function<void(std::size_t bytes)> memory_hook;
  /// print() sink; defaults to discarding.
  std::function<void(const std::string&)> print_hook;
};

class Interpreter {
 public:
  /// The interpreter shares the parsed program (functions may outlive one
  /// call; the container reuses the image across invocations).
  Interpreter(std::shared_ptr<const Program> program, InterpreterOptions options = {});

  /// Installs a global binding (modules like `api`, `fs` are dicts of
  /// native functions).
  void bind(const std::string& name, Value value);

  /// Executes all top-level statements (function defs + init code).
  void run();

  /// True if a top-level `def name(...)` exists (after run()).
  bool has_function(const std::string& name) const;

  /// Calls a global function by name. Throws ScriptError if undefined.
  Value call(const std::string& name, std::vector<Value> args);

  /// Calls any callable value (used by builtins receiving callbacks).
  Value call_value(const Value& callable, std::vector<Value> args);

  std::uint64_t steps() const { return steps_; }
  /// Global variable access (tests / host inspection).
  Value global(const std::string& name) const;

  /// print() sink used by the stdlib.
  void print(const std::string& line) {
    if (options_.print_hook) options_.print_hook(line);
  }

 private:
  enum class Flow { Normal, Break, Continue, Return };

  void step(int line);
  Value eval(const Expr& e);
  Value eval_binary(const Expr& e);
  Value eval_call(const Expr& e);
  Value eval_attr(const Value& obj, const std::string& name, int line);
  Flow exec(const Stmt& s, Value* ret);
  Flow exec_block(const std::vector<StmtPtr>& body, Value* ret);
  void assign(const Expr& target, Value value);
  Value* lookup(const std::string& name);
  void maybe_check_memory();

  std::shared_ptr<const Program> program_;
  InterpreterOptions options_;
  std::map<std::string, Value> globals_;
  std::vector<std::map<std::string, Value>> frames_;
  std::vector<std::shared_ptr<FunctionDef>> retained_defs_;
  std::uint64_t steps_ = 0;
  std::uint64_t unreported_steps_ = 0;
  int call_depth_ = 0;
  bool ran_ = false;
};

/// Installs the pure standard library (len, str, int, float, range, print,
/// min, max, abs, bytes, sorted) plus list/str/dict methods support.
void install_stdlib(Interpreter& interp);

}  // namespace bento::script
