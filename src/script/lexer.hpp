// BentoScript lexer: source text -> token stream with Indent/Dedent.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "script/token.hpp"

namespace bento::script {

class SyntaxError : public std::runtime_error {
 public:
  SyntaxError(const std::string& message, int line)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line(line) {}
  int line;
};

/// Tokenizes a whole program. Throws SyntaxError on malformed input.
std::vector<Token> tokenize(const std::string& source);

}  // namespace bento::script
