#include "script/interp.hpp"

#include <algorithm>

namespace bento::script {

Interpreter::Interpreter(std::shared_ptr<const Program> program,
                         InterpreterOptions options)
    : program_(std::move(program)), options_(std::move(options)) {
  if (program_ == nullptr) throw std::invalid_argument("Interpreter: null program");
}

void Interpreter::bind(const std::string& name, Value value) {
  globals_[name] = std::move(value);
}

void Interpreter::run() {
  ran_ = true;
  Value ret;
  exec_block(program_->statements, &ret);
}

bool Interpreter::has_function(const std::string& name) const {
  auto it = globals_.find(name);
  return it != globals_.end() && it->second.is_callable();
}

Value Interpreter::call(const std::string& name, std::vector<Value> args) {
  if (!ran_) run();
  auto it = globals_.find(name);
  if (it == globals_.end() || !it->second.is_callable()) {
    throw ScriptError("undefined function: " + name, 0);
  }
  return call_value(it->second, std::move(args));
}

Value Interpreter::global(const std::string& name) const {
  auto it = globals_.find(name);
  return it == globals_.end() ? Value::none() : it->second;
}

void Interpreter::step(int line) {
  ++steps_;
  ++unreported_steps_;
  if (steps_ > options_.max_steps) {
    throw ScriptError("instruction budget exhausted", line);
  }
  if (unreported_steps_ >= 256) {
    if (options_.step_hook) options_.step_hook(unreported_steps_);
    unreported_steps_ = 0;
    maybe_check_memory();
  }
}

void Interpreter::maybe_check_memory() {
  if (!options_.memory_hook) return;
  std::size_t total = 0;
  for (const auto& [k, v] : globals_) total += k.size() + v.memory_estimate();
  for (const auto& frame : frames_) {
    for (const auto& [k, v] : frame) total += k.size() + v.memory_estimate();
  }
  options_.memory_hook(total);
}

Value* Interpreter::lookup(const std::string& name) {
  if (!frames_.empty()) {
    auto& frame = frames_.back();
    auto it = frame.find(name);
    if (it != frame.end()) return &it->second;
  }
  auto it = globals_.find(name);
  if (it != globals_.end()) return &it->second;
  return nullptr;
}

Value Interpreter::call_value(const Value& callable, std::vector<Value> args) {
  if (auto* native = std::get_if<std::shared_ptr<NativeFn>>(&callable.data)) {
    return (**native)(*this, args);
  }
  if (auto* fn = std::get_if<ScriptFn>(&callable.data)) {
    const FunctionDef& def = *fn->def;
    if (args.size() != def.params.size()) {
      throw ScriptError(def.name + "() takes " + std::to_string(def.params.size()) +
                            " arguments, got " + std::to_string(args.size()),
                        def.line);
    }
    if (++call_depth_ > options_.max_call_depth) {
      --call_depth_;
      throw ScriptError("maximum recursion depth exceeded", def.line);
    }
    frames_.emplace_back();
    for (std::size_t i = 0; i < args.size(); ++i) {
      frames_.back()[def.params[i]] = std::move(args[i]);
    }
    Value ret;
    try {
      exec_block(def.body, &ret);
    } catch (...) {
      frames_.pop_back();
      --call_depth_;
      throw;
    }
    frames_.pop_back();
    --call_depth_;
    return ret;
  }
  throw ScriptError(std::string("not callable: ") + callable.type_name(), 0);
}

Interpreter::Flow Interpreter::exec_block(const std::vector<StmtPtr>& body,
                                          Value* ret) {
  for (const auto& stmt : body) {
    const Flow flow = exec(*stmt, ret);
    if (flow != Flow::Normal) return flow;
  }
  return Flow::Normal;
}

Interpreter::Flow Interpreter::exec(const Stmt& s, Value* ret) {
  step(s.line);
  switch (s.kind) {
    case StmtKind::ExprStmt:
      eval(*s.expr);
      return Flow::Normal;
    case StmtKind::Assign:
      assign(*s.target, eval(*s.expr));
      return Flow::Normal;
    case StmtKind::AugAssign: {
      Value current = eval(*s.target);
      Value delta = eval(*s.expr);
      // Build the equivalent binary op.
      Expr synthetic;
      synthetic.kind = ExprKind::Binary;
      synthetic.op = s.op == TokenType::PlusAssign ? TokenType::Plus : TokenType::Minus;
      synthetic.line = s.line;
      Expr lit_a, lit_b;
      lit_a.kind = ExprKind::Literal;
      lit_a.literal = std::move(current);
      lit_b.kind = ExprKind::Literal;
      lit_b.literal = std::move(delta);
      synthetic.a = ExprPtr(new Expr(std::move(lit_a)));
      synthetic.b = ExprPtr(new Expr(std::move(lit_b)));
      assign(*s.target, eval_binary(synthetic));
      return Flow::Normal;
    }
    case StmtKind::If: {
      if (eval(*s.expr).truthy()) return exec_block(s.body, ret);
      if (!s.orelse.empty()) return exec_block(s.orelse, ret);
      return Flow::Normal;
    }
    case StmtKind::While: {
      while (eval(*s.expr).truthy()) {
        step(s.line);
        const Flow flow = exec_block(s.body, ret);
        if (flow == Flow::Break) break;
        if (flow == Flow::Return) return flow;
      }
      return Flow::Normal;
    }
    case StmtKind::For: {
      Value iterable = eval(*s.target);
      auto iterate = [&](const Value& item) -> Flow {
        step(s.line);
        if (frames_.empty()) {
          globals_[s.name] = item;
        } else {
          frames_.back()[s.name] = item;
        }
        return exec_block(s.body, ret);
      };
      if (iterable.is_list()) {
        // Copy to tolerate mutation during iteration.
        List items = iterable.as_list();
        for (const Value& item : items) {
          const Flow flow = iterate(item);
          if (flow == Flow::Break) break;
          if (flow == Flow::Return) return flow;
        }
      } else if (iterable.is_dict()) {
        std::vector<std::string> keys;
        for (const auto& [k, v] : iterable.as_dict()) keys.push_back(k);
        for (const auto& k : keys) {
          const Flow flow = iterate(Value::str(k));
          if (flow == Flow::Break) break;
          if (flow == Flow::Return) return flow;
        }
      } else if (iterable.is_str()) {
        for (char c : iterable.as_str()) {
          const Flow flow = iterate(Value::str(std::string(1, c)));
          if (flow == Flow::Break) break;
          if (flow == Flow::Return) return flow;
        }
      } else if (iterable.is_bytes()) {
        for (std::uint8_t b : iterable.as_bytes()) {
          const Flow flow = iterate(Value::integer(b));
          if (flow == Flow::Break) break;
          if (flow == Flow::Return) return flow;
        }
      } else {
        throw ScriptError(std::string("cannot iterate over ") + iterable.type_name(),
                          s.line);
      }
      return Flow::Normal;
    }
    case StmtKind::Def:
      globals_[s.def->name] = Value{{ScriptFn{s.def.get()}}};
      // Keep the shared FunctionDef alive for the interpreter's lifetime.
      retained_defs_.push_back(s.def);
      return Flow::Normal;
    case StmtKind::Return:
      if (s.expr) *ret = eval(*s.expr);
      return Flow::Return;
    case StmtKind::Break:
      return Flow::Break;
    case StmtKind::Continue:
      return Flow::Continue;
    case StmtKind::Pass:
      return Flow::Normal;
  }
  return Flow::Normal;
}

void Interpreter::assign(const Expr& target, Value value) {
  switch (target.kind) {
    case ExprKind::Name: {
      if (!frames_.empty()) {
        frames_.back()[target.name] = std::move(value);
      } else {
        globals_[target.name] = std::move(value);
      }
      return;
    }
    case ExprKind::Index: {
      Value container = eval(*target.a);
      Value key = eval(*target.b);
      if (container.is_list()) {
        List& list = container.as_list();
        std::int64_t i = key.as_int();
        if (i < 0) i += static_cast<std::int64_t>(list.size());
        if (i < 0 || i >= static_cast<std::int64_t>(list.size())) {
          throw ScriptError("list index out of range", target.line);
        }
        list[static_cast<std::size_t>(i)] = std::move(value);
        return;
      }
      if (container.is_dict()) {
        container.as_dict()[key.as_str()] = std::move(value);
        return;
      }
      throw ScriptError(std::string("cannot index-assign into ") +
                            container.type_name(),
                        target.line);
    }
    case ExprKind::Attr: {
      Value obj = eval(*target.a);
      if (obj.is_dict()) {
        obj.as_dict()[target.name] = std::move(value);
        return;
      }
      throw ScriptError("cannot set attribute on " + std::string(obj.type_name()),
                        target.line);
    }
    default:
      throw ScriptError("invalid assignment target", target.line);
  }
}

Value Interpreter::eval(const Expr& e) {
  step(e.line);
  switch (e.kind) {
    case ExprKind::Literal:
      return e.literal;
    case ExprKind::Name: {
      Value* v = lookup(e.name);
      if (v == nullptr) throw ScriptError("undefined name: " + e.name, e.line);
      return *v;
    }
    case ExprKind::ListLit: {
      List items;
      items.reserve(e.args.size());
      for (const auto& arg : e.args) items.push_back(eval(*arg));
      return Value::list(std::move(items));
    }
    case ExprKind::DictLit: {
      Dict dict;
      for (const auto& [k, v] : e.pairs) dict[eval(*k).as_str()] = eval(*v);
      return Value::dict(std::move(dict));
    }
    case ExprKind::Unary: {
      Value a = eval(*e.a);
      if (e.op == TokenType::KwNot) return Value::boolean(!a.truthy());
      if (a.is_int()) return Value::integer(-a.as_int());
      if (a.is_float()) return Value::real(-a.as_float());
      throw ScriptError(std::string("cannot negate ") + a.type_name(), e.line);
    }
    case ExprKind::Binary:
      return eval_binary(e);
    case ExprKind::Call:
      return eval_call(e);
    case ExprKind::Index: {
      Value container = eval(*e.a);
      Value key = eval(*e.b);
      if (container.is_list()) {
        const List& list = container.as_list();
        std::int64_t i = key.as_int();
        if (i < 0) i += static_cast<std::int64_t>(list.size());
        if (i < 0 || i >= static_cast<std::int64_t>(list.size())) {
          throw ScriptError("list index out of range", e.line);
        }
        return list[static_cast<std::size_t>(i)];
      }
      if (container.is_dict()) {
        const Dict& dict = container.as_dict();
        auto it = dict.find(key.as_str());
        if (it == dict.end()) {
          throw ScriptError("key not found: " + key.as_str(), e.line);
        }
        return it->second;
      }
      if (container.is_bytes()) {
        const util::Bytes& b = container.as_bytes();
        std::int64_t i = key.as_int();
        if (i < 0) i += static_cast<std::int64_t>(b.size());
        if (i < 0 || i >= static_cast<std::int64_t>(b.size())) {
          throw ScriptError("bytes index out of range", e.line);
        }
        return Value::integer(b[static_cast<std::size_t>(i)]);
      }
      if (container.is_str()) {
        const std::string& s = container.as_str();
        std::int64_t i = key.as_int();
        if (i < 0) i += static_cast<std::int64_t>(s.size());
        if (i < 0 || i >= static_cast<std::int64_t>(s.size())) {
          throw ScriptError("string index out of range", e.line);
        }
        return Value::str(std::string(1, s[static_cast<std::size_t>(i)]));
      }
      throw ScriptError(std::string("cannot index ") + container.type_name(), e.line);
    }
    case ExprKind::Attr:
      return eval_attr(eval(*e.a), e.name, e.line);
  }
  throw ScriptError("internal: bad expression", e.line);
}

Value Interpreter::eval_call(const Expr& e) {
  Value callee = eval(*e.a);
  std::vector<Value> args;
  args.reserve(e.args.size());
  for (const auto& arg : e.args) args.push_back(eval(*arg));
  try {
    return call_value(callee, std::move(args));
  } catch (const TypeError& err) {
    throw ScriptError(err.what(), e.line);
  }
}

Value Interpreter::eval_binary(const Expr& e) {
  // Short-circuit logic first.
  if (e.op == TokenType::KwAnd) {
    Value a = eval(*e.a);
    if (!a.truthy()) return a;
    return eval(*e.b);
  }
  if (e.op == TokenType::KwOr) {
    Value a = eval(*e.a);
    if (a.truthy()) return a;
    return eval(*e.b);
  }

  Value a = eval(*e.a);
  Value b = eval(*e.b);

  auto numeric = [&](auto int_op, auto float_op) -> Value {
    if (a.is_float() || b.is_float()) return Value::real(float_op(a.as_float(), b.as_float()));
    return Value::integer(int_op(a.as_int(), b.as_int()));
  };

  switch (e.op) {
    case TokenType::Plus:
      if (a.is_str() && b.is_str()) return Value::str(a.as_str() + b.as_str());
      if (a.is_bytes() && b.is_bytes()) {
        util::Bytes out = a.as_bytes();
        util::append(out, b.as_bytes());
        return Value::bytes(std::move(out));
      }
      if (a.is_list() && b.is_list()) {
        List out = a.as_list();
        const List& more = b.as_list();
        out.insert(out.end(), more.begin(), more.end());
        return Value::list(std::move(out));
      }
      if ((a.is_int() || a.is_float() || a.is_bool()) &&
          (b.is_int() || b.is_float() || b.is_bool())) {
        return numeric([](auto x, auto y) { return x + y; },
                       [](auto x, auto y) { return x + y; });
      }
      throw ScriptError(std::string("cannot add ") + a.type_name() + " and " +
                            b.type_name(),
                        e.line);
    case TokenType::Minus:
      return numeric([](auto x, auto y) { return x - y; },
                     [](auto x, auto y) { return x - y; });
    case TokenType::Star:
      if (a.is_str() && b.is_int()) {
        std::string out;
        for (std::int64_t i = 0; i < b.as_int(); ++i) out += a.as_str();
        return Value::str(std::move(out));
      }
      return numeric([](auto x, auto y) { return x * y; },
                     [](auto x, auto y) { return x * y; });
    case TokenType::Slash: {
      if (a.is_float() || b.is_float()) {
        const double div = b.as_float();
        if (div == 0.0) throw ScriptError("division by zero", e.line);
        return Value::real(a.as_float() / div);
      }
      const std::int64_t div = b.as_int();
      if (div == 0) throw ScriptError("division by zero", e.line);
      // Floor division like Python's //.
      std::int64_t q = a.as_int() / div;
      if ((a.as_int() % div != 0) && ((a.as_int() < 0) != (div < 0))) --q;
      return Value::integer(q);
    }
    case TokenType::Percent: {
      const std::int64_t div = b.as_int();
      if (div == 0) throw ScriptError("modulo by zero", e.line);
      std::int64_t m = a.as_int() % div;
      if (m != 0 && ((m < 0) != (div < 0))) m += div;
      return Value::integer(m);
    }
    case TokenType::Eq:
      return Value::boolean(a.equals(b));
    case TokenType::Ne:
      return Value::boolean(!a.equals(b));
    case TokenType::Lt:
    case TokenType::Le:
    case TokenType::Gt:
    case TokenType::Ge: {
      int cmp;
      if (a.is_str() && b.is_str()) {
        cmp = a.as_str().compare(b.as_str());
      } else {
        const double x = a.as_float();
        const double y = b.as_float();
        cmp = x < y ? -1 : (x > y ? 1 : 0);
      }
      switch (e.op) {
        case TokenType::Lt: return Value::boolean(cmp < 0);
        case TokenType::Le: return Value::boolean(cmp <= 0);
        case TokenType::Gt: return Value::boolean(cmp > 0);
        default: return Value::boolean(cmp >= 0);
      }
    }
    case TokenType::KwIn: {
      if (b.is_dict()) return Value::boolean(b.as_dict().contains(a.as_str()));
      if (b.is_list()) {
        for (const auto& item : b.as_list()) {
          if (item.equals(a)) return Value::boolean(true);
        }
        return Value::boolean(false);
      }
      if (b.is_str()) {
        return Value::boolean(b.as_str().find(a.as_str()) != std::string::npos);
      }
      throw ScriptError(std::string("cannot test membership in ") + b.type_name(),
                        e.line);
    }
    default:
      throw ScriptError("internal: bad binary operator", e.line);
  }
}

Value Interpreter::eval_attr(const Value& obj, const std::string& name, int line) {
  // Module-style access: dicts expose entries as attributes.
  if (obj.is_dict()) {
    Dict& dict = obj.as_dict();
    auto it = dict.find(name);
    if (it != dict.end()) return it->second;
  }
  // Built-in methods on containers and strings (bound closures over obj).
  if (obj.is_list()) {
    if (name == "append") {
      return Value::native([obj](Interpreter&, std::vector<Value>& args) {
        if (args.size() != 1) throw TypeError("append() takes 1 argument");
        obj.as_list().push_back(args[0]);
        return Value::none();
      });
    }
    if (name == "pop") {
      return Value::native([obj](Interpreter&, std::vector<Value>& args) {
        List& list = obj.as_list();
        if (list.empty()) throw TypeError("pop from empty list");
        if (!args.empty()) {
          std::int64_t i = args[0].as_int();
          if (i < 0) i += static_cast<std::int64_t>(list.size());
          if (i < 0 || i >= static_cast<std::int64_t>(list.size())) {
            throw TypeError("pop index out of range");
          }
          Value out = list[static_cast<std::size_t>(i)];
          list.erase(list.begin() + static_cast<std::ptrdiff_t>(i));
          return out;
        }
        Value out = list.back();
        list.pop_back();
        return out;
      });
    }
  }
  if (obj.is_str()) {
    if (name == "split") {
      return Value::native([obj](Interpreter&, std::vector<Value>& args) {
        const std::string sep = args.empty() ? " " : args[0].as_str();
        if (sep.empty()) throw TypeError("empty separator");
        List parts;
        const std::string& s = obj.as_str();
        std::size_t start = 0;
        while (true) {
          const std::size_t at = s.find(sep, start);
          if (at == std::string::npos) {
            parts.push_back(Value::str(s.substr(start)));
            break;
          }
          parts.push_back(Value::str(s.substr(start, at - start)));
          start = at + sep.size();
        }
        return Value::list(std::move(parts));
      });
    }
    if (name == "startswith") {
      return Value::native([obj](Interpreter&, std::vector<Value>& args) {
        if (args.size() != 1) throw TypeError("startswith() takes 1 argument");
        return Value::boolean(obj.as_str().rfind(args[0].as_str(), 0) == 0);
      });
    }
    if (name == "upper" || name == "lower") {
      const bool up = name == "upper";
      return Value::native([obj, up](Interpreter&, std::vector<Value>&) {
        std::string s = obj.as_str();
        std::transform(s.begin(), s.end(), s.begin(), [up](unsigned char c) {
          return up ? std::toupper(c) : std::tolower(c);
        });
        return Value::str(std::move(s));
      });
    }
    if (name == "find") {
      return Value::native([obj](Interpreter&, std::vector<Value>& args) {
        if (args.size() != 1) throw TypeError("find() takes 1 argument");
        const auto at = obj.as_str().find(args[0].as_str());
        return Value::integer(at == std::string::npos ? -1
                                                      : static_cast<std::int64_t>(at));
      });
    }
  }
  if (obj.is_dict()) {
    if (name == "get") {
      return Value::native([obj](Interpreter&, std::vector<Value>& args) {
        if (args.empty() || args.size() > 2) throw TypeError("get() takes 1-2 arguments");
        const Dict& dict = obj.as_dict();
        auto it = dict.find(args[0].as_str());
        if (it != dict.end()) return it->second;
        return args.size() == 2 ? args[1] : Value::none();
      });
    }
    if (name == "keys") {
      return Value::native([obj](Interpreter&, std::vector<Value>&) {
        List keys;
        for (const auto& [k, v] : obj.as_dict()) keys.push_back(Value::str(k));
        return Value::list(std::move(keys));
      });
    }
    if (name == "remove") {
      return Value::native([obj](Interpreter&, std::vector<Value>& args) {
        if (args.size() != 1) throw TypeError("remove() takes 1 argument");
        return Value::boolean(obj.as_dict().erase(args[0].as_str()) > 0);
      });
    }
  }
  throw ScriptError(std::string(obj.type_name()) + " has no attribute '" + name + "'",
                    line);
}

}  // namespace bento::script
