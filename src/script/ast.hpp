// BentoScript abstract syntax tree.
//
// Plain-struct nodes owned by unique_ptr; a Program owns everything and is
// immutable after parsing, so one parsed function image can be executed
// many times (and measured once for attestation).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "script/token.hpp"
#include "script/value.hpp"

namespace bento::script {

struct Expr;
struct Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

enum class ExprKind : std::uint8_t {
  Literal,     // int/float/str/bool/none
  Name,        // identifier
  ListLit,     // [a, b, c]
  DictLit,     // {"k": v}
  Unary,       // -x, not x
  Binary,      // arithmetic / comparison / and / or
  Call,        // f(args)
  Index,       // obj[key]
  Attr,        // obj.name
};

struct Expr {
  ExprKind kind;
  int line = 0;

  // Literal
  Value literal;
  // Name / Attr
  std::string name;
  // Unary / Binary operator token
  TokenType op = TokenType::EndOfFile;
  // Children: Unary(a) Binary(a,b) Call(callee=a, args) Index(a, b) Attr(a)
  ExprPtr a;
  ExprPtr b;
  std::vector<ExprPtr> args;
  std::vector<std::pair<ExprPtr, ExprPtr>> pairs;  // DictLit
};

enum class StmtKind : std::uint8_t {
  ExprStmt,
  Assign,       // target = value (Name / Index / Attr target)
  AugAssign,    // target += value, -=
  If,
  While,
  For,          // for name in iterable
  Def,
  Return,
  Break,
  Continue,
  Pass,
};

struct FunctionDef {
  std::string name;
  std::vector<std::string> params;
  std::vector<StmtPtr> body;
  int line = 0;
};

struct Stmt {
  StmtKind kind;
  int line = 0;

  ExprPtr expr;    // ExprStmt value / Assign value / condition / Return value
  ExprPtr target;  // Assign & AugAssign target, For iterable
  TokenType op = TokenType::EndOfFile;  // AugAssign operator
  std::string name;                     // For loop variable

  std::vector<StmtPtr> body;
  std::vector<StmtPtr> orelse;  // If: else branch (possibly a chained elif)
  std::shared_ptr<FunctionDef> def;
};

struct Program {
  std::vector<StmtPtr> statements;
};

}  // namespace bento::script
