// BentoScript recursive-descent parser: tokens -> Program.
#pragma once

#include <memory>
#include <string>

#include "script/ast.hpp"
#include "script/lexer.hpp"

namespace bento::script {

/// Parses a full program. Throws SyntaxError on malformed input.
std::unique_ptr<Program> parse(const std::string& source);

}  // namespace bento::script
