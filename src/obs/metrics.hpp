// Sim-time metrics registry (DESIGN.md §8).
//
// Overhead contract: every hot-path operation is O(1), allocation-free, and
// works through a pre-registered handle — registration interns the name in
// a map exactly once, after which an increment is a branch on the global
// enable flag plus a pointer-indirect add. No map lookups, no string
// hashing, no formatting on the event path. When metrics are disabled the
// branch is perfectly predicted and nothing else runs, which is what keeps
// BENCH_datapath.json honest (bench/datapath.cpp counts heap allocations
// through the instrumented 3-hop cell loop).
//
// Sharded execution (DESIGN.md §12): every metric keeps one cache-line-
// padded slot per worker thread; the hot path indexes its slot through a
// thread_local worker id, so concurrent workers never touch the same line.
// Reads (value(), snapshot()) merge the slots: counters and histograms sum
// — which makes them invariant across shard counts, since the multiset of
// recorded values is a property of the logical event sequence — and gauges
// take the max over touched slots (last-writer semantics do not exist under
// parallel windows; the high-water mark stays exact). Serial simulations
// only ever touch slot 0, so their reads are bit-for-bit what they were.
//
// Cells live for the life of the process (the registry only ever grows and
// reset() zeroes values in place), so handles never dangle — call sites can
// cache them in function-local statics.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/annotations.hpp"

namespace bento::obs {

/// Worker threads the slot arrays are sized for (== the sharded simulator's
/// maximum worker-pool size, Simulator::kMaxShards).
inline constexpr unsigned kMaxMetricWorkers = 8;

namespace detail {
/// Constant-initialized: metrics are collected by default; flip off to make
/// every handle a no-op (bench proves the two modes are within noise on the
/// cell datapath, so "on" is the safe default for scenarios).
inline bool g_metrics_enabled = true;

/// Which per-metric slot this thread writes. Worker 0 is the coordinating
/// (main) thread; the simulator assigns 1..N-1 to pool workers at spawn.
// bentolint: allow(BL105 thread_local worker id for the sharded simulator, DESIGN.md §12)
inline thread_local unsigned g_metric_worker = 0;
}  // namespace detail

inline bool metrics_enabled() { return detail::g_metrics_enabled; }
inline void set_metrics_enabled(bool on) { detail::g_metrics_enabled = on; }

/// Binds this thread to a per-metric slot (simulator-internal).
inline void set_metric_worker(unsigned w) {
  detail::g_metric_worker = w < kMaxMetricWorkers ? w : kMaxMetricWorkers - 1;
}
inline unsigned metric_worker() { return detail::g_metric_worker; }

// Merged, read-only cell views as they appear in a Snapshot. These keep the
// pre-sharding single-value layout; live storage is the slotted *Data below.
struct CounterCell {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeCell {
  std::string name;
  std::int64_t value = 0;
  std::int64_t high_water = std::numeric_limits<std::int64_t>::min();
};

struct HistogramCell {
  std::string name;
  // Ascending upper bounds; buckets has bounds.size() + 1 slots. A value v
  // lands in the first bucket whose bound is strictly greater than v; values
  // >= the last bound land in the final (overflow) bucket. So bucket 0 is
  // [-inf, bounds[0]), bucket i is [bounds[i-1], bounds[i]), and an exact
  // edge value bounds[i] belongs to bucket i + 1.
  std::vector<std::int64_t> bounds;
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = std::numeric_limits<std::int64_t>::max();
  std::int64_t max = std::numeric_limits<std::int64_t>::min();
};

namespace detail {

struct alignas(64) CounterSlot {
  std::uint64_t value = 0;
};

struct CounterData {
  std::string name;
  CounterSlot slots[kMaxMetricWorkers];
  std::uint64_t merged() const {
    std::uint64_t total = 0;
    for (const CounterSlot& s : slots) total += s.value;
    return total;
  }
};

struct alignas(64) GaugeSlot {
  std::int64_t value = 0;
  std::int64_t high_water = std::numeric_limits<std::int64_t>::min();
  bool touched = false;
};

struct GaugeData {
  std::string name;
  GaugeSlot slots[kMaxMetricWorkers];
  std::int64_t merged_value() const {
    std::int64_t best = 0;
    bool any = false;
    for (const GaugeSlot& s : slots) {
      if (!s.touched) continue;
      if (!any || s.value > best) best = s.value;
      any = true;
    }
    return best;
  }
  std::int64_t merged_high_water() const {
    std::int64_t hw = std::numeric_limits<std::int64_t>::min();
    for (const GaugeSlot& s : slots) {
      if (s.high_water > hw) hw = s.high_water;
    }
    return hw;
  }
};

struct alignas(64) HistogramSlot {
  std::uint64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = std::numeric_limits<std::int64_t>::max();
  std::int64_t max = std::numeric_limits<std::int64_t>::min();
};

struct HistogramData {
  std::string name;
  std::vector<std::int64_t> bounds;
  // Slot-major: worker w's buckets are [w * (bounds.size() + 1), ...) — one
  // contiguous private stripe per worker, no shared cache lines inside.
  std::vector<std::uint64_t> buckets;
  HistogramSlot slots[kMaxMetricWorkers];
  // Scratch for cell(): merged view rebuilt on demand, address stable for
  // the life of the process (interned handles compare cell() pointers).
  mutable HistogramCell merged;
  void merge_into(HistogramCell& out) const;
};

}  // namespace detail

/// Monotone event count. Copyable value handle; default-constructed handles
/// are inert.
class Counter {
 public:
  Counter() = default;
  BENTO_HOT void inc(std::uint64_t n = 1) {
    if (!detail::g_metrics_enabled || cell_ == nullptr) return;
    cell_->slots[detail::g_metric_worker].value += n;
  }
  std::uint64_t value() const { return cell_ != nullptr ? cell_->merged() : 0; }

 private:
  friend class Registry;
  explicit Counter(detail::CounterData* cell) : cell_(cell) {}
  detail::CounterData* cell_ = nullptr;
};

/// Point-in-time level with a high-water mark (queue depths, live objects).
class Gauge {
 public:
  Gauge() = default;
  BENTO_HOT void set(std::int64_t v) {
    if (!detail::g_metrics_enabled || cell_ == nullptr) return;
    set_unchecked(cell_->slots[detail::g_metric_worker], v);
  }
  BENTO_HOT void add(std::int64_t delta) {
    if (!detail::g_metrics_enabled || cell_ == nullptr) return;
    detail::GaugeSlot& s = cell_->slots[detail::g_metric_worker];
    set_unchecked(s, s.value + delta);
  }
  std::int64_t value() const { return cell_ != nullptr ? cell_->merged_value() : 0; }
  std::int64_t high_water() const {
    if (cell_ == nullptr) return 0;
    const std::int64_t hw = cell_->merged_high_water();
    return hw != std::numeric_limits<std::int64_t>::min() ? hw : 0;
  }

 private:
  friend class Registry;
  explicit Gauge(detail::GaugeData* cell) : cell_(cell) {}
  static void set_unchecked(detail::GaugeSlot& s, std::int64_t v) {
    s.value = v;
    s.touched = true;
    if (v > s.high_water) s.high_water = v;
  }
  detail::GaugeData* cell_ = nullptr;
};

/// Fixed-bucket histogram; bounds are frozen at registration. record() is a
/// short linear scan over the bounds (latency specs are ~a dozen entries,
/// branch behavior is stable), then three adds.
class Histogram {
 public:
  Histogram() = default;
  BENTO_HOT void record(std::int64_t v) {
    if (!detail::g_metrics_enabled || cell_ == nullptr) return;
    std::size_t i = 0;
    const std::size_t n = cell_->bounds.size();
    while (i < n && v >= cell_->bounds[i]) ++i;
    const unsigned w = detail::g_metric_worker;
    cell_->buckets[w * (n + 1) + i] += 1;
    detail::HistogramSlot& s = cell_->slots[w];
    s.count += 1;
    s.sum += v;
    if (v < s.min) s.min = v;
    if (v > s.max) s.max = v;
  }
  std::uint64_t count() const {
    if (cell_ == nullptr) return 0;
    std::uint64_t total = 0;
    for (const detail::HistogramSlot& s : cell_->slots) total += s.count;
    return total;
  }
  /// Merged view, rebuilt on each call; the pointer is stable per interned
  /// name. Re-call after further record()s — the view is a snapshot.
  const HistogramCell* cell() const {
    if (cell_ == nullptr) return nullptr;
    cell_->merge_into(cell_->merged);
    return &cell_->merged;
  }

 private:
  friend class Registry;
  explicit Histogram(detail::HistogramData* cell) : cell_(cell) {}
  detail::HistogramData* cell_ = nullptr;
};

/// Default latency bucket upper bounds, microseconds of sim time: 50 µs up
/// to 1 s in a coarse exponential ladder (matching the scale of circuit
/// round trips in the testbed).
inline constexpr std::int64_t kLatencyBucketsUs[] = {
    50,     100,    250,    500,     1'000,   2'500,   5'000,
    10'000, 25'000, 50'000, 100'000, 250'000, 500'000, 1'000'000};

/// One read-only copy of everything the registry knows, plus free-form
/// pre-formatted sections appended by higher layers (World::snapshot_stats
/// adds per-server, per-container and per-node blocks).
struct Snapshot {
  std::vector<CounterCell> counters;
  std::vector<GaugeCell> gauges;
  std::vector<HistogramCell> histograms;
  std::vector<std::string> sections;

  /// Human-readable text dump (the "stats dump" artifact).
  std::string to_string() const;

  /// Machine-readable dump: one JSON object with sorted counter/gauge/
  /// histogram maps plus the free-form sections as escaped strings. Integer
  /// values only and map order fixed by the registry's sorted interning, so
  /// identical seeded runs produce byte-identical output (CI diffs these).
  void to_json(std::ostream& os) const;
  std::string to_json() const;
};

class Registry {
 public:
  /// Interning registration: same name returns a handle to the same cell.
  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  /// `bounds` must be strictly ascending and non-empty; ignored (the
  /// original spec sticks) when `name` is already registered.
  Histogram histogram(std::string_view name,
                      std::span<const std::int64_t> bounds = kLatencyBucketsUs);

  /// Zeroes every value in place. Handles stay valid — registrations are
  /// never dropped — so scenarios can reset between runs for determinism.
  void reset();

  Snapshot snapshot() const;

 private:
  // std::less<> enables string_view lookups without temporary strings.
  std::map<std::string, std::unique_ptr<detail::CounterData>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<detail::GaugeData>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<detail::HistogramData>, std::less<>> histograms_;
};

/// Process-global registry (one world at a time; registration and reads are
/// serial-context operations — only the slotted hot paths run on workers).
Registry& registry();

}  // namespace bento::obs
