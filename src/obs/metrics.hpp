// Sim-time metrics registry (DESIGN.md §8).
//
// Overhead contract: every hot-path operation is O(1), allocation-free, and
// works through a pre-registered handle — registration interns the name in
// a map exactly once, after which an increment is a branch on the global
// enable flag plus a pointer-indirect add. No map lookups, no string
// hashing, no formatting on the event path. When metrics are disabled the
// branch is perfectly predicted and nothing else runs, which is what keeps
// BENCH_datapath.json honest (bench/datapath.cpp counts heap allocations
// through the instrumented 3-hop cell loop).
//
// Cells live for the life of the process (the registry only ever grows and
// reset() zeroes values in place), so handles never dangle — call sites can
// cache them in function-local statics.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/annotations.hpp"

namespace bento::obs {

namespace detail {
/// Constant-initialized: metrics are collected by default; flip off to make
/// every handle a no-op (bench proves the two modes are within noise on the
/// cell datapath, so "on" is the safe default for scenarios).
inline bool g_metrics_enabled = true;
}  // namespace detail

inline bool metrics_enabled() { return detail::g_metrics_enabled; }
inline void set_metrics_enabled(bool on) { detail::g_metrics_enabled = on; }

struct CounterCell {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeCell {
  std::string name;
  std::int64_t value = 0;
  std::int64_t high_water = std::numeric_limits<std::int64_t>::min();
};

struct HistogramCell {
  std::string name;
  // Ascending upper bounds; buckets has bounds.size() + 1 slots. A value v
  // lands in the first bucket whose bound is strictly greater than v; values
  // >= the last bound land in the final (overflow) bucket. So bucket 0 is
  // [-inf, bounds[0]), bucket i is [bounds[i-1], bounds[i]), and an exact
  // edge value bounds[i] belongs to bucket i + 1.
  std::vector<std::int64_t> bounds;
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = std::numeric_limits<std::int64_t>::max();
  std::int64_t max = std::numeric_limits<std::int64_t>::min();
};

/// Monotone event count. Copyable value handle; default-constructed handles
/// are inert.
class Counter {
 public:
  Counter() = default;
  BENTO_HOT void inc(std::uint64_t n = 1) {
    if (!detail::g_metrics_enabled || cell_ == nullptr) return;
    cell_->value += n;
  }
  std::uint64_t value() const { return cell_ != nullptr ? cell_->value : 0; }

 private:
  friend class Registry;
  explicit Counter(CounterCell* cell) : cell_(cell) {}
  CounterCell* cell_ = nullptr;
};

/// Point-in-time level with a high-water mark (queue depths, live objects).
class Gauge {
 public:
  Gauge() = default;
  BENTO_HOT void set(std::int64_t v) {
    if (!detail::g_metrics_enabled || cell_ == nullptr) return;
    cell_->value = v;
    if (v > cell_->high_water) cell_->high_water = v;
  }
  BENTO_HOT void add(std::int64_t delta) {
    if (!detail::g_metrics_enabled || cell_ == nullptr) return;
    set_unchecked(cell_->value + delta);
  }
  std::int64_t value() const { return cell_ != nullptr ? cell_->value : 0; }
  std::int64_t high_water() const {
    return cell_ != nullptr && cell_->high_water != std::numeric_limits<std::int64_t>::min()
               ? cell_->high_water
               : 0;
  }

 private:
  friend class Registry;
  explicit Gauge(GaugeCell* cell) : cell_(cell) {}
  void set_unchecked(std::int64_t v) {
    cell_->value = v;
    if (v > cell_->high_water) cell_->high_water = v;
  }
  GaugeCell* cell_ = nullptr;
};

/// Fixed-bucket histogram; bounds are frozen at registration. record() is a
/// short linear scan over the bounds (latency specs are ~a dozen entries,
/// branch behavior is stable), then three adds.
class Histogram {
 public:
  Histogram() = default;
  BENTO_HOT void record(std::int64_t v) {
    if (!detail::g_metrics_enabled || cell_ == nullptr) return;
    std::size_t i = 0;
    const std::size_t n = cell_->bounds.size();
    while (i < n && v >= cell_->bounds[i]) ++i;
    cell_->buckets[i] += 1;
    cell_->count += 1;
    cell_->sum += v;
    if (v < cell_->min) cell_->min = v;
    if (v > cell_->max) cell_->max = v;
  }
  std::uint64_t count() const { return cell_ != nullptr ? cell_->count : 0; }
  const HistogramCell* cell() const { return cell_; }

 private:
  friend class Registry;
  explicit Histogram(HistogramCell* cell) : cell_(cell) {}
  HistogramCell* cell_ = nullptr;
};

/// Default latency bucket upper bounds, microseconds of sim time: 50 µs up
/// to 1 s in a coarse exponential ladder (matching the scale of circuit
/// round trips in the testbed).
inline constexpr std::int64_t kLatencyBucketsUs[] = {
    50,     100,    250,    500,     1'000,   2'500,   5'000,
    10'000, 25'000, 50'000, 100'000, 250'000, 500'000, 1'000'000};

/// One read-only copy of everything the registry knows, plus free-form
/// pre-formatted sections appended by higher layers (World::snapshot_stats
/// adds per-server, per-container and per-node blocks).
struct Snapshot {
  std::vector<CounterCell> counters;
  std::vector<GaugeCell> gauges;
  std::vector<HistogramCell> histograms;
  std::vector<std::string> sections;

  /// Human-readable text dump (the "stats dump" artifact).
  std::string to_string() const;

  /// Machine-readable dump: one JSON object with sorted counter/gauge/
  /// histogram maps plus the free-form sections as escaped strings. Integer
  /// values only and map order fixed by the registry's sorted interning, so
  /// identical seeded runs produce byte-identical output (CI diffs these).
  void to_json(std::ostream& os) const;
  std::string to_json() const;
};

class Registry {
 public:
  /// Interning registration: same name returns a handle to the same cell.
  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  /// `bounds` must be strictly ascending and non-empty; ignored (the
  /// original spec sticks) when `name` is already registered.
  Histogram histogram(std::string_view name,
                      std::span<const std::int64_t> bounds = kLatencyBucketsUs);

  /// Zeroes every value in place. Handles stay valid — registrations are
  /// never dropped — so scenarios can reset between runs for determinism.
  void reset();

  Snapshot snapshot() const;

 private:
  // std::less<> enables string_view lookups without temporary strings.
  std::map<std::string, std::unique_ptr<CounterCell>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<GaugeCell>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramCell>, std::less<>> histograms_;
};

/// Process-global registry (single-threaded simulation; one world at a time).
Registry& registry();

}  // namespace bento::obs
