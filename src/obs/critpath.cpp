#include "obs/critpath.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <map>
#include <sstream>
#include <tuple>

namespace bento::obs {

namespace {

constexpr std::int32_t kAllRegions = -1;

std::string stage_token(Stage stage) {
  std::string name(stage_name(stage));
  for (char& c : name) {
    if (c == '.') c = '_';
  }
  return name;
}

void col(std::ostream& os, const std::string& s, std::size_t width) {
  for (std::size_t pad = s.size(); pad < width; ++pad) os << ' ';
  os << s;
}

void lcol(std::ostream& os, const std::string& s, std::size_t width) {
  os << s;
  for (std::size_t pad = s.size(); pad < width; ++pad) os << ' ';
}

/// "8333" -> "83.33": x100 fixed-point percent, integer arithmetic only.
std::string pct_x100(std::int64_t bp) {
  std::string out = std::to_string(bp / 100) + ".";
  const std::int64_t frac = bp < 0 ? -(bp % 100) : bp % 100;
  if (frac < 10) out += '0';
  out += std::to_string(frac);
  return out;
}

std::string region_label(std::int32_t region) {
  return region < 0 ? std::string("all") : "r" + std::to_string(region);
}

}  // namespace

std::string segment_name(Stage stage, SegKind kind) {
  switch (kind) {
    case SegKind::Exec: return stage_token(stage);
    case SegKind::Wait: return stage_token(stage) + "_wait";
    case SegKind::MailboxWait: return stage_token(stage) + "_mailbox_wait";
    case SegKind::LinkQueue: return stage_token(stage) + "_queue";
    case SegKind::LinkTransit: return stage_token(stage) + "_transit";
    case SegKind::ChaosDwell: return "chaos_dwell";
  }
  return "unknown";
}

CritReport compute_critical_paths(const CritInput& input) {
  CritReport out;
  std::map<std::uint32_t, const CritSpan*> by_id;
  for (const CritSpan& s : input.spans) {
    if (s.id != 0) by_id[s.id] = &s;
  }
  std::map<std::uint32_t, std::vector<std::uint32_t>> kids;
  for (const auto& [id, s] : by_id) {
    if (s->parent != 0 && by_id.count(s->parent) != 0) {
      kids[s->parent].push_back(id);
    }
  }
  std::vector<std::int64_t> barriers = input.barriers_us;
  std::sort(barriers.begin(), barriers.end());

  // One flattened subtree interval. The span hierarchy is causal, not
  // containment: children routinely outlive their (often instantaneous)
  // parents, so depth comes from the tree while intervals are taken at face
  // value and clamped to the root's window.
  struct Flat {
    const CritSpan* s = nullptr;
    std::int64_t b = 0;
    std::int64_t e = 0;
    std::int64_t first_child_b = std::numeric_limits<std::int64_t>::max();
    int depth = 0;
  };
  std::vector<Flat> flats;
  std::vector<std::int64_t> pts;
  std::vector<std::int64_t> link_us;

  for (const auto& [rid, root] : by_id) {
    if (root->parent != 0) continue;  // descendants ride their root's walk
    if (root->begin_us < 0 || root->end_us < root->begin_us) {
      ++out.incomplete;
      continue;
    }
    const std::int64_t rb = root->begin_us;
    const std::int64_t re = root->end_us;

    flats.clear();
    std::map<std::uint32_t, std::size_t> flat_of;
    std::vector<std::pair<std::uint32_t, int>> stack{{rid, 0}};
    while (!stack.empty()) {
      const auto [id, depth] = stack.back();
      stack.pop_back();
      const auto kit = kids.find(id);
      if (kit != kids.end()) {
        for (const std::uint32_t k : kit->second) stack.emplace_back(k, depth + 1);
      }
      const CritSpan* s = by_id.at(id);
      if (s->begin_us < 0) continue;  // wraparound stub; keep descending
      const std::int64_t b = std::max(s->begin_us, rb);
      const std::int64_t e = std::min(s->end_us < 0 ? re : s->end_us, re);
      if (e < b) continue;
      flat_of[id] = flats.size();
      flats.push_back(Flat{s, b, e,
                           std::numeric_limits<std::int64_t>::max(), depth});
    }
    for (const Flat& f : flats) {
      const auto pit = flat_of.find(f.s->parent);
      if (pit != flat_of.end()) {
        Flat& parent = flats[pit->second];
        parent.first_child_b = std::min(parent.first_child_b, f.b);
      }
    }

    // Elementary intervals: every clamped span boundary plus every
    // shard.barrier timestamp inside the root's window.
    pts.clear();
    for (const Flat& f : flats) {
      pts.push_back(f.b);
      pts.push_back(f.e);
    }
    const auto bar_lo = std::upper_bound(barriers.begin(), barriers.end(), rb);
    const auto bar_hi = std::lower_bound(barriers.begin(), barriers.end(), re);
    pts.insert(pts.end(), bar_lo, bar_hi);
    std::sort(pts.begin(), pts.end());
    pts.erase(std::unique(pts.begin(), pts.end()), pts.end());

    RequestBlame req;
    req.root_id = rid;
    req.ref = root->ref;
    req.begin_us = rb;
    req.total_us = re - rb;
    req.ok = root->ok;

    std::map<std::tuple<Stage, SegKind, std::uint32_t>, std::int64_t> acc;
    link_us.assign(flats.size(), 0);
    for (std::size_t i = 0; i + 1 < pts.size(); ++i) {
      const std::int64_t t0 = pts[i];
      const std::int64_t t1 = pts[i + 1];
      // Winner: the deepest span covering the interval; ties go to the
      // latest begin, then the highest id — the most recently dispatched
      // work. The root always covers, so every microsecond lands somewhere.
      const Flat* w = nullptr;
      std::size_t wi = 0;
      for (std::size_t j = 0; j < flats.size(); ++j) {
        const Flat& f = flats[j];
        if (f.b > t0 || f.e < t1) continue;
        if (w == nullptr || std::tuple(f.depth, f.b, f.s->id) >
                                std::tuple(w->depth, w->b, w->s->id)) {
          w = &f;
          wi = j;
        }
      }
      if (w == nullptr) continue;  // unreachable: the root covers [rb, re]
      const std::int64_t dt = t1 - t0;
      if (w->s->stage == Stage::NetLink) {
        link_us[wi] += dt;  // split into queue/transit/chaos below
        continue;
      }
      SegKind kind = SegKind::Exec;
      if (t0 >= w->first_child_b) {
        kind = std::binary_search(barriers.begin(), barriers.end(), t0)
                   ? SegKind::MailboxWait
                   : SegKind::Wait;
      }
      acc[{w->s->stage, kind, w->s->id >> 24}] += dt;
    }
    // Split each link's attributed time using the budget notes the network
    // stamped at send time: fault dwell first (so an injected throttle
    // surfaces even on a partially-attributed link), then the uncontended
    // transit budget, with the remainder as queue contention. The clamps
    // keep the request sum exact even when a note is missing.
    for (std::size_t j = 0; j < flats.size(); ++j) {
      const std::int64_t a = link_us[j];
      if (a <= 0) continue;
      const CritSpan& s = *flats[j].s;
      const std::uint32_t region = s.id >> 24;
      const std::int64_t chaos =
          std::min(std::max<std::int64_t>(s.chaos_us, 0), a);
      const std::int64_t transit =
          std::min(std::max<std::int64_t>(s.idle_us, 0), a - chaos);
      const std::int64_t queue = a - chaos - transit;
      if (chaos > 0) acc[{Stage::NetLink, SegKind::ChaosDwell, region}] += chaos;
      if (transit > 0) {
        acc[{Stage::NetLink, SegKind::LinkTransit, region}] += transit;
      }
      if (queue > 0) acc[{Stage::NetLink, SegKind::LinkQueue, region}] += queue;
    }
    req.segs.reserve(acc.size());
    for (const auto& [key, us] : acc) {
      req.segs.push_back(
          BlameSeg{std::get<0>(key), std::get<1>(key), std::get<2>(key), us});
    }
    out.requests.push_back(std::move(req));
  }
  return out;
}

BlameProfile aggregate_blame(const CritReport& report) {
  BlameProfile p;
  p.incomplete = report.incomplete;
  p.requests = report.requests.size();
  std::vector<std::int64_t> totals;
  totals.reserve(report.requests.size());
  for (const RequestBlame& r : report.requests) {
    totals.push_back(r.total_us);
    p.sum_us += r.total_us;
  }
  p.p50_us = slo_percentile(totals, 50);
  p.p99_us = slo_percentile(totals, 99);
  p.p999_us = slo_percentile(totals, 99.9);

  struct Agg {
    std::uint64_t requests = 0;
    std::int64_t total = 0;
    std::int64_t body = 0;
    std::int64_t tail = 0;
  };
  std::map<std::pair<std::string, std::int32_t>, Agg> cells;
  std::int64_t body_sum = 0;
  std::int64_t tail_sum = 0;
  std::map<std::pair<std::string, std::int32_t>, std::int64_t> mine;
  for (const RequestBlame& r : report.requests) {
    const bool body = r.total_us <= p.p50_us;
    const bool tail = r.total_us >= p.p99_us;
    if (body) {
      ++p.body_n;
      body_sum += r.total_us;
    }
    if (tail) {
      ++p.tail_n;
      tail_sum += r.total_us;
    }
    mine.clear();
    for (const BlameSeg& seg : r.segs) {
      const std::string name = segment_name(seg.stage, seg.kind);
      mine[{name, static_cast<std::int32_t>(seg.region)}] += seg.us;
      mine[{name, kAllRegions}] += seg.us;
    }
    for (const auto& [key, us] : mine) {
      Agg& a = cells[key];
      ++a.requests;
      a.total += us;
      if (body) a.body += us;
      if (tail) a.tail += us;
    }
  }
  if (p.body_n > 0) p.body_mean_us = body_sum / static_cast<std::int64_t>(p.body_n);
  if (p.tail_n > 0) p.tail_mean_us = tail_sum / static_cast<std::int64_t>(p.tail_n);

  // Group by segment, ordered by total blame descending (ties: name), with
  // the all-regions row leading each group and regions ascending after it.
  std::vector<std::pair<std::string, std::int64_t>> groups;
  for (const auto& [key, a] : cells) {
    if (key.second == kAllRegions) groups.emplace_back(key.first, a.total);
  }
  std::sort(groups.begin(), groups.end(), [](const auto& x, const auto& y) {
    if (x.second != y.second) return x.second > y.second;
    return x.first < y.first;
  });
  const auto n = static_cast<std::int64_t>(p.requests);
  for (const auto& [name, total] : groups) {
    (void)total;
    for (const auto& [key, a] : cells) {
      if (key.first != name) continue;
      BlameProfile::Row row;
      row.seg = name;
      row.region = key.second;
      row.requests = a.requests;
      row.total_us = a.total;
      row.mean_us = n > 0 ? a.total / n : 0;
      row.body_mean_us =
          p.body_n > 0 ? a.body / static_cast<std::int64_t>(p.body_n) : 0;
      row.tail_mean_us =
          p.tail_n > 0 ? a.tail / static_cast<std::int64_t>(p.tail_n) : 0;
      p.rows.push_back(std::move(row));
    }
  }
  return p;
}

std::string BlameProfile::top_segment() const {
  return rows.empty() ? std::string() : rows.front().seg;
}

void BlameProfile::to_json(std::ostream& os) const {
  os << "{\"critpath\":{\"requests\":" << requests
     << ",\"incomplete\":" << incomplete << ",\"total_us\":{\"sum\":" << sum_us
     << ",\"p50\":" << p50_us << ",\"p99\":" << p99_us
     << ",\"p99_9\":" << p999_us << "},\"cohorts\":{\"body_n\":" << body_n
     << ",\"body_mean_us\":" << body_mean_us << ",\"tail_n\":" << tail_n
     << ",\"tail_mean_us\":" << tail_mean_us << "},\"top\":\"" << top_segment()
     << "\",\"segments\":[";
  bool first = true;
  for (const Row& r : rows) {
    if (!first) os << ",";
    first = false;
    const std::int64_t share = sum_us > 0 ? r.total_us * 10000 / sum_us : 0;
    os << "{\"seg\":\"" << r.seg << "\",\"region\":\"" << region_label(r.region)
       << "\",\"requests\":" << r.requests << ",\"total_us\":" << r.total_us
       << ",\"share_x100\":" << share << ",\"mean_us\":" << r.mean_us
       << ",\"body_mean_us\":" << r.body_mean_us
       << ",\"tail_mean_us\":" << r.tail_mean_us << "}";
  }
  os << "]}}\n";
}

std::string BlameProfile::to_json() const {
  std::ostringstream ss;
  to_json(ss);
  return ss.str();
}

std::string BlameProfile::to_string() const {
  std::ostringstream os;
  os << "critical-path blame: " << requests << " requests";
  if (incomplete > 0) os << " (" << incomplete << " incomplete dropped)";
  os << ", " << sum_us << " us attributed\n";
  os << "ttlb: p50=" << p50_us << "us p99=" << p99_us << "us p99.9=" << p999_us
     << "us | body n=" << body_n << " mean=" << body_mean_us
     << "us | tail n=" << tail_n << " mean=" << tail_mean_us << "us\n";
  if (rows.empty()) return std::move(os).str();
  os << "segment                       region    req      total_us  share%  "
        "  mean_us  body_mean  tail_mean\n";
  for (const Row& r : rows) {
    const std::int64_t share = sum_us > 0 ? r.total_us * 10000 / sum_us : 0;
    lcol(os, r.seg, 30);
    lcol(os, region_label(r.region), 7);
    col(os, std::to_string(r.requests), 6);
    col(os, std::to_string(r.total_us), 14);
    col(os, pct_x100(share), 8);
    col(os, std::to_string(r.mean_us), 11);
    col(os, std::to_string(r.body_mean_us), 11);
    col(os, std::to_string(r.tail_mean_us), 11);
    os << "\n";
  }
  return std::move(os).str();
}

void add_critpath_series(const CritReport& report, SloInput& input) {
  std::map<std::string, bool> seen;
  for (const RequestBlame& r : report.requests) {
    for (const BlameSeg& s : r.segs) seen[segment_name(s.stage, s.kind)] = true;
  }
  std::map<std::string, std::int64_t> mine;
  for (const RequestBlame& r : report.requests) {
    input.add_sample("critpath.total_us", r.total_us);
    mine.clear();
    for (const BlameSeg& s : r.segs) mine[segment_name(s.stage, s.kind)] += s.us;
    for (const auto& [name, present] : seen) {
      (void)present;
      const auto it = mine.find(name);
      input.add_sample("critpath." + name + "_us",
                       it == mine.end() ? 0 : it->second);
    }
  }
}

bool BlameDiff::regressed() const {
  for (const Row& r : rows) {
    if (r.regressed) return true;
  }
  return false;
}

BlameDiff diff_blame(const BlameProfile& a, const BlameProfile& b,
                     std::uint64_t threshold_pct, std::int64_t floor_us) {
  BlameDiff d;
  d.threshold_pct = threshold_pct;
  d.floor_us = floor_us;
  d.a_requests = a.requests;
  d.b_requests = b.requests;
  // a_mean, a_tail, b_mean, b_tail per segment (all-regions rows only).
  std::map<std::string, std::array<std::int64_t, 4>> cells;
  for (const BlameProfile::Row& r : a.rows) {
    if (r.region != kAllRegions) continue;
    cells[r.seg][0] = r.mean_us;
    cells[r.seg][1] = r.tail_mean_us;
  }
  for (const BlameProfile::Row& r : b.rows) {
    if (r.region != kAllRegions) continue;
    cells[r.seg][2] = r.mean_us;
    cells[r.seg][3] = r.tail_mean_us;
  }
  const auto worse = [&](std::int64_t x, std::int64_t y) {
    return y - x > floor_us &&
           y * 100 > x * (100 + static_cast<std::int64_t>(threshold_pct));
  };
  for (const auto& [seg, m] : cells) {
    BlameDiff::Row row;
    row.seg = seg;
    row.a_mean_us = m[0];
    row.b_mean_us = m[2];
    row.a_tail_mean_us = m[1];
    row.b_tail_mean_us = m[3];
    row.regressed = worse(m[0], m[2]) || worse(m[1], m[3]);
    d.rows.push_back(std::move(row));
  }
  return d;
}

void BlameDiff::to_json(std::ostream& os) const {
  os << "{\"critpath_diff\":{\"threshold_pct\":" << threshold_pct
     << ",\"floor_us\":" << floor_us << ",\"a_requests\":" << a_requests
     << ",\"b_requests\":" << b_requests << ",\"verdict\":\""
     << (regressed() ? "fail" : "pass") << "\",\"segments\":[";
  bool first = true;
  for (const Row& r : rows) {
    if (!first) os << ",";
    first = false;
    os << "{\"seg\":\"" << r.seg << "\",\"a_mean_us\":" << r.a_mean_us
       << ",\"b_mean_us\":" << r.b_mean_us
       << ",\"a_tail_mean_us\":" << r.a_tail_mean_us
       << ",\"b_tail_mean_us\":" << r.b_tail_mean_us << ",\"regressed\":"
       << (r.regressed ? "true" : "false") << "}";
  }
  os << "]}}\n";
}

std::string BlameDiff::to_json() const {
  std::ostringstream ss;
  to_json(ss);
  return ss.str();
}

std::string BlameDiff::to_string() const {
  std::ostringstream os;
  os << "critpath diff: a=" << a_requests << " req, b=" << b_requests
     << " req, threshold " << threshold_pct << "% floor " << floor_us
     << "us -> " << (regressed() ? "REGRESSED" : "ok") << "\n";
  if (rows.empty()) return std::move(os).str();
  os << "segment                        a_mean_us  b_mean_us      delta  "
        "a_tail_us  b_tail_us tail_delta  verdict\n";
  for (const Row& r : rows) {
    lcol(os, r.seg, 30);
    col(os, std::to_string(r.a_mean_us), 10);
    col(os, std::to_string(r.b_mean_us), 11);
    col(os, std::to_string(r.b_mean_us - r.a_mean_us), 11);
    col(os, std::to_string(r.a_tail_mean_us), 11);
    col(os, std::to_string(r.b_tail_mean_us), 11);
    col(os, std::to_string(r.b_tail_mean_us - r.a_tail_mean_us), 11);
    os << "  " << (r.regressed ? "REGRESSED" : "ok") << "\n";
  }
  return std::move(os).str();
}

}  // namespace bento::obs
