#include "obs/slo.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>

#include "obs/trace.hpp"

namespace bento::obs {

namespace {

const char* agg_token(SloSpec::Agg agg) {
  switch (agg) {
    case SloSpec::Agg::Scalar: return "";
    case SloSpec::Agg::Percentile: return "p";
    case SloSpec::Agg::Count: return "count";
    case SloSpec::Agg::Mean: return "mean";
    case SloSpec::Agg::Max: return "max";
    case SloSpec::Agg::Min: return "min";
  }
  return "";
}

// Byte-stable numeric rendering: integers print bare, everything else with
// exactly three fixed decimals. Inputs are deterministic sim-domain values,
// so identical runs format identically.
void fmt_num(std::ostream& os, double v) {
  const double r = std::floor(v);
  if (r == v && std::abs(v) < 9.0e15) {
    os << static_cast<std::int64_t>(v);
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  os << buf;
}

void json_str(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

std::string SloSpec::name() const {
  if (agg == Agg::Scalar) return metric;
  std::ostringstream os;
  os << metric << ":" << agg_token(agg);
  if (agg == Agg::Percentile) {
    // p99 / p99.9: strip a trailing ".0" so whole percentiles stay short.
    std::ostringstream p;
    fmt_num(p, pct);
    std::string t = p.str();
    const std::size_t dot = t.find('.');
    if (dot != std::string::npos) {
      std::size_t last = t.size();
      while (last > dot + 1 && t[last - 1] == '0') --last;
      if (last == dot + 1) last = dot;
      t.resize(last);
    }
    os << t;
  }
  return os.str();
}

bool parse_slo_spec(std::string_view text, SloSpec& out, std::string* err) {
  const auto fail = [&](const char* why) {
    if (err != nullptr) *err = std::string(why) + ": '" + std::string(text) + "'";
    return false;
  };
  std::size_t op_pos = text.find("<=");
  SloSpec::Op op = SloSpec::Op::Le;
  if (op_pos == std::string_view::npos) {
    op_pos = text.find(">=");
    op = SloSpec::Op::Ge;
  }
  if (op_pos == std::string_view::npos) return fail("missing <= or >=");
  const std::string_view lhs = text.substr(0, op_pos);
  const std::string_view rhs = text.substr(op_pos + 2);
  if (lhs.empty() || rhs.empty()) return fail("empty metric or target");

  SloSpec spec;
  spec.op = op;
  char* end = nullptr;
  const std::string rhs_s(rhs);
  spec.target = std::strtod(rhs_s.c_str(), &end);
  if (end == rhs_s.c_str() || *end != '\0') return fail("bad target number");

  const std::size_t colon = lhs.find(':');
  if (colon == std::string_view::npos) {
    spec.metric = std::string(lhs);
    spec.agg = SloSpec::Agg::Scalar;
  } else {
    spec.metric = std::string(lhs.substr(0, colon));
    const std::string_view agg = lhs.substr(colon + 1);
    if (spec.metric.empty() || agg.empty()) return fail("empty metric or aggregator");
    if (agg == "count") {
      spec.agg = SloSpec::Agg::Count;
    } else if (agg == "mean") {
      spec.agg = SloSpec::Agg::Mean;
    } else if (agg == "max") {
      spec.agg = SloSpec::Agg::Max;
    } else if (agg == "min") {
      spec.agg = SloSpec::Agg::Min;
    } else if (agg.size() > 1 && agg[0] == 'p') {
      const std::string p_s(agg.substr(1));
      spec.pct = std::strtod(p_s.c_str(), &end);
      if (end == p_s.c_str() || *end != '\0') return fail("bad percentile");
      if (spec.pct <= 0 || spec.pct > 100) return fail("percentile out of (0,100]");
      spec.agg = SloSpec::Agg::Percentile;
    } else {
      return fail("unknown aggregator");
    }
  }
  out = spec;
  return true;
}

void SloInput::collect_latencies(const Recorder& rec) {
  for (const TraceEvent& e : rec.events()) {
    if (e.kind == Ev::StreamTtfb) {
      series["ttfb_us"].push_back(static_cast<std::int64_t>(e.b));
    } else if (e.kind == Ev::StreamTtlb) {
      series["ttlb_us"].push_back(static_cast<std::int64_t>(e.b));
    }
  }
}

std::int64_t slo_percentile(std::vector<std::int64_t> samples, double pct) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  // Nearest rank: the smallest sample with at least pct% of the mass at or
  // below it. rank is 1-based; the epsilon keeps an exact rank exact when
  // pct/100*n lands a hair above an integer (99.9% of 1000 must be rank
  // 999, not 1000), and the clamps guard pct == 0 and the top end.
  double rank = std::ceil(pct / 100.0 * static_cast<double>(samples.size()) - 1e-9);
  if (rank < 1) rank = 1;
  std::size_t idx = static_cast<std::size_t>(rank) - 1;
  if (idx >= samples.size()) idx = samples.size() - 1;
  return samples[idx];
}

SloReport evaluate_slos(std::string scenario, const std::vector<SloSpec>& specs,
                        const SloInput& input) {
  SloReport rep;
  rep.scenario = std::move(scenario);
  rep.results.reserve(specs.size());
  for (const SloSpec& spec : specs) {
    SloResult res;
    res.spec = spec;
    if (spec.agg == SloSpec::Agg::Scalar) {
      const auto it = input.scalars.find(spec.metric);
      if (it == input.scalars.end()) {
        res.missing = true;
      } else {
        res.actual = it->second;
      }
    } else {
      const auto it = input.series.find(spec.metric);
      const std::vector<std::int64_t>* s =
          it != input.series.end() ? &it->second : nullptr;
      if (spec.agg == SloSpec::Agg::Count) {
        // A missing series is an honest zero for count floors.
        res.actual = s != nullptr ? static_cast<double>(s->size()) : 0.0;
      } else if (s == nullptr || s->empty()) {
        res.missing = true;
      } else {
        switch (spec.agg) {
          case SloSpec::Agg::Percentile:
            res.actual = static_cast<double>(slo_percentile(*s, spec.pct));
            break;
          case SloSpec::Agg::Mean: {
            std::int64_t sum = 0;
            for (const std::int64_t v : *s) sum += v;
            res.actual = static_cast<double>(sum / static_cast<std::int64_t>(s->size()));
            break;
          }
          case SloSpec::Agg::Max:
            res.actual = static_cast<double>(*std::max_element(s->begin(), s->end()));
            break;
          case SloSpec::Agg::Min:
            res.actual = static_cast<double>(*std::min_element(s->begin(), s->end()));
            break;
          default: break;
        }
      }
    }
    if (res.missing) {
      res.ok = false;
    } else if (spec.op == SloSpec::Op::Le) {
      res.ok = res.actual <= spec.target;
    } else {
      res.ok = res.actual >= spec.target;
    }
    rep.results.push_back(std::move(res));
  }
  return rep;
}

bool SloReport::pass() const {
  for (const SloResult& r : results) {
    if (!r.ok) return false;
  }
  return true;
}

void SloReport::to_json(std::ostream& os) const {
  os << "{\"scenario\":";
  json_str(os, scenario);
  os << ",\"verdict\":\"" << (pass() ? "pass" : "fail") << "\",\"objectives\":[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i > 0) os << ",";
    const SloResult& r = results[i];
    os << "{\"name\":";
    json_str(os, r.spec.name());
    os << ",\"op\":\"" << (r.spec.op == SloSpec::Op::Le ? "<=" : ">=")
       << "\",\"target\":";
    fmt_num(os, r.spec.target);
    os << ",\"actual\":";
    if (r.missing) {
      os << "null";
    } else {
      fmt_num(os, r.actual);
    }
    os << ",\"pass\":" << (r.ok ? "true" : "false") << "}";
  }
  os << "]}\n";
}

std::string SloReport::to_json() const {
  std::ostringstream os;
  to_json(os);
  return os.str();
}

std::string SloReport::to_string() const {
  std::ostringstream os;
  os << "SLO verdict for " << scenario << ": " << (pass() ? "PASS" : "FAIL") << "\n";
  for (const SloResult& r : results) {
    os << "  [" << (r.ok ? "ok  " : "FAIL") << "] " << r.spec.name() << " "
       << (r.spec.op == SloSpec::Op::Le ? "<=" : ">=") << " ";
    fmt_num(os, r.spec.target);
    os << "  actual ";
    if (r.missing) {
      os << "(no data)";
    } else {
      fmt_num(os, r.actual);
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace bento::obs
