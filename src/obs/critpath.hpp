// Per-request critical-path attribution over the span forest (DESIGN.md §14).
//
// The flight recorder measures; this module explains. Given the spans of a
// run (plus the shard.barrier timestamps and the per-link budget notes the
// network stamps), compute_critical_paths() reconstructs, for every request
// root, *where each microsecond of its TTLB went*: which (stage, segment
// kind, region) was the most specific work in flight at every instant of
// the request's lifetime. The resulting blame vector sums exactly to the
// request's measured duration — 100% attribution, no unexplained gap, by
// construction (the root span always covers the interval being divided).
//
// Segment kinds:
//   exec          a span's own time before its first child started
//   wait          a span's time after a child started (sim-queue / in-flight)
//   mailbox_wait  a wait piece that begins exactly at a shard.barrier close —
//                 the request resumed via a cross-shard mailbox window
//   link_queue    net.link time beyond the idle budget: DRR queue contention
//   link_transit  net.link idle budget: serialize at spec bandwidth + latency
//   chaos_dwell   net.link time added by faults: throttled serialization and
//                 injected jitter delay (kNoteChaosDwell)
//
// Everything here is offline analysis over exported trace data: the hot
// paths (0 allocs/cell, ≤2% tracing overhead) never run this code.
//
// All arithmetic is integer µs and all output formatting is integer-only
// (percent values are emitted as x100 fixed point), so reports are
// byte-identical across hosts and across shard counts for the same trace.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/slo.hpp"
#include "obs/span.hpp"

namespace bento::obs {

/// How a microsecond on the critical path was spent (see header comment).
enum class SegKind : std::uint8_t {
  Exec,
  Wait,
  MailboxWait,
  LinkQueue,
  LinkTransit,
  ChaosDwell,
};

/// Stable segment name, e.g. (NetLink, LinkQueue) -> "net_link_queue",
/// (ClientInvoke, Wait) -> "client_invoke_wait", (_, ChaosDwell) ->
/// "chaos_dwell". These are the names the SLO grammar sees as
/// "critpath.<name>_us".
std::string segment_name(Stage stage, SegKind kind);

/// One span, as reconstructed offline (tools/bentotrace adapts its
/// TraceForest to this; tests build them directly).
struct CritSpan {
  std::uint32_t id = 0;
  std::uint32_t parent = 0;    // 0 = request root
  Stage stage = Stage::None;
  std::int64_t begin_us = -1;  // -1: begin lost to ring wraparound
  std::int64_t end_us = -1;    // -1: end never recorded
  bool ok = true;
  std::uint32_t ref = 0;       // kNoteRef (session / node id)
  std::int64_t idle_us = 0;    // kNoteLinkIdle: uncontended transit budget
  std::int64_t chaos_us = 0;   // kNoteChaosDwell: fault-added dwell
};

/// The analyzer's whole input: the span set plus the sim-µs timestamps of
/// shard.barrier events (window closes), used to tell mailbox waits apart
/// from ordinary in-flight waits.
struct CritInput {
  std::vector<CritSpan> spans;
  std::vector<std::int64_t> barriers_us;
};

/// One (stage, kind, region) cell of a request's blame vector.
struct BlameSeg {
  Stage stage = Stage::None;
  SegKind kind = SegKind::Exec;
  std::uint32_t region = 0;  // span id >> 24
  std::int64_t us = 0;
};

/// One request's critical path, fully attributed: sum(segs.us) == total_us.
struct RequestBlame {
  std::uint32_t root_id = 0;
  std::uint32_t ref = 0;  // root's kNoteRef (session index, when stamped)
  std::int64_t begin_us = 0;
  std::int64_t total_us = 0;  // root duration == measured TTLB
  bool ok = true;
  std::vector<BlameSeg> segs;  // sorted by (stage, kind, region)
};

struct CritReport {
  std::vector<RequestBlame> requests;  // root-id (= begin) order
  std::uint64_t incomplete = 0;  // roots dropped: begin or end missing
};

/// Reconstructs every request's critical path. A request is a span with
/// parent == 0 and both endpoints recorded; descendant spans are clamped to
/// the root's interval, and at every instant the deepest active span (ties:
/// latest begin, then highest id — the most recently dispatched work) takes
/// the blame.
CritReport compute_critical_paths(const CritInput& input);

/// Aggregated blame across requests, with p50-body vs p99-tail cohorts.
struct BlameProfile {
  struct Row {
    std::string seg;          // segment_name()
    std::int32_t region = -1; // -1: all regions, else region id
    std::uint64_t requests = 0;    // requests with >0 µs in this cell
    std::int64_t total_us = 0;
    std::int64_t mean_us = 0;      // total_us / all complete requests
    std::int64_t body_mean_us = 0; // per-request mean over the body cohort
    std::int64_t tail_mean_us = 0; // per-request mean over the tail cohort
  };

  std::uint64_t requests = 0;
  std::uint64_t incomplete = 0;
  std::int64_t sum_us = 0;  // sum of all request totals (== sum of blame)
  std::int64_t p50_us = 0;
  std::int64_t p99_us = 0;
  std::int64_t p999_us = 0;
  std::uint64_t body_n = 0;  // requests with total <= p50
  std::uint64_t tail_n = 0;  // requests with total >= p99
  std::int64_t body_mean_us = 0;
  std::int64_t tail_mean_us = 0;
  // Grouped by segment: each segment's all-regions row first (region == -1),
  // then its per-region rows; groups ordered by total blame descending
  // (ties: name) so the top row is the headline.
  std::vector<Row> rows;

  /// Name of the segment with the most total blame ("" when empty).
  std::string top_segment() const;

  /// Byte-stable single-line JSON: {"critpath":{...}}.
  void to_json(std::ostream& os) const;
  std::string to_json() const;

  /// Byte-stable human table.
  std::string to_string() const;
};

BlameProfile aggregate_blame(const CritReport& report);

/// Adds the critpath series to an SLO input: "critpath.total_us" plus one
/// "critpath.<segment>_us" series per segment seen anywhere in the report,
/// each with exactly one sample per complete request (0 when that request
/// spent nothing there) — so percentile gates compare like with like.
void add_critpath_series(const CritReport& report, SloInput& input);

/// Cross-run comparison of two blame profiles (run A = baseline, run B =
/// candidate). A segment regresses when its per-request mean — overall or
/// tail-cohort — grows by more than floor_us AND by more than threshold_pct
/// percent. Missing segments count as mean 0 on the side they miss.
struct BlameDiff {
  struct Row {
    std::string seg;
    std::int64_t a_mean_us = 0;
    std::int64_t b_mean_us = 0;
    std::int64_t a_tail_mean_us = 0;
    std::int64_t b_tail_mean_us = 0;
    bool regressed = false;
  };
  std::uint64_t threshold_pct = 0;
  std::int64_t floor_us = 0;
  std::uint64_t a_requests = 0;
  std::uint64_t b_requests = 0;
  std::vector<Row> rows;  // segment-name order

  bool regressed() const;
  void to_json(std::ostream& os) const;
  std::string to_json() const;
  std::string to_string() const;
};

BlameDiff diff_blame(const BlameProfile& a, const BlameProfile& b,
                     std::uint64_t threshold_pct, std::int64_t floor_us);

}  // namespace bento::obs
