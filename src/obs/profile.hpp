// Shard-aware self-profiling for the region-sharded simulator
// (DESIGN.md §13).
//
// The profiler watches the windowed executor from the inside: every
// conservative-lookahead window reports its span, its per-region event
// counts, mailbox drain volume and depth watermarks, exclusive-event
// frequency and the lookahead horizon — all *sim-domain* quantities that
// are pure functions of (seed, topology, region split), recorded through
// the allocation-free metrics registry plus fixed-size tallies in this
// class. That deterministic half is what `to_json()` (default),
// `to_section()` and the `ShardProfile` block in stats dumps expose, and it
// is byte-identical across repeated runs and across shard counts.
//
// The wall-clock half — per-worker busy time, barrier wait, mailbox-drain
// and trace-merge time — is observational only: it is collected into
// cache-line-padded per-worker slots (one steady_clock pair per window per
// bucket, so the cost is per-window, not per-event), never feeds back into
// the simulation, and is exported only on request (`to_json(os, true)`),
// keeping the default artifacts deterministic. The four coordinator buckets
// {dispatch, barrier wait, mailbox drain, merge} partition the windowed
// run loop by construction, which is what lets `bentotrace shards`
// attribute ≥95% of windowed wall time.
//
// Determinism contract. Hooks mutate profiler state only from the
// coordinating thread at barriers (serial context); the sole exception is
// add_worker_busy, which each worker calls once per window into its own
// padded slot and which feeds the wall half only. Registry writes happen on
// the coordinator, i.e. metric slot 0, so merged snapshots cannot depend on
// the worker count. The simulator gates every deterministic hook on
// `regions > 1`: multi-region topologies run the windowed executor at every
// shard count (so the profile is shard-count-invariant), while single-region
// topologies — whose solo "windows" under shards>1 are an executor artifact
// — profile as empty everywhere, matching their serial runs.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "util/annotations.hpp"

namespace bento::obs {

/// Monotonic clock read for profiler self-timing. Observational only: the
/// values never reach a handler, a schedule decision, or a deterministic
/// artifact, so sim determinism is untouched.
inline std::uint64_t prof_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          // bentolint: allow(BL101 observational profiler clock, never feeds back into simulation, DESIGN.md §13)
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Merged, read-only view of the profiler; see ShardProfiler::snapshot().
struct ShardProfileSnapshot {
  struct RegionRow {
    std::uint32_t id = 0;
    std::uint64_t events = 0;   // events dispatched through windows
    std::uint64_t windows = 0;  // windows in which this region ran >= 1 event
  };
  struct WorkerRow {
    unsigned id = 0;
    std::uint64_t busy_ns = 0;  // inside run_worker_window
    std::uint64_t windows = 0;
    std::uint64_t events = 0;
  };

  // Deterministic (sim-domain) half.
  std::uint64_t windows = 0;
  std::uint64_t window_events = 0;
  std::uint64_t max_window_events = 0;
  std::int64_t span_sum_us = 0;
  std::int64_t span_min_us = 0;  // 0 when windows == 0
  std::int64_t span_max_us = 0;
  std::uint64_t mailbox_events = 0;
  std::uint64_t mailbox_depth_hw = 0;
  std::uint64_t exclusive_events = 0;
  std::int64_t lookahead_us = 0;
  std::vector<RegionRow> regions;  // regions with >= 1 windowed event, by id

  // Wall-clock (observational) half. dispatch_wall_ns is the coordinator's
  // share of run_window (total minus barrier wait and trace merge — i.e.
  // its own region dispatch plus round publish/wakeup); together with
  // barrier wait, drain and merge it partitions run_wall_ns up to the
  // per-window T_min scan and loop bookkeeping.
  std::uint64_t run_wall_ns = 0;
  std::uint64_t dispatch_wall_ns = 0;
  std::uint64_t barrier_wall_ns = 0;
  std::uint64_t drain_wall_ns = 0;
  std::uint64_t merge_wall_ns = 0;
  std::uint64_t exclusive_wall_ns = 0;
  std::vector<WorkerRow> workers;  // workers with >= 1 window, by id

  /// max/mean of per-region windowed event counts, in thousandths (1000 =
  /// perfectly balanced). Integer math, so it is byte-stable in JSON.
  std::uint64_t imbalance_x1000() const;

  /// `{"shard_profile":{...}}`. The default omits the wall-clock half and is
  /// byte-identical across repeated runs at fixed (seed, topology, region
  /// split) — and across shard counts. `include_wall` adds a "wall" object
  /// for bentotop / stall attribution; that file is not byte-stable.
  void to_json(std::ostream& os, bool include_wall = false) const;
  std::string to_json(bool include_wall = false) const;

  /// Deterministic text block appended to Snapshot::sections by
  /// World::snapshot_stats (the `ShardProfile` section of stats dumps).
  std::string to_section() const;
};

/// Renders one bentotop frame: deterministic window/region balance plus —
/// when the snapshot carries wall data — per-worker occupancy bars and the
/// {dispatch, barrier, drain, merge} attribution line.
void render_top_frame(const ShardProfileSnapshot& s, std::ostream& os);

class ShardProfiler {
 public:
  ShardProfiler();

  /// Cheap global switch; on by default ("always-cheap" contract: the hooks
  /// cost one branch when off, a handful of adds per *window* when on).
  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Zeroes all tallies (serial context only). Registry-backed metrics are
  /// zeroed by Registry::reset(), not here.
  void reset();

  // --- Deterministic hooks: coordinating thread, barrier context only.

  /// Window closed: `region_events[i]` = events region i dispatched in it.
  BENTO_HOT void on_window_close(const std::uint64_t* region_events,
                                 std::uint32_t region_count,
                                 std::int64_t span_us);
  /// Mailboxes drained at a barrier: total events moved and deepest box.
  BENTO_HOT void on_mailbox_drain(std::uint64_t drained, std::uint64_t max_depth);
  BENTO_HOT void on_exclusive();
  void record_lookahead(std::int64_t us);

  // --- Wall-clock hooks (observational half).

  /// Each worker reports once per window into its own padded slot (the
  /// coordinator is worker 0; its row shows pure dispatch occupancy).
  BENTO_HOT void add_worker_busy(unsigned worker, std::uint64_t ns,
                                 std::uint64_t events);
  /// Whole run_window() call as seen by the coordinator. The dispatch
  /// bucket is derived as window − barrier − merge, so together with drain
  /// and exclusive the buckets partition the windowed loop by construction
  /// (scheduling gaps on oversubscribed hosts land in dispatch, not in an
  /// unattributed remainder).
  BENTO_HOT void add_window_wall(std::uint64_t ns) { window_wall_ns_ += ns; }
  BENTO_HOT void add_barrier_wait(std::uint64_t ns) { barrier_wall_ns_ += ns; }
  BENTO_HOT void add_drain_wall(std::uint64_t ns) { drain_wall_ns_ += ns; }
  BENTO_HOT void add_merge_wall(std::uint64_t ns) { merge_wall_ns_ += ns; }
  void add_exclusive_wall(std::uint64_t ns) { exclusive_wall_ns_ += ns; }
  void add_run_wall(std::uint64_t ns) { run_wall_ns_ += ns; }

  /// Merged view (serial context only — workers must be parked).
  ShardProfileSnapshot snapshot() const;

 private:
  struct RegionTally {
    std::uint64_t events = 0;
    std::uint64_t windows = 0;
  };
  struct alignas(64) WorkerWall {
    std::uint64_t busy_ns = 0;
    std::uint64_t windows = 0;
    std::uint64_t events = 0;
  };

  bool enabled_ = true;

  // Deterministic tallies. Fixed arrays sized for the simulator ceilings so
  // the hot hooks never allocate.
  std::uint64_t windows_ = 0;
  std::uint64_t window_events_ = 0;
  std::uint64_t max_window_events_ = 0;
  std::int64_t span_sum_us_ = 0;
  std::int64_t span_min_us_ = 0;
  std::int64_t span_max_us_ = 0;
  std::uint64_t mailbox_events_ = 0;
  std::uint64_t mailbox_depth_hw_ = 0;
  std::uint64_t exclusive_events_ = 0;
  std::int64_t lookahead_us_ = 0;
  std::uint32_t regions_hw_ = 0;  // highest region_count seen
  RegionTally region_[256];       // == Simulator::kMaxRegions

  // Wall-clock tallies.
  std::uint64_t run_wall_ns_ = 0;
  std::uint64_t window_wall_ns_ = 0;
  std::uint64_t barrier_wall_ns_ = 0;
  std::uint64_t drain_wall_ns_ = 0;
  std::uint64_t merge_wall_ns_ = 0;
  std::uint64_t exclusive_wall_ns_ = 0;
  WorkerWall worker_[kMaxMetricWorkers];

  // Registry-backed mirrors of the deterministic half, so the standard
  // stats snapshot carries shard.* metrics without extra plumbing.
  Counter m_windows_;
  Counter m_window_events_;
  Counter m_mailbox_events_;
  Counter m_exclusive_;
  Gauge m_mailbox_depth_;
  Gauge m_lookahead_us_;
  Histogram m_span_us_;
  Histogram m_events_per_window_;
};

/// Process-global profiler (mirrors recorder()/registry()).
ShardProfiler& shard_profiler();

}  // namespace bento::obs
