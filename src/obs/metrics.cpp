#include "obs/metrics.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace bento::obs {

Registry& registry() {
  static Registry instance;
  return instance;
}

void detail::HistogramData::merge_into(HistogramCell& out) const {
  const std::size_t nb = bounds.size() + 1;
  out.name = name;
  out.bounds = bounds;
  out.buckets.assign(nb, 0);
  for (unsigned w = 0; w < kMaxMetricWorkers; ++w) {
    for (std::size_t i = 0; i < nb; ++i) out.buckets[i] += buckets[w * nb + i];
  }
  out.count = 0;
  out.sum = 0;
  out.min = std::numeric_limits<std::int64_t>::max();
  out.max = std::numeric_limits<std::int64_t>::min();
  for (const detail::HistogramSlot& s : slots) {
    out.count += s.count;
    out.sum += s.sum;
    if (s.min < out.min) out.min = s.min;
    if (s.max > out.max) out.max = s.max;
  }
}

Counter Registry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    auto cell = std::make_unique<detail::CounterData>();
    cell->name = std::string(name);
    it = counters_.emplace(std::string(name), std::move(cell)).first;
  }
  return Counter(it->second.get());
}

Gauge Registry::gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    auto cell = std::make_unique<detail::GaugeData>();
    cell->name = std::string(name);
    it = gauges_.emplace(std::string(name), std::move(cell)).first;
  }
  return Gauge(it->second.get());
}

Histogram Registry::histogram(std::string_view name,
                              std::span<const std::int64_t> bounds) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (bounds.empty()) {
      throw std::invalid_argument("Registry::histogram: empty bucket bounds");
    }
    if (!std::is_sorted(bounds.begin(), bounds.end()) ||
        std::adjacent_find(bounds.begin(), bounds.end()) != bounds.end()) {
      throw std::invalid_argument(
          "Registry::histogram: bounds must be strictly ascending");
    }
    auto cell = std::make_unique<detail::HistogramData>();
    cell->name = std::string(name);
    cell->bounds.assign(bounds.begin(), bounds.end());
    cell->buckets.assign((bounds.size() + 1) * kMaxMetricWorkers, 0);
    it = histograms_.emplace(std::string(name), std::move(cell)).first;
  }
  return Histogram(it->second.get());
}

void Registry::reset() {
  for (auto& [name, cell] : counters_) {
    for (auto& s : cell->slots) s.value = 0;
  }
  for (auto& [name, cell] : gauges_) {
    for (auto& s : cell->slots) {
      s.value = 0;
      s.high_water = std::numeric_limits<std::int64_t>::min();
      s.touched = false;
    }
  }
  for (auto& [name, cell] : histograms_) {
    std::fill(cell->buckets.begin(), cell->buckets.end(), 0);
    for (auto& s : cell->slots) {
      s.count = 0;
      s.sum = 0;
      s.min = std::numeric_limits<std::int64_t>::max();
      s.max = std::numeric_limits<std::int64_t>::min();
    }
  }
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, cell] : counters_) {
    snap.counters.push_back(CounterCell{cell->name, cell->merged()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, cell] : gauges_) {
    snap.gauges.push_back(GaugeCell{cell->name, cell->merged_value(),
                                    cell->merged_high_water()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, cell] : histograms_) {
    HistogramCell merged;
    cell->merge_into(merged);
    snap.histograms.push_back(std::move(merged));
  }
  return snap;
}

std::string Snapshot::to_string() const {
  std::ostringstream os;
  os << "=== metrics snapshot ===\n";
  if (!counters.empty()) {
    os << "counters:\n";
    for (const auto& c : counters) os << "  " << c.name << " = " << c.value << "\n";
  }
  if (!gauges.empty()) {
    os << "gauges:\n";
    for (const auto& g : gauges) {
      os << "  " << g.name << " = " << g.value;
      if (g.high_water != std::numeric_limits<std::int64_t>::min()) {
        os << " (high-water " << g.high_water << ")";
      }
      os << "\n";
    }
  }
  for (const auto& h : histograms) {
    os << "histogram " << h.name << ": count=" << h.count;
    if (h.count > 0) {
      os << " sum=" << h.sum << " min=" << h.min << " max=" << h.max
         << " mean=" << (h.sum / static_cast<std::int64_t>(h.count));
    }
    os << "\n";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (h.buckets[i] == 0) continue;
      os << "  ";
      if (i == 0) {
        os << "(-inf, " << h.bounds[0] << ")";
      } else if (i == h.bounds.size()) {
        os << "[" << h.bounds.back() << ", +inf)";
      } else {
        os << "[" << h.bounds[i - 1] << ", " << h.bounds[i] << ")";
      }
      os << " = " << h.buckets[i] << "\n";
    }
  }
  for (const auto& section : sections) {
    os << section;
    if (!section.empty() && section.back() != '\n') os << "\n";
  }
  return os.str();
}

namespace {
void json_escape(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}
}  // namespace

void Snapshot::to_json(std::ostream& os) const {
  os << "{\"counters\":{";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    if (i > 0) os << ",";
    json_escape(os, counters[i].name);
    os << ":" << counters[i].value;
  }
  os << "},\"gauges\":{";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    if (i > 0) os << ",";
    const GaugeCell& g = gauges[i];
    const std::int64_t high =
        g.high_water == std::numeric_limits<std::int64_t>::min() ? 0 : g.high_water;
    json_escape(os, g.name);
    os << ":{\"value\":" << g.value << ",\"high_water\":" << high << "}";
  }
  os << "},\"histograms\":{";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    if (i > 0) os << ",";
    const HistogramCell& h = histograms[i];
    json_escape(os, h.name);
    os << ":{\"count\":" << h.count << ",\"sum\":" << h.sum
       << ",\"min\":" << (h.count > 0 ? h.min : 0)
       << ",\"max\":" << (h.count > 0 ? h.max : 0) << ",\"buckets\":[";
    for (std::size_t j = 0; j < h.buckets.size(); ++j) {
      if (j > 0) os << ",";
      // [upper_bound, count]; the final overflow bucket has a null bound.
      os << "[";
      if (j < h.bounds.size()) {
        os << h.bounds[j];
      } else {
        os << "null";
      }
      os << "," << h.buckets[j] << "]";
    }
    os << "]}";
  }
  os << "},\"sections\":[";
  for (std::size_t i = 0; i < sections.size(); ++i) {
    if (i > 0) os << ",";
    json_escape(os, sections[i]);
  }
  os << "]}\n";
}

std::string Snapshot::to_json() const {
  std::ostringstream os;
  to_json(os);
  return os.str();
}

}  // namespace bento::obs
