// Causal span tracing (DESIGN.md §8): a 64-bit trace-id/span-id context that
// follows one request across the client, every relay hop, the conclave and
// the Stem firewall.
//
// The context is *sidecar* state: it never touches the 509-byte wire format.
// The simulator captures the current context into every scheduled event and
// restores it around dispatch (simulator.hpp), and sim::Network pins it to
// each queued packet, so causality survives timer delays, link queues and
// the conclave ecall overhead without any layer passing it explicitly.
//
// Spans are recorded into the flight-recorder ring as three POD event kinds
// (SpanBegin / SpanEnd / SpanNote) — same 24-byte events, same 0-alloc
// record() hot path, same wraparound semantics. Tree structure lives in the
// operands (SpanBegin.b packs the parent id and stage) and is reconstructed
// offline by tools/bentotrace.
//
// The "current" context is thread_local: each sharded-simulator worker
// carries its own, set from the dispatched event's captured context, so
// causality propagation is race-free under parallel windows (DESIGN.md §12).
// Span ids are allocated from per-region counters — id = region << 24 | n,
// with region 0 keeping the bare counter — so the ids a partitioned
// topology hands out are a function of the region split alone and replay
// identically at any shard count (and unpartitioned runs allocate exactly
// the ids they always did).
#pragma once

#include <cstdint>

#include "obs/trace.hpp"

namespace bento::obs {

/// Pipeline stages a request crosses; each span is tagged with one. Stable
/// names come from stage_name() and are what bentotrace aggregates by.
enum class Stage : std::uint8_t {
  None = 0,
  ClientConnect,   // circuit build + Bento stream open to the box
  ClientSpawn,     // spawn request -> SpawnReply (incl. attestation)
  ClientUpload,    // sealed upload -> UploadReply (tokens)
  ClientInvoke,    // invoke -> first Output back at the client
  ClientShutdown,  // shutdown -> Ok
  NetLink,         // one network transit: queue wait + serialize + propagate
  RelayForward,    // per-cell relay processing: crypt + recognition + route
  ServerHandle,    // BentoServer handling one Bento message
  FnDispatch,      // server -> function routing; conclave ecall transition
  FnExecute,       // function code running inside the sandbox
  StemMediate,     // Stem firewall mediating one control-plane call
  Attest,          // spawn-time remote attestation round
  StoreAppend,     // sealed blob store: frame sealed + committed to the log
  StoreCompact,    // sealed blob store: background segment compaction run
  StoreReplay,     // sealed blob store: crash-consistent log replay
  kCount,
};

/// Stable lower_snake stage names ("client.invoke", "net.link", ...).
const char* stage_name(Stage stage);

/// Startup self-check, mirror of ev_names_complete() for stages.
bool stage_names_complete();

/// SpanNote note kinds (high 32 bits of SpanNote.b).
inline constexpr std::uint32_t kNoteRef = 0;        // circuit/container/node id
inline constexpr std::uint32_t kNoteWireBytes = 1;  // message size on the wire
inline constexpr std::uint32_t kNoteChaos = 2;      // injected chaos::FaultKind
// Per-link budget notes stamped by sim::Network at send time, consumed by
// the offline critical-path analyzer (obs/critpath.hpp, DESIGN.md §14):
// the uncontended transit µs at spec bandwidth (serialize + propagate) and
// the fault-added dwell µs (throttled serialization + injected delay).
inline constexpr std::uint32_t kNoteLinkIdle = 3;   // idle transit budget, µs
inline constexpr std::uint32_t kNoteChaosDwell = 4; // fault-added dwell, µs

/// The propagated context: which request (trace) and which span is the
/// causal parent of whatever happens next. 64 bits total, trivially
/// copyable, zero-initialized == "no active request".
struct SpanContext {
  std::uint32_t trace_id = 0;
  std::uint32_t span_id = 0;
  constexpr bool active() const { return span_id != 0; }
};

/// Regions the span-id space is partitioned across (8-bit region tag +
/// 24-bit counter). The simulator enforces the same cap on add_region().
inline constexpr std::uint32_t kMaxSpanRegions = 256;

namespace detail {
// bentolint: allow(BL105 thread_local span context for the sharded simulator, DESIGN.md §12)
inline thread_local SpanContext g_current_span{};
// Per-region id counters, indexed by trace_region(). Padded to a cache line
// each: concurrent workers only ever touch their own region's slot.
struct alignas(64) SpanIdSlot {
  std::uint32_t next = 1;
};
inline SpanIdSlot g_span_ids[kMaxSpanRegions]{};
// Matches Recorder::generation(); a mismatch resets the id counters so
// seeded reruns that re-enable() the ring allocate identical span ids. Only
// checked/written from serial context (the simulator syncs it at run start).
inline std::uint64_t g_span_generation = 0;
}  // namespace detail

/// Context the next scheduled event / sent packet will inherit.
inline SpanContext current_span() { return detail::g_current_span; }
inline void set_current_span(SpanContext ctx) { detail::g_current_span = ctx; }

/// Drops the active context and restarts span id allocation. enable()ing
/// the recorder implies this (via the generation check in span_alloc_id).
inline void reset_spans() {
  detail::g_current_span = SpanContext{};
  for (auto& slot : detail::g_span_ids) slot.next = 1;
}

/// True when spans would actually land in the ring; begin/end collapse to a
/// couple of loads when this is false.
inline bool span_tracing_enabled() {
  const Recorder& r = recorder();
  return r.enabled() && (r.mask() & Recorder::mask_of(Ev::SpanBegin)) != 0;
}

/// Re-syncs the generation counter with the recorder (resetting span ids if
/// the ring was re-enabled since the last sync). Called by the simulator at
/// run start so the lazy check in span_alloc_id never fires on a worker
/// thread mid-window.
inline void sync_span_generation() {
  const std::uint64_t gen = recorder().generation();
  if (detail::g_span_generation != gen) {
    detail::g_span_generation = gen;
    reset_spans();
  }
}

namespace detail {
inline std::uint32_t span_alloc_id() {
  sync_span_generation();
  const std::uint32_t region = trace_region() < kMaxSpanRegions ? trace_region() : 0;
  return (region << 24) | g_span_ids[region].next++;
}
}  // namespace detail

/// Records a begin for a child of the current context without making it
/// current. Returns the new span id, or 0 when tracing is off or no request
/// context is active (callers treat 0 as "no span", all other entry points
/// accept it silently).
std::uint32_t open_span(Stage stage, std::uint32_t ref = 0);

/// Ends a span by id. The stage is recorded redundantly so wraparound- or
/// teardown-orphaned ends still attribute to a stage. No-op for id 0.
void end_span(std::uint32_t span_id, Stage stage, bool ok = true);

/// Attaches a numeric annotation to a span. No-op for id 0.
void span_note(std::uint32_t span_id, std::uint32_t note_kind, std::uint32_t value);

/// RAII span: begins on construction, becomes the current context, ends and
/// restores the previous context on destruction.
///
/// Two construction modes:
///  - child (default): inert unless a request context is already active —
///    instrumentation sprinkled through relays and servers costs nothing
///    for traffic nobody asked to trace;
///  - root (kRoot tag): starts a new trace when no context is active (the
///    client-side request origin). Under an active context it degrades to a
///    child, so nested client calls still form one tree.
///
/// detach() keeps the span open past the scope for async completions; the
/// holder ends it later with end_span(id, stage, ok).
class SpanScope {
 public:
  struct RootTag {};
  static constexpr RootTag kRoot{};

  explicit SpanScope(Stage stage, std::uint32_t ref = 0) : stage_(stage) {
    prev_ = current_span();
    if (!prev_.active() || !span_tracing_enabled()) return;
    begin(prev_.trace_id, prev_.span_id, ref);
  }

  SpanScope(RootTag, Stage stage, std::uint32_t ref = 0) : stage_(stage) {
    prev_ = current_span();
    if (!span_tracing_enabled()) return;
    if (prev_.active()) {
      begin(prev_.trace_id, prev_.span_id, ref);
    } else {
      begin(0, 0, ref);
    }
  }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  ~SpanScope() {
    if (id_ == 0) return;
    set_current_span(prev_);
    if (!detached_) end_span(id_, stage_, ok_);
  }

  std::uint32_t id() const { return id_; }
  void set_ok(bool ok) { ok_ = ok; }

  /// Leaves the span open past this scope (the previous context is still
  /// restored). Returns the id to pass to end_span() later.
  std::uint32_t detach() {
    detached_ = true;
    return id_;
  }

 private:
  void begin(std::uint32_t trace_id, std::uint32_t parent, std::uint32_t ref);

  SpanContext prev_{};
  std::uint32_t id_ = 0;
  Stage stage_;
  bool ok_ = true;
  bool detached_ = false;
};

}  // namespace bento::obs
