#include "obs/span.hpp"

#include <string_view>

namespace bento::obs {

const char* stage_name(Stage stage) {
  switch (stage) {
    case Stage::None: return "none";
    case Stage::ClientConnect: return "client.connect";
    case Stage::ClientSpawn: return "client.spawn";
    case Stage::ClientUpload: return "client.upload";
    case Stage::ClientInvoke: return "client.invoke";
    case Stage::ClientShutdown: return "client.shutdown";
    case Stage::NetLink: return "net.link";
    case Stage::RelayForward: return "relay.forward";
    case Stage::ServerHandle: return "server.handle";
    case Stage::FnDispatch: return "fn.dispatch";
    case Stage::FnExecute: return "fn.execute";
    case Stage::StemMediate: return "stem.mediate";
    case Stage::Attest: return "attest";
    case Stage::StoreAppend: return "store.append";
    case Stage::StoreCompact: return "store.compact";
    case Stage::StoreReplay: return "store.replay";
    case Stage::kCount: break;
  }
  return "unknown";
}

bool stage_names_complete() {
  for (unsigned i = 0; i < static_cast<unsigned>(Stage::kCount); ++i) {
    const char* name = stage_name(static_cast<Stage>(i));
    if (name == nullptr || name[0] == '\0') return false;
    if (std::string_view(name) == "unknown") return false;
  }
  return true;
}

std::uint32_t open_span(Stage stage, std::uint32_t ref) {
  const SpanContext ctx = current_span();
  if (!ctx.active() || !span_tracing_enabled()) return 0;
  const std::uint32_t id = detail::span_alloc_id();
  trace(Ev::SpanBegin, id,
        (std::uint64_t{ctx.span_id} << 32) | static_cast<std::uint64_t>(stage));
  if (ref != 0) span_note(id, kNoteRef, ref);
  return id;
}

void end_span(std::uint32_t span_id, Stage stage, bool ok) {
  if (span_id == 0) return;
  trace(Ev::SpanEnd, span_id, static_cast<std::uint64_t>(stage), ok);
}

void span_note(std::uint32_t span_id, std::uint32_t note_kind, std::uint32_t value) {
  if (span_id == 0) return;
  trace(Ev::SpanNote, span_id,
        (std::uint64_t{note_kind} << 32) | std::uint64_t{value});
}

void SpanScope::begin(std::uint32_t trace_id, std::uint32_t parent,
                      std::uint32_t ref) {
  id_ = detail::span_alloc_id();
  trace(Ev::SpanBegin, id_,
        (std::uint64_t{parent} << 32) | static_cast<std::uint64_t>(stage_));
  if (ref != 0) span_note(id_, kNoteRef, ref);
  set_current_span(SpanContext{trace_id == 0 ? id_ : trace_id, id_});
}

}  // namespace bento::obs
