// Declarative service-level objectives over a simulated run (DESIGN.md §13).
//
// An SLO is a predicate over an *actual* computed from run data: a
// percentile / count / mean / max over a sample series (e.g. "ttfb_us", the
// stream.ttfb latencies pulled from the trace ring), or a named scalar the
// scenario supplies (e.g. "cells_per_sim_sec", "region_imbalance"). All
// inputs are sim-domain quantities, so a report — including the
// BENCH_scenarios.json rendering — is byte-identical across repeated runs
// at fixed (seed, topology, shard count). Wall-clock numbers are
// deliberately not admissible inputs; they live in the profiler's opt-in
// wall section instead.
//
// Spec strings (parse_slo_spec):
//   ttfb_us:p99<=250000        p99 of series "ttfb_us" must be <= 250000
//   ttfb_us:p99.9<=400000      fractional percentiles allowed
//   ttfb_us:count>=100000      sample count floor
//   ttlb_us:mean<=120000       mean ceiling
//   cells_per_sim_sec>=50000   scalar floor (no aggregator)
//   region_imbalance<=1.5      scalar ceiling
// Percentiles use the nearest-rank definition on the sorted series.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace bento::obs {

class Recorder;

struct SloSpec {
  enum class Agg { Scalar, Percentile, Count, Mean, Max, Min };
  enum class Op { Le, Ge };

  std::string metric;       // series or scalar name
  Agg agg = Agg::Scalar;
  double pct = 0;           // percentile, for Agg::Percentile
  Op op = Op::Le;
  double target = 0;

  /// Canonical display name, e.g. "ttfb_us:p99" or "cells_per_sim_sec".
  std::string name() const;
};

/// Parses one spec string; returns false (with *err set, if given) on
/// malformed input. Accepted ops: "<=" and ">=".
bool parse_slo_spec(std::string_view text, SloSpec& out, std::string* err = nullptr);

/// Run data the objectives are evaluated against.
struct SloInput {
  std::map<std::string, std::vector<std::int64_t>> series;
  std::map<std::string, double> scalars;

  void add_sample(const std::string& name, std::int64_t v) {
    series[name].push_back(v);
  }
  void set_scalar(const std::string& name, double v) { scalars[name] = v; }

  /// Pulls latency series out of the trace ring: stream.ttfb -> "ttfb_us",
  /// stream.ttlb -> "ttlb_us" (operand b is the sim-µs latency).
  void collect_latencies(const Recorder& rec);
};

struct SloResult {
  SloSpec spec;
  double actual = 0;
  bool ok = false;
  bool missing = false;  // metric absent from the input; always a failure
};

struct SloReport {
  std::string scenario;
  std::vector<SloResult> results;

  bool pass() const;

  /// Byte-stable JSON verdict (the BENCH_scenarios.json schema):
  /// {"scenario":...,"verdict":"pass"|"fail","objectives":[{"name":...,
  ///  "op":"<="|">=","target":...,"actual":...,"pass":...},...]}
  void to_json(std::ostream& os) const;
  std::string to_json() const;

  /// Human-readable verdict table.
  std::string to_string() const;
};

/// Nearest-rank percentile over an unsorted series (sorts a copy); 0 when
/// the series is empty.
std::int64_t slo_percentile(std::vector<std::int64_t> samples, double pct);

/// Evaluates every spec against the input. Specs whose metric is absent
/// (unknown scalar, empty/missing series for non-Count aggregates) are
/// reported missing and fail the run — a silent no-data pass is the one
/// outcome an SLO gate must never produce.
SloReport evaluate_slos(std::string scenario, const std::vector<SloSpec>& specs,
                        const SloInput& input);

}  // namespace bento::obs
