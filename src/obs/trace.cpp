#include "obs/trace.hpp"

#include <ostream>
#include <string_view>

namespace bento::obs {

const char* ev_name(Ev kind) {
  switch (kind) {
    case Ev::SimDispatch: return "sim.dispatch";
    case Ev::CircExtend: return "circuit.extend";
    case Ev::CircBuilt: return "circuit.built";
    case Ev::CircTeardown: return "circuit.teardown";
    case Ev::StreamOpen: return "stream.open";
    case Ev::StreamTtfb: return "stream.ttfb";
    case Ev::StreamTtlb: return "stream.ttlb";
    case Ev::CellSend: return "cell.send";
    case Ev::CellRecv: return "cell.recv";
    case Ev::CellRecognized: return "cell.recognized";
    case Ev::CellUnrecognized: return "cell.unrecognized";
    case Ev::FnUpload: return "fn.upload";
    case Ev::FnInvoke: return "fn.invoke";
    case Ev::FnShutdown: return "fn.shutdown";
    case Ev::TokenCheck: return "token.check";
    case Ev::PolicyDeny: return "policy.deny";
    case Ev::StemDeny: return "stem.deny";
    case Ev::SpanBegin: return "span.begin";
    case Ev::SpanEnd: return "span.end";
    case Ev::SpanNote: return "span.note";
    case Ev::SandboxNetDeny: return "sandbox.net_deny";
    case Ev::SandboxSyscallDeny: return "sandbox.syscall_deny";
    case Ev::SandboxResourceTrip: return "sandbox.resource_trip";
    case Ev::TeeAttest: return "tee.attest";
    case Ev::TeeEpcPage: return "tee.epc_page";
    case Ev::ChaosFault: return "chaos.fault";
    case Ev::ClientRetry: return "client.retry";
    case Ev::CircRebuild: return "circuit.rebuild";
    case Ev::LbFailover: return "lb.failover";
    case Ev::ShardRepair: return "shard.repair";
    case Ev::kCount: break;
  }
  return "unknown";
}

bool ev_names_complete() {
  for (unsigned i = 0; i < static_cast<unsigned>(Ev::kCount); ++i) {
    const char* name = ev_name(static_cast<Ev>(i));
    if (name == nullptr || name[0] == '\0') return false;
    // ev_name falls through to "unknown" for kinds without a case label.
    if (name[0] == 'u' && std::string_view(name) == "unknown") return false;
  }
  return true;
}

namespace {
// Chrome renders one horizontal lane per (pid, tid); group events by
// subsystem so the sim firehose does not bury the application story.
int lane_of(Ev kind) {
  switch (kind) {
    case Ev::SimDispatch:
    case Ev::ChaosFault: return 0;  // sim
    case Ev::CircExtend:
    case Ev::CircRebuild:
    case Ev::CircBuilt:
    case Ev::CircTeardown:
    case Ev::StreamOpen:
    case Ev::StreamTtfb:
    case Ev::StreamTtlb:
    case Ev::CellSend:
    case Ev::CellRecv:
    case Ev::CellRecognized:
    case Ev::CellUnrecognized: return 1;  // tor
    default: return 2;                    // core / bento
  }
}
}  // namespace

void Recorder::enable(std::size_t capacity) {
  if (capacity == 0) capacity = 1;
  ring_.assign(capacity, TraceEvent{});
  head_ = 0;
  size_ = 0;
  recorded_ = 0;
  overwritten_ = 0;
  ++generation_;
  enabled_ = true;
}

void Recorder::disable() { enabled_ = false; }

template <typename Fn>
void Recorder::for_each(Fn&& fn) const {
  // Oldest event: `head_` when full (head points at the next overwrite
  // victim), index 0 otherwise.
  const std::size_t start = size_ == ring_.size() ? head_ : 0;
  for (std::size_t i = 0; i < size_; ++i) {
    std::size_t idx = start + i;
    if (idx >= ring_.size()) idx -= ring_.size();
    fn(ring_[idx]);
  }
}

std::vector<TraceEvent> Recorder::events() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  for_each([&out](const TraceEvent& e) { out.push_back(e); });
  return out;
}

void Recorder::export_chrome_trace(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  static const char* kLaneNames[] = {"sim", "tor", "bento"};
  for (int lane = 0; lane < 3; ++lane) {
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << lane
       << ",\"args\":{\"name\":\"" << kLaneNames[lane] << "\"}},\n";
  }
  bool first = true;
  for_each([&](const TraceEvent& e) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"name\":\"" << ev_name(e.kind) << "\",\"ph\":\"i\",\"s\":\"t\""
       << ",\"pid\":1,\"tid\":" << lane_of(e.kind) << ",\"ts\":" << e.ts_us
       << ",\"args\":{\"a\":" << e.a << ",\"b\":" << e.b
       << ",\"ok\":" << (e.flags & 1 ? "true" : "false") << "}}";
  });
  os << "\n]}\n";
}

void Recorder::export_jsonl(std::ostream& os) const {
  for_each([&os](const TraceEvent& e) {
    os << "{\"ts\":" << e.ts_us << ",\"ev\":\"" << ev_name(e.kind)
       << "\",\"a\":" << e.a << ",\"b\":" << e.b
       << ",\"ok\":" << (e.flags & 1 ? 1 : 0) << "}\n";
  });
}

}  // namespace bento::obs
