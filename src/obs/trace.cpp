#include "obs/trace.hpp"

#include <ostream>
#include <string_view>

namespace bento::obs {

const char* ev_name(Ev kind) {
  switch (kind) {
    case Ev::SimDispatch: return "sim.dispatch";
    case Ev::CircExtend: return "circuit.extend";
    case Ev::CircBuilt: return "circuit.built";
    case Ev::CircTeardown: return "circuit.teardown";
    case Ev::StreamOpen: return "stream.open";
    case Ev::StreamTtfb: return "stream.ttfb";
    case Ev::StreamTtlb: return "stream.ttlb";
    case Ev::CellSend: return "cell.send";
    case Ev::CellRecv: return "cell.recv";
    case Ev::CellRecognized: return "cell.recognized";
    case Ev::CellUnrecognized: return "cell.unrecognized";
    case Ev::FnUpload: return "fn.upload";
    case Ev::FnInvoke: return "fn.invoke";
    case Ev::FnShutdown: return "fn.shutdown";
    case Ev::TokenCheck: return "token.check";
    case Ev::PolicyDeny: return "policy.deny";
    case Ev::StemDeny: return "stem.deny";
    case Ev::SpanBegin: return "span.begin";
    case Ev::SpanEnd: return "span.end";
    case Ev::SpanNote: return "span.note";
    case Ev::SandboxNetDeny: return "sandbox.net_deny";
    case Ev::SandboxSyscallDeny: return "sandbox.syscall_deny";
    case Ev::SandboxResourceTrip: return "sandbox.resource_trip";
    case Ev::TeeAttest: return "tee.attest";
    case Ev::TeeEpcPage: return "tee.epc_page";
    case Ev::ChaosFault: return "chaos.fault";
    case Ev::ClientRetry: return "client.retry";
    case Ev::CircRebuild: return "circuit.rebuild";
    case Ev::LbFailover: return "lb.failover";
    case Ev::ShardRepair: return "shard.repair";
    case Ev::ShardWindow: return "shard.window";
    case Ev::ShardBarrier: return "shard.barrier";
    case Ev::kCount: break;
  }
  return "unknown";
}

bool ev_names_complete() {
  for (unsigned i = 0; i < static_cast<unsigned>(Ev::kCount); ++i) {
    const char* name = ev_name(static_cast<Ev>(i));
    if (name == nullptr || name[0] == '\0') return false;
    // ev_name falls through to "unknown" for kinds without a case label.
    if (name[0] == 'u' && std::string_view(name) == "unknown") return false;
  }
  return true;
}

namespace {
// Chrome renders one horizontal lane per (pid, tid); group events by
// subsystem so the sim firehose does not bury the application story.
int lane_of(Ev kind) {
  switch (kind) {
    case Ev::SimDispatch:
    case Ev::ShardWindow:
    case Ev::ShardBarrier:
    case Ev::ChaosFault: return 0;  // sim
    case Ev::CircExtend:
    case Ev::CircRebuild:
    case Ev::CircBuilt:
    case Ev::CircTeardown:
    case Ev::StreamOpen:
    case Ev::StreamTtfb:
    case Ev::StreamTtlb:
    case Ev::CellSend:
    case Ev::CellRecv:
    case Ev::CellRecognized:
    case Ev::CellUnrecognized: return 1;  // tor
    default: return 2;                    // core / bento
  }
}
}  // namespace

void Recorder::enable(std::size_t capacity) {
  if (capacity == 0) capacity = 1;
  ring_.assign(capacity, TraceEvent{});
  head_ = 0;
  size_ = 0;
  recorded_ = 0;
  overwritten_ = 0;
  ++generation_;
  buffered_ = false;
  for (auto& buf : pending_) buf.clear();
  enabled_ = true;
}

void Recorder::disable() { enabled_ = false; }

void Recorder::begin_window(std::size_t regions) {
  if (pending_.size() < regions) pending_.resize(regions);
  buffered_ = true;
}

void Recorder::record_buffered(Ev kind, std::uint32_t a, std::uint64_t b, bool ok) {
  const std::uint32_t region = detail::g_trace_region;
  if (region >= pending_.size()) return;  // misconfigured caller; drop
  detail::TraceOrder& ord = detail::g_trace_order;
  Pending p;
  p.e.ts_us = util::sim_now_micros();
  p.e.b = b;
  p.e.a = a;
  p.e.kind = kind;
  p.e.flags = ok ? 1 : 0;
  p.owhen_us = ord.when_us;
  p.oseq = ord.seq;
  p.oorigin = ord.origin;
  p.osub = ord.sub++;
  // bentolint: allow(BL102 side-buffer growth is amortized; capacity is reused across windows)
  pending_[region].push_back(p);
}

void Recorder::end_window() {
  buffered_ = false;
  bool any = false;
  for (const auto& buf : pending_) {
    if (!buf.empty()) {
      any = true;
      break;
    }
  }
  if (!any) return;
  // Each per-region buffer is already sorted by the dispatch key — a region
  // executes its events in (when, origin, seq) order and `osub` increments
  // within one handler — so a k-way merge by that key reconstructs exactly
  // the insertion order a serial run would have produced.
  const auto before = [](const Pending& x, const Pending& y) {
    if (x.owhen_us != y.owhen_us) return x.owhen_us < y.owhen_us;
    if (x.oorigin != y.oorigin) return x.oorigin < y.oorigin;
    if (x.oseq != y.oseq) return x.oseq < y.oseq;
    return x.osub < y.osub;
  };
  std::vector<std::size_t> cursor(pending_.size(), 0);
  for (;;) {
    const Pending* best = nullptr;
    std::size_t best_region = 0;
    for (std::size_t r = 0; r < pending_.size(); ++r) {
      if (cursor[r] >= pending_[r].size()) continue;
      const Pending& cand = pending_[r][cursor[r]];
      if (best == nullptr || before(cand, *best)) {
        best = &cand;
        best_region = r;
      }
    }
    if (best == nullptr) break;
    commit(best->e);
    ++cursor[best_region];
  }
  for (auto& buf : pending_) buf.clear();  // keeps capacity for the next window
}

template <typename Fn>
void Recorder::for_each(Fn&& fn) const {
  // Oldest event: `head_` when full (head points at the next overwrite
  // victim), index 0 otherwise.
  const std::size_t start = size_ == ring_.size() ? head_ : 0;
  for (std::size_t i = 0; i < size_; ++i) {
    std::size_t idx = start + i;
    if (idx >= ring_.size()) idx -= ring_.size();
    fn(ring_[idx]);
  }
}

std::vector<TraceEvent> Recorder::events() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  for_each([&out](const TraceEvent& e) { out.push_back(e); });
  return out;
}

void Recorder::export_chrome_trace(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  static const char* kLaneNames[] = {"sim", "tor", "bento"};
  for (int lane = 0; lane < 3; ++lane) {
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << lane
       << ",\"args\":{\"name\":\"" << kLaneNames[lane] << "\"}},\n";
  }
  bool first = true;
  for_each([&](const TraceEvent& e) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"name\":\"" << ev_name(e.kind) << "\",\"ph\":\"i\",\"s\":\"t\""
       << ",\"pid\":1,\"tid\":" << lane_of(e.kind) << ",\"ts\":" << e.ts_us
       << ",\"args\":{\"a\":" << e.a << ",\"b\":" << e.b
       << ",\"ok\":" << (e.flags & 1 ? "true" : "false") << "}}";
  });
  os << "\n]}\n";
}

void Recorder::export_jsonl(std::ostream& os) const {
  for_each([&os](const TraceEvent& e) {
    os << "{\"ts\":" << e.ts_us << ",\"ev\":\"" << ev_name(e.kind)
       << "\",\"a\":" << e.a << ",\"b\":" << e.b
       << ",\"ok\":" << (e.flags & 1 ? 1 : 0) << "}\n";
  });
}

}  // namespace bento::obs
