// Flight recorder: a bounded ring of POD trace events in sim time
// (DESIGN.md §8).
//
// record() is the hot-path entry: one branch on the enabled flag, one mask
// test, then a fixed-size store into preallocated storage — no heap, no
// strings, no formatting. Memory is bounded by the capacity chosen at
// enable(); when the ring wraps, the *oldest* events are overwritten so a
// post-mortem always holds the newest window (hence "flight recorder").
//
// Events carry a kind, the sim timestamp, an ok/fail flag and two untyped
// operands (a: circuit/container/node id, b: bytes/lag/stream id — see the
// per-kind conventions next to Ev). Naming and structure are resolved at
// export time: to Chrome `trace_event` JSON (load in chrome://tracing or
// Perfetto) or to a JSONL stream (one event per line, byte-stable across
// identical seeded runs — the determinism regression diffs these).
//
// Sharded execution (DESIGN.md §12): while the simulator runs a parallel
// lookahead window, record() from worker threads appends to a per-region
// side buffer instead of the shared ring; each entry carries the executing
// sim event's total-order key (when, origin region, seq) plus an intra-event
// counter. At the window barrier the simulator calls end_window(), which
// k-way-merges the region buffers by that key and commits them to the ring —
// reproducing the exact insertion order a serial run of the same topology
// would have produced, so exports stay byte-identical across shard counts.
// Single-region simulations never enter buffered mode and keep the original
// direct store path bit-for-bit.
#pragma once

#include <cstdint>
#include <cstddef>
#include <iosfwd>
#include <vector>

#include "util/annotations.hpp"
#include "util/simclock.hpp"

namespace bento::obs {

/// Trace event kinds. Operand conventions in trailing comments.
enum class Ev : std::uint8_t {
  SimDispatch = 0,   // a: -            b: events pending after dispatch
  CircExtend,        // a: circ id      b: hop index just completed
  CircBuilt,         // a: circ id      b: hop count
  CircTeardown,      // a: circ id      b: -
  StreamOpen,        // a: circ id      b: stream id
  StreamTtfb,        // a: stream id    b: sim µs from open to first byte
  StreamTtlb,        // a: stream id    b: sim µs from open to last byte
  CellSend,          // a: circ id      b: relay command (origin send)
  CellRecv,          // a: circ id      b: receiving relay's node id
  CellRecognized,    // a: circ id      b: relay command
  CellUnrecognized,  // a: circ id      b: node id (edge violation / drop)
  FnUpload,          // a: container id b: function source bytes; flags: ok
  FnInvoke,          // a: container id b: payload bytes
  FnShutdown,        // a: container id b: -
  TokenCheck,        // a: container id b: token kind (0 invoke, 1 shutdown); flags: ok
  PolicyDeny,        // a: container id b: 0 manifest, 1 static verifier
  StemDeny,          // a: container id b: denial class (Recorder::kStem*)
  SpanBegin,         // a: span id      b: parent span id << 32 | Stage
  SpanEnd,           // a: span id      b: Stage; flags: ok
  SpanNote,          // a: span id      b: note kind << 32 | value (kNote*)
  SandboxNetDeny,    // a: dest IPv4    b: dest port
  SandboxSyscallDeny,  // a: Syscall    b: -
  SandboxResourceTrip, // a: -          b: resource class (kResource*)
  TeeAttest,         // a: platform id  b: quote TCB version; flags: ok
  TeeEpcPage,        // a: enclave id   b: page faults added by this allocate
  ChaosFault,        // a: node id      b: chaos::FaultKind << 32 | peer/extra
  ClientRetry,       // a: attempt #    b: backoff ms; flags: ok = will retry
  CircRebuild,       // a: new circ id (0 while pending) b: excluded relays
  LbFailover,        // a: replica idx  b: missed health checks; flags: ok
  ShardRepair,       // a: shard index  b: re-seed target ref; flags: ok
  ShardWindow,       // a: region id    b: events the region ran in the closed window
  ShardBarrier,      // a: active regions b: window span (horizon - T_min), sim µs
  kCount,
};

/// Stable lower_snake names used by both exporters.
const char* ev_name(Ev kind);

/// Startup self-check: true iff every kind below kCount resolves to a real
/// name. Catches silent enum drift (a kind added without an ev_name entry).
bool ev_names_complete();

struct TraceEvent {
  std::int64_t ts_us;
  std::uint64_t b;
  std::uint32_t a;
  Ev kind;
  std::uint8_t flags;  // bit 0: ok
};

namespace detail {
/// Total-order key of the sim event currently dispatching on this thread,
/// set by the simulator before each handler runs. Only consulted while the
/// recorder is in buffered (parallel-window) mode; `sub` counts the records
/// emitted within one handler so their relative order survives the merge.
struct TraceOrder {
  std::int64_t when_us = 0;
  std::uint64_t seq = 0;
  std::uint32_t origin = 0;
  std::uint32_t sub = 0;
};
// bentolint: allow(BL105 thread_local dispatch context for the sharded simulator, DESIGN.md §12)
inline thread_local TraceOrder g_trace_order{};
// bentolint: allow(BL105 thread_local region id routes buffered records, DESIGN.md §12)
inline thread_local std::uint32_t g_trace_region = 0;
}  // namespace detail

/// Region whose side buffer this thread's records land in while the
/// recorder is buffered (simulator-internal; harmless otherwise).
inline void set_trace_region(std::uint32_t region) { detail::g_trace_region = region; }
inline std::uint32_t trace_region() { return detail::g_trace_region; }

/// Stamps the dispatching sim event's (when, origin, seq) key and resets the
/// intra-event counter (simulator-internal).
inline void set_trace_order(std::int64_t when_us, std::uint32_t origin, std::uint64_t seq) {
  detail::g_trace_order.when_us = when_us;
  detail::g_trace_order.seq = seq;
  detail::g_trace_order.origin = origin;
  detail::g_trace_order.sub = 0;
}

class Recorder {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;

  // StemDeny `b` operand values.
  static constexpr std::uint64_t kStemCircuitCap = 0;
  static constexpr std::uint64_t kStemSyscall = 1;

  // SandboxResourceTrip `b` operand values.
  static constexpr std::uint64_t kResourceMemory = 0;
  static constexpr std::uint64_t kResourceCpu = 1;
  static constexpr std::uint64_t kResourceDisk = 2;
  static constexpr std::uint64_t kResourceNetwork = 3;
  static constexpr std::uint64_t kResourceFiles = 4;
  static constexpr std::uint64_t kResourceConnections = 5;

  /// Starts (or restarts) recording into a fresh ring of `capacity` events.
  /// The one place the recorder allocates.
  void enable(std::size_t capacity = kDefaultCapacity);
  void disable();
  bool enabled() const { return enabled_; }

  /// Per-kind filter; bit i gates Ev(i). Default: everything on. Use
  /// mask_of() to build masks, e.g. to silence the SimDispatch firehose.
  /// 64-bit since the kind count outgrew 32 (static_assert below).
  void set_mask(std::uint64_t mask) { mask_ = mask; }
  std::uint64_t mask() const { return mask_; }
  static constexpr std::uint64_t mask_of(Ev kind) {
    return std::uint64_t{1} << static_cast<unsigned>(kind);
  }
  static constexpr std::uint64_t mask_all() {
    static_assert(static_cast<unsigned>(Ev::kCount) < 64,
                  "trace mask is a 64-bit kind bitmap");
    return (std::uint64_t{1} << static_cast<unsigned>(Ev::kCount)) - 1;
  }

  BENTO_HOT void record(Ev kind, std::uint32_t a = 0, std::uint64_t b = 0, bool ok = true) {
    if (!enabled_) return;
    if ((mask_ & mask_of(kind)) == 0) return;
    if (buffered_) {  // parallel window: defer to the per-region side buffer
      record_buffered(kind, a, b, ok);
      return;
    }
    TraceEvent& e = ring_[head_];
    e.ts_us = util::sim_now_micros();
    e.b = b;
    e.a = a;
    e.kind = kind;
    e.flags = ok ? 1 : 0;
    head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
    if (size_ < ring_.size()) {
      ++size_;
    } else {
      ++overwritten_;
    }
    ++recorded_;
  }

  /// Parallel-window buffering (simulator-internal). Between begin_window()
  /// and end_window(), record() appends to per-region buffers keyed by the
  /// dispatching sim event's total-order key; end_window() merges them by
  /// that key and commits to the ring, reproducing serial insertion order.
  void begin_window(std::size_t regions);
  void end_window();

  /// Events currently held (≤ capacity).
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return ring_.size(); }
  /// Total record() calls accepted since enable().
  std::uint64_t recorded() const { return recorded_; }
  /// Events lost to ring wraparound.
  std::uint64_t overwritten() const { return overwritten_; }
  /// Bumped by every enable(); span id allocation (span.hpp) keys off this
  /// so seeded reruns hand out identical ids after re-enabling the ring.
  std::uint64_t generation() const { return generation_; }

  /// Held events, oldest first (insertion order == sim-time order, since
  /// recording happens as the simulation advances).
  std::vector<TraceEvent> events() const;

  /// Chrome trace_event JSON ({"traceEvents": [...]}); instant events on
  /// one lane per subsystem, timestamps in sim microseconds.
  void export_chrome_trace(std::ostream& os) const;
  /// One compact JSON object per line; byte-stable for identical runs.
  void export_jsonl(std::ostream& os) const;

 private:
  template <typename Fn>
  void for_each(Fn&& fn) const;  // oldest -> newest

  /// Buffered entry: the public event plus the hidden merge key.
  struct Pending {
    TraceEvent e;
    std::int64_t owhen_us;
    std::uint64_t oseq;
    std::uint32_t oorigin;
    std::uint32_t osub;
  };

  void record_buffered(Ev kind, std::uint32_t a, std::uint64_t b, bool ok);
  BENTO_HOT void commit(const TraceEvent& ev) {
    ring_[head_] = ev;
    head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
    if (size_ < ring_.size()) {
      ++size_;
    } else {
      ++overwritten_;
    }
    ++recorded_;
  }

  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::uint64_t recorded_ = 0;
  std::uint64_t overwritten_ = 0;
  std::uint64_t generation_ = 0;
  std::uint64_t mask_ = mask_all();
  bool enabled_ = false;
  bool buffered_ = false;
  // One side buffer per region; index [region]. Each is written only by the
  // worker thread that owns the region during a window, and drained by the
  // coordinating thread at the barrier — never concurrently.
  std::vector<std::vector<Pending>> pending_;
};

namespace detail {
// Constant-initialized (all members have constexpr default ctors), so
// trace() is safe from any static-init context.
inline Recorder g_recorder;
}  // namespace detail

inline Recorder& recorder() { return detail::g_recorder; }

/// Convenience hot-path entry: obs::trace(Ev::CellSend, circ, cmd).
BENTO_HOT inline void trace(Ev kind, std::uint32_t a = 0, std::uint64_t b = 0, bool ok = true) {
  detail::g_recorder.record(kind, a, b, ok);
}

}  // namespace bento::obs
