#include "obs/profile.hpp"

#include <algorithm>
#include <limits>
#include <ostream>
#include <sstream>

namespace bento::obs {

namespace {

// Window-span buckets, sim microseconds: lookahead horizons range from
// sub-millisecond datacenter links to multi-second WAN windows.
constexpr std::int64_t kWindowSpanBucketsUs[] = {
    100,     250,     500,     1'000,     2'500,    5'000,    10'000,
    25'000,  50'000,  100'000, 250'000,   500'000,  1'000'000};

// Events-per-window buckets: how much parallel work a window exposes.
constexpr std::int64_t kEventsPerWindowBuckets[] = {
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1'024, 4'096, 16'384, 65'536};

void bar(std::ostream& os, double frac, int width) {
  if (frac < 0) frac = 0;
  if (frac > 1) frac = 1;
  const int fill = static_cast<int>(frac * width + 0.5);
  for (int i = 0; i < width; ++i) os << (i < fill ? '#' : '.');
}

double pct(std::uint64_t part, std::uint64_t whole) {
  return whole == 0 ? 0.0 : 100.0 * static_cast<double>(part) / static_cast<double>(whole);
}

void fixed1(std::ostream& os, double v) {
  const std::int64_t scaled = static_cast<std::int64_t>(v * 10 + (v < 0 ? -0.5 : 0.5));
  os << scaled / 10 << '.' << (scaled < 0 ? -(scaled % 10) : scaled % 10);
}

}  // namespace

ShardProfiler::ShardProfiler()
    : m_windows_(registry().counter("shard.windows")),
      m_window_events_(registry().counter("shard.window_events")),
      m_mailbox_events_(registry().counter("shard.mailbox_events")),
      m_exclusive_(registry().counter("shard.exclusive_events")),
      m_mailbox_depth_(registry().gauge("shard.mailbox_depth")),
      m_lookahead_us_(registry().gauge("shard.lookahead_us")),
      m_span_us_(registry().histogram("shard.window_span_us", kWindowSpanBucketsUs)),
      m_events_per_window_(
          registry().histogram("shard.events_per_window", kEventsPerWindowBuckets)) {}

ShardProfiler& shard_profiler() {
  static ShardProfiler instance;
  return instance;
}

void ShardProfiler::reset() {
  windows_ = 0;
  window_events_ = 0;
  max_window_events_ = 0;
  span_sum_us_ = 0;
  span_min_us_ = 0;
  span_max_us_ = 0;
  mailbox_events_ = 0;
  mailbox_depth_hw_ = 0;
  exclusive_events_ = 0;
  lookahead_us_ = 0;
  for (std::uint32_t i = 0; i < regions_hw_; ++i) region_[i] = RegionTally{};
  regions_hw_ = 0;
  run_wall_ns_ = 0;
  window_wall_ns_ = 0;
  barrier_wall_ns_ = 0;
  drain_wall_ns_ = 0;
  merge_wall_ns_ = 0;
  exclusive_wall_ns_ = 0;
  for (WorkerWall& w : worker_) w = WorkerWall{};
}

BENTO_HOT void ShardProfiler::on_window_close(const std::uint64_t* region_events,
                                              std::uint32_t region_count,
                                              std::int64_t span_us) {
  if (!enabled_) return;
  if (region_count > 256) region_count = 256;
  if (region_count > regions_hw_) regions_hw_ = region_count;
  std::uint64_t total = 0;
  for (std::uint32_t i = 0; i < region_count; ++i) {
    const std::uint64_t n = region_events[i];
    if (n == 0) continue;
    total += n;
    region_[i].events += n;
    region_[i].windows += 1;
  }
  if (windows_ == 0 || span_us < span_min_us_) span_min_us_ = span_us;
  if (windows_ == 0 || span_us > span_max_us_) span_max_us_ = span_us;
  ++windows_;
  span_sum_us_ += span_us;
  window_events_ += total;
  if (total > max_window_events_) max_window_events_ = total;
  m_windows_.inc();
  m_window_events_.inc(total);
  m_span_us_.record(span_us);
  m_events_per_window_.record(static_cast<std::int64_t>(total));
}

BENTO_HOT void ShardProfiler::on_mailbox_drain(std::uint64_t drained,
                                               std::uint64_t max_depth) {
  if (!enabled_) return;
  mailbox_events_ += drained;
  if (max_depth > mailbox_depth_hw_) mailbox_depth_hw_ = max_depth;
  m_mailbox_events_.inc(drained);
  m_mailbox_depth_.set(static_cast<std::int64_t>(max_depth));
}

BENTO_HOT void ShardProfiler::on_exclusive() {
  if (!enabled_) return;
  ++exclusive_events_;
  m_exclusive_.inc();
}

void ShardProfiler::record_lookahead(std::int64_t us) {
  if (!enabled_) return;
  lookahead_us_ = us;
  m_lookahead_us_.set(us);
}

BENTO_HOT void ShardProfiler::add_worker_busy(unsigned worker, std::uint64_t ns,
                                              std::uint64_t events) {
  if (worker >= kMaxMetricWorkers) worker = kMaxMetricWorkers - 1;
  WorkerWall& w = worker_[worker];
  w.busy_ns += ns;
  w.windows += 1;
  w.events += events;
}

ShardProfileSnapshot ShardProfiler::snapshot() const {
  ShardProfileSnapshot s;
  s.windows = windows_;
  s.window_events = window_events_;
  s.max_window_events = max_window_events_;
  s.span_sum_us = span_sum_us_;
  s.span_min_us = span_min_us_;
  s.span_max_us = span_max_us_;
  s.mailbox_events = mailbox_events_;
  s.mailbox_depth_hw = mailbox_depth_hw_;
  s.exclusive_events = exclusive_events_;
  s.lookahead_us = lookahead_us_;
  for (std::uint32_t i = 0; i < regions_hw_; ++i) {
    if (region_[i].events == 0) continue;
    s.regions.push_back(ShardProfileSnapshot::RegionRow{i, region_[i].events,
                                                        region_[i].windows});
  }
  s.run_wall_ns = run_wall_ns_;
  // Dispatch = the coordinator's share of run_window: everything it did
  // between window entry and exit that was not barrier wait or trace merge
  // (its own region dispatch, round publish, worker wakeup). Derived by
  // subtraction so the four buckets partition the loop even when the OS
  // schedules the coordinator out between finer timing points.
  const std::uint64_t timed = barrier_wall_ns_ + merge_wall_ns_;
  s.dispatch_wall_ns = window_wall_ns_ > timed ? window_wall_ns_ - timed : 0;
  s.barrier_wall_ns = barrier_wall_ns_;
  s.drain_wall_ns = drain_wall_ns_;
  s.merge_wall_ns = merge_wall_ns_;
  s.exclusive_wall_ns = exclusive_wall_ns_;
  for (unsigned w = 0; w < kMaxMetricWorkers; ++w) {
    if (worker_[w].windows == 0) continue;
    s.workers.push_back(ShardProfileSnapshot::WorkerRow{
        w, worker_[w].busy_ns, worker_[w].windows, worker_[w].events});
  }
  return s;
}

std::uint64_t ShardProfileSnapshot::imbalance_x1000() const {
  std::uint64_t total = 0;
  std::uint64_t max_ev = 0;
  std::uint64_t active = 0;
  for (const RegionRow& r : regions) {
    total += r.events;
    if (r.events > max_ev) max_ev = r.events;
    ++active;
  }
  if (active == 0 || total == 0) return 1000;
  return max_ev * 1000 * active / total;
}

void ShardProfileSnapshot::to_json(std::ostream& os, bool include_wall) const {
  os << "{\"shard_profile\":{";
  os << "\"windows\":" << windows << ",\"window_events\":" << window_events
     << ",\"max_window_events\":" << max_window_events;
  os << ",\"span_us\":{\"sum\":" << span_sum_us << ",\"min\":" << span_min_us
     << ",\"max\":" << span_max_us << "}";
  os << ",\"mailbox\":{\"events\":" << mailbox_events
     << ",\"depth_high_water\":" << mailbox_depth_hw << "}";
  os << ",\"exclusive_events\":" << exclusive_events
     << ",\"lookahead_us\":" << lookahead_us
     << ",\"imbalance_x1000\":" << imbalance_x1000();
  os << ",\"regions\":[";
  for (std::size_t i = 0; i < regions.size(); ++i) {
    if (i > 0) os << ",";
    os << "{\"id\":" << regions[i].id << ",\"events\":" << regions[i].events
       << ",\"windows\":" << regions[i].windows << "}";
  }
  os << "]";
  if (include_wall) {
    os << ",\"wall\":{\"run_ns\":" << run_wall_ns
       << ",\"dispatch_ns\":" << dispatch_wall_ns
       << ",\"barrier_ns\":" << barrier_wall_ns << ",\"drain_ns\":" << drain_wall_ns
       << ",\"merge_ns\":" << merge_wall_ns
       << ",\"exclusive_ns\":" << exclusive_wall_ns << ",\"workers\":[";
    for (std::size_t i = 0; i < workers.size(); ++i) {
      if (i > 0) os << ",";
      os << "{\"id\":" << workers[i].id << ",\"busy_ns\":" << workers[i].busy_ns
         << ",\"windows\":" << workers[i].windows
         << ",\"events\":" << workers[i].events << "}";
    }
    os << "]}";
  }
  os << "}}\n";
}

std::string ShardProfileSnapshot::to_json(bool include_wall) const {
  std::ostringstream os;
  to_json(os, include_wall);
  return os.str();
}

std::string ShardProfileSnapshot::to_section() const {
  std::ostringstream os;
  os << "=== shard profile ===\n";
  if (windows == 0) {
    os << "windows: 0 (serial or single-region run)\n";
    return os.str();
  }
  os << "windows: " << windows << "\n";
  os << "window span us: min=" << span_min_us
     << " mean=" << span_sum_us / static_cast<std::int64_t>(windows)
     << " max=" << span_max_us << " sum=" << span_sum_us << "\n";
  os << "events through windows: " << window_events
     << " (max per window " << max_window_events << ")\n";
  os << "mailbox: " << mailbox_events << " events, depth high-water "
     << mailbox_depth_hw << "\n";
  os << "exclusive events: " << exclusive_events << "\n";
  os << "lookahead us: " << lookahead_us << "\n";
  os << "imbalance (max/mean x1000): " << imbalance_x1000() << "\n";
  for (const RegionRow& r : regions) {
    os << "region " << r.id << ": " << r.events << " events, " << r.windows
       << " windows\n";
  }
  return os.str();
}

void render_top_frame(const ShardProfileSnapshot& s, std::ostream& os) {
  os << "bentotop — shard observatory\n";
  os << "windows " << s.windows << " | events " << s.window_events << " | mailbox "
     << s.mailbox_events << " (hw " << s.mailbox_depth_hw << ") | exclusive "
     << s.exclusive_events << " | lookahead " << s.lookahead_us << "us\n";
  if (s.windows > 0) {
    os << "window span us min/mean/max " << s.span_min_us << "/"
       << s.span_sum_us / static_cast<std::int64_t>(s.windows) << "/"
       << s.span_max_us << " | events/window mean "
       << s.window_events / s.windows << " max " << s.max_window_events
       << " | imbalance ";
    fixed1(os, static_cast<double>(s.imbalance_x1000()) / 1000.0);
    os << "x\n";
  } else {
    os << "no windowed activity (serial or single-region run)\n";
  }
  if (!s.regions.empty()) {
    std::uint64_t total = 0;
    for (const auto& r : s.regions) total += r.events;
    os << "regions:\n";
    for (const auto& r : s.regions) {
      os << "  r" << r.id << " ";
      bar(os, total == 0 ? 0 : static_cast<double>(r.events) / total *
                                   static_cast<double>(s.regions.size()),
          16);
      os << " " << r.events << " ev ";
      fixed1(os, pct(r.events, total));
      os << "% " << r.windows << " win\n";
    }
  }
  if (!s.workers.empty() && s.run_wall_ns > 0) {
    os << "workers:\n";
    for (const auto& w : s.workers) {
      const double occ = static_cast<double>(w.busy_ns) /
                         static_cast<double>(s.run_wall_ns);
      os << "  w" << w.id << " ";
      bar(os, occ, 16);
      os << " ";
      fixed1(os, occ * 100.0);
      os << "% busy " << w.windows << " win " << w.events << " ev\n";
    }
    const std::uint64_t accounted = s.dispatch_wall_ns + s.barrier_wall_ns +
                                    s.drain_wall_ns + s.merge_wall_ns +
                                    s.exclusive_wall_ns;
    const std::uint64_t other =
        s.run_wall_ns > accounted ? s.run_wall_ns - accounted : 0;
    os << "wall: dispatch ";
    fixed1(os, pct(s.dispatch_wall_ns + s.exclusive_wall_ns, s.run_wall_ns));
    os << "% | barrier ";
    fixed1(os, pct(s.barrier_wall_ns, s.run_wall_ns));
    os << "% | drain ";
    fixed1(os, pct(s.drain_wall_ns, s.run_wall_ns));
    os << "% | merge ";
    fixed1(os, pct(s.merge_wall_ns, s.run_wall_ns));
    os << "% | other ";
    fixed1(os, pct(other, s.run_wall_ns));
    os << "% (run ";
    fixed1(os, static_cast<double>(s.run_wall_ns) / 1e6);
    os << " ms)\n";
  }
}

}  // namespace bento::obs
