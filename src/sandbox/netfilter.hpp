// Per-container network filter (paper §5.3): "the Bento server converts
// the exit node policies into analogous iptable rules, and applies these
// rules to each container."
//
// The filter is compiled from the host relay's exit policy; a relay that is
// not an exit yields a filter that denies all direct network access, which
// confines its functions to Tor circuits — exactly the paper's behaviour.
#pragma once

#include <cstdint>

#include "tor/exitpolicy.hpp"

namespace bento::sandbox {

class NetFilter {
 public:
  /// Compiles from the relay's exit policy.
  static NetFilter from_exit_policy(const tor::ExitPolicy& policy);
  static NetFilter deny_all();

  bool allows(const tor::Endpoint& destination) const;
  /// True if the container has any direct network access at all.
  bool any_access() const { return policy_.allows_anything(); }

  std::uint64_t rejected_count() const { return rejected_; }
  /// Like allows(), but counts rejects (used at the enforcement point).
  bool check(const tor::Endpoint& destination);

 private:
  explicit NetFilter(tor::ExitPolicy policy) : policy_(std::move(policy)) {}
  tor::ExitPolicy policy_;
  std::uint64_t rejected_ = 0;
};

}  // namespace bento::sandbox
