// Resource limits and accounting (paper §5.3 "Sandboxing and Resource
// Accounting", §6.2 "Resource exhaustion attacks").
//
// Mirrors the cgroup controls the paper uses: per-container memory, CPU
// (modeled as interpreter instruction budget), disk and network byte
// quotas — plus an *aggregate* accountant so the operator can cap Bento's
// total consumption and keep the co-resident Tor relay responsive.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace bento::sandbox {

class ResourceExceeded : public std::runtime_error {
 public:
  explicit ResourceExceeded(const std::string& what) : std::runtime_error(what) {}
};

struct ResourceLimits {
  std::uint64_t memory_bytes = 64ull << 20;
  std::uint64_t cpu_instructions = 50'000'000;  // interpreter step budget
  std::uint64_t disk_bytes = 64ull << 20;
  std::uint64_t network_bytes = 256ull << 20;
  std::uint32_t max_open_files = 64;
  std::uint32_t max_connections = 16;
};

struct ResourceUsage {
  std::uint64_t memory_bytes = 0;
  std::uint64_t cpu_instructions = 0;
  std::uint64_t disk_bytes = 0;
  std::uint64_t network_bytes = 0;
  std::uint32_t open_files = 0;
  std::uint32_t connections = 0;
};

class AggregateAccountant;

/// Accounting for one container. Charging past a limit throws
/// ResourceExceeded — the container manager catches it and kills the
/// function, never the server.
class ResourceAccountant {
 public:
  ResourceAccountant(ResourceLimits limits, AggregateAccountant* aggregate = nullptr);
  ~ResourceAccountant();

  ResourceAccountant(const ResourceAccountant&) = delete;
  ResourceAccountant& operator=(const ResourceAccountant&) = delete;

  void charge_memory(std::uint64_t bytes);    // current watermark, not cumulative
  void charge_cpu(std::uint64_t instructions);
  void charge_disk(std::int64_t delta_bytes);
  void charge_network(std::uint64_t bytes);
  void open_file();
  void close_file();
  void open_connection();
  void close_connection();

  const ResourceLimits& limits() const { return limits_; }
  const ResourceUsage& usage() const { return usage_; }

 private:
  ResourceLimits limits_;
  ResourceUsage usage_;
  AggregateAccountant* aggregate_;
};

/// Operator-level cap over all containers together (paper §6.2: "limiting
/// the total resource consumption of Bento to a specified amount").
class AggregateAccountant {
 public:
  explicit AggregateAccountant(ResourceLimits totals) : totals_(totals) {}

  const ResourceUsage& usage() const { return usage_; }
  const ResourceLimits& totals() const { return totals_; }

 private:
  friend class ResourceAccountant;
  void charge_memory(std::int64_t delta);
  void charge_disk(std::int64_t delta);
  void charge_network(std::uint64_t bytes);
  void charge_cpu(std::uint64_t instructions);

  ResourceLimits totals_;
  ResourceUsage usage_;
};

}  // namespace bento::sandbox
