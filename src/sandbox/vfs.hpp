// Chrooted virtual filesystem (paper §5.3: "limited space in a chrooted
// file system, so that clients cannot access any files but their own").
//
// Each container gets a Vfs rooted at its own namespace; path traversal
// ("..", absolute escapes) is normalized away so functions cannot reach
// other containers' data. Disk usage is charged to the container's
// ResourceAccountant. Storage can be backed by a plain map (Python
// container) or by FsProtect inside the conclave (Python-OP-SGX container),
// selected by the backend interface.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sandbox/resources.hpp"
#include "store/store.hpp"
#include "util/bytes.hpp"

namespace bento::sandbox {

/// Storage backend: plain memory, an enclaved FsProtect, or the persistent
/// sealed blob store.
class VfsBackend {
 public:
  virtual ~VfsBackend() = default;
  virtual void put(const std::string& path, util::ByteView data) = 0;
  virtual std::optional<util::Bytes> get(const std::string& path) const = 0;
  virtual bool erase(const std::string& path) = 0;
  virtual std::vector<std::string> keys() const = 0;
  /// Size without materializing contents (recovery accounting). The default
  /// reads the file.
  virtual std::optional<std::size_t> size_of(const std::string& path) const;
};

class MemoryBackend : public VfsBackend {
 public:
  void put(const std::string& path, util::ByteView data) override;
  std::optional<util::Bytes> get(const std::string& path) const override;
  bool erase(const std::string& path) override;
  std::vector<std::string> keys() const override;

 private:
  std::map<std::string, util::Bytes> files_;
};

/// Mounts a persistent sealed BlobStore (src/store) behind the chroot: the
/// container's files survive process crashes and come back byte-identical
/// through the store's crash-consistent replay. The store is owned by the
/// container (lifecycle) while its Volume lives in the server's
/// VolumeManager (durability across BentoServer::crash()).
class StoreBackend final : public VfsBackend {
 public:
  explicit StoreBackend(store::BlobStore* blob) : blob_(blob) {}
  void put(const std::string& path, util::ByteView data) override;
  std::optional<util::Bytes> get(const std::string& path) const override;
  bool erase(const std::string& path) override;
  std::vector<std::string> keys() const override;
  std::optional<std::size_t> size_of(const std::string& path) const override;

  store::BlobStore& blob() { return *blob_; }

  /// Fired after every mutation (put/erase) — the container hooks this to
  /// schedule background compaction as a simulator event, so the event
  /// queue stays empty while the store is idle.
  void set_on_mutate(std::function<void()> fn) { on_mutate_ = std::move(fn); }

 private:
  store::BlobStore* blob_;  // non-owning; the container outlives the mount
  std::function<void()> on_mutate_;
};

/// Normalizes a path inside the chroot: collapses ".", "..", duplicate
/// slashes; ".." never escapes the root. Returns a canonical "a/b/c" form.
std::string chroot_normalize(const std::string& path);

class Vfs {
 public:
  Vfs(std::unique_ptr<VfsBackend> backend, ResourceAccountant& resources);

  void write(const std::string& path, util::ByteView data);
  std::optional<util::Bytes> read(const std::string& path) const;
  bool remove(const std::string& path);
  bool exists(const std::string& path) const;
  std::vector<std::string> list() const;
  std::size_t file_count() const { return sizes_.size(); }

  /// Rebuilds the size map and disk charges from whatever the backend
  /// already holds — called after mounting a recovered persistent store so
  /// replayed files are accounted exactly like freshly written ones.
  /// Throws (via ResourceAccountant) if the recovered state no longer fits
  /// the container's disk budget.
  void restore_accounting();

 private:
  std::unique_ptr<VfsBackend> backend_;
  ResourceAccountant& resources_;
  std::map<std::string, std::size_t> sizes_;  // for disk accounting deltas
};

}  // namespace bento::sandbox
