// Chrooted virtual filesystem (paper §5.3: "limited space in a chrooted
// file system, so that clients cannot access any files but their own").
//
// Each container gets a Vfs rooted at its own namespace; path traversal
// ("..", absolute escapes) is normalized away so functions cannot reach
// other containers' data. Disk usage is charged to the container's
// ResourceAccountant. Storage can be backed by a plain map (Python
// container) or by FsProtect inside the conclave (Python-OP-SGX container),
// selected by the backend interface.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sandbox/resources.hpp"
#include "util/bytes.hpp"

namespace bento::sandbox {

/// Storage backend: plain memory or an enclaved FsProtect.
class VfsBackend {
 public:
  virtual ~VfsBackend() = default;
  virtual void put(const std::string& path, util::ByteView data) = 0;
  virtual std::optional<util::Bytes> get(const std::string& path) const = 0;
  virtual bool erase(const std::string& path) = 0;
  virtual std::vector<std::string> keys() const = 0;
};

class MemoryBackend : public VfsBackend {
 public:
  void put(const std::string& path, util::ByteView data) override;
  std::optional<util::Bytes> get(const std::string& path) const override;
  bool erase(const std::string& path) override;
  std::vector<std::string> keys() const override;

 private:
  std::map<std::string, util::Bytes> files_;
};

/// Normalizes a path inside the chroot: collapses ".", "..", duplicate
/// slashes; ".." never escapes the root. Returns a canonical "a/b/c" form.
std::string chroot_normalize(const std::string& path);

class Vfs {
 public:
  Vfs(std::unique_ptr<VfsBackend> backend, ResourceAccountant& resources);

  void write(const std::string& path, util::ByteView data);
  std::optional<util::Bytes> read(const std::string& path) const;
  bool remove(const std::string& path);
  bool exists(const std::string& path) const;
  std::vector<std::string> list() const;
  std::size_t file_count() const { return sizes_.size(); }

 private:
  std::unique_ptr<VfsBackend> backend_;
  ResourceAccountant& resources_;
  std::map<std::string, std::size_t> sizes_;  // for disk accounting deltas
};

}  // namespace bento::sandbox
