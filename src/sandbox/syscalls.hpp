// Syscall surface and seccomp-style filtering (paper §5.3, §5.5).
//
// Every capability a function can exercise is named here. Middlebox node
// policies and function manifests are boolean vectors over this set; the
// container installs the *intersection* as its seccomp filter, and each
// builtin the interpreter exposes declares which syscall it needs.
#pragma once

#include <cstdint>
#include <set>
#include <stdexcept>
#include <string>

namespace bento::sandbox {

enum class Syscall : std::uint8_t {
  FsRead = 0,
  FsWrite,
  FsDelete,
  NetConnect,    // direct clearnet connections (exit-policy constrained)
  NetListen,
  TorCircuit,    // Stem: build circuits through the host relay
  TorHs,         // Stem: create hidden services (dedicated onion proxy)
  TorDirectory,  // Stem: read the consensus
  SpawnFunction, // deploy a function on another Bento box (composition)
  Clock,
  Random,
  Fork,          // always deniable in practice; present for completeness
  Exec,
  kCount,
};

inline constexpr std::size_t kSyscallCount = static_cast<std::size_t>(Syscall::kCount);

const char* to_string(Syscall call);
/// Throws std::invalid_argument for unknown names.
Syscall syscall_from_string(const std::string& name);

class SyscallDenied : public std::runtime_error {
 public:
  explicit SyscallDenied(Syscall call)
      : std::runtime_error(std::string("syscall denied: ") + to_string(call)),
        call(call) {}
  Syscall call;
};

/// The installed filter: a fixed allow-set checked on every invocation.
class SyscallFilter {
 public:
  SyscallFilter() = default;
  explicit SyscallFilter(std::set<Syscall> allowed) : allowed_(std::move(allowed)) {}

  static SyscallFilter allow_all();
  static SyscallFilter deny_all() { return SyscallFilter{}; }

  bool allows(Syscall call) const { return allowed_.contains(call); }
  /// Throws SyscallDenied (and counts the violation) if not allowed.
  void check(Syscall call);

  SyscallFilter intersect(const SyscallFilter& other) const;
  const std::set<Syscall>& allowed() const { return allowed_; }
  std::uint64_t violations() const { return violations_; }

 private:
  std::set<Syscall> allowed_;
  std::uint64_t violations_ = 0;
};

}  // namespace bento::sandbox
