#include "sandbox/vfs.hpp"

#include <sstream>
#include <stdexcept>

namespace bento::sandbox {

std::optional<std::size_t> VfsBackend::size_of(const std::string& path) const {
  const std::optional<util::Bytes> data = get(path);
  if (!data.has_value()) return std::nullopt;
  return data->size();
}

void MemoryBackend::put(const std::string& path, util::ByteView data) {
  files_[path] = util::Bytes(data.begin(), data.end());
}

std::optional<util::Bytes> MemoryBackend::get(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) return std::nullopt;
  return it->second;
}

bool MemoryBackend::erase(const std::string& path) { return files_.erase(path) > 0; }

std::vector<std::string> MemoryBackend::keys() const {
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [k, v] : files_) out.push_back(k);
  return out;
}

void StoreBackend::put(const std::string& path, util::ByteView data) {
  blob_->put(path, data);
  if (on_mutate_) on_mutate_();
}

std::optional<util::Bytes> StoreBackend::get(const std::string& path) const {
  return blob_->get(path);
}

bool StoreBackend::erase(const std::string& path) {
  const bool existed = blob_->remove(path);
  if (existed && on_mutate_) on_mutate_();
  return existed;
}

std::vector<std::string> StoreBackend::keys() const { return blob_->list(); }

std::optional<std::size_t> StoreBackend::size_of(const std::string& path) const {
  return blob_->size_of(path);
}

std::string chroot_normalize(const std::string& path) {
  std::vector<std::string> parts;
  std::istringstream in(path);
  std::string part;
  while (std::getline(in, part, '/')) {
    if (part.empty() || part == ".") continue;
    if (part == "..") {
      if (!parts.empty()) parts.pop_back();
      continue;  // ".." at the root stays at the root: no escape
    }
    parts.push_back(part);
  }
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += '/';
    out += parts[i];
  }
  return out;
}

Vfs::Vfs(std::unique_ptr<VfsBackend> backend, ResourceAccountant& resources)
    : backend_(std::move(backend)), resources_(resources) {}

void Vfs::write(const std::string& path, util::ByteView data) {
  const std::string key = chroot_normalize(path);
  // Reject what no backend can store ("/" normalizes to the empty key;
  // BlobStore frames cap paths at 16 bits) *before* charging, so every
  // backend shows the guest identical behavior and the accountant never
  // holds bytes the store refused.
  if (key.empty() || key.size() > 0xffff) {
    throw std::invalid_argument("vfs: unwritable path: " + path);
  }
  const auto old = sizes_.find(key);
  const std::int64_t delta =
      static_cast<std::int64_t>(data.size()) -
      (old == sizes_.end() ? 0 : static_cast<std::int64_t>(old->second));
  resources_.charge_disk(delta);  // throws before touching the backend
  try {
    backend_->put(key, data);
  } catch (...) {
    resources_.charge_disk(-delta);  // a failed put stores nothing
    throw;
  }
  sizes_[key] = data.size();
}

std::optional<util::Bytes> Vfs::read(const std::string& path) const {
  return backend_->get(chroot_normalize(path));
}

bool Vfs::remove(const std::string& path) {
  const std::string key = chroot_normalize(path);
  auto it = sizes_.find(key);
  if (it == sizes_.end()) return false;
  resources_.charge_disk(-static_cast<std::int64_t>(it->second));
  sizes_.erase(it);
  return backend_->erase(key);
}

bool Vfs::exists(const std::string& path) const {
  return sizes_.contains(chroot_normalize(path));
}

std::vector<std::string> Vfs::list() const { return backend_->keys(); }

void Vfs::restore_accounting() {
  for (const std::string& key : backend_->keys()) {
    const std::optional<std::size_t> size = backend_->size_of(key);
    if (!size.has_value()) continue;
    const auto old = sizes_.find(key);
    const std::int64_t delta =
        static_cast<std::int64_t>(*size) -
        (old == sizes_.end() ? 0 : static_cast<std::int64_t>(old->second));
    resources_.charge_disk(delta);
    sizes_[key] = *size;
  }
}

}  // namespace bento::sandbox
