#include "sandbox/syscalls.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace bento::sandbox {

const char* to_string(Syscall call) {
  switch (call) {
    case Syscall::FsRead: return "fs_read";
    case Syscall::FsWrite: return "fs_write";
    case Syscall::FsDelete: return "fs_delete";
    case Syscall::NetConnect: return "net_connect";
    case Syscall::NetListen: return "net_listen";
    case Syscall::TorCircuit: return "tor_circuit";
    case Syscall::TorHs: return "tor_hs";
    case Syscall::TorDirectory: return "tor_directory";
    case Syscall::SpawnFunction: return "spawn_function";
    case Syscall::Clock: return "clock";
    case Syscall::Random: return "random";
    case Syscall::Fork: return "fork";
    case Syscall::Exec: return "exec";
    case Syscall::kCount: break;
  }
  return "unknown";
}

Syscall syscall_from_string(const std::string& name) {
  for (std::size_t i = 0; i < kSyscallCount; ++i) {
    const auto call = static_cast<Syscall>(i);
    if (name == to_string(call)) return call;
  }
  throw std::invalid_argument("unknown syscall name: " + name);
}

SyscallFilter SyscallFilter::allow_all() {
  std::set<Syscall> all;
  for (std::size_t i = 0; i < kSyscallCount; ++i) all.insert(static_cast<Syscall>(i));
  return SyscallFilter(std::move(all));
}

void SyscallFilter::check(Syscall call) {
  if (!allows(call)) {
    ++violations_;
    // Denials are the cold path: telemetry lives here, never on the allow
    // side, so the check itself stays a set lookup.
    static obs::Counter denials = obs::registry().counter("sandbox.syscall_denials");
    denials.inc();
    obs::trace(obs::Ev::SandboxSyscallDeny, static_cast<std::uint32_t>(call), 0,
               /*ok=*/false);
    throw SyscallDenied(call);
  }
}

SyscallFilter SyscallFilter::intersect(const SyscallFilter& other) const {
  std::set<Syscall> out;
  for (Syscall call : allowed_) {
    if (other.allows(call)) out.insert(call);
  }
  return SyscallFilter(std::move(out));
}

}  // namespace bento::sandbox
