#include "sandbox/resources.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace bento::sandbox {

namespace {
// One counter + one trace event per limit trip; cold path only (every call
// below throws right after). The `b` operand says which resource class
// tripped (Recorder::kResource*).
[[noreturn]] void trip(std::uint64_t resource_class, const std::string& what) {
  static obs::Counter trips = obs::registry().counter("sandbox.resource_trips");
  trips.inc();
  obs::trace(obs::Ev::SandboxResourceTrip, 0, resource_class, /*ok=*/false);
  throw ResourceExceeded(what);
}
}  // namespace

ResourceAccountant::ResourceAccountant(ResourceLimits limits,
                                       AggregateAccountant* aggregate)
    : limits_(limits), aggregate_(aggregate) {}

ResourceAccountant::~ResourceAccountant() {
  if (aggregate_ != nullptr) {
    aggregate_->charge_memory(-static_cast<std::int64_t>(usage_.memory_bytes));
    aggregate_->charge_disk(-static_cast<std::int64_t>(usage_.disk_bytes));
  }
}

void ResourceAccountant::charge_memory(std::uint64_t bytes) {
  if (bytes > limits_.memory_bytes) {
    trip(obs::Recorder::kResourceMemory,
         "memory limit exceeded (" + std::to_string(bytes) + " > " +
             std::to_string(limits_.memory_bytes) + ")");
  }
  if (aggregate_ != nullptr) {
    aggregate_->charge_memory(static_cast<std::int64_t>(bytes) -
                              static_cast<std::int64_t>(usage_.memory_bytes));
  }
  usage_.memory_bytes = bytes;
}

void ResourceAccountant::charge_cpu(std::uint64_t instructions) {
  usage_.cpu_instructions += instructions;
  if (usage_.cpu_instructions > limits_.cpu_instructions) {
    trip(obs::Recorder::kResourceCpu, "cpu budget exceeded");
  }
  if (aggregate_ != nullptr) aggregate_->charge_cpu(instructions);
}

void ResourceAccountant::charge_disk(std::int64_t delta_bytes) {
  const std::int64_t next =
      static_cast<std::int64_t>(usage_.disk_bytes) + delta_bytes;
  if (next < 0) {
    usage_.disk_bytes = 0;
    return;
  }
  if (static_cast<std::uint64_t>(next) > limits_.disk_bytes) {
    trip(obs::Recorder::kResourceDisk, "disk quota exceeded");
  }
  if (aggregate_ != nullptr) aggregate_->charge_disk(delta_bytes);
  usage_.disk_bytes = static_cast<std::uint64_t>(next);
}

void ResourceAccountant::charge_network(std::uint64_t bytes) {
  usage_.network_bytes += bytes;
  if (usage_.network_bytes > limits_.network_bytes) {
    trip(obs::Recorder::kResourceNetwork, "network quota exceeded");
  }
  if (aggregate_ != nullptr) aggregate_->charge_network(bytes);
}

void ResourceAccountant::open_file() {
  if (usage_.open_files + 1 > limits_.max_open_files) {
    trip(obs::Recorder::kResourceFiles, "too many open files");
  }
  ++usage_.open_files;
}

void ResourceAccountant::close_file() {
  if (usage_.open_files > 0) --usage_.open_files;
}

void ResourceAccountant::open_connection() {
  if (usage_.connections + 1 > limits_.max_connections) {
    trip(obs::Recorder::kResourceConnections, "too many connections");
  }
  ++usage_.connections;
}

void ResourceAccountant::close_connection() {
  if (usage_.connections > 0) --usage_.connections;
}

void AggregateAccountant::charge_memory(std::int64_t delta) {
  const std::int64_t next = static_cast<std::int64_t>(usage_.memory_bytes) + delta;
  if (next > static_cast<std::int64_t>(totals_.memory_bytes)) {
    trip(obs::Recorder::kResourceMemory, "aggregate memory limit exceeded");
  }
  usage_.memory_bytes = next < 0 ? 0 : static_cast<std::uint64_t>(next);
}

void AggregateAccountant::charge_disk(std::int64_t delta) {
  const std::int64_t next = static_cast<std::int64_t>(usage_.disk_bytes) + delta;
  if (next > static_cast<std::int64_t>(totals_.disk_bytes)) {
    trip(obs::Recorder::kResourceDisk, "aggregate disk limit exceeded");
  }
  usage_.disk_bytes = next < 0 ? 0 : static_cast<std::uint64_t>(next);
}

void AggregateAccountant::charge_network(std::uint64_t bytes) {
  usage_.network_bytes += bytes;
  if (usage_.network_bytes > totals_.network_bytes) {
    trip(obs::Recorder::kResourceNetwork, "aggregate network limit exceeded");
  }
}

void AggregateAccountant::charge_cpu(std::uint64_t instructions) {
  usage_.cpu_instructions += instructions;
  if (usage_.cpu_instructions > totals_.cpu_instructions) {
    trip(obs::Recorder::kResourceCpu, "aggregate cpu limit exceeded");
  }
}

}  // namespace bento::sandbox
