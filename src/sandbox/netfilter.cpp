#include "sandbox/netfilter.hpp"

namespace bento::sandbox {

NetFilter NetFilter::from_exit_policy(const tor::ExitPolicy& policy) {
  return NetFilter(policy);
}

NetFilter NetFilter::deny_all() { return NetFilter(tor::ExitPolicy::reject_all()); }

bool NetFilter::allows(const tor::Endpoint& destination) const {
  return policy_.allows(destination);
}

bool NetFilter::check(const tor::Endpoint& destination) {
  if (allows(destination)) return true;
  ++rejected_;
  return false;
}

}  // namespace bento::sandbox
