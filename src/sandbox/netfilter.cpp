#include "sandbox/netfilter.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace bento::sandbox {

NetFilter NetFilter::from_exit_policy(const tor::ExitPolicy& policy) {
  return NetFilter(policy);
}

NetFilter NetFilter::deny_all() { return NetFilter(tor::ExitPolicy::reject_all()); }

bool NetFilter::allows(const tor::Endpoint& destination) const {
  return policy_.allows(destination);
}

bool NetFilter::check(const tor::Endpoint& destination) {
  if (allows(destination)) return true;
  ++rejected_;
  static obs::Counter denials = obs::registry().counter("sandbox.net_denials");
  denials.inc();
  obs::trace(obs::Ev::SandboxNetDeny, destination.addr, destination.port,
             /*ok=*/false);
  return false;
}

}  // namespace bento::sandbox
