#include "util/log.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "util/simclock.hpp"

namespace bento::util {

namespace {
// Set when BENTO_LOG_LEVEL supplied the threshold; set_log_level() then
// leaves the environment's choice in place.
bool g_env_forced = false;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::Trace: return "trace";
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off";
  }
  return "?";
}
}  // namespace

std::optional<LogLevel> parse_log_level(const char* text) {
  if (text == nullptr || *text == '\0') return std::nullopt;
  std::string lower;
  for (const char* p = text; *p != '\0'; ++p) {
    lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(*p))));
  }
  if (lower.size() == 1 && lower[0] >= '0' && lower[0] <= '5') {
    return static_cast<LogLevel>(lower[0] - '0');
  }
  if (lower == "trace") return LogLevel::Trace;
  if (lower == "debug") return LogLevel::Debug;
  if (lower == "info") return LogLevel::Info;
  if (lower == "warn" || lower == "warning") return LogLevel::Warn;
  if (lower == "error") return LogLevel::Error;
  if (lower == "off" || lower == "none") return LogLevel::Off;
  return std::nullopt;
}

LogLevel detail::initial_log_level() {
  if (auto parsed = parse_log_level(std::getenv("BENTO_LOG_LEVEL"))) {
    g_env_forced = true;
    return *parsed;
  }
  return LogLevel::Warn;
}

void set_log_level(LogLevel level) {
  if (g_env_forced) return;  // the operator's environment override wins
  detail::g_log_threshold = level;
}

void log_line(LogLevel level, const std::string& component, const std::string& message) {
  if (!log_enabled(level)) return;
  std::cerr << "[" << level_name(level) << "] ";
  const std::int64_t us = sim_now_micros();
  if (us >= 0) {
    char stamp[32];
    std::snprintf(stamp, sizeof stamp, "t=%lld.%06llds ",
                  static_cast<long long>(us / 1'000'000),
                  static_cast<long long>(us % 1'000'000));
    std::cerr << stamp;
  }
  std::cerr << component << ": " << message << "\n";
}

}  // namespace bento::util
