#include "util/zlite.hpp"

#include <array>
#include <cstring>

#include "util/serialize.hpp"

namespace bento::util::zlite {

namespace {
constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxMatch = 1 << 16;
constexpr std::size_t kWindow = 1 << 15;
constexpr std::uint8_t kLiteral = 0x00;
constexpr std::uint8_t kMatch = 0x01;

std::uint32_t hash4(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> 18;  // 14-bit table index
}
}  // namespace

Bytes compress(ByteView input) {
  Writer w;
  w.raw(to_bytes("ZL1"));
  w.varint(input.size());

  std::array<std::int64_t, 1 << 14> table;
  table.fill(-1);

  std::size_t i = 0;
  std::size_t literal_start = 0;
  auto flush_literals = [&](std::size_t end) {
    if (end > literal_start) {
      w.u8(kLiteral);
      w.varint(end - literal_start);
      w.raw(input.subspan(literal_start, end - literal_start));
    }
  };

  while (i + kMinMatch <= input.size()) {
    const std::uint32_t h = hash4(input.data() + i);
    const std::int64_t cand = table[h];
    table[h] = static_cast<std::int64_t>(i);
    if (cand >= 0 && i - static_cast<std::size_t>(cand) <= kWindow &&
        std::memcmp(input.data() + cand, input.data() + i, kMinMatch) == 0) {
      std::size_t len = kMinMatch;
      const std::size_t maxlen = std::min(kMaxMatch, input.size() - i);
      while (len < maxlen &&
             input[static_cast<std::size_t>(cand) + len] == input[i + len]) {
        ++len;
      }
      flush_literals(i);
      w.u8(kMatch);
      w.varint(i - static_cast<std::size_t>(cand));
      w.varint(len);
      // Insert a few positions inside the match so later data can refer back.
      for (std::size_t k = 1; k < len && i + k + kMinMatch <= input.size(); k += 7) {
        table[hash4(input.data() + i + k)] = static_cast<std::int64_t>(i + k);
      }
      i += len;
      literal_start = i;
    } else {
      ++i;
    }
  }
  flush_literals(input.size());
  return std::move(w).take();
}

Bytes decompress(ByteView input) {
  Reader r(input);
  Bytes magic = r.raw(3);
  if (to_string(magic) != "ZL1") throw ParseError("zlite: bad magic");
  const std::uint64_t original = r.varint();
  Bytes out;
  out.reserve(original);
  // Stop once the declared size is reached: callers may append padding
  // after the compressed stream (the Browser function does exactly that).
  while (!r.done() && out.size() < original) {
    const std::uint8_t tag = r.u8();
    if (tag == kLiteral) {
      const std::uint64_t len = r.varint();
      append(out, r.raw(len));
    } else if (tag == kMatch) {
      const std::uint64_t dist = r.varint();
      const std::uint64_t len = r.varint();
      if (dist == 0 || dist > out.size()) throw ParseError("zlite: bad distance");
      if (len < kMinMatch) throw ParseError("zlite: bad match length");
      std::size_t from = out.size() - dist;
      for (std::uint64_t k = 0; k < len; ++k) out.push_back(out[from + k]);
    } else {
      throw ParseError("zlite: bad token");
    }
    if (out.size() > original) throw ParseError("zlite: output overrun");
  }
  if (out.size() != original) throw ParseError("zlite: size mismatch");
  return out;
}

}  // namespace bento::util::zlite
