// Binary wire (de)serialization used by Tor cells and Bento messages.
//
// All multi-byte integers are big-endian (network order), matching the Tor
// cell format conventions. Reader throws util::ParseError on truncated or
// malformed input rather than returning partial data.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "util/bytes.hpp"

namespace bento::util {

/// Raised by Reader on truncated/invalid input.
class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Appends big-endian fields to an owned buffer.
class Writer {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// Raw bytes, no length prefix.
  void raw(ByteView b);
  /// u32 length prefix + bytes.
  void blob(ByteView b);
  /// u32 length prefix + UTF-8 characters.
  void str(std::string_view s);
  /// Unsigned LEB128.
  void varint(std::uint64_t v);

  const Bytes& data() const& { return out_; }
  Bytes take() && { return std::move(out_); }

 private:
  Bytes out_;
};

/// Consumes big-endian fields from a byte view.
class Reader {
 public:
  explicit Reader(ByteView data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  Bytes raw(std::size_t n);
  /// Zero-copy variant of raw(): a view into the underlying buffer, valid
  /// only as long as the buffer the Reader was constructed over.
  ByteView view(std::size_t n);
  Bytes blob();
  std::string str();
  std::uint64_t varint();

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return remaining() == 0; }
  /// Throws ParseError unless the whole input was consumed.
  void expect_done() const;

 private:
  void need(std::size_t n) const;
  ByteView data_;
  std::size_t pos_ = 0;
};

}  // namespace bento::util
