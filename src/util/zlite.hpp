// zlite: a tiny LZ77-style compressor.
//
// Stands in for zlib in the Browser function's "compress then pad" pipeline
// (paper Appendix A, line `compressed = zlib.compress(body)`); the format is
// self-describing and round-trips exactly. It is NOT zlib-compatible.
//
// Format: "ZL1" magic, varint original size, then a token stream:
//   literal run : 0x00, varint len, bytes
//   back-ref    : 0x01, varint distance (>=1), varint length (>=4)
#pragma once

#include "util/bytes.hpp"

namespace bento::util::zlite {

/// Compresses `input`. Never fails; incompressible data grows by a few bytes.
Bytes compress(ByteView input);

/// Decompresses a buffer produced by compress().
/// Throws util::ParseError on malformed input.
Bytes decompress(ByteView input);

}  // namespace bento::util::zlite
