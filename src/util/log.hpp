// Minimal leveled logger.
//
// Logging defaults to Warn so test/bench output stays clean; examples raise
// it to Info to narrate the scenario. Not thread-safe by design: the whole
// system is a single-threaded discrete-event simulation.
#pragma once

#include <sstream>
#include <string>

namespace bento::util {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Global threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line to stderr as "[level] component: message".
void log_line(LogLevel level, const std::string& component, const std::string& message);

namespace detail {
inline void format_into(std::ostringstream&) {}
template <typename T, typename... Rest>
void format_into(std::ostringstream& os, const T& v, const Rest&... rest) {
  os << v;
  format_into(os, rest...);
}
}  // namespace detail

template <typename... Args>
void log(LogLevel level, const std::string& component, const Args&... args) {
  if (level < log_level()) return;
  std::ostringstream os;
  detail::format_into(os, args...);
  log_line(level, component, os.str());
}

template <typename... Args>
void log_info(const std::string& component, const Args&... args) {
  log(LogLevel::Info, component, args...);
}
template <typename... Args>
void log_debug(const std::string& component, const Args&... args) {
  log(LogLevel::Debug, component, args...);
}
template <typename... Args>
void log_warn(const std::string& component, const Args&... args) {
  log(LogLevel::Warn, component, args...);
}

}  // namespace bento::util
