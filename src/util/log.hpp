// Minimal leveled logger.
//
// Logging defaults to Warn so test/bench output stays clean; examples raise
// it to Info to narrate the scenario. The `BENTO_LOG_LEVEL` environment
// variable (trace|debug|info|warn|error|off, or 0-5) overrides both the
// default and any set_log_level() call, so a scenario's verbosity can be
// raised without recompiling. When a simulation clock is installed
// (util/simclock.hpp) every line is stamped with the current sim time.
//
// Hot paths gate on log_enabled(level) *before* evaluating expensive
// arguments: the predicate is an inline threshold compare, so a disabled
// log site costs one well-predicted branch and never formats anything.
// Not thread-safe by design: the whole system is a single-threaded
// discrete-event simulation.
#pragma once

#include <optional>
#include <sstream>
#include <string>

namespace bento::util {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

namespace detail {
/// Initial threshold: BENTO_LOG_LEVEL when set and parseable, else Warn.
LogLevel initial_log_level();
inline LogLevel g_log_threshold = initial_log_level();
}  // namespace detail

/// Parses a level name ("debug", "WARN") or digit ("1"); nullopt on junk.
std::optional<LogLevel> parse_log_level(const char* text);

/// Global threshold; messages below it are discarded. A BENTO_LOG_LEVEL
/// override wins over this call (the environment out-ranks compiled-in
/// defaults so tests/examples can raise verbosity externally).
void set_log_level(LogLevel level);
inline LogLevel log_level() { return detail::g_log_threshold; }

/// Fast predicate for hot call sites: guard argument formatting with this
/// when the arguments themselves are expensive to build.
inline bool log_enabled(LogLevel level) { return level >= detail::g_log_threshold; }

/// Emits one line to stderr as "[level] t=<sim seconds> component: message"
/// (the timestamp appears only while a sim clock is installed).
void log_line(LogLevel level, const std::string& component, const std::string& message);

namespace detail {
inline void format_into(std::ostringstream&) {}
template <typename T, typename... Rest>
void format_into(std::ostringstream& os, const T& v, const Rest&... rest) {
  os << v;
  format_into(os, rest...);
}
}  // namespace detail

template <typename... Args>
void log(LogLevel level, const std::string& component, const Args&... args) {
  if (!log_enabled(level)) return;
  std::ostringstream os;
  detail::format_into(os, args...);
  log_line(level, component, os.str());
}

template <typename... Args>
void log_info(const std::string& component, const Args&... args) {
  log(LogLevel::Info, component, args...);
}
template <typename... Args>
void log_debug(const std::string& component, const Args&... args) {
  log(LogLevel::Debug, component, args...);
}
template <typename... Args>
void log_warn(const std::string& component, const Args&... args) {
  log(LogLevel::Warn, component, args...);
}

}  // namespace bento::util
