// Global simulation-clock hook.
//
// The observability layer and the logger both want "what simulated time is
// it?" without a dependency edge from util up to sim. The Simulator installs
// itself here (type-erased as a function pointer + context) on construction
// and uninstalls on destruction; anything below can then timestamp output in
// sim time when a clock is present and stay wall-silent otherwise.
//
// Header-only and allocation-free: one pointer pair of process state, so a
// query is a load + indirect call. Single-threaded by design, like the rest
// of the simulation.
#pragma once

#include <cstdint>

namespace bento::util {

/// Returns microseconds of simulation time for `ctx`.
using SimClockFn = std::int64_t (*)(const void* ctx);

namespace detail {
inline SimClockFn g_sim_clock_fn = nullptr;
inline const void* g_sim_clock_ctx = nullptr;
}  // namespace detail

/// Installs `fn(ctx)` as the process-wide sim clock (last caller wins).
inline void install_sim_clock(SimClockFn fn, const void* ctx) {
  detail::g_sim_clock_fn = fn;
  detail::g_sim_clock_ctx = ctx;
}

/// Clears the clock, but only if `ctx` is still the installed owner — a
/// dying Simulator must not tear down a newer one's clock.
inline void uninstall_sim_clock(const void* ctx) {
  if (detail::g_sim_clock_ctx == ctx) {
    detail::g_sim_clock_fn = nullptr;
    detail::g_sim_clock_ctx = nullptr;
  }
}

inline bool sim_clock_installed() { return detail::g_sim_clock_fn != nullptr; }

/// Current sim time in microseconds, or -1 when no clock is installed.
inline std::int64_t sim_now_micros() {
  return detail::g_sim_clock_fn != nullptr
             ? detail::g_sim_clock_fn(detail::g_sim_clock_ctx)
             : -1;
}

}  // namespace bento::util
