// Source annotations for the bentolint invariant analyzer (DESIGN.md §10).
//
// These macros expand to nothing: they exist so tools/bentolint can see, at
// the definition site, which build-time contract a function is under. They
// cost zero code, zero data, and zero runtime — the datapath benches gate
// that claim (BENCH_datapath.json: 0 allocs/cell, overhead deltas ≤2%).
//
//   BENTO_HOT            This function is on the per-cell / per-event fast
//                        path and must not heap-allocate (the PR 2
//                        0-allocs/cell guarantee). bentolint BL102 flags
//                        operator new, make_shared/make_unique, growing
//                        container calls and allocating std:: type
//                        construction inside it — lambdas included.
//
//   BENTO_DETERMINISTIC  This function participates in seed-determinism
//                        outside src/ (inside src/ the whole tree is under
//                        the DESIGN.md §9 replay contract and needs no
//                        annotation). bentolint BL101 flags wall-clock and
//                        entropy reads inside it: sim time must come from
//                        util/simclock.hpp, randomness from the seeded Rng.
//
//   BENTO_FRAMED         This function commits store frames to durable
//                        media (src/store log format, DESIGN.md §15).
//                        bentolint BL109 requires every call to the
//                        write_frame primitive to sit inside a
//                        BENTO_FRAMED function that also performs a crc32
//                        update — the every-frame-carries-a-CRC invariant
//                        torn-write recovery depends on.
//
// Escape hatch, always with a reason:
//   // bentolint: allow(BL102 pool refill, amortized across 64 events)
// on the violating line or the line above; `allow-file(...)` for a whole
// file. A bare allow() without a reason is itself a diagnostic (BL100).
#pragma once

#define BENTO_HOT
#define BENTO_DETERMINISTIC
#define BENTO_FRAMED
