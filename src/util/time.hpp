// Simulation time types.
//
// Time is a strong type over microseconds since simulation start; a plain
// integer would invite unit bugs between modules (Core Guidelines P.1).
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace bento::util {

class Duration {
 public:
  constexpr Duration() = default;
  static constexpr Duration micros(std::int64_t us) { return Duration(us); }
  static constexpr Duration millis(std::int64_t ms) { return Duration(ms * 1000); }
  static constexpr Duration seconds(double s) {
    return Duration(static_cast<std::int64_t>(s * 1e6));
  }

  constexpr std::int64_t count_micros() const { return us_; }
  constexpr double to_seconds() const { return static_cast<double>(us_) / 1e6; }
  constexpr double to_millis() const { return static_cast<double>(us_) / 1e3; }

  friend constexpr Duration operator+(Duration a, Duration b) { return Duration(a.us_ + b.us_); }
  friend constexpr Duration operator-(Duration a, Duration b) { return Duration(a.us_ - b.us_); }
  friend constexpr Duration operator*(Duration a, double k) {
    return Duration(static_cast<std::int64_t>(static_cast<double>(a.us_) * k));
  }
  constexpr auto operator<=>(const Duration&) const = default;

 private:
  constexpr explicit Duration(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

class Time {
 public:
  constexpr Time() = default;
  static constexpr Time from_micros(std::int64_t us) { return Time(us); }
  static constexpr Time from_seconds(double s) {
    return Time(static_cast<std::int64_t>(s * 1e6));
  }

  constexpr std::int64_t micros() const { return us_; }
  constexpr double seconds() const { return static_cast<double>(us_) / 1e6; }

  friend constexpr Time operator+(Time t, Duration d) {
    return Time(t.us_ + d.count_micros());
  }
  friend constexpr Duration operator-(Time a, Time b) {
    return Duration::micros(a.us_ - b.us_);
  }
  constexpr auto operator<=>(const Time&) const = default;

 private:
  constexpr explicit Time(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

}  // namespace bento::util
