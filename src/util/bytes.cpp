#include "util/bytes.hpp"

#include <stdexcept>

namespace bento::util {

Bytes to_bytes(std::string_view s) { return Bytes(s.begin(), s.end()); }

std::string to_string(ByteView b) { return std::string(b.begin(), b.end()); }

std::string to_hex(ByteView b) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(b.size() * 2);
  for (std::uint8_t v : b) {
    out.push_back(kDigits[v >> 4]);
    out.push_back(kDigits[v & 0x0f]);
  }
  return out;
}

namespace {
int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument("from_hex: invalid hex digit");
}
}  // namespace

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) throw std::invalid_argument("from_hex: odd length");
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>((hex_nibble(hex[i]) << 4) |
                                            hex_nibble(hex[i + 1])));
  }
  return out;
}

void append(Bytes& dst, ByteView src) { dst.insert(dst.end(), src.begin(), src.end()); }

Bytes concat(std::initializer_list<ByteView> parts) {
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  Bytes out;
  out.reserve(total);
  for (const auto& p : parts) append(out, p);
  return out;
}

bool ct_equal(ByteView a, ByteView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= static_cast<std::uint8_t>(a[i] ^ b[i]);
  return acc == 0;
}

Bytes xor_bytes(ByteView a, ByteView b) {
  if (a.size() != b.size()) throw std::invalid_argument("xor_bytes: length mismatch");
  Bytes out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] ^ b[i];
  return out;
}

}  // namespace bento::util
