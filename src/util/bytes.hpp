// Byte-buffer helpers shared by every module.
//
// `Bytes` is the repository-wide owned byte buffer; views are passed as
// `std::span<const std::uint8_t>` per the Core Guidelines (I.13: do not pass
// an array as a single pointer).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace bento::util {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

/// Builds a Bytes from a string's raw characters.
Bytes to_bytes(std::string_view s);

/// Interprets a byte buffer as text (no validation; callers own encoding).
std::string to_string(ByteView b);

/// Lower-case hex encoding ("deadbeef").
std::string to_hex(ByteView b);

/// Parses hex produced by to_hex. Throws std::invalid_argument on bad input.
Bytes from_hex(std::string_view hex);

/// Appends `src` to `dst`.
void append(Bytes& dst, ByteView src);

/// Concatenates any number of byte views.
Bytes concat(std::initializer_list<ByteView> parts);

/// Constant-time equality for secrets (length leak is accepted).
bool ct_equal(ByteView a, ByteView b);

/// XOR two equal-length buffers. Throws std::invalid_argument on mismatch.
Bytes xor_bytes(ByteView a, ByteView b);

}  // namespace bento::util
