#include "util/serialize.hpp"

namespace bento::util {

void Writer::u8(std::uint8_t v) { out_.push_back(v); }

void Writer::u16(std::uint16_t v) {
  out_.push_back(static_cast<std::uint8_t>(v >> 8));
  out_.push_back(static_cast<std::uint8_t>(v));
}

void Writer::u32(std::uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    out_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void Writer::u64(std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void Writer::raw(ByteView b) { append(out_, b); }

void Writer::blob(ByteView b) {
  u32(static_cast<std::uint32_t>(b.size()));
  raw(b);
}

void Writer::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  out_.insert(out_.end(), s.begin(), s.end());
}

void Writer::varint(std::uint64_t v) {
  while (v >= 0x80) {
    out_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out_.push_back(static_cast<std::uint8_t>(v));
}

void Reader::need(std::size_t n) const {
  if (remaining() < n) throw ParseError("Reader: truncated input");
}

std::uint8_t Reader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t Reader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] << 8 | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + i];
  pos_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | data_[pos_ + i];
  pos_ += 8;
  return v;
}

Bytes Reader::raw(std::size_t n) {
  need(n);
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

ByteView Reader::view(std::size_t n) {
  need(n);
  ByteView out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

Bytes Reader::blob() {
  std::uint32_t n = u32();
  return raw(n);
}

std::string Reader::str() {
  Bytes b = blob();
  return std::string(b.begin(), b.end());
}

std::uint64_t Reader::varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    std::uint8_t byte = u8();
    if (shift >= 63 && (byte & 0x7f) > 1) throw ParseError("varint: overflow");
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

void Reader::expect_done() const {
  if (!done()) throw ParseError("Reader: trailing bytes");
}

}  // namespace bento::util
