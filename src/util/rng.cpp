#include "util/rng.hpp"

#include <cmath>
#include <stdexcept>

namespace bento::util {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform: lo > hi");
  const std::uint64_t span = hi - lo + 1;  // span==0 means the full 2^64 range
  if (span == 0) return next_u64();
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return lo + v % span;
}

double Rng::uniform01() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::gaussian(double mean, double stddev) {
  if (have_gauss_) {
    have_gauss_ = false;
    return mean + stddev * gauss_spare_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform01();
  } while (u1 <= 1e-300);
  const double u2 = uniform01();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.141592653589793 * u2;
  gauss_spare_ = r * std::sin(theta);
  have_gauss_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::exponential(double mean) {
  double u = 0.0;
  do {
    u = uniform01();
  } while (u <= 1e-300);
  return -mean * std::log(u);
}

Bytes Rng::bytes(std::size_t n) {
  Bytes out(n);
  std::size_t i = 0;
  while (i < n) {
    std::uint64_t v = next_u64();
    for (int k = 0; k < 8 && i < n; ++k, ++i) {
      out[i] = static_cast<std::uint8_t>(v >> (8 * k));
    }
  }
  return out;
}

bool Rng::chance(double p) { return uniform01() < p; }

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("Rng::weighted_index: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("Rng::weighted_index: zero total weight");
  double r = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace bento::util
