// Deterministic pseudo-random generator used across the simulator.
//
// Every component takes an Rng& so whole-system runs are reproducible from a
// single seed (no global RNG state; Core Guidelines I.2).
// The generator is xoshiro256** — fast and high quality; NOT cryptographic.
// Crypto key generation in the simulator routes through this on purpose: the
// repository's crypto is simulation-grade (see src/crypto/README note).
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.hpp"

namespace bento::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x6265'6e74'6f21'2121ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Gaussian (Box-Muller), mean/stddev.
  double gaussian(double mean, double stddev);

  /// Exponentially distributed value with the given mean.
  double exponential(double mean);

  /// `n` pseudo-random bytes.
  Bytes bytes(std::size_t n);

  /// True with probability p.
  bool chance(double p);

  /// Index drawn proportionally to non-negative weights. Requires a positive
  /// total weight.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform(0, i - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator (for subsystems).
  Rng fork();

 private:
  std::uint64_t s_[4];
  bool have_gauss_ = false;
  double gauss_spare_ = 0.0;
};

}  // namespace bento::util
