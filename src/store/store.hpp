// Log-structured sealed blob store (DESIGN.md §15).
//
// One BlobStore owns one Volume and presents a path -> bytes namespace with
// crash-consistent recovery. Every mutation is one CRC-32C-framed record
// appended to the active segment:
//
//   offset  size  field
//        0     4  magic "BSF1"
//        4     4  CRC-32C over bytes [8, len)
//        8     4  len: total frame length, header included
//       12     8  seq: monotone record sequence (also the sealing nonce)
//       20     1  op: 0 Meta | 1 Put | 2 Remove
//       21     2  path length
//       23     1  pad (zero)
//       24     …  path bytes, then the sealed body
//
// Replay walks segments in order and truncates the log at the first frame
// whose header or CRC fails — the longest valid prefix — which is exactly
// the torn-write contract the Volume's crash semantics produce. A CRC-valid
// record whose body fails to unseal is *not* truncation: it means the
// sealing key is wrong (different platform / measurement), and replay fails
// closed by throwing.
//
// Meta records carry (in order): a format-version byte, a flag byte
// (sealed | compacted | chained), a 64-bit *sequence ceiling*, and the
// predecessor segment's byte length at roll time. The ceiling is the
// nonce-reuse guard: a Meta frame is always written synced, reserving
// `seq_reserve` sequence numbers, and no record is appended with a seq
// above the last durable ceiling. Recovery resumes at
// max(max seq seen, max ceiling seen) + 1, so a seq that was handed out
// before a crash — even one sealed into a torn tail an attacker may have
// snapshotted — is never paired with the key again. The chained
// predecessor length lets replay detect a mid-log hole (a non-active
// segment shortened at a frame boundary) and truncate everything after it;
// the check is skipped right after a compacted segment, whose length
// legitimately differs from what the successor recorded.
//
// Every segment begins with a Meta record so recovery can reject a log
// written under a different sealing mode before touching any body. The
// in-memory index maps each live path to its newest record; decrypted
// payloads sit in an LRU cache bounded by `cache_bytes` (wired to the EPC
// ceiling: below the limit reads are EPC-resident, above it they page
// through unseal — the cache-tier boundary). Overwritten and removed
// records become garbage; when the garbage ratio of the sealed
// (non-active) segments crosses the threshold, compact() rewrites them,
// copying live records *verbatim* — bodies are never re-sealed, so a
// (key, seq) nonce pair is used at most once for the life of the log.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "crypto/sha256.hpp"
#include "store/sealer.hpp"
#include "store/volume.hpp"
#include "util/bytes.hpp"

namespace bento::store {

/// Thrown when recovery must fail closed: sealed-mode mismatch or a
/// CRC-valid record that does not authenticate under the provided key.
class StoreError : public std::runtime_error {
 public:
  explicit StoreError(const std::string& what) : std::runtime_error(what) {}
};

struct StoreOptions {
  /// Segment roll threshold; also the per-segment reserve, so steady-state
  /// appends never reallocate the segment buffer.
  std::size_t segment_bytes = 256 * 1024;
  /// Plaintext cache ceiling. Defaults to the SGX EPC usable budget
  /// (tee::kEpcUsableBytes, 93 MiB) — the wiring passes it explicitly; the
  /// literal here only keeps store/ free of a tee/ dependency.
  std::size_t cache_bytes = 93ull << 20;
  /// Compact when garbage / sealed-segment bytes exceeds this.
  double compact_garbage_ratio = 0.5;
  /// Sync the volume after every append (full durability). Turned off by
  /// the bench / torn-write tests to expose unsynced tails to crashes.
  bool sync_every_append = true;
  /// Sequence numbers reserved (durably, via a synced Meta frame) ahead of
  /// use. Recovery resumes above the last reserved ceiling, so a seq sealed
  /// into a crash-truncated tail is never reissued — the nonce-reuse guard.
  /// Large enough that steady-state appends almost never pay the extra
  /// synced Meta frame.
  std::uint64_t seq_reserve = 1 << 16;
};

struct ReplayReport {
  std::size_t frames = 0;           // valid records replayed
  std::size_t bytes = 0;            // bytes of valid prefix
  std::size_t truncated_bytes = 0;  // torn/corrupt tail dropped
  bool torn = false;                // truncation happened
  std::size_t live_files = 0;
};

class BlobStore {
 public:
  BlobStore(Volume& volume, std::unique_ptr<Sealer> sealer,
            StoreOptions opts = {});
  ~BlobStore();

  BlobStore(const BlobStore&) = delete;
  BlobStore& operator=(const BlobStore&) = delete;

  /// Rebuilds the namespace from the volume's log. Must be the first call
  /// on a store opened over a non-empty volume. Throws StoreError when the
  /// log's sealing mode or key disagrees with the provided sealer.
  ReplayReport replay();

  void put(const std::string& path, util::ByteView data);
  /// True when the path existed.
  bool remove(const std::string& path);
  std::optional<util::Bytes> get(const std::string& path);
  bool contains(const std::string& path) const;
  std::optional<std::size_t> size_of(const std::string& path) const;
  std::vector<std::string> list() const;

  /// True when sealed-segment garbage crosses the configured ratio.
  bool wants_compaction() const;
  /// Rewrites all non-active segments, dropping dead records. Safe to call
  /// any time; no-op when there is nothing to drop.
  void compact();

  /// SHA-256 over the sorted (path, contents) namespace — the
  /// replay-determinism witness used by tests and the bench gate.
  crypto::Digest snapshot_digest();

  std::size_t live_files() const { return index_.size(); }
  std::size_t live_bytes() const { return live_bytes_; }
  std::size_t garbage_bytes() const { return garbage_bytes_; }
  std::size_t log_bytes() const { return volume_.total_bytes(); }
  std::size_t cached_bytes() const { return cached_bytes_; }
  std::uint64_t cache_hits() const { return cache_hits_; }
  std::uint64_t cache_misses() const { return cache_misses_; }
  std::uint64_t compactions() const { return compactions_; }

  Volume& volume() { return volume_; }
  const StoreOptions& options() const { return opts_; }

 private:
  enum class Op : std::uint8_t { Meta = 0, Put = 1, Remove = 2 };

  struct Entry {
    std::uint64_t seq = 0;
    std::uint64_t segment_id = 0;
    std::size_t offset = 0;     // frame start within the segment
    std::size_t frame_len = 0;  // whole frame, header included
    std::size_t plain_size = 0;
    util::Bytes cached;  // decrypted payload; empty capacity == not cached
    bool in_cache = false;
    std::list<std::string>::iterator lru;  // valid iff in_cache
  };

  void append_meta();
  void append_record(Op op, const std::string& path, util::ByteView payload,
                     Entry* reuse);
  void roll_segment(std::size_t upcoming_frame);
  void retire(const Entry& e);
  void touch_lru(const std::string& path, Entry& e);
  void cache_insert(const std::string& path, Entry& e, util::ByteView plain);
  void cache_evict_to(std::size_t limit);
  util::Bytes read_and_unseal(const std::string& path, const Entry& e) const;
  std::size_t sealed_segment_bytes() const;

  Volume& volume_;
  std::unique_ptr<Sealer> sealer_;
  StoreOptions opts_;
  std::map<std::string, Entry> index_;
  std::list<std::string> lru_;  // front = most recent
  util::Bytes frame_scratch_;   // reused per append: 0-alloc steady state
  std::uint64_t next_seq_ = 1;
  std::uint64_t seq_ceiling_ = 0;  // last durably reserved seq (inclusive)
  std::size_t live_bytes_ = 0;
  std::size_t garbage_bytes_ = 0;
  std::size_t cached_bytes_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
  std::uint64_t compactions_ = 0;
  bool replayed_ = false;
};

}  // namespace bento::store
