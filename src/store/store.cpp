#include "store/store.hpp"

#include <algorithm>
#include <cstring>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "store/crc32.hpp"
#include "util/annotations.hpp"

namespace bento::store {

namespace {

constexpr std::size_t kHeaderLen = 24;
constexpr std::uint8_t kMagic[4] = {'B', 'S', 'F', '1'};
constexpr std::uint8_t kFormatVersion = 1;
// Meta body: version byte, flag byte, seq ceiling (LE64), predecessor
// segment length at roll time (LE64, valid iff kMetaChained).
constexpr std::size_t kMetaBodyLen = 18;
constexpr std::uint8_t kMetaSealed = 0x01;     // log written with a sealing key
constexpr std::uint8_t kMetaCompacted = 0x02;  // head of a merged segment
constexpr std::uint8_t kMetaChained = 0x04;    // prev-end field is meaningful

void store_le32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
void store_le64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
std::uint32_t load_le32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}
std::uint64_t load_le64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

/// The one primitive that commits frame bytes to durable media. bentolint
/// BL109 requires every caller to be BENTO_FRAMED and to pair the call
/// with a crc32 update in the same function.
void write_frame(Volume& volume, util::ByteView frame, bool sync) {
  volume.append(frame);
  if (sync) volume.sync();
}

/// Appends a complete (CRC-stamped) Meta frame to `out`. Used by
/// append_meta (via the scratch buffer) and by compaction, which assembles
/// a replacement segment off to the side and installs it with
/// Volume::replace_prefix rather than write_frame.
BENTO_FRAMED void build_meta_frame(util::Bytes& out, std::uint64_t seq,
                                   std::uint8_t flags, std::uint64_t ceiling,
                                   std::uint64_t prev_end) {
  const std::size_t base = out.size();
  out.resize(base + kHeaderLen + kMetaBodyLen);
  std::uint8_t* p = out.data() + base;
  std::memcpy(p, kMagic, 4);
  store_le32(p + 4, 0);
  store_le32(p + 8, static_cast<std::uint32_t>(kHeaderLen + kMetaBodyLen));
  store_le64(p + 12, seq);
  p[20] = 0;  // Op::Meta
  p[21] = 0;  // path length
  p[22] = 0;
  p[23] = 0;
  p[24] = kFormatVersion;
  p[25] = flags;
  store_le64(p + 26, ceiling);
  store_le64(p + 34, prev_end);
  const std::uint32_t crc = crc32c_final(
      crc32c_update(crc32c_init(), p + 8, kHeaderLen + kMetaBodyLen - 8));
  store_le32(p + 4, crc);
}

struct StoreCounters {
  obs::Counter append_frames = obs::registry().counter("store.append.frames");
  obs::Counter append_bytes = obs::registry().counter("store.append.bytes");
  obs::Counter replay_frames = obs::registry().counter("store.replay.frames");
  obs::Counter replay_truncated = obs::registry().counter("store.replay.truncated_bytes");
  obs::Counter compact_runs = obs::registry().counter("store.compact.runs");
  obs::Counter compact_reclaimed = obs::registry().counter("store.compact.reclaimed_bytes");
  obs::Counter cache_hits = obs::registry().counter("store.cache.hits");
  obs::Counter cache_misses = obs::registry().counter("store.cache.misses");
};

StoreCounters& counters() {
  static StoreCounters c;
  return c;
}

}  // namespace

BlobStore::BlobStore(Volume& volume, std::unique_ptr<Sealer> sealer,
                     StoreOptions opts)
    : volume_(volume), sealer_(std::move(sealer)), opts_(opts) {
  frame_scratch_.reserve(1024);
}

BlobStore::~BlobStore() = default;

void BlobStore::roll_segment(std::size_t upcoming_frame) {
  const std::size_t meta_frame = kHeaderLen + kMetaBodyLen;
  Segment* active = volume_.active();
  const bool need_fresh =
      active == nullptr ||
      (active->data.size() + upcoming_frame > opts_.segment_bytes &&
       active->data.size() > meta_frame);
  if (need_fresh) {
    volume_.create_segment(std::max(opts_.segment_bytes,
                                    upcoming_frame + meta_frame));
  }
}

// Writes one Meta frame at the current append position and refreshes the
// durable seq reservation. Always synced: the ceiling is only a nonce-reuse
// guard if it is on disk before any seq in its range is, and because the
// synced region is always a log prefix, any record that survives a crash
// has its covering ceiling survive with it. At a segment head the frame is
// chained to its predecessor's length so replay can detect mid-log holes.
BENTO_FRAMED void BlobStore::append_meta() {
  const std::vector<Segment>& segs = volume_.segments();
  const bool head = segs.back().data.empty();
  std::uint8_t flags = sealer_->sealing() ? kMetaSealed : 0;
  std::uint64_t prev_end = 0;
  if (head && segs.size() >= 2) {
    flags |= kMetaChained;
    prev_end = segs[segs.size() - 2].data.size();
  }
  const std::uint64_t seq = next_seq_++;
  seq_ceiling_ = seq + std::max<std::uint64_t>(opts_.seq_reserve, 1);
  frame_scratch_.clear();
  build_meta_frame(frame_scratch_, seq, flags, seq_ceiling_, prev_end);
  // bentolint: allow(BL109 frame built and CRC-stamped by build_meta_frame)
  write_frame(volume_, frame_scratch_, /*sync=*/true);
}

// The single append path: build the frame in the reusable scratch, CRC it,
// commit with write_frame. Steady state (existing path, warmed scratch
// capacity) performs zero heap allocations.
BENTO_FRAMED BENTO_HOT void BlobStore::append_record(Op op,
                                                     const std::string& path,
                                                     util::ByteView payload,
                                                     Entry* reuse) {
  const std::size_t sealed_len =
      payload.size() + (op == Op::Put ? sealer_->overhead() : 0);
  const std::size_t frame_len = kHeaderLen + path.size() + sealed_len;
  roll_segment(frame_len);
  // Every segment starts with a Meta record (fresh segments, and a tail
  // truncated to empty by torn-write recovery); one is also forced whenever
  // the durable seq reservation runs out, so no record's seq ever exceeds a
  // ceiling that is already on disk.
  if (volume_.active()->data.empty() || next_seq_ > seq_ceiling_) {
    append_meta();
  }

  // Reserve the full frame up front: seal_append's AAD view aliases the
  // scratch header, which must therefore never reallocate mid-build.
  frame_scratch_.clear();
  frame_scratch_.reserve(frame_len);  // bentolint: allow(BL102 capacity reused across appends)
  frame_scratch_.resize(kHeaderLen);  // bentolint: allow(BL102 within reserved capacity)
  const std::uint64_t seq = next_seq_++;
  std::uint8_t* hdr = frame_scratch_.data();
  std::memcpy(hdr, kMagic, 4);
  store_le32(hdr + 4, 0);
  store_le32(hdr + 8, static_cast<std::uint32_t>(frame_len));
  store_le64(hdr + 12, seq);
  hdr[20] = static_cast<std::uint8_t>(op);
  hdr[21] = static_cast<std::uint8_t>(path.size() & 0xff);
  hdr[22] = static_cast<std::uint8_t>((path.size() >> 8) & 0xff);
  hdr[23] = 0;
  // bentolint: allow(BL102 within reserved capacity)
  frame_scratch_.insert(frame_scratch_.end(), path.begin(), path.end());

  if (op == Op::Put) {
    const util::ByteView aad(frame_scratch_.data() + 20, 4 + path.size());
    sealer_->seal_append(frame_scratch_, seq, aad, payload);
  } else {
    // bentolint: allow(BL102 within reserved capacity)
    frame_scratch_.insert(frame_scratch_.end(), payload.begin(),
                          payload.end());
  }

  const std::uint32_t crc = crc32c_final(crc32c_update(
      crc32c_init(), frame_scratch_.data() + 8, frame_scratch_.size() - 8));
  store_le32(frame_scratch_.data() + 4, crc);
  const Segment& seg = *volume_.active();
  const std::size_t offset = seg.data.size();
  write_frame(volume_, frame_scratch_, opts_.sync_every_append);

  counters().append_frames.inc();
  counters().append_bytes.inc(frame_len);
  if (reuse != nullptr) {
    reuse->seq = seq;
    reuse->segment_id = seg.id;
    reuse->offset = offset;
    reuse->frame_len = frame_len;
    reuse->plain_size = payload.size();
  }
}

void BlobStore::retire(const Entry& e) {
  garbage_bytes_ += e.frame_len;
  live_bytes_ -= e.plain_size;
}

void BlobStore::put(const std::string& path, util::ByteView data) {
  if (!replayed_) {
    if (volume_.total_bytes() != 0) {
      throw std::logic_error("store: replay() required before first mutation");
    }
    replayed_ = true;
  }
  if (path.empty() || path.size() > 0xffff) {
    throw std::invalid_argument("store: bad path length");
  }
  obs::SpanScope span(obs::Stage::StoreAppend);
  auto [it, inserted] = index_.try_emplace(path);
  Entry& e = it->second;
  if (!inserted) retire(e);
  append_record(Op::Put, path, data, &e);
  live_bytes_ += data.size();

  if (e.in_cache && e.cached.size() == data.size()) {
    // Same-size overwrite refreshes the cached payload in place — the
    // steady-state 0-alloc path the bench gate measures.
    std::copy(data.begin(), data.end(), e.cached.begin());
    touch_lru(it->first, e);
  } else {
    cache_insert(it->first, e, data);
  }
}

bool BlobStore::remove(const std::string& path) {
  auto it = index_.find(path);
  if (it == index_.end()) return false;
  obs::SpanScope span(obs::Stage::StoreAppend);
  Entry& e = it->second;
  retire(e);
  if (e.in_cache) {
    cached_bytes_ -= e.cached.size();
    lru_.erase(e.lru);
  }
  append_record(Op::Remove, path, {}, nullptr);
  // The tombstone itself is garbage the moment the record it masks is gone;
  // count it eagerly so the compaction heuristic sees delete-heavy logs.
  garbage_bytes_ += kHeaderLen + path.size();
  index_.erase(it);
  return true;
}

std::optional<util::Bytes> BlobStore::get(const std::string& path) {
  auto it = index_.find(path);
  if (it == index_.end()) return std::nullopt;
  Entry& e = it->second;
  if (e.in_cache) {
    ++cache_hits_;
    counters().cache_hits.inc();
    touch_lru(it->first, e);
    return e.cached;
  }
  ++cache_misses_;
  counters().cache_misses.inc();
  util::Bytes plain = read_and_unseal(it->first, e);
  cache_insert(it->first, e, plain);
  return plain;
}

bool BlobStore::contains(const std::string& path) const {
  return index_.count(path) > 0;
}

std::optional<std::size_t> BlobStore::size_of(const std::string& path) const {
  auto it = index_.find(path);
  if (it == index_.end()) return std::nullopt;
  return it->second.plain_size;
}

std::vector<std::string> BlobStore::list() const {
  std::vector<std::string> out;
  out.reserve(index_.size());
  for (const auto& [path, e] : index_) out.push_back(path);
  return out;
}

void BlobStore::touch_lru(const std::string& /*path*/, Entry& e) {
  lru_.splice(lru_.begin(), lru_, e.lru);
}

void BlobStore::cache_insert(const std::string& path, Entry& e,
                             util::ByteView plain) {
  if (e.in_cache) {
    cached_bytes_ -= e.cached.size();
    e.cached.assign(plain.begin(), plain.end());
    touch_lru(path, e);
  } else {
    e.cached.assign(plain.begin(), plain.end());
    lru_.push_front(path);
    e.lru = lru_.begin();
    e.in_cache = true;
  }
  cached_bytes_ += e.cached.size();
  cache_evict_to(opts_.cache_bytes);
}

void BlobStore::cache_evict_to(std::size_t limit) {
  while (cached_bytes_ > limit && !lru_.empty()) {
    const std::string& victim = lru_.back();
    auto it = index_.find(victim);
    if (it != index_.end() && it->second.in_cache) {
      Entry& e = it->second;
      cached_bytes_ -= e.cached.size();
      e.cached = util::Bytes();
      e.in_cache = false;
    }
    lru_.pop_back();
  }
}

util::Bytes BlobStore::read_and_unseal(const std::string& path,
                                       const Entry& e) const {
  const Segment* seg = nullptr;
  for (const Segment& s : volume_.segments()) {
    if (s.id == e.segment_id) {
      seg = &s;
      break;
    }
  }
  if (seg == nullptr || e.offset + e.frame_len > seg->data.size()) {
    throw StoreError("store: index points past the log (internal)");
  }
  const std::uint8_t* frame = seg->data.data() + e.offset;
  const std::size_t path_len = path.size();
  const util::ByteView aad(frame + 20, 4 + path_len);
  const util::ByteView body(frame + kHeaderLen + path_len,
                            e.frame_len - kHeaderLen - path_len);
  std::optional<util::Bytes> plain = sealer_->open(e.seq, aad, body);
  if (!plain.has_value()) {
    throw StoreError("store: record failed to unseal (sealing key mismatch)");
  }
  return std::move(*plain);
}

ReplayReport BlobStore::replay() {
  if (replayed_) throw std::logic_error("store: replay() called twice");
  replayed_ = true;
  obs::SpanScope span(obs::SpanScope::kRoot, obs::Stage::StoreReplay);

  ReplayReport report;
  std::uint64_t max_seq = 0;
  std::uint64_t max_ceiling = 0;
  bool meta_seen = false;
  bool truncated = false;
  bool prev_compacted = false;  // predecessor segment is a merged segment
  std::size_t valid_total = 0;  // bytes of valid prefix across segments

  std::string path;  // reused across records
  const std::vector<Segment>& segs = volume_.segments();
  for (std::size_t si = 0; si < segs.size(); ++si) {
    const Segment& seg = segs[si];
    bool this_compacted = false;
    std::size_t off = 0;
    while (off < seg.data.size()) {
      const std::size_t remaining = seg.data.size() - off;
      if (remaining < kHeaderLen) {
        truncated = true;
        break;
      }
      const std::uint8_t* p = seg.data.data() + off;
      if (std::memcmp(p, kMagic, 4) != 0) {
        truncated = true;
        break;
      }
      const std::uint32_t len = load_le32(p + 8);
      if (len < kHeaderLen || len > remaining) {
        truncated = true;
        break;
      }
      const std::uint32_t want = load_le32(p + 4);
      const std::uint32_t got =
          crc32c_final(crc32c_update(crc32c_init(), p + 8, len - 8));
      if (want != got) {
        truncated = true;
        break;
      }
      const std::uint64_t seq = load_le64(p + 12);
      const std::uint8_t op = p[20];
      const std::size_t path_len =
          static_cast<std::size_t>(p[21]) | (static_cast<std::size_t>(p[22]) << 8);
      if (kHeaderLen + path_len > len || op > 2) {
        truncated = true;  // CRC-valid but self-inconsistent: treat as torn
        break;
      }
      max_seq = std::max(max_seq, seq);
      path.assign(reinterpret_cast<const char*>(p) + kHeaderLen, path_len);
      const util::ByteView body(p + kHeaderLen + path_len,
                                len - kHeaderLen - path_len);

      switch (static_cast<Op>(op)) {
        case Op::Meta: {
          if (body.size() < kMetaBodyLen || body[0] != kFormatVersion) {
            throw StoreError("store: unsupported log format version");
          }
          const std::uint8_t flags = body[1];
          const bool log_sealed = (flags & kMetaSealed) != 0;
          if (log_sealed != sealer_->sealing()) {
            throw StoreError(
                "store: log sealing mode does not match the provided sealer");
          }
          max_ceiling = std::max(max_ceiling, load_le64(body.data() + 2));
          if (off == 0) {
            this_compacted = (flags & kMetaCompacted) != 0;
            // Cross-segment continuity: this head recorded the predecessor's
            // length at roll time. A mismatch means the predecessor lost a
            // frame-aligned tail (a mid-log hole the per-frame CRC cannot
            // see), so everything from this segment on is past the hole and
            // must go. A compacted predecessor legitimately changed length
            // (and is fully synced, so it cannot have shrunk in a crash).
            if ((flags & kMetaChained) != 0 && si > 0 && !prev_compacted &&
                load_le64(body.data() + 10) != segs[si - 1].data.size()) {
              truncated = true;
            }
          }
          meta_seen = true;
          break;
        }
        case Op::Put: {
          if (!meta_seen) {
            throw StoreError("store: record before any Meta frame");
          }
          const util::ByteView aad(p + 20, 4 + path_len);
          std::optional<util::Bytes> plain = sealer_->open(seq, aad, body);
          if (!plain.has_value()) {
            // Fail closed: a CRC-valid record that does not authenticate
            // means the sealing key is wrong (no attestation), not a torn
            // write. Recovery must not proceed.
            throw StoreError(
                "store: replay unseal failed — sealing key mismatch");
          }
          auto [it, inserted] = index_.try_emplace(path);
          Entry& e = it->second;
          if (!inserted) retire(e);
          e.seq = seq;
          e.segment_id = seg.id;
          e.offset = off;
          e.frame_len = len;
          e.plain_size = plain->size();
          live_bytes_ += plain->size();
          cache_insert(it->first, e, *plain);
          break;
        }
        case Op::Remove: {
          auto it = index_.find(path);
          if (it != index_.end()) {
            Entry& e = it->second;
            retire(e);
            if (e.in_cache) {
              cached_bytes_ -= e.cached.size();
              lru_.erase(e.lru);
            }
            index_.erase(it);
          }
          garbage_bytes_ += len;
          break;
        }
      }
      if (truncated) break;  // continuity rejection: frame is past the hole
      ++report.frames;
      counters().replay_frames.inc();
      off += len;
    }
    valid_total += std::min(off, seg.data.size());
    if (truncated) break;
    prev_compacted = this_compacted;
  }

  // Resume strictly above every seq that could have been written — the max
  // actually seen, and the max durably reserved ceiling. A seq handed out
  // before the crash (even one sealed into the truncated tail an attacker
  // may have snapshotted) is never reissued, so a (key, nonce) pair is used
  // at most once across restarts. seq_ceiling_ stays 0: the first
  // post-recovery append writes a fresh synced reservation before any new
  // seq reaches the log.
  next_seq_ = std::max(max_seq, max_ceiling) + 1;
  report.bytes = valid_total;
  report.torn = truncated;
  if (truncated) {
    const std::size_t tail = volume_.total_bytes() - valid_total;
    report.truncated_bytes = tail;
    volume_.truncate_tail(tail);
    counters().replay_truncated.inc(tail);
  }
  report.live_files = index_.size();
  return report;
}

std::size_t BlobStore::sealed_segment_bytes() const {
  const std::vector<Segment>& segs = volume_.segments();
  std::size_t n = 0;
  for (std::size_t i = 0; i + 1 < segs.size(); ++i) n += segs[i].data.size();
  return n;
}

bool BlobStore::wants_compaction() const {
  const std::size_t sealed = sealed_segment_bytes();
  if (sealed == 0) return false;
  // garbage_bytes_ counts dead frames anywhere; comparing against the
  // sealed prefix only makes the heuristic trigger-happy, never starved.
  const double ratio =
      static_cast<double>(std::min(garbage_bytes_, sealed)) /
      static_cast<double>(sealed);
  return ratio > opts_.compact_garbage_ratio;
}

void BlobStore::compact() {
  const std::vector<Segment>& segs = volume_.segments();
  if (segs.size() < 2) return;
  obs::SpanScope span(obs::SpanScope::kRoot, obs::Stage::StoreCompact);
  const std::uint64_t active_id = segs.back().id;

  // Live records in the sealed prefix, identified by (segment, offset).
  struct Patch {
    Entry* entry;
    std::size_t new_offset;
  };
  std::vector<Patch> patches;
  util::Bytes compacted;
  // The merged head consumes a seq like any record; make sure it falls
  // under a durable ceiling first (e.g. right after recovery, when no
  // reservation has been written yet).
  if (next_seq_ > seq_ceiling_) append_meta();
  const std::uint8_t flags =
      static_cast<std::uint8_t>((sealer_->sealing() ? kMetaSealed : 0) |
                                kMetaCompacted);
  build_meta_frame(compacted, next_seq_++, flags, seq_ceiling_,
                   /*prev_end=*/0);

  std::size_t before = 0;
  for (const Segment& seg : segs) {
    if (seg.id == active_id) break;
    before += seg.data.size();
  }
  std::string path;  // reused
  for (const Segment& seg : segs) {
    if (seg.id == active_id) break;
    std::size_t off = 0;
    while (off + kHeaderLen <= seg.data.size()) {
      const std::uint8_t* p = seg.data.data() + off;
      const std::uint32_t len = load_le32(p + 8);
      const std::size_t path_len =
          static_cast<std::size_t>(p[21]) | (static_cast<std::size_t>(p[22]) << 8);
      if (static_cast<Op>(p[20]) == Op::Put) {
        path.assign(reinterpret_cast<const char*>(p) + kHeaderLen, path_len);
        auto it = index_.find(path);
        if (it != index_.end() && it->second.segment_id == seg.id &&
            it->second.offset == off) {
          // Live: copy the frame verbatim — the body keeps its original
          // (seq, nonce), so sealing nonces are never reused.
          patches.push_back(Patch{&it->second, compacted.size()});
          compacted.insert(compacted.end(), p, p + len);
        }
      }
      off += len;
    }
  }

  const std::uint64_t new_id = volume_.replace_prefix(active_id, std::move(compacted));
  // Post-condition for the positional replacement: exactly [merged, active]
  // remains. An id-based replacement would leave a prior merged segment
  // behind (its fresh id exceeds the active's), growing the log forever.
  if (volume_.segments().size() != 2 ||
      volume_.segments().front().id != new_id ||
      volume_.segments().back().id != active_id) {
    throw std::logic_error("store: compaction did not replace exactly the sealed prefix");
  }
  for (const Patch& patch : patches) {
    patch.entry->segment_id = new_id;
    patch.entry->offset = patch.new_offset;
  }
  const std::size_t after = volume_.segments().front().data.size();
  const std::size_t reclaimed = before > after ? before - after : 0;
  garbage_bytes_ = garbage_bytes_ > reclaimed ? garbage_bytes_ - reclaimed : 0;
  ++compactions_;
  counters().compact_runs.inc();
  counters().compact_reclaimed.inc(reclaimed);
}

crypto::Digest BlobStore::snapshot_digest() {
  crypto::Sha256 h;
  std::uint8_t lenbuf[8];
  for (const auto& [path, entry] : index_) {
    store_le64(lenbuf, path.size());
    h.update(util::ByteView(lenbuf, 8));
    h.update(util::ByteView(reinterpret_cast<const std::uint8_t*>(path.data()),
                            path.size()));
    const util::Bytes contents =
        entry.in_cache ? entry.cached : read_and_unseal(path, entry);
    store_le64(lenbuf, contents.size());
    h.update(util::ByteView(lenbuf, 8));
    h.update(contents);
  }
  return h.finish();
}

}  // namespace bento::store
