#include "store/volume.hpp"

#include <stdexcept>

#include "util/annotations.hpp"

namespace bento::store {

Segment& Volume::create_segment(std::size_t reserve_bytes) {
  // Roll == fsync + close of the previous segment file: everything written
  // so far becomes durable, so only the new active segment can ever hold
  // unsynced bytes. Without this a crash could drop a non-active segment's
  // unsynced tail while later (torn-prefix) bytes survive — a silent
  // mid-log hole that replay's prefix contract forbids.
  sync();
  Segment seg;
  seg.id = next_id_++;
  seg.data.reserve(reserve_bytes);
  segments_.push_back(std::move(seg));
  return segments_.back();
}

BENTO_HOT std::size_t Volume::append(util::ByteView bytes) {
  if (segments_.empty()) throw std::logic_error("volume: append with no segment");
  Segment& seg = segments_.back();
  const std::size_t at = seg.data.size();
  // Steady state stays within the reserved capacity (store.cpp rolls to a
  // fresh segment before the reserve is exhausted), so this does not grow.
  // bentolint: allow(BL102 amortized by segment reserve)
  seg.data.insert(seg.data.end(), bytes.begin(), bytes.end());
  return at;
}

void Volume::sync() {
  for (Segment& seg : segments_) seg.synced = seg.data.size();
}

void Volume::crash(std::size_t torn_keep_bytes) {
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    Segment& seg = segments_[i];
    std::size_t keep = seg.synced;
    if (i + 1 == segments_.size()) {
      const std::size_t unsynced = seg.data.size() - seg.synced;
      keep += (torn_keep_bytes < unsynced) ? torn_keep_bytes : unsynced;
    }
    seg.data.resize(keep);
    seg.synced = seg.data.size() < seg.synced ? seg.data.size() : seg.synced;
  }
}

std::uint64_t Volume::replace_prefix(std::uint64_t keep_from_id, util::Bytes compacted) {
  std::vector<Segment> next;
  next.reserve(segments_.size() + 1);
  Segment merged;
  merged.id = next_id_++;
  merged.data = std::move(compacted);
  merged.synced = merged.data.size();
  const std::uint64_t id = merged.id;
  next.push_back(std::move(merged));
  // Positional, not id-ordered: everything before the kept segment is the
  // compacted prefix, regardless of the ids compaction history assigned.
  bool keeping = false;
  for (Segment& seg : segments_) {
    if (seg.id == keep_from_id) keeping = true;
    if (keeping) next.push_back(std::move(seg));
  }
  segments_ = std::move(next);
  return id;
}

std::size_t Volume::total_bytes() const {
  std::size_t n = 0;
  for (const Segment& seg : segments_) n += seg.data.size();
  return n;
}

std::size_t Volume::unsynced_bytes() const {
  std::size_t n = 0;
  for (const Segment& seg : segments_) n += seg.data.size() - seg.synced;
  return n;
}

void Volume::truncate_tail(std::size_t bytes) {
  for (auto it = segments_.rbegin(); it != segments_.rend() && bytes > 0; ++it) {
    const std::size_t drop = bytes < it->data.size() ? bytes : it->data.size();
    it->data.resize(it->data.size() - drop);
    if (it->synced > it->data.size()) it->synced = it->data.size();
    bytes -= drop;
  }
}

void Volume::shear_segment(std::size_t index, std::size_t keep_bytes) {
  if (index >= segments_.size()) {
    throw std::out_of_range("volume: shear_segment index past end");
  }
  Segment& seg = segments_[index];
  if (keep_bytes > seg.data.size()) {
    throw std::out_of_range("volume: shear_segment cannot grow a segment");
  }
  seg.data.resize(keep_bytes);
  if (seg.synced > seg.data.size()) seg.synced = seg.data.size();
}

void Volume::corrupt_tail(std::size_t byte_from_end) {
  for (auto it = segments_.rbegin(); it != segments_.rend(); ++it) {
    if (byte_from_end < it->data.size()) {
      it->data[it->data.size() - 1 - byte_from_end] ^= 0xa5;
      return;
    }
    byte_from_end -= it->data.size();
  }
  throw std::out_of_range("volume: corrupt_tail past start of log");
}

VolumeManager::VolumeManager(std::uint64_t seed) : rng_(seed) {}

Volume& VolumeManager::open(const std::string& key) {
  auto it = volumes_.find(key);
  if (it == volumes_.end()) {
    it = volumes_.emplace(key, std::make_unique<Volume>()).first;
  }
  return *it->second;
}

Volume* VolumeManager::find(const std::string& key) {
  auto it = volumes_.find(key);
  return it == volumes_.end() ? nullptr : it->second.get();
}

bool VolumeManager::erase(const std::string& key) { return volumes_.erase(key) > 0; }

std::vector<std::string> VolumeManager::keys() const {
  std::vector<std::string> out;
  out.reserve(volumes_.size());
  for (const auto& [key, vol] : volumes_) out.push_back(key);
  return out;
}

void VolumeManager::crash() {
  // std::map iteration keeps the draw order stable, so the torn prefix each
  // volume keeps is a pure function of (seed, crash count, volume names).
  for (auto& [key, vol] : volumes_) {
    Segment* active = vol->active();
    const std::size_t unsynced =
        active ? active->data.size() - active->synced : 0;
    const std::size_t torn =
        unsynced == 0 ? 0 : static_cast<std::size_t>(rng_.uniform(0, unsynced));
    vol->crash(torn);
  }
}

std::size_t VolumeManager::total_bytes() const {
  std::size_t n = 0;
  for (const auto& [key, vol] : volumes_) n += vol->total_bytes();
  return n;
}

}  // namespace bento::store
