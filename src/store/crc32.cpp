#include "store/crc32.hpp"

#include <array>

#include "util/annotations.hpp"

namespace bento::store {

namespace {

// Slice-by-4 tables, computed once at static-init time from the reflected
// Castagnoli polynomial. 4 KiB of constant data total.
struct Tables {
  std::array<std::array<std::uint32_t, 256>, 4> t;
  Tables() {
    constexpr std::uint32_t kPoly = 0x82f63b78u;  // 0x1EDC6F41 reflected
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? (c >> 1) ^ kPoly : c >> 1;
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xff];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xff];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xff];
    }
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

BENTO_HOT std::uint32_t crc32c_update(std::uint32_t state, const std::uint8_t* data,
                                      std::size_t len) {
  const Tables& tb = tables();
  std::uint32_t c = state;
  while (len >= 4) {
    c ^= static_cast<std::uint32_t>(data[0]) |
         (static_cast<std::uint32_t>(data[1]) << 8) |
         (static_cast<std::uint32_t>(data[2]) << 16) |
         (static_cast<std::uint32_t>(data[3]) << 24);
    c = tb.t[3][c & 0xff] ^ tb.t[2][(c >> 8) & 0xff] ^ tb.t[1][(c >> 16) & 0xff] ^
        tb.t[0][(c >> 24) & 0xff];
    data += 4;
    len -= 4;
  }
  while (len-- > 0) {
    c = (c >> 8) ^ tb.t[0][(c ^ *data++) & 0xff];
  }
  return c;
}

}  // namespace bento::store
