// CRC-32C (Castagnoli, polynomial 0x1EDC6F41) for store frame integrity.
//
// Every frame in the sealed blob store's segment log carries a CRC over its
// header and body (DESIGN.md §15); replay uses a CRC mismatch as the
// torn-write signal and truncates the log at the first bad frame. CRC-32C
// is the storage-industry choice (iSCSI, ext4, RocksDB) because its error
// detection properties for short records are strictly better than the
// zlib polynomial's.
//
// Table-driven slice-by-4 implementation: allocation-free, no globals
// beyond the constant-initialized tables, deterministic everywhere.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/bytes.hpp"

namespace bento::store {

/// Incremental update: feed successive chunks with the running value.
/// Start from crc32c_init(), finish with crc32c_final().
std::uint32_t crc32c_update(std::uint32_t state, const std::uint8_t* data,
                            std::size_t len);

inline constexpr std::uint32_t crc32c_init() { return 0xffffffffu; }
inline constexpr std::uint32_t crc32c_final(std::uint32_t state) {
  return state ^ 0xffffffffu;
}

/// One-shot convenience over a view.
inline std::uint32_t crc32c(util::ByteView data) {
  return crc32c_final(crc32c_update(crc32c_init(), data.data(), data.size()));
}

}  // namespace bento::store
