#include "store/sealer.hpp"

#include "crypto/poly1305.hpp"
#include "util/annotations.hpp"

namespace bento::store {

void NullSealer::seal_append(util::Bytes& out, std::uint64_t /*seq*/,
                             util::ByteView /*aad*/, util::ByteView plaintext) {
  out.insert(out.end(), plaintext.begin(),
             plaintext.end());  // bentolint: allow(BL102 amortized by segment reserve)
}

std::optional<util::Bytes> NullSealer::open(std::uint64_t /*seq*/,
                                            util::ByteView /*aad*/,
                                            util::ByteView sealed) {
  return util::Bytes(sealed.begin(), sealed.end());
}

ChaPolySealer::ChaPolySealer(crypto::ChaChaKey key) : key_(key) {
  mac_scratch_.reserve(512);
}

crypto::ChaChaNonce ChaPolySealer::nonce_for(std::uint64_t seq) {
  crypto::ChaChaNonce nonce{};
  for (int i = 0; i < 8; ++i) {
    nonce[4 + i] = static_cast<std::uint8_t>(seq >> (8 * i));
  }
  return nonce;
}

// Mirrors crypto::chapoly_seal byte for byte (the store test asserts
// equality against it), but writes into the caller's reserved buffer and a
// reused MAC scratch instead of allocating fresh vectors per record.
BENTO_HOT void ChaPolySealer::seal_append(util::Bytes& out, std::uint64_t seq,
                                          util::ByteView aad,
                                          util::ByteView plaintext) {
  const crypto::ChaChaNonce nonce = nonce_for(seq);
  const std::size_t base = out.size();
  // bentolint: allow(BL102 amortized by segment reserve)
  out.insert(out.end(), plaintext.begin(), plaintext.end());
  crypto::chacha20_xor_inplace(key_, nonce, 1,
                       std::span<std::uint8_t>(out.data() + base, plaintext.size()));
  const util::ByteView ciphertext(out.data() + base, plaintext.size());

  // One-time Poly1305 key = ChaCha20 block 0 keystream.
  crypto::Poly1305Key otk{};
  crypto::chacha20_xor_inplace(key_, nonce, 0, otk);

  mac_scratch_.clear();
  // bentolint: allow(BL102 scratch capacity reused)
  mac_scratch_.insert(mac_scratch_.end(), aad.begin(), aad.end());
  while (mac_scratch_.size() % 16 != 0) {
    mac_scratch_.push_back(0);  // bentolint: allow(BL102 scratch capacity reused)
  }
  // bentolint: allow(BL102 scratch capacity reused)
  mac_scratch_.insert(mac_scratch_.end(), ciphertext.begin(),
                      ciphertext.end());
  while (mac_scratch_.size() % 16 != 0) {
    mac_scratch_.push_back(0);  // bentolint: allow(BL102 scratch capacity reused)
  }
  for (int i = 0; i < 8; ++i) {
    mac_scratch_.push_back(  // bentolint: allow(BL102 scratch capacity reused)
        static_cast<std::uint8_t>(aad.size() >> (8 * i)));
  }
  for (int i = 0; i < 8; ++i) {
    mac_scratch_.push_back(  // bentolint: allow(BL102 scratch capacity reused)
        static_cast<std::uint8_t>(ciphertext.size() >> (8 * i)));
  }
  const crypto::Poly1305Tag tag = crypto::poly1305(otk, mac_scratch_);
  // bentolint: allow(BL102 amortized by segment reserve)
  out.insert(out.end(), tag.begin(), tag.end());
}

std::optional<util::Bytes> ChaPolySealer::open(std::uint64_t seq,
                                               util::ByteView aad,
                                               util::ByteView sealed) {
  return crypto::chapoly_open(key_, nonce_for(seq), aad, sealed);
}

std::unique_ptr<Sealer> make_null_sealer() { return std::make_unique<NullSealer>(); }

std::unique_ptr<Sealer> make_chapoly_sealer(const crypto::ChaChaKey& key) {
  return std::make_unique<ChaPolySealer>(key);
}

}  // namespace bento::store
