// Simulated durable media for the sealed blob store.
//
// A `Volume` models one node-local "disk" holding an ordered list of
// append-only segment files. Each segment tracks a `synced` watermark:
// bytes below it survive a node crash unconditionally; bytes above it are
// lost, except that a crash may keep a *partial prefix* of the unsynced
// tail of the active segment — the torn-write the CRC framing in
// store.cpp exists to detect. `VolumeManager` owns the volumes of one
// simulated host and draws the torn-prefix length from its own seeded
// Rng so chaos runs stay bit-reproducible.
//
// The manager is intentionally owned *above* the BentoServer/Conclave
// layer (by the server object that survives `crash()`), mirroring how a
// real host's disk outlives the enclave process on it.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace bento::store {

/// One append-only segment "file". `data` holds durable and unsynced bytes
/// contiguously; `synced` is the crash-safe watermark.
struct Segment {
  std::uint64_t id = 0;
  util::Bytes data;
  std::size_t synced = 0;
};

class Volume {
 public:
  /// Opens a fresh segment (becomes the active one) with `reserve_bytes`
  /// of pre-allocated capacity so steady-state appends never reallocate.
  /// Rolling syncs every existing segment first (the fsync-before-close of
  /// a real segment file), which pins the invariant crash recovery leans
  /// on: unsynced bytes only ever live in the *active* segment's tail, so
  /// a crash can never open a hole in the middle of the log.
  Segment& create_segment(std::size_t reserve_bytes);

  /// Appends raw bytes to the active segment; returns the offset the bytes
  /// landed at. Requires at least one segment.
  std::size_t append(util::ByteView bytes);

  /// Marks every byte of every segment durable.
  void sync();

  /// Crash semantics: all unsynced bytes vanish, except the first
  /// `torn_keep_bytes` of the active segment's unsynced tail, which
  /// survive as a torn (possibly mid-frame) write.
  void crash(std::size_t torn_keep_bytes);

  /// Compaction support: atomically replaces every segment *positionally
  /// preceding* the one whose id is `keep_from_id` by a single fully-synced
  /// segment containing `compacted`. Position, not id order, defines the
  /// prefix — merged segments carry fresh (higher) ids, so an id comparison
  /// would leave a previous compaction's output behind as a duplicate.
  /// Returns the new segment's id.
  std::uint64_t replace_prefix(std::uint64_t keep_from_id, util::Bytes compacted);

  const std::vector<Segment>& segments() const { return segments_; }
  Segment* active() { return segments_.empty() ? nullptr : &segments_.back(); }

  std::size_t total_bytes() const;
  std::size_t unsynced_bytes() const;

  /// Fault-injection hooks for tests: drop / flip bytes at the very end of
  /// the log (the active segment's tail).
  void truncate_tail(std::size_t bytes);
  void corrupt_tail(std::size_t byte_from_end);
  /// Fault-injection: shear segment `index` down to `keep_bytes` — a clean
  /// mid-log loss (possibly at a frame boundary) that replay's cross-segment
  /// continuity check must detect. Throws on a bad index or growth.
  void shear_segment(std::size_t index, std::size_t keep_bytes);

 private:
  std::vector<Segment> segments_;
  std::uint64_t next_id_ = 1;
};

/// The per-host volume namespace, keyed by store name (function name).
/// Survives server crashes; `crash()` applies torn-write semantics to every
/// volume with deterministic draws from the manager's Rng.
class VolumeManager {
 public:
  explicit VolumeManager(std::uint64_t seed);

  /// Opens (creating if absent) the named volume.
  Volume& open(const std::string& key);
  Volume* find(const std::string& key);
  bool erase(const std::string& key);
  std::vector<std::string> keys() const;

  /// Node crash: every volume loses its unsynced bytes except a
  /// deterministically drawn torn prefix of each active segment.
  void crash();

  std::size_t total_bytes() const;

 private:
  util::Rng rng_;
  std::map<std::string, std::unique_ptr<Volume>> volumes_;
};

}  // namespace bento::store
