// Record-level sealing for store frames.
//
// The store seals each frame *body* (not the header — replay must be able
// to walk frame boundaries before it can unseal) with RFC 8439
// ChaCha20-Poly1305 from crypto/. The nonce is the frame sequence number —
// unique per record by construction, never reused because compaction copies
// sealed bodies verbatim instead of re-sealing. The AAD binds the header
// fields (op + path) so a sealed body cannot be replayed under a different
// path.
//
// `Sealer` is an interface so the store itself has no tee/ dependency:
// tee/conclave.cpp derives the key from the platform sealing secret and the
// enclave measurement (same HKDF contract as Enclave::sealing_key) and
// hands the store a ChaPolySealer. Recovery on the wrong platform or with
// the wrong measurement derives a different key, every unseal fails, and
// replay fails closed — the attestation gate of DESIGN.md §15.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "crypto/chacha20.hpp"
#include "util/bytes.hpp"

namespace bento::store {

class Sealer {
 public:
  virtual ~Sealer() = default;

  /// Bytes seal_append adds beyond the plaintext (the tag).
  virtual std::size_t overhead() const = 0;

  /// True when bodies are actually encrypted (drives the Meta frame flag).
  virtual bool sealing() const = 0;

  /// Appends the sealed form of `plaintext` to `out` — exactly
  /// plaintext.size() + overhead() bytes. Must not allocate in steady
  /// state beyond `out`'s own (reserved) growth.
  virtual void seal_append(util::Bytes& out, std::uint64_t seq,
                           util::ByteView aad, util::ByteView plaintext) = 0;

  /// Opens a sealed body; nullopt on authentication failure.
  virtual std::optional<util::Bytes> open(std::uint64_t seq, util::ByteView aad,
                                          util::ByteView sealed) = 0;
};

/// Identity sealer for non-SGX images: frames stay CRC-framed but plaintext.
class NullSealer final : public Sealer {
 public:
  std::size_t overhead() const override { return 0; }
  bool sealing() const override { return false; }
  void seal_append(util::Bytes& out, std::uint64_t seq, util::ByteView aad,
                   util::ByteView plaintext) override;
  std::optional<util::Bytes> open(std::uint64_t seq, util::ByteView aad,
                                  util::ByteView sealed) override;
};

/// ChaCha20-Poly1305 sealer. Output is byte-identical to
/// crypto::chapoly_seal (ciphertext || 16-byte tag) with the nonce derived
/// from `seq`; the append path reuses a scratch buffer so a steady-state
/// seal performs zero heap allocations.
class ChaPolySealer final : public Sealer {
 public:
  explicit ChaPolySealer(crypto::ChaChaKey key);

  std::size_t overhead() const override { return 16; }
  bool sealing() const override { return true; }
  void seal_append(util::Bytes& out, std::uint64_t seq, util::ByteView aad,
                   util::ByteView plaintext) override;
  std::optional<util::Bytes> open(std::uint64_t seq, util::ByteView aad,
                                  util::ByteView sealed) override;

  static crypto::ChaChaNonce nonce_for(std::uint64_t seq);

 private:
  crypto::ChaChaKey key_;
  util::Bytes mac_scratch_;  // reused across appends; capacity amortizes
};

std::unique_ptr<Sealer> make_null_sealer();
std::unique_ptr<Sealer> make_chapoly_sealer(const crypto::ChaChaKey& key);

}  // namespace bento::store
