#include "chaos/chaos.hpp"

#include <stdexcept>

#include "obs/span.hpp"
#include "util/annotations.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace bento::chaos {

namespace {
constexpr char kComponent[] = "chaos";

std::pair<sim::NodeId, sim::NodeId> ordered(sim::NodeId a, sim::NodeId b) {
  return a < b ? std::pair{a, b} : std::pair{b, a};
}

bool rule_matches(sim::NodeId ra, sim::NodeId rb, sim::NodeId from, sim::NodeId to) {
  const bool fwd = (ra == kAnyNode || ra == from) && (rb == kAnyNode || rb == to);
  const bool rev = (ra == kAnyNode || ra == to) && (rb == kAnyNode || rb == from);
  return fwd || rev;
}
}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::Drop: return "drop";
    case FaultKind::Duplicate: return "duplicate";
    case FaultKind::Jitter: return "jitter";
    case FaultKind::Partition: return "partition";
    case FaultKind::Crash: return "crash";
    case FaultKind::Restart: return "restart";
    case FaultKind::Throttle: return "throttle";
    case FaultKind::App: return "app";
  }
  return "unknown";
}

namespace {
// splitmix64 finalizer: decorrelates the per-region fault streams derived
// from one base seed.
std::uint64_t mix_region_seed(std::uint64_t base, std::uint32_t region) {
  std::uint64_t z = base + 0x9e3779b97f4a7c15ull * (region + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}
}  // namespace

ChaosEngine::ChaosEngine(sim::Simulator& sim, sim::Network& net)
    : sim_(sim), net_(net), rngs_(1), stats_(1) {}

BENTO_HOT util::Rng& ChaosEngine::packet_rng() {
  std::uint32_t r = sim_.current_region_id();
  if (r >= rngs_.size()) r = 0;
  return rngs_[r].rng;
}

BENTO_HOT ChaosEngine::Stats& ChaosEngine::packet_stats() {
  std::uint32_t r = sim_.current_region_id();
  if (r >= stats_.size()) r = 0;
  return stats_[r].s;
}

ChaosEngine::Stats ChaosEngine::stats() const {
  Stats total;
  for (const StatsSlot& slot : stats_) {
    total.dropped += slot.s.dropped;
    total.duplicated += slot.s.duplicated;
    total.jittered += slot.s.jittered;
    total.partitioned += slot.s.partitioned;
    total.crashes += slot.s.crashes;
    total.restarts += slot.s.restarts;
    total.throttles += slot.s.throttles;
    total.app_faults += slot.s.app_faults;
  }
  return total;
}

ChaosEngine::~ChaosEngine() {
  if (installed_ && net_.fault_injector() == this) {
    net_.set_fault_injector(nullptr);
  }
}

void ChaosEngine::record(FaultKind kind, std::uint32_t a, std::uint64_t extra,
                         bool ok) {
  obs::trace(obs::Ev::ChaosFault, a,
             (static_cast<std::uint64_t>(kind) << 32) | (extra & 0xffffffffu), ok);
  // Attribute the fault to whatever request span is active right now; no-op
  // when nothing is being traced.
  obs::span_note(obs::current_span().span_id, obs::kNoteChaos,
                 static_cast<std::uint32_t>(kind));
}

void ChaosEngine::install(ChaosPlan plan) {
  if (installed_) throw std::logic_error("ChaosEngine::install: already installed");
  installed_ = true;
  plan_ = std::move(plan);
  // All coin flips flow from generators derived from the simulator's seeded
  // Rng at this point, folded with the plan's own seed: identical (seed,
  // plan) pairs replay identical fault sequences. Region 0 keeps the exact
  // legacy stream; other regions get streams split from the same base, a
  // pure function of (base, region) and so invariant under the shard count.
  const std::uint64_t base = sim_.rng().next_u64() ^ plan_.seed ^ 0x63686130735f656eull;
  rngs_.resize(sim_.regions());
  stats_.resize(sim_.regions());
  rngs_[0].rng = util::Rng(base);
  for (std::uint32_t r = 1; r < rngs_.size(); ++r) {
    rngs_[r].rng = util::Rng(mix_region_seed(base, r));
  }
  sync_hook();
  schedule_plan();
}

void ChaosEngine::sync_hook() {
  // The packet hook is attached only while some fault state can actually
  // touch a packet — probabilistic link rules, open cuts, or downed nodes.
  // Otherwise the network keeps its null-injector fast path, so an engine
  // installed with an idle plan costs the send datapath nothing (the
  // BM_NetworkSendDatapathChaosIdle guard holds this at <= 2%).
  const bool need = !plan_.links.empty() || !cuts_.empty() || down_count_ > 0;
  net_.set_fault_injector(need ? this : nullptr);
}

void ChaosEngine::set_node_handler(sim::NodeId node, std::function<void(bool)> fn) {
  node_handlers_[node] = std::move(fn);
}

void ChaosEngine::set_recovery_callback(sim::NodeId node, std::function<void()> fn) {
  recovery_callbacks_[node] = std::move(fn);
}

void ChaosEngine::schedule_plan() {
  for (const Partition& p : plan_.partitions) {
    ctl_at(p.start, [this, p] { cut(p.a, p.b, p.heal); });
  }
  for (const NodeCrash& c : plan_.crashes) {
    ctl_at(c.at, [this, c] { crash(c.node, c.restart_after); });
  }
  for (const Throttle& t : plan_.throttles) {
    ctl_at(t.start, [this, t] {
      ++packet_stats().throttles;
      record(FaultKind::Throttle, t.node,
             static_cast<std::uint64_t>(t.scale * 1000.0));
      net_.set_bandwidth_scale(t.node, t.scale);
      if (t.duration.count_micros() > 0) {
        ctl_after(t.duration, [this, node = t.node] {
          net_.set_bandwidth_scale(node, 1.0);
        });
      }
    });
  }
  for (const AppFault& f : plan_.app_faults) {
    // The callable is shared rather than copied into the event so capture
    // size stays within the scheduler's inline buffer.
    auto fn = std::make_shared<std::function<void()>>(f.fn);
    ctl_at(f.at, [this, ref = f.ref, fn] {
      ++packet_stats().app_faults;
      record(FaultKind::App, ref, 0);
      if (*fn) (*fn)();
    });
  }
}

void ChaosEngine::crash_now(sim::NodeId node, util::Duration restart_after) {
  crash(node, restart_after);
}

void ChaosEngine::partition_now(sim::NodeId a, sim::NodeId b, util::Duration heal) {
  cut(a, b, heal);
}

BENTO_HOT bool ChaosEngine::is_down(sim::NodeId node) const {
  return node < down_.size() && down_[node] != 0;
}

BENTO_HOT bool ChaosEngine::node_down(sim::NodeId node) const { return is_down(node); }

void ChaosEngine::crash(sim::NodeId node, util::Duration restart_after) {
  if (is_down(node)) return;
  if (down_.size() <= node) down_.resize(node + 1, 0);
  down_[node] = 1;
  ++down_count_;
  sync_hook();
  ++packet_stats().crashes;
  util::log_warn(kComponent, "crashing node ", node);
  record(FaultKind::Crash, node,
         static_cast<std::uint64_t>(restart_after.count_micros() / 1000));
  auto it = node_handlers_.find(node);
  if (it != node_handlers_.end() && it->second) it->second(false);
  net_.notify_peer_down(node);
  if (restart_after.count_micros() > 0) {
    ctl_after(restart_after, [this, node] { restart(node); });
  }
}

void ChaosEngine::restart(sim::NodeId node) {
  if (!is_down(node)) return;
  down_[node] = 0;
  --down_count_;
  sync_hook();
  ++packet_stats().restarts;
  util::log_info(kComponent, "restarting node ", node);
  record(FaultKind::Restart, node, 0);
  auto it = node_handlers_.find(node);
  if (it != node_handlers_.end() && it->second) it->second(true);
  // Recovery runs after the up-edge handler: the node exists again, now it
  // replays durable state rather than resuming stale in-memory contents.
  auto rec = recovery_callbacks_.find(node);
  if (rec != recovery_callbacks_.end() && rec->second) rec->second();
}

void ChaosEngine::cut(sim::NodeId a, sim::NodeId b, util::Duration heal) {
  cuts_.insert(ordered(a, b));
  sync_hook();
  ++packet_stats().partitioned;
  record(FaultKind::Partition, a == kAnyNode ? b : a,
         a == kAnyNode || b == kAnyNode ? 0xffffffffu
                                        : static_cast<std::uint64_t>(ordered(a, b).second));
  if (heal.count_micros() > 0) {
    ctl_after(heal, [this, a, b] { this->heal(a, b); });
  }
}

void ChaosEngine::heal(sim::NodeId a, sim::NodeId b) {
  cuts_.erase(ordered(a, b));
  sync_hook();
}

BENTO_HOT sim::FaultDecision ChaosEngine::on_packet(sim::NodeId from, sim::NodeId to,
                                          std::size_t wire_size) {
  (void)wire_size;
  sim::FaultDecision verdict;
  if (!cuts_.empty() &&
      (cuts_.contains(ordered(from, to)) || cuts_.contains(ordered(from, kAnyNode)) ||
       cuts_.contains(ordered(to, kAnyNode)))) {
    verdict.drop = true;
    record(FaultKind::Partition, from, to, /*ok=*/false);
    return verdict;
  }
  // Coin flips come from the sending region's stream; counters land in its
  // slot. Both are worker-private under parallel windows (the hook runs on
  // the worker driving the sender's region).
  util::Rng& rng = packet_rng();
  Stats& st = packet_stats();
  for (const LinkFault& rule : plan_.links) {
    if (!rule_matches(rule.a, rule.b, from, to)) continue;
    if (rule.drop_p > 0 && rng.chance(rule.drop_p)) {
      ++st.dropped;
      record(FaultKind::Drop, from, to, /*ok=*/false);
      verdict.drop = true;
      return verdict;  // a lost packet cannot also be duplicated/delayed
    }
    if (rule.dup_p > 0 && rng.chance(rule.dup_p)) {
      ++st.duplicated;
      record(FaultKind::Duplicate, from, to);
      verdict.duplicate = true;
    }
    if (rule.jitter_p > 0 && rng.chance(rule.jitter_p)) {
      ++st.jittered;
      const util::Duration extra = util::Duration::micros(static_cast<std::int64_t>(
          rng.exponential(rule.jitter_mean.to_seconds() * 1e6)));
      record(FaultKind::Jitter, from,
             static_cast<std::uint64_t>(extra.count_micros()));
      verdict.extra_delay = verdict.extra_delay + extra;
    }
  }
  return verdict;
}

}  // namespace bento::chaos
