// Chaos engine: deterministic fault injection for the whole stack.
//
// A ChaosPlan is pure data describing what should go wrong — per-link loss,
// duplication and latency jitter, link partitions with heal times, scheduled
// node crash/restart, slow-node throttling, and arbitrary application-level
// faults (conclave kill, EPC thrash) as timed callbacks. The ChaosEngine
// installs the plan as a sim::FaultInjector on the Network and schedules the
// timed faults on the Simulator.
//
// Determinism contract: every probabilistic decision draws from an Rng
// derived from the simulator's seeded generator at install() time, and all
// timed faults fire at plan-specified sim times — so a run is a pure
// function of (simulator seed, plan) and any failure replays bit-identically
// from those two values. Under a region-sharded simulator (DESIGN.md §12)
// the packet hook keeps one derived Rng stream and one Stats slot per
// region — both pure functions of (install-time draw, plan seed, region) —
// and every plan-scheduled control mutation (partition, crash, throttle,
// app fault) runs as an exclusive event at a window barrier, so fault
// injection is data-race-free and byte-identical at every shard count. Every injected fault lands in the flight recorder
// (Ev::ChaosFault) and, when a request is being traced, as a kNoteChaos span
// note, so bentotrace attributes latency and failures to their injected
// causes (DESIGN.md §9).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace bento::chaos {

/// Wildcard endpoint for LinkFault rules.
inline constexpr sim::NodeId kAnyNode = sim::kInvalidNode;

/// Fault taxonomy; recorded in Ev::ChaosFault.b (high 32 bits) and in
/// kNoteChaos span notes.
enum class FaultKind : std::uint8_t {
  Drop = 0,
  Duplicate,
  Jitter,
  Partition,
  Crash,
  Restart,
  Throttle,
  App,
};

const char* fault_kind_name(FaultKind kind);

/// One probabilistic rule for packets between `a` and `b` (either may be
/// kAnyNode; rules match both directions). Multiple matching rules compose:
/// any drop wins, delays add.
struct LinkFault {
  sim::NodeId a = kAnyNode;
  sim::NodeId b = kAnyNode;
  double drop_p = 0.0;       // P(packet silently lost)
  double dup_p = 0.0;        // P(delivered twice)
  double jitter_p = 0.0;     // P(extra exponential latency — reorders)
  util::Duration jitter_mean = util::Duration::millis(20);
};

/// Link cut from `start`; heals after `heal` (zero = stays cut).
struct Partition {
  sim::NodeId a = kAnyNode;
  sim::NodeId b = kAnyNode;
  util::Time start{};
  util::Duration heal{};
};

/// Node crash at `at`; restarts after `restart_after` (zero = stays down).
/// The node's registered handler (set_node_handler) is told on both edges.
struct NodeCrash {
  sim::NodeId node = kAnyNode;
  util::Time at{};
  util::Duration restart_after{};
};

/// Access-link slowdown: bandwidth scaled by `scale` during the window.
struct Throttle {
  sim::NodeId node = kAnyNode;
  double scale = 0.1;
  util::Time start{};
  util::Duration duration{};  // zero = until the end of the run
};

/// Application-level fault fired at `at` (conclave kill, EPC thrash, ...).
/// `ref` is an opaque id recorded with the trace event.
struct AppFault {
  util::Time at{};
  std::uint32_t ref = 0;
  std::function<void()> fn;
};

struct ChaosPlan {
  /// Folded into the engine Rng derivation; two plans differing only in
  /// seed replay different coin flips under the same traffic.
  std::uint64_t seed = 0;
  std::vector<LinkFault> links;
  std::vector<Partition> partitions;
  std::vector<NodeCrash> crashes;
  std::vector<Throttle> throttles;
  std::vector<AppFault> app_faults;
};

class ChaosEngine final : public sim::FaultInjector {
 public:
  ChaosEngine(sim::Simulator& sim, sim::Network& net);
  ~ChaosEngine() override;  // uninstalls the network hook

  ChaosEngine(const ChaosEngine&) = delete;
  ChaosEngine& operator=(const ChaosEngine&) = delete;

  /// Installs the plan and schedules every timed fault. May be called once
  /// per engine. The packet hook is attached to the network lazily — only
  /// while link rules, open cuts, or downed nodes exist — so an idle engine
  /// leaves the send datapath on its null-injector fast path.
  void install(ChaosPlan plan);

  /// Registers the callback fired when `node` crashes (up == false) and
  /// restarts (up == true) — harnesses wire relay/server state teardown.
  void set_node_handler(sim::NodeId node, std::function<void(bool up)> fn);

  /// Registers the recovery callback fired on the restart edge, after the
  /// node handler ran. A restarted node must rebuild its state from durable
  /// media (BentoServer::recover_stores) here — before this hook existed,
  /// restart silently resurrected whatever pre-crash RAM contents the
  /// harness had left in place, which no real crash would preserve.
  void set_recovery_callback(sim::NodeId node, std::function<void()> fn);

  /// Imperative faults for harnesses that react to run-time state (e.g.
  /// crash whichever relay the client's circuit chose).
  void crash_now(sim::NodeId node, util::Duration restart_after = {});
  void partition_now(sim::NodeId a, sim::NodeId b, util::Duration heal = {});

  bool is_down(sim::NodeId node) const;

  // sim::FaultInjector
  bool node_down(sim::NodeId node) const override;
  sim::FaultDecision on_packet(sim::NodeId from, sim::NodeId to,
                               std::size_t wire_size) override;

  struct Stats {
    std::uint64_t dropped = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t jittered = 0;
    std::uint64_t partitioned = 0;
    std::uint64_t crashes = 0;
    std::uint64_t restarts = 0;
    std::uint64_t throttles = 0;
    std::uint64_t app_faults = 0;
  };
  /// Totals merged across the per-region slots. Serial-context read (the
  /// packet hook may be appending to region slots mid-window).
  Stats stats() const;

 private:
  void schedule_plan();
  void sync_hook();
  void crash(sim::NodeId node, util::Duration restart_after);
  void restart(sim::NodeId node);
  void cut(sim::NodeId a, sim::NodeId b, util::Duration heal);
  void heal(sim::NodeId a, sim::NodeId b);
  void record(FaultKind kind, std::uint32_t a, std::uint64_t extra, bool ok = true);

  /// Control mutations (crash/cut/throttle and their reversals) touch
  /// cross-region state; on a multi-region simulator they run as exclusive
  /// barrier events, on a single-region one as the plain events they always
  /// were (keeping those traces bit-for-bit).
  template <typename F>
  void ctl_at(util::Time t, F&& fn) {
    if (sim_.regions() > 1) {
      sim_.at_exclusive(t, std::forward<F>(fn));
    } else {
      sim_.at(t, std::forward<F>(fn));
    }
  }
  template <typename F>
  void ctl_after(util::Duration d, F&& fn) {
    ctl_at(sim_.now() + d, std::forward<F>(fn));
  }

  // Cache-line-padded per-region slots: the packet hook runs on whichever
  // worker drives the sending node's region, and neighboring regions must
  // not share lines on the hot path.
  struct alignas(64) RngSlot {
    util::Rng rng{0};
  };
  struct alignas(64) StatsSlot {
    Stats s;
  };
  util::Rng& packet_rng();
  Stats& packet_stats();

  sim::Simulator& sim_;
  sim::Network& net_;
  ChaosPlan plan_;
  std::vector<RngSlot> rngs_;    // per-region fault streams; slot 0 = legacy stream
  std::vector<StatsSlot> stats_;  // per-region counters, merged by stats()
  bool installed_ = false;
  std::size_t down_count_ = 0;      // nodes currently crashed
  std::vector<std::uint8_t> down_;  // indexed by NodeId, grown on demand
  std::set<std::pair<sim::NodeId, sim::NodeId>> cuts_;
  std::map<sim::NodeId, std::function<void(bool)>> node_handlers_;
  std::map<sim::NodeId, std::function<void()>> recovery_callbacks_;
};

}  // namespace bento::chaos
