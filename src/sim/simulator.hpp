// Discrete-event simulation engine.
//
// Single-threaded, deterministic: all randomness flows from the seed given
// at construction, and events at equal timestamps fire in scheduling order.
// Everything above (network, Tor overlay, Bento, experiment harnesses) is
// written against this clock rather than wall time.
//
// Event datapath: scheduling a handler used to box a std::function into a
// std::priority_queue, which heap-allocates for every capture larger than
// the libstdc++ SBO (16 bytes — i.e. for essentially every real handler).
// EventFn below is a move-only callable with 64 bytes of inline storage,
// sized so the common captures (this + a Packet, this + a couple of words)
// stay inline; larger captures fall back to a slab pool owned by the
// Simulator, so steady-state scheduling performs zero heap allocations.
// The queue itself is an explicit binary heap over a std::vector keyed by
// (time, sequence number): the strict total order makes pop order — and
// therefore every seeded run — independent of heap internals.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "util/annotations.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace bento::sim {

using util::Duration;
using util::Time;

/// Recycles fixed-size allocations for event callables that overflow the
/// inline buffer. Freed slabs go on a free list and are reused by later
/// events, so even capture-heavy workloads stop allocating once warm.
class SlabPool {
 public:
  static constexpr std::size_t kSlabSize = 192;

  SlabPool() = default;
  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;
  ~SlabPool() {
    while (free_ != nullptr) {
      Slab* next = free_->next;
      ::operator delete(free_);
      free_ = next;
    }
  }

  BENTO_HOT void* allocate(std::size_t n) {
    // bentolint: allow(BL102 oversized captures take the plain heap by design)
    if (n > kSlabSize) return ::operator new(n);  // oversized: plain heap
    if (free_ != nullptr) {
      Slab* s = free_;
      free_ = s->next;
      return s;
    }
    // bentolint: allow(BL102 cold pool refill, amortized to zero at steady state)
    return ::operator new(sizeof(Slab));
  }

  BENTO_HOT void deallocate(void* p, std::size_t n) {
    if (n > kSlabSize) {
      ::operator delete(p);
      return;
    }
    Slab* s = static_cast<Slab*>(p);
    s->next = free_;
    free_ = s;
  }

 private:
  union Slab {
    Slab* next;
    alignas(std::max_align_t) std::byte storage[kSlabSize];
  };
  Slab* free_ = nullptr;
};

/// Move-only `void()` callable with small-buffer optimization. Callables up
/// to kInlineSize bytes live inside the event itself; larger ones borrow a
/// slab from the scheduler's pool (returned on destruction).
class EventFn {
 public:
  static constexpr std::size_t kInlineSize = 64;

  EventFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
  EventFn(SlabPool& pool, F&& f) {
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(inline_)) Fn(std::forward<F>(f));
      vt_ = &inline_vtable<Fn>;
    } else {
      heap_ = pool.allocate(sizeof(Fn));
      try {
        ::new (heap_) Fn(std::forward<F>(f));
      } catch (...) {
        pool.deallocate(heap_, sizeof(Fn));
        heap_ = nullptr;
        throw;
      }
      pool_ = &pool;
      vt_ = &heap_vtable<Fn>;
    }
  }

  EventFn(EventFn&& o) noexcept { move_from(o); }

  EventFn& operator=(EventFn&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  BENTO_HOT void operator()() { vt_->invoke(target()); }

  explicit operator bool() const noexcept { return vt_ != nullptr; }

 private:
  struct VTable {
    void (*invoke)(void*);
    // Move-construct into dst's inline buffer and destroy src (inline only;
    // heap callables move by pointer swap and never relocate).
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*);
    std::size_t heap_size;  // 0 for inline callables
  };

  template <typename Fn>
  static constexpr VTable inline_vtable = {
      [](void* p) { (*static_cast<Fn*>(p))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
        static_cast<Fn*>(src)->~Fn();
      },
      [](void* p) { static_cast<Fn*>(p)->~Fn(); },
      0};

  template <typename Fn>
  static constexpr VTable heap_vtable = {
      [](void* p) { (*static_cast<Fn*>(p))(); },
      nullptr,
      [](void* p) { static_cast<Fn*>(p)->~Fn(); },
      sizeof(Fn)};

  void* target() noexcept { return heap_ != nullptr ? heap_ : static_cast<void*>(inline_); }

  void move_from(EventFn& o) noexcept {
    vt_ = o.vt_;
    heap_ = o.heap_;
    pool_ = o.pool_;
    if (vt_ != nullptr && heap_ == nullptr) vt_->relocate(inline_, o.inline_);
    o.vt_ = nullptr;
    o.heap_ = nullptr;
    o.pool_ = nullptr;
  }

  void reset() noexcept {
    if (vt_ == nullptr) return;
    vt_->destroy(target());
    if (heap_ != nullptr) pool_->deallocate(heap_, vt_->heap_size);
    vt_ = nullptr;
    heap_ = nullptr;
    pool_ = nullptr;
  }

  alignas(std::max_align_t) std::byte inline_[kInlineSize];
  void* heap_ = nullptr;
  SlabPool* pool_ = nullptr;
  const VTable* vt_ = nullptr;
};

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1);
  // The simulator registers itself as the process-wide sim clock (its
  // address is the registration key), so it must stay put.
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator();

  Time now() const { return now_; }
  util::Rng& rng() { return rng_; }

  /// Schedules `fn` at absolute time `t` (clamped to now if in the past).
  /// Accepts any `void()` callable; small captures are stored inline in the
  /// event queue with no heap allocation.
  template <typename F>
  void at(Time t, F&& fn) {
    schedule(t, EventFn(pool_, std::forward<F>(fn)));
  }

  /// Schedules `fn` after the given delay.
  template <typename F>
  void after(Duration d, F&& fn) {
    at(now_ + d, std::forward<F>(fn));
  }

  /// Runs one event; false if the queue is empty.
  bool step();

  /// Runs until the queue is empty or `limit` events have fired.
  void run(std::uint64_t limit = UINT64_MAX);

  /// Runs events with timestamp <= deadline; clock lands on `deadline`.
  void run_until(Time deadline);

  /// Number of events executed so far.
  std::uint64_t events_executed() const { return executed_; }
  /// Events still pending.
  std::size_t pending() const { return heap_.size(); }

 private:
  struct Event {
    Time when;
    Time queued_at;     // scheduling time, for the dispatch-lag histogram
    std::uint64_t seq;  // FIFO tie-break for equal timestamps
    // Span context captured at schedule() and restored around dispatch, so
    // causality crosses timers and modeled delays without any handler
    // threading it through (DESIGN.md §8). Sidecar only: never on the wire.
    obs::SpanContext ctx;
    EventFn fn;

    bool before(const Event& o) const {
      if (when != o.when) return when < o.when;
      return seq < o.seq;
    }
  };

  void schedule(Time t, EventFn fn);
  Event pop_top();
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  Time now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  SlabPool pool_;  // declared before heap_: events may hold pooled slabs
  std::vector<Event> heap_;
  util::Rng rng_;
  // Pre-registered observability handles: per-dispatch cost is a flag
  // branch plus pointer-indirect adds (DESIGN.md §8 overhead contract).
  obs::Counter m_events_;
  obs::Histogram m_dispatch_lag_us_;
  obs::Gauge m_pending_;
};

}  // namespace bento::sim
