// Discrete-event simulation engine.
//
// Single-threaded, deterministic: all randomness flows from the seed given
// at construction, and events at equal timestamps fire in scheduling order.
// Everything above (network, Tor overlay, Bento, experiment harnesses) is
// written against this clock rather than wall time.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/rng.hpp"
#include "util/time.hpp"

namespace bento::sim {

using util::Duration;
using util::Time;

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1);

  Time now() const { return now_; }
  util::Rng& rng() { return rng_; }

  /// Schedules `fn` at absolute time `t` (clamped to now if in the past).
  void at(Time t, std::function<void()> fn);

  /// Schedules `fn` after the given delay.
  void after(Duration d, std::function<void()> fn);

  /// Runs one event; false if the queue is empty.
  bool step();

  /// Runs until the queue is empty or `limit` events have fired.
  void run(std::uint64_t limit = UINT64_MAX);

  /// Runs events with timestamp <= deadline; clock lands on `deadline`.
  void run_until(Time deadline);

  /// Number of events executed so far.
  std::uint64_t events_executed() const { return executed_; }
  /// Events still pending.
  std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    Time when;
    std::uint64_t seq;  // FIFO tie-break for equal timestamps
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return b.when < a.when;
      return b.seq < a.seq;
    }
  };

  Time now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  util::Rng rng_;
};

}  // namespace bento::sim
