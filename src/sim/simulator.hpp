// Discrete-event simulation engine: region-sharded with conservative
// lookahead (DESIGN.md §12).
//
// Deterministic: all randomness flows from the seed given at construction,
// and events fire in (when, origin region, seq) order — a strict total
// order that is a function of the logical event graph alone. Everything
// above (network, Tor overlay, Bento, experiment harnesses) is written
// against this clock rather than wall time.
//
// Sharding model. Nodes are partitioned into *regions* at topology build
// time (Network::set_region); the region is the determinism unit. Each
// region owns its event heap, SlabPool, Rng stream (split deterministically
// from the master seed; region 0 keeps the master stream) and clock.
// *Shards* are worker threads: region r is driven by worker (r mod shards),
// so the region split — and therefore every trace — is invariant under the
// shard count. Execution proceeds in conservative-lookahead windows: with
// T_min the earliest pending timestamp, all events with when < T_min +
// lookahead may run in parallel, because a cross-region message takes at
// least the minimum cross-region propagation delay (the lookahead bound the
// Network installs). Cross-region events travel through per-(src,dst)
// mailboxes drained into the destination heap at the window barrier; the
// (when, origin, seq) key makes arrival timing irrelevant to pop order.
// Multi-region topologies run the windowed executor even at shards=1, so
// the trace is byte-identical at every shard count; single-region
// topologies keep the original serial stepper bit-for-bit.
//
// Event datapath: scheduling a handler used to box a std::function into a
// std::priority_queue, which heap-allocates for every capture larger than
// the libstdc++ SBO (16 bytes — i.e. for essentially every real handler).
// EventFn below is a move-only callable with 64 bytes of inline storage,
// sized so the common captures (this + a Packet, this + a couple of words)
// stay inline; larger captures fall back to a slab pool owned by the
// scheduling region, so steady-state scheduling performs zero heap
// allocations. Cross-region and exclusive events may not borrow a region
// pool (slabs would be freed from another thread) and take the plain heap
// when they overflow the inline buffer instead.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <new>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "util/annotations.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace bento::sim {

using util::Duration;
using util::Time;

/// Recycles fixed-size allocations for event callables that overflow the
/// inline buffer. Freed slabs go on a free list and are reused by later
/// events, so even capture-heavy workloads stop allocating once warm.
/// Single-owner: each region has its own pool, touched only by the worker
/// driving that region.
class SlabPool {
 public:
  static constexpr std::size_t kSlabSize = 192;

  SlabPool() = default;
  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;
  ~SlabPool() {
    while (free_ != nullptr) {
      Slab* next = free_->next;
      ::operator delete(free_);
      free_ = next;
    }
  }

  BENTO_HOT void* allocate(std::size_t n) {
    // bentolint: allow(BL102 oversized captures take the plain heap by design)
    if (n > kSlabSize) return ::operator new(n);  // oversized: plain heap
    if (free_ != nullptr) {
      Slab* s = free_;
      free_ = s->next;
      return s;
    }
    // bentolint: allow(BL102 cold pool refill, amortized to zero at steady state)
    return ::operator new(sizeof(Slab));
  }

  BENTO_HOT void deallocate(void* p, std::size_t n) {
    if (n > kSlabSize) {
      ::operator delete(p);
      return;
    }
    Slab* s = static_cast<Slab*>(p);
    s->next = free_;
    free_ = s;
  }

 private:
  union Slab {
    Slab* next;
    alignas(std::max_align_t) std::byte storage[kSlabSize];
  };
  Slab* free_ = nullptr;
};

/// Move-only `void()` callable with small-buffer optimization. Callables up
/// to kInlineSize bytes live inside the event itself; larger ones borrow a
/// slab from the scheduling region's pool (returned on destruction), or —
/// for cross-region/exclusive events, which are destroyed on a different
/// thread than they were created — the plain thread-safe heap (kBoxed tag).
class EventFn {
 public:
  static constexpr std::size_t kInlineSize = 64;

  /// Tag: no pool; overflow captures go to ::operator new directly.
  struct BoxedTag {};
  static constexpr BoxedTag kBoxed{};

  EventFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
  EventFn(SlabPool& pool, F&& f) {
    using Fn = std::remove_cvref_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(inline_)) Fn(std::forward<F>(f));
      vt_ = &inline_vtable<Fn>;
    } else {
      heap_ = pool.allocate(sizeof(Fn));
      try {
        ::new (heap_) Fn(std::forward<F>(f));
      } catch (...) {
        pool.deallocate(heap_, sizeof(Fn));
        heap_ = nullptr;
        throw;
      }
      pool_ = &pool;
      vt_ = &heap_vtable<Fn>;
    }
  }

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
  EventFn(BoxedTag, F&& f) {
    using Fn = std::remove_cvref_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(inline_)) Fn(std::forward<F>(f));
      vt_ = &inline_vtable<Fn>;
    } else {
      // bentolint: allow(BL102 cross-region/exclusive overflow captures take the plain heap; region pools are single-owner)
      heap_ = ::operator new(sizeof(Fn));
      try {
        ::new (heap_) Fn(std::forward<F>(f));
      } catch (...) {
        ::operator delete(heap_);
        heap_ = nullptr;
        throw;
      }
      vt_ = &heap_vtable<Fn>;
    }
  }

  EventFn(EventFn&& o) noexcept { move_from(o); }

  EventFn& operator=(EventFn&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  BENTO_HOT void operator()() { vt_->invoke(target()); }

  explicit operator bool() const noexcept { return vt_ != nullptr; }

 private:
  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineSize && alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  struct VTable {
    void (*invoke)(void*);
    // Move-construct into dst's inline buffer and destroy src (inline only;
    // heap callables move by pointer swap and never relocate).
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*);
    std::size_t heap_size;  // 0 for inline callables
  };

  template <typename Fn>
  static constexpr VTable inline_vtable = {
      [](void* p) { (*static_cast<Fn*>(p))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
        static_cast<Fn*>(src)->~Fn();
      },
      [](void* p) { static_cast<Fn*>(p)->~Fn(); },
      0};

  template <typename Fn>
  static constexpr VTable heap_vtable = {
      [](void* p) { (*static_cast<Fn*>(p))(); },
      nullptr,
      [](void* p) { static_cast<Fn*>(p)->~Fn(); },
      sizeof(Fn)};

  void* target() noexcept { return heap_ != nullptr ? heap_ : static_cast<void*>(inline_); }

  void move_from(EventFn& o) noexcept {
    vt_ = o.vt_;
    heap_ = o.heap_;
    pool_ = o.pool_;
    if (vt_ != nullptr && heap_ == nullptr) vt_->relocate(inline_, o.inline_);
    o.vt_ = nullptr;
    o.heap_ = nullptr;
    o.pool_ = nullptr;
  }

  void reset() noexcept {
    if (vt_ == nullptr) return;
    vt_->destroy(target());
    if (heap_ != nullptr) {
      if (pool_ != nullptr) {
        pool_->deallocate(heap_, vt_->heap_size);
      } else {
        ::operator delete(heap_);  // kBoxed: no pool to return to
      }
    }
    vt_ = nullptr;
    heap_ = nullptr;
    pool_ = nullptr;
  }

  alignas(std::max_align_t) std::byte inline_[kInlineSize];
  void* heap_ = nullptr;
  SlabPool* pool_ = nullptr;
  const VTable* vt_ = nullptr;
};

namespace detail {
/// Per-thread execution context: which simulator/region is dispatching on
/// this thread, and whether we are inside a parallel window (cross-region
/// sends must then go through mailboxes). Type-erased so the header-only
/// template entry points can read it without naming Simulator internals.
struct ExecCtx {
  const void* sim = nullptr;
  void* region = nullptr;
  bool in_window = false;
};
// bentolint: allow(BL105 thread_local dispatch context, one per worker, DESIGN.md §12)
inline thread_local ExecCtx g_exec{};
}  // namespace detail

class Simulator {
 public:
  /// Origin rank of exclusive (global, barrier-serialized) events; sorts
  /// after every region at equal timestamps.
  static constexpr std::uint32_t kNoRegion = 0xffffffff;
  /// Worker-pool ceiling (== obs::kMaxMetricWorkers: each worker gets a
  /// metric slot).
  static constexpr unsigned kMaxShards = 8;
  /// Region ceiling (== obs::kMaxSpanRegions: span ids carry the region in
  /// their top 8 bits).
  static constexpr std::uint32_t kMaxRegions = 256;

  /// `shards` == 0 reads the BENTO_SIM_SHARDS environment override
  /// (defaulting to 1), so any existing test or bench can be re-run sharded
  /// without code changes; values are clamped to [1, kMaxShards].
  explicit Simulator(std::uint64_t seed = 1, unsigned shards = 0);
  // The simulator registers itself as the process-wide sim clock (its
  // address is the registration key), so it must stay put.
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator();

  /// Current sim time: the dispatching region's clock from inside a
  /// handler, the global clock otherwise.
  Time now() const {
    const detail::ExecCtx& x = detail::g_exec;
    if (x.sim == this && x.region != nullptr) {
      return static_cast<const Region*>(x.region)->now;
    }
    return now_;
  }

  /// The current region's Rng stream — region 0's (the master stream, which
  /// is exactly the pre-sharding generator) outside any dispatch.
  util::Rng& rng() { return current_region().rng; }

  /// Worker threads this simulator may run windows on (1 = no pool).
  unsigned shards() const { return shards_; }
  /// Regions created so far (always >= 1; region 0 exists at construction).
  std::uint32_t regions() const { return static_cast<std::uint32_t>(regions_.size()); }

  /// Creates a new region with its own heap, pool, clock and Rng stream
  /// (split deterministically from the master seed) and returns its id.
  /// Topology-build-time only: must not be called mid-run.
  std::uint32_t add_region();

  /// Region currently dispatching on this thread; kNoRegion outside any
  /// handler (setup code, exclusive events).
  std::uint32_t current_region_id() const {
    const detail::ExecCtx& x = detail::g_exec;
    if (x.sim == this && x.region != nullptr) {
      return static_cast<const Region*>(x.region)->id;
    }
    return kNoRegion;
  }

  /// Conservative lookahead bound: a handler running in one region may only
  /// schedule into *another* region at >= this far in the future (the
  /// Network installs the minimum cross-region propagation delay). Multi-
  /// region topologies with a zero bound fall back to the serial stepper.
  void set_lookahead(Duration d) { lookahead_ = d; }
  Duration lookahead() const { return lookahead_; }

  /// Schedules `fn` at absolute time `t` (clamped to now if in the past) in
  /// the current region (region 0 outside any dispatch). Accepts any
  /// `void()` callable; small captures are stored inline in the event queue
  /// with no heap allocation.
  template <typename F>
  void at(Time t, F&& fn) {
    Region& r = current_region();
    schedule_in(r, t, EventFn(r.pool, std::forward<F>(fn)));
  }

  /// Schedules `fn` after the given delay.
  template <typename F>
  void after(Duration d, F&& fn) {
    at(now() + d, std::forward<F>(fn));
  }

  /// Schedules `fn` at `t` in region `region`. Same-region posts are plain
  /// at(); cross-region posts ride the mailbox when issued from inside a
  /// parallel window (where `t` must respect the lookahead bound) and are
  /// pushed directly into the target heap otherwise.
  template <typename F>
  void post(std::uint32_t region, Time t, F&& fn) {
    Region& origin = current_region();
    if (region == origin.id) {
      schedule_in(origin, t, EventFn(origin.pool, std::forward<F>(fn)));
      return;
    }
    post_boxed(origin, region, t, EventFn(EventFn::kBoxed, std::forward<F>(fn)));
  }

  /// Schedules a *global* event: executed serially at a window barrier,
  /// after every region event with the same timestamp, with all workers
  /// parked — so the handler may mutate cross-region state (chaos control
  /// actions: partitions, crashes, throttles) without synchronization.
  template <typename F>
  void at_exclusive(Time t, F&& fn) {
    schedule_exclusive(t, EventFn(EventFn::kBoxed, std::forward<F>(fn)));
  }

  /// Runs one event serially; false if all queues are empty. Always the
  /// serial stepper (no windows), regardless of shard count.
  bool step();

  /// Runs until the queues are empty or `limit` events have fired. Full
  /// drains (the default) of multi-region or multi-shard simulations use
  /// the windowed executor; finite limits always run the serial stepper.
  void run(std::uint64_t limit = UINT64_MAX);

  /// Runs events with timestamp <= deadline; clock lands on `deadline`.
  void run_until(Time deadline);

  /// Number of events executed so far (all regions + exclusive).
  std::uint64_t events_executed() const;
  /// Events still pending (all regions + mailboxes + exclusive).
  std::size_t pending() const;

 private:
  struct Event {
    Time when;
    Time queued_at;        // scheduling time, for the dispatch-lag histogram
    std::uint64_t seq;     // per-origin-region FIFO tie-break
    std::uint32_t origin;  // scheduling region (kNoRegion for exclusive)
    // Span context captured at schedule() and restored around dispatch, so
    // causality crosses timers and modeled delays without any handler
    // threading it through (DESIGN.md §8). Sidecar only: never on the wire.
    obs::SpanContext ctx;
    EventFn fn;

    bool before(const Event& o) const {
      if (when != o.when) return when < o.when;
      if (origin != o.origin) return origin < o.origin;
      return seq < o.seq;
    }
  };

  /// One region: the determinism unit. heap/pool/rng/clock are owned by
  /// whichever worker drives the region during a window (region id mod
  /// worker count), and by the coordinating thread between windows.
  struct Region {
    std::uint32_t id = 0;
    Time now{};
    std::uint64_t next_seq = 0;
    std::uint64_t executed = 0;
    SlabPool pool;  // declared before heap: events may hold pooled slabs
    std::vector<Event> heap;
    util::Rng rng{1};
  };

  Region& current_region() {
    detail::ExecCtx& x = detail::g_exec;
    if (x.sim == this && x.region != nullptr) return *static_cast<Region*>(x.region);
    return *regions_.front();
  }

  BENTO_HOT void schedule_in(Region& r, Time t, EventFn fn);
  void post_boxed(Region& origin, std::uint32_t target, Time t, EventFn fn);
  void schedule_exclusive(Time t, EventFn fn);

  /// Pops and dispatches the head of `r` (counters, trace, span context).
  BENTO_HOT void exec_region_event(Region& r);
  void exec_exclusive_event();

  void run_windowed(Time deadline, bool bounded);
  void run_serial(std::uint64_t limit, Time deadline, bool bounded);
  void begin_parallel();
  void run_window(Time horizon);
  void run_worker_window(unsigned worker, Time horizon);
  struct DrainStats {
    std::uint64_t drained = 0;
    std::uint64_t max_depth = 0;
  };
  DrainStats drain_mailboxes();
  void ensure_pool();
  void stop_pool();
  void worker_main(unsigned worker);
  void sync_region_clocks(Time t);

  Time now_;
  Duration lookahead_{};
  std::uint64_t seed_ = 1;  // master seed; region streams split from it
  unsigned shards_ = 1;
  std::uint64_t excl_next_seq_ = 0;
  std::uint64_t excl_executed_ = 0;
  // unique_ptr keeps Region addresses stable across add_region() (handlers
  // and the TLS exec context hold raw pointers).
  std::vector<std::unique_ptr<Region>> regions_;
  std::vector<Event> excl_heap_;
  // Mailboxes, index [origin * regions + target]: written by the origin's
  // worker during a window, drained by the coordinator at the barrier.
  std::vector<std::vector<Event>> mail_;
  std::size_t mail_regions_ = 0;  // regions() the mailbox grid is sized for
  // Regions each worker drives. Rebuilt only when the region count changes
  // (owned_built_ tracks it), so steady-state windowed runs reuse capacity
  // and stay allocation-free.
  std::vector<std::vector<Region*>> owned_;
  std::size_t owned_built_ = 0;
  // Per-region executed-count baseline captured at window open; the deltas
  // at the barrier feed the shard profiler (DESIGN.md §13).
  std::vector<std::uint64_t> win_base_;

  // Worker pool: generation-counted rounds under one mutex. The coordinator
  // publishes a horizon and bumps round_; workers run their regions up to
  // the horizon and decrement pending_workers_. Spawned lazily on the first
  // windowed run; worker 0 is the coordinating thread itself.
  // bentolint: allow(BL105 sharded-simulator worker pool, DESIGN.md §12)
  std::vector<std::thread> workers_;
  // bentolint: allow(BL105 window handshake lock for the worker pool, DESIGN.md §12)
  std::mutex pool_mx_;
  // bentolint: allow(BL105 window start/finish signaling, DESIGN.md §12)
  std::condition_variable pool_cv_;
  // bentolint: allow(BL105 window start/finish signaling, DESIGN.md §12)
  std::condition_variable pool_done_cv_;
  std::uint64_t round_ = 0;
  unsigned pending_workers_ = 0;
  Time horizon_{};  // published before each round, read by workers after the handshake
  bool pool_quit_ = false;
  // First exception a worker window caught; written under pool_mx_, rethrown
  // on the coordinating thread at the barrier so handler contract violations
  // surface as ordinary exceptions instead of std::terminate.
  std::exception_ptr win_error_;

  // Pre-registered observability handles: per-dispatch cost is a flag
  // branch plus pointer-indirect adds (DESIGN.md §8 overhead contract).
  obs::Counter m_events_;
  obs::Histogram m_dispatch_lag_us_;
  obs::Gauge m_pending_;
};

}  // namespace bento::sim
