#include "sim/network.hpp"

#include <stdexcept>

#include "util/annotations.hpp"

namespace bento::sim {

namespace {
std::pair<NodeId, NodeId> ordered(NodeId a, NodeId b) {
  return a < b ? std::pair{a, b} : std::pair{b, a};
}
}  // namespace

Network::Network(Simulator& sim)
    : sim_(sim),
      m_messages_(obs::registry().counter("net.messages")),
      m_bytes_(obs::registry().counter("net.bytes")),
      m_queue_depth_(obs::registry().gauge("net.link_queue_depth")) {}

void Network::check_node(NodeId node) const {
  if (node >= nodes_.size()) throw std::out_of_range("Network: unknown node id");
}

NodeId Network::add_node(const NodeSpec& spec, MessageHandler* handler) {
  if (spec.up_bytes_per_sec <= 0 || spec.down_bytes_per_sec <= 0) {
    throw std::invalid_argument("Network::add_node: non-positive bandwidth");
  }
  const NodeId id = static_cast<NodeId>(nodes_.size());
  auto stp = std::make_unique<NodeState>();
  NodeState& st = *stp;
  st.spec = spec;
  st.handler = handler;
  st.up.bytes_per_sec = spec.up_bytes_per_sec;
  st.down.bytes_per_sec = spec.down_bytes_per_sec;
  st.up.high_water = &st.stats.up_queue_high_water;
  st.down.high_water = &st.stats.down_queue_high_water;
  // Uplink sink: propagate, then enqueue on the receiver's downlink. The
  // propagation event is posted into the receiver's region — for same-region
  // (and unpartitioned) topologies this is exactly the plain timer it always
  // was; across regions it rides the simulator's deterministic mailbox.
  st.up.sink = [this](Packet&& pkt) {
    const Duration prop = latency(pkt.from, pkt.to) + pkt.chaos_delay;
    const std::uint32_t dst_region = nodes_[pkt.to]->region;
    sim_.post(dst_region, sim_.now() + prop, [this, pkt = std::move(pkt)]() mutable {
      NodeState& dst = *nodes_[pkt.to];
      const NodeId peer = pkt.from;
      enqueue(dst.down, peer, std::move(pkt));
    });
  };
  // Downlink sink: hand to the receiver. The NetLink span closes here —
  // right at delivery — so its duration is the full network transit (queue
  // wait + serialize + propagate); the handler runs under the sender's
  // context (restored by serve()), continuing the causal chain.
  st.down.sink = [this](Packet&& pkt) {
    NodeState& dst = *nodes_[pkt.to];
    if (chaos_ != nullptr && chaos_->node_down(pkt.to)) {
      // Receiver crashed while the packet was in flight.
      obs::end_span(pkt.link_span, obs::Stage::NetLink, /*ok=*/false);
      return;
    }
    dst.stats.bytes_received += pkt.payload.size();
    dst.stats.messages_received += 1;
    if (monitor_) monitor_(pkt.from, pkt.to, pkt.wire_size);
    obs::end_span(pkt.link_span, obs::Stage::NetLink);
    if (dst.handler != nullptr) {
      dst.handler->on_message(pkt.from, std::move(pkt.payload));
    }
  };
  nodes_.push_back(std::move(stp));
  if (sim_.regions() > 1) recompute_lookahead();  // new region-0 node may add cross pairs
  return id;
}

void Network::attach(NodeId node, MessageHandler* handler) {
  check_node(node);
  nodes_[node]->handler = handler;
}

void Network::set_latency(NodeId a, NodeId b, Duration latency) {
  check_node(a);
  check_node(b);
  latency_[ordered(a, b)] = latency;
  if (nodes_[a]->region != nodes_[b]->region) recompute_lookahead();
}

void Network::set_region(NodeId node, std::uint32_t region) {
  check_node(node);
  if (region >= sim_.regions()) {
    throw std::out_of_range("Network::set_region: region does not exist");
  }
  nodes_[node]->region = region;
  recompute_lookahead();
}

std::uint32_t Network::region(NodeId node) const {
  check_node(node);
  return nodes_[node]->region;
}

void Network::recompute_lookahead() {
  // Nodes per region, to count cross-region pairs without enumerating them.
  region_count_.assign(sim_.regions(), 0);
  for (const auto& st : nodes_) region_count_[st->region] += 1;
  const std::size_t n = nodes_.size();
  std::size_t intra_pairs = 0;
  for (const std::size_t c : region_count_) intra_pairs += c * (c - 1) / 2;
  const std::size_t cross_pairs = n * (n - 1) / 2 - intra_pairs;
  if (cross_pairs == 0) {
    // Single effective region: lookahead is unused; leave a zero bound so a
    // multi-region simulator without cross traffic falls back to serial.
    sim_.set_lookahead(Duration{});
    return;
  }
  bool have = false;
  Duration best{};
  std::size_t cross_explicit = 0;
  for (const auto& [pair, lat] : latency_) {
    if (nodes_[pair.first]->region == nodes_[pair.second]->region) continue;
    ++cross_explicit;
    if (!have || lat < best) {
      best = lat;
      have = true;
    }
  }
  if (cross_explicit < cross_pairs && (!have || default_latency_ < best)) {
    best = default_latency_;  // some cross pair still rides the default
  }
  sim_.set_lookahead(best);
}

Duration Network::latency(NodeId a, NodeId b) const {
  auto it = latency_.find(ordered(a, b));
  return it == latency_.end() ? default_latency_ : it->second;
}

BENTO_HOT void Network::send(NodeId from, NodeId to, util::Bytes payload) {
  check_node(from);
  check_node(to);
  NodeState& src = *nodes_[from];
  src.stats.bytes_sent += payload.size();
  src.stats.messages_sent += 1;
  m_messages_.inc();
  m_bytes_.inc(payload.size());
  Packet pkt;
  pkt.from = from;
  pkt.to = to;
  pkt.payload = std::move(payload);
  pkt.wire_size = pkt.payload.size() + kMessageOverhead;
  pkt.ctx = obs::current_span();
  bool duplicate = false;
  if (chaos_ != nullptr) {
    // Packets to or from a crashed node vanish at the sender's NIC.
    if (chaos_->node_down(from) || chaos_->node_down(to)) return;
    const FaultDecision verdict = chaos_->on_packet(from, to, pkt.wire_size);
    if (verdict.drop) return;
    pkt.chaos_delay = verdict.extra_delay;
    duplicate = verdict.duplicate;
  }
  // The duplicate is cloned before the link span opens so the two copies
  // never share (and double-close) one span id; the clone rides untraced.
  Packet dup_pkt;
  if (duplicate) dup_pkt = pkt;
  if (pkt.ctx.active()) {
    pkt.link_span = obs::open_span(obs::Stage::NetLink, to);
    if (pkt.link_span != 0) {
      obs::span_note(pkt.link_span, obs::kNoteWireBytes,
                     static_cast<std::uint32_t>(pkt.wire_size));
      // Budget notes for the offline critical-path analyzer: the span's
      // measured duration minus these is pure queue wait. Each serialization
      // leg is truncated to µs separately, exactly like the legs serve()
      // schedules, so budget <= measured always holds. Downlink bandwidth is
      // sampled at send time; a throttle landing mid-flight shifts the
      // difference into the queue segment, never breaking the sum.
      const NodeState& dst = *nodes_[to];
      const auto wire = static_cast<double>(pkt.wire_size);
      const Duration spec_ser =
          Duration::seconds(wire / src.spec.up_bytes_per_sec) +
          Duration::seconds(wire / dst.spec.down_bytes_per_sec);
      const Duration idle = spec_ser + latency(from, to);
      obs::span_note(pkt.link_span, obs::kNoteLinkIdle,
                     static_cast<std::uint32_t>(idle.count_micros()));
      const Duration cur_ser = Duration::seconds(wire / src.up.bytes_per_sec) +
                               Duration::seconds(wire / dst.down.bytes_per_sec);
      const Duration dwell = cur_ser - spec_ser + pkt.chaos_delay;
      if (dwell.count_micros() > 0) {
        obs::span_note(pkt.link_span, obs::kNoteChaosDwell,
                       static_cast<std::uint32_t>(dwell.count_micros()));
      }
    }
  }
  enqueue(src.up, to, std::move(pkt));
  if (duplicate) enqueue(src.up, to, std::move(dup_pkt));
}

void Network::set_bandwidth_scale(NodeId node, double scale) {
  check_node(node);
  if (scale <= 0) throw std::invalid_argument("set_bandwidth_scale: non-positive");
  NodeState& st = *nodes_[node];
  st.up.bytes_per_sec = st.spec.up_bytes_per_sec * scale;
  st.down.bytes_per_sec = st.spec.down_bytes_per_sec * scale;
}

void Network::notify_peer_down(NodeId down) {
  check_node(down);
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    const NodeId id = static_cast<NodeId>(n);
    if (id == down || nodes_[n]->handler == nullptr) continue;
    // Delivered in the listener's own region: peer-down handlers touch that
    // node's connection state.
    sim_.post(nodes_[n]->region, sim_.now() + latency(id, down), [this, id, down] {
      MessageHandler* handler = nodes_[id]->handler;
      if (handler != nullptr) handler->on_peer_down(down);
    });
  }
}

Duration Network::idle_delay(NodeId from, NodeId to, std::size_t bytes) const {
  check_node(from);
  check_node(to);
  const double wire = static_cast<double>(bytes + kMessageOverhead);
  const double ser_up = wire / nodes_[from]->spec.up_bytes_per_sec;
  const double ser_down = wire / nodes_[to]->spec.down_bytes_per_sec;
  return Duration::seconds(ser_up + ser_down) + latency(from, to);
}

const NodeSpec& Network::spec(NodeId node) const {
  check_node(node);
  return nodes_[node]->spec;
}

const NodeStats& Network::stats(NodeId node) const {
  check_node(node);
  return nodes_[node]->stats;
}

BENTO_HOT void Network::enqueue(LinkQueue& lq, NodeId peer_key, Packet pkt) {
  auto [it, inserted] = lq.queues.try_emplace(peer_key);
  // bentolint: allow(BL102 deque chunks are recycled; zero net allocs at steady state)
  it->second.push_back(std::move(pkt));
  // bentolint: allow(BL102 grows only on first contact with a new peer)
  if (inserted) lq.rr_order.push_back(peer_key);
  lq.queued += 1;
  if (lq.high_water != nullptr && lq.queued > *lq.high_water) {
    *lq.high_water = lq.queued;
  }
  m_queue_depth_.set(static_cast<std::int64_t>(lq.queued));
  if (!lq.busy) serve(lq);
}

BENTO_HOT void Network::serve(LinkQueue& lq) {
  // Round-robin across peers with pending packets.
  for (std::size_t scanned = 0; scanned < lq.rr_order.size(); ++scanned) {
    if (lq.rr_next >= lq.rr_order.size()) lq.rr_next = 0;
    const NodeId peer = lq.rr_order[lq.rr_next];
    lq.rr_next++;
    auto qit = lq.queues.find(peer);
    if (qit == lq.queues.end() || qit->second.empty()) continue;
    Packet pkt = std::move(qit->second.front());
    qit->second.pop_front();
    lq.queued -= 1;
    lq.busy = true;
    const Duration ser =
        Duration::seconds(static_cast<double>(pkt.wire_size) / lq.bytes_per_sec);
    // The completion event fires under whatever context was current when
    // the link went busy — which, on a contended link, belongs to an
    // unrelated flow. Restore this packet's own context around the sink so
    // downstream work (including the propagation event the uplink sink
    // schedules) stays on the right causal chain.
    sim_.after(ser, [this, &lq, pkt = std::move(pkt)]() mutable {
      lq.busy = false;
      const obs::SpanContext prev = obs::current_span();
      obs::set_current_span(pkt.ctx);
      lq.sink(std::move(pkt));
      obs::set_current_span(prev);
      serve(lq);
    });
    return;
  }
  // Nothing pending anywhere.
}

}  // namespace bento::sim
