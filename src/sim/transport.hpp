// Analytic TCP transfer-time model for the "plain Internet" legs
// (exit relay <-> web server).
//
// Tor traffic itself is simulated cell-by-cell through Network; only the
// final clearnet hop uses this closed-form model, which captures the two
// effects Table 2 depends on: (1) small transfers are RTT-bound because of
// the handshake and slow-start rounds, (2) large transfers are
// bandwidth-bound. This is the classic Cardwell/Savage/Anderson
// approximation of TCP latency.
#pragma once

#include "util/time.hpp"

namespace bento::sim {

struct TcpModelParams {
  std::size_t init_cwnd_bytes = 14600;  // 10 segments of 1460 (RFC 6928)
  std::size_t mss = 1460;
  bool model_slow_start = true;  // ablation switch (DESIGN.md §5)
  double handshake_rtts = 1.0;   // SYN/SYN-ACK before first data byte
};

/// Time from issuing a GET to receiving the last response byte, over a
/// connection with the given RTT and bottleneck bandwidth.
util::Duration tcp_fetch_delay(std::size_t response_bytes, util::Duration rtt,
                               double bytes_per_sec,
                               const TcpModelParams& params = {});

/// Number of slow-start rounds needed before cwnd covers `bytes`.
int slow_start_rounds(std::size_t bytes, const TcpModelParams& params = {});

}  // namespace bento::sim
