// Simulated network: nodes with access links, pairwise propagation latency,
// and per-flow fair queuing.
//
// Model: a message from A to B is (1) serialized onto A's uplink, (2)
// propagated with the A→B latency, (3) serialized onto B's downlink, then
// delivered to B's handler. Each access link is a deficit-round-robin-lite
// scheduler over per-peer queues, so concurrent flows through one access
// link share its bandwidth fairly — this is what produces the Figure-5
// bandwidth-sharing behaviour without a full TCP implementation.
//
// Sharding (DESIGN.md §12): each node belongs to a simulator region
// (set_region); its link queues, stats and handler run on that region's
// worker. Propagation between nodes in different regions rides the
// simulator's cross-region mailbox, and the network installs the minimum
// cross-region propagation delay as the conservative lookahead bound, so
// parallel windows never outrun a message in flight.
#pragma once

#include <cstdint>
#include <memory>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "util/bytes.hpp"

namespace bento::sim {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = 0xffffffff;

/// Per-message fixed framing overhead (TLS record + TCP/IP headers, amortized).
inline constexpr std::size_t kMessageOverhead = 66;

/// Receiver interface. Nodes register a handler; the network owns delivery.
class MessageHandler {
 public:
  virtual ~MessageHandler() = default;
  virtual void on_message(NodeId from, util::Bytes data) = 0;
  /// A peer this node may hold connection state for went down (its TCP
  /// sessions reset). Delivered with the propagation latency to the dead
  /// node, like a real RST would be. Default: ignore.
  virtual void on_peer_down(NodeId peer) { (void)peer; }
};

struct NodeSpec {
  std::string name;
  double up_bytes_per_sec = 12.5e6;    // 100 Mbit/s default
  double down_bytes_per_sec = 12.5e6;
};

/// Passive wire monitor: called at each message delivery with the flow
/// endpoints and on-the-wire size. The website-fingerprinting experiments
/// attach one to play the paper's adversary "able to observe traffic
/// entering and leaving" a victim's access link.
using WireMonitor =
    std::function<void(NodeId from, NodeId to, std::size_t wire_size)>;

/// What an installed FaultInjector wants done to one packet. Zero-initialized
/// == deliver untouched.
struct FaultDecision {
  bool drop = false;
  bool duplicate = false;        // deliver once, plus one jittered copy
  Duration extra_delay{};        // added to propagation (loss-free reorder)
};

/// Chaos hook interface (implemented by chaos::ChaosEngine). The datapath
/// pays one null-pointer test per send and per delivery when absent — the
/// no-plan fast path stays allocation-free and branch-predictable.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;
  /// True while `node` is crashed: its packets are dropped both ways.
  virtual bool node_down(NodeId node) const = 0;
  /// Consulted once per send() for packets between live nodes.
  virtual FaultDecision on_packet(NodeId from, NodeId to, std::size_t wire_size) = 0;
};

/// Byte counters kept per node; experiments read these to plot rates.
struct NodeStats {
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  /// High-water marks of this node's access-link queues (packets waiting
  /// for serialization), one per direction — the congestion signal the
  /// Figure-5 style experiments read.
  std::size_t up_queue_high_water = 0;
  std::size_t down_queue_high_water = 0;
};

class Network {
 public:
  explicit Network(Simulator& sim);

  /// Adds a node; handler may be null and attached later.
  NodeId add_node(const NodeSpec& spec, MessageHandler* handler = nullptr);

  /// (Re)binds the receive handler for a node.
  void attach(NodeId node, MessageHandler* handler);

  /// Symmetric propagation latency between two nodes.
  void set_latency(NodeId a, NodeId b, Duration latency);
  Duration latency(NodeId a, NodeId b) const;
  /// Latency not explicitly set defaults to this value.
  void set_default_latency(Duration d) {
    default_latency_ = d;
    recompute_lookahead();
  }

  /// Assigns a node to a simulator region (DESIGN.md §12). The region must
  /// already exist (Simulator::add_region); nodes default to region 0.
  /// Topology-build-time only. For cheap builds, assign regions before
  /// installing pairwise latencies — reassignment rescans the latency map.
  void set_region(NodeId node, std::uint32_t region);
  std::uint32_t region(NodeId node) const;

  /// Queues a message; delivery is asynchronous via the event loop.
  void send(NodeId from, NodeId to, util::Bytes payload);

  /// One-way delay for a `bytes`-sized message when the path is idle.
  Duration idle_delay(NodeId from, NodeId to, std::size_t bytes) const;

  const NodeSpec& spec(NodeId node) const;
  const NodeStats& stats(NodeId node) const;
  std::size_t node_count() const { return nodes_.size(); }

  /// Total payload bytes a node received in [since, now] — used by
  /// experiment harnesses to compute download-speed time series.
  std::uint64_t bytes_received(NodeId node) const { return stats(node).bytes_received; }

  /// Installs/clears the passive wire monitor.
  void set_monitor(WireMonitor monitor) { monitor_ = std::move(monitor); }

  /// Installs/clears the chaos fault injector (nullptr = none).
  void set_fault_injector(FaultInjector* injector) { chaos_ = injector; }
  FaultInjector* fault_injector() const { return chaos_; }

  /// The simulator this network schedules on (timers for watchdogs live
  /// next to the entities that own network endpoints).
  Simulator& simulator() { return sim_; }

  /// Scales a node's access-link rate relative to its spec (chaos
  /// slow-node throttling; 1.0 restores). Queued packets already being
  /// serialized keep their old completion time.
  void set_bandwidth_scale(NodeId node, double scale);

  /// Tells every other node with a handler that `down` went down. Each
  /// notification arrives after the pairwise propagation latency, like the
  /// connection resets a real crash would fan out.
  void notify_peer_down(NodeId down);

 private:
  struct Packet {
    NodeId from = kInvalidNode;
    NodeId to = kInvalidNode;
    util::Bytes payload;
    std::size_t wire_size = 0;
    // Sidecar span context captured at send(). A queued packet outlives the
    // event context it was sent under (the link may be busy serializing an
    // unrelated flow), so the context rides with the packet and is restored
    // when its serialization slot fires; never part of the wire bytes.
    obs::SpanContext ctx;
    // Open NetLink span covering queue wait + both serializations +
    // propagation; ended just before handler delivery. 0 when untraced.
    std::uint32_t link_span = 0;
    // Extra propagation delay injected by the fault hook (latency jitter).
    Duration chaos_delay{};
  };

  // Fair scheduler over per-peer FIFO queues for one direction of one
  // node's access link. `sink` receives each packet once serialized.
  struct LinkQueue {
    double bytes_per_sec = 1.0;
    bool busy = false;
    std::map<NodeId, std::deque<Packet>> queues;  // keyed by remote peer
    std::vector<NodeId> rr_order;                 // round-robin cursor state
    std::size_t rr_next = 0;
    std::size_t queued = 0;             // packets waiting across all peers
    std::size_t* high_water = nullptr;  // -> the owning NodeStats field
    std::function<void(Packet&&)> sink;
  };

  struct NodeState {
    NodeSpec spec;
    MessageHandler* handler = nullptr;
    NodeStats stats;
    // Simulator region owning this node's link queues, stats and handler.
    // Written at topology build time only; read-only during runs.
    std::uint32_t region = 0;
    LinkQueue up;
    LinkQueue down;
  };

  void enqueue(LinkQueue& lq, NodeId peer_key, Packet pkt);
  void serve(LinkQueue& lq);
  void check_node(NodeId node) const;
  /// Installs the conservative lookahead bound on the simulator: the minimum
  /// propagation delay over cross-region node pairs (explicit entries, plus
  /// the default latency while any cross-region pair lacks one).
  void recompute_lookahead();

  Simulator& sim_;
  // unique_ptr keeps NodeState addresses stable while nodes are added
  // mid-simulation (e.g. LoadBalancer spinning up replicas).
  std::vector<std::unique_ptr<NodeState>> nodes_;
  std::map<std::pair<NodeId, NodeId>, Duration> latency_;
  Duration default_latency_ = Duration::millis(40);
  std::vector<std::size_t> region_count_;  // nodes per region, for lookahead
  WireMonitor monitor_;
  FaultInjector* chaos_ = nullptr;
  obs::Counter m_messages_;
  obs::Counter m_bytes_;
  obs::Gauge m_queue_depth_;  // worst single-link depth, with high-water
};

}  // namespace bento::sim
