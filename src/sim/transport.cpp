#include "sim/transport.hpp"

#include <algorithm>
#include <cmath>

namespace bento::sim {

int slow_start_rounds(std::size_t bytes, const TcpModelParams& params) {
  if (bytes <= params.init_cwnd_bytes) return 0;
  // cwnd doubles each RTT: after r rounds the sender has shipped
  // init_cwnd * (2^(r+1) - 1) bytes.
  int rounds = 0;
  std::size_t shipped = params.init_cwnd_bytes;
  std::size_t cwnd = params.init_cwnd_bytes;
  while (shipped < bytes && rounds < 40) {
    cwnd *= 2;
    shipped += cwnd;
    ++rounds;
  }
  return rounds;
}

util::Duration tcp_fetch_delay(std::size_t response_bytes, util::Duration rtt,
                               double bytes_per_sec, const TcpModelParams& params) {
  // Request flight + handshake.
  double secs = (params.handshake_rtts + 1.0) * rtt.to_seconds();
  if (params.model_slow_start) {
    secs += slow_start_rounds(response_bytes, params) * rtt.to_seconds();
  }
  secs += static_cast<double>(response_bytes) / bytes_per_sec;
  return util::Duration::seconds(secs);
}

}  // namespace bento::sim
