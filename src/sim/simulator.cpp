#include "sim/simulator.hpp"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <limits>
#include <stdexcept>

#include "obs/profile.hpp"
#include "util/annotations.hpp"
#include "util/log.hpp"
#include "util/simclock.hpp"

namespace bento::sim {

namespace {

std::int64_t sim_clock_thunk(const void* ctx) {
  return static_cast<const Simulator*>(ctx)->now().micros();
}

// std::push_heap/pop_heap are max-heaps; invert `before` to pop the minimum.
struct EventAfter {
  template <typename E>
  bool operator()(const E& a, const E& b) const {
    return b.before(a);
  }
};

// Deterministic seed split for region Rng streams (splitmix64 finalizer):
// region r's stream is a pure function of (master seed, r), so it is
// invariant under the shard count. Region 0 keeps Rng(seed) itself.
std::uint64_t split_seed(std::uint64_t seed, std::uint32_t region) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (region + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// Restores the dispatch TLS (exec context, span, trace region) even when a
// handler throws: a contract violation surfacing as an exception must not
// leak a dangling region pointer into the next simulation on this thread.
struct DispatchGuard {
  detail::ExecCtx saved;
  explicit DispatchGuard(const detail::ExecCtx& cur) : saved(cur) {}
  ~DispatchGuard() {
    detail::g_exec = saved;
    obs::set_current_span(obs::SpanContext{});
    obs::set_trace_region(0);
  }
};

unsigned shards_from_env() {
  // BL101 exemption rationale: the override selects the worker count, which
  // by construction cannot change any simulation result — determinism is
  // the point of the sharded design (DESIGN.md §12).
  const char* env = std::getenv("BENTO_SIM_SHARDS");
  if (env == nullptr || *env == '\0') return 1;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || v < 1) return 1;
  return static_cast<unsigned>(v);
}

}  // namespace

Simulator::Simulator(std::uint64_t seed, unsigned shards)
    : now_(Time::from_micros(0)),
      seed_(seed),
      m_events_(obs::registry().counter("sim.events")),
      m_dispatch_lag_us_(obs::registry().histogram("sim.dispatch_lag_us")),
      m_pending_(obs::registry().gauge("sim.queue_depth")) {
  if (shards == 0) shards = shards_from_env();
  shards_ = std::clamp(shards, 1u, kMaxShards);
  // Touch the profiler so its shard.* registry handles exist in every
  // binary that simulates — keeps snapshot metric sets consistent across
  // shard counts and run modes.
  obs::shard_profiler();
  auto r0 = std::make_unique<Region>();
  r0->id = 0;
  r0->rng = util::Rng(seed);
  regions_.push_back(std::move(r0));
  util::install_sim_clock(&sim_clock_thunk, this);
}

Simulator::~Simulator() {
  stop_pool();
  util::uninstall_sim_clock(this);
}

std::uint32_t Simulator::add_region() {
  if (regions_.size() >= kMaxRegions) {
    throw std::length_error("Simulator::add_region: region limit reached");
  }
  const auto id = static_cast<std::uint32_t>(regions_.size());
  auto r = std::make_unique<Region>();
  r->id = id;
  r->now = now_;
  r->rng = util::Rng(split_seed(seed_, id));
  regions_.push_back(std::move(r));
  return id;
}

BENTO_HOT void Simulator::schedule_in(Region& r, Time t, EventFn fn) {
  const Time tn = now();
  if (t < tn) t = tn;
  // bentolint: allow(BL102 heap vector growth, amortized; events themselves are pooled)
  r.heap.push_back(Event{t, tn, r.next_seq++, r.id, obs::current_span(), std::move(fn)});
  std::push_heap(r.heap.begin(), r.heap.end(), EventAfter{});
}

void Simulator::post_boxed(Region& origin, std::uint32_t target, Time t, EventFn fn) {
  if (target >= regions_.size()) {
    throw std::out_of_range("Simulator::post: unknown region");
  }
  const Time tn = now();
  if (t < tn) t = tn;
  Event ev{t, tn, origin.next_seq++, origin.id, obs::current_span(), std::move(fn)};
  const detail::ExecCtx& x = detail::g_exec;
  if (x.sim == this && x.in_window) {
    // Conservative-lookahead contract: inside a window, a cross-region event
    // must land at or beyond the horizon (the Network's minimum cross-region
    // propagation delay guarantees this; anything closer would have to run
    // inside a window another worker is already executing).
    if (t < horizon_) {
      throw std::logic_error(
          "Simulator::post: cross-region event inside the lookahead window");
    }
    // bentolint: allow(BL102 mailbox growth is amortized; capacity is kept across windows)
    mail_[origin.id * mail_regions_ + target].push_back(std::move(ev));
    return;
  }
  std::vector<Event>& heap = regions_[target]->heap;
  // bentolint: allow(BL102 heap vector growth, amortized; events themselves are pooled)
  heap.push_back(std::move(ev));
  std::push_heap(heap.begin(), heap.end(), EventAfter{});
}

void Simulator::schedule_exclusive(Time t, EventFn fn) {
  const detail::ExecCtx& x = detail::g_exec;
  if (x.sim == this && x.in_window && regions_.size() > 1) {
    // Single-region windows run on the coordinating thread alone, where the
    // exclusive heap is safe to touch; under parallel regions it is not.
    throw std::logic_error(
        "Simulator::at_exclusive: may not be called from inside a parallel window");
  }
  const Time tn = now();
  if (t < tn) t = tn;
  excl_heap_.push_back(
      Event{t, tn, excl_next_seq_++, kNoRegion, obs::current_span(), std::move(fn)});
  std::push_heap(excl_heap_.begin(), excl_heap_.end(), EventAfter{});
}

BENTO_HOT void Simulator::exec_region_event(Region& r) {
  std::pop_heap(r.heap.begin(), r.heap.end(), EventAfter{});
  Event ev = std::move(r.heap.back());
  r.heap.pop_back();
  r.now = ev.when;
  detail::ExecCtx& x = detail::g_exec;
  DispatchGuard guard(x);
  x.sim = this;
  x.region = &r;
  obs::set_trace_region(r.id);
  obs::set_trace_order(ev.when.micros(), ev.origin, ev.seq);
  ++r.executed;
  m_events_.inc();
  m_dispatch_lag_us_.record((ev.when - ev.queued_at).count_micros());
  m_pending_.set(static_cast<std::int64_t>(r.heap.size()));
  obs::trace(obs::Ev::SimDispatch, 0, r.heap.size());
  // The predicate gate keeps the formatting cost out of the dispatch loop:
  // a Trace-level sink sees every event, everyone else pays one branch.
  if (util::log_enabled(util::LogLevel::Trace)) {
    util::log(util::LogLevel::Trace, "sim", "dispatch #", r.executed, " at t=",
              r.now.micros(), "us, ", r.heap.size(), " pending");
  }
  // Dispatch under the span context captured at schedule() so downstream
  // instrumentation (and any events this handler schedules) inherit the
  // originating request's causal chain; cleared after, never leaked across
  // events.
  obs::set_current_span(ev.ctx);
  ev.fn();
}

void Simulator::exec_exclusive_event() {
  std::pop_heap(excl_heap_.begin(), excl_heap_.end(), EventAfter{});
  Event ev = std::move(excl_heap_.back());
  excl_heap_.pop_back();
  if (now_ < ev.when) now_ = ev.when;
  ++excl_executed_;
  m_events_.inc();
  m_dispatch_lag_us_.record((ev.when - ev.queued_at).count_micros());
  m_pending_.set(static_cast<std::int64_t>(excl_heap_.size()));
  obs::set_trace_region(0);
  obs::set_trace_order(ev.when.micros(), kNoRegion, ev.seq);
  obs::trace(obs::Ev::SimDispatch, 0, excl_heap_.size());
  if (util::log_enabled(util::LogLevel::Trace)) {
    util::log(util::LogLevel::Trace, "sim", "exclusive #", excl_executed_, " at t=",
              now_.micros(), "us, ", excl_heap_.size(), " pending");
  }
  DispatchGuard guard(detail::g_exec);
  obs::set_current_span(ev.ctx);
  ev.fn();
}

BENTO_HOT bool Simulator::step() {
  Region* best = nullptr;
  for (auto& rp : regions_) {
    if (rp->heap.empty()) continue;
    if (best == nullptr || rp->heap.front().before(best->heap.front())) best = rp.get();
  }
  if (!excl_heap_.empty() &&
      (best == nullptr || excl_heap_.front().before(best->heap.front()))) {
    exec_exclusive_event();
    return true;
  }
  if (best == nullptr) return false;
  exec_region_event(*best);
  if (now_ < best->now) now_ = best->now;
  return true;
}

void Simulator::run(std::uint64_t limit) {
  const bool windowed = limit == UINT64_MAX &&
                        (regions_.size() > 1 || shards_ > 1) &&
                        (regions_.size() == 1 || lookahead_ > Duration{});
  if (windowed) {
    run_windowed(Time{}, /*bounded=*/false);
    return;
  }
  run_serial(limit, Time{}, /*bounded=*/false);
}

void Simulator::run_until(Time deadline) {
  const bool windowed = (regions_.size() > 1 || shards_ > 1) &&
                        (regions_.size() == 1 || lookahead_ > Duration{});
  if (windowed) {
    run_windowed(deadline, /*bounded=*/true);
    return;
  }
  run_serial(UINT64_MAX, deadline, /*bounded=*/true);
  if (now_ < deadline) now_ = deadline;
  sync_region_clocks(now_);
}

void Simulator::run_serial(std::uint64_t limit, Time deadline, bool bounded) {
  for (std::uint64_t i = 0; i < limit; ++i) {
    if (bounded) {
      const Event* mn = nullptr;
      for (const auto& rp : regions_) {
        if (!rp->heap.empty() && (mn == nullptr || rp->heap.front().before(*mn))) {
          mn = &rp->heap.front();
        }
      }
      if (!excl_heap_.empty() && (mn == nullptr || excl_heap_.front().before(*mn))) {
        mn = &excl_heap_.front();
      }
      if (mn == nullptr || deadline < mn->when) break;
    }
    if (!step()) break;
  }
}

void Simulator::run_windowed(Time deadline, bool bounded) {
  begin_parallel();
  const bool multi = regions_.size() > 1;
  // Profiling splits in two (DESIGN.md §13): deterministic sim-domain
  // tallies are recorded only for multi-region topologies — which run the
  // windowed executor at *every* shard count, so the profile is invariant
  // under the worker count — while wall-clock buckets (observational only,
  // never in deterministic artifacts) are collected whenever live. Hooks
  // fire per window, never per event, keeping the always-on cost flat.
  obs::ShardProfiler& prof = obs::shard_profiler();
  const bool prof_live = prof.enabled();
  if (prof_live && multi) prof.record_lookahead(lookahead_.count_micros());
  const std::uint64_t run_t0 = prof_live ? obs::prof_now_ns() : 0;
  const Time inf = Time::from_micros(std::numeric_limits<std::int64_t>::max());
  const Duration tick = Duration::micros(1);
  for (;;) {
    {
      const std::uint64_t t0 = prof_live ? obs::prof_now_ns() : 0;
      const DrainStats ds = drain_mailboxes();
      if (prof_live) {
        prof.add_drain_wall(obs::prof_now_ns() - t0);
        if (multi && ds.drained > 0) prof.on_mailbox_drain(ds.drained, ds.max_depth);
      }
    }
    const Event* rmin = nullptr;
    for (const auto& rp : regions_) {
      if (!rp->heap.empty() && (rmin == nullptr || rp->heap.front().before(*rmin))) {
        rmin = &rp->heap.front();
      }
    }
    const bool have_excl = !excl_heap_.empty();
    if (rmin == nullptr && !have_excl) break;
    Time tmin = rmin != nullptr ? rmin->when : excl_heap_.front().when;
    if (have_excl && excl_heap_.front().when < tmin) tmin = excl_heap_.front().when;
    if (bounded && deadline < tmin) break;
    // Advance the barrier-context clock to the window floor so anything
    // recorded between windows (the shard.window/shard.barrier events
    // below) stamps T_min instead of a stale start-of-run time. Handlers
    // never see this clock — they read their region's.
    if (now_ < tmin) now_ = tmin;
    if (rmin == nullptr || (have_excl && excl_heap_.front().before(*rmin))) {
      const std::uint64_t t0 = prof_live ? obs::prof_now_ns() : 0;
      exec_exclusive_event();
      if (prof_live) {
        prof.add_exclusive_wall(obs::prof_now_ns() - t0);
        if (multi) prof.on_exclusive();
      }
      continue;
    }
    // Window horizon: T_min + lookahead (unbounded when there is only one
    // region), capped so exclusive events and the deadline fall between
    // windows. Strict-< execution makes the +1µs caps inclusive bounds.
    Time h = multi ? rmin->when + lookahead_ : inf;
    if (have_excl) {
      const Time cap = excl_heap_.front().when + tick;
      if (cap < h) h = cap;
    }
    if (bounded) {
      const Time cap = deadline + tick;
      if (cap < h) h = cap;
    }
    const bool profile_window = prof_live && multi;
    if (profile_window) {
      for (std::size_t i = 0; i < regions_.size(); ++i) {
        win_base_[i] = regions_[i]->executed;
      }
    }
    const std::uint64_t wt0 = prof_live ? obs::prof_now_ns() : 0;
    run_window(h);
    if (prof_live) prof.add_window_wall(obs::prof_now_ns() - wt0);
    if (profile_window) {
      std::uint32_t active = 0;
      for (std::size_t i = 0; i < regions_.size(); ++i) {
        win_base_[i] = regions_[i]->executed - win_base_[i];
        if (win_base_[i] > 0) ++active;
      }
      const std::int64_t span_us = (h - tmin).count_micros();
      prof.on_window_close(win_base_.data(),
                           static_cast<std::uint32_t>(regions_.size()), span_us);
      if (obs::recorder().enabled()) {
        obs::trace(obs::Ev::ShardBarrier, active,
                   static_cast<std::uint64_t>(span_us));
        for (std::size_t i = 0; i < regions_.size(); ++i) {
          if (win_base_[i] > 0) {
            obs::trace(obs::Ev::ShardWindow, static_cast<std::uint32_t>(i),
                       win_base_[i]);
          }
        }
      }
    }
    // Exclusive events due inside the closed window run now — but a region
    // event an exclusive handler schedules at the same timestamp sorts
    // before the *next* exclusive, exactly as the serial stepper would run
    // them, so re-check the region heads between exclusives.
    while (!excl_heap_.empty() && excl_heap_.front().when < h &&
           !(bounded && deadline < excl_heap_.front().when)) {
      const Event* rm = nullptr;
      for (const auto& rp : regions_) {
        if (!rp->heap.empty() && (rm == nullptr || rp->heap.front().before(*rm))) {
          rm = &rp->heap.front();
        }
      }
      if (rm != nullptr && rm->before(excl_heap_.front())) break;
      const std::uint64_t t0 = prof_live ? obs::prof_now_ns() : 0;
      exec_exclusive_event();
      if (prof_live) {
        prof.add_exclusive_wall(obs::prof_now_ns() - t0);
        if (multi) prof.on_exclusive();
      }
    }
  }
  if (prof_live) prof.add_run_wall(obs::prof_now_ns() - run_t0);
  Time fin = now_;
  for (const auto& rp : regions_) {
    if (fin < rp->now) fin = rp->now;
  }
  if (bounded && fin < deadline) fin = deadline;
  now_ = fin;
  sync_region_clocks(fin);
}

void Simulator::begin_parallel() {
  // Serial context: re-sync span-id generation here so the lazy check in
  // span_alloc_id never writes from a worker thread mid-window.
  obs::sync_span_generation();
  const std::size_t n = regions_.size();
  if (mail_regions_ != n) {
    mail_regions_ = n;
    mail_.clear();
    mail_.resize(n * n);
  }
  // Rebuild the worker→regions map only when the topology changed; on the
  // steady state (scenarios calling run() in a loop) this reuses capacity
  // and performs zero allocations.
  if (owned_.size() != shards_) {
    owned_.clear();
    owned_.resize(shards_);
    owned_built_ = 0;
  }
  if (owned_built_ != n) {
    for (auto& v : owned_) v.clear();
    for (auto& rp : regions_) owned_[rp->id % shards_].push_back(rp.get());
    owned_built_ = n;
  }
  if (win_base_.size() != n) win_base_.resize(n);
  if (shards_ > 1) ensure_pool();
}

void Simulator::run_window(Time horizon) {
  // Multi-region windows buffer trace records per region and merge them at
  // the barrier in dispatch order, so the ring content is independent of
  // the shard count. Single-region simulations write the ring directly.
  const bool buffer = regions_.size() > 1;
  obs::ShardProfiler& prof = obs::shard_profiler();
  const bool prof_live = prof.enabled();
  if (buffer) obs::recorder().begin_window(regions_.size());
  if (workers_.empty()) {
    horizon_ = horizon;
    run_worker_window(0, horizon);
  } else {
    {
      // bentolint: allow(BL105 round publish under the pool mutex, DESIGN.md §12)
      std::lock_guard<std::mutex> lk(pool_mx_);
      horizon_ = horizon;
      ++round_;
      pending_workers_ = static_cast<unsigned>(workers_.size());
    }
    pool_cv_.notify_all();
    run_worker_window(0, horizon);
    // Barrier-stall attribution: how long the coordinator waited for the
    // slowest worker after finishing its own regions.
    const std::uint64_t bt0 = prof_live ? obs::prof_now_ns() : 0;
    {
      // bentolint: allow(BL105 lookahead barrier wait, DESIGN.md §12)
      std::unique_lock<std::mutex> lk(pool_mx_);
      pool_done_cv_.wait(lk, [this] { return pending_workers_ == 0; });
    }
    if (prof_live) prof.add_barrier_wait(obs::prof_now_ns() - bt0);
  }
  if (buffer) {
    const std::uint64_t mt0 = prof_live ? obs::prof_now_ns() : 0;
    obs::recorder().end_window();
    if (prof_live) prof.add_merge_wall(obs::prof_now_ns() - mt0);
  }
  if (win_error_) {
    std::exception_ptr e = win_error_;
    win_error_ = nullptr;
    std::rethrow_exception(e);
  }
}

void Simulator::run_worker_window(unsigned worker, Time horizon) {
  detail::ExecCtx& x = detail::g_exec;
  x.sim = this;
  x.region = nullptr;
  x.in_window = true;
  std::vector<Region*>& owned = owned_[worker];
  // Per-worker occupancy: one clock pair around the whole window loop (the
  // per-event cost of profiling is zero). Worker 0's busy time doubles as
  // the coordinator's dispatch attribution bucket.
  obs::ShardProfiler& prof = obs::shard_profiler();
  const bool prof_live = prof.enabled();
  const std::uint64_t t0 = prof_live ? obs::prof_now_ns() : 0;
  std::uint64_t dispatched = 0;
  // With a single region the (sole) window runs unbounded on this thread;
  // it must yield to exclusive events as they come due mid-window.
  const bool solo = regions_.size() == 1;
  try {
    for (;;) {
      Region* best = nullptr;
      for (Region* r : owned) {
        if (r->heap.empty() || !(r->heap.front().when < horizon)) continue;
        if (best == nullptr || r->heap.front().before(best->heap.front())) best = r;
      }
      if (best == nullptr) break;
      if (solo && !excl_heap_.empty() && excl_heap_.front().before(best->heap.front())) {
        break;
      }
      exec_region_event(*best);
      ++dispatched;
    }
  } catch (...) {
    // An exception on a worker must not escape the pool: park it and rethrow
    // on the coordinating thread once every worker reaches the barrier.
    // bentolint: allow(BL105 worker-exception capture under the pool mutex, DESIGN.md §12)
    std::lock_guard<std::mutex> lk(pool_mx_);
    if (!win_error_) win_error_ = std::current_exception();
  }
  if (prof_live) prof.add_worker_busy(worker, obs::prof_now_ns() - t0, dispatched);
  x = detail::ExecCtx{};
}

Simulator::DrainStats Simulator::drain_mailboxes() {
  DrainStats ds;
  for (std::size_t i = 0; i < mail_.size(); ++i) {
    std::vector<Event>& box = mail_[i];
    if (box.empty()) continue;
    if (box.size() > ds.max_depth) ds.max_depth = box.size();
    ds.drained += box.size();
    std::vector<Event>& heap = regions_[i % mail_regions_]->heap;
    for (Event& ev : box) {
      heap.push_back(std::move(ev));
      std::push_heap(heap.begin(), heap.end(), EventAfter{});
    }
    box.clear();  // keeps capacity for the next window
  }
  return ds;
}

void Simulator::ensure_pool() {
  if (!workers_.empty()) return;
  workers_.reserve(shards_ - 1);
  for (unsigned w = 1; w < shards_; ++w) {
    // bentolint: allow(BL105 lazily spawned window workers, joined in stop_pool, DESIGN.md §12)
    workers_.emplace_back([this, w] { worker_main(w); });
  }
}

void Simulator::stop_pool() {
  if (workers_.empty()) return;
  {
    // bentolint: allow(BL105 pool shutdown handshake, DESIGN.md §12)
    std::lock_guard<std::mutex> lk(pool_mx_);
    pool_quit_ = true;
  }
  pool_cv_.notify_all();
  // bentolint: allow(BL105 joining the window workers, DESIGN.md §12)
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  pool_quit_ = false;
}

void Simulator::worker_main(unsigned worker) {
  obs::set_metric_worker(worker);
  std::uint64_t seen = 0;
  for (;;) {
    Time h{};
    {
      // bentolint: allow(BL105 worker round wait, DESIGN.md §12)
      std::unique_lock<std::mutex> lk(pool_mx_);
      pool_cv_.wait(lk, [&] { return pool_quit_ || round_ != seen; });
      if (pool_quit_) return;
      seen = round_;
      h = horizon_;
    }
    run_worker_window(worker, h);
    {
      // bentolint: allow(BL105 barrier arrival under the pool mutex, DESIGN.md §12)
      std::lock_guard<std::mutex> lk(pool_mx_);
      --pending_workers_;
      if (pending_workers_ == 0) pool_done_cv_.notify_all();
    }
  }
}

void Simulator::sync_region_clocks(Time t) {
  for (auto& rp : regions_) {
    if (rp->now < t) rp->now = t;
  }
}

std::uint64_t Simulator::events_executed() const {
  std::uint64_t total = excl_executed_;
  for (const auto& rp : regions_) total += rp->executed;
  return total;
}

std::size_t Simulator::pending() const {
  std::size_t total = excl_heap_.size();
  for (const auto& rp : regions_) total += rp->heap.size();
  for (const auto& box : mail_) total += box.size();
  return total;
}

}  // namespace bento::sim
