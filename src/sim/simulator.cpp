#include "sim/simulator.hpp"

namespace bento::sim {

Simulator::Simulator(std::uint64_t seed) : now_(Time::from_micros(0)), rng_(seed) {}

void Simulator::at(Time t, std::function<void()> fn) {
  if (t < now_) t = now_;
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

void Simulator::after(Duration d, std::function<void()> fn) {
  at(now_ + d, std::move(fn));
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // The queue holds const refs from top(); copy out then pop before running
  // so handlers can schedule freely.
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.when;
  ++executed_;
  ev.fn();
  return true;
}

void Simulator::run(std::uint64_t limit) {
  for (std::uint64_t i = 0; i < limit && step(); ++i) {
  }
}

void Simulator::run_until(Time deadline) {
  while (!queue_.empty() && !(deadline < queue_.top().when)) {
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace bento::sim
