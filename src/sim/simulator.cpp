#include "sim/simulator.hpp"

#include "util/annotations.hpp"
#include "util/log.hpp"
#include "util/simclock.hpp"

namespace bento::sim {

namespace {
std::int64_t sim_clock_thunk(const void* ctx) {
  return static_cast<const Simulator*>(ctx)->now().micros();
}
}  // namespace

Simulator::Simulator(std::uint64_t seed)
    : now_(Time::from_micros(0)),
      rng_(seed),
      m_events_(obs::registry().counter("sim.events")),
      m_dispatch_lag_us_(obs::registry().histogram("sim.dispatch_lag_us")),
      m_pending_(obs::registry().gauge("sim.queue_depth")) {
  util::install_sim_clock(&sim_clock_thunk, this);
}

Simulator::~Simulator() { util::uninstall_sim_clock(this); }

BENTO_HOT void Simulator::schedule(Time t, EventFn fn) {
  if (t < now_) t = now_;
  // bentolint: allow(BL102 heap vector growth, amortized; events themselves are pooled)
  heap_.push_back(Event{t, now_, next_seq_++, obs::current_span(), std::move(fn)});
  sift_up(heap_.size() - 1);
}

BENTO_HOT void Simulator::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!heap_[i].before(heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

BENTO_HOT void Simulator::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t best = i;
    const std::size_t l = 2 * i + 1;
    const std::size_t r = 2 * i + 2;
    if (l < n && heap_[l].before(heap_[best])) best = l;
    if (r < n && heap_[r].before(heap_[best])) best = r;
    if (best == i) return;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

BENTO_HOT Simulator::Event Simulator::pop_top() {
  Event top = std::move(heap_.front());
  heap_.front() = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  return top;
}

BENTO_HOT bool Simulator::step() {
  if (heap_.empty()) return false;
  // Move the event out before running so handlers can schedule freely.
  Event ev = pop_top();
  now_ = ev.when;
  ++executed_;
  m_events_.inc();
  m_dispatch_lag_us_.record((ev.when - ev.queued_at).count_micros());
  m_pending_.set(static_cast<std::int64_t>(heap_.size()));
  obs::trace(obs::Ev::SimDispatch, 0, heap_.size());
  // The predicate gate keeps the formatting cost out of the dispatch loop:
  // a Trace-level sink sees every event, everyone else pays one branch.
  if (util::log_enabled(util::LogLevel::Trace)) {
    util::log(util::LogLevel::Trace, "sim", "dispatch #", executed_, " at t=",
              now_.micros(), "us, ", heap_.size(), " pending");
  }
  // Dispatch under the span context captured at schedule() so downstream
  // instrumentation (and any events this handler schedules) inherit the
  // originating request's causal chain; cleared after, never leaked across
  // events.
  obs::set_current_span(ev.ctx);
  ev.fn();
  obs::set_current_span(obs::SpanContext{});
  return true;
}

void Simulator::run(std::uint64_t limit) {
  for (std::uint64_t i = 0; i < limit && step(); ++i) {
  }
}

void Simulator::run_until(Time deadline) {
  while (!heap_.empty() && !(deadline < heap_.front().when)) {
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace bento::sim
