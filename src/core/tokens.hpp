// Invocation and shutdown tokens (paper §5.3).
//
// On container spawn the server returns two capabilities: the *invocation*
// token (presented with every message to the function; shareable, so a
// client can hand out use of the function while keeping control) and the
// *shutdown* token (exclusive right to terminate). Comparison is
// constant-time.
#pragma once

#include <string>

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace bento::core {

inline constexpr std::size_t kTokenLen = 16;

class Token {
 public:
  Token() = default;
  static Token generate(util::Rng& rng);
  static Token from_bytes(util::ByteView b);  // throws on wrong length

  const util::Bytes& bytes() const { return bytes_; }
  bool matches(const Token& other) const;
  bool matches(util::ByteView raw) const;
  bool empty() const { return bytes_.empty(); }
  std::string hex() const { return util::to_hex(bytes_); }

 private:
  util::Bytes bytes_;
};

struct TokenPair {
  Token invocation;
  Token shutdown;
  static TokenPair generate(util::Rng& rng);
};

}  // namespace bento::core
