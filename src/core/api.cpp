#include "core/api.hpp"

#include <map>
#include <stdexcept>

namespace bento::core {

ParsedUrl parse_url(const std::string& url) {
  const std::string scheme = "http://";
  if (url.rfind(scheme, 0) != 0) {
    throw std::invalid_argument("parse_url: only http:// URLs supported: " + url);
  }
  std::string rest = url.substr(scheme.size());
  ParsedUrl out;
  const auto slash = rest.find('/');
  std::string host = slash == std::string::npos ? rest : rest.substr(0, slash);
  out.path = slash == std::string::npos ? "/" : rest.substr(slash);
  const auto colon = host.find(':');
  if (colon != std::string::npos) {
    const int port = std::stoi(host.substr(colon + 1));
    if (port <= 0 || port > 65535) throw std::invalid_argument("parse_url: bad port");
    out.endpoint.port = static_cast<tor::Port>(port);
    host = host.substr(0, colon);
  } else {
    out.endpoint.port = 80;
  }
  out.endpoint.addr = tor::parse_addr(host);
  return out;
}

void NativeRegistry::add(const std::string& name, FunctionFactory factory) {
  factories_[name] = std::move(factory);
}

std::unique_ptr<Function> NativeRegistry::create(const std::string& name) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) {
    throw std::invalid_argument("NativeRegistry: unknown function " + name);
  }
  return it->second();
}

bool NativeRegistry::has(const std::string& name) const {
  return factories_.contains(name);
}

}  // namespace bento::core
