#include "core/api.hpp"

#include <map>
#include <stdexcept>

namespace bento::core {

const char* to_string(VerifyMode mode) {
  switch (mode) {
    case VerifyMode::Off: return "off";
    case VerifyMode::Warn: return "warn";
    case VerifyMode::Enforce: return "enforce";
  }
  return "?";
}

VerifyReport verify_upload(const script::Program& program,
                           const FunctionManifest& manifest) {
  VerifyReport report;
  report.analysis = script::analyze(program);

  if (const script::Diagnostic* err = report.analysis.first_error()) {
    report.decision = {false, "static analysis failed: " + err->to_string()};
    return report;
  }

  const std::set<sandbox::Syscall> declared(manifest.required.begin(),
                                            manifest.required.end());
  for (const auto& use : report.analysis.required) {
    if (!declared.contains(use.syscall)) {
      report.decision = {
          false, "line " + std::to_string(use.line) + ": function reaches " +
                     use.capability + " but the manifest does not request " +
                     sandbox::to_string(use.syscall)};
      return report;
    }
  }

  if (report.analysis.min_steps > manifest.resources.cpu_instructions) {
    report.decision = {
        false,
        "static instruction lower bound " +
            std::to_string(report.analysis.min_steps) +
            " exceeds the manifest cpu budget " +
            std::to_string(manifest.resources.cpu_instructions)};
    return report;
  }

  return report;
}

ParsedUrl parse_url(const std::string& url) {
  const std::string scheme = "http://";
  if (url.rfind(scheme, 0) != 0) {
    throw std::invalid_argument("parse_url: only http:// URLs supported: " + url);
  }
  std::string rest = url.substr(scheme.size());
  ParsedUrl out;
  const auto slash = rest.find('/');
  std::string host = slash == std::string::npos ? rest : rest.substr(0, slash);
  out.path = slash == std::string::npos ? "/" : rest.substr(slash);
  const auto colon = host.find(':');
  if (colon != std::string::npos) {
    const int port = std::stoi(host.substr(colon + 1));
    if (port <= 0 || port > 65535) throw std::invalid_argument("parse_url: bad port");
    out.endpoint.port = static_cast<tor::Port>(port);
    host = host.substr(0, colon);
  } else {
    out.endpoint.port = 80;
  }
  out.endpoint.addr = tor::parse_addr(host);
  return out;
}

void NativeRegistry::add(const std::string& name, FunctionFactory factory) {
  factories_[name] = std::move(factory);
}

std::unique_ptr<Function> NativeRegistry::create(const std::string& name) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) {
    throw std::invalid_argument("NativeRegistry: unknown function " + name);
  }
  return it->second();
}

bool NativeRegistry::has(const std::string& name) const {
  return factories_.contains(name);
}

}  // namespace bento::core
