#include "core/policy.hpp"

#include <algorithm>
#include <sstream>

#include "util/serialize.hpp"

namespace bento::core {

namespace {
void write_limits(util::Writer& w, const sandbox::ResourceLimits& l) {
  w.u64(l.memory_bytes);
  w.u64(l.cpu_instructions);
  w.u64(l.disk_bytes);
  w.u64(l.network_bytes);
  w.u32(l.max_open_files);
  w.u32(l.max_connections);
}

sandbox::ResourceLimits read_limits(util::Reader& r) {
  sandbox::ResourceLimits l;
  l.memory_bytes = r.u64();
  l.cpu_instructions = r.u64();
  l.disk_bytes = r.u64();
  l.network_bytes = r.u64();
  l.max_open_files = r.u32();
  l.max_connections = r.u32();
  return l;
}

void write_syscalls(util::Writer& w, const std::set<sandbox::Syscall>& calls) {
  w.u32(static_cast<std::uint32_t>(calls.size()));
  for (auto call : calls) w.u8(static_cast<std::uint8_t>(call));
}
}  // namespace

bool MiddleboxPolicy::offers_image(const std::string& name) const {
  return std::find(images.begin(), images.end(), name) != images.end();
}

util::Bytes MiddleboxPolicy::serialize() const {
  util::Writer w;
  write_syscalls(w, allowed.allowed());
  write_limits(w, max_per_function);
  w.u32(static_cast<std::uint32_t>(images.size()));
  for (const auto& image : images) w.str(image);
  return std::move(w).take();
}

MiddleboxPolicy MiddleboxPolicy::deserialize(util::ByteView data) {
  util::Reader r(data);
  MiddleboxPolicy p;
  std::set<sandbox::Syscall> calls;
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint8_t raw = r.u8();
    if (raw >= sandbox::kSyscallCount) {
      throw util::ParseError("MiddleboxPolicy: unknown syscall id");
    }
    calls.insert(static_cast<sandbox::Syscall>(raw));
  }
  p.allowed = sandbox::SyscallFilter(std::move(calls));
  p.max_per_function = read_limits(r);
  const std::uint32_t images = r.u32();
  p.images.clear();
  for (std::uint32_t i = 0; i < images; ++i) p.images.push_back(r.str());
  r.expect_done();
  return p;
}

std::string MiddleboxPolicy::to_string() const {
  std::ostringstream out;
  out << "images:";
  for (const auto& image : images) out << " " << image;
  out << "\nsyscalls:";
  for (auto call : allowed.allowed()) out << " " << sandbox::to_string(call);
  out << "\nmemory: " << max_per_function.memory_bytes
      << "\ncpu: " << max_per_function.cpu_instructions
      << "\ndisk: " << max_per_function.disk_bytes
      << "\nnetwork: " << max_per_function.network_bytes;
  return out.str();
}

MiddleboxPolicy MiddleboxPolicy::permissive() {
  MiddleboxPolicy p;
  std::set<sandbox::Syscall> calls;
  for (std::size_t i = 0; i < sandbox::kSyscallCount; ++i) {
    const auto call = static_cast<sandbox::Syscall>(i);
    if (call == sandbox::Syscall::Fork || call == sandbox::Syscall::Exec ||
        call == sandbox::Syscall::NetListen) {
      continue;  // never offered: the paper's seccomp example denies these
    }
    calls.insert(call);
  }
  p.allowed = sandbox::SyscallFilter(std::move(calls));
  p.images = {kImagePython, kImagePythonOpSgx};
  // Generous per-function ceilings for an operator happy to host heavy
  // functions (LoadBalancer moves gigabytes through replicas).
  p.max_per_function.memory_bytes = 64ull << 20;
  p.max_per_function.cpu_instructions = 2'000'000'000ULL;
  p.max_per_function.disk_bytes = 128ull << 20;
  p.max_per_function.network_bytes = 4ull << 30;
  return p;
}

MiddleboxPolicy MiddleboxPolicy::no_storage() {
  MiddleboxPolicy p = permissive();
  std::set<sandbox::Syscall> calls = p.allowed.allowed();
  calls.erase(sandbox::Syscall::FsRead);
  calls.erase(sandbox::Syscall::FsWrite);
  calls.erase(sandbox::Syscall::FsDelete);
  p.allowed = sandbox::SyscallFilter(std::move(calls));
  p.max_per_function.disk_bytes = 0;
  return p;
}

util::Bytes FunctionManifest::serialize() const {
  util::Writer w;
  w.str(name);
  w.u32(static_cast<std::uint32_t>(required.size()));
  for (auto call : required) w.u8(static_cast<std::uint8_t>(call));
  write_limits(w, resources);
  w.str(image);
  return std::move(w).take();
}

FunctionManifest FunctionManifest::deserialize(util::ByteView data) {
  util::Reader r(data);
  FunctionManifest m;
  m.name = r.str();
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint8_t raw = r.u8();
    if (raw >= sandbox::kSyscallCount) {
      throw util::ParseError("FunctionManifest: unknown syscall id");
    }
    m.required.push_back(static_cast<sandbox::Syscall>(raw));
  }
  m.resources = read_limits(r);
  m.image = r.str();
  r.expect_done();
  return m;
}

sandbox::SyscallFilter FunctionManifest::filter() const {
  std::set<sandbox::Syscall> calls(required.begin(), required.end());
  return sandbox::SyscallFilter(std::move(calls));
}

PolicyDecision admit(const MiddleboxPolicy& policy, const FunctionManifest& manifest) {
  if (!policy.offers_image(manifest.image)) {
    return {false, "image not offered: " + manifest.image};
  }
  for (auto call : manifest.required) {
    if (!policy.allowed.allows(call)) {
      return {false, std::string("syscall not permitted by node policy: ") +
                         sandbox::to_string(call)};
    }
  }
  const auto& cap = policy.max_per_function;
  const auto& ask = manifest.resources;
  if (ask.memory_bytes > cap.memory_bytes) return {false, "memory request too large"};
  if (ask.cpu_instructions > cap.cpu_instructions) return {false, "cpu request too large"};
  if (ask.disk_bytes > cap.disk_bytes) return {false, "disk request too large"};
  if (ask.network_bytes > cap.network_bytes) return {false, "network request too large"};
  return {true, ""};
}

}  // namespace bento::core
