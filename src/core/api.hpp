// The Bento function API (paper §5.1, §5.3).
//
// A Function — BentoScript or native C++ — interacts with the world only
// through HostApi, the container's mediation layer. Every method checks
// the function's installed syscall filter (manifest ∩ node policy), its
// resource accountant, and — for direct network access — the netfilter
// compiled from the host relay's exit policy.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/policy.hpp"
#include "script/analyzer.hpp"
#include "tor/address.hpp"
#include "util/bytes.hpp"
#include "util/time.hpp"

namespace bento::core {

class StemSession;

// ---- static admission control (load-time verifier) ----

/// How the server treats the BentoScript static verifier at upload time.
///   Off     — dynamic enforcement only (manifest ∩ policy traps at runtime)
///   Warn    — run the verifier, log findings, never reject
///   Enforce — reject uploads with analysis errors, inferred capabilities
///             beyond the manifest, or a static cost above the manifest's
///             resource ceiling
enum class VerifyMode : std::uint8_t { Off, Warn, Enforce };

const char* to_string(VerifyMode mode);

/// Full verifier output for one upload: the admission decision plus the raw
/// analysis (diagnostics, inferred capabilities, static cost).
struct VerifyReport {
  PolicyDecision decision{true, ""};
  script::AnalysisResult analysis;
};

/// Statically verifies a parsed function image against its manifest:
/// (a) lint errors fail admission, (b) every inferred capability must be in
/// manifest.required, (c) the static lower bound on interpreter steps must
/// fit manifest.resources.cpu_instructions. Reasons carry source lines so
/// the uploading client learns *why* (and where) it was refused.
VerifyReport verify_upload(const script::Program& program,
                           const FunctionManifest& manifest);

/// URL of the form "http://<dotted-addr>[:port]/<path>".
struct ParsedUrl {
  tor::Endpoint endpoint;
  std::string path = "/";
};
/// Throws std::invalid_argument on malformed URLs.
ParsedUrl parse_url(const std::string& url);

class HostApi {
 public:
  virtual ~HostApi() = default;

  // -- invoker channel --
  /// Sends an Output message to the client bound to the current invocation.
  virtual void send(util::ByteView payload) = 0;
  /// A stable handle for the *current* invoker's channel; lets a function
  /// serving several clients concurrently (e.g. multipath stripes) reply to
  /// each on its own stream later. 0 = no channel.
  virtual std::uint64_t reply_handle() = 0;
  /// Sends to a specific channel captured earlier; silently drops if that
  /// client's stream has closed.
  virtual void send_to(std::uint64_t handle, util::ByteView payload) = 0;
  /// Operator-visible log line (never contains function data in SGX mode).
  virtual void log(const std::string& line) = 0;

  // -- filesystem (chrooted; FsProtect-backed under python-op-sgx) --
  virtual void fs_write(const std::string& path, util::ByteView data) = 0;
  virtual std::optional<util::Bytes> fs_read(const std::string& path) = 0;
  virtual bool fs_remove(const std::string& path) = 0;
  virtual std::vector<std::string> fs_list() = 0;

  // -- direct clearnet (exit relays only; netfilter enforced) --
  using HttpCallback = std::function<void(bool ok, util::Bytes body)>;
  virtual void http_get(const std::string& url, HttpCallback done) = 0;

  // -- clock & randomness --
  virtual util::Time now() = 0;
  virtual void after(util::Duration delay, std::function<void()> fn) = 0;
  virtual util::Bytes random_bytes(std::size_t n) = 0;

  // -- composition: run functions on other Bento boxes (paper §3) --
  struct DeploySpec {
    std::string box_fingerprint;
    FunctionManifest manifest;
    std::string source;  // BentoScript; empty for native
    std::string native;  // native function name; empty for script
    util::Bytes args;
  };
  /// ok => the remote function's tokens (shutdown kept by the deployer).
  using DeployCallback = std::function<void(bool ok, util::Bytes invocation_token,
                                            util::Bytes shutdown_token)>;
  virtual void deploy(const DeploySpec& spec, DeployCallback done) = 0;
  /// Invokes a function on another box; outputs stream into on_output.
  virtual void invoke_remote(const std::string& box_fingerprint,
                             util::ByteView invocation_token, util::ByteView payload,
                             std::function<void(util::Bytes output)> on_output) = 0;

  // -- Tor control through the Stem firewall (paper §5.3) --
  virtual StemSession& stem() = 0;

  /// This box's fingerprint (self-identification, e.g. for LoadBalancer).
  virtual std::string box_fingerprint() const = 0;
};

/// A loaded function instance.
class Function {
 public:
  virtual ~Function() = default;
  /// Called once after upload with the client-provided install args.
  virtual void on_install(HostApi& api, util::ByteView args) = 0;
  /// Called for every Invoke payload.
  virtual void on_message(HostApi& api, util::ByteView payload) = 0;
  /// Called on graceful shutdown (shutdown token presented).
  virtual void on_shutdown(HostApi& api) { (void)api; }
};

using FunctionFactory = std::function<std::unique_ptr<Function>()>;

/// Registry of native (C++-implemented) functions a server offers.
class NativeRegistry {
 public:
  void add(const std::string& name, FunctionFactory factory);
  std::unique_ptr<Function> create(const std::string& name) const;
  bool has(const std::string& name) const;

 private:
  std::map<std::string, FunctionFactory> factories_;
};

}  // namespace bento::core
