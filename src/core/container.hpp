// A Bento container: one client function plus everything that confines it
// (paper §5.2-§5.4).
//
// The container assembles, per function:
//   * a ResourceAccountant under the server's aggregate cap (cgroups),
//   * a SyscallFilter = manifest ∩ node policy (seccomp),
//   * a chrooted Vfs — FsProtect-backed inside a conclave for the
//     python-op-sgx image, plain memory for the python image,
//   * a NetFilter compiled from the host relay's exit policy (iptables),
//   * a StemSession (the Stem firewall),
// and hosts the function itself: a BentoScript interpreter whose bindings
// route through HostApi, or a registered native C++ function.
//
// Any sandbox violation or script error kills the function (never the
// server) and reports the reason to the client.
#pragma once

#include <memory>
#include <optional>

#include "core/api.hpp"
#include "core/message.hpp"
#include "core/stemfw.hpp"
#include "core/tokens.hpp"
#include "script/interp.hpp"
#include "sandbox/netfilter.hpp"
#include "sandbox/resources.hpp"
#include "sandbox/vfs.hpp"
#include "tee/conclave.hpp"
#include "tor/router.hpp"

namespace bento::core {

class BentoServer;
class BentoConnection;

/// Conclave transition cost charged per invocation in SGX mode (§7.3:
/// "the time to swap in and out of the conclave introduces nominal
/// overheads").
inline constexpr util::Duration kEcallOverhead = util::Duration::micros(60);

/// Startup cost of the enclaved CPython/requests stack for a clearnet fetch
/// from inside a conclave (Graphene-SGX application startup is measured in
/// seconds in [34]/[80]; calibrated against Table 2's small-site rows where
/// standard Tor beats Browser).
inline constexpr util::Duration kSgxFetchStackDelay = util::Duration::seconds(1.8);

class Container final : public HostApi {
 public:
  Container(BentoServer& server, std::uint64_t id, std::string image, util::Rng rng);
  ~Container() override;

  /// Per-function scoped stats: invocation volume and lifetime, read by
  /// BentoWorld::snapshot_stats() for the per-function telemetry section.
  struct FnStats {
    std::uint64_t invokes = 0;
    std::uint64_t bytes_in = 0;   // invoke payload bytes routed in
    std::uint64_t bytes_out = 0;  // Output message bytes sent back
    std::int64_t installed_at_us = -1;  // sim time of successful install
  };
  const FnStats& fn_stats() const { return fn_stats_; }

  std::uint64_t id() const { return id_; }
  const std::string& image() const { return image_; }
  bool sgx() const { return conclave_ != nullptr; }
  bool installed() const { return function_ != nullptr; }
  bool dead() const { return dead_; }
  const std::string& death_reason() const { return death_reason_; }
  const TokenPair& tokens() const { return tokens_; }
  const FunctionManifest& manifest() const { return manifest_; }
  tee::Conclave* conclave() { return conclave_.get(); }
  /// Non-null when the chroot is mounted on the persistent sealed store.
  /// (const member, mutable store: digest/get traffic touches the LRU.)
  store::BlobStore* blob_store() const { return store_.get(); }
  const std::string& store_volume_key() const { return store_volume_key_; }
  std::optional<tee::SecureChannel>& channel() { return channel_; }

  /// Installs the function; throws (sandbox/script/parse errors) on failure.
  /// `program` is the pre-parsed (and statically verified) script image when
  /// the server already parsed it; null makes the container parse `body`
  /// itself.
  void install(const FunctionManifest& manifest, const UploadBody& body,
               tor::EdgeStream* uploader,
               std::shared_ptr<const script::Program> program = nullptr);

  /// Routes one Invoke payload into the function.
  void handle_invoke(tor::EdgeStream* from, util::ByteView payload);

  /// Graceful shutdown (shutdown token was presented).
  void graceful_shutdown();

  /// Server notice: a client stream went away.
  void on_stream_closed(tor::EdgeStream* stream);

  /// Current memory watermark (sandbox estimate + conclave overhead).
  std::size_t memory_bytes() const;

  // ---- HostApi ----
  void send(util::ByteView payload) override;
  std::uint64_t reply_handle() override;
  void send_to(std::uint64_t handle, util::ByteView payload) override;
  void log(const std::string& line) override;
  void fs_write(const std::string& path, util::ByteView data) override;
  std::optional<util::Bytes> fs_read(const std::string& path) override;
  bool fs_remove(const std::string& path) override;
  std::vector<std::string> fs_list() override;
  void http_get(const std::string& url, HttpCallback done) override;
  util::Time now() override;
  void after(util::Duration delay, std::function<void()> fn) override;
  util::Bytes random_bytes(std::size_t n) override;
  void deploy(const DeploySpec& spec, DeployCallback done) override;
  void invoke_remote(const std::string& box_fingerprint,
                     util::ByteView invocation_token, util::ByteView payload,
                     std::function<void(util::Bytes output)> on_output) override;
  StemSession& stem() override;
  std::string box_fingerprint() const override;

 private:
  /// Runs function code, converting sandbox/script failures into death.
  template <typename Fn>
  void run_guarded(Fn&& fn);
  void kill(const std::string& reason);
  void update_memory(std::size_t sandbox_estimate);
  /// Arms one background-compaction simulator event when the store's
  /// garbage ratio warrants it (called from the StoreBackend mutation
  /// hook); guarded by the liveness token. No-op while one is pending.
  void schedule_store_maintenance();

  BentoServer& server_;
  std::uint64_t id_;
  std::string image_;
  util::Rng rng_;

  FunctionManifest manifest_;
  sandbox::SyscallFilter filter_ = sandbox::SyscallFilter::deny_all();
  std::unique_ptr<sandbox::ResourceAccountant> resources_;
  std::unique_ptr<sandbox::Vfs> vfs_;
  /// Persistent-store lifecycle: the container owns the BlobStore (open
  /// log, index, cache); the underlying Volume belongs to the server's
  /// VolumeManager and survives crashes.
  std::unique_ptr<store::BlobStore> store_;
  std::string store_volume_key_;
  bool compaction_pending_ = false;
  sandbox::NetFilter netfilter_ = sandbox::NetFilter::deny_all();
  std::unique_ptr<tee::Conclave> conclave_;
  std::optional<tee::SecureChannel> channel_;
  std::unique_ptr<StemSession> stem_;
  std::unique_ptr<Function> function_;
  FnStats fn_stats_;
  TokenPair tokens_;
  tor::EdgeStream* bound_stream_ = nullptr;
  std::map<std::uint64_t, tor::EdgeStream*> reply_handles_;
  std::uint64_t next_reply_handle_ = 1;
  std::vector<std::shared_ptr<BentoConnection>> deployed_;  // composition links
  // Liveness token: async callbacks (timers, TCP, remote outputs) captured
  // `this`; they check this token before touching the container.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  bool dead_ = false;
  bool in_function_ = false;
  std::string death_reason_;

  friend class BentoServer;
};

/// Adapts a BentoScript program to the Function interface. The script may
/// define `on_install(args)`, `on_message(msg)`, `on_shutdown()`; module
/// bindings (api, fs, net, os, time, zlib, bento) wrap the HostApi.
class ScriptFunction final : public Function {
 public:
  /// Parses the source eagerly (syntax errors fail the upload). The options
  /// carry the container's step/memory hooks.
  ScriptFunction(const std::string& source, script::InterpreterOptions options);
  /// Reuses a program the server already parsed for static verification, so
  /// one upload costs one parse.
  ScriptFunction(std::shared_ptr<const script::Program> program,
                 script::InterpreterOptions options);
  void on_install(HostApi& api, util::ByteView args) override;
  void on_message(HostApi& api, util::ByteView payload) override;
  void on_shutdown(HostApi& api) override;

  std::uint64_t steps() const { return interp_->steps(); }

 private:
  void bind_modules(HostApi& api);
  std::unique_ptr<script::Interpreter> interp_;
  bool bound_ = false;
};

}  // namespace bento::core
