// The Stem firewall (paper §5.3 "Container Interface to Tor Instance").
//
// Functions may use Stem-style control operations — build circuits, open
// streams over them, run hidden services — but only through this firewall,
// which (a) checks the container's syscall filter per operation class,
// (b) tracks which circuits each session owns so a function can only touch
// its own, and (c) caps the number of simultaneously owned circuits.
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "sandbox/syscalls.hpp"
#include "tor/hs.hpp"
#include "tor/proxy.hpp"

namespace bento::core {

/// One container's window onto the host's Tor facilities.
class StemSession {
 public:
  StemSession(tor::OnionProxy& proxy, tor::DirectoryAuthority& directory,
              sandbox::SyscallFilter& filter, int max_circuits = 8);
  ~StemSession();

  using CircuitHandle = std::uint32_t;

  /// Builds a general-purpose circuit (TorCircuit). Handle 0 == failure.
  void build_circuit(const tor::PathConstraints& constraints,
                     std::function<void(CircuitHandle)> done);

  /// Opens a stream on an owned circuit. Returns nullptr for foreign or
  /// unknown handles. (TorCircuit)
  tor::Stream* open_stream(CircuitHandle handle, const tor::Endpoint& to,
                           tor::Stream::Callbacks cbs);

  /// Destroys an owned circuit.
  void destroy_circuit(CircuitHandle handle);

  /// Read access to the consensus (TorDirectory).
  const tor::Consensus& consensus();

  /// Spawns a hidden-service host on the dedicated onion proxy (TorHs).
  /// The paper's python-op-sgx container runs this OP inside the conclave
  /// because it holds the service's keying material.
  tor::HiddenServiceHost& create_hidden_service(int intro_count);
  tor::HiddenServiceHost& create_hidden_service(
      const tor::HiddenServiceHost::Identity& identity, int intro_count);
  /// HS client connect through the firewall (TorCircuit).
  void connect_hs(const std::string& onion_id,
                  std::function<void(tor::CircuitOrigin*)> done);

  std::size_t owned_circuits() const { return circuits_.size(); }

 private:
  tor::OnionProxy& proxy_;
  tor::DirectoryAuthority& directory_;
  sandbox::SyscallFilter& filter_;
  int max_circuits_;
  CircuitHandle next_handle_ = 1;
  std::map<CircuitHandle, tor::CircuitOrigin*> circuits_;
  std::vector<std::unique_ptr<tor::HiddenServiceHost>> hs_hosts_;
  std::unique_ptr<tor::HsClient> hs_client_;
};

}  // namespace bento::core
