// The Bento server (paper §5.2).
//
// Runs on the same machine as its companion Tor relay, as a separate
// process on a separate port: here, a LocalApp bound to the relay's Bento
// port (clients reach it through Tor streams to the relay's own address —
// the paper's "exit node policy to connect to the Bento server via
// localhost" deployment), plus a companion onion-proxy node representing
// the Stem-controlled Tor access functions get through the firewall.
//
// Responsibilities: answer policy queries, spawn containers (optionally
// inside conclaves, with the attested-channel handshake and a stapled IAS
// report), admit manifests against the middlebox node policy, mint
// invocation/shutdown tokens, route invocations by token, and reclaim
// containers on shutdown or death.
#pragma once

#include <map>
#include <memory>
#include <set>

#include "core/container.hpp"
#include "core/policy.hpp"
#include "sandbox/resources.hpp"
#include "store/store.hpp"
#include "store/volume.hpp"
#include "tee/attestation.hpp"
#include "tee/epc.hpp"
#include "tor/proxy.hpp"
#include "tor/router.hpp"

namespace bento::core {

inline constexpr tor::Port kBentoPort = 5577;

struct BentoServerConfig {
  tor::Port port = kBentoPort;
  MiddleboxPolicy policy = MiddleboxPolicy::permissive();
  /// Operator-level cap over all containers together (paper §6.2).
  sandbox::ResourceLimits aggregate_limits = [] {
    sandbox::ResourceLimits l;
    l.memory_bytes = 512ull << 20;
    l.cpu_instructions = 4'000'000'000ULL;
    l.disk_bytes = 1ull << 30;
    l.network_bytes = 8ull << 30;
    return l;
  }();
  bool sgx_available = true;
  int max_containers = 64;
  int stem_circuit_cap = 8;
  /// Static admission control over uploaded BentoScript images. Warn runs
  /// the verifier on every upload and logs findings without changing
  /// admission; Enforce rejects before the container ever executes.
  VerifyMode verify = VerifyMode::Warn;
  /// Mount containers' chroots on the persistent sealed blob store
  /// (src/store, DESIGN.md §15): durable state keyed by function name that
  /// survives crash() and replays on recovery. Off by default — the
  /// in-memory VFS keeps the paper's ephemeral semantics.
  bool persistent_store = false;
  /// Log/cache tuning for persistent stores. cache_bytes defaults to the
  /// EPC usable ceiling (tee::kEpcUsableBytes): below it reads stay in the
  /// plaintext cache tier, beyond it they page through unseal.
  store::StoreOptions store_options = {};
};

class BentoServer : public tor::LocalApp {
 public:
  BentoServer(sim::Simulator& sim, sim::Network& net, tor::Router& router,
              tor::DirectoryAuthority& directory, const tor::Consensus& consensus,
              tee::IntelAttestationService& ias, const NativeRegistry& natives,
              BentoServerConfig config, util::Rng rng);

  /// The canonical Bento execution-environment image. Its measurement is
  /// what clients attest — per §5.4, "the only code needing attestation is
  /// the Bento execution environment (including Python), not the
  /// individual user functions."
  static util::Bytes runtime_image();
  static tee::Measurement runtime_measurement();

  const BentoServerConfig& config() const { return config_; }
  const MiddleboxPolicy& policy() const { return config_.policy; }
  std::string fingerprint() const { return router_.fingerprint(); }

  // Environment accessors used by containers.
  sim::Simulator& simulator() { return sim_; }
  tor::Router& router() { return router_; }
  tor::OnionProxy& stem_proxy() { return *stem_proxy_; }
  tor::DirectoryAuthority& directory() { return directory_; }
  const NativeRegistry& natives() const { return natives_; }
  sandbox::AggregateAccountant& aggregate() { return aggregate_; }
  tee::Platform& platform() { return platform_; }
  crypto::Gp ias_public_key() const { return ias_.public_key(); }
  tee::EpcManager& epc() { return epc_; }
  util::Rng& rng() { return rng_; }

  // ---- persistent sealed blob store (DESIGN.md §15) ----
  bool persistent_store() const { return config_.persistent_store; }
  /// The node's durable media. Lives here — not in any container — because
  /// disks outlive the processes that crash on top of them.
  store::VolumeManager& volumes() { return volumes_; }
  /// Hands a container its replayed store: a store staged by
  /// recover_stores() if one is waiting, else freshly opened (and replayed)
  /// from the named volume. The name is claimed until the store is
  /// released; a second container under the same name gets a uniquified
  /// volume (see take_or_open_store in server.cpp).
  std::unique_ptr<store::BlobStore> take_or_open_store(const std::string& name,
                                                       std::string* volume_key);
  void release_store_name(const std::string& volume_key);
  /// The chaos recovery callback (set_recovery_callback): replays every
  /// named volume on this node after a restart, truncating torn tails and
  /// failing closed on sealing-key mismatch. Returns one report per volume.
  std::vector<std::pair<std::string, store::ReplayReport>> recover_stores();

  /// Frames + sends a protocol message down a client stream.
  void send_to_stream(tor::EdgeStream* stream, const Message& msg);
  /// Container committed suicide (sandbox violation / script error).
  void container_died(std::uint64_t id, const std::string& reason);

  /// Simulates the whole box process crashing: every container, conclave
  /// and client connection is dropped without telling anyone (a dead
  /// process sends nothing). Chaos harnesses call this from node handlers.
  void crash();

  bool on_stream_open(tor::EdgeStream& stream) override;

  std::size_t live_containers() const { return containers_.size(); }
  /// Total container memory (for the §7.3 scalability experiment).
  std::size_t total_memory_bytes() const;
  /// Read-only view of live containers, id-ordered (snapshot_stats walks
  /// these for the per-function telemetry section).
  std::vector<const Container*> containers() const;

  struct Counters {
    std::uint64_t spawns = 0;
    std::uint64_t uploads = 0;
    std::uint64_t rejected_manifests = 0;
    /// Uploads refused by the static verifier (Enforce mode only).
    std::uint64_t rejected_static = 0;
    std::uint64_t invokes = 0;
    std::uint64_t shutdowns = 0;
    std::uint64_t deaths = 0;
  };
  const Counters& counters() const { return counters_; }

 private:
  void handle_message(tor::EdgeStream* stream, const Message& msg);
  void handle_spawn(tor::EdgeStream* stream, const Message& msg);
  void handle_upload(tor::EdgeStream* stream, const Message& msg);
  void handle_invoke(tor::EdgeStream* stream, const Message& msg);
  void handle_shutdown(tor::EdgeStream* stream, const Message& msg);
  void reply_error(tor::EdgeStream* stream, const std::string& text);
  Container* find_by_invocation(util::ByteView token);
  Container* find_by_shutdown(util::ByteView token);
  void remove_container(std::uint64_t id);

  sim::Simulator& sim_;
  tor::Router& router_;
  tor::DirectoryAuthority& directory_;
  tee::IntelAttestationService& ias_;
  const NativeRegistry& natives_;
  BentoServerConfig config_;
  util::Rng rng_;
  tee::Platform platform_;
  tee::EpcManager epc_;
  sandbox::AggregateAccountant aggregate_;
  store::VolumeManager volumes_;
  /// Stores replayed by recover_stores(), awaiting adoption by the next
  /// container of that name. RAM-only: crash() clears it.
  std::map<std::string, std::unique_ptr<store::BlobStore>> recovered_;
  std::set<std::string> open_store_names_;
  std::unique_ptr<tor::OnionProxy> stem_proxy_;

  struct ClientConn {
    StreamFramer framer;
  };
  std::map<tor::EdgeStream*, ClientConn> conns_;
  std::map<std::uint64_t, std::unique_ptr<Container>> containers_;
  std::uint64_t next_container_id_ = 1;
  Counters counters_;
};

}  // namespace bento::core
