#include "core/container.hpp"

#include "core/client.hpp"
#include "core/server.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/log.hpp"
#include "util/simclock.hpp"
#include "util/zlite.hpp"

namespace bento::core {

namespace {
constexpr char kComponent[] = "bento.container";

/// Vfs backend over the conclave's FsProtect (python-op-sgx image).
class FsProtectBackend final : public sandbox::VfsBackend {
 public:
  explicit FsProtectBackend(tee::FsProtect& fs) : fs_(fs) {}
  void put(const std::string& path, util::ByteView data) override {
    fs_.write(path, data);
  }
  std::optional<util::Bytes> get(const std::string& path) const override {
    return fs_.read(path);
  }
  bool erase(const std::string& path) override { return fs_.remove(path); }
  std::vector<std::string> keys() const override { return fs_.list(); }

 private:
  tee::FsProtect& fs_;
};
}  // namespace

Container::Container(BentoServer& server, std::uint64_t id, std::string image,
                     util::Rng rng)
    : server_(server), id_(id), image_(std::move(image)), rng_(rng) {
  if (image_ == kImagePythonOpSgx) {
    conclave_ = std::make_unique<tee::Conclave>(
        server_.platform(), server_.epc(), BentoServer::runtime_image(),
        "bento-" + std::to_string(id_), rng_);
  }
}

Container::~Container() {
  *alive_ = false;
  // Normal teardown returns the volume name for the next tenant. After a
  // server crash() the key was already forcibly cleared (a dead process
  // releases nothing; the claim table itself died with it).
  if (!store_volume_key_.empty()) server_.release_store_name(store_volume_key_);
}

void Container::install(const FunctionManifest& manifest, const UploadBody& body,
                        tor::EdgeStream* uploader,
                        std::shared_ptr<const script::Program> program) {
  manifest_ = manifest;
  // Enforced filter = manifest ∩ node policy; admit() already verified the
  // manifest fits, so constraining to the manifest alone implements the
  // paper's "even if the middlebox policy allowed for more".
  filter_ = manifest.filter().intersect(server_.policy().allowed);
  resources_ = std::make_unique<sandbox::ResourceAccountant>(manifest.resources,
                                                             &server_.aggregate());
  std::unique_ptr<sandbox::VfsBackend> backend;
  if (server_.persistent_store()) {
    // Persistent mount: the chroot sits on the sealed blob store, keyed by
    // function name. take_or_open_store replays whatever the named volume
    // already holds (possibly staged by recover_stores after a chaos
    // restart), so a crashed Dropbox comes back with its files.
    store_ = server_.take_or_open_store(manifest.name, &store_volume_key_);
    auto mount = std::make_unique<sandbox::StoreBackend>(store_.get());
    mount->set_on_mutate([this] { schedule_store_maintenance(); });
    backend = std::move(mount);
  } else if (conclave_ != nullptr) {
    backend = std::make_unique<FsProtectBackend>(conclave_->fs());
  } else {
    backend = std::make_unique<sandbox::MemoryBackend>();
  }
  vfs_ = std::make_unique<sandbox::Vfs>(std::move(backend), *resources_);
  if (store_ != nullptr) {
    // Replayed files get charged exactly like fresh writes (throws — and
    // fails the install — if the recovered state busts the disk budget).
    vfs_->restore_accounting();
    schedule_store_maintenance();
  }
  netfilter_ =
      sandbox::NetFilter::from_exit_policy(server_.router().descriptor().exit_policy);
  stem_ = std::make_unique<StemSession>(server_.stem_proxy(), server_.directory(),
                                        filter_, server_.config().stem_circuit_cap);
  tokens_ = TokenPair::generate(rng_);
  bound_stream_ = uploader;

  if (!body.native.empty()) {
    function_ = server_.natives().create(body.native);
  } else {
    script::InterpreterOptions options;
    options.step_hook = [this](std::uint64_t steps) { resources_->charge_cpu(steps); };
    options.memory_hook = [this](std::size_t bytes) { update_memory(bytes); };
    options.print_hook = [this](const std::string& line) { log(line); };
    if (program != nullptr) {
      function_ = std::make_unique<ScriptFunction>(std::move(program),
                                                   std::move(options));
    } else {
      function_ = std::make_unique<ScriptFunction>(body.source, std::move(options));
    }
  }
  // on_install runs guarded: a function that dies during install fails the
  // upload (the caller observes dead()).
  run_guarded([&] { function_->on_install(*this, body.args); });
  if (dead_) throw std::runtime_error("function died during install: " + death_reason_);
  fn_stats_.installed_at_us = util::sim_now_micros();
}

void Container::handle_invoke(tor::EdgeStream* from, util::ByteView payload) {
  if (dead_ || function_ == nullptr) return;
  fn_stats_.invokes += 1;
  fn_stats_.bytes_in += payload.size();
  bound_stream_ = from;
  util::Bytes copy(payload.begin(), payload.end());
  if (conclave_ != nullptr) {
    // Enclave transition costs (§7.3) are modeled as a small scheduling
    // delay in and out of the conclave. The fn.dispatch span measures
    // exactly that transition: it opens here and closes when the deferred
    // event fires inside the conclave, so bentotrace attributes the
    // kEcallOverhead to "conclave dispatch" rather than to function compute.
    static obs::Counter ecalls = obs::registry().counter("tee.ecalls");
    ecalls.inc();
    obs::SpanScope dispatch(obs::Stage::FnDispatch, static_cast<std::uint32_t>(id_));
    const std::uint32_t dispatch_span = dispatch.detach();
    std::weak_ptr<bool> alive = alive_;
    server_.simulator().after(kEcallOverhead, [this, alive, dispatch_span,
                                               copy = std::move(copy)] {
      obs::end_span(dispatch_span, obs::Stage::FnDispatch);
      if (alive.expired() || dead_ || function_ == nullptr) return;
      obs::SpanScope exec(obs::Stage::FnExecute, static_cast<std::uint32_t>(id_));
      run_guarded([&] { function_->on_message(*this, copy); });
      exec.set_ok(!dead_);
    });
    return;
  }
  obs::SpanScope exec(obs::Stage::FnExecute, static_cast<std::uint32_t>(id_));
  run_guarded([&] { function_->on_message(*this, copy); });
  exec.set_ok(!dead_);
}

void Container::graceful_shutdown() {
  if (function_ != nullptr && !dead_) {
    run_guarded([&] { function_->on_shutdown(*this); });
  }
  dead_ = true;
}

void Container::on_stream_closed(tor::EdgeStream* stream) {
  if (bound_stream_ == stream) bound_stream_ = nullptr;
  for (auto it = reply_handles_.begin(); it != reply_handles_.end();) {
    if (it->second == stream) {
      it = reply_handles_.erase(it);
    } else {
      ++it;
    }
  }
}

std::size_t Container::memory_bytes() const {
  std::size_t total = resources_ ? resources_->usage().memory_bytes : 0;
  if (conclave_ != nullptr) total += tee::Conclave::kBaselineOverheadBytes;
  return total;
}

template <typename Fn>
void Container::run_guarded(Fn&& fn) {
  if (in_function_) {  // re-entrant callback while already inside: run plain
    fn();
    return;
  }
  in_function_ = true;
  try {
    fn();
  } catch (const sandbox::ResourceExceeded& e) {
    kill(std::string("resource limit: ") + e.what());
  } catch (const sandbox::SyscallDenied& e) {
    kill(std::string("policy violation: ") + e.what());
  } catch (const script::ScriptError& e) {
    kill(std::string("script error: ") + e.what());
  } catch (const script::SyntaxError& e) {
    kill(std::string("syntax error: ") + e.what());
  } catch (const std::exception& e) {
    kill(std::string("function fault: ") + e.what());
  }
  in_function_ = false;
}

void Container::kill(const std::string& reason) {
  if (dead_) return;
  dead_ = true;
  death_reason_ = reason;
  util::log_info(kComponent, "container ", id_, " killed: ", reason);
  if (bound_stream_ != nullptr) {
    Message err;
    err.type = MsgType::Error;
    err.container_id = id_;
    err.text = reason;
    server_.send_to_stream(bound_stream_, err);
  }
  server_.container_died(id_, reason);
}

void Container::update_memory(std::size_t sandbox_estimate) {
  resources_->charge_memory(sandbox_estimate);
  if (conclave_ != nullptr) conclave_->set_memory_bytes(sandbox_estimate);
}

void Container::schedule_store_maintenance() {
  // Background compaction rides the simulator like any other housekeeping —
  // but armed by mutations (the StoreBackend on_mutate hook) rather than a
  // free-running period, so an idle store leaves the event queue empty and
  // world.run() quiesces. One tick is pending at a time; the weak liveness
  // token keeps a doomed container's tick from touching freed state.
  if (compaction_pending_ || store_ == nullptr || !store_->wants_compaction()) {
    return;
  }
  compaction_pending_ = true;
  constexpr util::Duration kStoreMaintenanceDelay = util::Duration::millis(250);
  server_.simulator().after(
      kStoreMaintenanceDelay,
      [this, alive = std::weak_ptr<bool>(alive_)] {
        const std::shared_ptr<bool> lock = alive.lock();
        if (lock == nullptr || !*lock || store_ == nullptr) return;
        compaction_pending_ = false;
        if (store_->wants_compaction()) store_->compact();
      });
}

// ---- HostApi ----

void Container::send(util::ByteView payload) {
  if (bound_stream_ == nullptr) return;
  resources_->charge_network(payload.size());
  fn_stats_.bytes_out += payload.size();
  Message out;
  out.type = MsgType::Output;
  out.container_id = id_;
  out.blob = util::Bytes(payload.begin(), payload.end());
  server_.send_to_stream(bound_stream_, out);
}

std::uint64_t Container::reply_handle() {
  if (bound_stream_ == nullptr) return 0;
  for (const auto& [handle, stream] : reply_handles_) {
    if (stream == bound_stream_) return handle;
  }
  const std::uint64_t handle = next_reply_handle_++;
  reply_handles_[handle] = bound_stream_;
  return handle;
}

void Container::send_to(std::uint64_t handle, util::ByteView payload) {
  auto it = reply_handles_.find(handle);
  if (it == reply_handles_.end()) return;
  resources_->charge_network(payload.size());
  fn_stats_.bytes_out += payload.size();
  Message out;
  out.type = MsgType::Output;
  out.container_id = id_;
  out.blob = util::Bytes(payload.begin(), payload.end());
  server_.send_to_stream(it->second, out);
}

void Container::log(const std::string& line) {
  util::log_info(kComponent, "fn[", manifest_.name, "@", id_, "]: ", line);
}

void Container::fs_write(const std::string& path, util::ByteView data) {
  filter_.check(sandbox::Syscall::FsWrite);
  vfs_->write(path, data);
}

std::optional<util::Bytes> Container::fs_read(const std::string& path) {
  filter_.check(sandbox::Syscall::FsRead);
  return vfs_->read(path);
}

bool Container::fs_remove(const std::string& path) {
  filter_.check(sandbox::Syscall::FsDelete);
  return vfs_->remove(path);
}

std::vector<std::string> Container::fs_list() {
  filter_.check(sandbox::Syscall::FsRead);
  return vfs_->list();
}

void Container::http_get(const std::string& url, HttpCallback done) {
  filter_.check(sandbox::Syscall::NetConnect);
  const ParsedUrl parsed = parse_url(url);
  if (!netfilter_.check(parsed.endpoint)) {
    throw sandbox::SyscallDenied(sandbox::Syscall::NetConnect);
  }
  resources_->open_connection();

  struct FetchState {
    util::Bytes body;
    std::uint64_t conn = 0;
    bool done = false;
  };
  auto state = std::make_shared<FetchState>();
  auto done_shared = std::make_shared<HttpCallback>(std::move(done));

  std::weak_ptr<bool> alive = alive_;
  tor::TcpClient::Callbacks cbs;
  cbs.on_open = [this, alive, state, parsed] {
    if (alive.expired()) return;
    // The enclaved fetch stack (Graphene + CPython + requests) takes
    // noticeably longer to come up than a native one.
    const util::Duration startup =
        conclave_ != nullptr ? kSgxFetchStackDelay : util::Duration::micros(0);
    server_.simulator().after(startup, [this, alive, state, parsed] {
      if (alive.expired()) return;
      server_.router().clearnet_send(state->conn,
                                     util::to_bytes("GET " + parsed.path + "\n"));
    });
  };
  cbs.on_data = [this, alive, state](util::ByteView d) {
    if (alive.expired()) return;
    resources_->charge_network(d.size());
    util::append(state->body, d);
  };
  cbs.on_end = [this, alive, state, done_shared] {
    if (alive.expired()) return;
    state->done = true;
    resources_->close_connection();
    // Function code runs guarded even on async paths.
    run_guarded([&] { (*done_shared)(true, std::move(state->body)); });
  };
  if (!server_.router().open_clearnet(parsed.endpoint, std::move(cbs), &state->conn)) {
    resources_->close_connection();
    run_guarded([&] { (*done_shared)(false, {}); });
  }
}

util::Time Container::now() {
  filter_.check(sandbox::Syscall::Clock);
  return server_.simulator().now();
}

void Container::after(util::Duration delay, std::function<void()> fn) {
  filter_.check(sandbox::Syscall::Clock);
  std::weak_ptr<bool> alive = alive_;
  server_.simulator().after(delay, [this, alive, fn = std::move(fn)] {
    if (alive.expired() || dead_) return;
    run_guarded([&] { fn(); });
  });
}

util::Bytes Container::random_bytes(std::size_t n) {
  filter_.check(sandbox::Syscall::Random);
  if (n > 64 << 20) throw sandbox::ResourceExceeded("random_bytes: too large");
  return rng_.bytes(n);
}

void Container::deploy(const DeploySpec& spec, DeployCallback done) {
  filter_.check(sandbox::Syscall::SpawnFunction);
  // Composition runs over the server's onion proxy: the function is a Bento
  // client of the remote box (Figure 2's Browser deploying Dropbox).
  BentoClientConfig cfg;
  cfg.ias_public_key = server_.ias_public_key();
  cfg.expected_runtime = BentoServer::runtime_measurement();
  auto client = std::make_shared<BentoClient>(server_.stem_proxy(), cfg);
  auto done_shared = std::make_shared<DeployCallback>(std::move(done));
  std::weak_ptr<bool> alive = alive_;
  client->connect(spec.box_fingerprint, [this, alive, client, spec, done_shared](
                                            std::shared_ptr<BentoConnection> conn) {
    if (alive.expired()) return;
    if (conn == nullptr) {
      run_guarded([&] { (*done_shared)(false, {}, {}); });
      return;
    }
    conn->spawn(spec.manifest.image, [this, alive, conn, spec, done_shared](
                                         bool ok, std::string) {
      if (alive.expired()) return;
      if (!ok) {
        run_guarded([&] { (*done_shared)(false, {}, {}); });
        return;
      }
      conn->upload(spec.manifest, spec.source, spec.native, spec.args,
                   [this, alive, conn, done_shared](std::optional<TokenPair> tokens,
                                                    std::string) {
                     if (alive.expired()) return;
                     if (!tokens.has_value()) {
                       run_guarded([&] { (*done_shared)(false, {}, {}); });
                       return;
                     }
                     deployed_.push_back(conn);  // keep stream alive
                     util::Bytes token = tokens->invocation.bytes();
                     util::Bytes stoken = tokens->shutdown.bytes();
                     run_guarded([&] {
                       (*done_shared)(true, std::move(token), std::move(stoken));
                     });
                   });
    });
  });
}

void Container::invoke_remote(const std::string& box_fingerprint,
                              util::ByteView invocation_token, util::ByteView payload,
                              std::function<void(util::Bytes output)> on_output) {
  filter_.check(sandbox::Syscall::SpawnFunction);
  std::weak_ptr<bool> alive = alive_;
  // Reuse a deployed connection to that box when available.
  for (auto& conn : deployed_) {
    if (conn->box_fingerprint() == box_fingerprint && conn->open()) {
      conn->set_output_handler([this, alive, on_output](util::Bytes out) {
        if (alive.expired()) return;
        run_guarded([&] { on_output(std::move(out)); });
      });
      conn->invoke(invocation_token, payload);
      return;
    }
  }
  BentoClientConfig cfg;
  cfg.ias_public_key = server_.ias_public_key();
  cfg.expected_runtime = BentoServer::runtime_measurement();
  auto client = std::make_shared<BentoClient>(server_.stem_proxy(), cfg);
  util::Bytes token_copy(invocation_token.begin(), invocation_token.end());
  util::Bytes payload_copy(payload.begin(), payload.end());
  client->connect(box_fingerprint, [this, alive, client, token_copy, payload_copy,
                                    on_output](std::shared_ptr<BentoConnection> conn) {
    if (alive.expired() || conn == nullptr) return;
    deployed_.push_back(conn);
    conn->set_output_handler([this, alive, on_output](util::Bytes out) {
      if (alive.expired()) return;
      run_guarded([&] { on_output(std::move(out)); });
    });
    conn->invoke(token_copy, payload_copy);
  });
}

StemSession& Container::stem() { return *stem_; }

std::string Container::box_fingerprint() const { return server_.fingerprint(); }

// ---- ScriptFunction ----

ScriptFunction::ScriptFunction(const std::string& source,
                               script::InterpreterOptions options)
    : ScriptFunction(std::shared_ptr<const script::Program>(script::parse(source)),
                     std::move(options)) {}

ScriptFunction::ScriptFunction(std::shared_ptr<const script::Program> program,
                               script::InterpreterOptions options)
    : interp_(std::make_unique<script::Interpreter>(std::move(program),
                                                    std::move(options))) {
  script::install_stdlib(*interp_);
}

void ScriptFunction::bind_modules(HostApi& api) {
  if (bound_) return;
  bound_ = true;
  HostApi* host = &api;
  using script::Dict;
  using script::Value;

  auto as_payload = [](const Value& v) -> util::Bytes {
    if (v.is_bytes()) return v.as_bytes();
    if (v.is_str()) return util::to_bytes(v.as_str());
    return util::to_bytes(v.to_display());
  };

  Dict api_mod;
  api_mod["send"] = Value::native([host, as_payload](script::Interpreter&,
                                                     std::vector<Value>& args) {
    if (args.size() != 1) throw script::TypeError("api.send() takes 1 argument");
    host->send(as_payload(args[0]));
    return Value::none();
  });
  api_mod["handle"] = Value::native([host](script::Interpreter&, std::vector<Value>&) {
    return Value::integer(static_cast<std::int64_t>(host->reply_handle()));
  });
  api_mod["send_to"] = Value::native([host, as_payload](script::Interpreter&,
                                                        std::vector<Value>& args) {
    if (args.size() != 2) throw script::TypeError("api.send_to(handle, data)");
    host->send_to(static_cast<std::uint64_t>(args[0].as_int()), as_payload(args[1]));
    return Value::none();
  });
  api_mod["log"] = Value::native([host](script::Interpreter&, std::vector<Value>& args) {
    std::string line;
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (i > 0) line += " ";
      line += args[i].to_display();
    }
    host->log(line);
    return Value::none();
  });
  interp_->bind("api", Value::dict(std::move(api_mod)));

  Dict fs_mod;
  fs_mod["write"] = Value::native([host, as_payload](script::Interpreter&,
                                                     std::vector<Value>& args) {
    if (args.size() != 2) throw script::TypeError("fs.write() takes 2 arguments");
    host->fs_write(args[0].as_str(), as_payload(args[1]));
    return Value::none();
  });
  fs_mod["read"] = Value::native([host](script::Interpreter&, std::vector<Value>& args) {
    if (args.size() != 1) throw script::TypeError("fs.read() takes 1 argument");
    auto data = host->fs_read(args[0].as_str());
    if (!data.has_value()) return Value::none();
    return Value::bytes(std::move(*data));
  });
  fs_mod["delete"] = Value::native([host](script::Interpreter&, std::vector<Value>& args) {
    if (args.size() != 1) throw script::TypeError("fs.delete() takes 1 argument");
    return Value::boolean(host->fs_remove(args[0].as_str()));
  });
  fs_mod["list"] = Value::native([host](script::Interpreter&, std::vector<Value>&) {
    script::List out;
    for (const auto& name : host->fs_list()) out.push_back(Value::str(name));
    return Value::list(std::move(out));
  });
  interp_->bind("fs", Value::dict(std::move(fs_mod)));

  Dict net_mod;
  net_mod["get"] = Value::native([host](script::Interpreter& in,
                                        std::vector<Value>& args) {
    if (args.size() != 2 || !args[1].is_callable()) {
      throw script::TypeError("net.get(url, callback) takes a URL and a callback");
    }
    const std::string url = args[0].as_str();
    Value callback = args[1];
    host->http_get(url, [&in, callback](bool ok, util::Bytes body) {
      std::vector<Value> cb_args;
      cb_args.push_back(ok ? Value::bytes(std::move(body)) : Value::none());
      in.call_value(callback, std::move(cb_args));
    });
    return Value::none();
  });
  interp_->bind("net", Value::dict(std::move(net_mod)));

  Dict os_mod;
  os_mod["urandom"] = Value::native([host](script::Interpreter&, std::vector<Value>& args) {
    if (args.size() != 1) throw script::TypeError("os.urandom() takes 1 argument");
    const std::int64_t n = args[0].as_int();
    if (n < 0) throw script::TypeError("os.urandom(): negative size");
    return Value::bytes(host->random_bytes(static_cast<std::size_t>(n)));
  });
  interp_->bind("os", Value::dict(std::move(os_mod)));

  Dict time_mod;
  time_mod["now"] = Value::native([host](script::Interpreter&, std::vector<Value>&) {
    return Value::real(host->now().seconds());
  });
  time_mod["after"] = Value::native([host](script::Interpreter& in,
                                           std::vector<Value>& args) {
    if (args.size() != 2 || !args[1].is_callable()) {
      throw script::TypeError("time.after(seconds, callback)");
    }
    Value callback = args[1];
    host->after(util::Duration::seconds(args[0].as_float()),
                [&in, callback] { in.call_value(callback, {}); });
    return Value::none();
  });
  interp_->bind("time", Value::dict(std::move(time_mod)));

  Dict zlib_mod;
  zlib_mod["compress"] = Value::native([as_payload](script::Interpreter&,
                                                    std::vector<Value>& args) {
    if (args.size() != 1) throw script::TypeError("zlib.compress() takes 1 argument");
    return Value::bytes(util::zlite::compress(as_payload(args[0])));
  });
  zlib_mod["decompress"] = Value::native([](script::Interpreter&,
                                            std::vector<Value>& args) {
    if (args.size() != 1) throw script::TypeError("zlib.decompress() takes 1 argument");
    return Value::bytes(util::zlite::decompress(args[0].as_bytes()));
  });
  interp_->bind("zlib", Value::dict(std::move(zlib_mod)));

  Dict bento_mod;
  bento_mod["self"] = Value::str(api.box_fingerprint());
  bento_mod["deploy"] = Value::native([host](script::Interpreter& in,
                                             std::vector<Value>& args) {
    // bento.deploy(box_fp, name, source, [syscall names], args, callback)
    if (args.size() != 6 || !args[5].is_callable()) {
      throw script::TypeError(
          "bento.deploy(box, name, source, syscalls, args, callback)");
    }
    HostApi::DeploySpec spec;
    spec.box_fingerprint = args[0].as_str();
    spec.manifest.name = args[1].as_str();
    spec.source = args[2].as_str();
    for (const auto& v : args[3].as_list()) {
      spec.manifest.required.push_back(sandbox::syscall_from_string(v.as_str()));
    }
    spec.args = args[4].is_bytes() ? args[4].as_bytes()
                                   : util::to_bytes(args[4].to_display());
    Value callback = args[5];
    host->deploy(spec, [&in, callback](bool ok, util::Bytes token, util::Bytes) {
      std::vector<Value> cb_args;
      cb_args.push_back(ok ? Value::bytes(std::move(token)) : Value::none());
      in.call_value(callback, std::move(cb_args));
    });
    return Value::none();
  });
  bento_mod["invoke"] = Value::native([host, as_payload](script::Interpreter& in,
                                                         std::vector<Value>& args) {
    // bento.invoke(box_fp, token, payload, on_output)
    if (args.size() != 4 || !args[3].is_callable()) {
      throw script::TypeError("bento.invoke(box, token, payload, on_output)");
    }
    Value callback = args[3];
    host->invoke_remote(args[0].as_str(), args[1].as_bytes(), as_payload(args[2]),
                        [&in, callback](util::Bytes output) {
                          std::vector<Value> cb_args;
                          cb_args.push_back(Value::bytes(std::move(output)));
                          in.call_value(callback, std::move(cb_args));
                        });
    return Value::none();
  });
  interp_->bind("bento", Value::dict(std::move(bento_mod)));
}

void ScriptFunction::on_install(HostApi& api, util::ByteView args) {
  bind_modules(api);
  interp_->run();
  if (interp_->has_function("on_install")) {
    interp_->call("on_install",
                  {script::Value::bytes(util::Bytes(args.begin(), args.end()))});
  }
}

void ScriptFunction::on_message(HostApi& api, util::ByteView payload) {
  bind_modules(api);
  if (interp_->has_function("on_message")) {
    interp_->call("on_message",
                  {script::Value::bytes(util::Bytes(payload.begin(), payload.end()))});
  }
}

void ScriptFunction::on_shutdown(HostApi& api) {
  bind_modules(api);
  if (interp_->has_function("on_shutdown")) {
    interp_->call("on_shutdown", {});
  }
}

}  // namespace bento::core
