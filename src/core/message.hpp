// Bento wire protocol, spoken over Tor streams between a Bento client and
// a Bento server (paper §5.2-5.3).
//
// Transport: Tor streams deliver byte chunks (the stream layer re-chunks
// into 498-byte cells), so messages are framed as u32 length + body; the
// StreamFramer reassembles. Message bodies are typed unions serialized
// with the repo's big-endian Writer/Reader.
//
// Handshake messages carry the attested secure-channel material when the
// python-op-sgx image is used; upload bodies then travel sealed.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/serialize.hpp"

namespace bento::core {

enum class MsgType : std::uint8_t {
  // Client -> server.
  GetPolicy = 1,
  Spawn = 2,        // image name [+ channel hello for SGX image]
  Upload = 3,       // container id + (sealed) {source, manifest, args}
  Invoke = 4,       // invocation token + payload
  Shutdown = 5,     // shutdown token
  // Server -> client.
  PolicyReply = 16,
  SpawnReply = 17,  // container id [+ channel accept + stapled IAS report]
  UploadReply = 18, // (sealed) token pair
  Output = 19,      // function output payload
  Ok = 20,
  Error = 21,
};

struct Message {
  MsgType type = MsgType::Ok;
  std::uint64_t container_id = 0;
  std::string text;        // image name / error text
  util::Bytes blob;        // main payload (policy, sealed upload, output...)
  util::Bytes blob2;       // secondary (channel hello/accept, IAS report)
  util::Bytes token;       // invocation/shutdown token

  util::Bytes serialize() const;
  static Message deserialize(util::ByteView data);
};

/// Length-prefixed framing over a byte stream.
class StreamFramer {
 public:
  /// Encodes one message as a frame.
  static util::Bytes frame(const Message& msg);

  /// Feeds received bytes; returns every completed message.
  std::vector<Message> feed(util::ByteView data);

 private:
  util::Bytes buffer_;
};

/// Payload of an Upload message (sealed when a secure channel is active).
struct UploadBody {
  util::Bytes manifest;  // FunctionManifest::serialize()
  std::string source;    // BentoScript source ("" for native functions)
  std::string native;    // registered native function name ("" for script)
  util::Bytes args;      // opaque install arguments handed to the function

  util::Bytes serialize() const;
  static UploadBody deserialize(util::ByteView data);
};

/// Payload of an UploadReply (sealed when a secure channel is active).
struct UploadReplyBody {
  util::Bytes invocation_token;
  util::Bytes shutdown_token;

  util::Bytes serialize() const;
  static UploadReplyBody deserialize(util::ByteView data);
};

}  // namespace bento::core
