// BentoWorld: one-stop scenario assembly for experiments, examples and
// tests — a simulated Tor network (tor::Testbed) plus a simulated Intel
// Attestation Service and a Bento server on every relay marked as a Bento
// box. This is the "deployment" the paper's evaluation runs against.
#pragma once

#include <memory>
#include <vector>

#include "core/api.hpp"
#include "core/client.hpp"
#include "core/server.hpp"
#include "obs/metrics.hpp"
#include "tor/testbed.hpp"

namespace bento::core {

struct BentoWorldOptions {
  tor::TestbedOptions testbed;
  MiddleboxPolicy policy = MiddleboxPolicy::permissive();
  bool sgx_available = true;
  /// Static admission control mode for every server in the world.
  VerifyMode verify = VerifyMode::Warn;
  /// Mount every server's chroots on the persistent sealed blob store, so
  /// chaos crash/restart plans round-trip durable state (DESIGN.md §15).
  bool persistent_store = false;
  /// Store tuning applied to every server when persistent_store is on.
  store::StoreOptions store_options = {};

  BentoWorldOptions() { testbed.all_bento = true; }
};

class BentoWorld {
 public:
  explicit BentoWorld(const BentoWorldOptions& options = {});

  tor::Testbed& bed() { return bed_; }
  sim::Simulator& sim() { return bed_.sim(); }
  tee::IntelAttestationService& ias() { return *ias_; }
  NativeRegistry& natives() { return natives_; }

  /// Must be called once, after any extra relays/servers are configured.
  /// Finalizes the testbed and starts a BentoServer on every bento relay.
  void start();

  BentoServer& server(std::size_t index) { return *servers_[index]; }
  BentoServer* server_for(const std::string& fingerprint);
  std::size_t server_count() const { return servers_.size(); }

  /// A ready-to-use Bento client riding its own onion proxy.
  struct Client {
    std::unique_ptr<tor::OnionProxy> proxy;
    std::unique_ptr<BentoClient> bento;
  };
  Client make_client(const std::string& name, double bandwidth = 1.25e6);

  /// Client configuration with the IAS key + runtime measurement filled in.
  BentoClientConfig client_config() const;

  void run(std::uint64_t max_events = 100'000'000) { bed_.run(max_events); }
  void run_for(util::Duration d) { bed_.run_for(d); }

  /// One consolidated telemetry snapshot: the global registry (counters,
  /// gauges, histograms) plus formatted per-server/per-function and
  /// per-node network sections. snapshot.to_string() is the stats dump
  /// artifact referenced by EXPERIMENTS.md.
  obs::Snapshot snapshot_stats();

 private:
  BentoWorldOptions options_;
  tor::Testbed bed_;
  std::unique_ptr<tee::IntelAttestationService> ias_;
  NativeRegistry natives_;
  std::vector<std::unique_ptr<BentoServer>> servers_;
  bool started_ = false;
};

}  // namespace bento::core
