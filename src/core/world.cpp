#include "core/world.hpp"

namespace bento::core {

namespace {
BentoWorldOptions with_policy(BentoWorldOptions options) {
  options.testbed.all_bento = true;
  options.testbed.bento_policy = options.policy.serialize();
  return options;
}
}  // namespace

BentoWorld::BentoWorld(const BentoWorldOptions& options)
    : options_(with_policy(options)), bed_(options_.testbed) {
  ias_ = std::make_unique<tee::IntelAttestationService>(bed_.rng());
}

void BentoWorld::start() {
  if (started_) throw std::logic_error("BentoWorld: start() twice");
  started_ = true;
  bed_.finalize();
  for (std::size_t i = 0; i < bed_.router_count(); ++i) {
    tor::Router& router = bed_.router(i);
    if (!router.descriptor().flags.bento) continue;
    BentoServerConfig cfg;
    cfg.policy = options_.policy;
    cfg.sgx_available = options_.sgx_available;
    cfg.verify = options_.verify;
    servers_.push_back(std::make_unique<BentoServer>(
        bed_.sim(), bed_.net(), router, bed_.directory(), bed_.consensus(), *ias_,
        natives_, cfg, bed_.rng().fork()));
  }
}

BentoServer* BentoWorld::server_for(const std::string& fingerprint) {
  for (auto& server : servers_) {
    if (server->fingerprint() == fingerprint) return server.get();
  }
  return nullptr;
}

BentoWorld::Client BentoWorld::make_client(const std::string& name, double bandwidth) {
  Client client;
  client.proxy = bed_.make_client(name, bandwidth);
  client.bento = std::make_unique<BentoClient>(*client.proxy, client_config());
  return client;
}

BentoClientConfig BentoWorld::client_config() const {
  BentoClientConfig cfg;
  cfg.ias_public_key = ias_->public_key();
  cfg.expected_runtime = BentoServer::runtime_measurement();
  return cfg;
}

}  // namespace bento::core
