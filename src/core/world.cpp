#include "core/world.hpp"

#include <sstream>

#include "obs/profile.hpp"

namespace bento::core {

namespace {
BentoWorldOptions with_policy(BentoWorldOptions options) {
  options.testbed.all_bento = true;
  options.testbed.bento_policy = options.policy.serialize();
  return options;
}
}  // namespace

BentoWorld::BentoWorld(const BentoWorldOptions& options)
    : options_(with_policy(options)), bed_(options_.testbed) {
  ias_ = std::make_unique<tee::IntelAttestationService>(bed_.rng());
}

void BentoWorld::start() {
  if (started_) throw std::logic_error("BentoWorld: start() twice");
  started_ = true;
  bed_.finalize();
  for (std::size_t i = 0; i < bed_.router_count(); ++i) {
    tor::Router& router = bed_.router(i);
    if (!router.descriptor().flags.bento) continue;
    BentoServerConfig cfg;
    cfg.policy = options_.policy;
    cfg.sgx_available = options_.sgx_available;
    cfg.verify = options_.verify;
    cfg.persistent_store = options_.persistent_store;
    cfg.store_options = options_.store_options;
    servers_.push_back(std::make_unique<BentoServer>(
        bed_.sim(), bed_.net(), router, bed_.directory(), bed_.consensus(), *ias_,
        natives_, cfg, bed_.rng().fork()));
  }
}

BentoServer* BentoWorld::server_for(const std::string& fingerprint) {
  for (auto& server : servers_) {
    if (server->fingerprint() == fingerprint) return server.get();
  }
  return nullptr;
}

BentoWorld::Client BentoWorld::make_client(const std::string& name, double bandwidth) {
  Client client;
  client.proxy = bed_.make_client(name, bandwidth);
  client.bento = std::make_unique<BentoClient>(*client.proxy, client_config());
  return client;
}

obs::Snapshot BentoWorld::snapshot_stats() {
  obs::Snapshot snap = obs::registry().snapshot();

  std::ostringstream servers;
  servers << "bento servers (" << servers_.size() << ")\n";
  for (const auto& server : servers_) {
    const BentoServer::Counters& c = server->counters();
    servers << "  " << server->fingerprint() << ": spawns=" << c.spawns
            << " uploads=" << c.uploads << " invokes=" << c.invokes
            << " shutdowns=" << c.shutdowns << " deaths=" << c.deaths
            << " rejected=" << (c.rejected_manifests + c.rejected_static)
            << " live=" << server->live_containers()
            << " mem=" << server->total_memory_bytes() << "B\n";
    for (const Container* container : server->containers()) {
      const Container::FnStats& fs = container->fn_stats();
      servers << "    fn " << container->manifest().name << "@" << container->id()
              << " [" << container->image() << "]: invokes=" << fs.invokes
              << " bytes_in=" << fs.bytes_in << " bytes_out=" << fs.bytes_out
              << " installed_at_us=" << fs.installed_at_us << "\n";
    }
  }
  snap.sections.push_back(std::move(servers).str());

  std::ostringstream nodes;
  sim::Network& net = bed_.net();
  nodes << "network nodes (" << net.node_count() << ")\n";
  for (sim::NodeId n = 0; n < net.node_count(); ++n) {
    const sim::NodeStats& ns = net.stats(n);
    nodes << "  " << n << " " << net.spec(n).name << ": tx=" << ns.bytes_sent
          << "B/" << ns.messages_sent << "msg rx=" << ns.bytes_received << "B/"
          << ns.messages_received << "msg queue_hw=" << ns.up_queue_high_water
          << "up/" << ns.down_queue_high_water << "down\n";
  }
  snap.sections.push_back(std::move(nodes).str());

  // ShardProfile section (DESIGN.md §13): deterministic half only, so the
  // stats artifact stays byte-identical across shard counts.
  snap.sections.push_back(obs::shard_profiler().snapshot().to_section());
  return snap;
}

BentoClientConfig BentoWorld::client_config() const {
  BentoClientConfig cfg;
  cfg.ias_public_key = ias_->public_key();
  cfg.expected_runtime = BentoServer::runtime_measurement();
  return cfg;
}

}  // namespace bento::core
