#include "core/message.hpp"

namespace bento::core {

util::Bytes Message::serialize() const {
  util::Writer w;
  w.u8(static_cast<std::uint8_t>(type));
  w.u64(container_id);
  w.str(text);
  w.blob(blob);
  w.blob(blob2);
  w.blob(token);
  return std::move(w).take();
}

Message Message::deserialize(util::ByteView data) {
  util::Reader r(data);
  Message m;
  m.type = static_cast<MsgType>(r.u8());
  m.container_id = r.u64();
  m.text = r.str();
  m.blob = r.blob();
  m.blob2 = r.blob();
  m.token = r.blob();
  r.expect_done();
  return m;
}

util::Bytes StreamFramer::frame(const Message& msg) {
  util::Writer w;
  w.blob(msg.serialize());
  return std::move(w).take();
}

std::vector<Message> StreamFramer::feed(util::ByteView data) {
  util::append(buffer_, data);
  std::vector<Message> out;
  std::size_t consumed = 0;
  while (buffer_.size() - consumed >= 4) {
    util::Reader header(util::ByteView(buffer_.data() + consumed, 4));
    const std::uint32_t len = header.u32();
    if (buffer_.size() - consumed - 4 < len) break;
    out.push_back(Message::deserialize(
        util::ByteView(buffer_.data() + consumed + 4, len)));
    consumed += 4 + len;
  }
  if (consumed > 0) {
    buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(consumed));
  }
  return out;
}

util::Bytes UploadBody::serialize() const {
  util::Writer w;
  w.blob(manifest);
  w.str(source);
  w.str(native);
  w.blob(args);
  return std::move(w).take();
}

UploadBody UploadBody::deserialize(util::ByteView data) {
  util::Reader r(data);
  UploadBody b;
  b.manifest = r.blob();
  b.source = r.str();
  b.native = r.str();
  b.args = r.blob();
  r.expect_done();
  return b;
}

util::Bytes UploadReplyBody::serialize() const {
  util::Writer w;
  w.blob(invocation_token);
  w.blob(shutdown_token);
  return std::move(w).take();
}

UploadReplyBody UploadReplyBody::deserialize(util::ByteView data) {
  util::Reader r(data);
  UploadReplyBody b;
  b.invocation_token = r.blob();
  b.shutdown_token = r.blob();
  r.expect_done();
  return b;
}

}  // namespace bento::core
