#include "core/client.hpp"

#include <algorithm>
#include <cstdlib>

#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace bento::core {

namespace {
constexpr char kComponent[] = "bento.client";
}

std::vector<std::string> BentoClient::find_boxes(const tor::Consensus& consensus) {
  std::vector<std::string> out;
  for (const auto& relay : consensus.relays) {
    if (relay.flags.bento) out.push_back(relay.fingerprint());
  }
  return out;
}

std::optional<MiddleboxPolicy> BentoClient::advertised_policy(
    const tor::RelayDescriptor& descriptor) {
  if (descriptor.bento_policy.empty()) return std::nullopt;
  try {
    return MiddleboxPolicy::deserialize(descriptor.bento_policy);
  } catch (const util::ParseError&) {
    return std::nullopt;
  }
}

void BentoClient::connect(const std::string& box_fingerprint,
                          std::function<void(std::shared_ptr<BentoConnection>)> done) {
  connect(box_fingerprint, {}, std::move(done));
}

void BentoClient::connect(const std::string& box_fingerprint,
                          std::vector<std::string> excluded_relays,
                          std::function<void(std::shared_ptr<BentoConnection>)> done) {
  const tor::RelayDescriptor* box = proxy_.consensus().find(box_fingerprint);
  if (box == nullptr) {
    done(nullptr);
    return;
  }
  const tor::Endpoint bento_endpoint{box->addr, config_.bento_port};

  prune_closed();  // reap anchors for connections that have since died
  auto conn = std::shared_ptr<BentoConnection>(new BentoConnection());
  conn->proxy_ = &proxy_;
  conn->config_ = config_;
  conn->box_ = box_fingerprint;
  live_.push_back(conn);

  tor::PathConstraints constraints;
  constraints.last_hop = box_fingerprint;
  constraints.excluded = std::move(excluded_relays);
  auto done_shared =
      std::make_shared<std::function<void(std::shared_ptr<BentoConnection>)>>(
          std::move(done));
  auto answered = std::make_shared<bool>(false);
  // Trace origin: the ClientConnect span covers circuit build + Bento
  // stream open, ending at the connected/refused/failed callback. It stays
  // current across build_circuit() so the CREATE cells inherit the context.
  obs::SpanScope connect_span(obs::SpanScope::kRoot, obs::Stage::ClientConnect);
  const std::uint32_t span = connect_span.detach();
  // The build callback fires exactly once and is destroyed afterwards, so
  // its strong `conn` is transient. The stream callbacks it installs are
  // another matter: they live inside the circuit for as long as the circuit
  // does, so they capture weakly — otherwise a closed connection could never
  // be freed until its circuit object went away (the same self-capture leak
  // class spawn()/upload() fixed in their pending_ handlers).
  std::weak_ptr<BentoConnection> weak = conn;
  proxy_.build_circuit_retry(
      std::move(constraints), std::max(1, config_.retry.build_attempts),
      [conn, weak, bento_endpoint, done_shared, answered, span](tor::CircuitOrigin* circ) {
    if (circ == nullptr) {
      conn->closed_ = true;  // never opened; let prune_closed() reap it
      *answered = true;
      obs::end_span(span, obs::Stage::ClientConnect, /*ok=*/false);
      (*done_shared)(nullptr);
      return;
    }
    conn->circuit_ = circ;
    if (std::getenv("BENTO_DEBUG_PATHS") != nullptr) {
      std::string path_desc;
      for (const auto& hop : circ->path()) path_desc += hop.nickname + " ";
      util::log_line(util::LogLevel::Info, "bento.client", "circuit path: " + path_desc);
    }
    tor::Stream::Callbacks cbs;
    cbs.on_data = [weak](util::ByteView d) {
      if (auto self = weak.lock()) self->on_stream_data(d);
    };
    cbs.on_end = [weak, done_shared, answered, span] {
      if (auto self = weak.lock()) self->on_stream_end();
      if (!*answered) {  // refused before CONNECTED (no Bento server there)
        *answered = true;
        obs::end_span(span, obs::Stage::ClientConnect, /*ok=*/false);
        (*done_shared)(nullptr);
      }
    };
    tor::Stream* stream = circ->open_stream(bento_endpoint, std::move(cbs));
    conn->stream_ = stream;
    stream->set_on_connected([weak, done_shared, answered, span] {
      auto self = weak.lock();
      *answered = true;
      obs::end_span(span, obs::Stage::ClientConnect, /*ok=*/self != nullptr);
      (*done_shared)(std::move(self));
    });
  });
}

void BentoClient::prune_closed() {
  live_.erase(std::remove_if(live_.begin(), live_.end(),
                             [](const std::shared_ptr<BentoConnection>& c) {
                               return c->closed_;
                             }),
              live_.end());
}

std::vector<std::string> BentoConnection::path_fingerprints() const {
  std::vector<std::string> out;
  if (circuit_ != nullptr) {
    for (const auto& hop : circuit_->path()) out.push_back(hop.fingerprint());
  }
  return out;
}

void BentoConnection::send_msg(const Message& msg) {
  if (stream_ == nullptr) return;
  stream_->send(StreamFramer::frame(msg));
}

void BentoConnection::expect(std::function<void(const Message&)> handler) {
  pending_.push_back(std::move(handler));
}

void BentoConnection::on_stream_data(util::ByteView data) {
  raw_bytes_ += data.size();
  for (const Message& msg : framer_.feed(data)) {
    if (msg.type == MsgType::Output) {
      if (invoke_span_ != 0) {
        // First Output after an invoke = the client-observed response.
        obs::end_span(invoke_span_, obs::Stage::ClientInvoke);
        invoke_span_ = 0;
      }
      if (output_) {
        // Run a copy so the handler may clear or replace itself (breaking a
        // keep-alive reference cycle, say) without destroying the closure
        // it is executing from.
        auto handler = output_;
        handler(msg.blob);
      }
      continue;
    }
    if (pending_.empty()) {
      util::log_warn(kComponent, "unexpected reply type ",
                     static_cast<int>(msg.type));
      continue;
    }
    auto handler = std::move(pending_.front());
    pending_.pop_front();
    handler(msg);
  }
}

void BentoConnection::on_stream_end() {
  stream_ = nullptr;
  closed_ = true;  // everything rides the stream; a dead stream is a dead conn
  if (invoke_span_ != 0) {
    // Circuit torn down mid-request: the invoke span ends as a failure so
    // the trace shows an orphaned request, not a silent hole.
    obs::end_span(invoke_span_, obs::Stage::ClientInvoke, /*ok=*/false);
    invoke_span_ = 0;
  }
  // Fail anything still waiting.
  while (!pending_.empty()) {
    auto handler = std::move(pending_.front());
    pending_.pop_front();
    Message err;
    err.type = MsgType::Error;
    err.text = "connection closed";
    handler(err);
  }
  if (on_close_) {
    auto fn = std::move(on_close_);
    on_close_ = nullptr;
    fn();
  }
}

void BentoConnection::get_policy(PolicyFn done) {
  Message msg;
  msg.type = MsgType::GetPolicy;
  expect([done = std::move(done)](const Message& reply) {
    if (reply.type != MsgType::PolicyReply) {
      done(std::nullopt);
      return;
    }
    try {
      done(MiddleboxPolicy::deserialize(reply.blob));
    } catch (const util::ParseError&) {
      done(std::nullopt);
    }
  });
  send_msg(msg);
}

void BentoConnection::spawn(const std::string& image, SpawnFn done) {
  obs::SpanScope span(obs::SpanScope::kRoot, obs::Stage::ClientSpawn);
  const std::uint32_t span_id = span.detach();
  Message msg;
  msg.type = MsgType::Spawn;
  msg.text = image;
  spawned_image_ = image;
  const bool sgx = image == kImagePythonOpSgx;
  if (sgx) {
    msg.blob2 = tee::SecureChannel::client_hello(channel_eph_, proxy_->rng()).to_bytes();
  }
  // Weak capture: this handler sits in our own `pending_` queue, so holding a
  // shared_ptr to ourselves would be a reference cycle — and a reply lost to a
  // faulty network (no reply, no stream end) would leak the connection.
  std::weak_ptr<BentoConnection> weak = shared_from_this();
  expect([weak, sgx, span_id, done = std::move(done)](const Message& reply) {
    auto self = weak.lock();
    obs::end_span(span_id, obs::Stage::ClientSpawn,
                  self != nullptr && reply.type == MsgType::SpawnReply);
    if (self == nullptr) {
      done(false, "connection closed");
      return;
    }
    if (reply.type != MsgType::SpawnReply) {
      done(false, reply.text.empty() ? "spawn failed" : reply.text);
      return;
    }
    self->container_id_ = reply.container_id;
    if (!sgx) {
      done(true, "");
      return;
    }
    // Attest: verify the stapled IAS report and the channel binding.
    try {
      const auto accept = tee::SecureChannel::Accept::from_bytes(reply.blob2);
      const auto report = tee::AttestationReport::deserialize(reply.blob);
      if (!report.verify(self->config_.ias_public_key)) {
        done(false, "attestation: bad IAS report signature");
        return;
      }
      if (report.quote.serialize() != accept.quote.serialize()) {
        done(false, "attestation: report/quote mismatch");
        return;
      }
      if (self->config_.require_up_to_date_tcb &&
          report.tcb_status != tee::TcbStatus::UpToDate) {
        done(false, "attestation: TCB out of date");
        return;
      }
      auto channel = tee::SecureChannel::client_finish(
          self->channel_eph_, accept, self->config_.expected_runtime);
      if (!channel.has_value()) {
        done(false, "attestation: channel binding/measurement mismatch");
        return;
      }
      self->channel_ = std::move(channel);
      done(true, "");
    } catch (const std::exception& e) {
      done(false, std::string("attestation: ") + e.what());
    }
  });
  send_msg(msg);
}

void BentoConnection::upload(const FunctionManifest& manifest,
                             const std::string& source, const std::string& native,
                             util::ByteView args, UploadFn done) {
  UploadBody body;
  body.manifest = manifest.serialize();
  body.source = source;
  body.native = native;
  body.args = util::Bytes(args.begin(), args.end());

  obs::SpanScope span(obs::SpanScope::kRoot, obs::Stage::ClientUpload,
                      static_cast<std::uint32_t>(container_id_));
  const std::uint32_t span_id = span.detach();
  Message msg;
  msg.type = MsgType::Upload;
  msg.container_id = container_id_;
  util::Bytes serialized = body.serialize();
  msg.blob = channel_.has_value() ? channel_->seal(serialized) : serialized;

  // Weak capture for the same reason as spawn(): the handler lives in our own
  // `pending_` queue, and a self-capture would leak the connection if the
  // reply never arrives.
  std::weak_ptr<BentoConnection> weak = shared_from_this();
  expect([weak, span_id, done = std::move(done)](const Message& reply) {
    auto self = weak.lock();
    obs::end_span(span_id, obs::Stage::ClientUpload,
                  self != nullptr && reply.type == MsgType::UploadReply);
    if (self == nullptr) {
      done(std::nullopt, "connection closed");
      return;
    }
    if (reply.type != MsgType::UploadReply) {
      done(std::nullopt, reply.text.empty() ? "upload failed" : reply.text);
      return;
    }
    util::Bytes body_bytes = reply.blob;
    if (self->channel_.has_value()) {
      auto opened = self->channel_->open(body_bytes);
      if (!opened.has_value()) {
        done(std::nullopt, "upload reply failed channel authentication");
        return;
      }
      body_bytes = std::move(*opened);
    }
    try {
      const auto reply_body = UploadReplyBody::deserialize(body_bytes);
      TokenPair tokens;
      tokens.invocation = Token::from_bytes(reply_body.invocation_token);
      tokens.shutdown = Token::from_bytes(reply_body.shutdown_token);
      done(tokens, "");
    } catch (const std::exception& e) {
      done(std::nullopt, std::string("bad upload reply: ") + e.what());
    }
  });
  send_msg(msg);
}

void BentoConnection::invoke(util::ByteView invocation_token, util::ByteView payload) {
  // A newer invoke supersedes an unanswered one: close the old span at the
  // point it stopped being the request we are waiting on.
  if (invoke_span_ != 0) {
    obs::end_span(invoke_span_, obs::Stage::ClientInvoke);
    invoke_span_ = 0;
  }
  obs::SpanScope span(obs::SpanScope::kRoot, obs::Stage::ClientInvoke,
                      static_cast<std::uint32_t>(container_id_));
  invoke_span_ = span.detach();
  Message msg;
  msg.type = MsgType::Invoke;
  msg.token = util::Bytes(invocation_token.begin(), invocation_token.end());
  msg.blob = util::Bytes(payload.begin(), payload.end());
  send_msg(msg);
}

void BentoConnection::shutdown(util::ByteView shutdown_token, SimpleFn done) {
  obs::SpanScope span(obs::SpanScope::kRoot, obs::Stage::ClientShutdown,
                      static_cast<std::uint32_t>(container_id_));
  const std::uint32_t span_id = span.detach();
  Message msg;
  msg.type = MsgType::Shutdown;
  msg.token = util::Bytes(shutdown_token.begin(), shutdown_token.end());
  expect([span_id, done = std::move(done)](const Message& reply) {
    obs::end_span(span_id, obs::Stage::ClientShutdown, reply.type == MsgType::Ok);
    done(reply.type == MsgType::Ok);
  });
  send_msg(msg);
}

void BentoConnection::close() {
  closed_ = true;
  if (stream_ != nullptr) {
    stream_->end();
    stream_ = nullptr;
  }
  if (circuit_ != nullptr && !circuit_->destroyed()) {
    tor::CircuitOrigin* circ = circuit_;
    circuit_ = nullptr;
    circ->destroy();
    proxy_->forget(circ);
  }
}

void BentoClient::invoke_reliable(const std::string& box_fingerprint,
                                  util::Bytes invocation_token, util::Bytes payload,
                                  ReliableInvokeFn done) {
  struct State {
    BentoClient* client = nullptr;
    std::string box;
    util::Bytes token;
    util::Bytes payload;
    ReliableInvokeFn done;
    int attempt = 0;
    bool settled = false;
    // Bumped whenever the current attempt is abandoned so stale timers and
    // stream callbacks from it become no-ops.
    std::uint64_t epoch = 0;
    std::vector<std::string> excluded;
    std::shared_ptr<BentoConnection> conn;
    // Stored on the state (callbacks capture only `st`) so nothing captures
    // a shared_ptr to itself — LeakSanitizer would flag that cycle.
    std::function<void(std::shared_ptr<State>)> run;
    std::function<void(std::shared_ptr<State>)> retry;
  };
  auto st = std::make_shared<State>();
  st->client = this;
  st->box = box_fingerprint;
  st->token = std::move(invocation_token);
  st->payload = std::move(payload);
  st->done = std::move(done);

  // Abandon the live attempt (if any) and either give up or back off and go
  // again. `done` fires exactly once: settled guards every path.
  st->retry = [](std::shared_ptr<State> st) {
    if (st->settled) return;
    ++st->epoch;
    if (st->conn) {
      auto conn = std::move(st->conn);
      st->conn = nullptr;
      conn->set_on_close(nullptr);
      conn->set_output_handler(nullptr);
      conn->close();
    }
    const RetryPolicy& rp = st->client->config_.retry;
    if (st->attempt >= rp.max_attempts) {
      st->settled = true;
      obs::trace(obs::Ev::ClientRetry, static_cast<std::uint32_t>(st->attempt), 0,
                 /*ok=*/false);  // ok=false: giving up
      util::log_warn(kComponent, "invoke failed after ", st->attempt, " attempts");
      auto cb = std::move(st->done);
      cb(false, {}, st->attempt);
      return;
    }
    // The hop the last failed build died at is worth avoiding; the box
    // itself must stay reachable on every path.
    const std::string& bad = st->client->proxy_.last_failed_hop();
    if (!bad.empty() && bad != st->box &&
        std::find(st->excluded.begin(), st->excluded.end(), bad) ==
            st->excluded.end()) {
      st->excluded.push_back(bad);
    }
    double backoff_s = rp.backoff_base.to_seconds();
    for (int i = 1; i < st->attempt && backoff_s < rp.backoff_cap.to_seconds(); ++i) {
      backoff_s *= 2.0;
    }
    backoff_s = std::min(backoff_s, rp.backoff_cap.to_seconds());
    backoff_s *= 1.0 + rp.jitter * (2.0 * st->client->proxy_.rng().uniform01() - 1.0);
    const auto backoff = util::Duration::micros(
        static_cast<std::int64_t>(backoff_s * 1e6));
    obs::trace(obs::Ev::ClientRetry, static_cast<std::uint32_t>(st->attempt),
               static_cast<std::uint64_t>(backoff.count_micros() / 1000),
               /*ok=*/true);  // ok=true: will retry
    util::log_info(kComponent, "invoke attempt ", st->attempt, " failed; retrying in ",
                   backoff.count_micros() / 1000, " ms");
    st->client->proxy_.simulator().after(backoff, [st] {
      if (!st->settled) st->run(st);
    });
  };

  st->run = [](std::shared_ptr<State> st) {
    ++st->attempt;
    const std::uint64_t epoch = ++st->epoch;
    st->client->connect(st->box, st->excluded,
                        [st, epoch](std::shared_ptr<BentoConnection> conn) {
      if (st->settled || epoch != st->epoch) return;
      if (conn == nullptr) {
        st->retry(st);
        return;
      }
      st->conn = conn;
      conn->set_output_handler([st, epoch](util::Bytes out) {
        if (st->settled || epoch != st->epoch) return;
        st->settled = true;
        auto conn = std::move(st->conn);
        st->conn = nullptr;
        if (conn) {
          conn->set_on_close(nullptr);
          conn->set_output_handler(nullptr);
          conn->close();
        }
        auto cb = std::move(st->done);
        cb(true, std::move(out), st->attempt);
      });
      conn->set_on_close([st, epoch] {
        if (st->settled || epoch != st->epoch) return;
        st->conn = nullptr;  // already dead; nothing to close
        st->retry(st);
      });
      conn->invoke(st->token, st->payload);
      const RetryPolicy& rp = st->client->config_.retry;
      st->client->proxy_.simulator().after(rp.request_timeout, [st, epoch] {
        if (st->settled || epoch != st->epoch) return;
        util::log_warn(kComponent, "invoke attempt ", st->attempt, " timed out");
        st->retry(st);
      });
    });
  };
  st->run(st);
}

}  // namespace bento::core
