// The Bento client (paper §3, §5).
//
// Workflow (all asynchronous over Tor circuits):
//   1. find_boxes() — discover Bento-capable relays in the consensus and
//      read their advertised middlebox node policies;
//   2. connect()   — build a circuit ending at the chosen box and open a
//      stream to its Bento port;
//   3. get_policy()/spawn() — pick an image; for python-op-sgx the client
//      runs the attested-channel handshake and verifies the stapled IAS
//      report (measurement, TCB status, report signature);
//   4. upload()    — ship the function + manifest (sealed under the
//      channel in SGX mode) and receive the invocation/shutdown tokens;
//   5. invoke()/outputs — drive the function; share the invocation token
//      freely while keeping the shutdown token private.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>

#include "core/message.hpp"
#include "core/policy.hpp"
#include "core/tokens.hpp"
#include "tee/conclave.hpp"
#include "tor/proxy.hpp"
#include "util/time.hpp"

namespace bento::core {

/// Failure-recovery knobs (DESIGN.md §9): request timeout, capped
/// exponential backoff with deterministic jitter (drawn from the proxy's
/// seeded Rng), and how many circuit builds a connect may burn.
struct RetryPolicy {
  int max_attempts = 4;  // total invoke attempts (first try included)
  util::Duration request_timeout = util::Duration::seconds(8);
  util::Duration backoff_base = util::Duration::seconds(1);
  util::Duration backoff_cap = util::Duration::seconds(16);
  double jitter = 0.25;   // backoff scaled by uniform [1-j, 1+j]
  int build_attempts = 2; // circuit builds per connect (reroutes failed hops)
};

struct BentoClientConfig {
  tor::Port bento_port = 5577;
  /// IAS report-signing key, for verifying stapled attestation reports.
  crypto::Gp ias_public_key = 0;
  /// Expected measurement of the Bento runtime image.
  tee::Measurement expected_runtime{};
  /// Refuse python-op-sgx uploads when the box's TCB is out of date.
  bool require_up_to_date_tcb = true;
  RetryPolicy retry;
};

/// One client<->box session (one circuit, one stream, one container).
class BentoConnection : public std::enable_shared_from_this<BentoConnection> {
 public:
  using OutputFn = std::function<void(util::Bytes)>;
  using PolicyFn = std::function<void(std::optional<MiddleboxPolicy>)>;
  using SpawnFn = std::function<void(bool ok, std::string error)>;
  using UploadFn = std::function<void(std::optional<TokenPair>, std::string error)>;
  using SimpleFn = std::function<void(bool ok)>;

  void get_policy(PolicyFn done);
  /// Spawns a container of the given image; runs attestation for
  /// python-op-sgx.
  void spawn(const std::string& image, SpawnFn done);
  void upload(const FunctionManifest& manifest, const std::string& source,
              const std::string& native, util::ByteView args, UploadFn done);
  /// Fire-and-stream: outputs arrive via the output handler.
  void invoke(util::ByteView invocation_token, util::ByteView payload);
  void set_output_handler(OutputFn fn) { output_ = std::move(fn); }
  void shutdown(util::ByteView shutdown_token, SimpleFn done);
  /// Fired once when the stream dies under us (relay crash, remote destroy)
  /// — the hook retry layers use to re-connect promptly.
  void set_on_close(std::function<void()> fn) { on_close_ = std::move(fn); }
  /// Ends the stream and tears down the circuit.
  void close();

  std::uint64_t container_id() const { return container_id_; }
  /// Fingerprints of the relays on this connection's circuit.
  std::vector<std::string> path_fingerprints() const;
  /// Raw stream bytes received (pre-framing) — lets callers observe
  /// progressive delivery of a large Output message.
  std::size_t raw_bytes_received() const { return raw_bytes_; }
  bool attested() const { return channel_.has_value(); }
  bool open() const { return stream_ != nullptr; }
  /// True once the connection has been close()d or its stream has died —
  /// distinct from !open(), which is also true before the stream comes up.
  bool closed() const { return closed_; }
  const std::string& box_fingerprint() const { return box_; }

 private:
  friend class BentoClient;
  BentoConnection() = default;
  void on_stream_data(util::ByteView data);
  void on_stream_end();
  void send_msg(const Message& msg);
  void expect(std::function<void(const Message&)> handler);

  tor::OnionProxy* proxy_ = nullptr;
  BentoClientConfig config_;
  std::string box_;
  tor::CircuitOrigin* circuit_ = nullptr;
  tor::Stream* stream_ = nullptr;
  bool closed_ = false;
  StreamFramer framer_;
  std::size_t raw_bytes_ = 0;
  std::deque<std::function<void(const Message&)>> pending_;
  // Open ClientInvoke span for the in-flight invoke (0 when none): invoke()
  // is fire-and-stream, so the span closes on the first Output back — or
  // with ok=false if the stream dies first (orphan handling).
  std::uint32_t invoke_span_ = 0;
  OutputFn output_;
  std::function<void()> on_close_;
  std::uint64_t container_id_ = 0;
  crypto::DhKeyPair channel_eph_;
  std::optional<tee::SecureChannel> channel_;
  std::string spawned_image_;
};

class BentoClient {
 public:
  BentoClient(tor::OnionProxy& proxy, BentoClientConfig config)
      : proxy_(proxy), config_(std::move(config)) {}

  /// Fingerprints of relays advertising Bento in the consensus.
  static std::vector<std::string> find_boxes(const tor::Consensus& consensus);
  /// The policy a relay disseminates in its descriptor (paper §5.5), if any.
  static std::optional<MiddleboxPolicy> advertised_policy(
      const tor::RelayDescriptor& descriptor);

  /// Builds a circuit to the box and opens the Bento stream; hands back a
  /// live connection or nullptr.
  void connect(const std::string& box_fingerprint,
               std::function<void(std::shared_ptr<BentoConnection>)> done);
  /// Same, excluding relays from the path (multipath clients use this to
  /// keep their circuits disjoint, mTor-style).
  void connect(const std::string& box_fingerprint,
               std::vector<std::string> excluded_relays,
               std::function<void(std::shared_ptr<BentoConnection>)> done);

  /// Idempotent at-least-once invocation (DESIGN.md §9): connects, invokes
  /// the token, and delivers the first Output. On connect failure, stream
  /// death, or request timeout it backs off (capped exponential, seeded
  /// jitter) and retries on a fresh circuit that excludes relays observed
  /// failing, up to retry.max_attempts. The invocation token routes every
  /// attempt to the same container, so re-invocation is idempotent from the
  /// caller's view. `done(ok, first_output, attempts)` fires exactly once.
  using ReliableInvokeFn =
      std::function<void(bool ok, util::Bytes output, int attempts)>;
  void invoke_reliable(const std::string& box_fingerprint,
                       util::Bytes invocation_token, util::Bytes payload,
                       ReliableInvokeFn done);

  tor::OnionProxy& proxy() { return proxy_; }
  const BentoClientConfig& config() const { return config_; }

  /// Drops keep-alive anchors for closed connections. connect() calls this
  /// on every new connection, so a long-lived client does not accumulate
  /// dead sessions; callers that tear down a connection and want its memory
  /// back immediately can call it directly.
  void prune_closed();
  /// Connections currently anchored (open or awaiting prune) — observability
  /// for tests and leak triage.
  std::size_t live_connections() const { return live_.size(); }

 private:
  tor::OnionProxy& proxy_;
  BentoClientConfig config_;
  std::vector<std::shared_ptr<BentoConnection>> live_;  // keep-alive anchors
};

}  // namespace bento::core
