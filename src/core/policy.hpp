// Middlebox node policies and function manifests (paper §5.5).
//
// A node policy is the operator's public statement of what they will run:
// boolean values over the Bento API (syscalls), offered resource ceilings,
// and the container images available. A manifest declares what one
// function *requests*. The server rejects manifests exceeding policy and
// constrains the sandbox to exactly the manifest's set (even if the policy
// allowed more) — the "intersection" enforcement point.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sandbox/resources.hpp"
#include "sandbox/syscalls.hpp"
#include "util/bytes.hpp"

namespace bento::core {

/// Names of the two standard container images (paper §5.4).
inline constexpr const char* kImagePython = "python";
inline constexpr const char* kImagePythonOpSgx = "python-op-sgx";

struct MiddleboxPolicy {
  sandbox::SyscallFilter allowed = sandbox::SyscallFilter::deny_all();
  sandbox::ResourceLimits max_per_function;
  std::vector<std::string> images = {kImagePython};

  bool offers_image(const std::string& name) const;

  util::Bytes serialize() const;
  static MiddleboxPolicy deserialize(util::ByteView data);

  /// Human-readable one-per-line rendering (for the policy-query function).
  std::string to_string() const;

  /// A reasonable default for an exit-relay operator.
  static MiddleboxPolicy permissive();
  /// Storage-free policy (paper §6.2: operators may refuse all disk use).
  static MiddleboxPolicy no_storage();
};

struct FunctionManifest {
  std::string name;
  std::vector<sandbox::Syscall> required;
  sandbox::ResourceLimits resources;  // requested ceilings
  std::string image = kImagePython;

  util::Bytes serialize() const;
  static FunctionManifest deserialize(util::ByteView data);

  sandbox::SyscallFilter filter() const;
};

/// Policy decision with a reason (surfaces in the client's error).
struct PolicyDecision {
  bool admitted = false;
  std::string reason;
};

/// Checks manifest against policy: every required syscall must be allowed,
/// every resource request within the per-function ceiling, image offered.
PolicyDecision admit(const MiddleboxPolicy& policy, const FunctionManifest& manifest);

}  // namespace bento::core
