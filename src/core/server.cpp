#include "core/server.hpp"

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "script/parser.hpp"
#include "util/log.hpp"

namespace bento::core {

namespace {
constexpr char kComponent[] = "bento.server";

// Fleet-wide function lifecycle counters; the per-server Counters struct
// stays as the scoped view, these feed the global registry snapshot.
struct ServerMetrics {
  obs::Counter uploads = obs::registry().counter("bento.uploads");
  obs::Counter invokes = obs::registry().counter("bento.invokes");
  obs::Counter shutdowns = obs::registry().counter("bento.shutdowns");
  obs::Counter token_failures = obs::registry().counter("bento.token_failures");
  obs::Counter policy_denials = obs::registry().counter("bento.policy_denials");
};
ServerMetrics& server_metrics() {
  static ServerMetrics m;
  return m;
}
}  // namespace

util::Bytes BentoServer::runtime_image() {
  // Canonical bytes of the execution environment: in a real deployment this
  // is the container image (Graphene + Python + the Bento loader); here a
  // versioned constant whose hash plays the MRENCLAVE role.
  return util::to_bytes(
      "bento-runtime v1.0 | graphene-sgx 1.1 | python 3.6 | loader 2021-08");
}

tee::Measurement BentoServer::runtime_measurement() {
  return tee::measure(runtime_image());
}

BentoServer::BentoServer(sim::Simulator& sim, sim::Network& net, tor::Router& router,
                         tor::DirectoryAuthority& directory,
                         const tor::Consensus& consensus,
                         tee::IntelAttestationService& ias,
                         const NativeRegistry& natives, BentoServerConfig config,
                         util::Rng rng)
    : sim_(sim),
      router_(router),
      directory_(directory),
      ias_(ias),
      natives_(natives),
      config_(std::move(config)),
      rng_(rng),
      platform_(rng_.next_u64(), ias.current_tcb(), rng_),
      aggregate_(config_.aggregate_limits),
      // Seeded from the fingerprint (FNV-1a), NOT from rng_: the durable
      // media must not perturb the server's existing random streams, and
      // torn-tail draws stay a function of the node identity alone.
      volumes_([&router] {
        std::uint64_t h = 1469598103934665603ull;
        for (const char c : router.fingerprint()) {
          h ^= static_cast<std::uint8_t>(c);
          h *= 1099511628211ull;
        }
        return h;
      }()) {
  ias_.provision(platform_);
  // The companion onion proxy: the Stem-firewalled Tor access functions
  // get. Its node is "localhost" relative to the relay.
  const sim::NodeId op_node = net.add_node(
      {router_.descriptor().nickname + "-op", 12.5e6, 12.5e6}, nullptr);
  stem_proxy_ = std::make_unique<tor::OnionProxy>(
      sim_, net, op_node, consensus, directory.authority_key(), rng_.fork());
  net.attach(op_node, stem_proxy_.get());
  net.set_latency(op_node, router_.node(), util::Duration::micros(50));
  router_.bind_local_app(config_.port, this);
}

std::vector<const Container*> BentoServer::containers() const {
  std::vector<const Container*> out;
  out.reserve(containers_.size());
  for (const auto& [id, container] : containers_) out.push_back(container.get());
  return out;
}

std::size_t BentoServer::total_memory_bytes() const {
  std::size_t total = 0;
  for (const auto& [id, container] : containers_) total += container->memory_bytes();
  return total;
}

bool BentoServer::on_stream_open(tor::EdgeStream& stream) {
  tor::EdgeStream* ptr = &stream;
  conns_[ptr];
  stream.set_on_data([this, ptr](util::ByteView data) {
    auto it = conns_.find(ptr);
    if (it == conns_.end()) return;
    for (const Message& msg : it->second.framer.feed(data)) {
      handle_message(ptr, msg);
    }
  });
  stream.set_on_end([this, ptr] {
    conns_.erase(ptr);
    for (auto& [id, container] : containers_) container->on_stream_closed(ptr);
  });
  return true;
}

void BentoServer::send_to_stream(tor::EdgeStream* stream, const Message& msg) {
  if (stream == nullptr) return;
  stream->send(StreamFramer::frame(msg));
}

void BentoServer::reply_error(tor::EdgeStream* stream, const std::string& text) {
  Message err;
  err.type = MsgType::Error;
  err.text = text;
  send_to_stream(stream, err);
}

void BentoServer::handle_message(tor::EdgeStream* stream, const Message& msg) {
  // Child of the client's request span (inert when untraced): everything
  // the box does for this message — attestation, verification, dispatch —
  // nests under one server.handle span.
  obs::SpanScope span(obs::Stage::ServerHandle,
                      static_cast<std::uint32_t>(msg.container_id));
  switch (msg.type) {
    case MsgType::GetPolicy: {
      Message reply;
      reply.type = MsgType::PolicyReply;
      reply.blob = config_.policy.serialize();
      send_to_stream(stream, reply);
      return;
    }
    case MsgType::Spawn: handle_spawn(stream, msg); return;
    case MsgType::Upload: handle_upload(stream, msg); return;
    case MsgType::Invoke: handle_invoke(stream, msg); return;
    case MsgType::Shutdown: handle_shutdown(stream, msg); return;
    default:
      reply_error(stream, "unexpected message type");
      return;
  }
}

void BentoServer::handle_spawn(tor::EdgeStream* stream, const Message& msg) {
  if (!config_.policy.offers_image(msg.text)) {
    reply_error(stream, "image not offered: " + msg.text);
    return;
  }
  if (msg.text == kImagePythonOpSgx && !config_.sgx_available) {
    reply_error(stream, "no SGX on this box");
    return;
  }
  if (containers_.size() >= static_cast<std::size_t>(config_.max_containers)) {
    reply_error(stream, "container limit reached");
    return;
  }

  const std::uint64_t id = next_container_id_++;
  std::unique_ptr<Container> container;
  try {
    container = std::make_unique<Container>(*this, id, msg.text, rng_.fork());
  } catch (const tee::EpcExhausted& e) {
    reply_error(stream, std::string("EPC exhausted: ") + e.what());
    return;
  }

  Message reply;
  reply.type = MsgType::SpawnReply;
  reply.container_id = id;

  if (msg.text == kImagePythonOpSgx) {
    // Attested channel handshake + stapled IAS report (paper §5.4).
    obs::SpanScope attest_span(obs::Stage::Attest, static_cast<std::uint32_t>(id));
    tee::SecureChannel::Hello hello;
    try {
      hello = tee::SecureChannel::Hello::from_bytes(msg.blob2);
    } catch (const std::exception&) {
      attest_span.set_ok(false);
      reply_error(stream, "malformed channel hello");
      return;
    }
    tee::SecureChannel::Accept accept;
    auto channel = tee::SecureChannel::server_accept(hello, container->conclave()->runtime(),
                                                     rng_, &accept);
    auto report =
        ias_.verify_quote(accept.quote, static_cast<std::uint64_t>(sim_.now().micros()));
    if (!report.has_value()) {
      attest_span.set_ok(false);
      reply_error(stream, "IAS refused quote");
      return;
    }
    container->channel() = std::move(channel);
    reply.blob = report->serialize();
    reply.blob2 = accept.to_bytes();
  }

  containers_[id] = std::move(container);
  ++counters_.spawns;
  send_to_stream(stream, reply);
}

void BentoServer::handle_upload(tor::EdgeStream* stream, const Message& msg) {
  auto it = containers_.find(msg.container_id);
  if (it == containers_.end()) {
    reply_error(stream, "no such container");
    return;
  }
  Container& container = *it->second;
  if (container.installed()) {
    reply_error(stream, "container already has a function");
    return;
  }

  util::Bytes body_bytes = msg.blob;
  if (container.channel().has_value()) {
    auto opened = container.channel()->open(body_bytes);
    if (!opened.has_value()) {
      reply_error(stream, "upload failed channel authentication");
      return;
    }
    body_bytes = std::move(*opened);
  }

  UploadBody body;
  FunctionManifest manifest;
  try {
    body = UploadBody::deserialize(body_bytes);
    manifest = FunctionManifest::deserialize(body.manifest);
  } catch (const util::ParseError& e) {
    reply_error(stream, std::string("malformed upload: ") + e.what());
    return;
  }
  if (manifest.image != container.image()) {
    reply_error(stream, "manifest image does not match container");
    return;
  }
  if (!body.native.empty() && !natives_.has(body.native)) {
    reply_error(stream, "unknown native function: " + body.native);
    return;
  }

  const PolicyDecision decision = admit(config_.policy, manifest);
  if (!decision.admitted) {
    ++counters_.rejected_manifests;
    server_metrics().policy_denials.inc();
    obs::trace(obs::Ev::PolicyDeny, static_cast<std::uint32_t>(msg.container_id),
               0, /*ok=*/false);
    reply_error(stream, "manifest rejected: " + decision.reason);
    return;
  }

  // Script images are parsed once here; the parsed program feeds both the
  // static verifier and (on admission) the container's interpreter.
  std::shared_ptr<const script::Program> program;
  if (body.native.empty()) {
    try {
      program = script::parse(body.source);
    } catch (const script::SyntaxError& e) {
      reply_error(stream, std::string("install failed: syntax error: ") + e.what());
      remove_container(msg.container_id);
      return;
    }
    if (config_.verify != VerifyMode::Off) {
      const VerifyReport report = verify_upload(*program, manifest);
      for (const auto& d : report.analysis.diagnostics) {
        util::log_info(kComponent, "verify[", manifest.name, "]: ", d.to_string());
      }
      if (!report.decision.admitted) {
        if (config_.verify == VerifyMode::Enforce) {
          ++counters_.rejected_static;
          server_metrics().policy_denials.inc();
          obs::trace(obs::Ev::PolicyDeny,
                     static_cast<std::uint32_t>(msg.container_id), 1,
                     /*ok=*/false);
          reply_error(stream, "upload rejected by static verifier: " +
                                  report.decision.reason);
          remove_container(msg.container_id);
          return;
        }
        util::log_info(kComponent, "verify[", manifest.name,
                       "] would reject (mode=warn): ", report.decision.reason);
      }
    }
  }

  try {
    container.install(manifest, body, stream, std::move(program));
  } catch (const std::exception& e) {
    // If the container killed itself it already reported the reason.
    if (!container.dead()) reply_error(stream, std::string("install failed: ") + e.what());
    remove_container(msg.container_id);
    return;
  }

  ++counters_.uploads;
  server_metrics().uploads.inc();
  obs::trace(obs::Ev::FnUpload, static_cast<std::uint32_t>(msg.container_id),
             body.source.size());
  UploadReplyBody reply_body;
  reply_body.invocation_token = container.tokens().invocation.bytes();
  reply_body.shutdown_token = container.tokens().shutdown.bytes();
  Message reply;
  reply.type = MsgType::UploadReply;
  reply.container_id = msg.container_id;
  util::Bytes serialized = reply_body.serialize();
  reply.blob = container.channel().has_value() ? container.channel()->seal(serialized)
                                               : serialized;
  send_to_stream(stream, reply);
}

void BentoServer::handle_invoke(tor::EdgeStream* stream, const Message& msg) {
  Container* container = find_by_invocation(msg.token);
  if (container == nullptr) {
    server_metrics().token_failures.inc();
    obs::trace(obs::Ev::TokenCheck, 0, 0, /*ok=*/false);
    reply_error(stream, "bad invocation token");
    return;
  }
  obs::trace(obs::Ev::TokenCheck, static_cast<std::uint32_t>(container->id()), 0);
  ++counters_.invokes;
  server_metrics().invokes.inc();
  obs::trace(obs::Ev::FnInvoke, static_cast<std::uint32_t>(container->id()),
             msg.blob.size());
  container->handle_invoke(stream, msg.blob);
}

void BentoServer::handle_shutdown(tor::EdgeStream* stream, const Message& msg) {
  Container* container = find_by_shutdown(msg.token);
  if (container == nullptr) {
    server_metrics().token_failures.inc();
    obs::trace(obs::Ev::TokenCheck, 0, 1, /*ok=*/false);
    reply_error(stream, "bad shutdown token");
    return;
  }
  obs::trace(obs::Ev::TokenCheck, static_cast<std::uint32_t>(container->id()), 1);
  ++counters_.shutdowns;
  server_metrics().shutdowns.inc();
  obs::trace(obs::Ev::FnShutdown, static_cast<std::uint32_t>(container->id()));
  container->graceful_shutdown();
  remove_container(container->id());
  Message ok;
  ok.type = MsgType::Ok;
  send_to_stream(stream, ok);
}

Container* BentoServer::find_by_invocation(util::ByteView token) {
  for (auto& [id, container] : containers_) {
    if (container->tokens().invocation.matches(token)) return container.get();
  }
  return nullptr;
}

Container* BentoServer::find_by_shutdown(util::ByteView token) {
  for (auto& [id, container] : containers_) {
    if (container->tokens().shutdown.matches(token)) return container.get();
  }
  return nullptr;
}

void BentoServer::container_died(std::uint64_t id, const std::string& reason) {
  ++counters_.deaths;
  util::log_info(kComponent, fingerprint(), ": reclaiming container ", id, " (",
                 reason, ")");
  remove_container(id);
}

void BentoServer::crash() {
  util::log_warn(kComponent, fingerprint(), ": simulated crash; dropping ",
                 containers_.size(), " containers");
  counters_.deaths += containers_.size();
  conns_.clear();
  // A dead process releases no claims: clear each doomed container's volume
  // key so its (deferred) destructor cannot release a name a post-restart
  // container has since re-claimed.
  for (auto& [id, container] : containers_) container->store_volume_key_.clear();
  // Same deferral as remove_container: a chaos handler may reach this from
  // inside a container's own call stack.
  auto doomed = std::make_shared<std::map<std::uint64_t, std::unique_ptr<Container>>>(
      std::move(containers_));
  containers_.clear();
  sim_.after(util::Duration::micros(0), [doomed] {});
  // Durable media take the crash too: unsynced bytes vanish, the active
  // segment keeps a deterministic torn prefix. Everything RAM-resident
  // about the stores (staged recoveries, name claims) dies with the
  // process; the Volumes themselves survive inside volumes_.
  recovered_.clear();
  open_store_names_.clear();
  volumes_.crash();
}

std::unique_ptr<store::BlobStore> BentoServer::take_or_open_store(
    const std::string& name, std::string* volume_key) {
  // Duplicate live functions under one name must not share a log: the
  // second claimant gets a uniquified volume (durable only under that
  // exact suffix — acceptable for replicas, which rebuild from their
  // primary anyway).
  std::string key = name;
  for (std::uint64_t n = 2; open_store_names_.contains(key); ++n) {
    key = name + "#" + std::to_string(n);
  }
  open_store_names_.insert(key);
  if (volume_key != nullptr) *volume_key = key;

  auto staged = recovered_.find(key);
  if (staged != recovered_.end()) {
    std::unique_ptr<store::BlobStore> blob = std::move(staged->second);
    recovered_.erase(staged);
    return blob;
  }
  std::unique_ptr<store::Sealer> sealer =
      config_.sgx_available
          ? tee::make_store_sealer(platform_, runtime_measurement(), key)
          : store::make_null_sealer();
  auto blob = std::make_unique<store::BlobStore>(
      volumes_.open(key), std::move(sealer), config_.store_options);
  if (blob->volume().total_bytes() > 0) blob->replay();
  return blob;
}

void BentoServer::release_store_name(const std::string& volume_key) {
  open_store_names_.erase(volume_key);
}

std::vector<std::pair<std::string, store::ReplayReport>>
BentoServer::recover_stores() {
  std::vector<std::pair<std::string, store::ReplayReport>> reports;
  for (const std::string& key : volumes_.keys()) {
    if (open_store_names_.contains(key) || recovered_.contains(key)) continue;
    std::unique_ptr<store::Sealer> sealer =
        config_.sgx_available
            ? tee::make_store_sealer(platform_, runtime_measurement(), key)
            : store::make_null_sealer();
    auto blob = std::make_unique<store::BlobStore>(
        volumes_.open(key), std::move(sealer), config_.store_options);
    reports.emplace_back(key, blob->replay());
    recovered_.emplace(key, std::move(blob));
  }
  return reports;
}

void BentoServer::remove_container(std::uint64_t id) {
  auto it = containers_.find(id);
  if (it == containers_.end()) return;
  // Deferred: removal is frequently reached from inside the container's own
  // call stack (kill during install/invoke).
  std::shared_ptr<Container> doomed(std::move(it->second));
  containers_.erase(it);
  // The store name claim must not outlive the container's removal from the
  // table: a respawn of the same function within this event cascade would
  // otherwise be uniquified onto an empty "name#2" volume and silently lose
  // its durable state. Release eagerly; clearing the key makes the deferred
  // destructor's release a no-op.
  if (!doomed->store_volume_key_.empty()) {
    release_store_name(doomed->store_volume_key_);
    doomed->store_volume_key_.clear();
  }
  sim_.after(util::Duration::micros(0), [doomed] {});
}

}  // namespace bento::core
