#include "core/stemfw.hpp"

#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "sandbox/resources.hpp"

namespace bento::core {

namespace {
// Mediation of one Stem control-plane call: a stem.mediate span (inert when
// the request is untraced) around the capability check. On denial the span
// closes as a failure and the event is recorded into the flight recorder,
// then the sandbox exception propagates to kill the offending function.
void checked(sandbox::SyscallFilter& filter, sandbox::Syscall sc) {
  obs::SpanScope span(obs::Stage::StemMediate, static_cast<std::uint32_t>(sc));
  try {
    filter.check(sc);
  } catch (...) {
    span.set_ok(false);
    obs::trace(obs::Ev::StemDeny, static_cast<std::uint32_t>(sc),
               obs::Recorder::kStemSyscall, /*ok=*/false);
    throw;
  }
}
}  // namespace

StemSession::StemSession(tor::OnionProxy& proxy, tor::DirectoryAuthority& directory,
                         sandbox::SyscallFilter& filter, int max_circuits)
    : proxy_(proxy), directory_(directory), filter_(filter),
      max_circuits_(max_circuits) {}

StemSession::~StemSession() {
  // destroy() fires on_destroy callbacks that erase from circuits_;
  // detach the map before walking it.
  auto doomed = std::move(circuits_);
  circuits_.clear();
  for (auto& [handle, circ] : doomed) {
    if (circ == nullptr) continue;
    circ->set_on_destroy({});  // the session is dying; drop back-references
    if (!circ->destroyed()) {
      circ->destroy();
      proxy_.forget(circ);
    }
  }
}

void StemSession::build_circuit(const tor::PathConstraints& constraints,
                                std::function<void(CircuitHandle)> done) {
  checked(filter_, sandbox::Syscall::TorCircuit);
  if (circuits_.size() >= static_cast<std::size_t>(max_circuits_)) {
    obs::trace(obs::Ev::StemDeny, static_cast<std::uint32_t>(circuits_.size()),
               obs::Recorder::kStemCircuitCap, /*ok=*/false);
    throw sandbox::ResourceExceeded("stem: circuit cap reached");
  }
  proxy_.build_circuit(constraints, [this, done = std::move(done)](
                                        tor::CircuitOrigin* circ) {
    if (circ == nullptr) {
      done(0);
      return;
    }
    const CircuitHandle handle = next_handle_++;
    circuits_[handle] = circ;
    circ->set_on_destroy([this, handle] { circuits_.erase(handle); });
    done(handle);
  });
}

tor::Stream* StemSession::open_stream(CircuitHandle handle, const tor::Endpoint& to,
                                      tor::Stream::Callbacks cbs) {
  checked(filter_, sandbox::Syscall::TorCircuit);
  auto it = circuits_.find(handle);
  if (it == circuits_.end() || it->second == nullptr) return nullptr;
  return it->second->open_stream(to, std::move(cbs));
}

void StemSession::destroy_circuit(CircuitHandle handle) {
  auto it = circuits_.find(handle);
  if (it == circuits_.end()) return;
  tor::CircuitOrigin* circ = it->second;
  circuits_.erase(it);
  if (circ != nullptr && !circ->destroyed()) {
    circ->destroy();
    proxy_.forget(circ);
  }
}

const tor::Consensus& StemSession::consensus() {
  checked(filter_, sandbox::Syscall::TorDirectory);
  return proxy_.consensus();
}

tor::HiddenServiceHost& StemSession::create_hidden_service(int intro_count) {
  checked(filter_, sandbox::Syscall::TorHs);
  hs_hosts_.push_back(
      std::make_unique<tor::HiddenServiceHost>(proxy_, directory_, intro_count));
  return *hs_hosts_.back();
}

tor::HiddenServiceHost& StemSession::create_hidden_service(
    const tor::HiddenServiceHost::Identity& identity, int intro_count) {
  checked(filter_, sandbox::Syscall::TorHs);
  hs_hosts_.push_back(std::make_unique<tor::HiddenServiceHost>(
      proxy_, directory_, identity, intro_count));
  return *hs_hosts_.back();
}

void StemSession::connect_hs(const std::string& onion_id,
                             std::function<void(tor::CircuitOrigin*)> done) {
  checked(filter_, sandbox::Syscall::TorCircuit);
  if (hs_client_ == nullptr) {
    hs_client_ = std::make_unique<tor::HsClient>(proxy_, directory_);
  }
  hs_client_->connect(onion_id, std::move(done));
}

}  // namespace bento::core
