#include "core/tokens.hpp"

#include <stdexcept>

namespace bento::core {

Token Token::generate(util::Rng& rng) {
  Token t;
  t.bytes_ = rng.bytes(kTokenLen);
  return t;
}

Token Token::from_bytes(util::ByteView b) {
  if (b.size() != kTokenLen) throw std::invalid_argument("Token: wrong length");
  Token t;
  t.bytes_ = util::Bytes(b.begin(), b.end());
  return t;
}

bool Token::matches(const Token& other) const {
  return !bytes_.empty() && util::ct_equal(bytes_, other.bytes_);
}

bool Token::matches(util::ByteView raw) const {
  return !bytes_.empty() && util::ct_equal(bytes_, raw);
}

TokenPair TokenPair::generate(util::Rng& rng) {
  return TokenPair{Token::generate(rng), Token::generate(rng)};
}

}  // namespace bento::core
