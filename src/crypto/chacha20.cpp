#include "crypto/chacha20.hpp"

#include <cstring>

#include "util/annotations.hpp"

namespace bento::crypto {

namespace {
BENTO_HOT std::uint32_t load32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 | static_cast<std::uint32_t>(p[3]) << 24;
}

BENTO_HOT void store32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

// ---- 8-block interleaved keystream kernel -------------------------------
//
// Eight blocks are produced per refill, stored lane-innermost (x[word][lane])
// so every quarter-round statement is one 8-wide SIMD operation. On GCC and
// Clang the body is written with vector extensions (portable: the compiler
// splits the 32-byte vectors into whatever the target ISA offers) and is
// instantiated twice — once compiled for AVX2 and once for the baseline ISA
// — with a one-time runtime dispatch on cpuid. Elsewhere a plain scalar body
// keeps the same 8 interleaved dependency chains for ILP.

#if defined(__GNUC__) || defined(__clang__)
#define BENTO_CHACHA_SIMD 1
#endif

#if BENTO_CHACHA_SIMD

#if (defined(__clang__) || __GNUC__ >= 12) && \
    __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
// Byte-granular rotates (16 and 8 bits) become single shuffle instructions
// (vpshufb & co.). The u8/u16 lane indices below assume little-endian lane
// layout; other targets use the shift-or fallback.
#define BENTO_ROT16(v)                                                        \
  __builtin_shufflevector((v), (v), 1, 0, 3, 2, 5, 4, 7, 6, 9, 8, 11, 10, 13, \
                          12, 15, 14)
#define BENTO_ROT8(v)                                                         \
  __builtin_shufflevector((v), (v), 3, 0, 1, 2, 7, 4, 5, 6, 11, 8, 9, 10, 15, \
                          12, 13, 14, 19, 16, 17, 18, 23, 20, 21, 22, 27, 24, \
                          25, 26, 31, 28, 29, 30)
#endif

#define BENTO_CHACHA_QR(a, b, c, d)   \
  x[a] += x[b];                       \
  x[d] ^= x[a];                       \
  BENTO_CHACHA_ROT16(x[d]);           \
  x[c] += x[d];                       \
  x[b] ^= x[c];                       \
  x[b] = (x[b] << 12) | (x[b] >> 20); \
  x[a] += x[b];                       \
  x[d] ^= x[a];                       \
  BENTO_CHACHA_ROT8(x[d]);            \
  x[c] += x[d];                       \
  x[b] ^= x[c];                       \
  x[b] = (x[b] << 7) | (x[b] >> 25);

#ifdef BENTO_ROT16
#define BENTO_CHACHA_ROT16(v)                                              \
  {                                                                        \
    using v16 = std::uint16_t __attribute__((vector_size(32)));            \
    v16 h;                                                                 \
    std::memcpy(&h, &(v), 32);                                             \
    h = BENTO_ROT16(h);                                                    \
    std::memcpy(&(v), &h, 32);                                             \
  }
#define BENTO_CHACHA_ROT8(v)                                               \
  {                                                                        \
    using v8 = std::uint8_t __attribute__((vector_size(32)));              \
    v8 b8;                                                                 \
    std::memcpy(&b8, &(v), 32);                                            \
    b8 = BENTO_ROT8(b8);                                                   \
    std::memcpy(&(v), &b8, 32);                                            \
  }
#else
#define BENTO_CHACHA_ROT16(v) (v) = ((v) << 16) | ((v) >> 16)
#define BENTO_CHACHA_ROT8(v) (v) = ((v) << 8) | ((v) >> 24)
#endif

// `state` is the 16-word ChaCha state; writes 8 blocks (512 B) to `block`.
#define BENTO_CHACHA_REFILL_BODY(state, block)                          \
  using vec = std::uint32_t __attribute__((vector_size(32)));           \
  const vec lane_idx = {0, 1, 2, 3, 4, 5, 6, 7};                        \
  vec x[16];                                                            \
  for (int i = 0; i < 16; ++i) x[i] = vec{} + (state)[i];               \
  x[12] += lane_idx; /* per-lane block counters */                      \
  for (int round = 0; round < 10; ++round) {                            \
    BENTO_CHACHA_QR(0, 4, 8, 12)                                        \
    BENTO_CHACHA_QR(1, 5, 9, 13)                                        \
    BENTO_CHACHA_QR(2, 6, 10, 14)                                       \
    BENTO_CHACHA_QR(3, 7, 11, 15)                                       \
    BENTO_CHACHA_QR(0, 5, 10, 15)                                       \
    BENTO_CHACHA_QR(1, 6, 11, 12)                                       \
    BENTO_CHACHA_QR(2, 7, 8, 13)                                        \
    BENTO_CHACHA_QR(3, 4, 9, 14)                                        \
  }                                                                     \
  for (int i = 0; i < 16; ++i) x[i] += vec{} + (state)[i];              \
  x[12] += lane_idx;                                                    \
  for (int l = 0; l < 8; ++l) {                                         \
    std::uint8_t* out = (block) + 64 * l;                               \
    for (int i = 0; i < 16; ++i) store32(out + 4 * i, x[i][l]);         \
  }

BENTO_HOT void refill_portable(const std::uint32_t* state, std::uint8_t* block) {
  BENTO_CHACHA_REFILL_BODY(state, block)
}

#if defined(__x86_64__) || defined(__i386__)
BENTO_HOT __attribute__((target("avx2"))) void refill_avx2(const std::uint32_t* state,
                                                 std::uint8_t* block) {
  BENTO_CHACHA_REFILL_BODY(state, block)
}
#endif

#undef BENTO_CHACHA_REFILL_BODY
#undef BENTO_CHACHA_QR

using RefillFn = void (*)(const std::uint32_t*, std::uint8_t*);

RefillFn pick_refill() {
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx2")) return refill_avx2;
#endif
  return refill_portable;
}

const RefillFn kRefill = pick_refill();

#else  // !BENTO_CHACHA_SIMD: scalar fallback, 8 interleaved chains

BENTO_HOT void quarter_round(std::uint32_t x[16][8], int a, int b, int c, int d) {
  for (int l = 0; l < 8; ++l) {
    x[a][l] += x[b][l];
    x[d][l] ^= x[a][l];
    x[d][l] = (x[d][l] << 16) | (x[d][l] >> 16);
    x[c][l] += x[d][l];
    x[b][l] ^= x[c][l];
    x[b][l] = (x[b][l] << 12) | (x[b][l] >> 20);
    x[a][l] += x[b][l];
    x[d][l] ^= x[a][l];
    x[d][l] = (x[d][l] << 8) | (x[d][l] >> 24);
    x[c][l] += x[d][l];
    x[b][l] ^= x[c][l];
    x[b][l] = (x[b][l] << 7) | (x[b][l] >> 25);
  }
}

BENTO_HOT void refill_scalar(const std::uint32_t* state, std::uint8_t* block) {
  std::uint32_t x[16][8];
  for (int i = 0; i < 16; ++i) {
    for (int l = 0; l < 8; ++l) x[i][l] = state[i];
  }
  for (int l = 0; l < 8; ++l) x[12][l] += static_cast<std::uint32_t>(l);
  for (int round = 0; round < 10; ++round) {
    quarter_round(x, 0, 4, 8, 12);
    quarter_round(x, 1, 5, 9, 13);
    quarter_round(x, 2, 6, 10, 14);
    quarter_round(x, 3, 7, 11, 15);
    quarter_round(x, 0, 5, 10, 15);
    quarter_round(x, 1, 6, 11, 12);
    quarter_round(x, 2, 7, 8, 13);
    quarter_round(x, 3, 4, 9, 14);
  }
  for (int l = 0; l < 8; ++l) {
    std::uint8_t* out = block + 64 * l;
    for (int i = 0; i < 16; ++i) {
      std::uint32_t v = x[i][l] + state[i];
      if (i == 12) v += static_cast<std::uint32_t>(l);
      store32(out + 4 * i, v);
    }
  }
}

constexpr auto kRefill = refill_scalar;

#endif  // BENTO_CHACHA_SIMD
}  // namespace

ChaCha20::ChaCha20(const ChaChaKey& key, const ChaChaNonce& nonce, std::uint32_t counter) {
  state_[0] = 0x61707865;
  state_[1] = 0x3320646e;
  state_[2] = 0x79622d32;
  state_[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state_[4 + i] = load32(key.data() + 4 * i);
  state_[12] = counter;
  for (int i = 0; i < 3; ++i) state_[13 + i] = load32(nonce.data() + 4 * i);
}

BENTO_HOT void ChaCha20::refill() {
  kRefill(state_.data(), block_.data());
  state_[12] += static_cast<std::uint32_t>(kLanes);
  used_ = 0;
}

BENTO_HOT void ChaCha20::process(std::span<std::uint8_t> data) {
  std::size_t off = 0;
  const std::size_t n = data.size();
  while (off < n) {
    if (used_ == block_.size()) refill();
    const std::size_t take = std::min(block_.size() - used_, n - off);
    std::uint8_t* d = data.data() + off;
    const std::uint8_t* k = block_.data() + used_;
    std::size_t i = 0;
    // Word-at-a-time XOR; memcpy keeps it alignment- and aliasing-safe and
    // the compiler widens the loop to full vector registers.
    for (; i + 8 <= take; i += 8) {
      std::uint64_t dv;
      std::uint64_t kv;
      std::memcpy(&dv, d + i, 8);
      std::memcpy(&kv, k + i, 8);
      dv ^= kv;
      std::memcpy(d + i, &dv, 8);
    }
    for (; i < take; ++i) d[i] ^= k[i];
    used_ += take;
    off += take;
  }
}

util::Bytes ChaCha20::transform(util::ByteView data) {
  util::Bytes out(data.begin(), data.end());
  process(out);
  return out;
}

util::Bytes chacha20_xor(const ChaChaKey& key, const ChaChaNonce& nonce,
                         std::uint32_t counter, util::ByteView data) {
  ChaCha20 c(key, nonce, counter);
  return c.transform(data);
}

BENTO_HOT void chacha20_xor_inplace(const ChaChaKey& key, const ChaChaNonce& nonce,
                                    std::uint32_t counter, std::span<std::uint8_t> data) {
  ChaCha20 c(key, nonce, counter);
  c.process(data);
}

}  // namespace bento::crypto
