#include "crypto/chacha20.hpp"

#include <cstring>

namespace bento::crypto {

namespace {
std::uint32_t rotl(std::uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }

void quarter_round(std::array<std::uint32_t, 16>& s, int a, int b, int c, int d) {
  s[a] += s[b]; s[d] ^= s[a]; s[d] = rotl(s[d], 16);
  s[c] += s[d]; s[b] ^= s[c]; s[b] = rotl(s[b], 12);
  s[a] += s[b]; s[d] ^= s[a]; s[d] = rotl(s[d], 8);
  s[c] += s[d]; s[b] ^= s[c]; s[b] = rotl(s[b], 7);
}

std::uint32_t load32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 | static_cast<std::uint32_t>(p[3]) << 24;
}
}  // namespace

ChaCha20::ChaCha20(const ChaChaKey& key, const ChaChaNonce& nonce, std::uint32_t counter) {
  state_[0] = 0x61707865;
  state_[1] = 0x3320646e;
  state_[2] = 0x79622d32;
  state_[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state_[4 + i] = load32(key.data() + 4 * i);
  state_[12] = counter;
  for (int i = 0; i < 3; ++i) state_[13 + i] = load32(nonce.data() + 4 * i);
}

void ChaCha20::refill() {
  std::array<std::uint32_t, 16> x = state_;
  for (int round = 0; round < 10; ++round) {
    quarter_round(x, 0, 4, 8, 12);
    quarter_round(x, 1, 5, 9, 13);
    quarter_round(x, 2, 6, 10, 14);
    quarter_round(x, 3, 7, 11, 15);
    quarter_round(x, 0, 5, 10, 15);
    quarter_round(x, 1, 6, 11, 12);
    quarter_round(x, 2, 7, 8, 13);
    quarter_round(x, 3, 4, 9, 14);
  }
  for (int i = 0; i < 16; ++i) {
    const std::uint32_t v = x[i] + state_[i];
    block_[4 * i] = static_cast<std::uint8_t>(v);
    block_[4 * i + 1] = static_cast<std::uint8_t>(v >> 8);
    block_[4 * i + 2] = static_cast<std::uint8_t>(v >> 16);
    block_[4 * i + 3] = static_cast<std::uint8_t>(v >> 24);
  }
  state_[12] += 1;
  used_ = 0;
}

void ChaCha20::process(util::Bytes& data) {
  for (auto& byte : data) {
    if (used_ == 64) refill();
    byte ^= block_[used_++];
  }
}

util::Bytes ChaCha20::transform(util::ByteView data) {
  util::Bytes out(data.begin(), data.end());
  process(out);
  return out;
}

util::Bytes chacha20_xor(const ChaChaKey& key, const ChaChaNonce& nonce,
                         std::uint32_t counter, util::ByteView data) {
  ChaCha20 c(key, nonce, counter);
  return c.transform(data);
}

}  // namespace bento::crypto
