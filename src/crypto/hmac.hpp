// HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869).
//
// HKDF is the key-schedule workhorse: circuit hop keys, conclave channel
// keys, FS-Protect file keys, and sealing keys are all derived through it
// with distinct info labels.
#pragma once

#include <string_view>

#include "crypto/sha256.hpp"
#include "util/bytes.hpp"

namespace bento::crypto {

/// HMAC-SHA256(key, message).
Digest hmac_sha256(util::ByteView key, util::ByteView message);

/// HKDF-Extract: PRK = HMAC(salt, ikm).
Digest hkdf_extract(util::ByteView salt, util::ByteView ikm);

/// HKDF-Expand to `length` bytes (length <= 255*32).
util::Bytes hkdf_expand(const Digest& prk, util::ByteView info, std::size_t length);

/// Extract-then-expand convenience with a string label.
util::Bytes hkdf(util::ByteView ikm, util::ByteView salt, std::string_view info,
                 std::size_t length);

}  // namespace bento::crypto
