// Schnorr signatures over the simulation DH group (see dh.hpp caveats).
//
// Used wherever the real systems use Ed25519/RSA signatures: relay identity
// keys, directory-authority consensus signing, hidden-service descriptor
// signing, and the simulated Intel Attestation Service report signature.
#pragma once

#include <string>

#include "crypto/dh.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace bento::crypto {

struct Signature {
  Gp r = 0;  // commitment g^k
  Gp s = 0;  // response k + x*e mod (p-1)

  util::Bytes to_bytes() const;
  static Signature from_bytes(util::ByteView b);
};

class SigningKey {
 public:
  static SigningKey generate(util::Rng& rng);

  /// Public verification key (group element).
  Gp public_key() const { return key_.public_value; }

  /// Deterministic-nonce Schnorr signature over `message`.
  Signature sign(util::ByteView message) const;

  /// Secret-key export (see DhKeyPair::to_bytes caveat).
  util::Bytes to_bytes() const { return key_.to_bytes(); }
  static SigningKey from_bytes(util::ByteView b) {
    SigningKey k;
    k.key_ = DhKeyPair::from_bytes(b);
    return k;
  }

 private:
  DhKeyPair key_;
};

/// Verifies sig over message under the given public key.
bool verify(Gp public_key, util::ByteView message, const Signature& sig);

/// Short printable identifier for a public key (first 8 hash bytes, hex).
std::string key_fingerprint(Gp public_key);

}  // namespace bento::crypto
