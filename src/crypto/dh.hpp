// Simulation-grade Diffie-Hellman over the multiplicative group mod the
// Mersenne prime p = 2^127 - 1 (generator 3).
//
// *** NOT PRODUCTION CRYPTO. *** A 127-bit classical group offers nowhere
// near the security of curve25519; it is used here because the repository's
// goal is to reproduce Bento's *protocols* (ntor-style circuit handshakes,
// attested channels, Schnorr-signed consensus documents) with real
// asymmetric-key mechanics, while staying dependency-free. DESIGN.md §6
// records this substitution.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace bento::crypto {

/// Group element / exponent, value in [0, p).
using Gp = unsigned __int128;

inline constexpr int kGpBytes = 16;

/// p = 2^127 - 1.
Gp group_prime();

/// Modular multiplication (double-and-add; safe against 128-bit overflow).
Gp modmul(Gp a, Gp b, Gp mod);

/// Modular exponentiation by squaring.
Gp modpow(Gp base, Gp exp, Gp mod);

/// Serializes a group element as 16 big-endian bytes.
util::Bytes gp_to_bytes(Gp v);

/// Parses 16 big-endian bytes. Throws std::invalid_argument on wrong size.
Gp gp_from_bytes(util::ByteView b);

/// A DH keypair: public = g^secret mod p.
struct DhKeyPair {
  Gp secret = 0;
  Gp public_value = 0;

  static DhKeyPair generate(util::Rng& rng);

  /// Secret-key export — used only where the paper itself ships private
  /// keys around (LoadBalancer replicating a hidden service, §8).
  util::Bytes to_bytes() const;
  static DhKeyPair from_bytes(util::ByteView b);
};

/// Computes the 16-byte shared secret g^(ab) from our secret and their public.
util::Bytes dh_shared(const DhKeyPair& mine, Gp their_public);

}  // namespace bento::crypto
