#include "crypto/hmac.hpp"

#include <stdexcept>

namespace bento::crypto {

Digest hmac_sha256(util::ByteView key, util::ByteView message) {
  std::array<std::uint8_t, 64> k{};
  if (key.size() > 64) {
    Digest kd = sha256(key);
    std::copy(kd.begin(), kd.end(), k.begin());
  } else {
    std::copy(key.begin(), key.end(), k.begin());
  }
  std::array<std::uint8_t, 64> ipad{}, opad{};
  for (int i = 0; i < 64; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }
  Sha256 inner;
  inner.update(ipad);
  inner.update(message);
  Digest inner_digest = inner.finish();
  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest);
  return outer.finish();
}

Digest hkdf_extract(util::ByteView salt, util::ByteView ikm) {
  return hmac_sha256(salt, ikm);
}

util::Bytes hkdf_expand(const Digest& prk, util::ByteView info, std::size_t length) {
  if (length > 255 * 32) throw std::invalid_argument("hkdf_expand: too long");
  util::Bytes out;
  out.reserve(length);
  Digest t{};
  std::size_t t_len = 0;
  std::uint8_t counter = 1;
  while (out.size() < length) {
    util::Bytes block;
    block.insert(block.end(), t.begin(), t.begin() + static_cast<std::ptrdiff_t>(t_len));
    block.insert(block.end(), info.begin(), info.end());
    block.push_back(counter++);
    t = hmac_sha256(prk, block);
    t_len = 32;
    const std::size_t take = std::min<std::size_t>(32, length - out.size());
    out.insert(out.end(), t.begin(), t.begin() + static_cast<std::ptrdiff_t>(take));
  }
  return out;
}

util::Bytes hkdf(util::ByteView ikm, util::ByteView salt, std::string_view info,
                 std::size_t length) {
  Digest prk = hkdf_extract(salt, ikm);
  util::Bytes info_bytes(info.begin(), info.end());
  return hkdf_expand(prk, info_bytes, length);
}

}  // namespace bento::crypto
