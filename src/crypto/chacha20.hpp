// ChaCha20 stream cipher (RFC 8439).
//
// Provides the relay-crypto layers for onion encryption and the keystream
// under the AEAD. Verified against the RFC 8439 test vectors.
//
// The keystream kernel generates eight 64-byte blocks per refill with the
// quarter-round lanes interleaved (block-index innermost), so each round
// statement is one wide SIMD operation (AVX2 when the CPU has it, split
// vectors otherwise) and the blocks' dependency chains overlap. Consumption
// XORs word-at-a-time against the block-aligned keystream buffer. `process`
// works in place on a caller-owned span: the relay datapath crypts a cell
// payload with zero heap allocations.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "util/bytes.hpp"

namespace bento::crypto {

using ChaChaKey = std::array<std::uint8_t, 32>;
using ChaChaNonce = std::array<std::uint8_t, 12>;

/// Stateful cipher: repeated calls continue the keystream, so a pair of
/// instances with the same (key, nonce) forms an in-order encrypted pipe —
/// exactly how a circuit hop applies its layer to successive cells.
class ChaCha20 {
 public:
  ChaCha20(const ChaChaKey& key, const ChaChaNonce& nonce, std::uint32_t counter = 0);

  /// XORs the next keystream bytes into `data`, in place (encrypt == decrypt).
  /// Accepts any contiguous mutable byte range, including util::Bytes.
  void process(std::span<std::uint8_t> data);

  /// Convenience returning a transformed copy.
  util::Bytes transform(util::ByteView data);

 private:
  static constexpr std::size_t kLanes = 8;  // blocks generated per refill
  void refill();
  std::array<std::uint32_t, 16> state_;
  alignas(64) std::array<std::uint8_t, 64 * kLanes> block_;
  std::size_t used_ = 64 * kLanes;  // forces refill on first use
};

/// One-shot encryption with an explicit block counter.
util::Bytes chacha20_xor(const ChaChaKey& key, const ChaChaNonce& nonce,
                         std::uint32_t counter, util::ByteView data);

/// One-shot in-place encryption: no copy of `data` is made.
void chacha20_xor_inplace(const ChaChaKey& key, const ChaChaNonce& nonce,
                          std::uint32_t counter, std::span<std::uint8_t> data);

}  // namespace bento::crypto
