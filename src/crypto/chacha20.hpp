// ChaCha20 stream cipher (RFC 8439).
//
// Provides the relay-crypto layers for onion encryption and the keystream
// under the AEAD. Verified against the RFC 8439 test vector.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace bento::crypto {

using ChaChaKey = std::array<std::uint8_t, 32>;
using ChaChaNonce = std::array<std::uint8_t, 12>;

/// Stateful cipher: repeated calls continue the keystream, so a pair of
/// instances with the same (key, nonce) forms an in-order encrypted pipe —
/// exactly how a circuit hop applies its layer to successive cells.
class ChaCha20 {
 public:
  ChaCha20(const ChaChaKey& key, const ChaChaNonce& nonce, std::uint32_t counter = 0);

  /// XORs the next keystream bytes into data (encrypt == decrypt).
  void process(util::Bytes& data);

  /// Convenience returning a transformed copy.
  util::Bytes transform(util::ByteView data);

 private:
  void refill();
  std::array<std::uint32_t, 16> state_;
  std::array<std::uint8_t, 64> block_;
  std::size_t used_ = 64;  // forces refill on first use
};

/// One-shot encryption with an explicit block counter.
util::Bytes chacha20_xor(const ChaChaKey& key, const ChaChaNonce& nonce,
                         std::uint32_t counter, util::ByteView data);

}  // namespace bento::crypto
