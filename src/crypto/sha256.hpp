// SHA-256 (FIPS 180-4), implemented from scratch for the simulator.
//
// Used for relay fingerprints, cell digests, enclave measurements, and as
// the hash under HMAC/HKDF. Verified against NIST test vectors in
// tests/crypto_sha256_test.cpp.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace bento::crypto {

using Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256.
class Sha256 {
 public:
  Sha256();
  /// Absorbs more input (any contiguous byte range, zero-copy).
  void update(util::ByteView data);
  /// Finalizes and returns the digest; the object must not be reused after.
  Digest finish();
  /// Digest of everything absorbed so far, without disturbing the running
  /// state: the object stays usable and no copy of it is needed. This is
  /// the relay-datapath path — LayerCrypto commits a cell into the running
  /// digest and reads the 4-byte check value from here, allocation-free.
  Digest peek_digest() const;

 private:
  static void compress(std::array<std::uint32_t, 8>& state, const std::uint8_t* block);
  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_ = 0;
};

/// One-shot convenience.
Digest sha256(util::ByteView data);

/// Digest as an owned byte vector (handy for wire formats).
util::Bytes sha256_bytes(util::ByteView data);

}  // namespace bento::crypto
