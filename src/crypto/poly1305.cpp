#include "crypto/poly1305.hpp"

#include <cstring>

#include "util/annotations.hpp"

namespace bento::crypto {

namespace {
BENTO_HOT std::uint32_t le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}
}  // namespace

BENTO_HOT Poly1305Tag poly1305(const Poly1305Key& key, util::ByteView message) {
  // 26-bit limb representation (poly1305-donna style).
  const std::uint32_t r0 = le32(key.data()) & 0x3ffffff;
  const std::uint32_t r1 = (le32(key.data() + 3) >> 2) & 0x3ffff03;
  const std::uint32_t r2 = (le32(key.data() + 6) >> 4) & 0x3ffc0ff;
  const std::uint32_t r3 = (le32(key.data() + 9) >> 6) & 0x3f03fff;
  const std::uint32_t r4 = (le32(key.data() + 12) >> 8) & 0x00fffff;

  const std::uint32_t s1 = r1 * 5, s2 = r2 * 5, s3 = r3 * 5, s4 = r4 * 5;

  std::uint32_t h0 = 0, h1 = 0, h2 = 0, h3 = 0, h4 = 0;

  std::size_t offset = 0;
  while (offset < message.size()) {
    std::uint8_t block[17] = {0};
    const std::size_t n = std::min<std::size_t>(16, message.size() - offset);
    std::memcpy(block, message.data() + offset, n);
    block[n] = 1;  // 2^(8*n) marker
    offset += n;

    h0 += le32(block) & 0x3ffffff;
    h1 += (le32(block + 3) >> 2) & 0x3ffffff;
    h2 += (le32(block + 6) >> 4) & 0x3ffffff;
    h3 += (le32(block + 9) >> 6) & 0x3ffffff;
    h4 += (le32(block + 12) >> 8) | (static_cast<std::uint32_t>(block[16]) << 24);

    const std::uint64_t d0 = static_cast<std::uint64_t>(h0) * r0 +
                             static_cast<std::uint64_t>(h1) * s4 +
                             static_cast<std::uint64_t>(h2) * s3 +
                             static_cast<std::uint64_t>(h3) * s2 +
                             static_cast<std::uint64_t>(h4) * s1;
    std::uint64_t d1 = static_cast<std::uint64_t>(h0) * r1 +
                       static_cast<std::uint64_t>(h1) * r0 +
                       static_cast<std::uint64_t>(h2) * s4 +
                       static_cast<std::uint64_t>(h3) * s3 +
                       static_cast<std::uint64_t>(h4) * s2;
    std::uint64_t d2 = static_cast<std::uint64_t>(h0) * r2 +
                       static_cast<std::uint64_t>(h1) * r1 +
                       static_cast<std::uint64_t>(h2) * r0 +
                       static_cast<std::uint64_t>(h3) * s4 +
                       static_cast<std::uint64_t>(h4) * s3;
    std::uint64_t d3 = static_cast<std::uint64_t>(h0) * r3 +
                       static_cast<std::uint64_t>(h1) * r2 +
                       static_cast<std::uint64_t>(h2) * r1 +
                       static_cast<std::uint64_t>(h3) * r0 +
                       static_cast<std::uint64_t>(h4) * s4;
    std::uint64_t d4 = static_cast<std::uint64_t>(h0) * r4 +
                       static_cast<std::uint64_t>(h1) * r3 +
                       static_cast<std::uint64_t>(h2) * r2 +
                       static_cast<std::uint64_t>(h3) * r1 +
                       static_cast<std::uint64_t>(h4) * r0;

    // Carry propagation.
    std::uint64_t c = d0 >> 26;
    h0 = static_cast<std::uint32_t>(d0) & 0x3ffffff;
    d1 += c;
    c = d1 >> 26;
    h1 = static_cast<std::uint32_t>(d1) & 0x3ffffff;
    d2 += c;
    c = d2 >> 26;
    h2 = static_cast<std::uint32_t>(d2) & 0x3ffffff;
    d3 += c;
    c = d3 >> 26;
    h3 = static_cast<std::uint32_t>(d3) & 0x3ffffff;
    d4 += c;
    c = d4 >> 26;
    h4 = static_cast<std::uint32_t>(d4) & 0x3ffffff;
    h0 += static_cast<std::uint32_t>(c) * 5;
    c = h0 >> 26;
    h0 &= 0x3ffffff;
    h1 += static_cast<std::uint32_t>(c);
  }

  // Final reduction mod 2^130 - 5.
  std::uint32_t c = h1 >> 26;
  h1 &= 0x3ffffff;
  h2 += c;
  c = h2 >> 26;
  h2 &= 0x3ffffff;
  h3 += c;
  c = h3 >> 26;
  h3 &= 0x3ffffff;
  h4 += c;
  c = h4 >> 26;
  h4 &= 0x3ffffff;
  h0 += c * 5;
  c = h0 >> 26;
  h0 &= 0x3ffffff;
  h1 += c;

  // Compute h + -p and select.
  std::uint32_t g0 = h0 + 5;
  c = g0 >> 26;
  g0 &= 0x3ffffff;
  std::uint32_t g1 = h1 + c;
  c = g1 >> 26;
  g1 &= 0x3ffffff;
  std::uint32_t g2 = h2 + c;
  c = g2 >> 26;
  g2 &= 0x3ffffff;
  std::uint32_t g3 = h3 + c;
  c = g3 >> 26;
  g3 &= 0x3ffffff;
  std::uint32_t g4 = h4 + c - (1u << 26);

  const std::uint32_t mask = (g4 >> 31) - 1;  // all-ones if h >= p
  h0 = (h0 & ~mask) | (g0 & mask);
  h1 = (h1 & ~mask) | (g1 & mask);
  h2 = (h2 & ~mask) | (g2 & mask);
  h3 = (h3 & ~mask) | (g3 & mask);
  h4 = (h4 & ~mask) | (g4 & mask);

  // h = h % 2^128, then add s.
  const std::uint32_t t0 = (h0 | (h1 << 26));
  const std::uint32_t t1 = ((h1 >> 6) | (h2 << 20));
  const std::uint32_t t2 = ((h2 >> 12) | (h3 << 14));
  const std::uint32_t t3 = ((h3 >> 18) | (h4 << 8));

  std::uint64_t f = static_cast<std::uint64_t>(t0) + le32(key.data() + 16);
  Poly1305Tag tag{};
  tag[0] = static_cast<std::uint8_t>(f);
  tag[1] = static_cast<std::uint8_t>(f >> 8);
  tag[2] = static_cast<std::uint8_t>(f >> 16);
  tag[3] = static_cast<std::uint8_t>(f >> 24);
  f = (f >> 32) + static_cast<std::uint64_t>(t1) + le32(key.data() + 20);
  tag[4] = static_cast<std::uint8_t>(f);
  tag[5] = static_cast<std::uint8_t>(f >> 8);
  tag[6] = static_cast<std::uint8_t>(f >> 16);
  tag[7] = static_cast<std::uint8_t>(f >> 24);
  f = (f >> 32) + static_cast<std::uint64_t>(t2) + le32(key.data() + 24);
  tag[8] = static_cast<std::uint8_t>(f);
  tag[9] = static_cast<std::uint8_t>(f >> 8);
  tag[10] = static_cast<std::uint8_t>(f >> 16);
  tag[11] = static_cast<std::uint8_t>(f >> 24);
  f = (f >> 32) + static_cast<std::uint64_t>(t3) + le32(key.data() + 28);
  tag[12] = static_cast<std::uint8_t>(f);
  tag[13] = static_cast<std::uint8_t>(f >> 8);
  tag[14] = static_cast<std::uint8_t>(f >> 16);
  tag[15] = static_cast<std::uint8_t>(f >> 24);
  return tag;
}

namespace {
Poly1305Tag chapoly_tag(const ChaChaKey& key, const ChaChaNonce& nonce,
                        util::ByteView aad, util::ByteView ciphertext) {
  // One-time key = first 32 bytes of the ChaCha20 block with counter 0.
  // XOR-ing keystream into a zeroed array reads the keystream directly;
  // no temporary buffers.
  Poly1305Key otk{};
  chacha20_xor_inplace(key, nonce, 0, otk);

  auto pad16 = [](util::Bytes& b) {
    while (b.size() % 16 != 0) b.push_back(0);
  };
  util::Bytes mac_data(aad.begin(), aad.end());
  pad16(mac_data);
  util::append(mac_data, ciphertext);
  pad16(mac_data);
  for (int i = 0; i < 8; ++i) {
    mac_data.push_back(static_cast<std::uint8_t>(aad.size() >> (8 * i)));
  }
  for (int i = 0; i < 8; ++i) {
    mac_data.push_back(static_cast<std::uint8_t>(ciphertext.size() >> (8 * i)));
  }
  return poly1305(otk, mac_data);
}
}  // namespace

util::Bytes chapoly_seal(const ChaChaKey& key, const ChaChaNonce& nonce,
                         util::ByteView aad, util::ByteView plaintext) {
  util::Bytes out;
  out.reserve(plaintext.size() + 16);
  out.assign(plaintext.begin(), plaintext.end());
  chacha20_xor_inplace(key, nonce, 1, out);
  const Poly1305Tag tag = chapoly_tag(key, nonce, aad, out);
  out.insert(out.end(), tag.begin(), tag.end());
  return out;
}

std::optional<util::Bytes> chapoly_open(const ChaChaKey& key,
                                        const ChaChaNonce& nonce,
                                        util::ByteView aad, util::ByteView sealed) {
  if (sealed.size() < 16) return std::nullopt;
  util::ByteView ciphertext = sealed.first(sealed.size() - 16);
  const Poly1305Tag expect = chapoly_tag(key, nonce, aad, ciphertext);
  if (!util::ct_equal(sealed.last(16),
                      util::ByteView(expect.data(), expect.size()))) {
    return std::nullopt;
  }
  util::Bytes plaintext(ciphertext.begin(), ciphertext.end());
  chacha20_xor_inplace(key, nonce, 1, plaintext);
  return plaintext;
}

}  // namespace bento::crypto
