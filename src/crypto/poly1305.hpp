// Poly1305 one-time authenticator and the ChaCha20-Poly1305 AEAD
// (RFC 8439), verified against the RFC test vectors.
//
// This is the repository's standards-faithful AEAD; the attested secure
// channel (tee/conclave.hpp) uses it. The simpler encrypt-then-HMAC AEAD
// in aead.hpp remains for bulk uses (sealing, FS-Protect) where a 32-byte
// MAC is fine.
#pragma once

#include <array>
#include <optional>

#include "crypto/chacha20.hpp"
#include "util/bytes.hpp"

namespace bento::crypto {

using Poly1305Key = std::array<std::uint8_t, 32>;  // r || s
using Poly1305Tag = std::array<std::uint8_t, 16>;

/// One-shot Poly1305 MAC. The key must never authenticate two messages.
Poly1305Tag poly1305(const Poly1305Key& key, util::ByteView message);

/// RFC 8439 AEAD_CHACHA20_POLY1305: returns ciphertext || 16-byte tag.
util::Bytes chapoly_seal(const ChaChaKey& key, const ChaChaNonce& nonce,
                         util::ByteView aad, util::ByteView plaintext);

/// Opens a chapoly_seal buffer; nullopt on authentication failure.
std::optional<util::Bytes> chapoly_open(const ChaChaKey& key,
                                        const ChaChaNonce& nonce,
                                        util::ByteView aad, util::ByteView sealed);

}  // namespace bento::crypto
