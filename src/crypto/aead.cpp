#include "crypto/aead.hpp"

#include <stdexcept>

#include "crypto/hmac.hpp"
#include "util/serialize.hpp"

namespace bento::crypto {

AeadKey AeadKey::from_bytes(util::ByteView material) {
  if (material.size() != kAeadKeyLen) {
    throw std::invalid_argument("AeadKey::from_bytes: need 64 bytes");
  }
  AeadKey k;
  std::copy(material.begin(), material.begin() + 32, k.enc.begin());
  std::copy(material.begin() + 32, material.end(), k.mac.begin());
  return k;
}

namespace {
Digest compute_tag(const AeadKey& key, const ChaChaNonce& nonce, util::ByteView aad,
                   util::ByteView ciphertext) {
  util::Writer w;
  w.blob(aad);
  w.raw(util::ByteView(nonce.data(), nonce.size()));
  w.blob(ciphertext);
  return hmac_sha256(key.mac, w.data());
}
}  // namespace

util::Bytes aead_seal(const AeadKey& key, const ChaChaNonce& nonce,
                      util::ByteView aad, util::ByteView plaintext) {
  // Build the output buffer once (ciphertext + tag room) and crypt in place
  // instead of round-tripping the plaintext through a second copy.
  util::Bytes out;
  out.reserve(plaintext.size() + kAeadTagLen);
  out.assign(plaintext.begin(), plaintext.end());
  chacha20_xor_inplace(key.enc, nonce, 1, out);
  const Digest tag = compute_tag(key, nonce, aad, out);
  out.insert(out.end(), tag.begin(), tag.begin() + kAeadTagLen);
  return out;
}

std::optional<util::Bytes> aead_open(const AeadKey& key, const ChaChaNonce& nonce,
                                     util::ByteView aad, util::ByteView sealed) {
  if (sealed.size() < kAeadTagLen) return std::nullopt;
  util::ByteView ciphertext = sealed.first(sealed.size() - kAeadTagLen);
  util::ByteView tag = sealed.last(kAeadTagLen);
  const Digest expect = compute_tag(key, nonce, aad, ciphertext);
  if (!util::ct_equal(tag, util::ByteView(expect.data(), kAeadTagLen))) {
    return std::nullopt;
  }
  util::Bytes plaintext(ciphertext.begin(), ciphertext.end());
  chacha20_xor_inplace(key.enc, nonce, 1, plaintext);
  return plaintext;
}

ChaChaNonce nonce_from_counter(std::uint64_t counter) {
  ChaChaNonce n{};
  for (int i = 0; i < 8; ++i) n[4 + i] = static_cast<std::uint8_t>(counter >> (8 * i));
  return n;
}

}  // namespace bento::crypto
