// Authenticated encryption: ChaCha20 + HMAC-SHA256, encrypt-then-MAC.
//
// The paper's implementation rides on TLS / Tor's AES-CTR + digests; for the
// simulator we use an encrypt-then-MAC composition whose security argument
// is standard. The tag covers (aad || nonce || ciphertext || lengths).
// Ciphertext layout: ciphertext || 16-byte truncated tag.
#pragma once

#include <optional>

#include "crypto/chacha20.hpp"
#include "util/bytes.hpp"

namespace bento::crypto {

inline constexpr std::size_t kAeadTagLen = 16;
inline constexpr std::size_t kAeadKeyLen = 64;  // 32 cipher + 32 mac

/// AEAD key material: first 32 bytes encrypt, last 32 bytes authenticate.
struct AeadKey {
  ChaChaKey enc{};
  std::array<std::uint8_t, 32> mac{};

  /// Splits a 64-byte buffer (e.g. HKDF output) into an AeadKey.
  static AeadKey from_bytes(util::ByteView material);
};

/// Seals plaintext; output is ciphertext || tag.
util::Bytes aead_seal(const AeadKey& key, const ChaChaNonce& nonce,
                      util::ByteView aad, util::ByteView plaintext);

/// Opens a sealed buffer; nullopt on any authentication failure.
std::optional<util::Bytes> aead_open(const AeadKey& key, const ChaChaNonce& nonce,
                                     util::ByteView aad, util::ByteView sealed);

/// Builds a 12-byte nonce from a 64-bit sequence number (low 8 bytes LE).
ChaChaNonce nonce_from_counter(std::uint64_t counter);

}  // namespace bento::crypto
