#include "crypto/sign.hpp"

#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "util/serialize.hpp"

namespace bento::crypto {

namespace {
// Hash-to-exponent: e = H(r || pk || m) reduced mod (p-1).
Gp challenge(Gp r, Gp pk, util::ByteView message) {
  util::Writer w;
  w.raw(gp_to_bytes(r));
  w.raw(gp_to_bytes(pk));
  w.blob(message);
  const Digest d = sha256(w.data());
  Gp e = 0;
  for (int i = 0; i < 16; ++i) e = (e << 8) | d[static_cast<std::size_t>(i)];
  return e % (group_prime() - 1);
}
}  // namespace

util::Bytes Signature::to_bytes() const {
  util::Bytes out = gp_to_bytes(r);
  util::append(out, gp_to_bytes(s));
  return out;
}

Signature Signature::from_bytes(util::ByteView b) {
  if (b.size() != 2 * kGpBytes) throw std::invalid_argument("Signature::from_bytes: size");
  Signature sig;
  sig.r = gp_from_bytes(b.first(kGpBytes));
  sig.s = gp_from_bytes(b.subspan(kGpBytes));
  return sig;
}

SigningKey SigningKey::generate(util::Rng& rng) {
  SigningKey k;
  k.key_ = DhKeyPair::generate(rng);
  return k;
}

Signature SigningKey::sign(util::ByteView message) const {
  const Gp p = group_prime();
  const Gp order = p - 1;
  // Deterministic nonce (RFC 6979 spirit): k = H(secret || m) mod order.
  util::Writer w;
  w.raw(gp_to_bytes(key_.secret));
  w.blob(message);
  const Digest d = hmac_sha256(util::to_bytes("bento-schnorr-nonce"), w.data());
  Gp k = 0;
  for (int i = 0; i < 16; ++i) k = (k << 8) | d[static_cast<std::size_t>(i)];
  k = 2 + k % (order - 2);

  Signature sig;
  sig.r = modpow(3, k, p);
  const Gp e = challenge(sig.r, key_.public_value, message);
  // s = k + x*e mod (p-1)
  sig.s = (k + modmul(key_.secret, e, order)) % order;
  return sig;
}

bool verify(Gp public_key, util::ByteView message, const Signature& sig) {
  const Gp p = group_prime();
  if (public_key <= 1 || public_key >= p) return false;
  if (sig.r <= 1 || sig.r >= p || sig.s >= p - 1) return false;
  const Gp e = challenge(sig.r, public_key, message);
  const Gp lhs = modpow(3, sig.s, p);
  const Gp rhs = modmul(sig.r, modpow(public_key, e, p), p);
  return lhs == rhs;
}

std::string key_fingerprint(Gp public_key) {
  const Digest d = sha256(gp_to_bytes(public_key));
  return util::to_hex(util::ByteView(d.data(), 8));
}

}  // namespace bento::crypto
