#include "crypto/dh.hpp"

#include <stdexcept>

namespace bento::crypto {

Gp group_prime() { return (static_cast<Gp>(1) << 127) - 1; }

Gp modmul(Gp a, Gp b, Gp mod) {
  a %= mod;
  b %= mod;
  Gp result = 0;
  while (b > 0) {
    if (b & 1) {
      result += a;
      if (result >= mod) result -= mod;
    }
    a <<= 1;
    if (a >= mod) a -= mod;
    b >>= 1;
  }
  return result;
}

Gp modpow(Gp base, Gp exp, Gp mod) {
  Gp result = 1 % mod;
  base %= mod;
  while (exp > 0) {
    if (exp & 1) result = modmul(result, base, mod);
    base = modmul(base, base, mod);
    exp >>= 1;
  }
  return result;
}

util::Bytes gp_to_bytes(Gp v) {
  util::Bytes out(kGpBytes);
  for (int i = kGpBytes - 1; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v);
    v >>= 8;
  }
  return out;
}

Gp gp_from_bytes(util::ByteView b) {
  if (b.size() != kGpBytes) throw std::invalid_argument("gp_from_bytes: need 16 bytes");
  Gp v = 0;
  for (std::uint8_t byte : b) v = (v << 8) | byte;
  return v;
}

DhKeyPair DhKeyPair::generate(util::Rng& rng) {
  const Gp p = group_prime();
  DhKeyPair kp;
  // Secret in [2, p-2].
  Gp s = (static_cast<Gp>(rng.next_u64()) << 64) | rng.next_u64();
  kp.secret = 2 + s % (p - 3);
  kp.public_value = modpow(3, kp.secret, p);
  return kp;
}

util::Bytes DhKeyPair::to_bytes() const {
  util::Bytes out = gp_to_bytes(secret);
  util::append(out, gp_to_bytes(public_value));
  return out;
}

DhKeyPair DhKeyPair::from_bytes(util::ByteView b) {
  if (b.size() != 2 * kGpBytes) {
    throw std::invalid_argument("DhKeyPair::from_bytes: size");
  }
  DhKeyPair kp;
  kp.secret = gp_from_bytes(b.first(kGpBytes));
  kp.public_value = gp_from_bytes(b.subspan(kGpBytes));
  return kp;
}

util::Bytes dh_shared(const DhKeyPair& mine, Gp their_public) {
  const Gp p = group_prime();
  if (their_public <= 1 || their_public >= p) {
    throw std::invalid_argument("dh_shared: public value out of range");
  }
  return gp_to_bytes(modpow(their_public, mine.secret, p));
}

}  // namespace bento::crypto
