#include "wf/pageload.hpp"

#include <memory>

namespace bento::wf {

namespace {
struct LoadState {
  tor::CircuitOrigin* circuit;
  const SiteModel* site;
  std::function<void(PageLoadResult)> done;
  int max_concurrent;
  PageLoadResult result;
  std::size_t next_resource = 0;
  int in_flight = 0;
  bool failed = false;

  void fetch(const std::string& path, std::function<void(bool)> finished);
  void pump();
};

void LoadState::fetch(const std::string& path, std::function<void(bool)> finished) {
  tor::Stream::Callbacks cbs;
  auto finished_shared = std::make_shared<std::function<void(bool)>>(std::move(finished));
  cbs.on_data = [this](util::ByteView data) { result.bytes += data.size(); };
  cbs.on_end = [finished_shared] { (*finished_shared)(true); };
  tor::Stream* stream =
      circuit->open_stream({site->addr, 80}, std::move(cbs));
  stream->set_on_connected([stream, path] {
    stream->send(util::to_bytes("GET " + path + "\n"));
  });
}

void LoadState::pump() {
  if (failed) return;
  while (in_flight < max_concurrent && next_resource < site->resource_bytes.size()) {
    const std::string path = "/r" + std::to_string(next_resource++);
    ++in_flight;
    fetch(path, [this](bool ok) {
      --in_flight;
      if (!ok) failed = true;
      pump();
    });
  }
  if (in_flight == 0 && next_resource >= site->resource_bytes.size()) {
    result.ok = !failed;
    if (done) {
      auto cb = std::move(done);
      done = nullptr;
      cb(result);
    }
  }
}
}  // namespace

void browse_page(tor::CircuitOrigin& circuit, const SiteModel& site,
                 double time_now_seconds, std::function<void(PageLoadResult)> done,
                 int max_concurrent_streams) {
  auto state = std::make_shared<LoadState>();
  state->circuit = &circuit;
  state->site = &site;
  state->max_concurrent = max_concurrent_streams;
  state->result.started = time_now_seconds;
  // Keep the state alive through the callback chain.
  state->done = [state, done = std::move(done)](PageLoadResult result) mutable {
    done(result);
  };
  // Index first, then resources (browsers discover resources from the
  // document).
  state->fetch("/", [state](bool ok) {
    if (!ok) {
      state->failed = true;
      state->result.ok = false;
      auto cb = std::move(state->done);
      state->done = nullptr;
      if (cb) cb(state->result);
      return;
    }
    state->pump();
  });
}

}  // namespace bento::wf
