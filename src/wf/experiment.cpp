#include "wf/experiment.hpp"

#include <map>

#include "core/world.hpp"
#include "functions/library.hpp"
#include "wf/pageload.hpp"
#include "wf/trace.hpp"

namespace bento::wf {

const char* to_string(Defense d) {
  switch (d) {
    case Defense::None: return "None (unmodified Tor)";
    case Defense::Browser0: return "Browser, 0MB padding";
    case Defense::Browser1MB: return "Browser, 1MB padding";
    case Defense::Browser7MB: return "Browser, 7MB padding";
  }
  return "?";
}

std::size_t padding_bytes(Defense d) {
  switch (d) {
    case Defense::None:
    case Defense::Browser0: return 0;
    case Defense::Browser1MB: return 1'000'000;
    case Defense::Browser7MB: return 7'000'000;
  }
  return 0;
}

namespace {

/// One standard-Tor visit: fresh circuit, browser-style page load.
bool visit_standard(core::BentoWorld& world, tor::OnionProxy& victim,
                    const SiteModel& site) {
  bool ok = false;
  tor::PathConstraints constraints;
  constraints.exit_to = tor::Endpoint{site.addr, 80};
  tor::CircuitOrigin* circuit = nullptr;
  victim.build_circuit(constraints, [&](tor::CircuitOrigin* c) { circuit = c; });
  world.run();
  if (circuit == nullptr) return false;
  browse_page(*circuit, site, world.sim().now().seconds(),
              [&](PageLoadResult result) { ok = result.ok; });
  world.run();
  circuit->destroy();
  victim.forget(circuit);
  world.run();
  return ok;
}

/// One Bento-Browser visit: install + invoke, single padded download. The
/// recorded trace covers install..download; the container shutdown and
/// circuit teardown happen in cleanup() after the recorder stops.
struct BrowserVisit {
  bool ok = false;
  std::shared_ptr<core::BentoConnection> conn;
  std::optional<core::TokenPair> tokens;
};

BrowserVisit visit_browser(core::BentoWorld& world, core::BentoWorld::Client& client,
                           const std::string& box, const SiteModel& site,
                           std::size_t padding) {
  BrowserVisit visit;
  client.bento->connect(box, [&](std::shared_ptr<core::BentoConnection> c) {
    visit.conn = std::move(c);
  });
  world.run();
  if (visit.conn == nullptr) return visit;

  bool output_seen = false;
  bool output_ok = false;
  visit.conn->set_output_handler([&](util::Bytes out) {
    output_seen = true;
    output_ok = !(out.size() > 3 && out[0] == 'E' && out[1] == 'R' && out[2] == 'R');
  });
  visit.conn->spawn(core::kImagePythonOpSgx, [&](bool s, std::string) {
    if (!s) return;
    visit.conn->upload(
        functions::browser_manifest(), functions::browser_source(), "", {},
        [&](std::optional<core::TokenPair> tokens, std::string) {
          if (!tokens.has_value()) return;
          visit.tokens = std::move(tokens);
          const std::string url = "http://" + tor::format_addr(site.addr) + "/bundle";
          visit.conn->invoke(visit.tokens->invocation.bytes(),
                             util::to_bytes(url + " " + std::to_string(padding)));
        });
  });
  world.run();
  visit.ok = output_seen && output_ok;
  return visit;
}

/// Post-trace cleanup: reclaim the container (else the box's container cap
/// fills after ~64 visits) and tear the circuit down.
void cleanup_browser_visit(core::BentoWorld& world, BrowserVisit& visit) {
  if (visit.conn == nullptr) return;
  if (visit.tokens.has_value()) {
    visit.conn->shutdown(visit.tokens->shutdown.bytes(), [](bool) {});
    world.run();
  }
  visit.conn->close();
  world.run();
}

}  // namespace

std::vector<Example> collect_dataset(
    const std::vector<SiteModel>& sites, const CollectOptions& options,
    const std::function<void(int done, int total)>& progress) {
  core::BentoWorldOptions world_options;
  world_options.testbed.seed = options.seed;
  world_options.testbed.guards = options.guards;
  world_options.testbed.middles = options.middles;
  world_options.testbed.exits = options.exits;
  world_options.testbed.relay_bandwidth = options.relay_bandwidth;
  core::BentoWorld world(world_options);
  world.start();

  // One web server per site. Under the Browser defense the function fetches
  // "/bundle": the whole page as one document (the web client runs at the
  // exit; sub-resource dynamics never cross the victim's link).
  std::map<tor::Addr, const SiteModel*> by_addr;
  for (const auto& site : sites) by_addr[site.addr] = &site;
  auto visit_counter = std::make_shared<std::map<tor::Addr, std::uint64_t>>();
  const double noise = options.size_noise;
  std::uint64_t server_seed = options.seed * 977;
  for (const auto& site : sites) {
    const SiteModel* model = &site;
    auto& server = world.bed().add_web_server(
        site.addr,
        [model, visit_counter, noise](const std::string& path)
            -> std::optional<util::Bytes> {
          const std::uint64_t visit = (*visit_counter)[model->addr];
          if (path == "/bundle") {
            // Whole page in one response (index + all resources).
            util::Bytes all = model->body_for("/", visit, noise);
            for (std::size_t r = 0; r < model->resource_bytes.size(); ++r) {
              util::append(all,
                           model->body_for("/r" + std::to_string(r), visit, noise));
            }
            return all;
          }
          return model->body_for(path, visit, noise);
        });
    // Live web servers answer with variable think time; this is what keeps
    // deterministic fetch-duration gaps from becoming a fingerprint the
    // real attack never had.
    server.set_think_time(util::Duration::seconds(options.think_min),
                          util::Duration::seconds(options.think_max),
                          ++server_seed);
  }

  auto client = world.make_client("victim");
  TraceRecorder recorder(world.sim(), world.bed().net(), client.proxy->node());

  // Pick one exit Bento box for the Browser configurations.
  std::string exit_box;
  for (const auto& relay : world.bed().consensus().relays) {
    if (relay.flags.exit) exit_box = relay.fingerprint();
  }

  std::vector<Example> dataset;
  const int total = static_cast<int>(sites.size()) * options.visits_per_site;
  int done = 0;
  for (int visit = 0; visit < options.visits_per_site; ++visit) {
    for (std::size_t s = 0; s < sites.size(); ++s) {
      (*visit_counter)[sites[s].addr] =
          static_cast<std::uint64_t>(visit) * 1315423911u + s;
      recorder.start();
      bool ok;
      BrowserVisit visit;
      if (options.defense == Defense::None) {
        ok = visit_standard(world, *client.proxy, sites[s]);
      } else {
        visit = visit_browser(world, client, exit_box, sites[s],
                              padding_bytes(options.defense));
        ok = visit.ok;
      }
      Trace trace = recorder.stop(static_cast<int>(s));
      if (options.defense != Defense::None) cleanup_browser_visit(world, visit);
      if (ok && !trace.events.empty()) {
        dataset.push_back({extract_features(trace), trace.label});
      }
      ++done;
      if (progress) progress(done, total);
    }
  }
  return dataset;
}

AttackResult evaluate_attack(const std::vector<Example>& data, int classes,
                             int train_per_class, std::uint64_t seed) {
  std::map<int, int> seen;
  std::vector<Example> train, test;
  for (const auto& ex : data) {
    if (seen[ex.label]++ < train_per_class) {
      train.push_back(ex);
    } else {
      test.push_back(ex);
    }
  }
  AttackResult result;
  result.train_examples = static_cast<int>(train.size());
  result.test_examples = static_cast<int>(test.size());
  if (train.empty() || test.empty()) return result;

  util::Rng rng(seed);
  KnnClassifier knn(1);  // 1-NN is the stronger WF attacker at few shots
  knn.train(train, rng);
  result.knn_accuracy = knn.accuracy(test);

  MlpClassifier mlp(classes);
  mlp.train(train, rng);
  result.mlp_accuracy = mlp.accuracy(test);
  return result;
}

}  // namespace bento::wf
