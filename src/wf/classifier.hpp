// Website-fingerprinting classifiers, standing in for the Deep
// Fingerprinting CNN of [73] (see DESIGN.md §2 for why this substitution
// preserves Table 1's behaviour).
//
// Two attackers of different strength:
//   * KnnClassifier — k-nearest-neighbours over normalized features
//     (Wang et al.-style);
//   * MlpClassifier — a one-hidden-layer softmax network trained with
//     minibatch SGD, the strongest attacker in this repository.
#pragma once

#include <memory>
#include <vector>

#include "util/rng.hpp"
#include "wf/features.hpp"

namespace bento::wf {

struct Example {
  Features x;
  int label = 0;
};

class Classifier {
 public:
  virtual ~Classifier() = default;
  virtual void train(const std::vector<Example>& data, util::Rng& rng) = 0;
  virtual int predict(const Features& x) const = 0;

  /// Fraction of correct predictions.
  double accuracy(const std::vector<Example>& data) const;
};

class KnnClassifier final : public Classifier {
 public:
  explicit KnnClassifier(int k = 3) : k_(k) {}
  void train(const std::vector<Example>& data, util::Rng& rng) override;
  int predict(const Features& x) const override;

 private:
  int k_;
  Normalizer normalizer_;
  std::vector<Example> train_;  // normalized
};

class MlpClassifier final : public Classifier {
 public:
  MlpClassifier(int classes, int hidden = 96, int epochs = 60,
                double learning_rate = 0.03)
      : classes_(classes), hidden_(hidden), epochs_(epochs), lr_(learning_rate) {}

  void train(const std::vector<Example>& data, util::Rng& rng) override;
  int predict(const Features& x) const override;

 private:
  std::vector<double> forward(const Features& x, std::vector<double>* hidden_out) const;

  int classes_;
  int hidden_;
  int epochs_;
  double lr_;
  std::size_t input_ = 0;
  Normalizer normalizer_;
  // Row-major weights: w1[h*input + i], w2[c*hidden + h].
  std::vector<double> w1_, b1_, w2_, b2_;
};

}  // namespace bento::wf
