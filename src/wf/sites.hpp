// Synthetic-but-structured website models (substitute for the Alexa top
// sites of paper §7.3; see DESIGN.md §2).
//
// Each site is a web server address plus a page structure — index document
// and a set of sub-resources with sizes — drawn once per site from wide
// distributions (so sites are individually distinctive, the property
// website fingerprinting exploits) plus per-visit noise (so the attack has
// to generalize, not memoize).
#pragma once

#include <string>
#include <vector>

#include "tor/address.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace bento::wf {

struct SiteModel {
  std::string domain;
  tor::Addr addr = 0;
  std::size_t index_bytes = 30'000;
  std::vector<std::size_t> resource_bytes;
  /// Fraction of zlite-incompressible content (0 = all compressible).
  double entropy = 0.5;

  std::size_t total_bytes() const;

  /// Body for `path`: "/" is the index, "/rN" the Nth resource. Content is
  /// a deterministic mix of repetitive and pseudo-random bytes so that
  /// compression ratios differ per site. `visit_seed` adds per-visit
  /// variation of ±noise to sizes.
  util::Bytes body_for(const std::string& path, std::uint64_t visit_seed,
                       double noise) const;
};

/// `count` distinctive "popular sites" (index 0..count-1), addresses
/// 20.<i>.0.1.
std::vector<SiteModel> make_popular_sites(int count, util::Rng& rng);

/// The five Table-2 domains with sizes calibrated so the simulated
/// download times land near the paper's (see bench/table2).
std::vector<SiteModel> table2_sites();

}  // namespace bento::wf
