#include "wf/classifier.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace bento::wf {

double Classifier::accuracy(const std::vector<Example>& data) const {
  if (data.empty()) return 0;
  int correct = 0;
  for (const auto& ex : data) {
    if (predict(ex.x) == ex.label) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

void KnnClassifier::train(const std::vector<Example>& data, util::Rng&) {
  std::vector<Features> rows;
  rows.reserve(data.size());
  for (const auto& ex : data) rows.push_back(ex.x);
  normalizer_ = Normalizer::fit(rows);
  train_.clear();
  train_.reserve(data.size());
  for (const auto& ex : data) {
    train_.push_back({normalizer_.apply(ex.x), ex.label});
  }
}

int KnnClassifier::predict(const Features& x) const {
  if (train_.empty()) return -1;
  const Features q = normalizer_.apply(x);
  // Partial sort of squared distances.
  std::vector<std::pair<double, int>> dists;
  dists.reserve(train_.size());
  for (const auto& ex : train_) {
    double d = 0;
    for (std::size_t i = 0; i < q.size(); ++i) {
      const double diff = q[i] - ex.x[i];
      d += diff * diff;
    }
    dists.emplace_back(d, ex.label);
  }
  const std::size_t k = std::min<std::size_t>(static_cast<std::size_t>(k_),
                                              dists.size());
  std::partial_sort(dists.begin(), dists.begin() + static_cast<std::ptrdiff_t>(k),
                    dists.end());
  std::map<int, int> votes;
  for (std::size_t i = 0; i < k; ++i) votes[dists[i].second]++;
  int best_label = dists[0].second;
  int best_votes = 0;
  for (const auto& [label, count] : votes) {
    if (count > best_votes) {
      best_votes = count;
      best_label = label;
    }
  }
  return best_label;
}

void MlpClassifier::train(const std::vector<Example>& data, util::Rng& rng) {
  if (data.empty()) return;
  input_ = data[0].x.size();
  std::vector<Features> rows;
  rows.reserve(data.size());
  for (const auto& ex : data) rows.push_back(ex.x);
  normalizer_ = Normalizer::fit(rows);

  std::vector<Example> train;
  train.reserve(data.size());
  for (const auto& ex : data) train.push_back({normalizer_.apply(ex.x), ex.label});

  const std::size_t h = static_cast<std::size_t>(hidden_);
  const std::size_t c = static_cast<std::size_t>(classes_);
  auto init = [&](std::size_t n, double scale) {
    std::vector<double> v(n);
    for (auto& w : v) w = rng.gaussian(0.0, scale);
    return v;
  };
  w1_ = init(h * input_, std::sqrt(2.0 / static_cast<double>(input_)));
  b1_.assign(h, 0.0);
  w2_ = init(c * h, std::sqrt(2.0 / static_cast<double>(h)));
  b2_.assign(c, 0.0);

  std::vector<std::size_t> order(train.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (int epoch = 0; epoch < epochs_; ++epoch) {
    rng.shuffle(order);
    const double lr = lr_ / (1.0 + 0.05 * epoch);
    for (std::size_t idx : order) {
      const Example& ex = train[idx];
      // Forward.
      std::vector<double> hidden(h);
      for (std::size_t j = 0; j < h; ++j) {
        double z = b1_[j];
        const double* wrow = &w1_[j * input_];
        for (std::size_t i = 0; i < input_; ++i) z += wrow[i] * ex.x[i];
        hidden[j] = z > 0 ? z : 0;  // ReLU
      }
      std::vector<double> logits(c);
      double max_logit = -1e300;
      for (std::size_t k = 0; k < c; ++k) {
        double z = b2_[k];
        const double* wrow = &w2_[k * h];
        for (std::size_t j = 0; j < h; ++j) z += wrow[j] * hidden[j];
        logits[k] = z;
        max_logit = std::max(max_logit, z);
      }
      double denom = 0;
      for (auto& z : logits) {
        z = std::exp(z - max_logit);
        denom += z;
      }
      // Backward (cross-entropy): dlogit = p - onehot.
      std::vector<double> dlogits(c);
      for (std::size_t k = 0; k < c; ++k) {
        dlogits[k] = logits[k] / denom -
                     (static_cast<int>(k) == ex.label ? 1.0 : 0.0);
      }
      std::vector<double> dhidden(h, 0.0);
      for (std::size_t k = 0; k < c; ++k) {
        double* wrow = &w2_[k * h];
        const double g = dlogits[k];
        for (std::size_t j = 0; j < h; ++j) {
          dhidden[j] += g * wrow[j];
          wrow[j] -= lr * g * hidden[j];
        }
        b2_[k] -= lr * g;
      }
      for (std::size_t j = 0; j < h; ++j) {
        if (hidden[j] <= 0) continue;  // ReLU gate
        double* wrow = &w1_[j * input_];
        const double g = dhidden[j];
        for (std::size_t i = 0; i < input_; ++i) wrow[i] -= lr * g * ex.x[i];
        b1_[j] -= lr * g;
      }
    }
  }
}

std::vector<double> MlpClassifier::forward(const Features& x,
                                           std::vector<double>* hidden_out) const {
  const std::size_t h = static_cast<std::size_t>(hidden_);
  const std::size_t c = static_cast<std::size_t>(classes_);
  std::vector<double> hidden(h);
  for (std::size_t j = 0; j < h; ++j) {
    double z = b1_[j];
    const double* wrow = &w1_[j * input_];
    for (std::size_t i = 0; i < input_; ++i) z += wrow[i] * x[i];
    hidden[j] = z > 0 ? z : 0;
  }
  std::vector<double> logits(c);
  for (std::size_t k = 0; k < c; ++k) {
    double z = b2_[k];
    const double* wrow = &w2_[k * h];
    for (std::size_t j = 0; j < h; ++j) z += wrow[j] * hidden[j];
    logits[k] = z;
  }
  if (hidden_out != nullptr) *hidden_out = std::move(hidden);
  return logits;
}

int MlpClassifier::predict(const Features& x) const {
  if (w1_.empty()) return -1;
  const Features q = normalizer_.apply(x);
  const auto logits = forward(q, nullptr);
  return static_cast<int>(std::max_element(logits.begin(), logits.end()) -
                          logits.begin());
}

}  // namespace bento::wf
