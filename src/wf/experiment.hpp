// The Table-1 experiment pipeline (§7.3 "Browser as a website
// fingerprinting defense"): collect labelled traces at the victim's guard
// link under each defense configuration, then train/evaluate the attack.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "wf/classifier.hpp"
#include "wf/sites.hpp"

namespace bento::wf {

enum class Defense {
  None,        // unmodified Tor browsing
  Browser0,    // Browser function, no padding
  Browser1MB,  // Browser, pad to 1 MB multiples
  Browser7MB,  // Browser, pad to 7 MB multiples
};

const char* to_string(Defense d);
std::size_t padding_bytes(Defense d);

struct CollectOptions {
  Defense defense = Defense::None;
  int visits_per_site = 10;
  std::uint64_t seed = 42;
  /// Per-visit content size jitter (fraction).
  double size_noise = 0.04;
  /// Web-server think-time jitter bounds (seconds).
  double think_min = 0.02;
  double think_max = 0.35;
  /// Relay access-link bandwidth (bytes/sec).
  double relay_bandwidth = 2.5e6;
  int guards = 3;
  int middles = 4;
  int exits = 4;
};

/// Runs `visits_per_site` visits to every site under the given defense and
/// returns one labelled feature vector per visit. `progress(done, total)`
/// is optional.
std::vector<Example> collect_dataset(
    const std::vector<SiteModel>& sites, const CollectOptions& options,
    const std::function<void(int done, int total)>& progress = {});

struct AttackResult {
  double knn_accuracy = 0;
  double mlp_accuracy = 0;
  int train_examples = 0;
  int test_examples = 0;
};

/// Splits per class (first `train_per_class` visits train, rest test),
/// trains both attackers, reports accuracy on the held-out visits.
AttackResult evaluate_attack(const std::vector<Example>& data, int classes,
                             int train_per_class, std::uint64_t seed);

}  // namespace bento::wf
