#include "wf/trace.hpp"

namespace bento::wf {

std::size_t Trace::bytes_out() const {
  std::size_t total = 0;
  for (const auto& e : events) {
    if (e.outgoing) total += e.wire_bytes;
  }
  return total;
}

std::size_t Trace::bytes_in() const {
  std::size_t total = 0;
  for (const auto& e : events) {
    if (!e.outgoing) total += e.wire_bytes;
  }
  return total;
}

double Trace::duration() const {
  if (events.empty()) return 0;
  return events.back().time_seconds - events.front().time_seconds;
}

TraceRecorder::TraceRecorder(sim::Simulator& sim, sim::Network& net,
                             sim::NodeId victim)
    : sim_(sim), net_(net), victim_(victim) {
  net_.set_monitor([this](sim::NodeId from, sim::NodeId to, std::size_t wire) {
    if (!recording_) return;
    if (from != victim_ && to != victim_) return;
    WireEvent ev;
    ev.time_seconds = sim_.now().seconds();
    ev.outgoing = (from == victim_);
    ev.wire_bytes = wire;
    current_.events.push_back(ev);
  });
}

TraceRecorder::~TraceRecorder() { net_.set_monitor(nullptr); }

void TraceRecorder::start() {
  current_ = Trace{};
  recording_ = true;
}

Trace TraceRecorder::stop(int label) {
  recording_ = false;
  Trace out = std::move(current_);
  out.label = label;
  current_ = Trace{};
  return out;
}

}  // namespace bento::wf
