// Page loading over Tor, the two ways the paper evaluates (§7.3):
//
//   * standard Tor: the victim's browser fetches the index and then the
//     sub-resources (up to 6 concurrent streams, like a browser) through a
//     3-hop circuit — the fetch dynamics happen on the victim's link;
//   * Bento Browser: a one-line invoke travels up, the function fetches the
//     page at the exit, compresses, pads, and a single bulk stream comes
//     back.
#pragma once

#include <functional>
#include <string>

#include "tor/circuit.hpp"
#include "wf/sites.hpp"

namespace bento::wf {

struct PageLoadResult {
  bool ok = false;
  std::size_t bytes = 0;     // application bytes received
  double started = 0;        // seconds
  double page_ready = 0;     // last *content* byte (Table 2's render time)
  double finished = 0;       // last byte including padding
};

/// Fetches a site like a browser over an existing circuit. `done` fires
/// once every resource completed (or any failed).
void browse_page(tor::CircuitOrigin& circuit, const SiteModel& site,
                 double time_now_seconds,
                 std::function<void(PageLoadResult)> done,
                 int max_concurrent_streams = 6);

}  // namespace bento::wf
