// Traffic traces and capture (the paper's attacker vantage: "all Tor
// traffic between the client and its guard relay is recorded", §7.3).
#pragma once

#include <vector>

#include "sim/network.hpp"
#include "util/time.hpp"

namespace bento::wf {

struct WireEvent {
  double time_seconds = 0;
  bool outgoing = false;  // true: victim -> network
  std::size_t wire_bytes = 0;
};

struct Trace {
  std::vector<WireEvent> events;
  int label = -1;  // site index (ground truth, known to the evaluator)

  std::size_t bytes_out() const;
  std::size_t bytes_in() const;
  double duration() const;
};

/// Captures every wire event touching one node (the victim client).
/// Installs itself as the network monitor; keep at most one per Network.
class TraceRecorder {
 public:
  TraceRecorder(sim::Simulator& sim, sim::Network& net, sim::NodeId victim);
  ~TraceRecorder();

  /// Clears the buffer and starts a fresh trace.
  void start();
  /// Stops recording and returns the trace.
  Trace stop(int label);
  bool recording() const { return recording_; }

 private:
  sim::Simulator& sim_;
  sim::Network& net_;
  sim::NodeId victim_;
  bool recording_ = false;
  Trace current_;
};

}  // namespace bento::wf
